package epiphany_test

// The cross-mode determinism suite: the shard partition (WithShards,
// the /shards= spec suffix) and the host goroutine count (WithWorkers)
// are execution knobs, never semantics. Every registered workload, on a
// single chip, the 2x2 cluster, and an asymmetric 2x4 grid, must
// produce bit-identical Metrics - time-domain AND energy - for every
// shard count from the classic single heap up to one shard per chip,
// and for every worker count. Run it under -race with GOMAXPROCS >= 4
// (CI does) and the parallel scheduler's barrier discipline is checked
// too, not just its answers.
//
// The comparison is plain struct equality on epiphany.Metrics: every
// field is an integer or a float64 compared by bits, so "identical"
// here means identical down to float rounding, not approximately equal.

import (
	"context"
	"fmt"
	"testing"

	"epiphany"
)

// determinismTopos are the boards the suite sweeps: one chip (sharding
// degenerates to the classic heap), the 4-chip cluster preset, and an
// 8-chip asymmetric grid where chip grouping (shards strictly between 1
// and NumChips) puts several chips on one shard.
var determinismTopos = []string{"e64", "cluster-2x2", "grid=2x4/chip=8x8"}

// shardCounts returns the distinct shard counts worth testing on a
// board of n chips: the classic heap, a grouped partition, and the full
// one-shard-per-chip layout.
func shardCounts(n int) []int {
	var out []int
	for _, s := range []int{1, 2, 4, n} {
		if s > n {
			continue
		}
		dup := false
		for _, seen := range out {
			dup = dup || seen == s
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// runDeterminism executes w on topo with the given shard partition and
// worker count, with the energy model attached so the energy fields are
// part of the comparison.
func runDeterminism(t *testing.T, w epiphany.Workload, topo epiphany.Topology, shards, workers int) epiphany.Metrics {
	t.Helper()
	res, err := epiphany.Run(context.Background(), w,
		epiphany.WithTopology(topo),
		epiphany.WithPowerModel("epiphany-iv-28nm", ""),
		epiphany.WithShards(shards),
		epiphany.WithWorkers(workers),
	)
	if err != nil {
		t.Fatalf("%s on %s shards=%d workers=%d: %v", w.Name(), topo, shards, workers, err)
	}
	return res.Metrics()
}

// TestDeterminismAcrossShardsAndWorkers is the suite's core claim:
// for every (topology, workload), the Metrics of every (shards,
// workers) combination equal the classic sequential engine's
// (shards=1, workers=1) bit for bit.
func TestDeterminismAcrossShardsAndWorkers(t *testing.T) {
	for _, spec := range determinismTopos {
		topo, err := epiphany.ParseTopology(spec)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(spec, func(t *testing.T) {
			for _, w := range epiphany.Workloads() {
				w := w
				t.Run(w.Name(), func(t *testing.T) {
					base := runDeterminism(t, w, topo, 1, 1)
					for _, shards := range shardCounts(topo.NumChips()) {
						for _, workers := range []int{1, 4} {
							if shards == 1 && workers == 1 {
								continue
							}
							got := runDeterminism(t, w, topo, shards, workers)
							if got != base {
								t.Errorf("shards=%d workers=%d diverged from the sequential engine:\n got  %+v\n want %+v",
									shards, workers, got, base)
							}
						}
					}
				})
			}
		})
	}
}

// TestDeterminismOffChipMatmulProduct pins the fixed schemeDouble
// off-chip rotation against the sharded engine: for per-core tile
// edges 8, 16 and 24 on the 4-chip cluster's 8x8 group, the gathered
// product must be bit-identical to the host reference - not merely
// deterministic - and the Metrics struct-equal, across every
// combination of shards {1, one per chip} and workers {1, 4}. Under
// -race (CI runs this file's tests with GOMAXPROCS=4) this is the
// strongest witness that the send-credit handshake, not scheduling
// luck, is what orders the buffer overwrites.
func TestDeterminismOffChipMatmulProduct(t *testing.T) {
	topo, err := epiphany.ParseTopology("cluster-2x2")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ edge, m int }{
		{8, 128},  // 64-wide DRAM tiles, Q=2 multi-pass paging
		{16, 128}, // the preset's shape
		{24, 192}, // larger-than-default tiles
	} {
		t.Run(fmt.Sprintf("edge%d", tc.edge), func(t *testing.T) {
			cfg := epiphany.MatmulConfig{
				M: tc.m, N: tc.m, K: tc.m, G: 8,
				OffChip: true, OffChipEdge: tc.edge,
				Tuned: true, Verify: true, Seed: 3,
			}
			ref := epiphany.MatmulReference(cfg)
			var base epiphany.Metrics
			first := true
			for _, shards := range []int{1, topo.NumChips()} {
				for _, workers := range []int{1, 4} {
					res, err := epiphany.Run(context.Background(),
						&epiphany.MatmulWorkload{Config: cfg},
						epiphany.WithTopology(topo),
						epiphany.WithPowerModel("epiphany-iv-28nm", ""),
						epiphany.WithShards(shards),
						epiphany.WithWorkers(workers),
					)
					if err != nil {
						t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
					}
					// The power model decorates the result; peel it to
					// reach the gathered product.
					inner := res
					for {
						u, ok := inner.(interface{ Unwrap() epiphany.Result })
						if !ok {
							break
						}
						inner = u.Unwrap()
					}
					mm, ok := inner.(*epiphany.MatmulResult)
					if !ok {
						t.Fatalf("result is %T, want *epiphany.MatmulResult", inner)
					}
					if d := epiphany.MaxAbsDiff(mm.C, ref); d != 0 {
						t.Errorf("shards=%d workers=%d: product differs from host reference by %g", shards, workers, d)
					}
					if first {
						base, first = res.Metrics(), false
					} else if got := res.Metrics(); got != base {
						t.Errorf("shards=%d workers=%d: Metrics diverged from the sequential engine:\n got  %+v\n want %+v",
							shards, workers, got, base)
					}
				}
			}
		})
	}
}

// TestDeterminismShardSpecSuffix pins that the /shards= grammar suffix
// is the same axis as WithShards: a topology parsed with the suffix
// produces the same bits as the option, and the suffix round-trips
// through Spec.
func TestDeterminismShardSpecSuffix(t *testing.T) {
	w, ok := epiphany.WorkloadByName("stencil-tuned")
	if !ok {
		t.Fatal("stencil-tuned not registered")
	}
	base, err := epiphany.ParseTopology("cluster-2x2")
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		spec := fmt.Sprintf("cluster-2x2/shards=%d", shards)
		pinned, err := epiphany.ParseTopology(spec)
		if err != nil {
			t.Fatal(err)
		}
		if pinned.Spec() != spec {
			t.Errorf("Spec round-trip: parsed %q, rendered %q", spec, pinned.Spec())
		}
		got := runDeterminism(t, w, pinned, 0, 1) // shards=0: the spec's pin must win
		want := runDeterminism(t, w, base, shards, 1)
		if got != want {
			t.Errorf("topology %q diverged from WithShards(%d)", spec, shards)
		}
	}
}

// TestDeterminismRecycledShardedBoards runs a mixed-shard batch through
// one Runner twice, so later jobs land on recycled pooled boards. The
// pool keys boards by the whole Topology - shard partition included -
// so a recycled board must still carry its layout and reproduce the
// same bits as a fresh one.
func TestDeterminismRecycledShardedBoards(t *testing.T) {
	topo, err := epiphany.ParseTopology("cluster-2x2")
	if err != nil {
		t.Fatal(err)
	}
	w, ok := epiphany.WorkloadByName("matmul-cannon")
	if !ok {
		t.Fatal("matmul-cannon not registered")
	}
	want := map[int]epiphany.Metrics{}
	for _, shards := range []int{1, 2, 4} {
		want[shards] = runDeterminism(t, w, topo, shards, 1)
	}

	r := &epiphany.Runner{Workers: 2}
	var jobs []epiphany.Job
	var order []int
	for pass := 0; pass < 2; pass++ {
		for _, shards := range []int{1, 2, 4} {
			jobs = append(jobs, epiphany.Job{
				Workload: w,
				Options: []epiphany.Option{
					epiphany.WithTopology(topo),
					epiphany.WithPowerModel("epiphany-iv-28nm", ""),
					epiphany.WithShards(shards),
					epiphany.WithWorkers(2),
				},
			})
			order = append(order, shards)
		}
	}
	br, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range br.Results {
		if jr.Err != nil {
			t.Fatalf("job %d (shards=%d): %v", i, order[i], jr.Err)
		}
		if got := jr.Result.Metrics(); got != want[order[i]] {
			t.Errorf("job %d (shards=%d) on a pooled board diverged from a fresh run", i, order[i])
		}
	}
}
