package epiphany

import "epiphany/internal/workload"

// The concurrent batch API. A Runner executes many workloads across a
// pool of goroutines, handing every job its own fresh System so each
// simulation stays bit-deterministic: a batch produces byte-identical
// Metrics to running the same jobs sequentially.
type (
	// Runner executes batches of workloads concurrently; its zero value
	// runs with GOMAXPROCS workers and no base options.
	Runner = workload.Runner
	// Job pairs a workload with per-job options.
	Job = workload.Job
	// JobResult reports one job: the workload's name, its Result, and a
	// per-job error (validation failure, run error, or captured panic).
	JobResult = workload.JobResult
	// BatchResult aggregates a batch in submission order.
	BatchResult = workload.BatchResult
)
