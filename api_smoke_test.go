package epiphany_test

// The re-export surface smoke test: every public alias and function
// the root package forwards from the internal packages is exercised at
// least once - compiled against AND executed - so a refactor that
// breaks a forwarding declaration (or quietly changes its behaviour)
// fails here, file by file, even before any deeper test runs. Kept
// deliberately shallow: the behavioural depth lives in the dedicated
// test files; this one pins the wiring.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"epiphany"
)

// TestAPISmokeWorkloadFile covers workload.go: the workload registry,
// the one-shot Run, every run Option, and the topology presets.
func TestAPISmokeWorkloadFile(t *testing.T) {
	// Registry: non-empty, sorted lookups agree, Register stays
	// available (calling it here would pollute the process-wide registry
	// the sweep goldens enumerate, so the smoke stops at linkage).
	ws := epiphany.Workloads()
	if len(ws) == 0 {
		t.Fatal("no registered workloads")
	}
	var _ func(epiphany.Workload) = epiphany.Register
	w, ok := epiphany.WorkloadByName(ws[0].Name())
	if !ok || w.Name() != ws[0].Name() {
		t.Fatalf("WorkloadByName(%q) = %v, %v", ws[0].Name(), w, ok)
	}
	if _, ok := epiphany.WorkloadByName("no-such-workload"); ok {
		t.Error("WorkloadByName invented a workload")
	}

	// Topology presets and lookup.
	if len(epiphany.Topologies()) != 3 {
		t.Fatalf("topology presets %v", epiphany.Topologies())
	}
	e16, ok := epiphany.TopologyByName("e16")
	if !ok || e16 != epiphany.TopologyE16 {
		t.Fatal("TopologyByName(e16) disagrees with TopologyE16")
	}
	if epiphany.TopologyE64.NumCores() != 64 || epiphany.TopologyCluster2x2.NumChips() != 4 {
		t.Fatal("preset topology vars misshapen")
	}

	// The topology grammar: preset names parse to the preset values, and
	// grid specs reach geometries no preset names.
	if topo, err := epiphany.ParseTopology("cluster-2x2"); err != nil || topo != epiphany.TopologyCluster2x2 {
		t.Fatalf("ParseTopology(cluster-2x2) = %v, %v", topo, err)
	}
	big, err := epiphany.ParseTopology("grid=4x4/chip=8x8")
	if err != nil || big.NumCores() != 1024 {
		t.Fatalf("ParseTopology(grid=4x4/chip=8x8) = %v, %v", big, err)
	}
	if _, err := epiphany.ParseTopology("grid=8x8/chip=8x8"); err == nil {
		t.Error("ParseTopology accepted a board beyond the 64x64 mesh ceiling")
	}

	// Run with every option; Reseeder and TopologyFitter are what make
	// WithSeed/WithTopology legal on the built-ins.
	st, _ := epiphany.WorkloadByName("stencil-tuned")
	var _ epiphany.Reseeder
	var _ epiphany.TopologyFitter
	var trace bytes.Buffer
	res, err := epiphany.Run(context.Background(), st,
		epiphany.WithTopology(e16), epiphany.WithSeed(3), epiphany.WithTrace(&trace))
	if err != nil {
		t.Fatal(err)
	}
	var m epiphany.Metrics = res.Metrics()
	if m.Elapsed == 0 || m.GFLOPS <= 0 {
		t.Fatalf("degenerate metrics %+v", m)
	}
	if trace.Len() == 0 {
		t.Error("WithTrace wrote nothing")
	}
	if _, err := epiphany.Run(context.Background(), st, epiphany.WithMeshSize(4, 4)); err != nil {
		t.Errorf("WithMeshSize(4,4): %v", err)
	}
}

// TestAPISmokeRunnerFile covers runner.go: a two-job batch through the
// Runner alias and the BatchResult accessors.
func TestAPISmokeRunnerFile(t *testing.T) {
	st, _ := epiphany.WorkloadByName("stencil-tuned")
	runner := &epiphany.Runner{Workers: 2, Options: []epiphany.Option{epiphany.WithTopology(epiphany.TopologyE16)}}
	batch, err := runner.RunBatch(context.Background(), []epiphany.Job{
		{Workload: st},
		{Workload: st, Options: []epiphany.Option{epiphany.WithSeed(5)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(batch.Results); got != 2 {
		t.Fatalf("%d results, want 2", got)
	}
	var jr epiphany.JobResult = batch.Results[0]
	if jr.Err != nil || jr.Name != "stencil-tuned" {
		t.Fatalf("job result %+v", jr)
	}
	var br *epiphany.BatchResult = batch
	if br.Err() != nil || len(br.Failed()) != 0 {
		t.Fatalf("clean batch reports failure: %v", br.Err())
	}
}

// TestAPISmokeEpiphanyFile covers epiphany.go: system constructors, the
// kernel-level types, the application shims' configs, the host-side
// reference computations, and the experiment registry.
func TestAPISmokeEpiphanyFile(t *testing.T) {
	var sys *epiphany.System = epiphany.NewSystemSize(2, 2)
	if sys.Chip().NumCores() != 4 {
		t.Fatal("NewSystemSize(2,2) not 4 cores")
	}
	if epiphany.NewSystem().Chip().NumCores() != 64 {
		t.Fatal("NewSystem not the 64-core default")
	}
	if epiphany.NewSystemTopology(epiphany.TopologyE16).Chip().NumCores() != 16 {
		t.Fatal("NewSystemTopology(e16) not 16 cores")
	}
	var _ *epiphany.Chip = sys.Chip()
	wg, err := sys.NewWorkgroup(0, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var _ *epiphany.Workgroup = wg
	if wg.Size() != 4 {
		t.Fatalf("workgroup size %d", wg.Size())
	}
	var _ *epiphany.Core = sys.Chip().Core(0)
	var _ epiphany.Time // the virtual-clock unit

	// Host-side reference kernels and the comparison helper.
	scfg := epiphany.StencilConfig{Rows: 4, Cols: 4, Iters: 2, GroupRows: 1, GroupCols: 1, Seed: 1}
	if ref := epiphany.StencilReference(scfg); len(ref) == 0 {
		t.Fatal("StencilReference empty")
	}
	mcfg := epiphany.MatmulConfig{M: 8, N: 8, K: 8, G: 1, Verify: true}
	mref := epiphany.MatmulReference(mcfg)
	if len(mref) != 64 {
		t.Fatalf("MatmulReference size %d", len(mref))
	}
	if d := epiphany.MaxAbsDiff(mref, mref); d != 0 {
		t.Fatalf("MaxAbsDiff(x, x) = %v", d)
	}
	stcfg := epiphany.StreamStencilConfig{
		GlobalRows: 8, GlobalCols: 8, BlockRows: 4, BlockCols: 4,
		Iters: 2, TBlock: 1, GroupRows: 1, GroupCols: 1,
		Coefs: [5]float32{0.2, 0.2, 0.2, 0.2, 0.2}, Seed: 1,
	}
	if ref := epiphany.StreamStencilReference(stcfg); len(ref) == 0 {
		t.Fatal("StreamStencilReference empty")
	}
	var (
		_ *epiphany.StencilResult
		_ *epiphany.MatmulResult
		_ *epiphany.StreamStencilResult
		_ *epiphany.StencilWorkload
		_ *epiphany.MatmulWorkload
		_ *epiphany.StreamStencilWorkload
		_ *epiphany.Host
		_ *epiphany.HostProc
	)

	// The experiment registry.
	if len(epiphany.Experiments) == 0 {
		t.Fatal("no experiments exported")
	}
	var e epiphany.Experiment
	e, ok := epiphany.ExperimentByName(epiphany.Experiments[0].Name)
	if !ok || e.Name != epiphany.Experiments[0].Name {
		t.Fatal("ExperimentByName disagrees with Experiments")
	}
}

// TestAPISmokePowerFile covers power.go: model lookup, DVFS parsing,
// an energy-metered run with UnwrapResult, and the Table VII rows.
func TestAPISmokePowerFile(t *testing.T) {
	models := epiphany.PowerModels()
	if len(models) == 0 {
		t.Fatal("no power models")
	}
	var m *epiphany.PowerModel
	m, ok := epiphany.PowerModelByName("epiphany-iv-28nm")
	if !ok {
		t.Fatal("epiphany-iv-28nm missing")
	}
	var op epiphany.OperatingPoint
	op, err := epiphany.ParseDVFSPoint("300@0.85")
	if err != nil || op.FreqMHz != 300 {
		t.Fatalf("ParseDVFSPoint: %v, %v", op, err)
	}

	st, _ := epiphany.WorkloadByName("stencil-tuned")
	res, err := epiphany.Run(context.Background(), st,
		epiphany.WithTopology(epiphany.TopologyE16),
		epiphany.WithPowerModel("epiphany-iv-28nm", "300@0.85"))
	if err != nil {
		t.Fatal(err)
	}
	metrics := res.Metrics()
	if metrics.EnergyJ <= 0 || metrics.AvgPowerW <= 0 || metrics.GFLOPSPerWatt <= 0 {
		t.Fatalf("energy columns missing: %+v", metrics)
	}
	var bd epiphany.EnergyBreakdown = metrics.Energy
	if bd.Total() <= 0 {
		t.Fatalf("energy breakdown %+v", bd)
	}
	var _ *epiphany.EnergyUsage // the full report type behind AttachEnergy
	inner := epiphany.UnwrapResult(res)
	if _, ok := inner.(*epiphany.StencilResult); !ok {
		t.Fatalf("UnwrapResult gave %T, want *StencilResult", inner)
	}

	rows := epiphany.PowerComparison()
	if len(rows) == 0 {
		t.Fatal("PowerComparison empty")
	}
	var _ epiphany.PowerSystem = rows[0]
	computed := epiphany.ComputedPowerComparison(m, 64)
	if len(computed) != len(rows) {
		t.Fatalf("ComputedPowerComparison rows %d vs %d", len(computed), len(rows))
	}
}

// TestAPISmokeSweepFile covers sweep.go: plan aliases, the topology
// spelling parser, the exported fingerprints, and a one-cell sweep.
func TestAPISmokeSweepFile(t *testing.T) {
	var topo epiphany.SweepTopo
	topo, err := epiphany.ParseSweepTopo("e16")
	if err != nil || topo.Preset != "e16" {
		t.Fatalf("ParseSweepTopo: %v, %v", topo, err)
	}
	plan := epiphany.SweepPlan{Workloads: []string{"stencil-tuned"}, Topos: []epiphany.SweepTopo{topo}}

	// The content-addressing surface rides the aliases.
	fp, err := plan.Fingerprint()
	if err != nil || len(fp) != 64 {
		t.Fatalf("Fingerprint: %q, %v", fp, err)
	}
	normalized, err := plan.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	var cell epiphany.SweepCell = normalized.Expand()[0]
	if id := normalized.CellFingerprint(cell); len(id) != 64 {
		t.Fatalf("CellFingerprint %q", id)
	}

	// The named-plan registry and the standing scaling study.
	plans := epiphany.SweepPlans()
	if len(plans) == 0 {
		t.Fatal("no registered sweep plans")
	}
	var np epiphany.NamedSweepPlan
	np, ok := epiphany.SweepPlanByName("scaling-1024")
	if !ok || np.Name != "scaling-1024" {
		t.Fatalf("SweepPlanByName(scaling-1024) = %+v, %v", np, ok)
	}
	if _, err := epiphany.ResolveSweepPlan("scaling-124"); err == nil {
		t.Error("ResolveSweepPlan accepted a misspelled plan name")
	}
	study := epiphany.ScalingStudyPlan()
	if len(study.Topos) != 5 || study.Baseline != "e16" {
		t.Fatalf("ScalingStudyPlan shape: %+v", study)
	}

	var res *epiphany.SweepResult
	res, err = epiphany.Sweep(context.Background(), plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var cr epiphany.SweepCellResult = res.Cells[0]
	if cr.Err != "" || cr.Speedup != 1 {
		t.Fatalf("one-cell sweep %+v", cr)
	}
	if !strings.Contains(res.CSV(), "stencil-tuned") {
		t.Error("sweep CSV missing the cell")
	}
}

// TestAPISmokeServeFile covers serve.go; the behavioural depth is in
// serve_test.go, so this only pins the aliases and constructor.
func TestAPISmokeServeFile(t *testing.T) {
	var cfg epiphany.ServerConfig
	s, err := epiphany.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var st epiphany.ServerStats = s.Stats()
	if st.QueueCapacity == 0 {
		t.Fatal("defaulted server has no queue capacity")
	}
	var (
		_ epiphany.ServeJobSpec
		_ epiphany.ServeJobResponse
	)
	if s.Draining() {
		t.Fatal("fresh server draining")
	}
}
