package epiphany

import (
	"testing"

	"epiphany/internal/bench"
)

// One testing.B benchmark per paper table/figure: `go test -bench=.`
// regenerates the full evaluation. Each iteration rebuilds the system
// and reruns the experiment; the interesting output is the tables
// themselves (run cmd/epiphany-bench for those) plus the wall-clock cost
// of regenerating each one.

func benchExperiment(b *testing.B, name string, run func() *bench.Table) {
	b.Helper()
	var t *bench.Table
	for i := 0; i < b.N; i++ {
		t = run()
	}
	if t == nil || len(t.Rows) == 0 {
		b.Fatalf("%s produced no rows", name)
	}
	b.ReportMetric(float64(len(t.Rows)), "rows")
}

func BenchmarkFig2Bandwidth(b *testing.B)     { benchExperiment(b, "fig2", bench.Fig2) }
func BenchmarkFig3Latency(b *testing.B)       { benchExperiment(b, "fig3", bench.Fig3) }
func BenchmarkTable1Distance(b *testing.B)    { benchExperiment(b, "table1", bench.Table1) }
func BenchmarkTable2ELink4(b *testing.B)      { benchExperiment(b, "table2", bench.Table2) }
func BenchmarkTable3ELink64(b *testing.B)     { benchExperiment(b, "table3", bench.Table3) }
func BenchmarkFig5StencilSingle(b *testing.B) { benchExperiment(b, "fig5", bench.Fig5) }
func BenchmarkFig6Stencil64(b *testing.B)     { benchExperiment(b, "fig6", bench.Fig6) }
func BenchmarkFig7WeakScaling(b *testing.B)   { benchExperiment(b, "fig7", bench.Fig7) }
func BenchmarkFig8StrongScaling(b *testing.B) { benchExperiment(b, "fig8", bench.Fig8) }
func BenchmarkTable4MatmulSingle(b *testing.B) {
	benchExperiment(b, "table4", bench.Table4)
}
func BenchmarkTable5MatmulOnChip(b *testing.B) {
	benchExperiment(b, "table5", bench.Table5)
}
func BenchmarkTable6MatmulOffChip(b *testing.B) {
	if testing.Short() {
		b.Skip("off-chip paging is long; skipped in -short mode")
	}
	benchExperiment(b, "table6", func() *bench.Table { return bench.Table6(false) })
}
func BenchmarkFig14MatmulWeak(b *testing.B)   { benchExperiment(b, "fig14", bench.Fig14) }
func BenchmarkFig15MatmulStrong(b *testing.B) { benchExperiment(b, "fig15", bench.Fig15) }
func BenchmarkTable7Comparison(b *testing.B)  { benchExperiment(b, "table7", bench.Table7) }

// Extension and ablation studies (beyond the paper's own evaluation).

func BenchmarkExtStreamStencil(b *testing.B) {
	if testing.Short() {
		b.Skip("streams 512x512 grids")
	}
	benchExperiment(b, "ext-stream", bench.ExtStreamStencil)
}

func BenchmarkAblationStencilComm(b *testing.B) {
	if testing.Short() {
		b.Skip("full-chip stencils")
	}
	benchExperiment(b, "abl-comm", bench.AblationStencilComm)
}

func BenchmarkAblationELinkFairness(b *testing.B) {
	benchExperiment(b, "abl-fair", bench.AblationELinkFairness)
}

func BenchmarkAblationCannonVsSumma(b *testing.B) {
	benchExperiment(b, "abl-summa", bench.AblationCannonVsSumma)
}
