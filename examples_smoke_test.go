package epiphany_test

// Smoke tests for the example programs: each must build and run to
// completion on a tiny problem size. The examples self-verify against
// host references and exit nonzero on any diff, so a clean exit is a
// real correctness check, not just a compile check.

import (
	"os/exec"
	"strings"
	"testing"
)

// exampleSmokes shrinks each example to a problem that simulates in
// well under a second; the flags default to the showcase sizes.
var exampleSmokes = []struct {
	name string
	args []string
	want string // a marker the healthy output always contains
}{
	{"quickstart", []string{"-iters", "2", "-n", "64"}, "max |diff| vs host reference"},
	{"heat", []string{"-iters", "4"}, "after 4 iterations"},
	{"bigmatmul", []string{"-n", "256"}, "max |diff| vs host ref"},
	{"mandelbrot", []string{"-max-iter", "16"}, "GFLOPS achieved"},
	{"pingpong", []string{"-loops", "3"}, "mutex demo"},
	{"streaming", []string{"-size", "128", "-block", "16", "-iters", "8"}, "bit-identical to global Jacobi"},
}

func TestExamplesRunToCompletion(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	for _, ex := range exampleSmokes {
		t.Run(ex.name, func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", "./examples/" + ex.name}, ex.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go %v: %v\n%s", args, err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Errorf("output of %s lacks %q:\n%s", ex.name, ex.want, out)
			}
		})
	}
}
