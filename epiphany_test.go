package epiphany

import (
	"testing"
)

func TestPublicStencilAPI(t *testing.T) {
	cfg := StencilConfig{
		Rows: 20, Cols: 20, Iters: 5,
		GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, Seed: 1,
	}
	res, err := NewSystem().RunStencil(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GFLOPS <= 0 || res.PctPeak <= 0 || res.Elapsed == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	ref := StencilReference(cfg)
	for r := range ref {
		for c := range ref[r] {
			if ref[r][c] != res.Global[r][c] {
				t.Fatalf("mismatch at (%d,%d)", r, c)
			}
		}
	}
}

func TestPublicMatmulAPI(t *testing.T) {
	cfg := MatmulConfig{M: 64, N: 64, K: 64, G: 4, Tuned: true, Verify: true, Seed: 2}
	res, err := NewSystem().RunMatmul(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(res.C, MatmulReference(cfg)); d != 0 {
		t.Fatalf("diff vs reference: %g", d)
	}
}

func TestSystemIsSingleUse(t *testing.T) {
	sys := NewSystem()
	cfg := StencilConfig{Rows: 20, Cols: 20, Iters: 1, GroupRows: 1, GroupCols: 1, Tuned: true}
	if _, err := sys.RunStencil(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunStencil(cfg); err == nil {
		t.Fatal("second run on the same System must be refused")
	}
	if _, err := sys.RunMatmul(MatmulConfig{M: 8, N: 8, K: 8, G: 1, Tuned: true}); err == nil {
		t.Fatal("matmul after stencil on the same System must be refused")
	}
}

func TestSystemSize(t *testing.T) {
	sys := NewSystemSize(4, 4)
	if sys.Chip().NumCores() != 16 {
		t.Fatalf("cores = %d", sys.Chip().NumCores())
	}
	w, err := sys.NewWorkgroup(0, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w.Size() != 16 {
		t.Fatalf("workgroup size = %d", w.Size())
	}
	if _, err := sys.NewWorkgroup(0, 0, 8, 8); err == nil {
		t.Fatal("oversized workgroup accepted on a 4x4 chip")
	}
}

func TestDeterminismAcrossSystems(t *testing.T) {
	run := func() (Time, float64) {
		res, err := NewSystem().RunMatmul(MatmulConfig{
			M: 64, N: 64, K: 64, G: 2, Tuned: true, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed, res.GFLOPS
	}
	t1, g1 := run()
	t2, g2 := run()
	if t1 != t2 || g1 != g2 {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", t1, g1, t2, g2)
	}
}

func TestExperimentRegistryExported(t *testing.T) {
	if len(Experiments) != 15 {
		t.Fatalf("%d experiments exported, want 15", len(Experiments))
	}
	e, ok := ExperimentByName("table4")
	if !ok {
		t.Fatal("table4 missing")
	}
	tab := e.Run()
	if len(tab.Rows) != 5 {
		t.Fatalf("table4 rows = %d, want 5", len(tab.Rows))
	}
}
