package epiphany_test

import (
	"context"
	"fmt"

	"epiphany"
)

// ExampleRun executes the paper's §VI heat stencil through the workload
// API on a fresh system and verifies it against the host reference.
func ExampleRun() {
	w := &epiphany.StencilWorkload{Config: epiphany.StencilConfig{
		Rows: 20, Cols: 20, Iters: 10,
		GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, Seed: 1,
	}}
	res, err := epiphany.Run(context.Background(), w)
	if err != nil {
		panic(err)
	}
	m := res.Metrics()
	fmt.Printf("simulated time: %v\n", m.Elapsed)
	fmt.Printf("positive throughput: %v\n", m.GFLOPS > 0)
	// Output:
	// simulated time: 45.1467us
	// positive throughput: true
}

// ExampleRunner_RunBatch runs one registered workload twice concurrently,
// each on its own fresh board; determinism makes the runs byte-identical.
func ExampleRunner_RunBatch() {
	w, ok := epiphany.WorkloadByName("matmul-cannon")
	if !ok {
		panic("matmul-cannon not registered")
	}
	runner := &epiphany.Runner{Workers: 2}
	batch, err := runner.RunWorkloads(context.Background(), w, w)
	if err != nil {
		panic(err)
	}
	if err := batch.Err(); err != nil {
		panic(err)
	}
	fmt.Printf("runs agree: %v\n",
		batch.Results[0].Result.Metrics() == batch.Results[1].Result.Metrics())
	// Output:
	// runs agree: true
}

// ExampleSystem_RunStencil runs the paper's §VI heat stencil on a 2x2
// workgroup and verifies it against the host reference.
func ExampleSystem_RunStencil() {
	cfg := epiphany.StencilConfig{
		Rows: 20, Cols: 20, Iters: 10,
		GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, Seed: 1,
	}
	res, err := epiphany.NewSystem().RunStencil(cfg)
	if err != nil {
		panic(err)
	}
	ref := epiphany.StencilReference(cfg)
	exact := true
	for r := range ref {
		for c := range ref[r] {
			if ref[r][c] != res.Global[r][c] {
				exact = false
			}
		}
	}
	fmt.Printf("matches global Jacobi: %v\n", exact)
	fmt.Printf("simulated time: %v\n", res.Elapsed)
	// Output:
	// matches global Jacobi: true
	// simulated time: 45.1467us
}

// ExampleSystem_RunMatmul multiplies 64x64 matrices over 16 cores with
// Cannon's algorithm and checks the product.
func ExampleSystem_RunMatmul() {
	cfg := epiphany.MatmulConfig{
		M: 64, N: 64, K: 64, G: 4,
		Tuned: true, Verify: true, Seed: 2,
	}
	res, err := epiphany.NewSystem().RunMatmul(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("max |diff| vs reference: %v\n",
		epiphany.MaxAbsDiff(res.C, epiphany.MatmulReference(cfg)))
	// Output:
	// max |diff| vs reference: 0
}

// ExampleSystem_RunStreamStencil pages a grid through the chip with
// temporal blocking (the paper's §IX proposal).
func ExampleSystem_RunStreamStencil() {
	cfg := epiphany.StreamStencilConfig{
		GlobalRows: 64, GlobalCols: 64,
		BlockRows: 16, BlockCols: 16,
		Iters: 6, TBlock: 3,
		GroupRows: 2, GroupCols: 2, Seed: 3,
	}
	res, err := epiphany.NewSystem().RunStreamStencil(cfg)
	if err != nil {
		panic(err)
	}
	ref := epiphany.StreamStencilReference(cfg)
	exact := true
	for r := range ref {
		for c := range ref[r] {
			if ref[r][c] != res.Global[r][c] {
				exact = false
			}
		}
	}
	fmt.Printf("matches global Jacobi: %v\n", exact)
	// Output:
	// matches global Jacobi: true
}

// ExampleExperimentByName regenerates one of the paper's tables.
func ExampleExperimentByName() {
	e, ok := epiphany.ExperimentByName("table4")
	if !ok {
		panic("missing experiment")
	}
	t := e.Run()
	fmt.Printf("%s has %d rows\n", e.Name, len(t.Rows))
	// Output:
	// table4 has 5 rows
}
