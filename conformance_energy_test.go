package epiphany_test

// The energy conformance harness, the §VIII counterpart of the
// time-domain golden tables in conformance_test.go: every registered
// workload's computed energy on the e64 board under the nominal
// epiphany-iv-28nm preset is pinned bit for bit - total joules, the
// throughput-per-watt figures, and the full per-component breakdown.
// Energy is derived from the run's activity counters by pure float64
// arithmetic, so it is exactly reproducible; any drift means either the
// counters moved (an instrumentation change) or the model moved (a
// recalibration), and both must be explained in the commit message.
//
// Regenerate by running each workload with
// WithPowerModel("epiphany-iv-28nm", "") and printing the
// math.Float64bits of each field in the order of the struct below.

import (
	"context"
	"math"
	"testing"

	"epiphany"
)

// energyGolden freezes the bits of one run's energy metrics.
type energyGolden struct {
	energyJ       uint64
	avgPowerW     uint64
	gflopsPerWatt uint64
	edpJs         uint64
	// breakdown components, in struct order
	coreActiveJ, coreIdleJ, fpuJ, sramJ, dramJ, meshJ, elinkJ, c2cJ, leakageJ uint64
}

// goldenEnergy pins every registered workload on e64 under the nominal
// epiphany-iv-28nm operating point. Generated from this implementation
// (the first to compute energy at all).
var goldenEnergy = map[string]energyGolden{
	"matmul-cannon":       {0x3f049b05a894a96f, 0x3fee4c4f162449bb, 0x402aae13387a49d8, 0x3e1c07069834d32c, 0x3ee9760ad8a7f59d, 0x3eeb100e9fd53239, 0x3ea19799812dea11, 0x3e9d2700ff21cee5, 0x0, 0x3e4ff45dd3a46629, 0x0, 0x0, 0x3eebdb4e7254a7b1},
	"matmul-offchip":      {0x3f516199c32918fa, 0x3fe8984db8002737, 0x400fa115e6e94920, 0x3eb89111d27dcb5e, 0x3f195e558ac8debd, 0x3f40933a1608f397, 0x3ed19799812dea11, 0x3ecd282c56b1c8f7, 0x3ee07e1fe91b0b70, 0x3e9105cdec35bd8d, 0x3eaa636641c4df1a, 0x0, 0x3f3cf24a99496196},
	"matmul-single":       {0x3f063f59bb0061b6, 0x3fe72b030cc50358, 0x3ff8b6006f8ebc14, 0x3e255d0d859278ca, 0x3eb79979093d82ce, 0x3ef73b1325188cc2, 0x3e719799812dea11, 0x3e6bc33e3fdc7563, 0x0, 0x0, 0x0, 0x0, 0x3ef3aa8f87b34257},
	"matmul-summa":        {0x3f0d19f5febffe6c, 0x3feb8602719b9864, 0x4022e41b02752e7c, 0x3e2ec5122f271554, 0x3ee9760ad8a7f59d, 0x3ef6cd64a43f346c, 0x3ea19799812dea11, 0x3e9d292b2685340c, 0x0, 0x3e455ba6c3a1be2c, 0x0, 0x0, 0x3ef5a774ff70d545},
	"stencil-cross":       {0x3f107878b3881795, 0x3fe8beb689cbaa79, 0x40145f50fa18b9a2, 0x3e35ed14fceff491, 0x3edd4793b15afde9, 0x3efee2e26c8008b4, 0x3e95798ee2308c3a, 0x3e7374834697e2c6, 0x0, 0x3e126ab4b33c110a, 0x0, 0x0, 0x3efb43770ba76f25},
	"stencil-direct":      {0x3f10260bad054fd6, 0x3fe8c954f1ebc682, 0x4014c74d083914d9, 0x3e350abdfbe57ed8, 0x3edd4793b15afde9, 0x3efe316a9a766306, 0x3e95798ee2308c3a, 0x3e6e3ec2c937100a, 0x0, 0x3e119799812dea11, 0x0, 0x0, 0x3efaaf9331f4ba6a},
	"stencil-naive":       {0x3f3637fa88863707, 0x3fe8d2886af0f796, 0x3fee342da5b69755, 0x3e83e35796d3401a, 0x3f05a481fff4ed52, 0x3f24a53c86b74865, 0x3e95798ee2308c3a, 0x3e6e3ec2c937100a, 0x0, 0x3e119799812dea11, 0x0, 0x0, 0x3f2254ee8aed7e06},
	"stencil-replicated":  {0x3f0dc7a1bf1b3b66, 0x3fe8fef08b068a0b, 0x401688f709db0e8e, 0x3e31bd5bdd9a6099, 0x3edd4793b15afde9, 0x3efb731a76454e0a, 0x3e95798ee2308c3a, 0x3e6c1aede0fc563e, 0x0, 0x0, 0x0, 0x0, 0x3ef86650692128ed},
	"stencil-single":      {0x3f0b9329e18e0016, 0x3fe7252662851269, 0x3ff85644077a7ab1, 0x3e306d1ba52882ae, 0x3ebd4793b15afde9, 0x3efcd275629591f1, 0x3e75798ee2308c3a, 0x3e4cd96b6b271b68, 0x0, 0x0, 0x0, 0x0, 0x3ef86650692128ed},
	"stencil-tuned":       {0x3f1031db5534ea8a, 0x3fe8c78523739c50, 0x4014b8258f0487c9, 0x3e352b1d1d2b2a32, 0x3edd4793b15afde9, 0x3efe4b2fac529d48, 0x3e95798ee2308c3a, 0x3e6e3ec2c937100a, 0x0, 0x3e119799812dea11, 0x0, 0x0, 0x3efac50cc0d6eaf6},
	"stream-stencil":      {0x3f60197b81d8b9a7, 0x3fe719024e852a64, 0x3fe5579150c226a1, 0x3ed67181d0692c7b, 0x3f0282b92b4ded39, 0x3f50fc3f00345e6a, 0x3eb886e609f3ed78, 0x3e95377bff25de47, 0x3ef2208a55563839, 0x3e92dc10c52e10e7, 0x3ec632d36ac8f7c3, 0x0, 0x3f4c8cc769924bc7},
	"stream-stencil-deep": {0x3f568d6b46efad44, 0x3fe754612f1d3f34, 0x3fee78938d8aec5d, 0x3ec5cd16278331c7, 0x3f05c2509c4b8cde, 0x3f476ad46895dbd2, 0x3ebe20630a2e06c4, 0x3e9683f7640b8848, 0x3ee99cb273724d00, 0x3e8a1966fdb0b5fa, 0x3ebb5ea34a01b6d0, 0x0, 0x3f43cc38b930885b},
}

// takeEnergy converts a run's metrics into the frozen-bits form.
func takeEnergy(m epiphany.Metrics) energyGolden {
	b := math.Float64bits
	return energyGolden{
		energyJ:       b(m.EnergyJ),
		avgPowerW:     b(m.AvgPowerW),
		gflopsPerWatt: b(m.GFLOPSPerWatt),
		edpJs:         b(m.EDPJs),
		coreActiveJ:   b(m.Energy.CoreActiveJ),
		coreIdleJ:     b(m.Energy.CoreIdleJ),
		fpuJ:          b(m.Energy.FPUJ),
		sramJ:         b(m.Energy.SRAMJ),
		dramJ:         b(m.Energy.DRAMJ),
		meshJ:         b(m.Energy.MeshJ),
		elinkJ:        b(m.Energy.ELinkJ),
		c2cJ:          b(m.Energy.C2CJ),
		leakageJ:      b(m.Energy.LeakageJ),
	}
}

// TestGoldenEnergyE64 pins every registered workload's computed energy
// on e64 under the nominal preset, bit for bit, and checks the
// decoration is purely additive: the time-domain metrics of the metered
// run are bit-identical to the unmetered golden table in
// conformance_test.go.
func TestGoldenEnergyE64(t *testing.T) {
	for _, w := range epiphany.Workloads() {
		want, ok := goldenEnergy[w.Name()]
		if !ok {
			t.Errorf("%s: no energy golden entry - add one when registering a new built-in", w.Name())
			continue
		}
		res, err := epiphany.Run(context.Background(), w,
			epiphany.WithPowerModel("epiphany-iv-28nm", ""))
		if err != nil {
			t.Errorf("%s: %v", w.Name(), err)
			continue
		}
		m := res.Metrics()
		if got := takeEnergy(m); got != want {
			t.Errorf("%s: energy metrics drifted\n got %+v\nwant %+v", w.Name(), got, want)
		}
		if m.PowerModel != "epiphany-iv-28nm" || m.DVFS != "600MHz@1.00V" {
			t.Errorf("%s: model identity %q/%q, want epiphany-iv-28nm at 600MHz@1.00V",
				w.Name(), m.PowerModel, m.DVFS)
		}
		// Energy accounting must not perturb the time domain.
		tg, ok := golden[goldenKey{"e64", w.Name()}]
		if !ok {
			continue
		}
		if uint64(m.Elapsed) != tg.elapsed || m.TotalFlops != tg.totalFlops ||
			math.Float64bits(m.GFLOPS) != tg.gflopsBits || math.Float64bits(m.PctPeak) != tg.pctBits {
			t.Errorf("%s: attaching the power model moved the time-domain metrics", w.Name())
		}
		// The breakdown must sum to the total exactly (same float64
		// operations in the same order as the model's Total).
		if m.Energy.Total() != m.EnergyJ {
			t.Errorf("%s: breakdown sums to %v, EnergyJ %v", w.Name(), m.Energy.Total(), m.EnergyJ)
		}
	}
}

// TestGoldenEnergyAcrossWorkers re-runs the metered registry through
// the batch Runner at several worker counts - exercising both fresh and
// recycled pooled Systems - and requires the same frozen bits. Energy,
// like time, must not depend on concurrency or board reuse.
func TestGoldenEnergyAcrossWorkers(t *testing.T) {
	for _, workers := range []int{1, 8} {
		r := &epiphany.Runner{
			Workers: workers,
			Options: []epiphany.Option{epiphany.WithPowerModel("epiphany-iv-28nm", "nominal")},
		}
		// Two copies of the registry back to back, so later jobs run on
		// recycled boards whose counters were reset.
		jobs := make([]epiphany.Job, 0, 2*len(epiphany.Workloads()))
		for i := 0; i < 2; i++ {
			for _, w := range epiphany.Workloads() {
				jobs = append(jobs, epiphany.Job{Workload: w})
			}
		}
		br, err := r.RunBatch(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		for _, jr := range br.Results {
			if jr.Err != nil {
				t.Errorf("workers=%d %s: %v", workers, jr.Name, jr.Err)
				continue
			}
			if got := takeEnergy(jr.Result.Metrics()); got != goldenEnergy[jr.Name] {
				t.Errorf("workers=%d %s: energy differs from the golden bits", workers, jr.Name)
			}
		}
	}
}
