package epiphany_test

// The golden-metrics conformance harness: every registered workload is
// pinned, bit for bit, to the metrics the seed implementation produced
// on the single-chip devices, so that topology and router work can
// never silently drift the paper's single-chip numbers. In the spirit
// of virtual-repository validation (Kartoun, arXiv:1608.00570), the
// simulated fabric is only trusted because its outputs are continually
// checked against frozen reference statistics.
//
// If a change legitimately alters these numbers (a recalibration, a
// kernel fix), regenerate the table by running each workload and
// printing Elapsed, TotalFlops and the Float64bits of GFLOPS/PctPeak -
// and say why in the commit message. The e64 column doubles as the
// pre-PR seed pin: it was generated from the seed commit and must never
// change as a side effect.

import (
	"context"
	"math"
	"testing"

	"epiphany"
)

// goldenKey identifies one (topology, workload) cell.
type goldenKey struct {
	topo     string
	workload string
}

// goldenMetrics freezes the exact bits of one run's metrics. GFLOPS and
// PctPeak are stored as Float64bits so the comparison is bit-identical,
// not approximate.
type goldenMetrics struct {
	elapsed    uint64
	totalFlops uint64
	gflopsBits uint64
	pctBits    uint64
}

// golden pins every registered workload on the two single-chip presets.
// Generated from the seed implementation (e64 = the paper's default
// device, bit-identical to pre-topology results; e16 = the same
// workloads topology-fitted to one 4x4 chip).
var golden = map[goldenKey]goldenMetrics{
	{"e64", "matmul-cannon"}:       {124529, 524288, 0x402942d162ce299d, 0x4050722afc538dc3},
	{"e64", "matmul-offchip"}:      {4140823, 4194304, 0x40084f5a66b2e346, 0x400fa7530b0e4299},
	{"e64", "matmul-single"}:       {175830, 65536, 0x3ff1e4073bb0eca2, 0x40574b9415b90973},
	{"e64", "matmul-summa"}:        {193603, 524288, 0x40203f936c80344c, 0x4045281d4a9c4419},
	{"e64", "stencil-cross"}:       {243755, 320000, 0x400f81cdc46b90a7, 0x4054832ca1360782},
	{"e64", "stencil-direct"}:      {238590, 320000, 0x40101834ca46c06d, 0x4054f4da120c1fe3},
	{"e64", "stencil-naive"}:       {1311190, 320000, 0x3fe76dd96a8ab844, 0x402e81b3180f4a99},
	{"e64", "stencil-replicated"}:  {218150, 320000, 0x40119a41d566db90, 0x4056eb85b888988e},
	{"e64", "stencil-single"}:      {218150, 80000, 0x3ff19a41d566db90, 0x4056eb85b888988e},
	{"e64", "stencil-tuned"}:       {239340, 320000, 0x40100b4b8925287f, 0x4054e40a5a930cbb},
	{"e64", "stream-stencil"}:      {8168197, 1310720, 0x3fdecf3ccad3f5d7, 0x3fe40eeb940ca963},
	{"e64", "stream-stencil-deep"}: {5664179, 1310720, 0x3fe637031b6b9dc9, 0x3fececf6b65ecac9},
	{"e16", "matmul-cannon"}:       {124529, 524288, 0x402942d162ce299d, 0x4050722afc538dc3},
	{"e16", "matmul-offchip"}:      {4714696, 4194304, 0x400559d8a859ce8a, 0x402bccfcc5df9a44},
	{"e16", "matmul-single"}:       {175830, 65536, 0x3ff1e4073bb0eca2, 0x40574b9415b90973},
	{"e16", "matmul-summa"}:        {193603, 524288, 0x40203f936c80344c, 0x4045281d4a9c4419},
	{"e16", "stencil-cross"}:       {243755, 320000, 0x400f81cdc46b90a7, 0x4054832ca1360782},
	{"e16", "stencil-direct"}:      {238590, 320000, 0x40101834ca46c06d, 0x4054f4da120c1fe3},
	{"e16", "stencil-naive"}:       {1311190, 320000, 0x3fe76dd96a8ab844, 0x402e81b3180f4a99},
	{"e16", "stencil-replicated"}:  {218150, 320000, 0x40119a41d566db90, 0x4056eb85b888988e},
	{"e16", "stencil-single"}:      {218150, 80000, 0x3ff19a41d566db90, 0x4056eb85b888988e},
	{"e16", "stencil-tuned"}:       {239340, 320000, 0x40100b4b8925287f, 0x4054e40a5a930cbb},
	{"e16", "stream-stencil"}:      {8167565, 1310720, 0x3fdecfd90800f39c, 0x40040f514be09e9a},
	{"e16", "stream-stencil-deep"}: {5663715, 1310720, 0x3fe6377a6135257b, 0x400ced9203e7de23},
}

// clusterMetrics extends goldenMetrics with the chip-boundary traffic
// counters, which are the cluster's whole point: the 2x2 board is only
// conformant if it crosses the right chips the right number of times at
// the right cost.
type clusterMetrics struct {
	elapsed    uint64
	totalFlops uint64
	gflopsBits uint64
	pctBits    uint64
	crossings  uint64
	crossBytes uint64
	crossTime  uint64
}

// clusterGolden pins every registered workload on the 2x2 Parallella
// cluster, bit for bit. Generated from this implementation (the first
// to price multi-chip routes; PR 3's delivery-overcharge fix is
// baked in). Workloads whose fitted workgroup sits inside one chip
// cross nothing and keep their single-chip timings exactly; the
// chip-spanning ones (matmul-offchip, stream-stencil*) pay the
// chip-to-chip eLink. Regenerate like the single-chip table: run each
// workload with WithTopology(TopologyCluster2x2) and print the metric
// bits - and say why in the commit message.
var clusterGolden = map[string]clusterMetrics{
	"matmul-cannon":       {124529, 524288, 0x402942d162ce299d, 0x4050722afc538dc3, 0, 0, 0},
	"matmul-offchip":      {4190802, 4194304, 0x4008052258ef726e, 0x400f46af63cd1d00, 832, 362368, 13687277},
	"matmul-single":       {175830, 65536, 0x3ff1e4073bb0eca2, 0x40574b9415b90973, 0, 0, 0},
	"matmul-summa":        {193603, 524288, 0x40203f936c80344c, 0x4045281d4a9c4419, 0, 0, 0},
	"stencil-cross":       {243755, 320000, 0x400f81cdc46b90a7, 0x4054832ca1360782, 0, 0, 0},
	"stencil-direct":      {238590, 320000, 0x40101834ca46c06d, 0x4054f4da120c1fe3, 0, 0, 0},
	"stencil-naive":       {1311190, 320000, 0x3fe76dd96a8ab844, 0x402e81b3180f4a99, 0, 0, 0},
	"stencil-replicated":  {218150, 320000, 0x40119a41d566db90, 0x4056eb85b888988e, 0, 0, 0},
	"stencil-single":      {218150, 80000, 0x3ff19a41d566db90, 0x4056eb85b888988e, 0, 0, 0},
	"stencil-tuned":       {239340, 320000, 0x40100b4b8925287f, 0x4054e40a5a930cbb, 0, 0, 0},
	"stream-stencil":      {8198344, 1310720, 0x3fdeb23c06676f34, 0x3fe3fc09bed601bc, 768, 401472, 57145664},
	"stream-stencil-deep": {5682688, 1310720, 0x3fe6247d3294f466, 0x3fecd4d859dc9e3b, 384, 277792, 42075013},
}

// TestGoldenMetricsCluster2x2 pins every registered workload's metrics
// on the 2x2 Parallella cluster - including the chip-boundary crossing
// counters - to the frozen table above, bit for bit. (Before this
// table, the cluster was only smoke-checked for nonzero crossing time.)
func TestGoldenMetricsCluster2x2(t *testing.T) {
	for _, w := range epiphany.Workloads() {
		want, ok := clusterGolden[w.Name()]
		if !ok {
			if _, builtin := golden[goldenKey{"e64", w.Name()}]; builtin {
				t.Errorf("%s: no cluster golden entry - add one when registering a new built-in", w.Name())
			}
			continue
		}
		res, err := epiphany.Run(context.Background(), w, epiphany.WithTopology(epiphany.TopologyCluster2x2))
		if err != nil {
			t.Errorf("%s on cluster-2x2: %v", w.Name(), err)
			continue
		}
		m := res.Metrics()
		got := clusterMetrics{
			elapsed:    uint64(m.Elapsed),
			totalFlops: m.TotalFlops,
			gflopsBits: math.Float64bits(m.GFLOPS),
			pctBits:    math.Float64bits(m.PctPeak),
			crossings:  m.ELinkCrossings,
			crossBytes: m.ELinkCrossBytes,
			crossTime:  uint64(m.ELinkCrossTime),
		}
		if got != want {
			t.Errorf("%s on cluster-2x2 drifted from golden metrics:\n got %+v\n want %+v", w.Name(), got, want)
		}
	}
}

func checkGolden(t *testing.T, topo epiphany.Topology, w epiphany.Workload, m epiphany.Metrics) {
	t.Helper()
	want, ok := golden[goldenKey{topo.Name, w.Name()}]
	if !ok {
		t.Errorf("%s on %s: no golden entry - add one when registering a new built-in", w.Name(), topo.Name)
		return
	}
	got := goldenMetrics{
		elapsed:    uint64(m.Elapsed),
		totalFlops: m.TotalFlops,
		gflopsBits: math.Float64bits(m.GFLOPS),
		pctBits:    math.Float64bits(m.PctPeak),
	}
	if got != want {
		t.Errorf("%s on %s drifted from golden metrics:\n got  elapsed=%d flops=%d gflops=%v (bits %#x) pct=%v (bits %#x)\n want elapsed=%d flops=%d gflops=%v (bits %#x) pct=%v (bits %#x)",
			w.Name(), topo.Name,
			got.elapsed, got.totalFlops, m.GFLOPS, got.gflopsBits, m.PctPeak, got.pctBits,
			want.elapsed, want.totalFlops, math.Float64frombits(want.gflopsBits), want.gflopsBits,
			math.Float64frombits(want.pctBits), want.pctBits)
	}
	if m.ELinkCrossings != 0 || m.ELinkCrossTime != 0 {
		t.Errorf("%s on %s: single-chip run reports chip crossings (%d hops, %v)",
			w.Name(), topo.Name, m.ELinkCrossings, m.ELinkCrossTime)
	}
}

// TestGoldenMetricsSingleChip pins every registered workload's metrics
// on the e64 and e16 presets to the frozen table above, bit for bit.
func TestGoldenMetricsSingleChip(t *testing.T) {
	for _, topo := range []epiphany.Topology{epiphany.TopologyE64, epiphany.TopologyE16} {
		for _, w := range epiphany.Workloads() {
			if _, builtin := golden[goldenKey{"e64", w.Name()}]; !builtin {
				continue // externally registered workloads are not pinned
			}
			res, err := epiphany.Run(context.Background(), w, epiphany.WithTopology(topo))
			if err != nil {
				t.Errorf("%s on %s: %v", w.Name(), topo.Name, err)
				continue
			}
			checkGolden(t, topo, w, res.Metrics())
		}
	}
}

// TestGoldenMetricsRecycledSystems pins the Runner's System-recycling
// path to the same frozen table: a single worker runs every built-in
// twice back to back, so all but the first job execute on boards
// recycled through System.Reset, and every one of them must still hit
// the seed metrics bit for bit.
func TestGoldenMetricsRecycledSystems(t *testing.T) {
	var jobs []epiphany.Job
	var names []string
	for pass := 0; pass < 2; pass++ {
		for _, w := range epiphany.Workloads() {
			if _, builtin := golden[goldenKey{"e64", w.Name()}]; !builtin {
				continue
			}
			jobs = append(jobs, epiphany.Job{Workload: w})
			names = append(names, w.Name())
		}
	}
	r := &epiphany.Runner{Workers: 1}
	br, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	for i, jr := range br.Results {
		w, _ := epiphany.WorkloadByName(names[i])
		checkGolden(t, epiphany.TopologyE64, w, jr.Result.Metrics())
	}
}

// TestGoldenDefaultBoardIsE64 pins the option-less Run path to the same
// golden values: the default board must stay the paper's 8x8 device.
func TestGoldenDefaultBoardIsE64(t *testing.T) {
	for _, name := range []string{"stencil-tuned", "matmul-cannon", "stream-stencil"} {
		w, _ := epiphany.WorkloadByName(name)
		res, err := epiphany.Run(context.Background(), w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkGolden(t, epiphany.TopologyE64, w, res.Metrics())
	}
}

// TestClusterRunsCrossChips: on the 2x2 Parallella cluster, workloads
// whose workgroups span the chip grid must report nonzero chip-to-chip
// eLink transfer time in Metrics, cost real simulated time versus the
// monolithic E64, and stay bit-deterministic across repeated runs.
func TestClusterRunsCrossChips(t *testing.T) {
	for _, name := range []string{"matmul-offchip", "stream-stencil"} {
		w, _ := epiphany.WorkloadByName(name)
		run := func() epiphany.Metrics {
			res, err := epiphany.Run(context.Background(), w, epiphany.WithTopology(epiphany.TopologyCluster2x2))
			if err != nil {
				t.Fatalf("%s on cluster-2x2: %v", name, err)
			}
			return res.Metrics()
		}
		m := run()
		if m.ELinkCrossings == 0 || m.ELinkCrossTime == 0 || m.ELinkCrossBytes == 0 {
			t.Errorf("%s on cluster-2x2: no chip-boundary traffic reported (%+v)", name, m)
		}
		e64, _ := golden[goldenKey{"e64", name}]
		if uint64(m.Elapsed) <= e64.elapsed {
			t.Errorf("%s on cluster-2x2 ran in %v, not slower than the monolithic E64 (%v)",
				name, m.Elapsed, epiphany.Time(e64.elapsed))
		}
		if again := run(); again != m {
			t.Errorf("%s on cluster-2x2 not deterministic:\n %+v\n %+v", name, m, again)
		}
	}
	// A workgroup that fits inside one chip of the cluster crosses
	// nothing and keeps its single-chip metrics exactly.
	w, _ := epiphany.WorkloadByName("stencil-tuned")
	res, err := epiphany.Run(context.Background(), w, epiphany.WithTopology(epiphany.TopologyCluster2x2))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, epiphany.TopologyE64, w, res.Metrics())
}
