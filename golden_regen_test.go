package epiphany_test

// The golden-table regenerator. `EPIPHANY_REGEN=1 go test -run
// TestRegenGoldens -v .` prints the three frozen tables - the
// single-chip golden map, the cluster map, and the e64 energy map - in
// exactly the form the conformance files paste them, so a legitimate
// metric shift (a kernel fix, a recalibration) is a copy-paste plus a
// commit-message explanation instead of an error-prone retyping of
// float bits. The CSV goldens have their own regenerators (the
// epiphany-sweep invocations named in sweep_test.go and
// scaling_study_test.go). Without the env var the test skips, so the
// normal suite never mistakes printing for checking.

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"

	"epiphany"
)

func TestRegenGoldens(t *testing.T) {
	if os.Getenv("EPIPHANY_REGEN") == "" {
		t.Skip("set EPIPHANY_REGEN=1 to print regenerated golden tables")
	}
	fmt.Println("// conformance_test.go: golden")
	for _, topo := range []epiphany.Topology{epiphany.TopologyE64, epiphany.TopologyE16} {
		for _, w := range epiphany.Workloads() {
			res, err := epiphany.Run(context.Background(), w, epiphany.WithTopology(topo))
			if err != nil {
				t.Fatalf("%s on %s: %v", w.Name(), topo.Name, err)
			}
			m := res.Metrics()
			fmt.Printf("\t{%q, %q}: {%d, %d, %#x, %#x},\n",
				topo.Name, w.Name(), uint64(m.Elapsed), m.TotalFlops,
				math.Float64bits(m.GFLOPS), math.Float64bits(m.PctPeak))
		}
	}
	fmt.Println("// conformance_test.go: clusterGolden")
	for _, w := range epiphany.Workloads() {
		res, err := epiphany.Run(context.Background(), w, epiphany.WithTopology(epiphany.TopologyCluster2x2))
		if err != nil {
			t.Fatalf("%s on cluster-2x2: %v", w.Name(), err)
		}
		m := res.Metrics()
		fmt.Printf("\t%q: {%d, %d, %#x, %#x, %d, %d, %d},\n",
			w.Name(), uint64(m.Elapsed), m.TotalFlops,
			math.Float64bits(m.GFLOPS), math.Float64bits(m.PctPeak),
			m.ELinkCrossings, m.ELinkCrossBytes, uint64(m.ELinkCrossTime))
	}
	fmt.Println("// conformance_energy_test.go: goldenEnergy")
	for _, w := range epiphany.Workloads() {
		res, err := epiphany.Run(context.Background(), w,
			epiphany.WithPowerModel("epiphany-iv-28nm", ""))
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		m := res.Metrics()
		b := math.Float64bits
		fmt.Printf("\t%q: {%#x, %#x, %#x, %#x, %#x, %#x, %#x, %#x, %#x, %#x, %#x, %#x, %#x},\n",
			w.Name(), b(m.EnergyJ), b(m.AvgPowerW), b(m.GFLOPSPerWatt), b(m.EDPJs),
			b(m.Energy.CoreActiveJ), b(m.Energy.CoreIdleJ), b(m.Energy.FPUJ),
			b(m.Energy.SRAMJ), b(m.Energy.DRAMJ), b(m.Energy.MeshJ),
			b(m.Energy.ELinkJ), b(m.Energy.C2CJ), b(m.Energy.LeakageJ))
	}
}
