package epiphany

import (
	"epiphany/internal/serve"
)

// The simulation-as-a-service API. A Server is an http.Handler that
// exposes jobs, sweeps, registry listings and service stats as a
// REST/JSON surface over the deterministic simulator, fronted by a
// content-addressed result cache: because every simulation is a pure
// function of its canonical spec, a result computed once is the result
// forever, and a repeated job or sweep cell costs a lookup instead of a
// simulation. The epiphany-serve command is a thin flag-and-signals
// wrapper around this API; embed the handler directly to mount the
// service inside a larger process.
type (
	// Server is the simulation service handler; create with NewServer.
	Server = serve.Server
	// ServerConfig tunes the service: worker and queue bounds, cache
	// capacity, optional on-disk cache persistence, request budget. The
	// zero value is usable.
	ServerConfig = serve.Config
	// ServerStats is the /v1/stats payload: cache hit/miss counts,
	// queue occupancy, in-flight simulations, and cumulative
	// simulated-vs-cache-served wall time.
	ServerStats = serve.Stats
	// ServeJobSpec is the POST /v1/jobs body: one experiment cell
	// spelled the way the CLIs spell it.
	ServeJobSpec = serve.JobSpec
	// ServeJobResponse is the job endpoints' body; cache hits return it
	// byte-identical to the miss that populated the cache.
	ServeJobResponse = serve.JobResponse
)

// NewServer builds a simulation service with the given configuration.
// The error is the cache persistence directory's, when one is
// configured and cannot be created.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.NewServer(cfg) }
