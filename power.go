package epiphany

import (
	"epiphany/internal/power"
	"epiphany/internal/workload"
)

// The energy / DVFS API. A PowerModel prices the activity counters the
// simulator accumulates during every run (core cycles, flops, memory
// bytes, mesh byte-hops, chip crossings) into joules, watts and
// GFLOPS/Watt; DVFS operating points re-derive the same run at other
// frequency/voltage pairs analytically (cycle counts are
// frequency-invariant, so the time-domain metrics never move). Attach a
// model with WithPowerModel, or sweep it: SweepPlan.Power and
// SweepPlan.DVFS add energy columns and a frequency-scaling axis to any
// experiment grid.
type (
	// PowerModel is a per-component energy model with named presets
	// ("epiphany-iv-28nm" recovers the paper's ~2 W chip draw).
	PowerModel = power.Model
	// OperatingPoint is one DVFS frequency/voltage pair.
	OperatingPoint = power.OperatingPoint
	// EnergyBreakdown decomposes a run's energy by component, in joules.
	EnergyBreakdown = power.Breakdown
	// EnergyUsage is a computed energy report (total joules, average
	// watts, energy-delay product, per-component breakdown).
	EnergyUsage = power.Usage
	// PowerSystem is one row of the paper's Table VII cross-system
	// efficiency comparison.
	PowerSystem = power.System
)

// PowerModels lists the preset power-model names.
func PowerModels() []string { return power.Models() }

// PowerModelByName looks up a preset power model
// ("epiphany-iv-28nm", "epiphany-iii-65nm").
func PowerModelByName(name string) (*PowerModel, bool) { return power.ModelByName(name) }

// ParseDVFSPoint parses the DVFS axis spelling of an operating point:
// "FREQ[MHz]@VOLT[V]", e.g. "600MHz@1.0V" or "500@0.9". Frequency and
// voltage must be positive.
func ParseDVFSPoint(s string) (OperatingPoint, error) { return power.ParsePoint(s) }

// WithPowerModel attaches the named power-model preset and optional
// DVFS operating point ("" or "nominal" for the model's nominal) to a
// run: the Metrics gain EnergyJ, AvgPowerW, GFLOPSPerWatt, EDPJs and
// the per-component EnergyBreakdown, derived from the run's activity
// counters after the simulation completes. Energy accounting is purely
// additive - the time-domain metrics are bit-identical with or without
// it - but the model is part of the run's experiment identity: Runner
// pools boards per (topology, model, point), like it pools per C2C
// override.
func WithPowerModel(model, dvfs string) Option { return workload.WithPowerModel(model, dvfs) }

// UnwrapResult peels the energy decoration off a Result, returning the
// workload's own concrete result for type assertions (a run executed
// with WithPowerModel reports its Metrics through a wrapper).
func UnwrapResult(res Result) Result { return workload.Unwrap(res) }

// PowerComparison reproduces the paper's Table VII with every row - the
// Epiphany's included - transcribed from the printed values.
func PowerComparison() []PowerSystem { return power.Comparison }

// ComputedPowerComparison returns Table VII with the simulated Epiphany
// row computed from the energy model (peak GFLOPS from the geometry and
// clock, chip draw from the model's full-load calibration scenario)
// instead of transcribed.
func ComputedPowerComparison(m *PowerModel, cores int) []PowerSystem {
	return power.ComputedComparison(m, cores)
}
