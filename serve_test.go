package epiphany_test

// The service acceptance harness: a sweep executed through the HTTP
// surface must render exactly the bytes the in-process Sweep API
// produces - pinned, like Sweep itself, against the golden CSV - and a
// cache hit must be byte-identical to the miss that populated it.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"epiphany"
)

func serveRequest(t *testing.T, s *epiphany.Server, method, target string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			t.Fatal(err)
		}
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(method, target, bytes.NewReader(buf)))
	if w.Code != http.StatusOK {
		t.Fatalf("%s %s: status %d, body %s", method, target, w.Code, w.Body.String())
	}
	return w
}

// TestServeSweepMatchesGolden: the default sweep requested over the
// service API is byte-for-byte the pinned golden CSV - the service
// layer (queue, cache, rendering) adds nothing and loses nothing.
func TestServeSweepMatchesGolden(t *testing.T) {
	want, err := os.ReadFile("testdata/sweep_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	s, err := epiphany.NewServer(epiphany.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold := serveRequest(t, s, "POST", "/v1/sweeps?format=csv", epiphany.SweepPlan{})
	if cold.Body.String() != string(want) {
		t.Errorf("service sweep CSV drifted from testdata/sweep_golden.csv:\n%s", cold.Body.String())
	}
	// Warm pass: every cell from cache, same bytes.
	warm := serveRequest(t, s, "POST", "/v1/sweeps?format=csv", epiphany.SweepPlan{})
	if !bytes.Equal(warm.Body.Bytes(), cold.Body.Bytes()) {
		t.Error("cache-served sweep differs from the simulated one")
	}
	st := s.Stats()
	cells := int64(len(epiphany.Workloads()) * len(epiphany.Topologies()))
	if st.CacheMisses != cells {
		t.Errorf("cache misses %d, want %d (one per cell, cold pass only)", st.CacheMisses, cells)
	}
	if st.CacheHits != cells {
		t.Errorf("cache hits %d, want %d (every warm-pass cell)", st.CacheHits, cells)
	}
}

// TestServeJobHitMissIdentityPublic exercises the public aliases
// end to end: submit, re-submit, compare bytes, check stats.
func TestServeJobHitMissIdentityPublic(t *testing.T) {
	s, err := epiphany.NewServer(epiphany.ServerConfig{CacheEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	spec := epiphany.ServeJobSpec{Workload: "stencil-tuned", Topo: "e16"}
	miss := serveRequest(t, s, "POST", "/v1/jobs", spec)
	hit := serveRequest(t, s, "POST", "/v1/jobs", spec)
	if !bytes.Equal(miss.Body.Bytes(), hit.Body.Bytes()) {
		t.Error("cache hit body differs from the miss body")
	}
	if miss.Header().Get("X-Epiphany-Cache") != "miss" || hit.Header().Get("X-Epiphany-Cache") != "hit" {
		t.Errorf("cache headers %q then %q, want miss then hit",
			miss.Header().Get("X-Epiphany-Cache"), hit.Header().Get("X-Epiphany-Cache"))
	}

	var resp epiphany.ServeJobResponse
	if err := json.Unmarshal(hit.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" || resp.Result.Err != "" || resp.Result.Metrics.Elapsed == 0 {
		t.Errorf("job response %+v", resp)
	}

	var st epiphany.ServerStats = s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}
