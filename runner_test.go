package epiphany

import (
	"context"
	"strings"
	"testing"
)

// TestRunnerMatchesSequential batch-runs every registered workload (>= 8,
// spanning stencil, matmul and streaming scenarios) concurrently and
// checks each job's Metrics are byte-identical to a sequential run of
// the same workload: concurrency must not perturb determinism.
func TestRunnerMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full workload registry twice")
	}
	ws := Workloads()
	if len(ws) < 8 {
		t.Fatalf("registry has %d workloads, want >= 8", len(ws))
	}
	sequential := make(map[string]Metrics, len(ws))
	for _, w := range ws {
		res, err := Run(context.Background(), w)
		if err != nil {
			t.Fatalf("sequential %q: %v", w.Name(), err)
		}
		sequential[w.Name()] = res.Metrics()
	}

	batch, err := (&Runner{Workers: 8}).RunWorkloads(context.Background(), ws...)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(ws) {
		t.Fatalf("%d results for %d jobs", len(batch.Results), len(ws))
	}
	for i, jr := range batch.Results {
		if jr.Err != nil {
			t.Errorf("job %q failed: %v", jr.Name, jr.Err)
			continue
		}
		if jr.Name != ws[i].Name() {
			t.Errorf("result %d is %q, want %q (submission order lost)", i, jr.Name, ws[i].Name())
		}
		if got, want := jr.Result.Metrics(), sequential[jr.Name]; got != want {
			t.Errorf("%q: concurrent metrics %+v != sequential %+v", jr.Name, got, want)
		}
	}
}

// TestRunnerDeterministicTwins runs the same seeded workload twice in
// one concurrent batch; both copies must report byte-identical Metrics.
func TestRunnerDeterministicTwins(t *testing.T) {
	w, ok := WorkloadByName("stencil-tuned")
	if !ok {
		t.Fatal("stencil-tuned missing")
	}
	batch, err := (&Runner{Workers: 2}).RunWorkloads(context.Background(), w, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.Err(); err != nil {
		t.Fatal(err)
	}
	a := batch.Results[0].Result.Metrics()
	b := batch.Results[1].Result.Metrics()
	if a != b {
		t.Fatalf("twin runs diverge: %+v vs %+v", a, b)
	}
	if a.Elapsed == 0 || a.GFLOPS <= 0 {
		t.Fatalf("degenerate metrics: %+v", a)
	}
}

// TestRunnerCapturesPerJobErrors mixes bad jobs into a batch: failures
// must be captured per job without aborting the rest.
func TestRunnerCapturesPerJobErrors(t *testing.T) {
	good, _ := WorkloadByName("stencil-single")
	bad := &StencilWorkload{Label: "bad", Config: StencilConfig{Rows: -1}}
	batch, err := (&Runner{Workers: 3}).RunBatch(context.Background(), []Job{
		{Workload: good},
		{Workload: bad},
		{Workload: nil},
		{Workload: good},
	})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Results[0].Err != nil || batch.Results[3].Err != nil {
		t.Fatalf("good jobs failed: %v / %v", batch.Results[0].Err, batch.Results[3].Err)
	}
	if batch.Results[1].Err == nil {
		t.Fatal("invalid config must fail its job")
	}
	if batch.Results[2].Err == nil {
		t.Fatal("nil workload must fail its job")
	}
	if len(batch.Failed()) != 2 {
		t.Fatalf("Failed() = %d jobs, want 2", len(batch.Failed()))
	}
	if be := batch.Err(); be == nil || !strings.Contains(be.Error(), "2 of 4") {
		t.Fatalf("batch error should summarise 2 of 4 failures, got: %v", be)
	}
}

// TestRunnerContextCancellation: a cancelled context stops the batch;
// jobs that never started report the context error.
func TestRunnerContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w, _ := WorkloadByName("stencil-single")
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Workload: w}
	}
	batch, err := (&Runner{Workers: 2}).RunBatch(ctx, jobs)
	if err != context.Canceled {
		t.Fatalf("RunBatch error = %v, want context.Canceled", err)
	}
	if len(batch.Results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(batch.Results), len(jobs))
	}
	for i, jr := range batch.Results {
		if jr.Err == nil {
			t.Fatalf("job %d ran despite the cancelled context", i)
		}
	}
}

// TestRunnerBaseOptions: Runner-level options apply to every job and
// per-job options append after them.
func TestRunnerBaseOptions(t *testing.T) {
	// The batch-wide mesh is 1x1; stencil-tuned (2x2 group) clamps to a
	// single core there, and a per-job override restores the full group.
	single, _ := WorkloadByName("stencil-single")
	tuned, _ := WorkloadByName("stencil-tuned")
	r := &Runner{Workers: 2, Options: []Option{WithMeshSize(1, 1)}}
	batch, err := r.RunBatch(context.Background(), []Job{
		{Workload: single},
		{Workload: tuned},
		{Workload: tuned, Options: []Option{WithMeshSize(2, 2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range batch.Results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
	}
	clamped := batch.Results[1].Result.Metrics()
	full := batch.Results[2].Result.Metrics()
	if clamped.TotalFlops*4 != full.TotalFlops {
		t.Fatalf("clamped run did 1/%d of the full run's work, want 1/4",
			full.TotalFlops/max(clamped.TotalFlops, 1))
	}
}
