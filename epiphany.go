// Package epiphany is a deterministic simulator of the Adapteva
// Epiphany-IV 64-core network-on-chip coprocessor and a reproduction of
// the programming study "Programming the Adapteva Epiphany 64-core
// Network-on-chip Coprocessor" (Varghese, Edwards, Mitra, Rendell; IPDPS
// Workshops 2014, arXiv:1410.8772).
//
// The package offers four levels of use:
//
//   - Workload level: experiments implement the Workload interface
//     (Name, Validate, Run) and report the common Metrics (GFLOPS, % of
//     peak, compute/transfer split). The paper's three applications -
//     the hand-scheduled 5-point heat stencil, the three-level Cannon
//     matrix multiplication, and the temporally blocked streaming
//     stencil - ship as StencilWorkload, MatmulWorkload and
//     StreamStencilWorkload, with ready-made presets in the registry
//     (Register, Workloads, WorkloadByName). Run executes one workload;
//     Runner.RunBatch executes many concurrently, each on its own fresh
//     System.
//
//   - Kernel level: Chip, Workgroup and Core expose an Epiphany-SDK-like
//     programming surface (direct remote stores, DMA descriptors with
//     chaining and 2D strides, event timers, barriers, hardware mutex)
//     for writing new device kernels against the simulated chip.
//
//   - Application level (deprecated): System.RunStencil, System.RunMatmul
//     and System.RunStreamStencil are thin shims over the workload level,
//     kept so existing callers compile.
//
//   - Experiment level: the Experiments list regenerates every table and
//     figure from the paper's evaluation, and Sweep runs declarative
//     workload x topology x seed grids into deterministic scaling
//     tables (speedup, parallel efficiency, chip-boundary crossing
//     share) against a named baseline.
//
// Every run can additionally be metered by the event-sourced energy
// subsystem (WithPowerModel, SweepPlan.Power/DVFS): activity counters
// accumulated during the simulation are priced into joules, watts and
// GFLOPS/Watt by a calibrated per-component power model, with DVFS
// operating points as an analytic frequency/voltage axis - reproducing
// the paper's §VIII efficiency claims (~32 GFLOPS/W measured-style,
// 38.4 at peak) from first principles instead of the assumed 2 W.
//
// Every simulation is bit-deterministic: the same program and seed
// produce identical virtual timings and memory contents on every run,
// sequentially or across a concurrent batch.
package epiphany

import (
	"epiphany/internal/bench"
	"epiphany/internal/core"
	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/sdk"
	"epiphany/internal/sim"
	"epiphany/internal/system"
)

// Re-exported configuration and result types for the built-in workloads.
type (
	// StencilConfig configures a heat-stencil run (paper §VI).
	StencilConfig = core.StencilConfig
	// StencilResult reports a stencil run.
	StencilResult = core.StencilResult
	// MatmulConfig configures a matrix multiplication (paper §VII).
	MatmulConfig = core.MatmulConfig
	// MatmulResult reports a matmul run.
	MatmulResult = core.MatmulResult
	// StreamStencilConfig configures the temporally blocked streaming
	// stencil (the paper's §IX future work, implemented here).
	StreamStencilConfig = core.StreamStencilConfig
	// StreamStencilResult reports a streamed stencil run.
	StreamStencilResult = core.StreamStencilResult
	// Chip is the simulated device.
	Chip = ecore.Chip
	// Core is the per-eCore kernel interface.
	Core = ecore.Core
	// Host is the ARM-side controller model.
	Host = host.Host
	// HostProc is the host program's execution context.
	HostProc = host.Proc
	// Workgroup is a rectangle of cores (SDK e_group_config).
	Workgroup = sdk.Workgroup
	// Time is virtual time in units of 1/3 ns (5 units per core cycle).
	Time = sim.Time
)

// DefaultCoefs are the standard heat-diffusion stencil weights.
var DefaultCoefs = core.DefaultCoefs

// System is one simulated board: engine, chip and host. A System runs a
// single experiment; build a fresh one per run - or let Runner.RunBatch
// hand every workload its own. Custom Workload implementations call
// System.Acquire before driving the board so stale systems are refused.
type System = system.System

// NewSystem builds the standard 8x8 Epiphany-IV system.
func NewSystem() *System { return system.New() }

// NewSystemSize builds a rows x cols single-chip device (for studying
// smaller or hypothetical larger meshes; the paper's device is 8x8).
func NewSystemSize(rows, cols int) *System { return system.NewSize(rows, cols) }

// NewSystemTopology builds a system on the given fabric topology: a
// single chip (TopologyE16, TopologyE64) or a multi-chip board
// (TopologyCluster2x2, or any custom Topology). Invalid geometries
// panic; Topology.Validate reports them as an error instead.
func NewSystemTopology(t Topology) *System { return system.NewTopology(t) }

// StreamStencilReference computes the expected streamed-stencil output
// (plain global Jacobi iteration, which the kernel reproduces exactly).
func StreamStencilReference(cfg StreamStencilConfig) [][]float32 {
	return core.StreamStencilReference(cfg)
}

// StencilReference computes the host-side reference result for cfg.
func StencilReference(cfg StencilConfig) [][]float32 { return core.StencilReference(cfg) }

// MatmulReference computes the host-side reference product for cfg.
func MatmulReference(cfg MatmulConfig) []float32 { return core.MatmulReference(cfg) }

// MaxAbsDiff returns the largest elementwise difference between two
// result vectors.
func MaxAbsDiff(x, y []float32) float64 { return core.MaxAbsDiff(x, y) }

// Experiment is one regenerable table or figure from the paper.
type Experiment = bench.Experiment

// Experiments lists every table and figure of the paper's evaluation.
var Experiments = bench.Experiments

// ExperimentByName looks up one experiment (e.g. "fig6", "table5").
func ExperimentByName(name string) (Experiment, bool) { return bench.ByName(name) }
