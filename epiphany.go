// Package epiphany is a deterministic simulator of the Adapteva
// Epiphany-IV 64-core network-on-chip coprocessor and a reproduction of
// the programming study "Programming the Adapteva Epiphany 64-core
// Network-on-chip Coprocessor" (Varghese, Edwards, Mitra, Rendell; IPDPS
// Workshops 2014, arXiv:1410.8772).
//
// The package offers three levels of use:
//
//   - Application level: RunStencil and RunMatmul execute the paper's two
//     application kernels (a hand-scheduled 5-point heat stencil and a
//     three-level Cannon matrix multiplication) end to end, including the
//     ARM-host orchestration, and report performance the way the paper
//     does (GFLOPS, % of peak, compute/transfer split).
//
//   - Kernel level: Chip, Workgroup and Core expose an Epiphany-SDK-like
//     programming surface (direct remote stores, DMA descriptors with
//     chaining and 2D strides, event timers, barriers, hardware mutex)
//     for writing new device kernels against the simulated chip.
//
//   - Experiment level: the Experiments list regenerates every table and
//     figure from the paper's evaluation.
//
// Every simulation is bit-deterministic: the same program and seed
// produce identical virtual timings and memory contents on every run.
package epiphany

import (
	"fmt"

	"epiphany/internal/bench"
	"epiphany/internal/core"
	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/sdk"
	"epiphany/internal/sim"
)

// Re-exported configuration and result types for the application level.
type (
	// StencilConfig configures a heat-stencil run (paper §VI).
	StencilConfig = core.StencilConfig
	// StencilResult reports a stencil run.
	StencilResult = core.StencilResult
	// MatmulConfig configures a matrix multiplication (paper §VII).
	MatmulConfig = core.MatmulConfig
	// MatmulResult reports a matmul run.
	MatmulResult = core.MatmulResult
	// StreamStencilConfig configures the temporally blocked streaming
	// stencil (the paper's §IX future work, implemented here).
	StreamStencilConfig = core.StreamStencilConfig
	// StreamStencilResult reports a streamed stencil run.
	StreamStencilResult = core.StreamStencilResult
	// Chip is the simulated device.
	Chip = ecore.Chip
	// Core is the per-eCore kernel interface.
	Core = ecore.Core
	// Host is the ARM-side controller model.
	Host = host.Host
	// HostProc is the host program's execution context.
	HostProc = host.Proc
	// Workgroup is a rectangle of cores (SDK e_group_config).
	Workgroup = sdk.Workgroup
	// Time is virtual time in units of 1/3 ns (5 units per core cycle).
	Time = sim.Time
)

// DefaultCoefs are the standard heat-diffusion stencil weights.
var DefaultCoefs = core.DefaultCoefs

// System is one simulated board: engine, chip and host. A System runs a
// single experiment; build a fresh one per run so that virtual time,
// memories and statistics start clean.
type System struct {
	eng  *sim.Engine
	chip *ecore.Chip
	host *host.Host
	used bool
}

// NewSystem builds the standard 8x8 Epiphany-IV system.
func NewSystem() *System { return NewSystemSize(8, 8) }

// NewSystemSize builds a rows x cols device (for studying smaller or
// hypothetical larger meshes; the paper's device is 8x8).
func NewSystemSize(rows, cols int) *System {
	eng := sim.NewEngine()
	chip := ecore.NewChip(eng, rows, cols)
	return &System{eng: eng, chip: chip, host: host.New(chip)}
}

// Chip returns the device for kernel-level programming.
func (s *System) Chip() *Chip { return s.chip }

// Host returns the ARM host model.
func (s *System) Host() *Host { return s.host }

// Engine returns the simulation engine (for advanced scheduling).
func (s *System) Engine() *sim.Engine { return s.eng }

// NewWorkgroup creates a workgroup on this system's chip.
func (s *System) NewWorkgroup(originRow, originCol, rows, cols int) (*Workgroup, error) {
	return sdk.NewWorkgroup(s.chip, originRow, originCol, rows, cols)
}

func (s *System) takeRun() error {
	if s.used {
		return fmt.Errorf("epiphany: a System runs one experiment; create a fresh one with NewSystem")
	}
	s.used = true
	return nil
}

// RunStencil executes a full host-orchestrated stencil experiment.
func (s *System) RunStencil(cfg StencilConfig) (*StencilResult, error) {
	if err := s.takeRun(); err != nil {
		return nil, err
	}
	return core.RunStencil(s.host, cfg)
}

// RunMatmul executes a full host-orchestrated matrix multiplication.
func (s *System) RunMatmul(cfg MatmulConfig) (*MatmulResult, error) {
	if err := s.takeRun(); err != nil {
		return nil, err
	}
	return core.RunMatmul(s.host, cfg)
}

// RunStreamStencil executes the §IX streaming stencil with temporal
// blocking: the grid lives in shared DRAM and blocks page through the
// chip, with TBlock iterations applied per residency.
func (s *System) RunStreamStencil(cfg StreamStencilConfig) (*StreamStencilResult, error) {
	if err := s.takeRun(); err != nil {
		return nil, err
	}
	return core.RunStreamStencil(s.host, cfg)
}

// StreamStencilReference computes the expected streamed-stencil output
// (plain global Jacobi iteration, which the kernel reproduces exactly).
func StreamStencilReference(cfg StreamStencilConfig) [][]float32 {
	return core.StreamStencilReference(cfg)
}

// StencilReference computes the host-side reference result for cfg.
func StencilReference(cfg StencilConfig) [][]float32 { return core.StencilReference(cfg) }

// MatmulReference computes the host-side reference product for cfg.
func MatmulReference(cfg MatmulConfig) []float32 { return core.MatmulReference(cfg) }

// MaxAbsDiff returns the largest elementwise difference between two
// result vectors.
func MaxAbsDiff(x, y []float32) float64 { return core.MaxAbsDiff(x, y) }

// Experiment is one regenerable table or figure from the paper.
type Experiment = bench.Experiment

// Experiments lists every table and figure of the paper's evaluation.
var Experiments = bench.Experiments

// ExperimentByName looks up one experiment (e.g. "fig6", "table5").
func ExperimentByName(name string) (Experiment, bool) { return bench.ByName(name) }
