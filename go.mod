module epiphany

go 1.24
