package epiphany

import (
	"context"
	"strings"
	"testing"
)

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) < 8 {
		t.Fatalf("%d workloads registered, want >= 8 built-in presets", len(ws))
	}
	for i := 1; i < len(ws); i++ {
		if ws[i-1].Name() >= ws[i].Name() {
			t.Fatalf("Workloads() not sorted: %q before %q", ws[i-1].Name(), ws[i].Name())
		}
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("built-in %q does not validate: %v", w.Name(), err)
		}
	}
	w, ok := WorkloadByName("stencil-tuned")
	if !ok {
		t.Fatal("stencil-tuned missing from the registry")
	}
	if w.Name() != "stencil-tuned" {
		t.Fatalf("lookup returned %q", w.Name())
	}
	if _, ok := WorkloadByName("no-such-workload"); ok {
		t.Fatal("phantom workload resolved")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register(&StencilWorkload{Label: "stencil-tuned"})
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil registration must panic")
		}
	}()
	Register(nil)
}

func TestRunValidates(t *testing.T) {
	_, err := Run(context.Background(), &StencilWorkload{Config: StencilConfig{
		Rows: -1, Cols: 20, Iters: 1, GroupRows: 1, GroupCols: 1,
	}})
	if err == nil {
		t.Fatal("invalid config must be refused before simulating")
	}
}

func TestRunWithMeshSize(t *testing.T) {
	w, _ := WorkloadByName("stencil-tuned")
	if _, err := Run(context.Background(), w, WithMeshSize(2, 2)); err != nil {
		t.Fatalf("2x2 mesh: %v", err)
	}
	// The built-ins implement TopologyFitter: the 2x2 workgroup clamps
	// itself to a 1x1 device instead of failing.
	res, err := Run(context.Background(), w, WithMeshSize(1, 1))
	if err != nil {
		t.Fatalf("1x1 mesh: %v", err)
	}
	if g := res.(*StencilResult).Global; len(g) != 40 {
		t.Fatalf("clamped single-core run gathered %d rows, want 40", len(g))
	}
	// An impossible device is still refused.
	if _, err := Run(context.Background(), w, WithMeshSize(0, 8)); err == nil {
		t.Fatal("a zero-row mesh must be refused")
	}
}

func TestRunWithSeed(t *testing.T) {
	w := &StencilWorkload{Config: StencilConfig{
		Rows: 20, Cols: 20, Iters: 2, GroupRows: 1, GroupCols: 1, Tuned: true, Seed: 1,
	}}
	run := func(opts ...Option) [][]float32 {
		res, err := Run(context.Background(), w, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res.(*StencilResult).Global
	}
	a := run(WithSeed(5))
	b := run(WithSeed(5))
	c := run(WithSeed(6))
	if w.Config.Seed != 1 {
		t.Fatalf("WithSeed mutated the original workload (seed %d)", w.Config.Seed)
	}
	same := func(x, y [][]float32) bool {
		for r := range x {
			for col := range x[r] {
				if x[r][col] != y[r][col] {
					return false
				}
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed must reproduce the same field")
	}
	if same(a, c) {
		t.Fatal("different seeds must produce different fields")
	}
}

func TestSystemSingleUsePointsAtRunner(t *testing.T) {
	sys := NewSystem()
	if err := sys.Acquire(); err != nil {
		t.Fatal(err)
	}
	err := sys.Acquire()
	if err == nil {
		t.Fatal("second Acquire must fail")
	}
	if !strings.Contains(err.Error(), "RunBatch") {
		t.Fatalf("reuse error should point at the batch API, got: %v", err)
	}
}
