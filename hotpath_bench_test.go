package epiphany

import (
	"context"
	"io"
	"testing"
)

// BenchmarkRunBatch12 pushes every registered built-in workload through
// the batch Runner once per iteration - the ROADMAP's batch-serving hot
// path. Workers defaults to GOMAXPROCS; per-job System cost (build or
// recycle) is inside the measured loop on purpose.
//
// Since the energy subsystem landed, this benchmark runs with the
// activity counters accruing (they are unconditional - bare integer
// increments on the fabric hot paths); its before/after in BENCH_5.json
// is the counter-overhead proof for the time-domain path.
func BenchmarkRunBatch12(b *testing.B) {
	benchRunBatch12(b, nil)
}

// BenchmarkRunBatch12Energy is the energy-metered variant: the same
// batch with the power model attached, adding the per-job counter
// snapshot and derivation. The delta against BenchmarkRunBatch12 is the
// full cost of asking for energy; the acceptance bar is <= 2% ns/op
// with no extra allocations beyond the one decorated result per job.
func BenchmarkRunBatch12Energy(b *testing.B) {
	benchRunBatch12(b, []Option{WithPowerModel("epiphany-iv-28nm", "")})
}

// BenchmarkRunBatch12Timeline is the observability-tax variant: the
// same batch with a Timeline recording every core span, DMA leg and
// crossing into io.Discard. This prices the recorder hooks when armed;
// the nil-recorder cost (hooks present but disabled, the default every
// other benchmark pays) is budgeted at <= 1% against the BENCH_9
// baseline and read off BenchmarkRunBatch12 itself in BENCH_10.json.
func BenchmarkRunBatch12Timeline(b *testing.B) {
	benchRunBatch12(b, []Option{WithTimeline(io.Discard)})
}

// BenchmarkRunBatch12EngineStats adds the scheduler-counter snapshot to
// every job - one Stats() walk over the shards per run plus the
// decorated result, with the counters themselves accruing always.
func BenchmarkRunBatch12EngineStats(b *testing.B) {
	benchRunBatch12(b, []Option{WithEngineStats()})
}

func benchRunBatch12(b *testing.B, opts []Option) {
	ws := Workloads()
	if len(ws) < 12 {
		b.Fatalf("expected >= 12 registered workloads, have %d", len(ws))
	}
	r := &Runner{Options: opts}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := r.RunWorkloads(ctx, ws...)
		if err != nil {
			b.Fatal(err)
		}
		if err := br.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleJob measures one simulation's wall-clock latency on
// multi-chip boards across the shard/worker axes - the axis the
// sharded engine exists for. shards=1 is the classic single-heap
// engine (the before-this-PR baseline, preserved bit-identical);
// shards=N/workers=1 prices the sequential shard merge; shards=N/
// workers=N is the parallel barrier-window scheduler, whose speedup
// needs as many host cores as workers (on fewer cores the barrier
// overhead shows up instead - BENCH_8.json records both readings).
func BenchmarkSingleJob(b *testing.B) {
	cases := []struct {
		name            string
		topo            string
		workload        string
		shards, workers int
	}{
		{"Cluster2x2/shards=1", "cluster-2x2", "matmul-offchip", 1, 1},
		{"Cluster2x2/shards=4-workers=1", "cluster-2x2", "matmul-offchip", 4, 1},
		{"Cluster2x2/shards=4-workers=4", "cluster-2x2", "matmul-offchip", 4, 4},
		{"Grid1024/shards=1", "grid=4x4/chip=8x8", "stencil-tuned", 1, 1},
		{"Grid1024/shards=16-workers=1", "grid=4x4/chip=8x8", "stencil-tuned", 16, 1},
		{"Grid1024/shards=16-workers=4", "grid=4x4/chip=8x8", "stencil-tuned", 16, 4},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			topo, err := ParseTopology(tc.topo)
			if err != nil {
				b.Fatal(err)
			}
			w, ok := WorkloadByName(tc.workload)
			if !ok {
				b.Fatalf("workload %q not registered", tc.workload)
			}
			// One pooled board per case: Reset-recycled like the serve
			// daemon's boards, so construction cost stays out of the
			// per-job latency.
			r := &Runner{Workers: 1, Options: []Option{
				WithTopology(topo),
				WithShards(tc.shards),
				WithWorkers(tc.workers),
			}}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				jr := r.RunJob(ctx, Job{Workload: w})
				if jr.Err != nil {
					b.Fatal(jr.Err)
				}
			}
		})
	}
}
