package epiphany

import (
	"context"
	"testing"
)

// BenchmarkRunBatch12 pushes every registered built-in workload through
// the batch Runner once per iteration - the ROADMAP's batch-serving hot
// path. Workers defaults to GOMAXPROCS; per-job System cost (build or
// recycle) is inside the measured loop on purpose.
//
// Since the energy subsystem landed, this benchmark runs with the
// activity counters accruing (they are unconditional - bare integer
// increments on the fabric hot paths); its before/after in BENCH_5.json
// is the counter-overhead proof for the time-domain path.
func BenchmarkRunBatch12(b *testing.B) {
	benchRunBatch12(b, nil)
}

// BenchmarkRunBatch12Energy is the energy-metered variant: the same
// batch with the power model attached, adding the per-job counter
// snapshot and derivation. The delta against BenchmarkRunBatch12 is the
// full cost of asking for energy; the acceptance bar is <= 2% ns/op
// with no extra allocations beyond the one decorated result per job.
func BenchmarkRunBatch12Energy(b *testing.B) {
	benchRunBatch12(b, []Option{WithPowerModel("epiphany-iv-28nm", "")})
}

func benchRunBatch12(b *testing.B, opts []Option) {
	ws := Workloads()
	if len(ws) < 12 {
		b.Fatalf("expected >= 12 registered workloads, have %d", len(ws))
	}
	r := &Runner{Options: opts}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := r.RunWorkloads(ctx, ws...)
		if err != nil {
			b.Fatal(err)
		}
		if err := br.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
