package epiphany

import (
	"context"
	"testing"
)

// BenchmarkRunBatch12 pushes every registered built-in workload through
// the batch Runner once per iteration - the ROADMAP's batch-serving hot
// path. Workers defaults to GOMAXPROCS; per-job System cost (build or
// recycle) is inside the measured loop on purpose.
func BenchmarkRunBatch12(b *testing.B) {
	ws := Workloads()
	if len(ws) < 12 {
		b.Fatalf("expected >= 12 registered workloads, have %d", len(ws))
	}
	r := &Runner{}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := r.RunWorkloads(ctx, ws...)
		if err != nil {
			b.Fatal(err)
		}
		if err := br.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
