package epiphany_test

// The 1024-core scaling study acceptance harness. The registered
// "scaling-1024" plan sweeps the full workload suite - including the
// off-chip matmul, re-admitted once the schemeDouble rotation got its
// send-credit handshake - from the paper's e16 out to an Epiphany-V-class
// grid=4x4/chip=8x8 mesh, with the 28nm power model attached. The
// e16 -> e64 -> cluster-2x2 prefix of the derived table is pinned bit
// for bit to testdata/scaling_study_golden.csv (regenerate with
// `go run ./cmd/epiphany-sweep -plan scaling-1024 -topos
// e16,e64,cluster-2x2 -format csv -o testdata/scaling_study_golden.csv`
// and explain the drift in the commit message); the 512- and
// 1024-core boards are checked structurally and for determinism, and
// CI uploads their full CSV as an artifact.

import (
	"context"
	"os"
	"strings"
	"testing"

	"epiphany"
)

// studyPlan fetches the registered scaling study, failing on a
// registry miss.
func studyPlan(t *testing.T) epiphany.SweepPlan {
	t.Helper()
	named, ok := epiphany.SweepPlanByName("scaling-1024")
	if !ok {
		t.Fatal("scaling-1024 is not in the plan registry")
	}
	return named.Plan
}

// TestScalingStudyGolden pins the study's paper-device prefix (the
// three presets, 36 cells) to the golden CSV, bit for bit.
func TestScalingStudyGolden(t *testing.T) {
	plan := studyPlan(t)
	plan.Topos = plan.Topos[:3] // e16, e64, cluster-2x2 - the preset prefix
	res, err := epiphany.Sweep(context.Background(), plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/scaling_study_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.CSV(); got != string(want) {
		t.Errorf("scaling-study CSV drifted from testdata/scaling_study_golden.csv;\nregenerate with `go run ./cmd/epiphany-sweep -plan scaling-1024 -topos e16,e64,cluster-2x2 -format csv -o testdata/scaling_study_golden.csv` and explain why in the commit message\n got:\n%s", got)
	}
}

// TestScalingStudy1024 runs the full study - including the 512-core
// grid=2x4 and 1024-core grid=4x4 boards - and checks its structure:
// every cell succeeds, the axis reaches 1024 cores, the e16 baseline
// anchors speedup/efficiency at exactly 1, every cell carries energy,
// and the multi-chip boards report chip-boundary crossings for the
// chip-spanning workloads. The whole grid re-renders bit-identically
// across worker counts, like every sweep.
func TestScalingStudy1024(t *testing.T) {
	plan := studyPlan(t)
	res, err := epiphany.Sweep(context.Background(), plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	topoCores := map[string]bool{}
	offchipCells := 0
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s failed: %s", c.Workload, c.Topology, c.Err)
		}
		if c.Workload == "matmul-offchip" {
			offchipCells++
		}
		if c.Topology == "e16" && (c.Speedup != 1 || c.Efficiency != 1) {
			t.Errorf("baseline cell %s: speedup=%v efficiency=%v, want exactly 1", c.Workload, c.Speedup, c.Efficiency)
		}
		if c.Err == "" && c.Metrics.EnergyJ <= 0 {
			t.Errorf("cell %s/%s has no energy accounting", c.Workload, c.Topology)
		}
		topoCores[c.Topology] = true
	}
	for _, key := range []string{"e16", "cluster-2x2", "e64", "grid=2x4/chip=8x8", "grid=4x4/chip=8x8"} {
		if !topoCores[key] {
			t.Errorf("study axis lacks %s; got %v", key, res.Plan.Topos)
		}
	}
	// The off-chip matmul is back on the grid - one cell per topology -
	// now that the schemeDouble rotation race is fixed.
	if want := len(res.Plan.Topos); offchipCells != want {
		t.Errorf("matmul-offchip appears in %d cells, want %d (one per topology)", offchipCells, want)
	}
	// The chip-spanning streaming stencils must pay c2c boundaries on
	// the 1024-core board.
	crossed := false
	for _, c := range res.Cells {
		if c.Topology == "grid=4x4/chip=8x8" && strings.HasPrefix(c.Workload, "stream-stencil") {
			if c.Metrics.ELinkCrossings > 0 {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Error("no stream-stencil crossings on the 1024-core board")
	}

	// Rendered bytes are worker-count invariant.
	res8, err := epiphany.Sweep(context.Background(), plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.CSV() != res8.CSV() {
		t.Error("study CSV differs between -workers defaults and 8")
	}
}

// TestSweepPlanRegistry pins the registry surface: the study is
// listed, lookups resolve it, and a near-miss name gets a "did you
// mean" suggestion.
func TestSweepPlanRegistry(t *testing.T) {
	plans := epiphany.SweepPlans()
	found := false
	for _, p := range plans {
		if p.Name == "scaling-1024" {
			found = true
			if p.Description == "" {
				t.Error("scaling-1024 has no description")
			}
		}
	}
	if !found {
		t.Fatalf("SweepPlans() lacks scaling-1024: %v", plans)
	}
	if _, err := epiphany.ResolveSweepPlan("scaling-1024"); err != nil {
		t.Errorf("ResolveSweepPlan(scaling-1024): %v", err)
	}
	_, err := epiphany.ResolveSweepPlan("scaling-124")
	if err == nil || !strings.Contains(err.Error(), `did you mean "scaling-1024"`) {
		t.Errorf("near-miss plan name error lacks suggestion: %v", err)
	}
}
