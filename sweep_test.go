package epiphany_test

// The sweep acceptance harness: the default experiment sweep - every
// registered workload over the e16/e64/cluster-2x2 presets - must
// render bit-identical output across repeated runs and across worker
// counts, and the machine-grade CSV is pinned to the golden file
// checked into testdata (regenerate with
// `go run ./cmd/epiphany-sweep -format csv -o testdata/sweep_golden.csv`
// and explain the drift in the commit message).

import (
	"context"
	"os"
	"strings"
	"testing"

	"epiphany"
)

func TestSweepDefaultGridMatchesGolden(t *testing.T) {
	res, err := epiphany.Sweep(context.Background(), epiphany.SweepPlan{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/sweep_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	got := res.CSV()
	if got != string(want) {
		t.Errorf("default sweep CSV drifted from testdata/sweep_golden.csv;\nregenerate with `go run ./cmd/epiphany-sweep -format csv -o testdata/sweep_golden.csv` and explain why in the commit message\n got:\n%s", got)
	}

	// The grid covers every registered workload on every preset, with
	// no failed cells.
	workloads := epiphany.Workloads()
	topos := epiphany.Topologies()
	if len(res.Cells) != len(workloads)*len(topos) {
		t.Fatalf("%d cells, want %d workloads x %d topologies", len(res.Cells), len(workloads), len(topos))
	}
	type key struct{ w, topo string }
	seen := map[key]bool{}
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s failed: %s", c.Workload, c.Topology, c.Err)
		}
		seen[key{c.Workload, c.Topology}] = true
	}
	for _, w := range workloads {
		for _, topo := range topos {
			if !seen[key{w.Name(), topo.Name}] {
				t.Errorf("no cell for %s on %s", w.Name(), topo.Name)
			}
		}
	}

	// The baseline cells anchor the derived columns: speedup and
	// efficiency are exactly 1 on the e16 baseline.
	for _, c := range res.Cells {
		if c.Topology == "e16" && (c.Speedup != 1 || c.Efficiency != 1) {
			t.Errorf("baseline cell %s: speedup=%v efficiency=%v", c.Workload, c.Speedup, c.Efficiency)
		}
	}
}

func TestSweepOutputIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) [2]string {
		res, err := epiphany.Sweep(context.Background(), epiphany.SweepPlan{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return [2]string{res.CSV(), string(js)}
	}
	first := render(1)
	if again := render(1); again != first {
		t.Fatal("sweep output not identical across consecutive runs")
	}
	if par := render(8); par != first {
		t.Fatal("sweep output differs between -workers=1 and -workers=8")
	}
}

func TestSweepTableHasScalingColumns(t *testing.T) {
	res, err := epiphany.Sweep(context.Background(), epiphany.SweepPlan{
		Workloads: []string{"matmul-offchip"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Text()
	for _, col := range []string{"workload", "topology", "speedup", "efficiency", "x-chip %"} {
		if !strings.Contains(text, col) {
			t.Errorf("sweep table lacks %q column:\n%s", col, text)
		}
	}
	md := res.Markdown()
	if !strings.HasPrefix(md, "| workload") || !strings.Contains(md, "| ---") {
		t.Errorf("markdown rendering malformed:\n%s", md)
	}
}
