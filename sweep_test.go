package epiphany_test

// The sweep acceptance harness: the default experiment sweep - every
// registered workload over the e16/e64/cluster-2x2 presets - must
// render bit-identical output across repeated runs and across worker
// counts, and the machine-grade CSV is pinned to the golden file
// checked into testdata (regenerate with
// `go run ./cmd/epiphany-sweep -format csv -o testdata/sweep_golden.csv`
// and explain the drift in the commit message).

import (
	"context"
	"os"
	"strings"
	"testing"

	"epiphany"
)

func TestSweepDefaultGridMatchesGolden(t *testing.T) {
	res, err := epiphany.Sweep(context.Background(), epiphany.SweepPlan{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/sweep_golden.csv")
	if err != nil {
		t.Fatal(err)
	}
	got := res.CSV()
	if got != string(want) {
		t.Errorf("default sweep CSV drifted from testdata/sweep_golden.csv;\nregenerate with `go run ./cmd/epiphany-sweep -format csv -o testdata/sweep_golden.csv` and explain why in the commit message\n got:\n%s", got)
	}

	// The grid covers every registered workload on every preset, with
	// no failed cells.
	workloads := epiphany.Workloads()
	topos := epiphany.Topologies()
	if len(res.Cells) != len(workloads)*len(topos) {
		t.Fatalf("%d cells, want %d workloads x %d topologies", len(res.Cells), len(workloads), len(topos))
	}
	type key struct{ w, topo string }
	seen := map[key]bool{}
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Errorf("cell %s/%s failed: %s", c.Workload, c.Topology, c.Err)
		}
		seen[key{c.Workload, c.Topology}] = true
	}
	for _, w := range workloads {
		for _, topo := range topos {
			if !seen[key{w.Name(), topo.Name}] {
				t.Errorf("no cell for %s on %s", w.Name(), topo.Name)
			}
		}
	}

	// The baseline cells anchor the derived columns: speedup and
	// efficiency are exactly 1 on the e16 baseline.
	for _, c := range res.Cells {
		if c.Topology == "e16" && (c.Speedup != 1 || c.Efficiency != 1) {
			t.Errorf("baseline cell %s: speedup=%v efficiency=%v", c.Workload, c.Speedup, c.Efficiency)
		}
	}
}

func TestSweepOutputIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) [2]string {
		res, err := epiphany.Sweep(context.Background(), epiphany.SweepPlan{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return [2]string{res.CSV(), string(js)}
	}
	first := render(1)
	if again := render(1); again != first {
		t.Fatal("sweep output not identical across consecutive runs")
	}
	if par := render(8); par != first {
		t.Fatal("sweep output differs between -workers=1 and -workers=8")
	}
}

// TestParseSweepTopoErrors drives the topology-axis parser through its
// error paths: malformed and out-of-range c2c overrides, degenerate
// meshes and grids, address-space overflow, and unknown spellings -
// which must carry an internal/names "did you mean" suggestion when a
// registered preset or grammar form is close. (Happy paths are
// exercised by every sweep test; these are the spellings that must be
// *rejected*, with a message a CLI user can act on.)
func TestParseSweepTopoErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantErr string // substring of the error
	}{
		{"nope", "unknown topology spec"},
		{"", "unknown topology spec"},
		{"e65", `did you mean "e64" or "e16"?`},
		{"cluster4x4", `did you mean "cluster-4x4"`},
		{"gird=4x4/chip=8x8", `did you mean "grid=4x4/chip=8x8"?`},
		{"0x0", "invalid topology"},
		{"0x4", "invalid topology"},
		{"-1x4", "invalid topology"},
		{"4x-1", "invalid topology"},
		{"99x99", "does not fit"},
		{"grid=0x4/chip=4x4", "invalid topology"},
		{"grid=4x0", "invalid topology"},
		{"grid=4x4/chip=0x8", "invalid topology"},
		{"grid=8x8/chip=8x8", "does not fit"}, // 64 rows from origin row 32
		{"grid=axb", "ROWSxCOLS"},
		{"grid=4x4/chip=ax8", "ROWSxCOLS"},
		{"cluster-9x9", "does not fit"},
		{"cluster-axb", "ROWSxCOLS"},
		{"e64x3", "square count"},
		{"e64x0", "positive chip count"},
		{"e64x-4", "positive chip count"},
		{"e16xq", "positive chip count"},
		{"e64x25", "does not fit"}, // 5x5 chips of 8x8 = 40 rows
		{"e64/c2c=40", "must be BYTE:HOP"},
		{"e64/c2c=:", "bad c2c byte period"},
		{"e64/c2c=a:5", "bad c2c byte period"},
		{"e64/c2c=5:b", "bad c2c hop latency"},
		{"e64/c2c=-1:5", "bad c2c byte period"},
		{"e64/c2c=5:-1", "bad c2c hop latency"},
		{"e64/c2c=99999999999999999999:5", "bad c2c byte period"},
		{"cluster-2x2/c2c=4000000000:1", "out of range"},
		{"grid=2x2/chip=8x8/c2c=40", "must be BYTE:HOP"},
	}
	for _, tc := range cases {
		_, err := epiphany.ParseSweepTopo(tc.in)
		if err == nil {
			t.Errorf("ParseSweepTopo(%q) accepted", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseSweepTopo(%q) = %v, want error containing %q", tc.in, err, tc.wantErr)
		}
	}

	// Zero-valued c2c components are legal: they keep the calibrated
	// defaults rather than meaning "free".
	topo, err := epiphany.ParseSweepTopo("cluster-2x2/c2c=0:0")
	if err != nil {
		t.Fatalf("zero c2c override rejected: %v", err)
	}
	if topo.Key() != "cluster-2x2" {
		t.Errorf("zero override key %q, want the bare preset", topo.Key())
	}
}

// TestParseDVFSPointSpellings pins the DVFS axis spelling, table-driven
// over accepted and rejected forms.
func TestParseDVFSPointSpellings(t *testing.T) {
	good := []struct {
		in   string
		want epiphany.OperatingPoint
	}{
		{"600MHz@1.0V", epiphany.OperatingPoint{FreqMHz: 600, VoltageV: 1.0}},
		{"600@1.0", epiphany.OperatingPoint{FreqMHz: 600, VoltageV: 1.0}},
		{"300mhz@0.80v", epiphany.OperatingPoint{FreqMHz: 300, VoltageV: 0.8}},
		{"712.5@1.05", epiphany.OperatingPoint{FreqMHz: 712.5, VoltageV: 1.05}},
	}
	for _, tc := range good {
		got, err := epiphany.ParseDVFSPoint(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseDVFSPoint(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "600", "600MHz", "@1.0", "600@", "a@b", "0@1.0", "600@0", "-300@0.8", "300@-0.8", "nan@1.0", "inf@1.0", "600@nan"} {
		if _, err := epiphany.ParseDVFSPoint(bad); err == nil {
			t.Errorf("ParseDVFSPoint(%q) accepted", bad)
		}
	}
}

// TestEnergySweepDeterministic: a sweep with the power model and a DVFS
// axis renders bit-identical CSV/JSON across repeated runs and worker
// counts, like the time-domain sweep it extends.
func TestEnergySweepDeterministic(t *testing.T) {
	plan := epiphany.SweepPlan{
		Workloads: []string{"stencil-tuned", "stream-stencil"},
		Topos:     []epiphany.SweepTopo{{Preset: "e64"}, {Preset: "cluster-2x2"}},
		Power:     "epiphany-iv-28nm",
		DVFS:      []string{"300@0.8", "600@1.0"},
	}
	render := func(workers int) [2]string {
		res, err := epiphany.Sweep(context.Background(), plan, workers)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return [2]string{res.CSV(), string(js)}
	}
	first := render(1)
	if again := render(1); again != first {
		t.Fatal("energy sweep output not identical across consecutive runs")
	}
	if par := render(8); par != first {
		t.Fatal("energy sweep output differs between -workers=1 and -workers=8")
	}
	if !strings.Contains(first[0], "energy_j") || !strings.Contains(first[0], "300MHz@0.80V") {
		t.Fatalf("energy CSV lacks the energy columns or DVFS labels:\n%s", first[0])
	}
}

func TestSweepTableHasScalingColumns(t *testing.T) {
	res, err := epiphany.Sweep(context.Background(), epiphany.SweepPlan{
		Workloads: []string{"matmul-offchip"},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	text := res.Text()
	for _, col := range []string{"workload", "topology", "speedup", "efficiency", "x-chip %"} {
		if !strings.Contains(text, col) {
			t.Errorf("sweep table lacks %q column:\n%s", col, text)
		}
	}
	md := res.Markdown()
	if !strings.HasPrefix(md, "| workload") || !strings.Contains(md, "| ---") {
		t.Errorf("markdown rendering malformed:\n%s", md)
	}
}
