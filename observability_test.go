package epiphany_test

// The observability suite's core claim: recording is free of semantic
// effect. A run with a Timeline attached, or with engine stats
// requested, computes bit-identical Metrics to a bare run - on the
// classic heap and on the sharded parallel scheduler alike - and the
// recorded content itself (spans, scheduler counters) is deterministic,
// pinned against golden counts for one well-understood cell.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"epiphany"
)

// obsWorkload returns the suite's cell: matmul-offchip on the 4-chip
// cluster. It pages operands through shared DRAM (DMA legs), crosses
// chip boundaries (c2c spans, booking traffic), and under workers > 1
// runs the parallel scheduler (barrier rounds, booking parks) - every
// recorder hook fires.
func obsWorkload(t *testing.T) (epiphany.Workload, epiphany.Topology) {
	t.Helper()
	w, ok := epiphany.WorkloadByName("matmul-offchip")
	if !ok {
		t.Fatal("matmul-offchip not registered")
	}
	topo, err := epiphany.ParseTopology("cluster-2x2")
	if err != nil {
		t.Fatal(err)
	}
	return w, topo
}

// TestTimelineDoesNotPerturbMetrics: attaching a Timeline must not
// change a single Metrics bit, for the sequential engine and the
// parallel scheduler both.
func TestTimelineDoesNotPerturbMetrics(t *testing.T) {
	w, topo := obsWorkload(t)
	for _, shards := range []int{1, 0} { // classic heap, one shard per chip
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				base := []epiphany.Option{
					epiphany.WithTopology(topo),
					epiphany.WithShards(shards),
					epiphany.WithWorkers(workers),
				}
				bare, err := epiphany.Run(context.Background(), w, base...)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				traced, err := epiphany.Run(context.Background(), w,
					append(base, epiphany.WithTimeline(&buf))...)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := traced.Metrics(), bare.Metrics(); got != want {
					t.Errorf("timeline perturbed Metrics:\n got  %+v\n want %+v", got, want)
				}
				if buf.Len() == 0 {
					t.Fatal("timeline writer got no bytes")
				}
				if !json.Valid(buf.Bytes()) {
					t.Errorf("timeline is not valid JSON")
				}
			})
		}
	}
}

// timelineDoc mirrors the trace-event envelope for assertions.
type timelineDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTimelineContentClusterOffchip checks the recorded content of the
// suite's cell under the parallel scheduler: core-activity spans, DMA
// legs, chip-to-chip crossings and at least one barrier-round span on
// the scheduler track, with every span carrying a sane extent.
func TestTimelineContentClusterOffchip(t *testing.T) {
	w, topo := obsWorkload(t)
	var buf bytes.Buffer
	_, err := epiphany.Run(context.Background(), w,
		epiphany.WithTopology(topo),
		epiphany.WithWorkers(4),
		epiphany.WithTimeline(&buf))
	if err != nil {
		t.Fatal(err)
	}
	var doc timelineDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline does not parse: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		counts[ev.Name]++
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("span %q has negative extent ts=%v dur=%v", ev.Name, ev.Ts, ev.Dur)
		}
	}
	for _, name := range []string{
		"compute", "dma-wait", "flag-spin", // core activity
		"dram-read", "dram-write", "mesh-x", // DMA legs incl. cross-chip
		"c2c",           // eLink crossings
		"barrier round", // parallel scheduler
	} {
		if counts[name] == 0 {
			t.Errorf("timeline has no %q spans (have %v)", name, counts)
		}
	}
	// The cluster run's golden crossing count is 832 (sweep_golden.csv);
	// the timeline must record exactly one span per crossing.
	if counts["c2c"] != 832 {
		t.Errorf("c2c spans = %d, want 832 (one per eLink crossing)", counts["c2c"])
	}
}

// TestTimelineByteDeterminism: the exported bytes are a pure function
// of the cell, so two runs - even at different worker counts - must
// produce identical documents (events are fully sorted before
// encoding). Worker count changes scheduler-internal retry events, not
// recorded hardware activity or round structure.
func TestTimelineByteDeterminism(t *testing.T) {
	w, topo := obsWorkload(t)
	capture := func(workers int) []byte {
		var buf bytes.Buffer
		_, err := epiphany.Run(context.Background(), w,
			epiphany.WithTopology(topo),
			epiphany.WithWorkers(workers),
			epiphany.WithTimeline(&buf))
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := capture(4)
	if again := capture(4); !bytes.Equal(first, again) {
		t.Error("two workers=4 runs produced different timeline bytes")
	}
	if two := capture(2); !bytes.Equal(first, two) {
		t.Error("workers=2 timeline differs from workers=4")
	}
}

// TestEngineStatsGolden pins the scheduler counters of the suite's cell
// at shards=auto (sys + 4 chips), workers=4, against golden values.
// Everything but the phase wall times is deterministic for a fixed
// (shards, workers>1) layout; a drift here means the scheduler's round
// structure changed and the goldens need conscious regeneration.
func TestEngineStatsGolden(t *testing.T) {
	w, topo := obsWorkload(t)
	run := func(workers int) *epiphany.EngineStats {
		res, err := epiphany.Run(context.Background(), w,
			epiphany.WithTopology(topo),
			epiphany.WithWorkers(workers),
			epiphany.WithEngineStats())
		if err != nil {
			t.Fatal(err)
		}
		st := res.Metrics().Engine
		if st == nil {
			t.Fatal("WithEngineStats did not populate Metrics.Engine")
		}
		return st
	}
	st := run(4)

	if st.Shards != 5 || st.Workers != 4 {
		t.Fatalf("layout %d shards x %d workers, want 5 x 4", st.Shards, st.Workers)
	}
	pins := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"Events", st.Events, 15445},
		{"SysEvents", st.SysEvents, 1580},
		{"CrossPosts", st.CrossPosts, 2272},
		{"TaggedPosts", st.TaggedPosts, 896},
		{"BookingParks", st.BookingParks, 479},
		{"HeldByBound", st.HeldByBound, 16512},
		{"HeldByFloor", st.HeldByFloor, 0},
		{"BarrierRounds", st.BarrierRounds, 3994},
	}
	for _, p := range pins {
		if p.got != p.want {
			t.Errorf("%s = %d, want %d", p.name, p.got, p.want)
		}
	}
	if st.SysShare <= 0 || st.SysShare >= 1 {
		t.Errorf("SysShare = %v, want in (0,1)", st.SysShare)
	}
	if len(st.PerShard) != 5 {
		t.Fatalf("PerShard has %d entries, want 5", len(st.PerShard))
	}
	if st.PerShard[0].Label != "sys" || st.PerShard[1].Label != "chip0" {
		t.Errorf("shard labels %q,%q, want sys,chip0", st.PerShard[0].Label, st.PerShard[1].Label)
	}
	// The parallel scheduler ran, so the phase wall clocks accumulated.
	if st.PhaseAWallNS <= 0 || st.PhaseBWallNS <= 0 {
		t.Errorf("phase wall times A=%d B=%d, want both positive", st.PhaseAWallNS, st.PhaseBWallNS)
	}

	// Worker count beyond 1 is pure execution layout: the same counters
	// at workers=2, wall times aside.
	st2 := run(2)
	norm := func(s epiphany.EngineStats) epiphany.EngineStats {
		s.Workers, s.PhaseAWallNS, s.PhaseBWallNS = 0, 0, 0
		return s
	}
	a, b := norm(*st), norm(*st2)
	ajs, _ := json.Marshal(a)
	bjs, _ := json.Marshal(b)
	if !bytes.Equal(ajs, bjs) {
		t.Errorf("workers=2 counters diverge from workers=4:\n %s\n %s", bjs, ajs)
	}

	// And the report renders the layout header the bench flag prints.
	if s := st.String(); !strings.Contains(s, "engine: 5 shard(s) x 4 worker(s)") {
		t.Errorf("stats report missing layout header:\n%s", s)
	}
}

// TestEngineStatsSequential: on a single-chip board at workers=1 the
// parallel machinery never arms - stats still report the run's events
// with the whole board on one shard.
func TestEngineStatsSequential(t *testing.T) {
	w, ok := epiphany.WorkloadByName("stencil-tuned")
	if !ok {
		t.Fatal("stencil-tuned not registered")
	}
	res, err := epiphany.Run(context.Background(), w, epiphany.WithEngineStats())
	if err != nil {
		t.Fatal(err)
	}
	st := res.Metrics().Engine
	if st == nil {
		t.Fatal("WithEngineStats did not populate Metrics.Engine")
	}
	if st.Events == 0 {
		t.Error("sequential run reported zero events")
	}
	if st.BarrierRounds != 0 || st.BookingParks != 0 || st.PhaseAWallNS != 0 {
		t.Errorf("sequential run armed parallel counters: %+v", st)
	}
	// Metrics equality with a bare run still holds field-for-field once
	// the Engine pointer is cleared (it is the one intentional addition).
	bare, err := epiphany.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics()
	m.Engine = nil
	if m != bare.Metrics() {
		t.Errorf("engine stats perturbed Metrics:\n got  %+v\n want %+v", m, bare.Metrics())
	}
}
