// Mandelbrot: plugging a custom workload into the epiphany workload
// API. Each eCore renders one tile of the Mandelbrot set - single
// precision multiply/add only, which suits a core with no divide or
// double-precision hardware - charging the modelled cycle cost of its
// escape-time loop. The workload implements epiphany.Workload, is
// registered alongside the paper's built-ins, and is looked up and
// executed through the registry exactly like they are. The per-core
// activity trace makes the work imbalance across tiles visible.
//
//	go run ./examples/mandelbrot
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"epiphany"
	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/trace"
)

const (
	width, height = 96, 64           // pixels; split 8x8 -> 12x8 per core
	outOff        = mem.Addr(0x4000) // per-core tile buffer
)

// maxIter is the escape-time iteration cap (flag-settable so the smoke
// tests can render a cheap frame).
var maxIter = 200

// mandelbrot renders the set across an 8x8 workgroup. It implements
// epiphany.Workload, so it registers, validates, runs and batches like
// the built-in paper kernels.
type mandelbrot struct{}

func (mandelbrot) Name() string { return "mandelbrot" }

func (mandelbrot) Validate() error {
	if width%8 != 0 || height%8 != 0 {
		return fmt.Errorf("mandelbrot: %dx%d image not tileable over 8x8 cores", width, height)
	}
	return nil
}

// mandelResult carries the rendered image alongside the common metrics.
type mandelResult struct {
	metrics epiphany.Metrics
	img     []byte
	snap    *trace.Snapshot
}

func (r *mandelResult) Metrics() epiphany.Metrics { return r.metrics }

func (mandelbrot) Run(ctx context.Context, sys *epiphany.System) (epiphany.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	w, err := sys.NewWorkgroup(0, 0, 8, 8)
	if err != nil {
		return nil, err
	}
	tw, th := width/8, height/8

	procs := w.Launch("mandel", func(c *ecore.Core, gr, gc int) {
		// Escape-time loop: ~5 single-precision ops per iteration. The
		// FPU dependency chain (zr2 -> zr -> zr2) prevents the 2-op/cycle
		// pairing the stencil enjoys; ~6 cycles per iteration is what a
		// tuned scalar loop achieves.
		var flops, cycles uint64
		for py := 0; py < th; py++ {
			for px := 0; px < tw; px++ {
				x0 := -2.2 + 3.0*float32(gc*tw+px)/width
				y0 := -1.2 + 2.4*float32(gr*th+py)/height
				var zr, zi float32
				n := 0
				for ; n < maxIter; n++ {
					zr2, zi2 := zr*zr, zi*zi
					if zr2+zi2 > 4 {
						break
					}
					zr, zi = zr2-zi2+x0, 2*zr*zi+y0
				}
				c.Local().Store8(outOff+mem.Addr(py*tw+px), uint8(n*255/maxIter))
				flops += uint64(5 * (n + 1))
				cycles += uint64(6 * (n + 1))
			}
		}
		c.Compute(cycles, flops)
	})

	img := make([]byte, width*height)
	sys.Host().Spawn("gather", func(hp *epiphany.HostProc) {
		hp.Join(procs) // step 5 of §III: the host waits, then collects
		for gr := 0; gr < 8; gr++ {
			for gc := 0; gc < 8; gc++ {
				tile := hp.ReadCore(w.CoreIndex(gr, gc), outOff, tw*th)
				for py := 0; py < th; py++ {
					copy(img[(gr*th+py)*width+gc*tw:], tile[py*tw:(py+1)*tw])
				}
			}
		}
	})
	if err := sys.Engine().Run(); err != nil {
		return nil, err
	}
	snap := trace.Take(sys.Chip())
	return &mandelResult{
		metrics: epiphany.Metrics{
			Elapsed: snap.Now,
			GFLOPS:  snap.GFLOPS(),
		},
		img:  img,
		snap: snap,
	}, nil
}

func main() {
	flag.IntVar(&maxIter, "max-iter", maxIter, "escape-time iteration cap")
	flag.Parse()
	epiphany.Register(mandelbrot{})

	w, ok := epiphany.WorkloadByName("mandelbrot")
	if !ok {
		log.Fatal("mandelbrot not registered")
	}
	r, err := epiphany.Run(context.Background(), w)
	if err != nil {
		log.Fatal(err)
	}
	res := r.(*mandelResult)

	shades := []byte(" .:-=+*#%@")
	for py := 0; py < height; py += 2 { // halve vertically for terminal aspect
		line := make([]byte, width)
		for px := 0; px < width; px++ {
			v := int(res.img[py*width+px])
			line[px] = shades[v*(len(shades)-1)/255]
		}
		fmt.Println(string(line))
	}

	m := res.Metrics()
	fmt.Printf("\n%.2f simulated ms, %.2f GFLOPS achieved\n",
		m.Elapsed.Seconds()*1e3, m.GFLOPS)
	fmt.Println("per-core compute load (the set's interior is expensive):")
	fmt.Print(extractHeat(res.snap))
}

// extractHeat pulls just the compute heatmap from the snapshot rendering.
func extractHeat(s *trace.Snapshot) string {
	full := s.String()
	out := ""
	emit := false
	for _, line := range splitLines(full) {
		if emit {
			if len(line) > 0 && line[0] == ' ' {
				out += line + "\n"
				continue
			}
			break
		}
		if len(line) >= 12 && line[:12] == "compute time" {
			emit = true
		}
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	return lines
}
