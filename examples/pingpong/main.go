// Pingpong: kernel-level programming against the simulated chip. Two
// hand-written device kernels bounce a message between core (0,0) and a
// far core using direct remote stores and flag polling - the same
// primitives as the paper's Listing 1 - and the host tabulates observed
// round-trip latency against Manhattan distance. It also demonstrates
// the SDK barrier and hardware mutex.
//
//	go run ./examples/pingpong
package main

import (
	"fmt"
	"log"

	"epiphany"
	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/sdk"
)

const (
	flagOff mem.Addr = 0x7000
	dataOff mem.Addr = 0x4000
	loops            = 100
	words            = 20 // 80-byte messages, as in Table I
)

func main() {
	fmt.Println("80-byte ping-pong round trips (direct remote writes + flag polling):")
	fmt.Printf("%-8s %-9s %s\n", "target", "distance", "round trip")
	for _, tgt := range [][2]int{{0, 1}, {1, 1}, {3, 3}, {7, 7}} {
		rt := pingPong(tgt[0], tgt[1])
		fmt.Printf("(%d,%d)    %-9d %v\n", tgt[0], tgt[1], tgt[0]+tgt[1], rt)
	}
	mutexDemo()
}

func pingPong(tr, tc int) epiphany.Time {
	sys := epiphany.NewSystem()
	chip := sys.Chip()
	var rt epiphany.Time

	chip.Launch(chip.Map().CoreIndex(tr, tc), "echo", func(c *ecore.Core) {
		for i := 1; i <= loops; i++ {
			c.WaitLocal32GE(flagOff, uint32(i))
			c.CopyWordsTo(c.GlobalOn(0, 0, dataOff), dataOff, words)
			c.StoreGlobal32(c.GlobalOn(0, 0, flagOff), uint32(i))
		}
	})
	chip.Launch(0, "origin", func(c *ecore.Core) {
		c.CtimerStart(0)
		for i := 1; i <= loops; i++ {
			c.CopyWordsTo(c.GlobalOn(tr, tc, dataOff), dataOff, words)
			c.StoreGlobal32(c.GlobalOn(tr, tc, flagOff), uint32(i))
			c.WaitLocal32GE(flagOff, uint32(i))
		}
		rt = c.CtimerElapsed(0) / loops
	})
	if err := sys.Engine().Run(); err != nil {
		log.Fatal(err)
	}
	return rt
}

// mutexDemo has four cores increment a shared counter under the SDK's
// hardware mutex, then meet at a barrier.
func mutexDemo() {
	sys := epiphany.NewSystem()
	w, err := sys.NewWorkgroup(0, 0, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	mu := sdk.NewMutex(sys.Chip(), 0, 0x7F00)
	counter := 0
	w.Launch("worker", func(c *ecore.Core, gr, gc int) {
		b := sdk.NewBarrier(w, gr, gc)
		for i := 0; i < 25; i++ {
			mu.Lock(c)
			counter++
			mu.Unlock(c)
		}
		b.Wait(c)
	})
	if err := sys.Engine().Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmutex demo: 4 cores x 25 increments = %d (mutex acquired %d times)\n",
		counter, mu.Acquisitions())
}
