// Pingpong: kernel-level programming against the simulated chip,
// packaged as a custom workload. Two hand-written device kernels bounce
// a message between core (0,0) and a far core using direct remote
// stores and flag polling - the same primitives as the paper's Listing
// 1 - and the host tabulates observed round-trip latency against
// Manhattan distance. The four distance measurements run as one
// concurrent batch, each on its own fresh board. It also demonstrates
// the SDK barrier and hardware mutex.
//
//	go run ./examples/pingpong
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"epiphany"
	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/sdk"
)

const (
	flagOff mem.Addr = 0x7000
	dataOff mem.Addr = 0x4000
	words            = 20 // 80-byte messages, as in Table I
)

// loops is the measured round trips per distance (flag-settable so the
// smoke tests can run a short exchange).
var loops = 100

// pingpong measures the round trip between core (0,0) and core
// (tr,tc). It implements epiphany.Workload, so the four distances batch
// through the Runner like any built-in workload.
type pingpong struct{ tr, tc int }

func (p pingpong) Name() string { return fmt.Sprintf("pingpong-%d,%d", p.tr, p.tc) }

func (p pingpong) Validate() error {
	if p.tr < 0 || p.tr > 7 || p.tc < 0 || p.tc > 7 || (p.tr == 0 && p.tc == 0) {
		return fmt.Errorf("pingpong: target (%d,%d) not a non-origin core of the 8x8 mesh", p.tr, p.tc)
	}
	return nil
}

// rtResult reports the measured round trip through the common Metrics
// (Elapsed carries the per-trip latency).
type rtResult struct{ m epiphany.Metrics }

func (r rtResult) Metrics() epiphany.Metrics { return r.m }

func (p pingpong) Run(ctx context.Context, sys *epiphany.System) (epiphany.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	chip := sys.Chip()
	var rt epiphany.Time

	chip.Launch(chip.Map().CoreIndex(p.tr, p.tc), "echo", func(c *ecore.Core) {
		for i := 1; i <= loops; i++ {
			c.WaitLocal32GE(flagOff, uint32(i))
			c.CopyWordsTo(c.GlobalOn(0, 0, dataOff), dataOff, words)
			c.StoreGlobal32(c.GlobalOn(0, 0, flagOff), uint32(i))
		}
	})
	chip.Launch(0, "origin", func(c *ecore.Core) {
		c.CtimerStart(0)
		for i := 1; i <= loops; i++ {
			c.CopyWordsTo(c.GlobalOn(p.tr, p.tc, dataOff), dataOff, words)
			c.StoreGlobal32(c.GlobalOn(p.tr, p.tc, flagOff), uint32(i))
			c.WaitLocal32GE(flagOff, uint32(i))
		}
		rt = c.CtimerElapsed(0) / epiphany.Time(loops)
	})
	if err := sys.Engine().Run(); err != nil {
		return nil, err
	}
	return rtResult{m: epiphany.Metrics{Elapsed: rt}}, nil
}

func main() {
	flag.IntVar(&loops, "loops", loops, "round trips per distance")
	flag.Parse()
	targets := [][2]int{{0, 1}, {1, 1}, {3, 3}, {7, 7}}
	var jobs []epiphany.Job
	for _, tgt := range targets {
		jobs = append(jobs, epiphany.Job{Workload: pingpong{tr: tgt[0], tc: tgt[1]}})
	}
	batch, err := (&epiphany.Runner{Workers: len(jobs)}).RunBatch(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}
	if err := batch.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("80-byte ping-pong round trips (direct remote writes + flag polling):")
	fmt.Printf("%-8s %-9s %s\n", "target", "distance", "round trip")
	for i, jr := range batch.Results {
		tgt := targets[i]
		fmt.Printf("(%d,%d)    %-9d %v\n", tgt[0], tgt[1], tgt[0]+tgt[1], jr.Result.Metrics().Elapsed)
	}
	mutexDemo()
}

// mutexDemo has four cores increment a shared counter under the SDK's
// hardware mutex, then meet at a barrier.
func mutexDemo() {
	sys := epiphany.NewSystem()
	w, err := sys.NewWorkgroup(0, 0, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	mu := sdk.NewMutex(sys.Chip(), 0, 0x7F00)
	counter := 0
	w.Launch("worker", func(c *ecore.Core, gr, gc int) {
		b := sdk.NewBarrier(w, gr, gc)
		for i := 0; i < 25; i++ {
			mu.Lock(c)
			counter++
			mu.Unlock(c)
		}
		b.Wait(c)
	})
	if err := sys.Engine().Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmutex demo: 4 cores x 25 increments = %d (mutex acquired %d times)\n",
		counter, mu.Acquisitions())
}
