// Bigmatmul: the paper's off-chip workflow. A 512x512 product cannot fit
// in the chip's 2 MB of aggregate scratchpad, so 256x256 tiles are paged
// through the 32 MB shared DRAM window over the eLink, with each eCore
// pulling its own 32x32 sub-blocks by 2D DMA and the 64 cores running
// Cannon rotations on-chip. The run reports the Table-VI-style breakdown
// showing the eLink as the bottleneck.
//
//	go run ./examples/bigmatmul
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"epiphany"
)

func main() {
	n := flag.Int("n", 512, "problem edge (divisible by the 8x8 grid's paging tiles)")
	flag.Parse()
	cfg := epiphany.MatmulConfig{
		M: *n, N: *n, K: *n, G: 8,
		OffChip: true, Tuned: true, Verify: true, Seed: 3,
	}
	fmt.Printf("multiplying %dx%d matrices through shared DRAM (the default 512x512 simulates ~30ms of device time)...\n", *n, *n)
	r, err := epiphany.Run(context.Background(), &epiphany.MatmulWorkload{Label: "bigmatmul", Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	res := r.(*epiphany.MatmulResult)
	fmt.Printf("simulated time        : %v\n", res.Elapsed)
	fmt.Printf("performance           : %.2f GFLOPS (%.1f%% of 76.8 peak)\n", res.GFLOPS, res.PctPeak)
	fmt.Printf("core time in compute  : %.1f%%\n", res.PctCompute())
	fmt.Printf("core time in transfers: %.1f%%  <- the 150 MB/s eLink dominates (paper: 87.2%%)\n", res.PctTransfer())
	d := epiphany.MaxAbsDiff(res.C, epiphany.MatmulReference(cfg))
	fmt.Printf("max |diff| vs host ref: %g\n", d)
	if d != 0 {
		log.Fatal("verification failed")
	}
}
