// Streaming: the paper's §IX future work in action. A 512x512 grid -
// sixteen times the chip's aggregate scratchpad would allow with halos -
// lives in shared DRAM and streams through the 64 cores. With temporal
// blocking T, each paged-in block is iterated T times before being
// written back, cutting eLink traffic by ~T at the cost of redundant
// halo computation. The example sweeps T as one concurrent batch - each
// variant simulates on its own fresh board - and verifies every variant
// produces bit-identical results.
//
//	go run ./examples/streaming
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"epiphany"
)

func main() {
	size := flag.Int("size", 512, "global grid edge (divisible by 8x the block edge)")
	block := flag.Int("block", 32, "per-core block edge")
	iters := flag.Int("iters", 16, "stencil iterations")
	flag.Parse()
	base := epiphany.StreamStencilConfig{
		GlobalRows: *size, GlobalCols: *size,
		BlockRows: *block, BlockCols: *block,
		Iters:     *iters,
		GroupRows: 8, GroupCols: 8,
		Seed: 1,
	}
	tblocks := []int{1, 2, 4, 8}
	var jobs []epiphany.Job
	for _, T := range tblocks {
		cfg := base
		cfg.TBlock = T
		jobs = append(jobs, epiphany.Job{Workload: &epiphany.StreamStencilWorkload{
			Label:  fmt.Sprintf("stream-T%d", T),
			Config: cfg,
		}})
	}
	batch, err := (&epiphany.Runner{Workers: len(jobs)}).RunBatch(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}
	if err := batch.Err(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%dx%d grid, %d iterations, streamed through shared DRAM:\n", *size, *size, *iters)
	fmt.Printf("%-4s %-12s %-10s %-10s %s\n", "T", "time", "GFLOPS", "DRAM MB", "redundant work")

	var first [][]float32
	for i, jr := range batch.Results {
		res := jr.Result.(*epiphany.StreamStencilResult)
		fmt.Printf("%-4d %-12v %-10.2f %-10.1f +%.1f%%\n",
			tblocks[i], res.Elapsed, res.GFLOPS, float64(res.DRAMBytes)/1e6,
			100*float64(res.RedundantFlops)/float64(res.UsefulFlops))
		if first == nil {
			first = res.Global
			cfg := base
			cfg.TBlock = tblocks[i]
			ref := epiphany.StreamStencilReference(cfg)
			if diff := maxDiff(first, ref); diff != 0 {
				log.Fatalf("T=1 deviates from global Jacobi by %g", diff)
			}
		} else if diff := maxDiff(first, res.Global); diff != 0 {
			log.Fatalf("T=%d result differs from T=1 by %g", tblocks[i], diff)
		}
	}
	fmt.Println("\nall variants bit-identical to global Jacobi iteration")
}

func maxDiff(a, b [][]float32) float64 {
	worst := 0.0
	for r := range a {
		for c := range a[r] {
			d := float64(a[r][c] - b[r][c])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
