// Heat: a heat-diffusion application on the simulated Epiphany. A cold
// plate (0 degrees) has a hot strip clamped along its top boundary; the
// 5-point stencil diffuses the heat across a 160x160 grid distributed
// over a 4x8 workgroup. The example renders the temperature field as
// ASCII shading before and after, and reports the achieved GFLOPS.
//
//	go run ./examples/heat
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"epiphany"
)

const (
	groupRows, groupCols = 4, 8
	perCoreRows          = 40
	perCoreCols          = 20
	hotTemp              = 100.0
)

func main() {
	iters := flag.Int("iters", 400, "diffusion iterations")
	flag.Parse()
	gRows := groupRows*perCoreRows + 2
	gCols := groupCols*perCoreCols + 2
	field := make([][]float32, gRows)
	for r := range field {
		field[r] = make([]float32, gCols)
	}
	// Clamp a hot strip along the middle of the top boundary ring.
	for c := gCols / 4; c < 3*gCols/4; c++ {
		field[0][c] = hotTemp
	}

	cfg := epiphany.StencilConfig{
		Rows: perCoreRows, Cols: perCoreCols, Iters: *iters,
		GroupRows: groupRows, GroupCols: groupCols,
		Comm: true, Tuned: true,
		// Pure averaging diffusion: centre keeps half, neighbours share.
		Coefs:   [5]float32{0.125, 0.125, 0.5, 0.125, 0.125},
		Initial: field,
	}

	fmt.Println("initial field (hot strip clamped on the top boundary):")
	render(field, 0)

	r, err := epiphany.Run(context.Background(), &epiphany.StencilWorkload{Label: "heat", Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	res := r.(*epiphany.StencilResult)

	fmt.Printf("\nafter %d iterations (%v simulated, %.1f GFLOPS, %.1f%% of peak):\n",
		*iters, res.Elapsed, res.GFLOPS, res.PctPeak)
	render(res.Global, 0)
}

// render draws the field as ASCII shading, downsampling to a terminal-
// friendly size. skip trims the boundary ring when present.
func render(g [][]float32, skip int) {
	const outRows, outCols = 20, 64
	rows := len(g) - 2*skip
	cols := len(g[0]) - 2*skip
	shades := []byte(" .:-=+*#%@")
	for or := 0; or < outRows; or++ {
		line := make([]byte, outCols)
		for oc := 0; oc < outCols; oc++ {
			// Average the cell block this output character covers.
			r0, r1 := skip+or*rows/outRows, skip+(or+1)*rows/outRows
			c0, c1 := skip+oc*cols/outCols, skip+(oc+1)*cols/outCols
			sum, n := 0.0, 0
			for r := r0; r < r1; r++ {
				for c := c0; c < c1; c++ {
					sum += float64(g[r][c])
					n++
				}
			}
			v := 0.0
			if n > 0 {
				v = sum / float64(n) / hotTemp
			}
			idx := int(v * float64(len(shades)-1) * 3) // boost contrast
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line[oc] = shades[idx]
		}
		fmt.Println(string(line))
	}
}
