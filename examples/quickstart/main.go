// Quickstart: run the paper's two kernels on the simulated 64-core
// Epiphany as one concurrent batch - each workload gets its own fresh
// board - and verify both against host references.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"epiphany"
)

func main() {
	iters := flag.Int("iters", 25, "stencil iterations")
	n := flag.Int("n", 256, "matmul problem edge (divisible by 8)")
	flag.Parse()

	// 1. The heat stencil: a 40x20 grid per core on a 2x2 workgroup,
	// exchanging boundary rows/columns by DMA every iteration.
	scfg := epiphany.StencilConfig{
		Rows: 40, Cols: 20, Iters: *iters,
		GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, Seed: 1,
	}
	// 2. On-chip Cannon matrix multiplication: n x n (256x256 by
	// default) over all 64 cores with the paper's half-buffer rotation.
	mcfg := epiphany.MatmulConfig{
		M: *n, N: *n, K: *n, G: 8,
		Tuned: true, Verify: true, Seed: 2,
	}

	runner := &epiphany.Runner{Workers: 2}
	batch, err := runner.RunWorkloads(context.Background(),
		&epiphany.StencilWorkload{Config: scfg},
		&epiphany.MatmulWorkload{Config: mcfg},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := batch.Err(); err != nil {
		log.Fatal(err)
	}

	sres := batch.Results[0].Result.(*epiphany.StencilResult)
	fmt.Printf("stencil : %6.2f GFLOPS (%.1f%% of peak) in %v simulated\n",
		sres.GFLOPS, sres.PctPeak, sres.Elapsed)
	ref := epiphany.StencilReference(scfg)
	worst := 0.0
	for r := range ref {
		for c := range ref[r] {
			if d := abs64(float64(ref[r][c] - sres.Global[r][c])); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("          max |diff| vs host reference: %g\n", worst)

	mres := batch.Results[1].Result.(*epiphany.MatmulResult)
	fmt.Printf("matmul  : %6.2f GFLOPS (%.1f%% of peak) in %v simulated\n",
		mres.GFLOPS, mres.PctPeak, mres.Elapsed)
	fmt.Printf("          max |diff| vs host reference: %g\n",
		epiphany.MaxAbsDiff(mres.C, epiphany.MatmulReference(mcfg)))
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
