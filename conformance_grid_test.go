package epiphany_test

// The grid-conformance harness: the parameterized topology grammar
// (grid=RxC/chip=RxC) must be the presets' construction path, not a
// parallel one - so boards spelled through the grammar reproduce the
// preset conformance goldens bit for bit. grid=1x1/chip=4x4 is the
// e16 geometry, grid=1x1/chip=8x8 the e64, grid=2x2/chip=4x4 the
// cluster-2x2, and each must hit the frozen tables in
// conformance_test.go / conformance_energy_test.go exactly: elapsed
// units, flop counts, the Float64bits of the derived rates, the
// chip-boundary crossing counters, and the full energy breakdown.
// The grammar keeps these boards' own canonical names (no silent
// aliasing onto the presets), which is what makes this equivalence a
// real theorem about the construction path rather than a string
// comparison.

import (
	"context"
	"math"
	"testing"

	"epiphany"
)

// gridFor parses a grammar spec, failing the test on error.
func gridFor(t *testing.T, spec string) epiphany.Topology {
	t.Helper()
	topo, err := epiphany.ParseTopology(spec)
	if err != nil {
		t.Fatalf("ParseTopology(%q): %v", spec, err)
	}
	return topo
}

// TestGridConformanceSingleChip: 1x1 grids of the paper's two devices
// reproduce the e16/e64 time-domain goldens bit for bit, for every
// pinned workload, with no phantom chip crossings.
func TestGridConformanceSingleChip(t *testing.T) {
	cases := []struct {
		spec   string
		preset string
	}{
		{"grid=1x1/chip=4x4", "e16"},
		{"grid=1x1/chip=8x8", "e64"},
	}
	for _, tc := range cases {
		topo := gridFor(t, tc.spec)
		if topo.Name != tc.spec {
			t.Errorf("ParseTopology(%q).Name = %q, want the canonical spec", tc.spec, topo.Name)
		}
		for _, w := range epiphany.Workloads() {
			want, ok := golden[goldenKey{tc.preset, w.Name()}]
			if !ok {
				continue // externally registered workloads are not pinned
			}
			res, err := epiphany.Run(context.Background(), w, epiphany.WithTopology(topo))
			if err != nil {
				t.Errorf("%s on %s: %v", w.Name(), tc.spec, err)
				continue
			}
			m := res.Metrics()
			got := goldenMetrics{
				elapsed:    uint64(m.Elapsed),
				totalFlops: m.TotalFlops,
				gflopsBits: math.Float64bits(m.GFLOPS),
				pctBits:    math.Float64bits(m.PctPeak),
			}
			if got != want {
				t.Errorf("%s on %s drifted from the %s golden:\n got %+v\nwant %+v",
					w.Name(), tc.spec, tc.preset, got, want)
			}
			if m.ELinkCrossings != 0 || m.ELinkCrossTime != 0 {
				t.Errorf("%s on %s: 1x1 grid reports chip crossings (%d hops, %v)",
					w.Name(), tc.spec, m.ELinkCrossings, m.ELinkCrossTime)
			}
		}
	}
}

// TestGridConformanceCluster: grid=2x2/chip=4x4 is the cluster-2x2
// geometry and must reproduce its golden table bit for bit - including
// the chip-boundary crossing counters, which only match if the grammar
// path prices the same c2c eLink boundaries in the same places.
func TestGridConformanceCluster(t *testing.T) {
	topo := gridFor(t, "grid=2x2/chip=4x4")
	for _, w := range epiphany.Workloads() {
		want, ok := clusterGolden[w.Name()]
		if !ok {
			continue
		}
		res, err := epiphany.Run(context.Background(), w, epiphany.WithTopology(topo))
		if err != nil {
			t.Errorf("%s on grid=2x2/chip=4x4: %v", w.Name(), err)
			continue
		}
		m := res.Metrics()
		got := clusterMetrics{
			elapsed:    uint64(m.Elapsed),
			totalFlops: m.TotalFlops,
			gflopsBits: math.Float64bits(m.GFLOPS),
			pctBits:    math.Float64bits(m.PctPeak),
			crossings:  m.ELinkCrossings,
			crossBytes: m.ELinkCrossBytes,
			crossTime:  uint64(m.ELinkCrossTime),
		}
		if got != want {
			t.Errorf("%s on grid=2x2/chip=4x4 drifted from the cluster-2x2 golden:\n got %+v\nwant %+v",
				w.Name(), got, want)
		}
	}
}

// TestGridConformanceEnergy: the energy domain rides the same activity
// counters, so the 1x1 grid of the e64 device metered under the
// nominal 28nm preset must hit the frozen energy table bit for bit,
// and the 2x2 grid of e16 chips must price energy identically to the
// cluster-2x2 preset (no pinned cluster energy table exists, so the
// preset run is the reference).
func TestGridConformanceEnergy(t *testing.T) {
	e64grid := gridFor(t, "grid=1x1/chip=8x8")
	for _, w := range epiphany.Workloads() {
		want, ok := goldenEnergy[w.Name()]
		if !ok {
			continue
		}
		res, err := epiphany.Run(context.Background(), w,
			epiphany.WithTopology(e64grid),
			epiphany.WithPowerModel("epiphany-iv-28nm", ""))
		if err != nil {
			t.Errorf("%s on grid=1x1/chip=8x8: %v", w.Name(), err)
			continue
		}
		if got := takeEnergy(res.Metrics()); got != want {
			t.Errorf("%s on grid=1x1/chip=8x8 drifted from the e64 energy golden:\n got %+v\nwant %+v",
				w.Name(), got, want)
		}
	}

	clusterGrid := gridFor(t, "grid=2x2/chip=4x4")
	for _, name := range []string{"stencil-tuned", "matmul-offchip", "stream-stencil"} {
		w, _ := epiphany.WorkloadByName(name)
		meter := func(topo epiphany.Topology) energyGolden {
			res, err := epiphany.Run(context.Background(), w,
				epiphany.WithTopology(topo),
				epiphany.WithPowerModel("epiphany-iv-28nm", "nominal"))
			if err != nil {
				t.Fatalf("%s on %s: %v", name, topo.Name, err)
			}
			return takeEnergy(res.Metrics())
		}
		if grid, preset := meter(clusterGrid), meter(epiphany.TopologyCluster2x2); grid != preset {
			t.Errorf("%s: grid=2x2/chip=4x4 energy differs from cluster-2x2:\n grid   %+v\n preset %+v",
				name, grid, preset)
		}
	}
}
