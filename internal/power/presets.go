package power

import (
	"sort"

	"epiphany/internal/names"
)

// The preset models. EpiphanyIV28nm is the calibrated reference point:
// its coefficients are fitted so the modelled full-load draw of the
// 64-core chip at 600 MHz recovers the paper's assumed 2 W (§VIII
// prices every efficiency figure against that number), splitting it into
// plausible 28 nm components - clock/pipeline activity dominating,
// leakage around 16%, the FPU and SRAM streams the rest. The fit:
//
//	leakage   64 x 5 mW                      = 0.320 W
//	active    64 x 600e6 x 40 pJ            = 1.536 W
//	FPU       76.8e9 flop/s x 1 pJ          = 0.077 W
//	SRAM      64 x 600e6 x 12 B x 0.125 pJ  = 0.058 W
//	                                   total = 1.990 W   (paper: "2 watts")
//
// which puts the modelled peak efficiency at 76.8/1.99 = 38.6 GFLOPS/W
// against the paper's 38.4, and the measured-style point (64 GFLOPS
// sustained) at 32.5 against the paper's ~32 - both within 2%.
var (
	// EpiphanyIV28nm models the paper's device: the 64-core Epiphany-IV
	// (E64G401) in 28 nm at the 600 MHz / 1.0 V nominal point.
	EpiphanyIV28nm = Model{
		Name:                 "epiphany-iv-28nm",
		CoreActivePJPerCycle: 40,
		CoreIdlePJPerCycle:   10,
		FPUPJPerFlop:         1,
		SRAMPJPerByte:        0.125,
		DRAMPJPerByte:        20,
		MeshPJPerByteHop:     0.1,
		ELinkPJPerByte:       4,
		C2CPJPerByte:         2,
		LeakageWPerCore:      0.005,
		Nominal:              OperatingPoint{FreqMHz: 600, VoltageV: 1.0},
		Points: []OperatingPoint{
			{FreqMHz: 300, VoltageV: 0.80},
			{FreqMHz: 400, VoltageV: 0.85},
			{FreqMHz: 500, VoltageV: 0.90},
			{FreqMHz: 600, VoltageV: 1.00},
			{FreqMHz: 700, VoltageV: 1.10},
			{FreqMHz: 800, VoltageV: 1.20},
		},
	}

	// EpiphanyIII65nm models the 16-core Epiphany-III (E16G301) in the
	// older 65 nm process: roughly twice the switching energy per event
	// and more leakage per core, at the same 600 MHz / 1.0 V nominal
	// point - the board the Parallella clusters are built from.
	EpiphanyIII65nm = Model{
		Name:                 "epiphany-iii-65nm",
		CoreActivePJPerCycle: 80,
		CoreIdlePJPerCycle:   20,
		FPUPJPerFlop:         2,
		SRAMPJPerByte:        0.25,
		DRAMPJPerByte:        25,
		MeshPJPerByteHop:     0.2,
		ELinkPJPerByte:       5,
		C2CPJPerByte:         2.5,
		LeakageWPerCore:      0.010,
		Nominal:              OperatingPoint{FreqMHz: 600, VoltageV: 1.0},
		Points: []OperatingPoint{
			{FreqMHz: 300, VoltageV: 0.85},
			{FreqMHz: 400, VoltageV: 0.90},
			{FreqMHz: 500, VoltageV: 0.95},
			{FreqMHz: 600, VoltageV: 1.00},
		},
	}
)

var presets = map[string]*Model{
	EpiphanyIV28nm.Name:  &EpiphanyIV28nm,
	EpiphanyIII65nm.Name: &EpiphanyIII65nm,
}

// ModelByName looks up a preset power model.
func ModelByName(name string) (*Model, bool) {
	m, ok := presets[name]
	return m, ok
}

// Models lists the preset model names in sorted order.
func Models() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ResolveModel maps a preset name to its model, with an error naming
// the available presets when the name is unknown.
func ResolveModel(name string) (*Model, error) {
	m, ok := ModelByName(name)
	if !ok {
		return nil, names.Unknown("power model", name, Models())
	}
	return m, nil
}
