package power

import (
	"math"
	"strings"
	"testing"
)

// TestComputedHeadlineEfficiency reproduces the paper's §VIII headline
// from the computed model, not the assumed constant: the calibrated
// epiphany-iv-28nm preset must put the 64-core chip's full-load draw at
// the paper's "2 watts" and therefore its peak efficiency at ~38.4
// GFLOPS/W and its measured-style efficiency (the ~64 GFLOPS the
// paper's matmul sustains) at ~32 GFLOPS/W. Tolerance: 2% on every
// figure - the calibration note in presets.go shows the exact fit.
func TestComputedHeadlineEfficiency(t *testing.T) {
	m := &EpiphanyIV28nm
	const tol = 0.02
	within := func(got, want float64) bool { return math.Abs(got-want) <= tol*want }

	if w := m.PeakPowerW(64, m.Nominal); !within(w, 2.0) {
		t.Errorf("full-load chip draw %.4f W, want 2 W +-2%%", w)
	}
	if g := m.PeakGFLOPS(64, m.Nominal); g != 76.8 {
		t.Errorf("peak %.2f GFLOPS, want 76.8", g)
	}
	if eff := m.PeakEfficiency(64, m.Nominal); !within(eff, 38.4) {
		t.Errorf("computed peak efficiency %.2f GFLOPS/W, want 38.4 +-2%%", eff)
	}

	// Measured-style point: the chip sustaining 64 of its 76.8 peak
	// GFLOPS, every core active, operand traffic scaled with the flops.
	c := m.PeakCounters(64, 1e-3)
	scale := 64.0 / 76.8
	c.Flops = uint64(float64(c.Flops) * scale)
	c.SRAMBytes = uint64(float64(c.SRAMBytes) * scale)
	u := m.Energy(c, m.Nominal)
	if eff := 64.0 / u.AvgPowerW; !within(eff, 32) {
		t.Errorf("computed measured-style efficiency %.2f GFLOPS/W, want 32 +-2%%", eff)
	}
}

// TestDVFSScaling checks the analytic scaling laws: wall time ~ 1/f,
// dynamic energy ~ V^2 at fixed activity, leakage energy ~ V/f.
func TestDVFSScaling(t *testing.T) {
	m := &EpiphanyIV28nm
	c := m.PeakCounters(64, 1e-3)
	nom := m.Energy(c, m.Nominal)

	half := OperatingPoint{FreqMHz: 300, VoltageV: 1.0}
	u := m.Energy(c, half)
	if got, want := u.TimeS, 2*nom.TimeS; math.Abs(got-want) > 1e-12 {
		t.Errorf("halving f: wall time %v, want %v", got, want)
	}
	// Same voltage: every dynamic component is unchanged; leakage
	// doubles with the stretched wall time.
	if u.Breakdown.CoreActiveJ != nom.Breakdown.CoreActiveJ {
		t.Errorf("dynamic energy moved with frequency at fixed V")
	}
	if got, want := u.Breakdown.LeakageJ, 2*nom.Breakdown.LeakageJ; math.Abs(got-want) > 1e-15 {
		t.Errorf("leakage %v, want %v at half frequency", got, want)
	}

	lowV := OperatingPoint{FreqMHz: 600, VoltageV: 0.5}
	v := m.Energy(c, lowV)
	if got, want := v.Breakdown.CoreActiveJ, nom.Breakdown.CoreActiveJ/4; math.Abs(got-want) > 1e-15 {
		t.Errorf("dynamic energy %v at V/2, want quarter of %v", got, nom.Breakdown.CoreActiveJ)
	}
	if got, want := v.Breakdown.LeakageJ, nom.Breakdown.LeakageJ/2; math.Abs(got-want) > 1e-15 {
		t.Errorf("leakage %v at V/2, want half of %v", got, nom.Breakdown.LeakageJ)
	}

	// EDP at nominal equals E*t by construction.
	if nom.EDPJs != nom.EnergyJ*nom.TimeS {
		t.Errorf("EDP %v != EnergyJ*TimeS %v", nom.EDPJs, nom.EnergyJ*nom.TimeS)
	}
}

// TestParsePoint covers the DVFS axis spelling, good and bad.
func TestParsePoint(t *testing.T) {
	good := map[string]OperatingPoint{
		"600MHz@1.0V":  {600, 1.0},
		"600@1.0":      {600, 1.0},
		"300mhz@0.8v":  {300, 0.8},
		" 450 @ 0.85 ": {450, 0.85},
	}
	for in, want := range good {
		got, err := ParsePoint(in)
		if err != nil || got != want {
			t.Errorf("ParsePoint(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{
		"", "600", "@", "600@", "@1.0", "x@y", "600MHz@xV",
		"0@1.0", "600@0", "-600@1.0", "600@-1.0",
	} {
		if _, err := ParsePoint(bad); err == nil {
			t.Errorf("ParsePoint(%q) accepted", bad)
		}
	}
}

// TestModelPointAndLabels checks the canonical label round trip and the
// nominal aliases.
func TestModelPointAndLabels(t *testing.T) {
	m := &EpiphanyIV28nm
	for _, label := range []string{"", "nominal"} {
		op, err := m.Point(label)
		if err != nil || op != m.Nominal {
			t.Errorf("Point(%q) = %v, %v; want nominal %v", label, op, err, m.Nominal)
		}
	}
	for _, op := range m.Points {
		back, err := ParsePoint(op.String())
		if err != nil || back != op {
			t.Errorf("label %q does not round-trip: %v, %v", op.String(), back, err)
		}
	}
	if s := m.Nominal.String(); s != "600MHz@1.00V" {
		t.Errorf("canonical nominal label %q", s)
	}
}

// TestPresetRegistry checks the preset lookups and that every preset
// validates.
func TestPresetRegistry(t *testing.T) {
	names := Models()
	if len(names) < 2 {
		t.Fatalf("want >= 2 presets, have %v", names)
	}
	for _, name := range names {
		m, ok := ModelByName(name)
		if !ok || m.Name != name {
			t.Fatalf("preset %q does not resolve to itself", name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	if _, err := ResolveModel("no-such-model"); err == nil ||
		!strings.Contains(err.Error(), "unknown power model") {
		t.Errorf("ResolveModel of unknown name: %v", err)
	}
	// The 65nm part must be strictly less efficient than the 28nm part.
	if e3, e4 := EpiphanyIII65nm.PeakEfficiency(16, EpiphanyIII65nm.Nominal),
		EpiphanyIV28nm.PeakEfficiency(64, EpiphanyIV28nm.Nominal); e3 >= e4 {
		t.Errorf("65nm efficiency %.1f should trail 28nm %.1f", e3, e4)
	}
}

// TestPrintedPeakEfficiencies pins every static Table VII row's
// GFLOPS/Watt to the paper's printed values (the rows the simulator
// cannot compute; the Epiphany row's printed 38.4 is also what the
// computed model must land near, tested above).
func TestPrintedPeakEfficiencies(t *testing.T) {
	want := map[string]float64{
		"TI C6678 Multicore DSP":       16.0,
		"Tilera 64-core chip":          5.49,
		"Intel 80-core Terascale":      14.09,
		"Epiphany 64-core coprocessor": 38.4,
	}
	if len(Comparison) != len(want) {
		t.Fatalf("Table VII has %d systems, want %d", len(Comparison), len(want))
	}
	for _, s := range Comparison {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected system %q", s.Name)
			continue
		}
		if got := s.PeakEfficiency(); math.Abs(got-w) > 0.005*w {
			t.Errorf("%s: %.3f GFLOPS/W, paper prints %.2f", s.Name, got, w)
		}
	}
}

// TestComputedComparison checks the computed Epiphany row replaces the
// transcribed one and leads the table, and that the renderer carries
// every system.
func TestComputedComparison(t *testing.T) {
	rows := ComputedComparison(&EpiphanyIV28nm, 64)
	if len(rows) != len(Comparison) {
		t.Fatalf("%d rows, want %d", len(rows), len(Comparison))
	}
	last := rows[len(rows)-1]
	if !strings.Contains(last.Name, "computed") || !strings.Contains(last.Name, EpiphanyIV28nm.Name) {
		t.Fatalf("last row %q is not the computed Epiphany row", last.Name)
	}
	if last.MaxGFLOPS != 76.8 {
		t.Errorf("computed peak %.2f GFLOPS, want 76.8", last.MaxGFLOPS)
	}
	if math.Abs(last.ChipWatts-2.0) > 0.04 {
		t.Errorf("computed chip draw %.3f W, want ~2", last.ChipWatts)
	}
	for _, s := range rows[:len(rows)-1] {
		if s.PeakEfficiency() >= last.PeakEfficiency() {
			t.Errorf("%s (%.1f GFLOPS/W) should trail the computed Epiphany row (%.1f)",
				s.Name, s.PeakEfficiency(), last.PeakEfficiency())
		}
	}
	tab := ComparisonTable(&EpiphanyIV28nm, 64)
	if len(tab.Rows) != len(rows) {
		t.Errorf("rendered table has %d rows, want %d", len(tab.Rows), len(rows))
	}
	if text := tab.Text(); !strings.Contains(text, "GFLOPS/W") {
		t.Errorf("rendered table lacks the efficiency column:\n%s", text)
	}
}

// TestValidate exercises the model validator's error paths.
func TestValidate(t *testing.T) {
	ok := EpiphanyIV28nm
	if err := ok.Validate(); err != nil {
		t.Fatalf("preset invalid: %v", err)
	}
	bad := ok
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("unnamed model validated")
	}
	bad = ok
	bad.Nominal.VoltageV = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nominal voltage validated")
	}
	bad = ok
	bad.FPUPJPerFlop = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative coefficient validated")
	}
	bad = ok
	bad.LeakageWPerCore = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("NaN coefficient validated")
	}
	bad = ok
	bad.Nominal.FreqMHz = math.Inf(1)
	if err := bad.Validate(); err == nil {
		t.Error("infinite nominal frequency validated")
	}
	bad = ok
	bad.Points = append([]OperatingPoint{{0, 1}}, ok.Points...)
	if err := bad.Validate(); err == nil {
		t.Error("zero-frequency ladder point validated")
	}
}
