package power

import (
	"fmt"
	"math"
)

// Model is a per-component energy model of one Epiphany board: every
// coefficient prices one kind of event the simulator already counts
// (core-active cycles, flops, memory bytes, mesh byte-hops, chip
// crossings), plus a static leakage term that accrues with wall time.
// The model is event-sourced: a run is simulated once, in
// frequency-invariant clock cycles, and the energy report is derived
// afterwards from the activity counters - so attaching a model (or
// changing its operating point) can never perturb the time-domain
// metrics, which stay bit-identical to an unmetered run.
//
// Per-event coefficients are in picojoules at the nominal operating
// point; leakage is in watts per core at nominal voltage.
type Model struct {
	// Name identifies the preset in options and sweep axes
	// ("epiphany-iv-28nm").
	Name string `json:"name"`

	// CoreActivePJPerCycle is the dynamic energy of one core clock cycle
	// in which the core does modelled work (compute, issue, copy loops);
	// CoreIdlePJPerCycle is the clock-gated cost of every other cycle
	// (spinning on a flag or blocked on DMA still clocks the core).
	CoreActivePJPerCycle float64 `json:"core_active_pj_per_cycle"`
	CoreIdlePJPerCycle   float64 `json:"core_idle_pj_per_cycle"`
	// FPUPJPerFlop is the incremental energy of one single-precision
	// floating-point operation, on top of the active-cycle cost.
	FPUPJPerFlop float64 `json:"fpu_pj_per_flop"`
	// SRAMPJPerByte and DRAMPJPerByte price bytes moved through a core
	// scratchpad and the shared off-chip DRAM window respectively.
	SRAMPJPerByte float64 `json:"sram_pj_per_byte"`
	DRAMPJPerByte float64 `json:"dram_pj_per_byte"`
	// MeshPJPerByteHop prices one byte traversing one on-chip mesh
	// router+link hop; ELinkPJPerByte the off-chip eLink to shared DRAM;
	// C2CPJPerByte one byte crossing a chip-to-chip eLink boundary.
	MeshPJPerByteHop float64 `json:"mesh_pj_per_byte_hop"`
	ELinkPJPerByte   float64 `json:"elink_pj_per_byte"`
	C2CPJPerByte     float64 `json:"c2c_pj_per_byte"`
	// LeakageWPerCore is the static power of one core (plus its share of
	// the uncore) at nominal voltage, in watts. Leakage is paid for the
	// run's whole wall time, so it grows relatively as the clock slows.
	LeakageWPerCore float64 `json:"leakage_w_per_core"`

	// Nominal is the operating point the coefficients are calibrated at.
	Nominal OperatingPoint `json:"nominal"`
	// Points is the model's DVFS ladder in ascending frequency order
	// (includes Nominal). Sweeps may also use ad-hoc points.
	Points []OperatingPoint `json:"points"`
}

// Counters is the raw activity a run deposited in the simulator's
// event-sourced counters: the quantities the fabric layers already
// accumulate on their hot paths (counter increments only - collecting a
// Counters allocates nothing during the run). All cycle figures are
// nominal core cycles, which are DVFS-invariant.
type Counters struct {
	// Cores is the board's core count (the leakage and idle multiplier).
	Cores int `json:"cores"`
	// ElapsedCycles is the run's simulated duration in core cycles.
	ElapsedCycles float64 `json:"elapsed_cycles"`
	// ActiveCycles is the modelled-work cycles summed over all cores
	// (<= Cores*ElapsedCycles; the rest are idle cycles).
	ActiveCycles float64 `json:"active_cycles"`
	// Flops counts floating-point operations performed, summed over cores.
	Flops uint64 `json:"flops"`
	// SRAMBytes and DRAMBytes count bytes moved through the scratchpad
	// and shared-DRAM interfaces.
	SRAMBytes uint64 `json:"sram_bytes"`
	DRAMBytes uint64 `json:"dram_bytes"`
	// MeshByteHops counts payload bytes times on-chip mesh hops taken.
	MeshByteHops uint64 `json:"mesh_byte_hops"`
	// ELinkBytes counts bytes through the off-chip eLink (both
	// directions); C2CBytes counts bytes over chip-to-chip boundaries.
	ELinkBytes uint64 `json:"elink_bytes"`
	C2CBytes   uint64 `json:"c2c_bytes"`
}

// Breakdown decomposes a run's energy by component, in joules.
type Breakdown struct {
	CoreActiveJ float64 `json:"core_active_j"`
	CoreIdleJ   float64 `json:"core_idle_j"`
	FPUJ        float64 `json:"fpu_j"`
	SRAMJ       float64 `json:"sram_j"`
	DRAMJ       float64 `json:"dram_j"`
	MeshJ       float64 `json:"mesh_j"`
	ELinkJ      float64 `json:"elink_j"`
	C2CJ        float64 `json:"c2c_j"`
	LeakageJ    float64 `json:"leakage_j"`
}

// Total returns the summed energy of all components, in joules.
func (b Breakdown) Total() float64 {
	return b.CoreActiveJ + b.CoreIdleJ + b.FPUJ + b.SRAMJ + b.DRAMJ +
		b.MeshJ + b.ELinkJ + b.C2CJ + b.LeakageJ
}

// Usage is the computed energy report of one run at one operating point.
type Usage struct {
	// Model and Point identify how the report was derived.
	Model string         `json:"model"`
	Point OperatingPoint `json:"point"`
	// TimeS is the run's wall-clock time at the operating point's
	// frequency, in seconds (= ElapsedCycles / f).
	TimeS float64 `json:"time_s"`
	// EnergyJ is the total energy (= Breakdown.Total()), AvgPowerW the
	// mean draw over TimeS, and EDPJs the energy-delay product.
	EnergyJ   float64   `json:"energy_j"`
	AvgPowerW float64   `json:"avg_power_w"`
	EDPJs     float64   `json:"edp_js"`
	Breakdown Breakdown `json:"breakdown"`
}

const picojoule = 1e-12

// Point resolves a DVFS axis label against the model: "" and "nominal"
// return the nominal point, anything else must parse as FREQ@VOLT (ad
// hoc points are allowed - the ladder in Points is the hardware's
// validated set, not a restriction on what can be studied).
func (m *Model) Point(label string) (OperatingPoint, error) {
	if label == "" || label == "nominal" {
		return m.Nominal, nil
	}
	return ParsePoint(label)
}

// Energy derives the run's energy report from its activity counters at
// the given operating point (the zero point means nominal).
//
// The DVFS scaling is the standard analytic model: cycle counts are
// frequency-invariant, so wall time scales as 1/f; per-event dynamic
// energies scale with (V/Vnom)^2 (the CV^2 switching energy); static
// leakage power scales linearly with V and is paid over the stretched
// wall time - which is exactly why racing to idle can beat frequency
// scaling once leakage dominates.
func (m *Model) Energy(c Counters, op OperatingPoint) Usage {
	if op.IsZero() {
		op = m.Nominal
	}
	vr := op.VoltageV / m.Nominal.VoltageV
	dyn := vr * vr * picojoule // scaled pJ -> J conversion for dynamic events
	timeS := c.ElapsedCycles / (op.FreqMHz * 1e6)
	idleCycles := float64(c.Cores)*c.ElapsedCycles - c.ActiveCycles
	if idleCycles < 0 {
		idleCycles = 0
	}
	b := Breakdown{
		CoreActiveJ: c.ActiveCycles * m.CoreActivePJPerCycle * dyn,
		CoreIdleJ:   idleCycles * m.CoreIdlePJPerCycle * dyn,
		FPUJ:        float64(c.Flops) * m.FPUPJPerFlop * dyn,
		SRAMJ:       float64(c.SRAMBytes) * m.SRAMPJPerByte * dyn,
		DRAMJ:       float64(c.DRAMBytes) * m.DRAMPJPerByte * dyn,
		MeshJ:       float64(c.MeshByteHops) * m.MeshPJPerByteHop * dyn,
		ELinkJ:      float64(c.ELinkBytes) * m.ELinkPJPerByte * dyn,
		C2CJ:        float64(c.C2CBytes) * m.C2CPJPerByte * dyn,
		LeakageJ:    m.LeakageWPerCore * float64(c.Cores) * vr * timeS,
	}
	u := Usage{
		Model:     m.Name,
		Point:     op,
		TimeS:     timeS,
		EnergyJ:   b.Total(),
		Breakdown: b,
	}
	if timeS > 0 {
		u.AvgPowerW = u.EnergyJ / timeS
	}
	u.EDPJs = u.EnergyJ * timeS
	return u
}

// PeakCounters builds the synthetic full-load activity of cores cores
// running flat out for seconds of wall time at nominal frequency: every
// core active every cycle, two flops per core per cycle (the FPU's
// fused multiply-add peak), and the matching operand traffic through
// local SRAM (12 bytes per core-cycle: two 4-byte reads and one write).
// It is the model's calibration scenario - Energy over these counters
// is the chip's peak draw, which the nominal Epiphany preset fits to
// the paper's assumed 2 W.
func (m *Model) PeakCounters(cores int, seconds float64) Counters {
	cycles := seconds * m.Nominal.FreqMHz * 1e6
	return Counters{
		Cores:         cores,
		ElapsedCycles: cycles,
		ActiveCycles:  float64(cores) * cycles,
		Flops:         uint64(2 * float64(cores) * cycles),
		SRAMBytes:     uint64(12 * float64(cores) * cycles),
	}
}

// PeakGFLOPS returns the board's theoretical single-precision peak at
// the operating point: cores x 2 flops/cycle x f.
func (m *Model) PeakGFLOPS(cores int, op OperatingPoint) float64 {
	if op.IsZero() {
		op = m.Nominal
	}
	return 2 * float64(cores) * op.FreqMHz / 1e3
}

// PeakPowerW returns the modelled full-load draw of cores cores at the
// operating point (Energy over PeakCounters).
func (m *Model) PeakPowerW(cores int, op OperatingPoint) float64 {
	return m.Energy(m.PeakCounters(cores, 1e-3), op).AvgPowerW
}

// PeakEfficiency returns the modelled peak GFLOPS/Watt at the operating
// point - the computed counterpart of the paper's 38.4 figure.
func (m *Model) PeakEfficiency(cores int, op OperatingPoint) float64 {
	return m.PeakGFLOPS(cores, op) / m.PeakPowerW(cores, op)
}

// Validate checks the model is usable: named, positive nominal point,
// non-negative coefficients, and a sane ladder.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("epiphany: power model must be named")
	}
	if !isPositiveFinite(m.Nominal.FreqMHz) || !isPositiveFinite(m.Nominal.VoltageV) {
		return fmt.Errorf("epiphany: power model %q: nominal point %v must have positive finite frequency and voltage", m.Name, m.Nominal)
	}
	for _, c := range []float64{
		m.CoreActivePJPerCycle, m.CoreIdlePJPerCycle, m.FPUPJPerFlop,
		m.SRAMPJPerByte, m.DRAMPJPerByte, m.MeshPJPerByteHop,
		m.ELinkPJPerByte, m.C2CPJPerByte, m.LeakageWPerCore,
	} {
		// NaN compares false to everything, so test for the acceptable
		// range rather than the unacceptable one.
		if !(c >= 0) || math.IsInf(c, 1) {
			return fmt.Errorf("epiphany: power model %q has a negative or non-finite coefficient", m.Name)
		}
	}
	for _, p := range m.Points {
		if !isPositiveFinite(p.FreqMHz) || !isPositiveFinite(p.VoltageV) {
			return fmt.Errorf("epiphany: power model %q: ladder point %v must have positive finite frequency and voltage", m.Name, p)
		}
	}
	return nil
}
