// Package power holds the energy-efficiency accounting used in the
// paper's §VIII comparison (Table VII) and its GFLOPS/Watt claims.
package power

// ChipWatts is the Epiphany-IV chip power the paper assumes ("assuming 2
// watts power usage"; the authors note the actual draw was not yet
// measured).
const ChipWatts = 2.0

// PeakGFLOPS is the chip's single-precision peak: 64 cores x 2
// flops/cycle x 600 MHz.
const PeakGFLOPS = 76.8

// GFLOPSPerWatt converts an achieved GFLOPS figure to efficiency under
// the nominal chip power.
func GFLOPSPerWatt(gflops float64) float64 { return gflops / ChipWatts }

// System is one row of the paper's Table VII.
type System struct {
	Name      string
	ChipWatts float64
	Cores     int
	MaxGFLOPS float64
	ClockGHz  float64
}

// PeakEfficiency returns the system's peak GFLOPS/Watt.
func (s System) PeakEfficiency() float64 { return s.MaxGFLOPS / s.ChipWatts }

// Comparison reproduces Table VII's systems.
var Comparison = []System{
	{Name: "TI C6678 Multicore DSP", ChipWatts: 10, Cores: 8, MaxGFLOPS: 160, ClockGHz: 1.5},
	{Name: "Tilera 64-core chip", ChipWatts: 35, Cores: 64, MaxGFLOPS: 192, ClockGHz: 0.9},
	{Name: "Intel 80-core Terascale", ChipWatts: 97, Cores: 80, MaxGFLOPS: 1366.4, ClockGHz: 4.27},
	{Name: "Epiphany 64-core coprocessor", ChipWatts: ChipWatts, Cores: 64, MaxGFLOPS: PeakGFLOPS, ClockGHz: 0.6},
}
