// Package power is the event-sourced energy-accounting subsystem: a
// per-component energy Model prices the activity counters the simulator
// accumulates (core cycles, flops, memory bytes, mesh byte-hops, chip
// crossings) into joules, watts and GFLOPS/Watt, with DVFS operating
// points as an analytic frequency/voltage axis. It also carries the
// paper's §VIII Table VII cross-system comparison, with the Epiphany
// row computable from the model rather than transcribed.
package power

import (
	"fmt"

	"epiphany/internal/tabular"
)

// ChipWatts is the Epiphany-IV chip power the paper assumes ("assuming 2
// watts power usage"; the authors note the actual draw was not yet
// measured).
const ChipWatts = 2.0

// PeakGFLOPS is the chip's single-precision peak: 64 cores x 2
// flops/cycle x 600 MHz.
const PeakGFLOPS = 76.8

// GFLOPSPerWatt converts an achieved GFLOPS figure to efficiency under
// the nominal chip power.
func GFLOPSPerWatt(gflops float64) float64 { return gflops / ChipWatts }

// System is one row of the paper's Table VII.
type System struct {
	Name      string
	ChipWatts float64
	Cores     int
	MaxGFLOPS float64
	ClockGHz  float64
}

// PeakEfficiency returns the system's peak GFLOPS/Watt.
func (s System) PeakEfficiency() float64 { return s.MaxGFLOPS / s.ChipWatts }

// EpiphanyRowName is Table VII's label for the Epiphany row - shared by
// the Comparison literal and ComputedComparison's filter, so renaming
// the row cannot silently leave both a transcribed and a computed copy
// in the computed table.
const EpiphanyRowName = "Epiphany 64-core coprocessor"

// Comparison reproduces Table VII's systems, with every row - including
// the Epiphany's - transcribed from the paper's printed values. The
// computed counterpart is ComputedComparison, which derives the
// Epiphany row from an energy Model instead.
var Comparison = []System{
	{Name: "TI C6678 Multicore DSP", ChipWatts: 10, Cores: 8, MaxGFLOPS: 160, ClockGHz: 1.5},
	{Name: "Tilera 64-core chip", ChipWatts: 35, Cores: 64, MaxGFLOPS: 192, ClockGHz: 0.9},
	{Name: "Intel 80-core Terascale", ChipWatts: 97, Cores: 80, MaxGFLOPS: 1366.4, ClockGHz: 4.27},
	{Name: EpiphanyRowName, ChipWatts: ChipWatts, Cores: 64, MaxGFLOPS: PeakGFLOPS, ClockGHz: 0.6},
}

// ComputedComparison returns Table VII with the simulated Epiphany row
// computed from the energy model - peak GFLOPS from cores x 2
// flops/cycle x f, chip draw from the model's full-load calibration
// scenario - rather than transcribed from the paper. The static
// competitor rows keep their printed values (we have no model of their
// silicon).
func ComputedComparison(m *Model, cores int) []System {
	rows := make([]System, 0, len(Comparison))
	for _, s := range Comparison {
		if s.Name != EpiphanyRowName {
			rows = append(rows, s)
		}
	}
	rows = append(rows, System{
		Name:      fmt.Sprintf("Epiphany %d-core (%s, computed)", cores, m.Name),
		ChipWatts: m.PeakPowerW(cores, m.Nominal),
		Cores:     cores,
		MaxGFLOPS: m.PeakGFLOPS(cores, m.Nominal),
		ClockGHz:  m.Nominal.FreqMHz / 1e3,
	})
	return rows
}

// ComparisonTable renders ComputedComparison as the paper's Table VII:
// one row per system with its peak GFLOPS/Watt, the Epiphany row
// computed from the model.
func ComparisonTable(m *Model, cores int) *tabular.Table {
	t := &tabular.Table{Header: []string{
		"system", "cores", "clock (GHz)", "chip power (W)", "max GFLOPS", "GFLOPS/W",
	}}
	for _, s := range ComputedComparison(m, cores) {
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.Cores),
			fmt.Sprintf("%.2f", s.ClockGHz),
			fmt.Sprintf("%.2f", s.ChipWatts),
			fmt.Sprintf("%.1f", s.MaxGFLOPS),
			fmt.Sprintf("%.2f", s.PeakEfficiency()),
		})
	}
	return t
}
