package power

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// isPositiveFinite reports whether v is a usable physical quantity:
// strictly positive and neither NaN nor Inf (NaN compares false to
// everything, so a plain `v <= 0` check would wave it through - and a
// NaN operating point would poison derived energy columns and defeat
// the DVFS axis's dedupe/sort canonicalization).
func isPositiveFinite(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// OperatingPoint is one DVFS frequency/voltage pair: the core clock in
// MHz and the supply voltage in volts. Operating points scale a run's
// derived quantities analytically - the discrete-event simulation always
// executes in nominal clock cycles, which are frequency-invariant, so
// the time-domain metrics of a run are bit-identical at every point and
// only the energy/wall-clock conversion changes (dynamic energy scales
// with V^2, wall time with 1/f, leakage power with V; see Model.Energy).
type OperatingPoint struct {
	FreqMHz  float64 `json:"freq_mhz"`
	VoltageV float64 `json:"voltage_v"`
}

// String renders the canonical axis spelling, e.g. "600MHz@1.00V". The
// rendering is fixed-precision so equal points always produce equal
// labels (sweep cells and golden tables key on it).
func (o OperatingPoint) String() string {
	return fmt.Sprintf("%gMHz@%.2fV", o.FreqMHz, o.VoltageV)
}

// IsZero reports whether the point is unset.
func (o OperatingPoint) IsZero() bool { return o == OperatingPoint{} }

// ParsePoint parses the textual spelling of a DVFS operating point:
// "FREQ@VOLT" with an optional "MHz" suffix on the frequency and "V" on
// the voltage ("600MHz@1.0V", "600@1.0"). Both components must be
// positive; suffixes are case-insensitive.
func ParsePoint(s string) (OperatingPoint, error) {
	var o OperatingPoint
	f, v, ok := strings.Cut(s, "@")
	if !ok {
		return o, fmt.Errorf("epiphany: operating point %q must be FREQ[MHz]@VOLT[V]", s)
	}
	f = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(f)), "mhz")
	v = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(v)), "v")
	freq, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return o, fmt.Errorf("epiphany: operating point %q: bad frequency: %v", s, err)
	}
	volt, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return o, fmt.Errorf("epiphany: operating point %q: bad voltage: %v", s, err)
	}
	if !isPositiveFinite(freq) || !isPositiveFinite(volt) {
		return o, fmt.Errorf("epiphany: operating point %q: frequency and voltage must be positive and finite", s)
	}
	o.FreqMHz, o.VoltageV = freq, volt
	return o, nil
}
