package power

import "testing"

func TestEpiphanyHeadlineEfficiency(t *testing.T) {
	// The paper's headline: ~32 GFLOPS/W at the measured ~64 GFLOPS,
	// 38.4 GFLOPS/W at peak.
	if got := GFLOPSPerWatt(64); got != 32 {
		t.Fatalf("64 GFLOPS -> %v GFLOPS/W, want 32", got)
	}
	if got := GFLOPSPerWatt(PeakGFLOPS); got != 38.4 {
		t.Fatalf("peak -> %v GFLOPS/W, want 38.4", got)
	}
}

func TestComparisonTable(t *testing.T) {
	if len(Comparison) != 4 {
		t.Fatalf("Table VII has %d systems, want 4", len(Comparison))
	}
	var epiphany, intel System
	for _, s := range Comparison {
		switch s.Name {
		case "Epiphany 64-core coprocessor":
			epiphany = s
		case "Intel 80-core Terascale":
			intel = s
		}
	}
	if epiphany.Cores != 64 || epiphany.MaxGFLOPS != 76.8 {
		t.Fatalf("Epiphany row wrong: %+v", epiphany)
	}
	// The paper's comparison point: Epiphany's efficiency advantage over
	// the Terascale chip is roughly 3x at peak (and ~3x measured).
	ratio := epiphany.PeakEfficiency() / intel.PeakEfficiency()
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("Epiphany/Terascale efficiency ratio %.2f, want ~2.7", ratio)
	}
	// Epiphany must lead every system in the table on GFLOPS/W.
	for _, s := range Comparison {
		if s.Name != epiphany.Name && s.PeakEfficiency() >= epiphany.PeakEfficiency() {
			t.Fatalf("%s (%.1f GFLOPS/W) should not beat Epiphany (%.1f)",
				s.Name, s.PeakEfficiency(), epiphany.PeakEfficiency())
		}
	}
}
