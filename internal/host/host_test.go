package host

import (
	"bytes"
	"testing"

	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

func newHost() (*sim.Engine, *Host) {
	eng := sim.NewEngine()
	return eng, New(ecore.NewChip(eng, 8, 8))
}

func TestWriteReadCoreRoundTrip(t *testing.T) {
	_, h := newHost()
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	var got []byte
	err := h.Run(func(hp *Proc) {
		hp.WriteCore(5, 0x1000, data)
		got = hp.ReadCore(5, 0x1000, len(data))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: %v != %v", got, data)
	}
}

func TestWriteCoreTiming(t *testing.T) {
	_, h := newHost()
	var end sim.Time
	data := make([]byte, 1500)
	err := h.Run(func(hp *Proc) {
		hp.WriteCore(0, 0, data)
		end = hp.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(1500) * DownBytePeriod; end != want {
		t.Fatalf("write took %v, want %v (150 MB/s e_write)", end, want)
	}
}

func TestHostWritesSerializeOnDownLink(t *testing.T) {
	// Two sequential writes to different cores share the link.
	_, h := newHost()
	var end sim.Time
	err := h.Run(func(hp *Proc) {
		hp.WriteCore(0, 0, make([]byte, 1000))
		hp.WriteCore(1, 0, make([]byte, 1000))
		end = hp.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(2000) * DownBytePeriod; end != want {
		t.Fatalf("two writes took %v, want %v", end, want)
	}
}

func TestFloat32Marshalling(t *testing.T) {
	_, h := newHost()
	vals := []float32{0, 1.5, -2.25, 3e7, -0.0001}
	var got []float32
	err := h.Run(func(hp *Proc) {
		hp.WriteCoreF32(3, 0x2000, vals)
		got = hp.ReadCoreF32(3, 0x2000, len(vals))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %v != %v", i, got[i], vals[i])
		}
	}
	// The device must see the same bits (little-endian float32).
	if h.Chip().Fabric().SRAMs[3].LoadF32(0x2000+4) != 1.5 {
		t.Fatal("device-side float mismatch")
	}
}

func TestDRAMStagingFasterThanELink(t *testing.T) {
	_, h := newHost()
	var dramT, coreT sim.Time
	err := h.Run(func(hp *Proc) {
		t0 := hp.Now()
		hp.WriteDRAM(0, make([]byte, 4096))
		dramT = hp.Now() - t0
		t0 = hp.Now()
		hp.WriteCore(0, 0, make([]byte, 4096))
		coreT = hp.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	if dramT >= coreT {
		t.Fatalf("host DRAM staging (%v) should beat eLink core writes (%v)", dramT, coreT)
	}
}

func TestDRAMF32RoundTrip(t *testing.T) {
	_, h := newHost()
	vals := []float32{9, 8, 7}
	var got []float32
	err := h.Run(func(hp *Proc) {
		hp.WriteDRAMF32(0x100, vals)
		got = hp.ReadDRAMF32(0x100, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %v != %v", i, got[i], vals[i])
		}
	}
}

func TestLoadImageCost(t *testing.T) {
	_, h := newHost()
	var end sim.Time
	err := h.Run(func(hp *Proc) {
		hp.LoadImage([]int{0, 1, 2, 3}, 8192)
		end = hp.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * (sim.Time(8192)*DownBytePeriod + LoadImageOverhead)
	if end != want {
		t.Fatalf("image load took %v, want %v", end, want)
	}
}

func TestJoinWaitsForKernels(t *testing.T) {
	_, h := newHost()
	var end sim.Time
	err := h.Run(func(hp *Proc) {
		p := hp.Chip().Launch(0, "worker", func(c *ecore.Core) {
			c.Idle(sim.Millisecond)
		})
		hp.Join([]*sim.Proc{p})
		end = hp.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if end < sim.Millisecond {
		t.Fatalf("join returned at %v, before the kernel finished", end)
	}
}

func TestWriteCoreNotifiesPollers(t *testing.T) {
	_, h := newHost()
	var seen sim.Time
	h.Chip().Launch(0, "poller", func(c *ecore.Core) {
		c.WaitLocal32GE(0x600, 1)
		seen = c.Now()
	})
	err := h.Run(func(hp *Proc) {
		hp.Sim().Wait(100 * sim.Cycle)
		buf := []byte{1, 0, 0, 0}
		hp.WriteCore(0, 0x600, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen == 0 {
		t.Fatal("poller never woke")
	}
	_ = mem.Addr(0)
}
