// Package host models the Zynq's ARM Cortex-A9 side of the system: the
// program-structure steps of the paper's §III (create workgroup, load the
// device image, start the cores, exchange data through core memory or
// shared DRAM, collect results).
//
// The host reaches core SRAM through the same eLink the cores use for
// off-chip traffic, at the observed effective rate; it reaches the shared
// DRAM window directly through the Zynq memory controller, much faster.
package host

import (
	"encoding/binary"
	"math"

	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

// Transfer-rate constants for host-side data movement.
const (
	// DownBytePeriod: host writes into core SRAM via the eLink write
	// channel (e_write): 150 MB/s effective.
	DownBytePeriod = noc.HostBytePeriod
	// UpBytePeriod: host reads core SRAM back (e_read): same effective rate.
	UpBytePeriod = noc.HostBytePeriod
	// DRAMBytePeriod: host access to the shared window is a plain ARM
	// memcpy into its own DRAM: ~1 GB/s (3 units per byte).
	DRAMBytePeriod sim.Time = 3
	// LoadImageOverhead: fixed per-core cost of resetting an eCore and
	// starting its program, on top of moving the image bytes.
	LoadImageOverhead = 50 * sim.Microsecond
)

// Host is the ARM-side controller.
type Host struct {
	chip *ecore.Chip
	down *sim.Resource // host -> chip eLink direction
	up   *sim.Resource // chip -> host eLink direction
}

// New creates a host attached to the chip.
func New(chip *ecore.Chip) *Host {
	return &Host{
		chip: chip,
		down: sim.NewResource("elink-host-down"),
		up:   sim.NewResource("elink-host-up"),
	}
}

// Chip returns the attached device.
func (h *Host) Chip() *ecore.Chip { return h.chip }

// Reset frees both host-side eLink directions and clears their
// statistics, matching a just-built host.
func (h *Host) Reset() {
	h.down.Reset()
	h.up.Reset()
}

// Spawn starts the host program as a simulation process.
func (h *Host) Spawn(name string, fn func(hp *Proc)) *sim.Proc {
	return h.chip.Engine().Spawn(name, func(p *sim.Proc) {
		fn(&Proc{h: h, p: p})
	})
}

// Run spawns the host program and drives the simulation to completion.
func (h *Host) Run(fn func(hp *Proc)) error {
	h.Spawn("host", fn)
	return h.chip.Engine().Run()
}

// Proc is the host program's execution context.
type Proc struct {
	h *Host
	p *sim.Proc
}

// Sim returns the underlying simulation process.
func (hp *Proc) Sim() *sim.Proc { return hp.p }

// Now returns the host's virtual time.
func (hp *Proc) Now() sim.Time { return hp.p.Now() }

// Chip returns the device.
func (hp *Proc) Chip() *ecore.Chip { return hp.h.chip }

// WriteCore copies data into core's SRAM at off through the eLink
// (e_write), blocking for the transfer time. On a sharded board the
// deposit and the arrival notification run in the core's shard, as an
// event at the completion time; the host still resumes at that same
// time, and the deposit is canonically ordered before anything the host
// does next.
func (hp *Proc) WriteCore(core int, off mem.Addr, data []byte) {
	_, end := hp.h.down.Use(hp.p.Now(), sim.Time(len(data))*DownBytePeriod)
	fab := hp.h.chip.Fabric()
	sh := fab.CoreShard(core)
	if sh != hp.p.Shard() {
		hp.p.Shard().Send(sh, end, func() {
			copy(fab.SRAMs[core].Bytes(off, len(data)), data)
			fab.Notify(core)
		})
		hp.p.WaitUntil(end)
		return
	}
	hp.p.WaitUntil(end)
	copy(fab.SRAMs[core].Bytes(off, len(data)), data)
	fab.Notify(core)
}

// ReadCore copies n bytes out of core's SRAM at off (e_read).
func (hp *Proc) ReadCore(core int, off mem.Addr, n int) []byte {
	_, end := hp.h.up.Use(hp.p.Now(), sim.Time(n)*UpBytePeriod)
	hp.p.WaitUntil(end)
	return append([]byte(nil), hp.h.chip.Fabric().SRAMs[core].Bytes(off, n)...)
}

// WriteCoreF32 writes a float slice into core SRAM.
func (hp *Proc) WriteCoreF32(core int, off mem.Addr, vals []float32) {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		putF32(buf[4*i:], v)
	}
	hp.WriteCore(core, off, buf)
}

// ReadCoreF32 reads n floats from core SRAM.
func (hp *Proc) ReadCoreF32(core int, off mem.Addr, n int) []float32 {
	raw := hp.ReadCore(core, off, 4*n)
	out := make([]float32, n)
	for i := range out {
		out[i] = getF32(raw[4*i:])
	}
	return out
}

// WriteDRAM stages data into the shared window at off.
func (hp *Proc) WriteDRAM(off mem.Addr, data []byte) {
	hp.p.Wait(sim.Time(len(data)) * DRAMBytePeriod)
	copy(hp.h.chip.DRAM().Bytes(off, len(data)), data)
}

// ReadDRAM reads n bytes from the shared window.
func (hp *Proc) ReadDRAM(off mem.Addr, n int) []byte {
	hp.p.Wait(sim.Time(n) * DRAMBytePeriod)
	return append([]byte(nil), hp.h.chip.DRAM().Bytes(off, n)...)
}

// WriteDRAMF32 stages floats into shared memory.
func (hp *Proc) WriteDRAMF32(off mem.Addr, vals []float32) {
	buf := make([]byte, 4*len(vals))
	for i, v := range vals {
		putF32(buf[4*i:], v)
	}
	hp.WriteDRAM(off, buf)
}

// ReadDRAMF32 reads n floats from shared memory.
func (hp *Proc) ReadDRAMF32(off mem.Addr, n int) []float32 {
	raw := hp.ReadDRAM(off, 4*n)
	out := make([]float32, n)
	for i := range out {
		out[i] = getF32(raw[4*i:])
	}
	return out
}

// LoadImage models resetting cores and loading a device executable of
// imageBytes onto each of them (§III steps 1-2).
func (hp *Proc) LoadImage(cores []int, imageBytes int) {
	for range cores {
		_, end := hp.h.down.Use(hp.p.Now(), sim.Time(imageBytes)*DownBytePeriod)
		hp.p.WaitUntil(end)
		hp.p.Wait(LoadImageOverhead)
	}
}

// Join blocks until all the given device processes have finished
// (§III step 5: "once the execution is complete, the host is signalled").
func (hp *Proc) Join(procs []*sim.Proc) {
	for _, p := range procs {
		hp.p.Join(p)
	}
}

// Float marshalling helpers (little-endian, as the device lays memory out).

func putF32(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}

func getF32(b []byte) float32 {
	return math.Float32frombits(binary.LittleEndian.Uint32(b))
}
