package isa

import (
	"strings"
	"testing"
)

func TestValidateAcceptsBuiltSchedules(t *testing.T) {
	for name, prog := range map[string][]Op{
		"stencil-body":     StencilLoopBody(),
		"stencil-prologue": StencilPrologue(),
		"stencil-naive":    StencilNaiveBody(),
		"matmul-32":        MatmulRowBody(32),
		"matmul-8x16":      MatmulRowBodyNK(8, 16),
		"matmul-naive":     MatmulNaiveRowBody(24),
	} {
		if err := Validate(prog); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateRejectsBadOps(t *testing.T) {
	cases := map[string][]Op{
		"dst-oob":    {Op{Kind: IALU, Dst: 64}},
		"src-oob":    {Op{Kind: FMADD, Dst: 8, Src: []Reg{64, 2, 8}}},
		"pair-load":  {Load64(63)},
		"pair-store": {Store64(63)},
	}
	for name, prog := range cases {
		if err := Validate(prog); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDisassembleCoversAllKinds(t *testing.T) {
	prog := []Op{
		Fmadd(32, 2, 16),
		{Kind: FMUL, Dst: 33, Src: []Reg{2, 16}},
		{Kind: FADD, Dst: 34, Src: []Reg{2, 16}},
		Iadd(0, 1), Imov(5),
		Load32(16), Load64(18),
		Store32(32), Store64(34),
		Branch(),
		{Kind: NOP},
	}
	out := Disassemble(prog)
	for _, want := range []string{"fmadd", "fmul", "fadd", "add", "mov", "ldr", "ldrd", "str", "strd", "bne", "nop"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly misses %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != len(prog) {
		t.Errorf("%d lines for %d ops", lines, len(prog))
	}
}

func TestProfileFindsNoStallsInTunedStencil(t *testing.T) {
	// The whole point of the paper's schedule: zero stalls in steady state.
	events := Profile(StencilLoopBody(), 2)
	if len(events) != 0 {
		t.Fatalf("tuned stencil body stalls %d times in steady state; first: %+v", len(events), events[0])
	}
}

func TestProfileFindsStallsInNaive(t *testing.T) {
	events := Profile(StencilNaiveBody(), 2)
	if len(events) == 0 {
		t.Fatal("naive body should stall (single accumulator chain)")
	}
	// The stalls must be on the dependent FMADDs.
	for _, e := range events {
		if e.Op.Kind != FMADD && e.Op.Kind != STORE32 {
			t.Fatalf("unexpected stall on %v", e.Op)
		}
	}
}

func TestIssueEfficiencyOrdering(t *testing.T) {
	tuned := IssueEfficiency(StencilLoopBody(), 8)
	naive := IssueEfficiency(StencilNaiveBody(), 64)
	if tuned < 0.99 {
		t.Fatalf("tuned issue efficiency %.3f, want ~1.0", tuned)
	}
	if naive >= tuned {
		t.Fatalf("naive efficiency %.3f should trail tuned %.3f", naive, tuned)
	}
	if IssueEfficiency(nil, 0) != 0 {
		t.Fatal("empty body should report 0")
	}
}
