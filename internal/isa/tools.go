package isa

import (
	"fmt"
	"strings"
)

// Validate checks a schedule for structural errors: register numbers out
// of range, register-pair operations running off the end of the file, and
// loads/stores of impossible widths. Kernels validate their generated
// schedules once at construction, so builder bugs fail loudly rather than
// silently mis-costing.
func Validate(prog []Op) error {
	for i, o := range prog {
		if o.writesDst() && int(o.Dst) >= NumRegs {
			return fmt.Errorf("isa: op %d (%v) writes r%d, beyond the register file", i, o, o.Dst)
		}
		for _, r := range o.Src {
			if int(r) >= NumRegs {
				return fmt.Errorf("isa: op %d (%v) reads r%d, beyond the register file", i, o, r)
			}
		}
		if o.Kind == LOAD64 && int(o.Dst)+1 >= NumRegs {
			return fmt.Errorf("isa: op %d (%v) loads a pair ending beyond r63", i, o)
		}
		if o.Kind == STORE64 && len(o.Src) > 0 && int(o.Src[0])+1 >= NumRegs {
			return fmt.Errorf("isa: op %d (%v) stores a pair ending beyond r63", i, o)
		}
	}
	return nil
}

// Disassemble renders a schedule as assembly-like text, one op per line,
// for inspection and documentation.
func Disassemble(prog []Op) string {
	var b strings.Builder
	for i, o := range prog {
		switch o.Kind {
		case FMADD:
			fmt.Fprintf(&b, "%4d  fmadd r%d, r%d, r%d\n", i, o.Dst, o.Src[0], o.Src[1])
		case FMUL:
			fmt.Fprintf(&b, "%4d  fmul  r%d, r%d, r%d\n", i, o.Dst, o.Src[0], o.Src[1])
		case FADD:
			fmt.Fprintf(&b, "%4d  fadd  r%d, r%d, r%d\n", i, o.Dst, o.Src[0], o.Src[1])
		case IALU:
			if len(o.Src) > 0 {
				fmt.Fprintf(&b, "%4d  add   r%d, r%d\n", i, o.Dst, o.Src[0])
			} else {
				fmt.Fprintf(&b, "%4d  mov   r%d, 0\n", i, o.Dst)
			}
		case LOAD32:
			fmt.Fprintf(&b, "%4d  ldr   r%d, [..]\n", i, o.Dst)
		case LOAD64:
			fmt.Fprintf(&b, "%4d  ldrd  r%d:r%d, [..]\n", i, o.Dst, o.Dst+1)
		case STORE32:
			fmt.Fprintf(&b, "%4d  str   r%d, [..]\n", i, o.Src[0])
		case STORE64:
			fmt.Fprintf(&b, "%4d  strd  r%d:r%d, [..]\n", i, o.Src[0], o.Src[0]+1)
		case BRANCH:
			fmt.Fprintf(&b, "%4d  bne   loop\n", i)
		case NOP:
			fmt.Fprintf(&b, "%4d  nop\n", i)
		}
	}
	return b.String()
}

// StallEvent records one pipeline stall while profiling a schedule.
type StallEvent struct {
	OpIndex int
	Op      Op
	Cycles  uint64
}

// Profile runs a schedule (after warming the pipeline with warmup
// repetitions) and reports where it stalls, the tool used to tune the
// hand-written kernels: an empty result means the schedule sustains
// full issue.
func Profile(prog []Op, warmup int) []StallEvent {
	p := NewPipeline()
	for w := 0; w < warmup; w++ {
		p.Run(prog)
	}
	var events []StallEvent
	i := 0
	for i < len(prog) {
		op := prog[i]
		if op.Kind == BRANCH {
			p.cycle += BranchPenalty
			p.issued++
			i++
			continue
		}
		stall := uint64(0)
		for !p.ready(op) {
			p.cycle++
			stall++
		}
		if stall > 0 {
			events = append(events, StallEvent{OpIndex: i, Op: op, Cycles: stall})
		}
		p.retire(op)
		if i+1 < len(prog) {
			nxt := prog[i+1]
			if nxt.Kind != BRANCH && nxt.Kind.FPU() != op.Kind.FPU() && p.ready(nxt) {
				p.retire(nxt)
				i++
			}
		}
		p.cycle++
		i++
	}
	return events
}

// IssueEfficiency reports the fraction of cycles that issued at least one
// instruction over iters steady-state iterations of body.
func IssueEfficiency(body []Op, iters uint64) float64 {
	if iters == 0 {
		return 0
	}
	p := NewPipeline()
	for k := uint64(0); k < iters; k++ {
		p.Run(body)
	}
	if p.Cycle() == 0 {
		return 0
	}
	return 1 - float64(p.Stalls())/float64(p.Cycle())
}
