package isa

// Pipeline is the cycle-accurate issue model of one eCore.
//
// Issue rules (paper §VI plus the Epiphany architecture reference):
//   - In-order, at most two instructions per cycle: one FPU-lane and one
//     IALU-lane, in either program order within the pair window.
//   - An instruction issues only when every register it reads is ready;
//     FPU results take FMADDLatency cycles, loads LoadLatency.
//   - A blocked instruction blocks everything behind it (no reordering
//     beyond the 2-wide pair window).
//   - A taken BRANCH costs BranchPenalty cycles.
//
// The scoreboard (readyAt) persists across Run calls so loop iterations
// see each other's in-flight results, exactly as consecutive iterations
// do on hardware.
type Pipeline struct {
	readyAt [NumRegs]uint64
	cycle   uint64
	flops   uint64
	issued  uint64
	stalls  uint64
}

// NewPipeline returns a pipeline at cycle 0 with all registers ready.
func NewPipeline() *Pipeline { return &Pipeline{} }

// Cycle returns the current cycle count.
func (p *Pipeline) Cycle() uint64 { return p.cycle }

// FlopCount returns the floating-point operations performed so far.
func (p *Pipeline) FlopCount() uint64 { return p.flops }

// Issued returns the number of instructions issued so far.
func (p *Pipeline) Issued() uint64 { return p.issued }

// Stalls returns the cycles in which nothing issued due to hazards.
func (p *Pipeline) Stalls() uint64 { return p.stalls }

// ready reports whether op's sources are available at the current cycle.
func (p *Pipeline) ready(op Op) bool {
	for _, r := range op.Src {
		if p.readyAt[r] > p.cycle {
			return false
		}
	}
	// 64-bit stores read a register pair.
	if op.Kind == STORE64 && len(op.Src) > 0 {
		if r := op.Src[0] + 1; int(r) < NumRegs && p.readyAt[r] > p.cycle {
			return false
		}
	}
	return true
}

// retire updates the scoreboard for an issued op.
func (p *Pipeline) retire(op Op) {
	p.issued++
	p.flops += op.Kind.Flops()
	if op.writesDst() {
		p.readyAt[op.Dst] = p.cycle + op.latency()
		if op.Kind == LOAD64 && int(op.Dst)+1 < NumRegs {
			p.readyAt[op.Dst+1] = p.cycle + op.latency()
		}
	}
}

// Run issues prog to completion and returns the cycles it consumed.
func (p *Pipeline) Run(prog []Op) uint64 {
	start := p.cycle
	i := 0
	for i < len(prog) {
		op := prog[i]
		if op.Kind == BRANCH {
			p.cycle += BranchPenalty
			p.issued++
			i++
			continue
		}
		if !p.ready(op) {
			p.cycle++
			p.stalls++
			continue
		}
		p.retire(op)
		// Try to dual-issue the next instruction if it uses the other
		// lane and is itself ready (and is not a branch).
		if i+1 < len(prog) {
			nxt := prog[i+1]
			if nxt.Kind != BRANCH && nxt.Kind.FPU() != op.Kind.FPU() && p.ready(nxt) {
				p.retire(nxt)
				i++
			}
		}
		p.cycle++
		i++
	}
	return p.cycle - start
}

// LoopCycles simulates a loop executing body iters times (with the
// scoreboard carried across iterations) and returns total cycles. For
// large iteration counts it simulates a few iterations to find the
// steady-state cost and extrapolates, which is exact for the periodic
// schedules this package builds.
func LoopCycles(body []Op, iters uint64) uint64 {
	if iters == 0 {
		return 0
	}
	p := NewPipeline()
	const probe = 4
	if iters <= probe {
		for k := uint64(0); k < iters; k++ {
			p.Run(body)
		}
		return p.Cycle()
	}
	var marks [probe]uint64
	for k := 0; k < probe; k++ {
		p.Run(body)
		marks[k] = p.Cycle()
	}
	// Steady state: the per-iteration cost once the pipeline warmed up.
	steady := marks[probe-1] - marks[probe-2]
	return marks[probe-1] + (iters-probe)*steady
}

// LoopFlops returns the floating-point work of iters iterations of body.
func LoopFlops(body []Op, iters uint64) uint64 { return Flops(body) * iters }
