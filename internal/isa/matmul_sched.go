package isa

import "fmt"

// Matmul schedule builder, following §VII of the paper.
//
// Register plan (the paper's):
//   - r32-r63: up to 32 accumulators holding one row of the product C.
//   - r16-r23: eight-element window of the current row of B, re-filled by
//     doubleword loads four elements ahead of consumption.
//   - r11, r12, r14, r15: pre-loaded elements of A ("by pre-loading a few
//     elements of matrix A and B, after each has been used the next
//     unprocessed element is loaded into the freed registers").
//
// One macro multiplies a single element of A with all n elements of the
// corresponding row of B, accumulating into the n C-row registers: for
// n = 32 that is 32 FMADDs with ~18 interleaved integer-lane
// instructions, "a total of 50 instructions executing 64 Flops in 32
// cycles". A row of C takes n macros followed by an epilogue that stores
// the finished row with doubleword stores, clears the accumulators and
// loops.

// MatmulMaxN is the largest per-core block edge the register file
// supports (32 accumulators in r32-r63), which is also the paper's limit.
const MatmulMaxN = 32

const (
	matmulAccBase Reg = 32
	matmulBBase   Reg = 16
)

// matmulAElems are the rotating A-element registers.
var matmulAElems = [4]Reg{11, 12, 14, 15}

// MatmulMacro emits the multiply of one A element into an n-wide C row.
// nextA is the register that receives the following macro's A element
// ("after each has been used the next unprocessed element is loaded into
// the freed registers").
func MatmulMacro(n int, aReg, nextA Reg) []Op {
	if n < 1 || n > MatmulMaxN {
		panic(fmt.Sprintf("isa: matmul block edge %d out of range 1..%d", n, MatmulMaxN))
	}
	// Integer-lane companions indexed by FMADD slot. Every even slot j
	// carries the doubleword load of B-stream elements j+4 and j+5 into
	// the 8-register window (wrapping into the next macro's row), staying
	// exactly four elements ahead of consumption: loaded at slot j, ready
	// at j+2, consumed at j+4 and j+5. Odd slots carry the next A-element
	// load and pointer arithmetic.
	comp := make([]*Op, n)
	put := func(slot int, op Op) {
		if slot < n {
			comp[slot] = &op
		}
	}
	for j := 0; j < n; j += 2 {
		put(j, Load64(matmulBBase+Reg((j+4)%8)))
	}
	put(1, Load32(nextA))
	put(3, Iadd(0, 0))
	put(5, Iadd(1, 1))

	prog := make([]Op, 0, 2*n)
	for j := 0; j < n; j++ {
		prog = append(prog, Fmadd(matmulAccBase+Reg(j), aReg, matmulBBase+Reg(j%8)))
		if comp[j] != nil {
			prog = append(prog, *comp[j])
		}
	}
	return prog
}

// MatmulRowBody emits the loop body computing one row of C for an n x n
// block: n macros (cycling through the four A-element registers) plus the
// row epilogue (store the row, clear the accumulators, advance pointers,
// branch back).
func MatmulRowBody(n int) []Op { return MatmulRowBodyNK(n, n) }

// MatmulRowBodyNK is the rectangular generalization used by the scaling
// experiments: one row of a C(m x k) += A(m x n) * B(n x k) block
// multiply, i.e. n macros of k FMADDs each, then the k-wide row epilogue.
func MatmulRowBodyNK(n, k int) []Op {
	var prog []Op
	for i := 0; i < n; i++ {
		prog = append(prog, MatmulMacro(k, matmulAElems[i%4], matmulAElems[(i+1)%4])...)
	}
	for j := 0; j+1 < k; j += 2 {
		prog = append(prog, Store64(matmulAccBase+Reg(j)))
	}
	if k%2 == 1 {
		prog = append(prog, Store32(matmulAccBase+Reg(k-1)))
	}
	for j := 0; j < k; j++ {
		prog = append(prog, Imov(matmulAccBase+Reg(j)))
	}
	prog = append(prog, Iadd(0, 0), Iadd(1, 1), Iadd(2, 2), Iadd(3, 3))
	prog = append(prog, Branch())
	return prog
}

// MatmulPrologue emits the per-block setup: pre-loading the first A
// elements and B window, clearing the accumulators, pointer setup.
func MatmulPrologue(n int) []Op {
	var prog []Op
	for _, a := range matmulAElems {
		prog = append(prog, Load32(a))
	}
	for j := 0; j < 4; j++ {
		prog = append(prog, Load64(matmulBBase+Reg(2*j)))
	}
	for j := 0; j < n; j++ {
		prog = append(prog, Imov(matmulAccBase+Reg(j)))
	}
	for i := 0; i < 8; i++ {
		prog = append(prog, Iadd(0, 0))
	}
	return prog
}

// MatmulNaiveRowBody emits the compiler-quality version of a C row: the
// same work, but with the loads clustered ahead of the FMADD runs instead
// of interleaved, so the two lanes almost never dual-issue. This is what
// "gave only 60% of peak performance" (§VII) before the inner loop was
// hand-tuned.
func MatmulNaiveRowBody(n int) []Op { return MatmulNaiveRowBodyNK(n, n) }

// MatmulNaiveRowBodyNK is the rectangular naive-schedule variant.
func MatmulNaiveRowBodyNK(n, k int) []Op {
	var prog []Op
	for i := 0; i < n; i++ {
		a := matmulAElems[i%4]
		// Loads first (no FPU ops to pair with) ...
		prog = append(prog, Load32(a))
		for j := 0; j < k; j += 2 {
			prog = append(prog, Load64(matmulBBase+Reg((j+4)%8)))
		}
		prog = append(prog, Iadd(0, 0), Iadd(1, 1), Iadd(2, 2))
		// ... then the FMADD run.
		for j := 0; j < k; j++ {
			prog = append(prog, Fmadd(matmulAccBase+Reg(j), a, matmulBBase+Reg(j%8)))
		}
	}
	for j := 0; j+1 < k; j += 2 {
		prog = append(prog, Store64(matmulAccBase+Reg(j)))
	}
	for j := 0; j < k; j++ {
		prog = append(prog, Imov(matmulAccBase+Reg(j)))
	}
	prog = append(prog, Iadd(0, 0), Iadd(1, 1), Iadd(2, 2), Iadd(3, 3))
	prog = append(prog, Branch())
	return prog
}
