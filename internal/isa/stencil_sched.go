package isa

// Stencil schedule builder, following §VI of the paper exactly.
//
// Register plan (the paper's):
//   - r2-r6:   the five stencil coefficients w1..w5, loaded once.
//   - r8-r12:  accumulator set A (five grid points' partial sums).
//   - r15-r19: accumulator set B (the double-buffered second set).
//   - r20-r41: row buffer X (22 registers: a 20-wide stripe plus the two
//     boundary values).
//   - r42-r63: row buffer Y.
//
// One macro performs the 25 FMADDs for five consecutive grid points,
// ordered point-major within each coefficient (T for all five points,
// then L, C, R, B) so each accumulator is touched exactly every five
// cycles - precisely hiding the 5-cycle FMADD latency. Fifteen
// integer-lane instructions ride in the spare slots: saving the previous
// macro's five results, clearing those accumulators for re-use, loading
// the next row's grid data over the consumed Top values, and bumping
// pointers. Two alternating macros (set A accumulating while set B
// drains, then vice versa) make the steady state self-sustaining.

// Stencil register assignments (exported for tests and documentation).
var (
	StencilCoefs = [5]Reg{2, 3, 4, 5, 6}
	StencilAccA  = [5]Reg{8, 9, 10, 11, 12}
	StencilAccB  = [5]Reg{15, 16, 17, 18, 19}
)

const (
	stencilBufX Reg = 20 // r20-r41
	stencilBufY Reg = 42 // r42-r63
	// StencilStripeWidth is the row stripe length the paper settled on:
	// 20 points, "a multiple of 5", chosen from the register budget.
	StencilStripeWidth = 20
)

// stencilMacro emits the 25-FMADD/15-IALU macro for five grid points.
//
// acc accumulates this macro's five points; other is the previous macro's
// set being stored and cleared. top is the base register holding the five
// Top values (to be overwritten by Bottom-row loads), mid the base of the
// seven middle-row values (Left/Centre/Right with overlap). nLoads is how
// many 64-bit loads of next-row data to fold in (stripes need an average
// of 2.5 per macro, so callers alternate 3 and 2).
func stencilMacro(acc, other [5]Reg, top, mid Reg, nLoads int) []Op {
	prog := make([]Op, 0, 40)
	// Companion IALU ops for slots 5..19, in the order they pair with
	// the FMADD stream.
	var ialu []Op
	for k := 0; k < 5; k++ {
		ialu = append(ialu, Store32(other[k])) // slots 5-9: drain previous
	}
	for k := 0; k < 5; k++ {
		ialu = append(ialu, Imov(other[k])) // slots 10-14: clear previous
	}
	for l := 0; l < nLoads; l++ { // slots 15+: fetch next row over Top
		ialu = append(ialu, Load64(top+Reg(2*l)))
	}
	for len(ialu) < 15 { // remaining slots: pointer bumps
		ialu = append(ialu, Iadd(0, 0))
	}

	emit := func(slot int, f Op) {
		prog = append(prog, f)
		if slot >= 5 && slot < 20 { // slots with IALU companions
			prog = append(prog, ialu[slot-5])
		}
	}
	w := StencilCoefs
	slot := 0
	// T pass reads top[k]; L/C/R passes read mid[k], mid[k+1], mid[k+2];
	// B pass reads the values just loaded over top[k].
	passes := []struct {
		coef Reg
		base Reg
		off  int
	}{
		{w[0], top, 0}, {w[1], mid, 0}, {w[2], mid, 1}, {w[3], mid, 2}, {w[4], top, 0},
	}
	for _, pass := range passes {
		for k := 0; k < 5; k++ {
			emit(slot, Fmadd(acc[k], pass.coef, pass.base+Reg(pass.off+k)))
			slot++
		}
	}
	return prog
}

// StencilLoopBody emits the steady-state loop body: two rows of a
// 20-point stripe = eight macros (four A/B pairs) = 200 FMADDs, closed by
// the counter decrement and backward branch. Matches the paper's "one
// unrolled loop of 40 x 5 = 200 FMADD instructions ... approximately 1300
// bytes" with a "4 or 5 cycle loop penalty".
func StencilLoopBody() []Op {
	var prog []Op
	loads := [8]int{3, 2, 3, 2, 3, 2, 3, 2} // average 2.5 per macro
	for j := 0; j < 4; j++ {                // row 1: buffer X holds Top, Y holds middle
		a, b := StencilAccA, StencilAccB
		if j%2 == 1 {
			a, b = b, a
		}
		prog = append(prog, stencilMacro(a, b, stencilBufX+Reg(5*j), stencilBufY+Reg(5*j), loads[j])...)
	}
	for j := 0; j < 4; j++ { // row 2: roles swapped
		a, b := StencilAccA, StencilAccB
		if j%2 == 1 {
			a, b = b, a
		}
		prog = append(prog, stencilMacro(a, b, stencilBufY+Reg(5*j), stencilBufX+Reg(5*j), loads[4+j])...)
	}
	prog = append(prog, Iadd(7, 7)) // decrement row-pair counter (pairs with last FMADD)
	prog = append(prog, Branch())
	return prog
}

// StencilPrologue emits the stripe setup: pre-loading the two register
// row buffers (22 doubleword loads), loading the five coefficients,
// clearing both accumulator sets and setting up pointers.
func StencilPrologue() []Op {
	var prog []Op
	for i := 0; i < 11; i++ {
		prog = append(prog, Load64(stencilBufX+Reg(2*i)))
	}
	for i := 0; i < 11; i++ {
		prog = append(prog, Load64(stencilBufY+Reg(2*i)))
	}
	for _, c := range StencilCoefs {
		prog = append(prog, Load32(c))
	}
	for _, r := range StencilAccA {
		prog = append(prog, Imov(r))
	}
	for _, r := range StencilAccB {
		prog = append(prog, Imov(r))
	}
	for i := 0; i < 6; i++ {
		prog = append(prog, Iadd(0, 0)) // pointer setup
	}
	return prog
}

// StencilNaiveBody emits what the immature C compiler produced for one
// grid point (paper: "the relatively immature compiler was only able to
// achieve a small fraction of peak"): neighbours are reloaded every
// point, all five FMADDs feed a single accumulator (so each stalls on the
// previous one's 5-cycle latency), and the result is stored immediately.
func StencilNaiveBody() []Op {
	const acc Reg = 8
	w := StencilCoefs
	return []Op{
		Load32(20), Load32(21), Load32(22), // reload neighbours
		Imov(acc),
		Fmadd(acc, w[0], 20),
		Fmadd(acc, w[1], 21),
		Fmadd(acc, w[2], 22),
		Fmadd(acc, w[3], 21),
		Fmadd(acc, w[4], 20),
		Store32(acc),
		Iadd(0, 0), Iadd(1, 1), // pointer bumps
	}
}
