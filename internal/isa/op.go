// Package isa models the timing of eCore instruction schedules.
//
// The eCore is a dual-issue, in-order RISC: per clock cycle it can issue
// one floating-point instruction and one integer/load-store instruction.
// The paper's §VI and §VII performance engineering is entirely about
// arranging instructions so that (a) every cycle issues an FMADD, (b) the
// 5-cycle FMADD result latency is hidden by touching each accumulator at
// most every 5 cycles, and (c) loads/stores ride along in the integer
// lane's "spare slots".
//
// This package provides the instruction vocabulary, a cycle-accurate
// issue model (Pipeline), and builders that emit the exact schedules the
// paper describes: the 5x5-FMADD stencil macro pair and the 32-FMADD
// matmul macro, plus "naive" variants that mimic what the immature e-gcc
// compiler produced, reproducing the C-vs-assembly gap the paper reports.
//
// The package is timing-only: kernels do their arithmetic functionally in
// Go and charge the simulated time this package computes.
package isa

import "fmt"

// Reg names one of the eCore's 64 general registers, usable as float32,
// int32 or pointer. r14 is the link register; the SP is conventionally
// r13 in this model (the schedules below never touch either).
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 64

// Kind classifies an instruction by issue lane and latency behaviour.
type Kind uint8

// Instruction kinds. FPU-lane kinds and IALU-lane kinds can dual-issue
// with each other; two instructions of the same lane cannot.
const (
	// FMADD rd += ra*rb: the workhorse, 2 flops, result usable after
	// FMADDLatency cycles.
	FMADD Kind = iota
	// FMUL rd = ra*rb: 1 flop, same latency as FMADD.
	FMUL
	// FADD rd = ra+rb: 1 flop, same latency as FMADD.
	FADD
	// IALU is a 1-cycle integer op (add, mov, clear) writing Dst.
	IALU
	// LOAD32/LOAD64 load 4/8 bytes from local memory; the destination
	// (pair) is usable after LoadLatency cycles.
	LOAD32
	LOAD64
	// STORE32/STORE64 store 4/8 bytes; they read their source register
	// (pair), so a pending FMADD result stalls them (the paper's "cannot
	// be used ... as the source of a store instruction for at least 5
	// cycles" rule).
	STORE32
	STORE64
	// BRANCH is a taken conditional branch closing a loop: 3 cycles.
	BRANCH
	// NOP occupies an issue slot in the IALU lane.
	NOP
)

// Pipeline latency constants, from the paper's measurements (§VI).
const (
	// FMADDLatency: an FMADD result cannot feed the FPU or a store for 5
	// cycles without stalling.
	FMADDLatency = 5
	// LoadLatency: cycles before a loaded value is usable.
	LoadLatency = 2
	// BranchPenalty: "branching costs 3 cycles".
	BranchPenalty = 3
)

func (k Kind) String() string {
	return [...]string{"fmadd", "fmul", "fadd", "ialu", "load32", "load64",
		"store32", "store64", "branch", "nop"}[k]
}

// FPU reports whether the kind issues in the floating-point lane.
func (k Kind) FPU() bool { return k <= FADD }

// Flops returns the floating-point operations one instance performs.
func (k Kind) Flops() uint64 {
	switch k {
	case FMADD:
		return 2
	case FMUL, FADD:
		return 1
	default:
		return 0
	}
}

// Op is one instruction. Registers listed in Src are read at issue; Dst
// (when WritesDst) is written with the kind's latency. A 64-bit load or
// store also touches Dst+1 / Src[0]+1; the model tracks the named
// registers only, which is sufficient because the schedules keep pairs
// together.
type Op struct {
	Kind Kind
	Dst  Reg
	Src  []Reg
}

// writesDst reports whether the kind produces a register result.
func (o Op) writesDst() bool {
	switch o.Kind {
	case FMADD, FMUL, FADD, IALU, LOAD32, LOAD64:
		return true
	default:
		return false
	}
}

// latency returns cycles from issue until Dst is usable.
func (o Op) latency() uint64 {
	switch o.Kind {
	case FMADD, FMUL, FADD:
		return FMADDLatency
	case LOAD32, LOAD64:
		return LoadLatency
	default:
		return 1
	}
}

func (o Op) String() string {
	return fmt.Sprintf("%s r%d %v", o.Kind, o.Dst, o.Src)
}

// Fmadd builds rd += ra*rb (rd is both read and written).
func Fmadd(rd, ra, rb Reg) Op { return Op{Kind: FMADD, Dst: rd, Src: []Reg{ra, rb, rd}} }

// Imov builds an integer-lane register move/clear.
func Imov(rd Reg) Op { return Op{Kind: IALU, Dst: rd} }

// Iadd builds an integer-lane op reading ra.
func Iadd(rd, ra Reg) Op { return Op{Kind: IALU, Dst: rd, Src: []Reg{ra}} }

// Load32 builds a 4-byte load into rd (address register untracked).
func Load32(rd Reg) Op { return Op{Kind: LOAD32, Dst: rd} }

// Load64 builds an 8-byte load into the pair rd,rd+1.
func Load64(rd Reg) Op { return Op{Kind: LOAD64, Dst: rd} }

// Store32 builds a 4-byte store reading rs.
func Store32(rs Reg) Op { return Op{Kind: STORE32, Src: []Reg{rs}} }

// Store64 builds an 8-byte store reading the pair rs,rs+1.
func Store64(rs Reg) Op { return Op{Kind: STORE64, Src: []Reg{rs}} }

// Branch builds the loop-closing branch.
func Branch() Op { return Op{Kind: BRANCH} }

// Flops sums the floating-point work in a schedule.
func Flops(prog []Op) uint64 {
	var n uint64
	for _, o := range prog {
		n += o.Kind.Flops()
	}
	return n
}

// CodeBytes estimates the instruction memory footprint of a schedule,
// assuming 32-bit encodings for FPU/memory/branch instructions and an
// even mix elsewhere (the real ISA has 16-bit compressed forms for common
// integer ops). Used for the Layout code-size accounting.
func CodeBytes(prog []Op) int {
	n := 0
	for _, o := range prog {
		if o.Kind == IALU || o.Kind == NOP {
			n += 2
		} else {
			n += 4
		}
	}
	return n
}
