package isa

import (
	"testing"
	"testing/quick"
)

func countKind(prog []Op, k Kind) int {
	n := 0
	for _, o := range prog {
		if o.Kind == k {
			n++
		}
	}
	return n
}

func TestOpHelpers(t *testing.T) {
	f := Fmadd(8, 2, 20)
	if f.Kind != FMADD || f.Dst != 8 || len(f.Src) != 3 || f.Src[2] != 8 {
		t.Fatalf("Fmadd = %+v; accumulator must appear in Src", f)
	}
	if FMADD.Flops() != 2 || FMUL.Flops() != 1 || IALU.Flops() != 0 {
		t.Fatal("flop counts wrong")
	}
	if !FMADD.FPU() || IALU.FPU() || LOAD64.FPU() || BRANCH.FPU() {
		t.Fatal("lane classification wrong")
	}
	if s := f.String(); s == "" {
		t.Fatal("empty op string")
	}
}

func TestPipelineDualIssue(t *testing.T) {
	// FMADD + IALU pairs issue in one cycle each.
	p := NewPipeline()
	prog := []Op{
		Fmadd(32, 2, 16), Iadd(0, 0),
		Fmadd(33, 2, 17), Iadd(1, 1),
		Fmadd(34, 2, 18), Iadd(2, 2),
	}
	if c := p.Run(prog); c != 3 {
		t.Fatalf("3 pairs took %d cycles, want 3", c)
	}
	if p.Issued() != 6 {
		t.Fatalf("issued %d, want 6", p.Issued())
	}
}

func TestPipelineSameLaneNoPair(t *testing.T) {
	p := NewPipeline()
	prog := []Op{Iadd(0, 0), Iadd(1, 1), Iadd(2, 2)}
	if c := p.Run(prog); c != 3 {
		t.Fatalf("3 IALU ops took %d cycles, want 3 (no same-lane dual issue)", c)
	}
}

func TestPipelineFMADDLatencyStall(t *testing.T) {
	// Back-to-back FMADDs into the same accumulator stall 4 cycles each.
	p := NewPipeline()
	prog := []Op{Fmadd(8, 2, 16), Fmadd(8, 3, 17)}
	if c := p.Run(prog); c != 1+FMADDLatency {
		t.Fatalf("dependent FMADD pair took %d cycles, want %d", c, 1+FMADDLatency)
	}
	if p.Stalls() != FMADDLatency-1 {
		t.Fatalf("stalls = %d, want %d", p.Stalls(), FMADDLatency-1)
	}
}

func TestPipelineRotatingAccumulatorsNoStall(t *testing.T) {
	// The paper's trick: touch each accumulator every 5 cycles.
	var prog []Op
	for pass := 0; pass < 5; pass++ {
		for k := 0; k < 5; k++ {
			prog = append(prog, Fmadd(Reg(8+k), 2, Reg(20+k)))
		}
	}
	p := NewPipeline()
	if c := p.Run(prog); c != 25 {
		t.Fatalf("25 rotating FMADDs took %d cycles, want 25 (stall-free)", c)
	}
	if p.Stalls() != 0 {
		t.Fatalf("stalls = %d, want 0", p.Stalls())
	}
}

func TestPipelineStoreWaitsForFMADD(t *testing.T) {
	p := NewPipeline()
	prog := []Op{Fmadd(8, 2, 16), Store32(8)}
	if c := p.Run(prog); c != 1+FMADDLatency {
		t.Fatalf("store-after-FMADD took %d cycles, want %d", c, 1+FMADDLatency)
	}
}

func TestPipelineStore64ReadsPair(t *testing.T) {
	// STORE64 of r8 must also wait for r9.
	p := NewPipeline()
	prog := []Op{Fmadd(9, 2, 16), Store64(8)}
	if c := p.Run(prog); c != 1+FMADDLatency {
		t.Fatalf("store64 ignored pair hazard: %d cycles", c)
	}
}

func TestPipelineLoadUseDelay(t *testing.T) {
	p := NewPipeline()
	prog := []Op{Load32(16), Fmadd(8, 2, 16)}
	if c := p.Run(prog); c != LoadLatency+1 {
		t.Fatalf("load-use took %d cycles, want %d", c, LoadLatency+1)
	}
	// Load64 makes both halves late.
	p2 := NewPipeline()
	prog2 := []Op{Load64(16), Fmadd(8, 2, 17)}
	if c := p2.Run(prog2); c != LoadLatency+1 {
		t.Fatalf("load64 pair latency not modelled: %d cycles", c)
	}
}

func TestPipelineBranchPenalty(t *testing.T) {
	p := NewPipeline()
	if c := p.Run([]Op{Iadd(0, 0), Branch()}); c != 1+BranchPenalty {
		t.Fatalf("branch loop tail took %d cycles, want %d", c, 1+BranchPenalty)
	}
}

func TestLoopCyclesMatchesExplicitSimulation(t *testing.T) {
	body := MatmulRowBody(16)
	for _, iters := range []uint64{1, 2, 3, 4, 5, 9, 17} {
		p := NewPipeline()
		for k := uint64(0); k < iters; k++ {
			p.Run(body)
		}
		if got := LoopCycles(body, iters); got != p.Cycle() {
			t.Fatalf("LoopCycles(%d) = %d, explicit = %d", iters, got, p.Cycle())
		}
	}
	if LoopCycles(body, 0) != 0 {
		t.Fatal("zero iterations should cost zero")
	}
}

func TestStencilMacroShape(t *testing.T) {
	m := stencilMacro(StencilAccA, StencilAccB, stencilBufX, stencilBufY, 3)
	if got := countKind(m, FMADD); got != 25 {
		t.Fatalf("macro has %d FMADDs, want 25", got)
	}
	nonF := len(m) - 25
	if nonF != 15 {
		t.Fatalf("macro has %d integer-lane ops, want 15 (paper: 40 instructions total)", nonF)
	}
	if got := Flops(m); got != 50 {
		t.Fatalf("macro flops = %d, want 50", got)
	}
}

func TestStencilMacroSteadyState25Cycles(t *testing.T) {
	// Alternating macro pairs must sustain 25 cycles / 50 flops each:
	// the paper's "executing in 25 clock cycles and performing 50 Flops".
	var pair []Op
	pair = append(pair, stencilMacro(StencilAccA, StencilAccB, stencilBufX, stencilBufY, 3)...)
	pair = append(pair, stencilMacro(StencilAccB, StencilAccA, stencilBufX+5, stencilBufY+5, 2)...)
	p := NewPipeline()
	p.Run(pair) // warm-up
	start := p.Cycle()
	p.Run(pair)
	if got := p.Cycle() - start; got != 50 {
		t.Fatalf("steady macro pair = %d cycles, want 50", got)
	}
}

func TestStencilLoopBody(t *testing.T) {
	body := StencilLoopBody()
	if got := countKind(body, FMADD); got != 200 {
		t.Fatalf("loop body has %d FMADDs, want 200", got)
	}
	if got := Flops(body); got != 400 {
		t.Fatalf("loop body flops = %d, want 400", got)
	}
	// Steady state: 200 FMADD cycles + 4-5 cycle loop penalty (paper:
	// "a 2 or 2.5% overhead over 200 clocks").
	c1 := LoopCycles(body, 8)
	c2 := LoopCycles(body, 9)
	steady := c2 - c1
	if steady < 203 || steady > 206 {
		t.Fatalf("steady loop iteration = %d cycles, want 203-206", steady)
	}
	// Code size ~1300 bytes (paper: "approximately 1300 bytes").
	if sz := CodeBytes(body); sz < 1100 || sz > 1500 {
		t.Fatalf("loop body code = %d bytes, want ~1300", sz)
	}
}

func TestStencilPrologueCheap(t *testing.T) {
	pro := StencilPrologue()
	p := NewPipeline()
	c := p.Run(pro)
	if c < 22 || c > 60 {
		t.Fatalf("prologue = %d cycles, want a few dozen", c)
	}
}

func TestStencilNaiveMuchSlower(t *testing.T) {
	naive := StencilNaiveBody()
	if got := Flops(naive); got != 10 {
		t.Fatalf("naive body flops = %d, want 10 (one grid point)", got)
	}
	// Tuned: 400 flops per ~204 cycles -> ~1.96 flops/cycle.
	// Naive must be below 0.6 flops/cycle ("a small fraction of peak").
	steady := LoopCycles(naive, 100) / 100
	fpc := 10.0 / float64(steady)
	if fpc > 0.6 {
		t.Fatalf("naive stencil %.2f flops/cycle, want < 0.6", fpc)
	}
}

func TestMatmulMacro32(t *testing.T) {
	m := MatmulMacro(32, matmulAElems[0], matmulAElems[1])
	if got := countKind(m, FMADD); got != 32 {
		t.Fatalf("macro FMADDs = %d, want 32", got)
	}
	nonF := len(m) - 32
	if nonF < 16 || nonF > 20 {
		t.Fatalf("macro integer ops = %d, want ~18 (paper: 50 instructions)", nonF)
	}
	if got := Flops(m); got != 64 {
		t.Fatalf("macro flops = %d, want 64", got)
	}
	// Steady state 32 cycles (paper: "executing 64 Flops in 32 cycles").
	var quad []Op
	for i := 0; i < 4; i++ {
		quad = append(quad, MatmulMacro(32, matmulAElems[i], matmulAElems[(i+1)%4])...)
	}
	p := NewPipeline()
	p.Run(quad)
	start := p.Cycle()
	p.Run(quad)
	if got := (p.Cycle() - start) / 4; got != 32 {
		t.Fatalf("steady macro = %d cycles, want 32", got)
	}
}

func TestMatmulMacroBounds(t *testing.T) {
	for _, bad := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MatmulMacro(%d) should panic", bad)
				}
			}()
			MatmulMacro(bad, 11, 12)
		}()
	}
}

func TestMatmulRowEfficiencyTableIVShape(t *testing.T) {
	// Per-row steady-state efficiency must reproduce Table IV's trend:
	// rising from ~70% at 8x8 to ~96% at 32x32. The kernel adds per-block
	// overhead on top, so the pure row numbers here sit slightly above
	// the table; the block-level assertions live in the core package.
	cases := []struct {
		n        int
		lo, hi   float64 // acceptable flops/cycle range
		monotone bool
	}{
		{8, 1.20, 1.70, true},
		{16, 1.60, 1.90, true},
		{20, 1.70, 1.95, true},
		{24, 1.75, 1.95, true},
		{32, 1.85, 2.00, true},
	}
	prev := 0.0
	for _, c := range cases {
		body := MatmulRowBody(c.n)
		iters := uint64(c.n)
		cyc := LoopCycles(body, iters)
		fpc := float64(LoopFlops(body, iters)) / float64(cyc)
		if fpc < c.lo || fpc > c.hi {
			t.Errorf("n=%d: %.3f flops/cycle, want [%.2f,%.2f]", c.n, fpc, c.lo, c.hi)
		}
		if fpc <= prev {
			t.Errorf("n=%d: efficiency %.3f not increasing (prev %.3f)", c.n, fpc, prev)
		}
		prev = fpc
	}
}

func TestMatmulNaiveAbout60Percent(t *testing.T) {
	// §VII: the C version "gave only 60% of peak performance".
	n := 32
	tuned := LoopCycles(MatmulRowBody(n), 32)
	naive := LoopCycles(MatmulNaiveRowBody(n), 32)
	ratio := float64(tuned) / float64(naive)
	if ratio < 0.50 || ratio > 0.75 {
		t.Fatalf("naive/tuned speed ratio %.2f, want ~0.6", ratio)
	}
}

func TestMatmulRowFlops(t *testing.T) {
	for _, n := range []int{8, 16, 20, 24, 32} {
		body := MatmulRowBody(n)
		if got, want := Flops(body), uint64(2*n*n); got != want {
			t.Fatalf("n=%d row flops = %d, want %d", n, got, want)
		}
	}
}

func TestMatmulCodeSizePaperEstimate(t *testing.T) {
	// Paper: "the macro is expanded 32 times ... resulting in around
	// 6.5 KBytes of assembly code" for one row of a 32x32 product.
	row := MatmulRowBody(32)
	sz := CodeBytes(row)
	if sz < 5000 || sz > 8000 {
		t.Fatalf("32x32 row code = %d bytes, want ~6.5 KB", sz)
	}
}

func TestPipelinePropertyCyclesBounded(t *testing.T) {
	// Property: for any schedule, cycles are at least the per-lane issue
	// bound and at most the fully serialized bound with max stalls.
	f := func(seed uint8, length uint8) bool {
		r := seed
		next := func(n int) int { r = r*37 + 11; return int(r) % n }
		var prog []Op
		for i := 0; i < int(length%60)+1; i++ {
			switch next(5) {
			case 0:
				prog = append(prog, Fmadd(Reg(32+next(16)), Reg(next(8)), Reg(16+next(8))))
			case 1:
				prog = append(prog, Load64(Reg(16+next(8))))
			case 2:
				prog = append(prog, Store32(Reg(32+next(16))))
			case 3:
				prog = append(prog, Iadd(Reg(next(8)), Reg(next(8))))
			default:
				prog = append(prog, Imov(Reg(32+next(16))))
			}
		}
		p := NewPipeline()
		c := p.Run(prog)
		fpu, ialu := 0, 0
		for _, o := range prog {
			if o.Kind.FPU() {
				fpu++
			} else {
				ialu++
			}
		}
		lower := uint64(max(fpu, ialu))
		upper := uint64(len(prog)) * (FMADDLatency + 1)
		return c >= lower && c <= upper
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
