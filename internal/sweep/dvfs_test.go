package sweep

import (
	"context"
	"strings"
	"testing"
)

// TestNormalizeDVFSAxis: operating-point spellings are canonicalized,
// deduplicated and sorted by frequency, independent of written order;
// a power model with no explicit points gets the nominal one; a DVFS
// axis without a model is an error.
func TestNormalizeDVFSAxis(t *testing.T) {
	p, err := Plan{
		Workloads: []string{"stencil-tuned"},
		Power:     "epiphany-iv-28nm",
		DVFS:      []string{"600@1.0", "300MHz@0.80V", "600MHz@1.00V", "300@0.8"},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"300MHz@0.80V", "600MHz@1.00V"}
	if len(p.DVFS) != len(want) {
		t.Fatalf("DVFS axis %v, want %v", p.DVFS, want)
	}
	for i, label := range want {
		if p.DVFS[i] != label {
			t.Fatalf("DVFS axis %v, want %v", p.DVFS, want)
		}
	}

	p, err = Plan{Workloads: []string{"stencil-tuned"}, Power: "epiphany-iv-28nm"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DVFS) != 1 || p.DVFS[0] != "600MHz@1.00V" {
		t.Fatalf("defaulted DVFS axis %v, want the nominal point", p.DVFS)
	}

	if _, err := (Plan{DVFS: []string{"600@1.0"}}).Normalize(); err == nil ||
		!strings.Contains(err.Error(), "requires a power model") {
		t.Fatalf("DVFS without power model: %v", err)
	}
	if _, err := (Plan{Power: "no-such-model"}).Normalize(); err == nil ||
		!strings.Contains(err.Error(), "unknown power model") {
		t.Fatalf("unknown power model: %v", err)
	}
	if _, err := (Plan{Power: "epiphany-iv-28nm", DVFS: []string{"fast"}}).Normalize(); err == nil {
		t.Fatal("malformed operating point accepted")
	}
}

// TestExpandDVFSAxis: the operating-point axis multiplies the grid
// between topology and seed, and collapses away without a power model.
func TestExpandDVFSAxis(t *testing.T) {
	p, err := Plan{
		Workloads: []string{"stencil-tuned", "matmul-cannon"},
		Topos:     []Topo{{Preset: "e16"}, {Preset: "e64"}},
		Seeds:     []uint64{1, 2},
		Power:     "epiphany-iv-28nm",
		DVFS:      []string{"300@0.8", "600@1.0", "800@1.2"},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cells := p.Expand()
	if want := 2 * 2 * 3 * 2; len(cells) != want {
		t.Fatalf("%d cells, want %d (workloads x topos x dvfs x seeds)", len(cells), want)
	}
	// DVFS sits between topology and seed: within one workload/topology
	// run of cells, the seed axis cycles fastest.
	if cells[0].DVFS != cells[1].DVFS || cells[0].DVFS == cells[2].DVFS {
		t.Errorf("axis nesting wrong: %+v %+v %+v", cells[0], cells[1], cells[2])
	}

	noPower, err := Plan{Workloads: []string{"stencil-tuned"}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range noPower.Expand() {
		if c.DVFS != "" {
			t.Fatalf("cell %+v carries a DVFS label without a power model", c)
		}
	}
}

// TestRunDVFSScalingTable executes a small frequency sweep and checks
// the energy columns behave physically: wall time shrinks with
// frequency, the derived ratios anchor at the baseline topology, and
// the table renderers surface the energy columns only when asked.
func TestRunDVFSScalingTable(t *testing.T) {
	res, err := Run(context.Background(), Plan{
		Workloads: []string{"stencil-tuned"},
		Topos:     []Topo{{Preset: "e64"}},
		Power:     "epiphany-iv-28nm",
		DVFS:      []string{"300@0.8", "600@1.0"},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(res.Cells))
	}
	slow, fast := res.Cells[0], res.Cells[1]
	if slow.Err != "" || fast.Err != "" {
		t.Fatalf("cells failed: %q %q", slow.Err, fast.Err)
	}
	if slow.DVFS != "300MHz@0.80V" || fast.DVFS != "600MHz@1.00V" {
		t.Fatalf("cell order %q, %q", slow.DVFS, fast.DVFS)
	}
	// Identical cycle-domain run...
	if slow.Metrics.Elapsed != fast.Metrics.Elapsed {
		t.Errorf("simulated elapsed differs across DVFS points: %v vs %v",
			slow.Metrics.Elapsed, fast.Metrics.Elapsed)
	}
	// ...but half-frequency wall clock is twice as long, at lower power.
	if got, want := slow.Metrics.WallTimeS, 2*fast.Metrics.WallTimeS; got != want {
		t.Errorf("wall time %v at 300 MHz, want exactly %v", got, want)
	}
	if slow.Metrics.AvgPowerW >= fast.Metrics.AvgPowerW {
		t.Errorf("power at 0.8 V (%v W) not below 1.0 V (%v W)",
			slow.Metrics.AvgPowerW, fast.Metrics.AvgPowerW)
	}
	for _, c := range res.Cells {
		if c.Metrics.EnergyJ <= 0 || c.Metrics.GFLOPSPerWatt <= 0 {
			t.Errorf("cell %s: energy columns empty: %+v", c.DVFS, c.Metrics.EnergyJ)
		}
		if c.EnergyRel != 1 || c.EDPRel != 1 || c.Speedup != 1 {
			t.Errorf("cell %s: baseline ratios not 1: energy=%v edp=%v speedup=%v",
				c.DVFS, c.EnergyRel, c.EDPRel, c.Speedup)
		}
	}
	text := res.Text()
	for _, col := range []string{"dvfs", "wall (ms)", "energy (mJ)", "GFLOPS/W", "EDP rel"} {
		if !strings.Contains(text, col) {
			t.Errorf("energy sweep table lacks %q column:\n%s", col, text)
		}
	}
	csv := res.CSV()
	for _, col := range []string{"energy_j", "e_leakage_j", "edp_rel", "wall_s"} {
		if !strings.Contains(csv, col) {
			t.Errorf("energy CSV lacks %q column", col)
		}
	}

	// Without a power model the renderers must not mention energy.
	plain, err := Run(context.Background(), Plan{
		Workloads: []string{"stencil-tuned"}, Topos: []Topo{{Preset: "e64"}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out := plain.Text() + plain.CSV(); strings.Contains(out, "energy") || strings.Contains(out, "dvfs") {
		t.Errorf("time-domain sweep output mentions energy columns:\n%s", out)
	}
}
