package sweep

import (
	"context"
	"strings"
	"testing"

	"epiphany/internal/sim"
	"epiphany/internal/system"
	"epiphany/internal/workload"
)

func TestParseTopo(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Topo
		key  string
	}{
		{"e16", Topo{Preset: "e16"}, "e16"},
		{"cluster-2x2", Topo{Preset: "cluster-2x2"}, "cluster-2x2"},
		{"4x8", Topo{MeshRows: 4, MeshCols: 8}, "4x8"},
		{"e64/c2c=40:600", Topo{Preset: "e64", C2CBytePeriod: 40, C2CHopLatency: 600}, "e64/c2c=40:600"},
		{"2x2/c2c=5:0", Topo{MeshRows: 2, MeshCols: 2, C2CBytePeriod: 5}, "2x2/c2c=5:0"},
		{"cluster-2x2/shards=2", Topo{Preset: "cluster-2x2", Shards: 2}, "cluster-2x2/shards=2"},
		{"cluster-2x2/shards=1", Topo{Preset: "cluster-2x2", Shards: 1}, "cluster-2x2/shards=1"},
		{"cluster-2x2/c2c=40:600/shards=4", Topo{Preset: "cluster-2x2", C2CBytePeriod: 40, C2CHopLatency: 600, Shards: 4}, "cluster-2x2/c2c=40:600/shards=4"},
	} {
		got, err := ParseTopo(tc.in)
		if err != nil {
			t.Errorf("ParseTopo(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseTopo(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if got.Key() != tc.key {
			t.Errorf("ParseTopo(%q).Key() = %q, want %q", tc.in, got.Key(), tc.key)
		}
		if _, err := got.Resolve(); err != nil {
			t.Errorf("ParseTopo(%q).Resolve(): %v", tc.in, err)
		}
	}
	for _, bad := range []string{"", "e63", "0x4", "4x", "e64/c2c=40", "e64/c2c=a:b", "99x99",
		"grid=0x4", "grid=8x8/chip=8x8", "cluster4x4", "e64x3", "grid=4x4/chip=ax8",
		"cluster-2x2/shards=8",            // > NumChips
		"cluster-2x2/shards=-1",           // negative
		"cluster-2x2/shards=x",            // not a count
		"cluster-2x2/shards=2/c2c=40:600", // shards must go last
	} {
		if _, err := ParseTopo(bad); err == nil {
			t.Errorf("ParseTopo(%q) accepted", bad)
		}
	}

	// The /shards= suffix belongs in the Shards field on the JSON path,
	// same as /c2c=: a Spec smuggling it in is rejected, not folded.
	if _, err := (Topo{Spec: "cluster-4x4/shards=2"}).Resolve(); err == nil || !strings.Contains(err.Error(), "shards field") {
		t.Errorf("Spec with inline /shards= resolved: %v", err)
	}
}

// TestParseTopoSpecAxis: grammar specs land in the Spec field in
// canonical spelling - however they were typed - with presets and
// ad-hoc meshes migrated to their own fields, so equal boards always
// produce equal axis values.
func TestParseTopoSpecAxis(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Topo
	}{
		{"grid=4x4/chip=8x8", Topo{Spec: "grid=4x4/chip=8x8"}},
		{"grid=2x4", Topo{Spec: "grid=2x4/chip=8x8"}}, // /chip= default made explicit
		{"cluster-4x4", Topo{Spec: "cluster-4x4"}},
		{"e64x16", Topo{Spec: "e64x16"}},
		{"grid=1x1/chip=8x8", Topo{Spec: "grid=1x1/chip=8x8"}}, // not aliased onto e64
		{"grid=2x2/chip=4x4/c2c=40:600", Topo{Spec: "grid=2x2/chip=4x4", C2CBytePeriod: 40, C2CHopLatency: 600}},
		{"grid=4x4/chip=8x8/shards=16", Topo{Spec: "grid=4x4/chip=8x8", Shards: 16}},
		{"grid=2x4/shards=4", Topo{Spec: "grid=2x4/chip=8x8", Shards: 4}},
		{"cluster-+2x2", Topo{Preset: "cluster-2x2"}}, // spells the preset: migrates to Preset
		{"+4x8", Topo{MeshRows: 4, MeshCols: 8}},
	} {
		got, err := ParseTopo(tc.in)
		if err != nil {
			t.Errorf("ParseTopo(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseTopo(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		// The axis value round-trips through its own key.
		back, err := ParseTopo(got.Key())
		if err != nil || back != got {
			t.Errorf("ParseTopo(Key %q) = %+v, %v; want %+v", got.Key(), back, err, got)
		}
	}

	// A Spec written directly into a plan (the JSON path) resolves and
	// canonicalizes during Normalize: alternate spellings of one board
	// dedupe to a single axis value.
	p, err := Plan{
		Workloads: []string{"stencil-tuned"},
		Topos: []Topo{
			{Spec: "grid=2x4"},
			{Spec: "grid=+2x4/chip=8x8"},
			{Spec: "e64"}, // names the preset: canonicalizes into Preset
		},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Topos) != 2 {
		t.Fatalf("alternate spellings did not dedupe: %+v", p.Topos)
	}
	if p.Topos[0] != (Topo{Preset: "e64"}) || p.Topos[1] != (Topo{Spec: "grid=2x4/chip=8x8"}) {
		t.Fatalf("canonicalized axis %+v", p.Topos)
	}

	// Both Preset and Spec set is ambiguous, and c2c suffixes belong in
	// the override fields on the structured axis.
	if _, err := (Topo{Preset: "e64", Spec: "grid=2x4"}).Resolve(); err == nil {
		t.Error("Topo with both preset and spec accepted")
	}
	if _, err := (Topo{Spec: "e64/c2c=40:600"}).Resolve(); err == nil {
		t.Error("c2c suffix inside the spec field accepted")
	}
}

func TestNormalizeDefaultsAndCanonicalOrder(t *testing.T) {
	p, err := Plan{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Workloads) != len(workload.All()) {
		t.Fatalf("default plan has %d workloads, registry %d", len(p.Workloads), len(workload.All()))
	}
	for i := 1; i < len(p.Workloads); i++ {
		if p.Workloads[i-1] >= p.Workloads[i] {
			t.Fatalf("workloads not sorted: %v", p.Workloads)
		}
	}
	keys := make([]string, len(p.Topos))
	for i, topo := range p.Topos {
		keys[i] = topo.Key()
	}
	// Scaling order: core count first (e16's 16 cores lead), then key
	// (cluster-2x2 before e64 at 64 cores).
	if got := strings.Join(keys, ","); got != "e16,cluster-2x2,e64" {
		t.Fatalf("default topology axis %q", got)
	}
	if p.Baseline != "e16" {
		t.Fatalf("default baseline %q, want e16", p.Baseline)
	}

	// Duplicates collapse; explicit axes sort the same way however they
	// were written.
	p2, err := Plan{
		Workloads: []string{"stencil-tuned", "matmul-cannon", "stencil-tuned"},
		Topos:     []Topo{{Preset: "e64"}, {Preset: "e16"}, {Preset: "e64"}},
		Seeds:     []uint64{9, 3, 9},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Workloads) != 2 || p2.Workloads[0] != "matmul-cannon" {
		t.Fatalf("workload axis %v", p2.Workloads)
	}
	if len(p2.Topos) != 2 || p2.Topos[0].Key() != "e16" || p2.Baseline != "e16" {
		t.Fatalf("topology axis %v baseline %q", p2.Topos, p2.Baseline)
	}
	if len(p2.Seeds) != 2 || p2.Seeds[0] != 3 || p2.Seeds[1] != 9 {
		t.Fatalf("seed axis %v", p2.Seeds)
	}
}

func TestNormalizeRejects(t *testing.T) {
	if _, err := (Plan{Workloads: []string{"no-such"}}).Normalize(); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := (Plan{Topos: []Topo{{Preset: "e63"}}}).Normalize(); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := (Plan{Baseline: "cluster-9x9"}).Normalize(); err == nil {
		t.Error("baseline off the topology axis accepted")
	}
}

// TestDeriveColumns checks the derived-column arithmetic on synthetic
// cells, including the failure and missing-baseline edge cases.
func TestDeriveColumns(t *testing.T) {
	seed := uint64(7)
	mk := func(w, topo string, seed *uint64, cores int, elapsed, cross sim.Time, errs string) CellResult {
		c := CellResult{Workload: w, Topology: topo, Seed: seed, Cores: cores, Err: errs}
		c.Metrics.Elapsed = elapsed
		c.Metrics.ELinkCrossTime = cross
		return c
	}
	r := &Result{
		Plan: Plan{Baseline: "e16"},
		Cells: []CellResult{
			mk("a", "e16", nil, 4, 1000, 0, ""),
			mk("a", "e64", nil, 16, 250, 0, ""),         // 4x faster on 4x the cores
			mk("a", "e64", &seed, 16, 500, 0, ""),       // no e16 cell at this seed
			mk("b", "e16", nil, 8, 0, 0, "boom"),        // failed baseline
			mk("b", "e64", nil, 8, 300, 0, ""),          // baseline failed -> no speedup
			mk("c", "e16", nil, 4, 400, 0, ""),          // baseline of itself
			mk("c", "cluster-2x2", nil, 16, 800, 0, ""), // 2x slower on 4x cores
		},
	}
	r.Derive()
	want := []struct{ speedup, eff float64 }{
		{1, 1},
		{4, 1},
		{0, 0},
		{0, 0},
		{0, 0},
		{1, 1},
		{0.5, 0.125},
	}
	for i, w := range want {
		if got := r.Cells[i]; got.Speedup != w.speedup || got.Efficiency != w.eff {
			t.Errorf("cell %d (%s/%s): speedup=%v efficiency=%v, want %v/%v",
				i, got.Workload, got.Topology, got.Speedup, got.Efficiency, w.speedup, w.eff)
		}
	}
}

// TestRunDeterministicAcrossWorkers is the acceptance property: the
// same plan renders bit-identical bytes on repeated runs and with any
// worker count, in every output format.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	plan := Plan{
		Workloads: []string{"stencil-tuned", "matmul-cannon", "stream-stencil"},
		Topos:     []Topo{{Preset: "e16"}, {Preset: "e64"}, {Preset: "cluster-2x2"}},
	}
	render := func(workers int) [4]string {
		res, err := Run(context.Background(), plan, workers)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return [4]string{res.Text(), res.Markdown(), res.CSV(), string(js)}
	}
	first := render(1)
	for _, workers := range []int{1, 8} {
		if got := render(workers); got != first {
			t.Fatalf("output differs with %d workers", workers)
		}
	}
}

// TestRunRecordsCellErrors: a cell whose workload cannot run on its
// topology fails alone; the rest of the grid still executes and the
// failed cell keeps its position with empty derived columns.
func TestRunRecordsCellErrors(t *testing.T) {
	res, err := Run(context.Background(), Plan{
		Workloads: []string{"sweep-test-bad", "stencil-tuned"},
		Topos:     []Topo{{Preset: "e16"}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("%d cells, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		switch c.Workload {
		case "sweep-test-bad":
			if c.Err == "" {
				t.Error("failing workload's cell has no error")
			}
			if c.Speedup != 0 || c.Metrics.Elapsed != 0 {
				t.Errorf("failed cell carries data: %+v", c)
			}
		case "stencil-tuned":
			if c.Err != "" {
				t.Errorf("healthy cell failed: %s", c.Err)
			}
			if c.Metrics.Elapsed == 0 {
				t.Error("healthy cell has no metrics")
			}
		}
	}
	if !strings.Contains(res.CSV(), "sweep-test-bad") {
		t.Error("failed cell missing from CSV")
	}
}

// TestRunWithSeedsAndOverrides: the seed axis multiplies the grid and a
// c2c-overridden cluster is a distinct, slower cell than the calibrated
// one.
func TestRunWithSeedsAndOverrides(t *testing.T) {
	res, err := Run(context.Background(), Plan{
		Workloads: []string{"stream-stencil"},
		Topos: []Topo{
			{Preset: "cluster-2x2"},
			{Preset: "cluster-2x2", C2CBytePeriod: 50, C2CHopLatency: 600},
		},
		Seeds:    []uint64{1, 2},
		Baseline: "cluster-2x2",
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("%d cells, want 2 topos x 2 seeds", len(res.Cells))
	}
	byKey := map[string]CellResult{}
	for _, c := range res.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s/%s seed %s failed: %s", c.Workload, c.Topology, seedLabel(c.Seed), c.Err)
		}
		byKey[c.Topology+"@"+seedLabel(c.Seed)] = c
	}
	for _, seed := range []string{"1", "2"} {
		base := byKey["cluster-2x2@"+seed]
		slow := byKey["cluster-2x2/c2c=50:600@"+seed]
		if base.Speedup != 1 || base.Efficiency != 1 {
			t.Errorf("baseline cell seed %s: speedup=%v eff=%v", seed, base.Speedup, base.Efficiency)
		}
		if slow.Metrics.Elapsed <= base.Metrics.Elapsed {
			t.Errorf("seed %s: 10x slower c2c link not slower (%v vs %v)", seed, slow.Metrics.Elapsed, base.Metrics.Elapsed)
		}
		if slow.Speedup >= 1 {
			t.Errorf("seed %s: slowed cell speedup %v >= 1", seed, slow.Speedup)
		}
	}
}

// badWorkload always fails validation; it exercises the per-cell error
// path without touching a board.
type badWorkload struct{}

func (badWorkload) Name() string    { return "sweep-test-bad" }
func (badWorkload) Validate() error { return errBad }
func (badWorkload) Run(context.Context, *system.System) (workload.Result, error) {
	return nil, errBad
}

var errBad = &badErr{}

type badErr struct{}

func (*badErr) Error() string { return "sweep-test-bad: intentionally invalid" }

func init() { workload.Register(badWorkload{}) }
