package sweep

import (
	"encoding/hex"
	"testing"
)

// fp is Fingerprint with errors fatal: the spec under test must always
// normalize.
func fp(t *testing.T, p Plan) string {
	t.Helper()
	got, err := p.Fingerprint()
	if err != nil {
		t.Fatalf("Fingerprint(%+v): %v", p, err)
	}
	if len(got) != 64 {
		t.Fatalf("Fingerprint length %d, want 64 hex chars", len(got))
	}
	if _, err := hex.DecodeString(got); err != nil {
		t.Fatalf("Fingerprint %q is not hex: %v", got, err)
	}
	return got
}

// TestFingerprintSpellingInvariance: the digest addresses the canonical
// experiment, not its spelling - permuted, duplicated and defaulted
// axes hash identically.
func TestFingerprintSpellingInvariance(t *testing.T) {
	base := Plan{
		Workloads: []string{"stencil-tuned", "matmul-cannon"},
		Topos:     []Topo{{Preset: "e16"}, {Preset: "e64"}},
		Seeds:     []uint64{1, 2},
	}
	want := fp(t, base)

	permuted := Plan{
		Workloads: []string{"matmul-cannon", "stencil-tuned"},
		Topos:     []Topo{{Preset: "e64"}, {Preset: "e16"}},
		Seeds:     []uint64{2, 1},
	}
	if got := fp(t, permuted); got != want {
		t.Errorf("axis-permuted plan fingerprints differ: %s vs %s", got, want)
	}

	duplicated := Plan{
		Workloads: []string{"stencil-tuned", "matmul-cannon", "stencil-tuned"},
		Topos:     []Topo{{Preset: "e16"}, {Preset: "e64"}, {Preset: "e16"}},
		Seeds:     []uint64{1, 2, 2},
	}
	if got := fp(t, duplicated); got != want {
		t.Errorf("duplicate-laden plan fingerprints differ: %s vs %s", got, want)
	}

	// The default baseline (first topology in scaling order) hashes the
	// same whether it was spelled out or left implicit.
	explicitBaseline := base
	explicitBaseline.Baseline = "e16"
	if got := fp(t, explicitBaseline); got != want {
		t.Errorf("explicit default baseline changes the fingerprint")
	}

	// DVFS spellings canonicalize: "600@1.0" and "600MHz@1.00V" are the
	// same operating point.
	a := Plan{Workloads: []string{"stencil-tuned"}, Topos: []Topo{{Preset: "e64"}},
		Power: "epiphany-iv-28nm", DVFS: []string{"600@1.0", "300@0.85"}}
	b := Plan{Workloads: []string{"stencil-tuned"}, Topos: []Topo{{Preset: "e64"}},
		Power: "epiphany-iv-28nm", DVFS: []string{"300MHz@0.85V", "600MHz@1.00V"}}
	if fp(t, a) != fp(t, b) {
		t.Errorf("canonically equal DVFS axes fingerprint differently")
	}
}

// TestFingerprintDistinguishesEveryAxis: changing any single axis value
// - workload, topology, c2c byte period, c2c hop latency, power model,
// DVFS point, seed, baseline - changes the digest.
func TestFingerprintDistinguishesEveryAxis(t *testing.T) {
	base := Plan{
		Workloads: []string{"stencil-tuned"},
		Topos:     []Topo{{Preset: "e16"}, {Preset: "cluster-2x2"}},
		Seeds:     []uint64{1},
		Power:     "epiphany-iv-28nm",
		DVFS:      []string{"600@1.0"},
	}
	seen := map[string]string{fp(t, base): "base"}
	variants := map[string]Plan{}

	v := base
	v.Workloads = []string{"matmul-cannon"}
	variants["workload"] = v

	v = base
	v.Topos = []Topo{{Preset: "e64"}, {Preset: "cluster-2x2"}}
	variants["topology"] = v

	v = base
	v.Topos = []Topo{{Preset: "e16"}, {Preset: "cluster-2x2", C2CBytePeriod: 40}}
	variants["c2c byte period"] = v

	v = base
	v.Topos = []Topo{{Preset: "e16"}, {Preset: "cluster-2x2", C2CHopLatency: 600}}
	variants["c2c hop latency"] = v

	v = base
	v.Topos = []Topo{{Preset: "e16"}, {Preset: "cluster-2x2", Shards: 2}}
	variants["engine shards"] = v

	v = base
	v.Topos = []Topo{{Preset: "e16"}, {Preset: "cluster-2x2", Shards: 1}}
	variants["engine shards classic heap"] = v

	v = base
	v.Power = "epiphany-iii-65nm"
	v.DVFS = nil // the IV-28nm ladder's points don't all exist on the III model
	variants["power model"] = v

	v = base
	v.DVFS = []string{"300@0.85"}
	variants["dvfs point"] = v

	v = base
	v.DVFS = []string{"600@1.0", "300@0.85"}
	variants["dvfs axis size"] = v

	v = base
	v.Seeds = []uint64{2}
	variants["seed"] = v

	v = base
	v.Seeds = nil // default seed is a distinct spec from seed 1
	variants["default seed"] = v

	v = base
	v.Baseline = "cluster-2x2"
	variants["baseline"] = v

	for axis, p := range variants {
		got := fp(t, p)
		if prev, dup := seen[got]; dup {
			t.Errorf("axis %q collides with %q: %s", axis, prev, got)
		}
		seen[got] = axis
	}
}

// TestFingerprintStable: the digest is a pure function - identical
// across calls - and errors on a plan that cannot normalize.
func TestFingerprintStable(t *testing.T) {
	p := Plan{Workloads: []string{"stream-stencil"}}
	if fp(t, p) != fp(t, p) {
		t.Error("fingerprint not stable across calls")
	}
	if _, err := (Plan{Workloads: []string{"no-such-workload"}}).Fingerprint(); err == nil {
		t.Error("unnormalizable plan fingerprinted")
	}
}

// TestCellFingerprint: each expanded cell of a plan has a distinct
// stable address; the same cell reached from different plans (different
// grids, same cell spec) shares one, and the power model participates.
func TestCellFingerprint(t *testing.T) {
	p, err := Plan{
		Workloads: []string{"stencil-tuned", "matmul-cannon"},
		Topos:     []Topo{{Preset: "e16"}, {Preset: "e64"}},
		Seeds:     []uint64{1, 2},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	cells := p.Expand()
	seen := map[string]Cell{}
	for _, c := range cells {
		id := p.CellFingerprint(c)
		if len(id) != 64 {
			t.Fatalf("cell fingerprint length %d", len(id))
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("cells %+v and %+v share fingerprint %s", prev, c, id)
		}
		seen[id] = c
		if p.CellFingerprint(c) != id {
			t.Fatal("cell fingerprint not stable")
		}
	}

	// A 1-cell plan addressing the same spec produces the same digest as
	// the big grid's corresponding cell - the property that lets a cache
	// deduplicate across overlapping sweeps.
	small, err := Plan{
		Workloads: []string{"stencil-tuned"},
		Topos:     []Topo{{Preset: "e16"}},
		Seeds:     []uint64{1},
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	smallCell := small.Expand()[0]
	if _, ok := seen[small.CellFingerprint(smallCell)]; !ok {
		t.Error("identical cell spec from a different plan has a different fingerprint")
	}

	// The power model is part of the cell identity even though it is a
	// plan-level field.
	metered := p
	metered.Power = "epiphany-iv-28nm"
	if metered.CellFingerprint(cells[0]) == p.CellFingerprint(cells[0]) {
		t.Error("power model does not participate in the cell fingerprint")
	}
}
