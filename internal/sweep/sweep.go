// Package sweep runs declarative experiment grids over the simulator:
// a Plan names a set of registered workloads, a set of fabric
// topologies (presets, ad-hoc meshes, chip-to-chip timing overrides)
// and optionally a set of seeds; Expand turns it into the cartesian
// job grid in a canonical order; Run executes the grid on the pooled
// workload.Runner and derives the paper-style scaling columns
// (speedup against a named baseline topology, parallel efficiency,
// chip-boundary crossing share) from the per-cell Metrics.
//
// Everything is deterministic end to end: the expansion order is a
// pure function of the axis sets (not of the order they were written
// in), every simulation is bit-deterministic, and the renderers in
// this package format cells identically on every call - so a sweep's
// CSV output is bit-identical across repeated runs and across worker
// counts, and can itself be checked in as a golden file.
package sweep

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"

	"epiphany/internal/names"
	"epiphany/internal/power"
	"epiphany/internal/sim"
	"epiphany/internal/system"
	"epiphany/internal/workload"
)

// registeredWorkloads lists the registry's names for error suggestions.
func registeredWorkloads() []string {
	ws := workload.All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name()
	}
	return out
}

// presetNames lists the topology presets for error suggestions.
func presetNames() []string {
	ts := system.Topologies()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// Topo is one value of the topology axis: a preset board by name, a
// parameterized chip-grid spec, or an ad-hoc rows x cols single-chip
// mesh, optionally with the chip-to-chip eLink timing overridden (an
// experiment axis of its own: the same grid run over several
// C2CBytePeriod values measures how sensitive a workload is to the
// off-chip link speed).
type Topo struct {
	// Preset is a preset topology name ("e16", "e64", "cluster-2x2").
	Preset string `json:"preset,omitempty"`
	// Spec is a parameterized chip-grid spelling from the topology
	// grammar ("grid=4x4/chip=8x8", "cluster-4x4", "e64x16"; see
	// system.ParseTopologySpec). Spell c2c overrides in the fields
	// below, not as a /c2c= suffix inside Spec. Exactly one of Preset,
	// Spec or the mesh fields identifies the board; Normalize rewrites
	// Spec into its canonical form (and into Preset or the mesh fields
	// when the spec names one of those), so equal boards get equal keys
	// and fingerprints however they were spelled.
	Spec string `json:"spec,omitempty"`
	// MeshRows, MeshCols describe the ad-hoc single-chip mesh used when
	// Preset and Spec are empty.
	MeshRows int `json:"mesh_rows,omitempty"`
	MeshCols int `json:"mesh_cols,omitempty"`
	// C2CBytePeriod and C2CHopLatency override the chip-to-chip eLink
	// timing in sim.Time units (1/3 ns); zero keeps the calibrated
	// defaults. Only meaningful on multi-chip boards.
	C2CBytePeriod sim.Time `json:"c2c_byte_period,omitempty"`
	C2CHopLatency sim.Time `json:"c2c_hop_latency,omitempty"`
	// Shards pins the event-engine partition of the board (the
	// /shards=N grammar suffix): 0 keeps the default (one shard per
	// chip), 1 the classic single heap, k in [2, NumChips] a contiguous
	// grouping. The partition never changes a cell's metrics - the
	// engine's determinism contract, pinned by the determinism suite -
	// but it is part of the board's structural identity (pooled boards
	// keep their partition across recycles), so it is part of the axis
	// value and its key. Spell it here, not as a /shards= suffix inside
	// Spec.
	Shards int `json:"shards,omitempty"`
}

// Key returns the canonical cell label of the topology: the preset
// name, the grid spec, or "RxC" for ad-hoc meshes, with a
// "/c2c=byte:hop" suffix when the link timing is overridden (a zero
// component means that knob keeps its calibrated default, not that it
// costs nothing) and a "/shards=N" suffix when the engine partition is
// pinned. Keys identify baseline cells and label table rows; two Topos
// with equal keys are the same axis value.
func (t Topo) Key() string {
	key := t.Preset
	if key == "" {
		key = t.Spec
	}
	if key == "" {
		key = fmt.Sprintf("%dx%d", t.MeshRows, t.MeshCols)
	}
	if t.C2CBytePeriod > 0 || t.C2CHopLatency > 0 {
		key += fmt.Sprintf("/c2c=%d:%d", t.C2CBytePeriod, t.C2CHopLatency)
	}
	if t.Shards > 0 {
		key += fmt.Sprintf("/shards=%d", t.Shards)
	}
	return key
}

// Resolve maps the axis value onto a concrete system.Topology,
// validating it.
func (t Topo) Resolve() (system.Topology, error) {
	var st system.Topology
	switch {
	case t.Preset != "" && t.Spec != "":
		return st, fmt.Errorf("epiphany: topology axis value names both preset %q and spec %q; pick one", t.Preset, t.Spec)
	case t.Preset != "":
		preset, ok := system.TopologyByName(t.Preset)
		if !ok {
			// "4x8"-style ad-hoc meshes and grid specs are also accepted
			// where presets are; suggest the nearest preset for what
			// looks like a typo.
			return st, names.Unknown("topology preset", t.Preset, presetNames())
		}
		st = preset
	case t.Spec != "":
		if strings.Contains(t.Spec, "/c2c=") {
			return st, fmt.Errorf("epiphany: topology spec %q: spell c2c overrides in the c2c_byte_period/c2c_hop_latency fields (or as the /c2c= suffix of the combined string spelling), not inside spec", t.Spec)
		}
		if strings.Contains(t.Spec, "/shards=") {
			return st, fmt.Errorf("epiphany: topology spec %q: spell the engine partition in the shards field (or as the /shards= suffix of the combined string spelling), not inside spec", t.Spec)
		}
		var err error
		if st, err = system.ParseTopologySpec(t.Spec); err != nil {
			return st, err
		}
	default:
		st = system.SingleChip(t.MeshRows, t.MeshCols)
	}
	st = st.WithC2C(t.C2CBytePeriod, t.C2CHopLatency)
	st = st.WithShards(t.Shards)
	if err := st.Validate(); err != nil {
		return st, err
	}
	return st, nil
}

// ParseTopo parses the CLI spelling of a topology axis value: anything
// the topology grammar accepts - a preset name ("e64"), an ad-hoc mesh
// ("4x8"), a parameterized chip grid ("grid=4x4/chip=8x8",
// "cluster-4x4", "e64x16") - optionally followed by "/c2c=BYTE:HOP"
// with the override periods in sim.Time units (for example
// "cluster-2x2/c2c=40:600") and then "/shards=N" pinning the engine
// partition (the suffix order matches the grammar: shards goes last).
// The result is canonical: however the board was spelled, equal boards
// parse to equal Topos.
func ParseTopo(s string) (Topo, error) {
	var t Topo
	rest, shards, hasShards := strings.Cut(s, "/shards=")
	if hasShards {
		n, err := strconv.Atoi(shards)
		if err != nil {
			return t, fmt.Errorf("epiphany: topology %q: bad shard count: %v (the /shards= suffix goes last)", s, err)
		}
		t.Shards = n
	}
	base, c2c, hasC2C := strings.Cut(rest, "/c2c=")
	if hasC2C {
		bp, hl, err := system.ParseC2C(c2c)
		if err != nil {
			return t, fmt.Errorf("epiphany: topology %q: %v", s, err)
		}
		t.C2CBytePeriod, t.C2CHopLatency = bp, hl
	}
	st, err := system.ParseTopologySpec(base)
	if err != nil {
		return t, err
	}
	t = t.withBase(st)
	if _, err := t.Resolve(); err != nil {
		return t, err
	}
	return t, nil
}

// withBase assigns the resolved board to the axis value's canonical
// field: presets by name, unnamed single chips as mesh dimensions,
// every parameterized grid under its canonical spec.
func (t Topo) withBase(st system.Topology) Topo {
	switch {
	case st.Name == "":
		t.MeshRows, t.MeshCols = st.CoreRows, st.CoreCols
	default:
		if _, ok := system.TopologyByName(st.Name); ok {
			t.Preset = st.Name
		} else {
			t.Spec = st.Name
		}
	}
	return t
}

// canonicalize rewrites a Spec-form axis value into canonical form: the
// spec re-rendered by the grammar ("grid=04x4" -> "grid=4x4/chip=8x8"),
// or migrated into the Preset/mesh fields when it names one of those
// ({"spec":"e64"} -> {"preset":"e64"}) - so equal boards key,
// fingerprint and pool identically however a JSON plan spelled them.
// Values that fail to parse are returned unchanged (Resolve already
// rejected them).
func (t Topo) canonicalize() Topo {
	if t.Spec == "" {
		return t
	}
	st, err := system.ParseTopologySpec(t.Spec)
	if err != nil {
		return t
	}
	out := Topo{C2CBytePeriod: t.C2CBytePeriod, C2CHopLatency: t.C2CHopLatency, Shards: t.Shards}
	return out.withBase(st)
}

// Plan declares one experiment sweep: the axes of the grid and the
// baseline cell the derived columns compare against. The zero Plan is
// usable - it sweeps every registered workload over the preset
// topologies at each workload's default seed, with the smallest
// topology as baseline.
type Plan struct {
	// Workloads are registered workload names; empty means every
	// registered workload.
	Workloads []string `json:"workloads,omitempty"`
	// Topos is the topology axis; empty means the presets in scaling
	// order (e16, e64, cluster-2x2).
	Topos []Topo `json:"topos,omitempty"`
	// Seeds rebase each workload's deterministic inputs (the workloads
	// must implement Reseeder); empty runs each workload once at its
	// registered default seed.
	Seeds []uint64 `json:"seeds,omitempty"`
	// Baseline is the Topo key the speedup and efficiency columns
	// compare against; empty picks the first topology in canonical
	// (scaling) order.
	Baseline string `json:"baseline,omitempty"`
	// Power names the power-model preset (power.Models) applied to
	// every cell; empty runs a time-domain-only sweep whose output is
	// byte-identical to a sweep without energy accounting at all.
	Power string `json:"power,omitempty"`
	// DVFS is the operating-point axis, each value spelled
	// "FREQ[MHz]@VOLT[V]" or "nominal"; it requires Power. Empty with
	// Power set means the model's nominal point only. Each point is
	// executed as its own grid cell (one simulation per cell, like
	// every other axis, keeping the grid machinery uniform); the cycle
	// domain is frequency-invariant, so those runs produce identical
	// time-domain metrics and differ only in the derived energy and
	// wall-clock columns - the cost of the uniformity is re-simulating
	// a run whose outcome is already known, acceptable at this
	// simulator's milliseconds-per-cell scale.
	DVFS []string `json:"dvfs,omitempty"`
}

// Cell is one point of the expanded grid. Seed is nil when the
// workload's registered default seed applies; DVFS is empty when the
// plan has no power model.
type Cell struct {
	Workload string  `json:"workload"`
	Topo     Topo    `json:"topo"`
	DVFS     string  `json:"dvfs,omitempty"`
	Seed     *uint64 `json:"seed,omitempty"`
}

// Normalize resolves the plan's defaults and canonicalizes its axes:
// workload names are filled from the registry when empty, checked
// against it otherwise, and sorted; topologies default to the presets,
// are resolved (catching unknown presets and invalid geometry), and
// sorted into scaling order (core count, then key) with duplicates
// dropped; seeds are sorted and deduplicated; the baseline is defaulted
// to the first topology and checked to be on the axis. The canonical
// form is what makes expansion order independent of how the plan was
// written.
func (p Plan) Normalize() (Plan, error) {
	if len(p.Workloads) == 0 {
		for _, w := range workload.All() {
			p.Workloads = append(p.Workloads, w.Name())
		}
	} else {
		p.Workloads = dedupe(p.Workloads)
		for _, name := range p.Workloads {
			if _, ok := workload.ByName(name); !ok {
				return p, names.Unknown("workload", name, registeredWorkloads())
			}
		}
	}
	if len(p.Topos) == 0 {
		for _, st := range system.Topologies() {
			p.Topos = append(p.Topos, Topo{Preset: st.Name})
		}
	}
	type keyed struct {
		t     Topo
		key   string
		cores int
	}
	ks := make([]keyed, 0, len(p.Topos))
	seen := make(map[string]bool, len(p.Topos))
	for _, t := range p.Topos {
		st, err := t.Resolve()
		if err != nil {
			return p, err
		}
		t = t.canonicalize()
		key := t.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		ks = append(ks, keyed{t: t, key: key, cores: st.NumCores()})
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].cores != ks[j].cores {
			return ks[i].cores < ks[j].cores
		}
		return ks[i].key < ks[j].key
	})
	p.Topos = make([]Topo, len(ks))
	for i, k := range ks {
		p.Topos[i] = k.t
	}
	if len(p.Seeds) > 0 {
		p.Seeds = dedupe(p.Seeds)
	}
	if p.Baseline == "" {
		p.Baseline = p.Topos[0].Key()
	} else if !seen[p.Baseline] {
		return p, fmt.Errorf("epiphany: baseline %q is not on the sweep's topology axis", p.Baseline)
	}
	if err := p.normalizeDVFS(); err != nil {
		return p, err
	}
	return p, nil
}

// normalizeDVFS validates the energy axes and canonicalizes the
// operating-point labels: each spelling is resolved against the power
// model, re-rendered in canonical form, deduplicated and sorted by
// ascending frequency (voltage breaking ties) - so like the other axes,
// the expansion order is a function of the point set, not of how it was
// written. A plan with a power model but no explicit points gets the
// model's nominal point.
func (p *Plan) normalizeDVFS() error {
	if p.Power == "" {
		if len(p.DVFS) > 0 {
			return fmt.Errorf("epiphany: DVFS axis %v requires a power model (Plan.Power)", p.DVFS)
		}
		return nil
	}
	m, err := power.ResolveModel(p.Power)
	if err != nil {
		return err
	}
	if len(p.DVFS) == 0 {
		p.DVFS = []string{m.Nominal.String()}
		return nil
	}
	pts := make([]power.OperatingPoint, 0, len(p.DVFS))
	seen := make(map[power.OperatingPoint]bool, len(p.DVFS))
	for _, label := range p.DVFS {
		op, err := m.Point(label)
		if err != nil {
			return err
		}
		if seen[op] {
			continue
		}
		seen[op] = true
		pts = append(pts, op)
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FreqMHz != pts[j].FreqMHz {
			return pts[i].FreqMHz < pts[j].FreqMHz
		}
		return pts[i].VoltageV < pts[j].VoltageV
	})
	p.DVFS = make([]string, len(pts))
	for i, op := range pts {
		p.DVFS[i] = op.String()
	}
	return nil
}

// Expand returns the plan's cartesian job grid - every workload at
// every topology at every operating point at every seed - in the plan's
// axis order: workloads outermost, then topologies, then DVFS points,
// seeds innermost. Called on a normalized plan the order is canonical:
// permuting the values inside any axis of the original plan yields the
// identical expansion. Without a power model the DVFS axis collapses to
// a single empty label and the expansion is identical to an energy-free
// plan's.
func (p Plan) Expand() []Cell {
	seeds := make([]*uint64, 0, max(len(p.Seeds), 1))
	if len(p.Seeds) == 0 {
		seeds = append(seeds, nil)
	} else {
		for _, s := range p.Seeds {
			v := s
			seeds = append(seeds, &v)
		}
	}
	dvfs := p.DVFS
	if len(dvfs) == 0 {
		dvfs = []string{""}
	}
	cells := make([]Cell, 0, len(p.Workloads)*len(p.Topos)*len(dvfs)*len(seeds))
	for _, w := range p.Workloads {
		for _, t := range p.Topos {
			for _, d := range dvfs {
				for _, s := range seeds {
					cells = append(cells, Cell{Workload: w, Topo: t, DVFS: d, Seed: s})
				}
			}
		}
	}
	return cells
}

// dedupe sorts and deduplicates, without mutating its argument.
func dedupe[E interface{ ~string | ~uint64 }](in []E) []E {
	out := slices.Clone(in)
	slices.Sort(out)
	return slices.Compact(out)
}
