package sweep

// The named-plan registry and the 1024-core scaling study. The paper
// evaluates one E16 and one E64 device; its scaling argument only
// becomes interesting past the chips Adapteva shipped, so the study
// plan rides the parameterized topology grammar out to an
// Epiphany-V-class grid=4x4/chip=8x8 board (1024 cores) and derives
// the weak/strong-scaling and GFLOPS/W table the paper never had.
// Plans are registered by name so the sweep CLI (-plan), the serve
// daemon (/v1/plans) and tests all resolve the identical grid.

import (
	"sort"

	"epiphany/internal/names"
)

// NamedPlan is a registered, reusable sweep plan: the grid plus the
// name the CLIs and the serve daemon resolve it by.
type NamedPlan struct {
	// Name is the registry key ("scaling-1024").
	Name string `json:"name"`
	// Description is the one-line summary listings show.
	Description string `json:"description"`
	// Plan is the grid itself, in un-normalized form: Sweep/Run
	// normalizes it like any hand-written plan.
	Plan Plan `json:"plan"`
}

var planRegistry = map[string]NamedPlan{}

// RegisterPlan adds a named plan to the registry, replacing any
// previous plan of the same name (latest registration wins, like the
// workload registry).
func RegisterPlan(p NamedPlan) { planRegistry[p.Name] = p }

// Plans returns every registered plan sorted by name.
func Plans() []NamedPlan {
	out := make([]NamedPlan, 0, len(planRegistry))
	for _, p := range planRegistry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PlanByName resolves a registered plan.
func PlanByName(name string) (NamedPlan, bool) {
	p, ok := planRegistry[name]
	return p, ok
}

// ResolvePlan is PlanByName with the canonical unknown-name error
// ("did you mean" plus the registered listing), for CLI flags and
// serve 400 bodies.
func ResolvePlan(name string) (NamedPlan, error) {
	if p, ok := planRegistry[name]; ok {
		return p, nil
	}
	regd := make([]string, 0, len(planRegistry))
	for n := range planRegistry {
		regd = append(regd, n)
	}
	sort.Strings(regd)
	return NamedPlan{}, names.Unknown("sweep plan", name, regd)
}

// scalingStudyWorkloads is the study's workload axis, frozen
// statically (not "every registered workload") so future workload
// registrations cannot silently grow the study grid and drift its
// golden. It is every built-in, including matmul-offchip: the
// schemeDouble rotation now hands out send credits (flagFwd*) instead
// of compute-done flags, so the off-chip DMA path is safe on
// 8x8-core chip groups and the former exclusion is retired.
var scalingStudyWorkloads = []string{
	"matmul-cannon",
	"matmul-offchip",
	"matmul-single",
	"matmul-summa",
	"stencil-cross",
	"stencil-direct",
	"stencil-naive",
	"stencil-replicated",
	"stencil-single",
	"stencil-tuned",
	"stream-stencil",
	"stream-stencil-deep",
}

// ScalingStudy returns the 1024-core scaling study plan: the full
// TopologyFitter-clamped workload suite swept from the paper's
// devices out to an Epiphany-V-class
// 1024-core mesh, with the 28nm power model attached at its nominal
// operating point so the derived table carries energy and GFLOPS/W
// next to speedup, parallel efficiency and crossing share. Normalize
// orders the axis by core count: e16 (16) -> cluster-2x2 / e64 (64)
// -> grid=2x4/chip=8x8 (512) -> grid=4x4/chip=8x8 (1024), with e16 as
// the strong-scaling baseline.
func ScalingStudy() Plan {
	return Plan{
		Workloads: append([]string(nil), scalingStudyWorkloads...),
		Topos: []Topo{
			{Preset: "e16"},
			{Preset: "e64"},
			{Preset: "cluster-2x2"},
			{Spec: "grid=2x4/chip=8x8"},
			{Spec: "grid=4x4/chip=8x8"},
		},
		Baseline: "e16",
		Power:    "epiphany-iv-28nm",
	}
}

func init() {
	RegisterPlan(NamedPlan{
		Name:        "scaling-1024",
		Description: "workload suite from e16 to a 1024-core grid=4x4/chip=8x8 mesh: speedup, efficiency, crossing share, energy",
		Plan:        ScalingStudy(),
	})
}
