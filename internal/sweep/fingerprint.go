package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// The content addresses of the sweep domain. Every simulation is a pure
// function of its canonical spec - workload x topology x c2c timing x
// power model x DVFS point x seed - pinned bit-for-bit by the
// conformance and sweep goldens. That purity is what makes a result
// cache keyed by these digests *exact*: two specs with equal
// fingerprints produce byte-identical results, so a cached cell can be
// served in place of a ~35 ms simulation with no approximation at all.
// The epiphany-serve daemon builds its content-addressed cache on
// CellFingerprint and names whole sweeps by Fingerprint.

// Fingerprint returns the plan's content address: the lowercase-hex
// SHA-256 digest of the canonical (normalized) plan rendered as JSON.
// Normalization is what makes the digest an identity of the experiment
// rather than of its spelling: permuting the values inside any axis,
// duplicating entries, or leaving defaulted fields implicit all hash
// identically, while changing any axis value - a workload, a topology
// or its c2c override, the power model, a DVFS point, a seed, the
// baseline - yields a different digest. The error is Normalize's
// (unknown names, invalid geometry).
func (p Plan) Fingerprint() (string, error) {
	n, err := p.Normalize()
	if err != nil {
		return "", err
	}
	return fingerprintJSON(n), nil
}

// CellFingerprint returns the content address of one expanded cell
// under the plan's power model: the lowercase-hex SHA-256 digest over
// (power model, workload, topology, DVFS point, seed). The plan's
// other axes do not participate - a cell's raw metrics are independent
// of what else the grid contained and of the baseline it is later
// compared against - so the same cell reached from different plans
// shares one address, which is what lets a result cache deduplicate
// across overlapping sweeps. Call it on a normalized plan's expanded
// cells (Normalize canonicalizes the DVFS labels and topology set that
// make the address stable).
func (p Plan) CellFingerprint(c Cell) string {
	return fingerprintJSON(struct {
		Power string `json:"power,omitempty"`
		Cell  Cell   `json:"cell"`
	}{p.Power, c})
}

// fingerprintJSON hashes v's JSON rendering. Marshalling the plan and
// cell types cannot fail (plain strings, integers and structs all the
// way down), and struct-field order makes the rendering deterministic.
func fingerprintJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("epiphany: fingerprint marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
