package sweep

import (
	"fmt"
	"math/rand"
	"testing"
)

// The expansion property: for any plan, Normalize+Expand produces
// exactly the cartesian product of the (deduplicated) axes - no
// duplicate cells, no holes - and the expansion order is a pure
// function of the axis *sets*: shuffling the order the axis values
// were written in, or repeating values, changes nothing.

// expandKey is a cell's identity for set comparisons.
func expandKey(c Cell) string {
	return fmt.Sprintf("%s|%s|%s", c.Workload, c.Topo.Key(), seedLabel(c.Seed))
}

// normExpand normalizes and expands, failing the test on plan errors.
func normExpand(t *testing.T, p Plan) (Plan, []Cell) {
	t.Helper()
	np, err := p.Normalize()
	if err != nil {
		t.Fatalf("Normalize(%+v): %v", p, err)
	}
	return np, np.Expand()
}

func TestExpandIsCartesianProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workloadPool := []string{
		"stencil-tuned", "stencil-naive", "matmul-cannon", "matmul-offchip",
		"stream-stencil", "stream-stencil-deep",
	}
	topoPool := []Topo{
		{Preset: "e16"},
		{Preset: "e64"},
		{Preset: "cluster-2x2"},
		{MeshRows: 2, MeshCols: 2},
		{MeshRows: 4, MeshCols: 8},
		{Preset: "cluster-2x2", C2CBytePeriod: 40},
		{Preset: "cluster-2x2", C2CBytePeriod: 40, C2CHopLatency: 600},
	}
	seedPool := []uint64{1, 2, 3, 7, 11}

	pick := func(n int) []int {
		idx := rng.Perm(n)
		return idx[:1+rng.Intn(n)]
	}
	for round := 0; round < 50; round++ {
		var p Plan
		wIdx, tIdx := pick(len(workloadPool)), pick(len(topoPool))
		for _, i := range wIdx {
			p.Workloads = append(p.Workloads, workloadPool[i])
		}
		for _, i := range tIdx {
			p.Topos = append(p.Topos, topoPool[i])
		}
		if rng.Intn(2) == 0 {
			for _, i := range pick(len(seedPool)) {
				p.Seeds = append(p.Seeds, seedPool[i])
			}
		}
		np, cells := normExpand(t, p)

		// Exactly the cartesian product: the right count, no duplicates,
		// and every combination present.
		nSeeds := max(len(np.Seeds), 1)
		if want := len(np.Workloads) * len(np.Topos) * nSeeds; len(cells) != want {
			t.Fatalf("round %d: %d cells, want %d", round, len(cells), want)
		}
		seen := make(map[string]bool, len(cells))
		for _, c := range cells {
			k := expandKey(c)
			if seen[k] {
				t.Fatalf("round %d: duplicate cell %s", round, k)
			}
			seen[k] = true
		}
		for _, w := range np.Workloads {
			for _, topo := range np.Topos {
				if len(np.Seeds) == 0 {
					if !seen[fmt.Sprintf("%s|%s|-", w, topo.Key())] {
						t.Fatalf("round %d: hole at (%s, %s)", round, w, topo.Key())
					}
					continue
				}
				for _, s := range np.Seeds {
					if !seen[fmt.Sprintf("%s|%s|%d", w, topo.Key(), s)] {
						t.Fatalf("round %d: hole at (%s, %s, %d)", round, w, topo.Key(), s)
					}
				}
			}
		}

		// Axis-permutation stability: shuffle every axis and inject
		// duplicates; the expansion must be identical cell for cell.
		q := Plan{
			Workloads: append(shuffled(rng, p.Workloads), p.Workloads[0]),
			Topos:     append(shuffledTopos(rng, p.Topos), p.Topos[0]),
			Seeds:     shuffledSeeds(rng, p.Seeds),
		}
		if len(q.Seeds) > 0 {
			q.Seeds = append(q.Seeds, q.Seeds[len(q.Seeds)-1])
		}
		_, cells2 := normExpand(t, q)
		if len(cells2) != len(cells) {
			t.Fatalf("round %d: permuted plan expanded to %d cells, want %d", round, len(cells2), len(cells))
		}
		for i := range cells {
			if expandKey(cells[i]) != expandKey(cells2[i]) {
				t.Fatalf("round %d: expansion order not canonical at %d: %s vs %s",
					round, i, expandKey(cells[i]), expandKey(cells2[i]))
			}
		}
	}
}

func shuffled(rng *rand.Rand, in []string) []string {
	out := append([]string(nil), in...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func shuffledTopos(rng *rand.Rand, in []Topo) []Topo {
	out := append([]Topo(nil), in...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func shuffledSeeds(rng *rand.Rand, in []uint64) []uint64 {
	out := append([]uint64(nil), in...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
