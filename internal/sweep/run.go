package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"epiphany/internal/tabular"
	"epiphany/internal/workload"
)

// CellResult is one executed grid cell with its derived scaling
// columns. A failed cell (validation error, run error, panic) carries
// the failure in Err with zero Metrics; it still occupies its grid
// position so tables keep their shape.
type CellResult struct {
	Workload string  `json:"workload"`
	Topology string  `json:"topology"` // the Topo key
	Seed     *uint64 `json:"seed,omitempty"`
	// Cores is the number of cores the workload's topology-fitted
	// workgroup occupies; the efficiency denominator.
	Cores   int              `json:"cores"`
	Err     string           `json:"error,omitempty"`
	Metrics workload.Metrics `json:"metrics"`
	// Speedup is baseline elapsed time over this cell's elapsed time,
	// where the baseline is the same workload and seed on the plan's
	// baseline topology (1 for the baseline cell itself; 0 when the
	// baseline is missing or either cell failed).
	Speedup float64 `json:"speedup"`
	// Efficiency is parallel efficiency: speedup scaled by the ratio of
	// baseline cores to this cell's cores.
	Efficiency float64 `json:"efficiency"`
	// CrossShare is the chip-to-chip eLink crossing time relative to the
	// run's elapsed time. Crossing time is summed over deliveries, so -
	// like a multi-core CPU percentage - concurrent crossings can push
	// the value above 1 (0 on single-chip boards).
	CrossShare float64 `json:"cross_share"`
}

// Result is an executed sweep: the normalized plan and one CellResult
// per expanded cell, in expansion order.
type Result struct {
	Plan  Plan         `json:"plan"`
	Cells []CellResult `json:"cells"`
}

// Run normalizes and expands the plan, executes every cell on a pooled
// workload.Runner with the given worker count (<= 0 means GOMAXPROCS),
// and derives the scaling columns. Per-cell failures are recorded in
// the cells, not returned; the returned error is reserved for plan
// errors and context cancellation. The result is bit-deterministic:
// the same plan produces identical cells (and therefore identical
// rendered output) on every run, with any worker count.
func Run(ctx context.Context, p Plan, workers int) (*Result, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	cells := p.Expand()
	jobs := make([]workload.Job, len(cells))
	cores := make([]int, len(cells))
	for i, c := range cells {
		w, ok := workload.ByName(c.Workload)
		if !ok {
			return nil, fmt.Errorf("epiphany: workload %q not registered", c.Workload)
		}
		st, err := c.Topo.Resolve()
		if err != nil {
			return nil, err
		}
		cores[i] = workload.UsedCores(w, st.Rows(), st.Cols())
		opts := []workload.Option{workload.WithTopology(st)}
		if c.Seed != nil {
			opts = append(opts, workload.WithSeed(*c.Seed))
		}
		jobs[i] = workload.Job{Workload: w, Options: opts}
	}
	r := &workload.Runner{Workers: workers}
	br, err := r.RunBatch(ctx, jobs)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: p, Cells: make([]CellResult, len(cells))}
	for i, c := range cells {
		cr := CellResult{
			Workload: c.Workload,
			Topology: c.Topo.Key(),
			Seed:     c.Seed,
			Cores:    cores[i],
		}
		if jr := br.Results[i]; jr.Err != nil {
			cr.Err = jr.Err.Error()
		} else {
			cr.Metrics = jr.Result.Metrics()
			if cr.Metrics.Elapsed > 0 {
				cr.CrossShare = float64(cr.Metrics.ELinkCrossTime) / float64(cr.Metrics.Elapsed)
			}
		}
		res.Cells[i] = cr
	}
	res.derive()
	return res, nil
}

// derive fills the speedup and efficiency columns from the baseline
// cells. Cells index as workload-major, seed-minor (the Expand order),
// so the baseline for cell (w, topo, seed) is (w, p.Baseline, seed).
func (r *Result) derive() {
	type baseKey struct {
		workload string
		seed     string
	}
	base := make(map[baseKey]*CellResult)
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Topology == r.Plan.Baseline && c.Err == "" {
			base[baseKey{c.Workload, seedLabel(c.Seed)}] = c
		}
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Err != "" {
			continue
		}
		b, ok := base[baseKey{c.Workload, seedLabel(c.Seed)}]
		if !ok || c.Metrics.Elapsed == 0 || b.Cores == 0 || c.Cores == 0 {
			continue
		}
		c.Speedup = float64(b.Metrics.Elapsed) / float64(c.Metrics.Elapsed)
		c.Efficiency = c.Speedup * float64(b.Cores) / float64(c.Cores)
	}
}

// seedLabel renders a cell's seed for keys and table cells ("-" for the
// workload's registered default).
func seedLabel(s *uint64) string {
	if s == nil {
		return "-"
	}
	return strconv.FormatUint(*s, 10)
}

// header rows shared by the human renderers.
var prettyHeader = []string{
	"workload", "topology", "seed", "cores", "time (ms)", "GFLOPS",
	"% peak", "speedup", "efficiency", "x-chip %", "error",
}

// prettyRows formats the cells at fixed precision for Text and
// Markdown.
func (r *Result) prettyRows() [][]string {
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		if c.Err != "" {
			rows = append(rows, []string{
				c.Workload, c.Topology, seedLabel(c.Seed), "-",
				"-", "-", "-", "-", "-", "-", c.Err,
			})
			continue
		}
		xchip := "-"
		if c.Metrics.ELinkCrossings > 0 {
			xchip = fmt.Sprintf("%.1f", 100*c.CrossShare)
		}
		rows = append(rows, []string{
			c.Workload,
			c.Topology,
			seedLabel(c.Seed),
			strconv.Itoa(c.Cores),
			fmt.Sprintf("%.3f", c.Metrics.Elapsed.Seconds()*1e3),
			fmt.Sprintf("%.2f", c.Metrics.GFLOPS),
			fmt.Sprintf("%.1f", c.Metrics.PctPeak),
			fmt.Sprintf("%.2f", c.Speedup),
			fmt.Sprintf("%.2f", c.Efficiency),
			xchip,
			"",
		})
	}
	return rows
}

// Table returns the result as a tabular grid with the derived scaling
// columns, for callers that want to render it themselves.
func (r *Result) Table() *tabular.Table {
	return &tabular.Table{Header: prettyHeader, Rows: r.prettyRows()}
}

// Text renders the scaling table as aligned monospace text, with a
// title line naming the baseline.
func (r *Result) Text() string {
	return fmt.Sprintf("experiment sweep: %d cells, speedup vs %s\n", len(r.Cells), r.Plan.Baseline) +
		r.Table().Text()
}

// Markdown renders the scaling table as a GitHub-flavoured markdown
// table.
func (r *Result) Markdown() string {
	return r.Table().Markdown()
}

// CSV renders the machine-grade table: exact integer metrics
// (elapsed in sim.Time units, flops, crossing counters) and
// full-precision floats, so the output pins the simulation bit for bit
// and can be checked in as a golden file.
func (r *Result) CSV() string {
	t := &tabular.Table{Header: []string{
		"workload", "topology", "seed", "cores",
		"elapsed_units", "total_flops", "gflops", "pct_peak",
		"speedup", "efficiency",
		"xchip_crossings", "xchip_bytes", "xchip_time_units", "xchip_share",
		"error",
	}}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		if c.Err != "" {
			t.Rows = append(t.Rows, []string{
				c.Workload, c.Topology, seedLabel(c.Seed), strconv.Itoa(c.Cores),
				"", "", "", "", "", "", "", "", "", "", c.Err,
			})
			continue
		}
		m := c.Metrics
		t.Rows = append(t.Rows, []string{
			c.Workload,
			c.Topology,
			seedLabel(c.Seed),
			strconv.Itoa(c.Cores),
			strconv.FormatUint(uint64(m.Elapsed), 10),
			strconv.FormatUint(m.TotalFlops, 10),
			g(m.GFLOPS),
			g(m.PctPeak),
			g(c.Speedup),
			g(c.Efficiency),
			strconv.FormatUint(m.ELinkCrossings, 10),
			strconv.FormatUint(m.ELinkCrossBytes, 10),
			strconv.FormatUint(uint64(m.ELinkCrossTime), 10),
			g(c.CrossShare),
			"",
		})
	}
	return t.CSV()
}

// JSON renders the full result - normalized plan and every cell with
// raw metrics and derived columns - as indented JSON. Marshalling is
// deterministic (struct field order), so JSON output is golden-stable
// too.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
