package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"epiphany/internal/names"
	"epiphany/internal/tabular"
	"epiphany/internal/workload"
)

// CellResult is one executed grid cell with its derived scaling
// columns. A failed cell (validation error, run error, panic) carries
// the failure in Err with zero Metrics; it still occupies its grid
// position so tables keep their shape.
type CellResult struct {
	Workload string  `json:"workload"`
	Topology string  `json:"topology"` // the Topo key
	DVFS     string  `json:"dvfs,omitempty"`
	Seed     *uint64 `json:"seed,omitempty"`
	// Cores is the number of cores the workload's topology-fitted
	// workgroup occupies; the efficiency denominator.
	Cores   int              `json:"cores"`
	Err     string           `json:"error,omitempty"`
	Metrics workload.Metrics `json:"metrics"`
	// Speedup is baseline elapsed time over this cell's elapsed time,
	// where the baseline is the same workload and seed on the plan's
	// baseline topology (1 for the baseline cell itself; 0 when the
	// baseline is missing or either cell failed).
	Speedup float64 `json:"speedup"`
	// Efficiency is parallel efficiency: speedup scaled by the ratio of
	// baseline cores to this cell's cores.
	Efficiency float64 `json:"efficiency"`
	// CrossShare is the chip-to-chip eLink crossing time relative to the
	// run's elapsed time. Crossing time is summed over deliveries, so -
	// like a multi-core CPU percentage - concurrent crossings can push
	// the value above 1 (0 on single-chip boards).
	CrossShare float64 `json:"cross_share"`
	// EnergyRel and EDPRel compare this cell's energy-to-solution and
	// energy-delay product against the same workload/DVFS/seed cell on
	// the plan's baseline topology (1 for the baseline cell itself; 0
	// when no power model is attached or the baseline is missing).
	EnergyRel float64 `json:"energy_rel,omitempty"`
	EDPRel    float64 `json:"edp_rel,omitempty"`
}

// Result is an executed sweep: the normalized plan and one CellResult
// per expanded cell, in expansion order.
type Result struct {
	Plan  Plan         `json:"plan"`
	Cells []CellResult `json:"cells"`
}

// Run normalizes and expands the plan, executes every cell on a pooled
// workload.Runner with the given worker count (<= 0 means GOMAXPROCS),
// and derives the scaling columns. Per-cell failures are recorded in
// the cells, not returned; the returned error is reserved for plan
// errors and context cancellation. The result is bit-deterministic:
// the same plan produces identical cells (and therefore identical
// rendered output) on every run, with any worker count.
func Run(ctx context.Context, p Plan, workers int) (*Result, error) {
	p, err := p.Normalize()
	if err != nil {
		return nil, err
	}
	cells := p.Expand()
	jobs := make([]workload.Job, len(cells))
	cores := make([]int, len(cells))
	for i, c := range cells {
		jobs[i], cores[i], err = p.CellJob(c)
		if err != nil {
			return nil, err
		}
	}
	r := &workload.Runner{Workers: workers}
	br, err := r.RunBatch(ctx, jobs)
	if err != nil {
		return nil, err
	}
	res := &Result{Plan: p, Cells: make([]CellResult, len(cells))}
	for i, c := range cells {
		res.Cells[i] = NewCellResult(c, cores[i], br.Results[i])
	}
	res.Derive()
	return res, nil
}

// CellJob translates one expanded cell of a normalized plan into the
// workload.Job the Runner executes, also reporting how many cores the
// cell's topology-fitted workgroup occupies (the efficiency
// denominator). It is the per-cell half of Run, exported so callers
// that schedule cells individually - the epiphany-serve daemon runs
// each cell through its result cache - build byte-identical jobs.
func (p Plan) CellJob(c Cell) (workload.Job, int, error) {
	w, ok := workload.ByName(c.Workload)
	if !ok {
		return workload.Job{}, 0, names.Unknown("workload", c.Workload, registeredWorkloads())
	}
	st, err := c.Topo.Resolve()
	if err != nil {
		return workload.Job{}, 0, err
	}
	cores := workload.UsedCores(w, st.Rows(), st.Cols())
	opts := []workload.Option{workload.WithTopology(st)}
	if p.Power != "" {
		opts = append(opts, workload.WithPowerModel(p.Power, c.DVFS))
	}
	if c.Seed != nil {
		opts = append(opts, workload.WithSeed(*c.Seed))
	}
	return workload.Job{Workload: w, Options: opts}, cores, nil
}

// NewCellResult converts one executed job back into its cell's result
// row: raw metrics and crossing share only - the derived scaling
// columns (speedup, efficiency, relative energy) belong to a grid, not
// a cell, and are filled by Derive/DeriveCell against a baseline.
func NewCellResult(c Cell, cores int, jr workload.JobResult) CellResult {
	cr := CellResult{
		Workload: c.Workload,
		Topology: c.Topo.Key(),
		DVFS:     c.DVFS,
		Seed:     c.Seed,
		Cores:    cores,
	}
	if jr.Err != nil {
		cr.Err = jr.Err.Error()
	} else {
		cr.Metrics = jr.Result.Metrics()
		if cr.Metrics.Elapsed > 0 {
			cr.CrossShare = float64(cr.Metrics.ELinkCrossTime) / float64(cr.Metrics.Elapsed)
		}
	}
	return cr
}

// Derive fills the speedup, efficiency and relative-energy columns from
// the baseline cells: the baseline for cell (w, topo, dvfs, seed) is
// (w, p.Baseline, dvfs, seed) - scaling is always compared at the same
// operating point, so the DVFS axis reads as frequency scaling and the
// topology axis as strong scaling. Run calls it on every executed grid;
// it is exported for callers that assemble a Result from individually
// executed (or cached) cells.
func (r *Result) Derive() {
	base := make(map[baseKey]*CellResult)
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Topology == r.Plan.Baseline && c.Err == "" {
			base[baseKey{c.Workload, c.DVFS, seedLabel(c.Seed)}] = c
		}
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		DeriveCell(c, base[baseKey{c.Workload, c.DVFS, seedLabel(c.Seed)}])
	}
}

// baseKey identifies a cell's baseline: same workload, operating point
// and seed on the plan's baseline topology.
type baseKey struct {
	workload string
	dvfs     string
	seed     string
}

// DeriveCell fills c's derived scaling columns against its baseline
// cell b - the same workload, DVFS point and seed on the plan's
// baseline topology (c itself for baseline cells, where all ratios are
// exactly 1). A nil or failed baseline, a failed cell, or degenerate
// core/time counts leave the columns zero, exactly as Derive does
// grid-wide; the cell-at-a-time form exists so the epiphany-serve
// daemon can stream derived rows as cells complete, with values
// byte-identical to a whole-grid Derive.
func DeriveCell(c, b *CellResult) {
	if c.Err != "" || b == nil || b.Err != "" {
		return
	}
	if c.Metrics.Elapsed == 0 || b.Cores == 0 || c.Cores == 0 {
		return
	}
	c.Speedup = float64(b.Metrics.Elapsed) / float64(c.Metrics.Elapsed)
	c.Efficiency = c.Speedup * float64(b.Cores) / float64(c.Cores)
	if b.Metrics.EnergyJ > 0 {
		c.EnergyRel = c.Metrics.EnergyJ / b.Metrics.EnergyJ
	}
	if b.Metrics.EDPJs > 0 {
		c.EDPRel = c.Metrics.EDPJs / b.Metrics.EDPJs
	}
}

// seedLabel renders a cell's seed for keys and table cells ("-" for the
// workload's registered default).
func seedLabel(s *uint64) string {
	if s == nil {
		return "-"
	}
	return strconv.FormatUint(*s, 10)
}

// energyOn reports whether the executed plan carried a power model -
// the switch that adds the energy columns. Without it every renderer
// produces byte-identical output to the pre-energy subsystem, which is
// what keeps the checked-in time-domain goldens frozen.
func (r *Result) energyOn() bool { return r.Plan.Power != "" }

// prettyHeader returns the human renderers' header row.
func (r *Result) prettyHeader() []string {
	h := []string{"workload", "topology"}
	if r.energyOn() {
		h = append(h, "dvfs")
	}
	h = append(h, "seed", "cores", "time (ms)", "GFLOPS", "% peak",
		"speedup", "efficiency", "x-chip %")
	if r.energyOn() {
		h = append(h, "wall (ms)", "energy (mJ)", "avg W", "GFLOPS/W", "energy rel", "EDP rel")
	}
	return append(h, "error")
}

// prettyRows formats the cells at fixed precision for Text and
// Markdown.
func (r *Result) prettyRows() [][]string {
	energy := r.energyOn()
	rows := make([][]string, 0, len(r.Cells))
	for _, c := range r.Cells {
		if c.Err != "" {
			row := []string{c.Workload, c.Topology}
			if energy {
				row = append(row, c.DVFS)
			}
			row = append(row, seedLabel(c.Seed), "-", "-", "-", "-", "-", "-", "-")
			if energy {
				row = append(row, "-", "-", "-", "-", "-", "-")
			}
			rows = append(rows, append(row, c.Err))
			continue
		}
		xchip := "-"
		if c.Metrics.ELinkCrossings > 0 {
			xchip = fmt.Sprintf("%.1f", 100*c.CrossShare)
		}
		row := []string{c.Workload, c.Topology}
		if energy {
			row = append(row, c.DVFS)
		}
		row = append(row,
			seedLabel(c.Seed),
			strconv.Itoa(c.Cores),
			fmt.Sprintf("%.3f", c.Metrics.Elapsed.Seconds()*1e3),
			fmt.Sprintf("%.2f", c.Metrics.GFLOPS),
			fmt.Sprintf("%.1f", c.Metrics.PctPeak),
			fmt.Sprintf("%.2f", c.Speedup),
			fmt.Sprintf("%.2f", c.Efficiency),
			xchip,
		)
		if energy {
			row = append(row,
				fmt.Sprintf("%.3f", c.Metrics.WallTimeS*1e3),
				fmt.Sprintf("%.3f", c.Metrics.EnergyJ*1e3),
				fmt.Sprintf("%.3f", c.Metrics.AvgPowerW),
				fmt.Sprintf("%.2f", c.Metrics.GFLOPSPerWatt),
				fmt.Sprintf("%.2f", c.EnergyRel),
				fmt.Sprintf("%.2f", c.EDPRel),
			)
		}
		rows = append(rows, append(row, ""))
	}
	return rows
}

// Table returns the result as a tabular grid with the derived scaling
// columns (plus the energy columns when the plan carries a power
// model), for callers that want to render it themselves.
func (r *Result) Table() *tabular.Table {
	return &tabular.Table{Header: r.prettyHeader(), Rows: r.prettyRows()}
}

// Text renders the scaling table as aligned monospace text, with a
// title line naming the baseline.
func (r *Result) Text() string {
	return fmt.Sprintf("experiment sweep: %d cells, speedup vs %s\n", len(r.Cells), r.Plan.Baseline) +
		r.Table().Text()
}

// Markdown renders the scaling table as a GitHub-flavoured markdown
// table.
func (r *Result) Markdown() string {
	return r.Table().Markdown()
}

// CSV renders the machine-grade table: exact integer metrics
// (elapsed in sim.Time units, flops, crossing counters) and
// full-precision floats, so the output pins the simulation bit for bit
// and can be checked in as a golden file. Plans carrying a power model
// append the energy columns (wall seconds at the operating point,
// joules total and per component, watts, GFLOPS/W, EDP, and the
// baseline-relative ratios); without one the bytes are identical to the
// pre-energy renderer.
func (r *Result) CSV() string {
	energy := r.energyOn()
	header := []string{"workload", "topology"}
	if energy {
		header = append(header, "dvfs")
	}
	header = append(header, "seed", "cores",
		"elapsed_units", "total_flops", "gflops", "pct_peak",
		"speedup", "efficiency",
		"xchip_crossings", "xchip_bytes", "xchip_time_units", "xchip_share")
	if energy {
		header = append(header, "wall_s", "energy_j", "avg_power_w",
			"gflops_per_w", "edp_js", "energy_rel", "edp_rel",
			"e_core_active_j", "e_core_idle_j", "e_fpu_j", "e_sram_j",
			"e_dram_j", "e_mesh_j", "e_elink_j", "e_c2c_j", "e_leakage_j")
	}
	t := &tabular.Table{Header: append(header, "error")}
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		if c.Err != "" {
			row := []string{c.Workload, c.Topology}
			if energy {
				row = append(row, c.DVFS)
			}
			row = append(row, seedLabel(c.Seed), strconv.Itoa(c.Cores))
			for len(row) < len(t.Header)-1 {
				row = append(row, "")
			}
			t.Rows = append(t.Rows, append(row, c.Err))
			continue
		}
		m := c.Metrics
		row := []string{c.Workload, c.Topology}
		if energy {
			row = append(row, c.DVFS)
		}
		row = append(row,
			seedLabel(c.Seed),
			strconv.Itoa(c.Cores),
			strconv.FormatUint(uint64(m.Elapsed), 10),
			strconv.FormatUint(m.TotalFlops, 10),
			g(m.GFLOPS),
			g(m.PctPeak),
			g(c.Speedup),
			g(c.Efficiency),
			strconv.FormatUint(m.ELinkCrossings, 10),
			strconv.FormatUint(m.ELinkCrossBytes, 10),
			strconv.FormatUint(uint64(m.ELinkCrossTime), 10),
			g(c.CrossShare),
		)
		if energy {
			row = append(row,
				g(m.WallTimeS), g(m.EnergyJ), g(m.AvgPowerW),
				g(m.GFLOPSPerWatt), g(m.EDPJs), g(c.EnergyRel), g(c.EDPRel),
				g(m.Energy.CoreActiveJ), g(m.Energy.CoreIdleJ), g(m.Energy.FPUJ),
				g(m.Energy.SRAMJ), g(m.Energy.DRAMJ), g(m.Energy.MeshJ),
				g(m.Energy.ELinkJ), g(m.Energy.C2CJ), g(m.Energy.LeakageJ),
			)
		}
		t.Rows = append(t.Rows, append(row, ""))
	}
	return t.CSV()
}

// JSON renders the full result - normalized plan and every cell with
// raw metrics and derived columns - as indented JSON. Marshalling is
// deterministic (struct field order), so JSON output is golden-stable
// too.
func (r *Result) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
