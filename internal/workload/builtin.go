package workload

import "epiphany/internal/core"

// The built-in registry entries: one preset per scenario of the paper's
// evaluation (plus the ablations this reproduction adds), sized so that
// the full set batch-runs in seconds. Each is a template - rebase it
// with WithSeed, or copy the concrete type and edit its Config for
// custom shapes.
func init() {
	for _, w := range builtins {
		Register(w)
	}
}

var builtins = []Workload{
	// §VI heat stencil variants.
	&Stencil{Label: "stencil-tuned", Config: core.StencilConfig{
		Rows: 40, Cols: 20, Iters: 10, GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, Seed: 11,
	}},
	&Stencil{Label: "stencil-naive", Config: core.StencilConfig{
		Rows: 40, Cols: 20, Iters: 10, GroupRows: 2, GroupCols: 2,
		Comm: true, Seed: 12,
	}},
	&Stencil{Label: "stencil-replicated", Config: core.StencilConfig{
		Rows: 40, Cols: 20, Iters: 10, GroupRows: 2, GroupCols: 2,
		Tuned: true, Seed: 13,
	}},
	&Stencil{Label: "stencil-direct", Config: core.StencilConfig{
		Rows: 40, Cols: 20, Iters: 10, GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, DirectComm: true, Seed: 14,
	}},
	&Stencil{Label: "stencil-cross", Config: core.StencilConfig{
		Rows: 40, Cols: 20, Iters: 10, GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, Shape: core.Cross, Seed: 15,
	}},
	&Stencil{Label: "stencil-single", Config: core.StencilConfig{
		Rows: 40, Cols: 20, Iters: 10, GroupRows: 1, GroupCols: 1,
		Tuned: true, Seed: 16,
	}},
	// §VII / §VIII matrix multiplication variants.
	&Matmul{Label: "matmul-cannon", Config: core.MatmulConfig{
		M: 64, N: 64, K: 64, G: 4, Tuned: true, Verify: true, Seed: 21,
	}},
	&Matmul{Label: "matmul-summa", Config: core.MatmulConfig{
		M: 64, N: 64, K: 64, G: 4, Tuned: true, Verify: true,
		Algorithm: "summa", Seed: 22,
	}},
	&Matmul{Label: "matmul-single", Config: core.MatmulConfig{
		M: 32, N: 32, K: 32, G: 1, Tuned: true, Verify: true, Seed: 23,
	}},
	&Matmul{Label: "matmul-offchip", Config: core.MatmulConfig{
		M: 128, N: 128, K: 128, G: 8, OffChip: true, Tuned: true,
		Verify: true, Seed: 24,
	}},
	// §IX streaming stencil with temporal blocking.
	&StreamStencil{Label: "stream-stencil", Config: core.StreamStencilConfig{
		GlobalRows: 128, GlobalCols: 128, BlockRows: 16, BlockCols: 16,
		Iters: 8, TBlock: 2, GroupRows: 8, GroupCols: 8, Seed: 31,
	}},
	&StreamStencil{Label: "stream-stencil-deep", Config: core.StreamStencilConfig{
		GlobalRows: 128, GlobalCols: 128, BlockRows: 16, BlockCols: 16,
		Iters: 8, TBlock: 4, GroupRows: 8, GroupCols: 8, Seed: 32,
	}},
}
