package workload

import (
	"context"

	"epiphany/internal/core"
	"epiphany/internal/system"
)

// The paper's three applications as pluggable workloads. Each wraps the
// corresponding core config; the zero Label falls back to the kind name
// so ad-hoc instances need no naming, while presets and sweeps label
// every variant for the registry and batch reports.

// Stencil runs the §VI heat stencil (hand-scheduled 5-point kernel with
// DMA boundary exchange) as a Workload.
type Stencil struct {
	// Label overrides the workload name (default "stencil").
	Label  string
	Config core.StencilConfig
}

// Name implements Workload.
func (s *Stencil) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "stencil"
}

// Validate implements Workload.
func (s *Stencil) Validate() error { return s.Config.Validate() }

// Reseed implements Reseeder.
func (s *Stencil) Reseed(seed uint64) Workload {
	c := *s
	c.Config.Seed = seed
	return &c
}

// FitTopology implements TopologyFitter by clamping the workgroup to
// the board's core mesh (the per-core grid is unchanged, so a smaller
// board simply solves a smaller global problem).
func (s *Stencil) FitTopology(rows, cols int) Workload {
	gr, gc := min(s.Config.GroupRows, rows), min(s.Config.GroupCols, cols)
	if gr == s.Config.GroupRows && gc == s.Config.GroupCols {
		return s
	}
	c := *s
	c.Config.GroupRows, c.Config.GroupCols = gr, gc
	return &c
}

// Run implements Workload.
func (s *Stencil) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	res, err := core.RunStencil(sys.Host(), s.Config)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Matmul runs the §VII Cannon (or §VIII SUMMA) matrix multiplication as
// a Workload, including the off-chip paged level.
type Matmul struct {
	// Label overrides the workload name (default "matmul").
	Label  string
	Config core.MatmulConfig
}

// Name implements Workload.
func (m *Matmul) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "matmul"
}

// Validate implements Workload.
func (m *Matmul) Validate() error { return m.Config.Validate() }

// Reseed implements Reseeder.
func (m *Matmul) Reseed(seed uint64) Workload {
	c := *m
	c.Config.Seed = seed
	return &c
}

// FitTopology implements TopologyFitter: the square Cannon/SUMMA torus
// is shrunk to the largest valid workgroup edge that fits the board
// (the problem size is unchanged; per-core blocks grow instead).
func (m *Matmul) FitTopology(rows, cols int) Workload {
	edge := min(rows, cols)
	if m.Config.G <= edge {
		return m
	}
	c := *m
	for _, g := range []int{8, 4, 2, 1} {
		if g > edge {
			continue
		}
		c.Config.G = g
		if c.Config.Validate() == nil {
			return &c
		}
	}
	return m // nothing fits; let Validate report the original error
}

// Run implements Workload.
func (m *Matmul) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	res, err := core.RunMatmul(sys.Host(), m.Config)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// StreamStencil runs the §IX temporally blocked streaming stencil as a
// Workload: the grid lives in shared DRAM and pages through the chip.
type StreamStencil struct {
	// Label overrides the workload name (default "stream-stencil").
	Label  string
	Config core.StreamStencilConfig
}

// Name implements Workload.
func (s *StreamStencil) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "stream-stencil"
}

// Validate implements Workload.
func (s *StreamStencil) Validate() error { return s.Config.Validate() }

// Reseed implements Reseeder.
func (s *StreamStencil) Reseed(seed uint64) Workload {
	c := *s
	c.Config.Seed = seed
	return &c
}

// FitTopology implements TopologyFitter by clamping the paging
// workgroup to the board while keeping the global grid tileable: each
// group dimension shrinks to the largest size that both fits and
// divides the corresponding super-block count.
func (s *StreamStencil) FitTopology(rows, cols int) Workload {
	fit := func(group, limit, global, block int) int {
		g := min(group, limit)
		for g > 1 && global%(g*block) != 0 {
			g--
		}
		return g
	}
	gr := fit(s.Config.GroupRows, rows, s.Config.GlobalRows, s.Config.BlockRows)
	gc := fit(s.Config.GroupCols, cols, s.Config.GlobalCols, s.Config.BlockCols)
	if gr == s.Config.GroupRows && gc == s.Config.GroupCols {
		return s
	}
	c := *s
	c.Config.GroupRows, c.Config.GroupCols = gr, gc
	return &c
}

// UsedCores reports how many cores w's workgroup occupies on a rows x
// cols core mesh, after topology fitting. It is the denominator the
// scaling tables use for parallel efficiency: a preset that clamps
// itself to a smaller board is charged for the cores it actually runs
// on, not the whole device. Workloads outside the built-in types are
// assumed to use the full mesh.
func UsedCores(w Workload, rows, cols int) int {
	if f, ok := w.(TopologyFitter); ok {
		w = f.FitTopology(rows, cols)
	}
	switch c := w.(type) {
	case *Stencil:
		return c.Config.GroupRows * c.Config.GroupCols
	case *Matmul:
		return c.Config.G * c.Config.G
	case *StreamStencil:
		return c.Config.GroupRows * c.Config.GroupCols
	}
	return rows * cols
}

// Run implements Workload.
func (s *StreamStencil) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	res, err := core.RunStreamStencil(sys.Host(), s.Config)
	if err != nil {
		return nil, err
	}
	return res, nil
}
