package workload

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Job pairs a workload with per-job options (appended after the
// Runner's base options, so a job can override the batch defaults).
type Job struct {
	Workload Workload
	Options  []Option
}

// JobResult reports one job of a batch.
type JobResult struct {
	// Name is the workload's name (empty only if the job had no
	// workload).
	Name string
	// Result is nil when Err is set.
	Result Result
	Err    error
}

// BatchResult aggregates a batch; Results is index-aligned with the
// submitted jobs regardless of completion order.
type BatchResult struct {
	Results []JobResult
}

// Failed returns the jobs that did not produce a result.
func (b *BatchResult) Failed() []JobResult {
	var failed []JobResult
	for _, jr := range b.Results {
		if jr.Err != nil {
			failed = append(failed, jr)
		}
	}
	return failed
}

// Err summarises the batch: nil when every job succeeded, otherwise the
// first failure annotated with the failure count.
func (b *BatchResult) Err() error {
	failed := b.Failed()
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("epiphany: %d of %d jobs failed, first %q: %w",
		len(failed), len(b.Results), failed[0].Name, failed[0].Err)
}

// Runner executes batches of workloads concurrently. Every job gets its
// own fresh System (a System is single-use; sharing one across jobs
// would blend virtual clocks and statistics), so each simulation stays
// bit-deterministic: a batch produces byte-identical Metrics to running
// the same jobs sequentially, in any interleaving.
type Runner struct {
	// Workers caps the number of concurrent simulations; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Options are applied to every job, before the job's own options.
	Options []Option
}

// RunBatch executes jobs across the worker pool and returns the
// aggregated results in submission order. Errors - validation failures,
// run errors, panics out of a workload - are captured per job, never
// aborting the rest of the batch. Cancelling ctx stops feeding new jobs
// (simulations already in flight run to completion); jobs that never
// started report ctx's error. The returned error is ctx's error, if
// any - per-job failures are reported in the BatchResult only.
func (r *Runner) RunBatch(ctx context.Context, jobs []Job) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	br := &BatchResult{Results: make([]JobResult, len(jobs))}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				br.Results[i] = r.runJob(ctx, jobs[i])
			}
		}()
	}
	next := 0
feed:
	for ; next < len(jobs); next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for ; next < len(jobs); next++ {
		if jobs[next].Workload != nil {
			br.Results[next].Name = jobs[next].Workload.Name()
		}
		br.Results[next].Err = ctx.Err()
	}
	return br, ctx.Err()
}

// RunWorkloads is RunBatch over bare workloads with no per-job options.
func (r *Runner) RunWorkloads(ctx context.Context, ws ...Workload) (*BatchResult, error) {
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		jobs[i] = Job{Workload: w}
	}
	return r.RunBatch(ctx, jobs)
}

// runJob executes one job on a fresh System, converting panics (for
// example from a malformed Initial field) into per-job errors.
func (r *Runner) runJob(ctx context.Context, job Job) (jr JobResult) {
	defer func() {
		if p := recover(); p != nil {
			jr.Result = nil
			jr.Err = fmt.Errorf("epiphany: workload %q panicked: %v", jr.Name, p)
		}
	}()
	if job.Workload == nil {
		jr.Err = fmt.Errorf("epiphany: job has no workload")
		return jr
	}
	jr.Name = job.Workload.Name()
	opts := make([]Option, 0, len(r.Options)+len(job.Options))
	opts = append(opts, r.Options...)
	opts = append(opts, job.Options...)
	jr.Result, jr.Err = Run(ctx, job.Workload, opts...)
	return jr
}
