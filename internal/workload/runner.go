package workload

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"epiphany/internal/system"
)

// Job pairs a workload with per-job options (appended after the
// Runner's base options, so a job can override the batch defaults).
type Job struct {
	Workload Workload
	Options  []Option
}

// JobResult reports one job of a batch.
type JobResult struct {
	// Name is the workload's name (empty only if the job had no
	// workload).
	Name string
	// Result is nil when Err is set.
	Result Result
	Err    error
}

// BatchResult aggregates a batch; Results is index-aligned with the
// submitted jobs regardless of completion order.
type BatchResult struct {
	Results []JobResult
}

// Failed returns the jobs that did not produce a result.
func (b *BatchResult) Failed() []JobResult {
	var failed []JobResult
	for _, jr := range b.Results {
		if jr.Err != nil {
			failed = append(failed, jr)
		}
	}
	return failed
}

// Err summarises the batch: nil when every job succeeded, otherwise the
// first failure annotated with the failure count.
func (b *BatchResult) Err() error {
	failed := b.Failed()
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("epiphany: %d of %d jobs failed, first %q: %w",
		len(failed), len(b.Results), failed[0].Name, failed[0].Err)
}

// Runner executes batches of workloads concurrently. Every job gets its
// own pristine System - built fresh, or recycled from the worker's
// previous job through System.Reset when the topology matches (a System
// is single-use between resets; sharing a live one across jobs would
// blend virtual clocks and statistics). Either way each simulation
// stays bit-deterministic: a batch produces byte-identical Metrics to
// running the same jobs sequentially, in any interleaving, on fresh
// boards.
type Runner struct {
	// Workers caps the number of concurrent simulations; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Options are applied to every job, before the job's own options.
	Options []Option

	// idle recycles boards across RunJob calls, so a long-lived caller
	// (the epiphany-serve daemon) gets the same board-pooling win
	// RunBatch gives its batch workers. Guarded by idleMu; RunBatch does
	// not touch it (its pools are per-worker and unsynchronized).
	idleMu sync.Mutex
	idle   []*sysPool
}

// RunBatch executes jobs across the worker pool and returns the
// aggregated results in submission order. Errors - validation failures,
// run errors, panics out of a workload - are captured per job, never
// aborting the rest of the batch. Cancelling ctx stops feeding new jobs
// (simulations already in flight run to completion); jobs that never
// started report ctx's error. The returned error is ctx's error, if
// any - per-job failures are reported in the BatchResult only.
func (r *Runner) RunBatch(ctx context.Context, jobs []Job) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	br := &BatchResult{Results: make([]JobResult, len(jobs))}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pool sysPool
			for i := range idx {
				br.Results[i] = r.runJob(ctx, jobs[i], &pool)
			}
		}()
	}
	next := 0
feed:
	for ; next < len(jobs); next++ {
		select {
		case idx <- next:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for ; next < len(jobs); next++ {
		if jobs[next].Workload != nil {
			br.Results[next].Name = safeName(jobs[next].Workload)
		}
		br.Results[next].Err = ctx.Err()
	}
	return br, ctx.Err()
}

// safeName reports w.Name(), or the empty string when Name itself
// panics - a job that never ran must not abort the batch while being
// labelled for its result.
func safeName(w Workload) (name string) {
	defer func() { _ = recover() }()
	return w.Name()
}

// RunJob executes one job outside a batch. Unlike a one-job RunBatch,
// consecutive calls recycle simulated boards through a shared idle
// pool (each concurrent call checks out its own pool, so RunJob is
// safe for concurrent use and two in-flight jobs never share a
// System): a long-lived daemon submitting jobs one at a time keeps the
// construction-amortizing behaviour of a batch. The result is
// bit-identical to Run or RunBatch on the same job - recycled boards
// are certified pristine by System.Reset before reuse.
func (r *Runner) RunJob(ctx context.Context, job Job) JobResult {
	if ctx == nil {
		ctx = context.Background()
	}
	pool := r.checkout()
	jr := r.runJob(ctx, job, pool)
	r.checkin(pool)
	return jr
}

// checkout takes an idle board pool for one RunJob, or a fresh empty
// one when all are busy (or none exist yet).
func (r *Runner) checkout() *sysPool {
	r.idleMu.Lock()
	defer r.idleMu.Unlock()
	if n := len(r.idle); n > 0 {
		p := r.idle[n-1]
		r.idle[n-1] = nil
		r.idle = r.idle[:n-1]
		return p
	}
	return new(sysPool)
}

// checkin returns a pool after its job, keeping at most one idle pool
// per worker slot - beyond that the boards would only hold memory.
func (r *Runner) checkin(p *sysPool) {
	limit := r.Workers
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	r.idleMu.Lock()
	defer r.idleMu.Unlock()
	if len(r.idle) < limit {
		r.idle = append(r.idle, p)
	}
}

// RunWorkloads is RunBatch over bare workloads with no per-job options.
func (r *Runner) RunWorkloads(ctx context.Context, ws ...Workload) (*BatchResult, error) {
	jobs := make([]Job, len(ws))
	for i, w := range ws {
		jobs[i] = Job{Workload: w}
	}
	return r.RunBatch(ctx, jobs)
}

// sysPool recycles at most one System per worker goroutine. get hands
// out the cached board when the requested topology matches; put takes a
// board back only after System.Reset has certified it pristine, so a
// pooled System is always indistinguishable from a fresh one. Pools are
// per-worker and therefore unsynchronized. The match is whole-Topology
// equality, so every experiment-axis identity pools separately: the C2C
// timing overrides and the power model / DVFS point ride in the
// Topology value.
type sysPool struct {
	topo system.Topology
	sys  *system.System
}

func (p *sysPool) get(topo system.Topology) *system.System {
	if p.sys != nil && p.topo == topo {
		sys := p.sys
		p.sys = nil
		return sys
	}
	p.sys = nil
	return system.NewTopology(topo)
}

func (p *sysPool) put(topo system.Topology, sys *system.System) {
	if sys.Reset() == nil {
		p.topo, p.sys = topo, sys
	}
}

// runJob executes one job on a pristine System from the worker's pool,
// converting panics (for example from a malformed Initial field) into
// per-job errors. A System a panic escaped from is never pooled.
func (r *Runner) runJob(ctx context.Context, job Job, pool *sysPool) (jr JobResult) {
	defer func() {
		if p := recover(); p != nil {
			jr.Result = nil
			jr.Err = fmt.Errorf("epiphany: workload %q panicked: %v", jr.Name, p)
		}
	}()
	if job.Workload == nil {
		jr.Err = fmt.Errorf("epiphany: job has no workload")
		return jr
	}
	jr.Name = job.Workload.Name()
	opts := make([]Option, 0, len(r.Options)+len(job.Options))
	opts = append(opts, r.Options...)
	opts = append(opts, job.Options...)
	w, rc, err := prepare(job.Workload, opts)
	if err != nil {
		jr.Err = err
		return jr
	}
	if err := ctx.Err(); err != nil {
		jr.Err = err
		return jr
	}
	sys := pool.get(rc.topo)
	jr.Result, jr.Err = runOn(ctx, w, sys, &rc)
	// Reset certifies the board is recyclable even after a run error
	// (a deadlocked or stopped board fails certification and is
	// dropped).
	pool.put(rc.topo, sys)
	return jr
}
