package workload

import (
	"epiphany/internal/power"
	"epiphany/internal/system"
)

// energyResult decorates a workload's Result with the energy metrics
// derived from the board's activity counters. The underlying result is
// embedded, so its own methods stay reachable; callers that need the
// concrete result type (for gathered grids, product matrices, ...)
// unwrap it first.
type energyResult struct {
	Result
	metrics Metrics
}

// Metrics reports the inner result's metrics with the energy domain
// filled in.
func (r *energyResult) Metrics() Metrics { return r.metrics }

// Unwrap returns the undecorated workload result, for type assertions
// on its concrete type.
func (r *energyResult) Unwrap() Result { return r.Result }

// Unwrap peels any energy decoration off a Result, returning the
// workload's own concrete result.
func Unwrap(res Result) Result {
	for {
		u, ok := res.(interface{ Unwrap() Result })
		if !ok {
			return res
		}
		res = u.Unwrap()
	}
}

// attachEnergy derives the run's energy report from sys's activity
// counters under the topology's power model and operating point, and
// returns the result decorated with the energy-domain metrics. It must
// run before the System is reset or recycled (the counters are board
// state).
func attachEnergy(res Result, sys *system.System, topo system.Topology) (Result, error) {
	model, err := power.ResolveModel(topo.Power)
	if err != nil {
		return nil, err
	}
	op, err := model.Point(topo.DVFS)
	if err != nil {
		return nil, err
	}
	m := res.Metrics()
	usage := model.Energy(sys.EnergyCounters(m.Elapsed), op)
	m.AttachEnergy(usage)
	return &energyResult{Result: res, metrics: m}, nil
}
