// Package workload defines the pluggable workload abstraction the
// public epiphany package re-exports: a Workload is any experiment that
// can validate its configuration and execute against a fresh System,
// reporting the paper-style Metrics. The package also keeps the
// process-wide registry of named workloads and the functional options
// (mesh size, seed, trace) shared by the one-shot Run helper and the
// concurrent batch Runner.
package workload

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"epiphany/internal/core"
	"epiphany/internal/system"
	"epiphany/internal/trace"
)

// Metrics is the common performance summary (GFLOPS, % of peak,
// compute/transfer split) every Result reports.
type Metrics = core.Metrics

// Result is the output of one workload run. Concrete results (for
// example core.StencilResult) carry richer data - gathered grids,
// product matrices, DRAM traffic - reachable by type assertion; Metrics
// is the lingua franca every result speaks.
type Result interface {
	Metrics() Metrics
}

// Workload is one runnable experiment. Implementations outside this
// module plug in the same way the built-ins do: validate the
// configuration, Acquire the System, drive the board, and report
// Metrics.
type Workload interface {
	// Name identifies the workload; registered names must be unique.
	Name() string
	// Validate checks the configuration without running it.
	Validate() error
	// Run executes the workload on a fresh System. Implementations must
	// call sys.Acquire so that stale boards are refused, and should
	// check ctx before starting (a simulation in flight is not
	// interruptible; cancellation is observed at run boundaries).
	Run(ctx context.Context, sys *system.System) (Result, error)
}

// Reseeder is implemented by workloads whose inputs derive from a seed;
// WithSeed uses it to rebase a workload onto a new seed without
// mutating the original (registered workloads are shared).
type Reseeder interface {
	Workload
	Reseed(seed uint64) Workload
}

// TopologyFitter is implemented by workloads that can adapt their
// workgroup shape to the device they are handed, so one registered
// preset runs unchanged on every topology from a 4x4 E16 to a
// multi-chip cluster. FitTopology returns a copy resized for a rows x
// cols core mesh (or the receiver when it already fits); the built-ins
// all implement it.
type TopologyFitter interface {
	Workload
	FitTopology(rows, cols int) Workload
}

// runConfig collects the option-settable knobs for one run. The power
// model and DVFS point are kept beside the topology until prepare folds
// them into it, so WithPowerModel composes with WithTopology in either
// order.
type runConfig struct {
	topo        system.Topology
	seed        *uint64
	trace       io.Writer
	timeline    io.Writer
	engineStats bool
	power       string
	dvfs        string
	shards      *int
	workers     int
}

// Option configures how Run (and Runner) executes a workload.
type Option func(*runConfig)

// WithMeshSize runs the workload on a rows x cols single-chip device
// instead of the default 8x8 Epiphany-IV mesh.
func WithMeshSize(rows, cols int) Option {
	return func(rc *runConfig) { rc.topo = system.SingleChip(rows, cols) }
}

// WithTopology runs the workload on the given fabric topology - a
// preset (system.E16, system.E64, system.Cluster2x2) or a custom board
// of chips. Workloads implementing TopologyFitter adapt their workgroup
// shape to the board; on multi-chip boards, traffic crossing chip
// boundaries pays the chip-to-chip eLink costs, reported in
// Metrics.ELinkCrossTime.
func WithTopology(t system.Topology) Option {
	return func(rc *runConfig) { rc.topo = t }
}

// WithShards partitions the board's event engine into n shards: 0
// (auto, the default) gives every chip its own shard, 1 runs the whole
// board on the classic single event heap, 2..NumChips group the chips.
// The partition never changes the result - Metrics are bit-identical
// for every value, which the determinism suite pins - it only sets how
// much of the board WithWorkers can run concurrently. Composes with
// WithTopology in either order; the shard count becomes part of the
// board identity Runner pools by, so recycled boards keep their
// layout.
func WithShards(n int) Option {
	return func(rc *runConfig) { s := n; rc.shards = &s }
}

// WithWorkers runs the simulation's shards on n host goroutines (1, the
// default, is fully sequential; values above the shard count are
// clamped). Metrics are bit-identical for every value - the engine
// executes the same canonical event order - so workers only trade
// wall-clock time for CPU. Distinct from Runner.Workers, which runs
// whole jobs concurrently; the two compose (jobs x shards goroutines).
func WithWorkers(n int) Option {
	return func(rc *runConfig) { rc.workers = n }
}

// WithSeed rebases the workload's deterministic inputs onto seed. The
// workload must implement Reseeder (the built-ins do).
func WithSeed(seed uint64) Option {
	return func(rc *runConfig) { s := seed; rc.seed = &s }
}

// WithTrace writes the per-core activity heatmaps and the mesh-link
// heatmap to w after the run.
func WithTrace(w io.Writer) Option {
	return func(rc *runConfig) { rc.trace = w }
}

// WithTimeline records the run as a Chrome trace-event / Perfetto JSON
// timeline written to w after the run completes: per-core activity
// spans (compute, DMA wait, flag spin), DMA transfer legs, chip-to-chip
// eLink crossings, and - when the run uses the parallel scheduler - the
// engine's barrier rounds on a scheduler track. Open the file in
// ui.perfetto.dev. Recording is observational: the run's Metrics are
// bit-identical with or without it.
func WithTimeline(w io.Writer) Option {
	return func(rc *runConfig) { rc.timeline = w }
}

// WithEngineStats snapshots the event engine's scheduler counters
// (events per shard, barrier rounds, lookahead holds, booking parks,
// the sys shard's executed-event share; see sim.EngineStats) into the
// result's Metrics.Engine field. Purely additive: every other Metrics
// field is bit-identical with or without it, but note that Metrics
// values carrying stats compare unequal to bare ones (Engine is a
// pointer), so golden comparisons should run without.
func WithEngineStats() Option {
	return func(rc *runConfig) { rc.engineStats = true }
}

// WithPowerModel attaches the named power-model preset (see
// power.Models) and optional DVFS operating point ("FREQ[MHz]@VOLT[V]",
// or ""/"nominal" for the model's nominal point) to the run: after the
// simulation completes, its activity counters are priced into the
// Metrics' energy fields (EnergyJ, AvgPowerW, GFLOPSPerWatt, EDPJs and
// the per-component breakdown). The model is derivation-only - the
// time-domain metrics are bit-identical with or without it - but it is
// part of the run's experiment identity: Runner pools boards per
// (topology, model, point), exactly as it pools per C2C override.
func WithPowerModel(model, dvfs string) Option {
	return func(rc *runConfig) { rc.power, rc.dvfs = model, dvfs }
}

// Run validates w and executes it on a fresh System built according to
// the options. It is the one-shot form of Runner.RunBatch.
func Run(ctx context.Context, w Workload, opts ...Option) (Result, error) {
	w, rc, err := prepare(w, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return runOn(ctx, w, system.NewTopology(rc.topo), &rc)
}

// prepare applies the options and readies w for execution: topology
// validation, reseeding, topology fitting, config validation. It
// returns the workload to actually run (possibly a rebased or refitted
// copy) and the resolved run configuration.
func prepare(w Workload, opts []Option) (Workload, runConfig, error) {
	rc := runConfig{topo: system.E64}
	if w == nil {
		return nil, rc, fmt.Errorf("epiphany: Run of nil workload")
	}
	for _, o := range opts {
		o(&rc)
	}
	if rc.power != "" || rc.dvfs != "" {
		rc.topo = rc.topo.WithPower(rc.power, rc.dvfs)
	}
	if rc.shards != nil && rc.topo.Shards == 0 {
		// WithShards is a default: a topology that already pins its
		// partition (a "/shards=N" spec) keeps it.
		rc.topo = rc.topo.WithShards(*rc.shards)
	}
	if err := rc.topo.Validate(); err != nil {
		return nil, rc, err
	}
	if rc.seed != nil {
		r, ok := w.(Reseeder)
		if !ok {
			return nil, rc, fmt.Errorf("epiphany: workload %q does not support WithSeed", w.Name())
		}
		w = r.Reseed(*rc.seed)
	}
	if f, ok := w.(TopologyFitter); ok {
		w = f.FitTopology(rc.topo.Rows(), rc.topo.Cols())
	}
	if err := w.Validate(); err != nil {
		return nil, rc, err
	}
	return w, rc, nil
}

// runOn executes a prepared workload on sys (fresh from NewTopology, or
// recycled through System.Reset) and emits the optional trace. Trace
// write failures are surfaced as run errors, not dropped: a caller who
// asked for the heatmaps and silently got none would misread the run.
func runOn(ctx context.Context, w Workload, sys *system.System, rc *runConfig) (Result, error) {
	// Workers is an execution knob, not board identity: set it every
	// run so a pooled board never inherits the previous job's value.
	workers := rc.workers
	if workers < 1 {
		workers = 1
	}
	sys.SetWorkers(workers)
	var tl *trace.Timeline
	if rc.timeline != nil {
		tl = trace.NewTimeline()
		tl.Attach(sys.Chip())
		// Detach before the board returns to the pool, error or not: a
		// recycled board must never record a stranger's run.
		defer tl.Detach(sys.Chip())
	}
	res, err := w.Run(ctx, sys)
	if err != nil {
		return nil, err
	}
	if rc.topo.Power != "" {
		res, err = attachEnergy(res, sys, rc.topo)
		if err != nil {
			return nil, fmt.Errorf("epiphany: energy accounting for %q: %w", w.Name(), err)
		}
	}
	if rc.engineStats {
		res = attachEngineStats(res, sys)
	}
	if rc.trace != nil {
		if _, err := io.WriteString(rc.trace, trace.Take(sys.Chip()).String()); err != nil {
			return nil, fmt.Errorf("epiphany: writing trace for %q: %w", w.Name(), err)
		}
		if _, err := io.WriteString(rc.trace, trace.LinkHeat(sys.Chip())); err != nil {
			return nil, fmt.Errorf("epiphany: writing trace for %q: %w", w.Name(), err)
		}
	}
	if tl != nil {
		if err := tl.Export(rc.timeline); err != nil {
			return nil, fmt.Errorf("epiphany: writing timeline for %q: %w", w.Name(), err)
		}
	}
	return res, nil
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Workload)
)

// Register adds w to the process-wide workload registry. It panics if w
// is nil, unnamed, or a name is registered twice - registration happens
// from init functions, where a silent error would go unread (the same
// contract as database/sql.Register).
func Register(w Workload) {
	if w == nil {
		panic("epiphany: Register of nil workload")
	}
	name := w.Name()
	if name == "" {
		panic("epiphany: Register of unnamed workload")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("epiphany: Register called twice for workload %q", name))
	}
	registry[name] = w
}

// All returns every registered workload sorted by name.
func All() []Workload {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	ws := make([]Workload, len(names))
	for i, name := range names {
		ws[i] = registry[name]
	}
	return ws
}

// ByName looks up one registered workload.
func ByName(name string) (Workload, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	w, ok := registry[name]
	return w, ok
}
