package workload

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"epiphany/internal/core"
	"epiphany/internal/system"
)

// probe is a minimal workload that records the geometry of the board it
// was handed and the seed it was rebased onto.
type probe struct {
	name  string
	seed  uint64
	rows  *int
	cols  *int
	chips *int
}

func (p *probe) Name() string    { return p.name }
func (p *probe) Validate() error { return nil }
func (p *probe) Reseed(seed uint64) Workload {
	c := *p
	c.seed = seed
	return &c
}
func (p *probe) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	m := sys.Chip().Map()
	if p.rows != nil {
		*p.rows, *p.cols, *p.chips = m.Rows, m.Cols, m.NumChips()
	}
	return fixedResult{}, nil
}

type fixedResult struct{}

func (fixedResult) Metrics() Metrics { return Metrics{} }

func TestRegisterRejectsNilUnnamedAndDuplicates(t *testing.T) {
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", what)
			}
		}()
		fn()
	}
	mustPanic("nil", func() { Register(nil) })
	mustPanic("unnamed", func() { Register(&probe{}) })
	Register(&probe{name: "test-dup-probe"})
	mustPanic("duplicate", func() { Register(&probe{name: "test-dup-probe"}) })
}

func TestRegistryLookupAndOrdering(t *testing.T) {
	if _, ok := ByName("stencil-tuned"); !ok {
		t.Fatal("built-in stencil-tuned not registered")
	}
	if _, ok := ByName("no-such-workload"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
	all := All()
	if len(all) < len(builtins) {
		t.Fatalf("All returned %d workloads, want >= %d built-ins", len(all), len(builtins))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Fatalf("All not sorted: %q before %q", all[i-1].Name(), all[i].Name())
		}
	}
}

func TestRunValidateFailures(t *testing.T) {
	cases := []struct {
		label string
		w     Workload
	}{
		{"negative stencil rows", &Stencil{Config: core.StencilConfig{
			Rows: -1, Cols: 20, Iters: 1, GroupRows: 1, GroupCols: 1}}},
		{"untiled tuned cols", &Stencil{Config: core.StencilConfig{
			Rows: 20, Cols: 19, Iters: 1, GroupRows: 1, GroupCols: 1, Tuned: true}}},
		{"bad matmul group edge", &Matmul{Config: core.MatmulConfig{
			M: 64, N: 64, K: 64, G: 3}}},
		{"off-chip SUMMA", &Matmul{Config: core.MatmulConfig{
			M: 64, N: 64, K: 64, G: 4, OffChip: true, Algorithm: "summa"}}},
		{"untileable stream grid", &StreamStencil{Config: core.StreamStencilConfig{
			GlobalRows: 100, GlobalCols: 100, BlockRows: 16, BlockCols: 16,
			Iters: 1, TBlock: 1, GroupRows: 1, GroupCols: 1}}},
	}
	for _, c := range cases {
		if _, err := Run(context.Background(), c.w); err == nil {
			t.Errorf("%s: Run succeeded, want validation error", c.label)
		}
	}
	if _, err := Run(context.Background(), nil); err == nil {
		t.Error("Run of nil workload succeeded")
	}
}

func TestRunOptionPlumbing(t *testing.T) {
	var rows, cols, chips int
	p := &probe{name: "opt-probe", rows: &rows, cols: &cols, chips: &chips}

	if _, err := Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if rows != 8 || cols != 8 || chips != 1 {
		t.Fatalf("default board %dx%d/%d chips, want 8x8/1", rows, cols, chips)
	}

	if _, err := Run(context.Background(), p, WithMeshSize(2, 3)); err != nil {
		t.Fatal(err)
	}
	if rows != 2 || cols != 3 || chips != 1 {
		t.Fatalf("WithMeshSize board %dx%d/%d chips, want 2x3/1", rows, cols, chips)
	}

	if _, err := Run(context.Background(), p, WithTopology(system.Cluster2x2)); err != nil {
		t.Fatal(err)
	}
	if rows != 8 || cols != 8 || chips != 4 {
		t.Fatalf("cluster board %dx%d/%d chips, want 8x8/4", rows, cols, chips)
	}

	if _, err := Run(context.Background(), p, WithTopology(system.Topology{})); err == nil {
		t.Fatal("invalid topology accepted")
	}

	// WithSeed rebases via Reseeder without mutating the original.
	got := make(chan uint64, 1)
	seeded := &seedProbe{probe: probe{name: "seed-probe"}, got: got}
	if _, err := Run(context.Background(), seeded, WithSeed(42)); err != nil {
		t.Fatal(err)
	}
	if s := <-got; s != 42 {
		t.Fatalf("workload ran with seed %d, want 42", s)
	}
	if seeded.seed != 0 {
		t.Fatal("WithSeed mutated the registered workload")
	}

	// WithSeed on a non-Reseeder is refused.
	if _, err := Run(context.Background(), nonReseeder{}, WithSeed(1)); err == nil {
		t.Fatal("WithSeed on a non-Reseeder succeeded")
	}

	// WithTrace emits the heatmaps after a real run.
	var buf bytes.Buffer
	w := &Stencil{Config: core.StencilConfig{
		Rows: 4, Cols: 4, Iters: 1, GroupRows: 1, GroupCols: 1, Seed: 1}}
	if _, err := Run(context.Background(), w, WithTrace(&buf)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("WithTrace wrote nothing")
	}
}

type seedProbe struct {
	probe
	got chan uint64
}

func (s *seedProbe) Reseed(seed uint64) Workload {
	c := *s
	c.seed = seed
	return &c
}

func (s *seedProbe) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	s.got <- s.seed
	return fixedResult{}, nil
}

type nonReseeder struct{}

func (nonReseeder) Name() string    { return "non-reseeder" }
func (nonReseeder) Validate() error { return nil }
func (nonReseeder) Run(ctx context.Context, sys *system.System) (Result, error) {
	return fixedResult{}, nil
}

func TestFitTopologyClampsBuiltins(t *testing.T) {
	st := &Stencil{Config: core.StencilConfig{
		Rows: 40, Cols: 20, Iters: 1, GroupRows: 8, GroupCols: 8}}
	if got := st.FitTopology(8, 8); got != Workload(st) {
		t.Fatal("stencil fit of an already-fitting group must return the receiver")
	}
	fit := st.FitTopology(4, 4).(*Stencil)
	if fit.Config.GroupRows != 4 || fit.Config.GroupCols != 4 {
		t.Fatalf("stencil fit to 4x4 got %dx%d group", fit.Config.GroupRows, fit.Config.GroupCols)
	}
	if st.Config.GroupRows != 8 {
		t.Fatal("fit mutated the original stencil workload")
	}

	mm := &Matmul{Config: core.MatmulConfig{M: 128, N: 128, K: 128, G: 8, OffChip: true}}
	mfit := mm.FitTopology(4, 4).(*Matmul)
	if mfit.Config.G != 4 {
		t.Fatalf("matmul fit to 4x4 got G=%d, want 4", mfit.Config.G)
	}
	if mm.FitTopology(8, 8) != Workload(mm) {
		t.Fatal("matmul fit of a fitting group must return the receiver")
	}

	ss := &StreamStencil{Config: core.StreamStencilConfig{
		GlobalRows: 128, GlobalCols: 128, BlockRows: 16, BlockCols: 16,
		Iters: 1, TBlock: 1, GroupRows: 8, GroupCols: 8}}
	sfit := ss.FitTopology(4, 4).(*StreamStencil)
	if sfit.Config.GroupRows != 4 || sfit.Config.GroupCols != 4 {
		t.Fatalf("stream fit to 4x4 got %dx%d group", sfit.Config.GroupRows, sfit.Config.GroupCols)
	}
	if err := sfit.Validate(); err != nil {
		t.Fatalf("fitted stream stencil invalid: %v", err)
	}
}

// Every registered workload must run on every preset topology - the
// contract the conformance harness pins numerically at the repo root.
func TestBuiltinsRunOnEveryTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry x topology sweep")
	}
	for _, topo := range system.Topologies() {
		for _, w := range builtins {
			res, err := Run(context.Background(), w, WithTopology(topo))
			if err != nil {
				t.Errorf("%s on %s: %v", w.Name(), topo.Name, err)
				continue
			}
			if m := res.Metrics(); m.GFLOPS <= 0 {
				t.Errorf("%s on %s: GFLOPS = %v", w.Name(), topo.Name, m.GFLOPS)
			}
			if !topo.MultiChip() && res.Metrics().ELinkCrossings != 0 {
				t.Errorf("%s on %s: crossings on a single chip", w.Name(), topo.Name)
			}
		}
	}
}

// errWriter fails after accepting limit bytes.
type errWriter struct {
	limit int
	err   error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.limit {
		n := w.limit
		w.limit = 0
		return n, w.err
	}
	w.limit -= len(p)
	return len(p), nil
}

func TestRunSurfacesTraceWriteErrors(t *testing.T) {
	w := &Stencil{Config: core.StencilConfig{
		Rows: 4, Cols: 4, Iters: 1, GroupRows: 1, GroupCols: 1, Seed: 1}}
	boom := fmt.Errorf("disk full")

	// A writer that fails immediately (mid first heatmap).
	if _, err := Run(context.Background(), w, WithTrace(&errWriter{err: boom})); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped %v", err, boom)
	}

	// A writer that fails only on the second emission (the link heatmap):
	// the first WriteString succeeding must not mask the second failing.
	var probe bytes.Buffer
	if _, err := Run(context.Background(), w, WithTrace(&probe)); err != nil {
		t.Fatal(err)
	}
	headLen := bytes.Index(probe.Bytes(), []byte("eastbound link utilization"))
	if headLen <= 0 {
		t.Fatalf("trace output missing link heatmap:\n%s", probe.String())
	}
	if _, err := Run(context.Background(), w, WithTrace(&errWriter{limit: headLen, err: boom})); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want wrapped %v from the second trace write", err, boom)
	}
}

func TestRunBatchZeroJobs(t *testing.T) {
	r := &Runner{}
	br, err := r.RunBatch(context.Background(), nil)
	if err != nil {
		t.Fatalf("RunBatch(nil) error: %v", err)
	}
	if len(br.Results) != 0 || br.Err() != nil || len(br.Failed()) != 0 {
		t.Fatalf("empty batch result %+v not empty/clean", br)
	}
	if br, err = r.RunBatch(context.Background(), []Job{}); err != nil || len(br.Results) != 0 {
		t.Fatalf("RunBatch([]) = %+v, %v", br, err)
	}
}

func TestRunBatchMoreWorkersThanJobs(t *testing.T) {
	r := &Runner{Workers: 64}
	br, err := r.RunWorkloads(context.Background(),
		&probe{name: "small-batch-a"}, &probe{name: "small-batch-b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(br.Results); got != 2 {
		t.Fatalf("batch of 2 returned %d results", got)
	}
	for i, jr := range br.Results {
		if jr.Err != nil || jr.Result == nil {
			t.Fatalf("job %d: %+v", i, jr)
		}
	}
}

// namePanicker panics in Name itself - before runJob can record any
// identity for the job.
type namePanicker struct{}

func (namePanicker) Name() string    { panic("no name for you") }
func (namePanicker) Validate() error { return nil }
func (namePanicker) Run(ctx context.Context, sys *system.System) (Result, error) {
	return fixedResult{}, nil
}

func TestRunBatchPanickingName(t *testing.T) {
	r := &Runner{Workers: 1}
	br, err := r.RunWorkloads(context.Background(),
		namePanicker{}, &probe{name: "after-panicker"})
	if err != nil {
		t.Fatal(err)
	}
	jr := br.Results[0]
	if jr.Err == nil || !strings.Contains(jr.Err.Error(), "panicked") {
		t.Fatalf("panicking Name produced %+v, want a captured panic error", jr)
	}
	// Name never returned, so the report cannot carry one; the recover
	// path deliberately reports the empty name rather than guessing.
	if jr.Name != "" {
		t.Fatalf("panicking Name still reported name %q", jr.Name)
	}
	if jr.Result != nil {
		t.Fatal("panicking job carries a result")
	}
	// The panic neither kills the batch nor poisons the worker's pool.
	if jr := br.Results[1]; jr.Err != nil || jr.Name != "after-panicker" {
		t.Fatalf("job after panicker: %+v", jr)
	}
}

// TestRunBatchPanickingNameAfterCancel covers the other path a
// panicking Name can take: a job still unfed when the context is
// cancelled is labelled for its JobResult by the leftover loop, and
// that labelling must not let the panic abort the batch. Whether the
// panicking job is fed to the worker before the feeder observes the
// cancellation is inherently racy, so both outcomes are accepted - the
// invariant is that RunBatch survives and reports per job.
func TestRunBatchPanickingNameAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []Job{
		{Workload: &canceller{cancel: cancel}},
		{Workload: namePanicker{}},
	}
	r := &Runner{Workers: 1}
	br, err := r.RunBatch(ctx, jobs) // must not panic
	if err != context.Canceled {
		t.Fatalf("RunBatch error = %v, want context.Canceled", err)
	}
	jr := br.Results[1]
	switch {
	case jr.Err == context.Canceled && jr.Name == "":
		// Never fed: the leftover loop labelled it via safeName.
	case jr.Err != nil && strings.Contains(jr.Err.Error(), "panicked"):
		// Fed before the feeder saw the cancellation: runJob captured it.
	default:
		t.Fatalf("panicking-Name job reported %+v, want ctx error or captured panic", jr)
	}
}

// sysRecorder records the *system.System pointer each run received.
type sysRecorder struct {
	name string
	seen *[]*system.System
}

func (s *sysRecorder) Name() string    { return s.name }
func (s *sysRecorder) Validate() error { return nil }
func (s *sysRecorder) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	*s.seen = append(*s.seen, sys)
	return fixedResult{}, nil
}

// TestRunnerPoolsSystemsPerWorker proves the recycling path is actually
// taken: consecutive same-topology jobs on a one-worker batch run on
// the same board (recycled through Reset), and a topology change forces
// a rebuild.
func TestRunnerPoolsSystemsPerWorker(t *testing.T) {
	var seen []*system.System
	w := &sysRecorder{name: "sys-recorder", seen: &seen}
	r := &Runner{Workers: 1}
	jobs := []Job{
		{Workload: w},
		{Workload: w},
		{Workload: w, Options: []Option{WithTopology(system.E16)}},
		{Workload: w},
	}
	br, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("recorded %d systems, want 4", len(seen))
	}
	if seen[0] != seen[1] {
		t.Error("consecutive same-topology jobs did not recycle the worker's System")
	}
	if seen[1] == seen[2] {
		t.Error("topology change reused the cached System")
	}
	if seen[2] == seen[3] {
		t.Error("default-topology job reused the E16 board")
	}
}

// TestRunnerRecycledSystemsBitDeterministic is the semantic half of the
// pooling contract: a batch that recycles boards produces byte-identical
// Metrics to one-shot runs on fresh boards.
func TestRunnerRecycledSystemsBitDeterministic(t *testing.T) {
	names := []string{"stencil-tuned", "matmul-cannon", "stencil-tuned", "matmul-cannon"}
	jobs := make([]Job, len(names))
	for i, n := range names {
		w, ok := ByName(n)
		if !ok {
			t.Fatalf("workload %q not registered", n)
		}
		jobs[i] = Job{Workload: w}
	}
	r := &Runner{Workers: 1} // one worker => jobs 2 and 3 run on recycled boards
	br, err := r.RunBatch(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	for i, jr := range br.Results {
		w, _ := ByName(names[i])
		fresh, err := Run(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := jr.Result.Metrics(), fresh.Metrics(); got != want {
			t.Errorf("job %d (%s) on a recycled board drifted:\n got  %+v\n want %+v", i, names[i], got, want)
		}
	}
}

func TestRunnerCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 8
	jobs := make([]Job, n)
	jobs[0] = Job{Workload: &canceller{cancel: cancel}}
	for i := 1; i < n; i++ {
		jobs[i] = Job{Workload: &probe{name: fmt.Sprintf("late-%d", i)}}
	}
	r := &Runner{Workers: 1}
	batch, err := r.RunBatch(ctx, jobs)
	if err != context.Canceled {
		t.Fatalf("RunBatch error = %v, want context.Canceled", err)
	}
	if batch.Results[0].Err != nil {
		t.Fatalf("in-flight job aborted: %v", batch.Results[0].Err)
	}
	for i := 1; i < n; i++ {
		jr := batch.Results[i]
		if jr.Err == nil {
			t.Fatalf("job %d ran to completion after cancellation", i)
		}
		if jr.Name == "" {
			t.Fatalf("job %d lost its workload name", i)
		}
		if !strings.Contains(jr.Err.Error(), context.Canceled.Error()) {
			t.Fatalf("job %d error = %v, want context.Canceled", i, jr.Err)
		}
	}
	if batch.Err() == nil {
		t.Fatal("batch with cancelled jobs reports no error")
	}
}

// canceller cancels the batch context from inside its own run, then
// completes normally - the in-flight simulation is never aborted.
type canceller struct {
	cancel context.CancelFunc
}

func (c *canceller) Name() string    { return "canceller" }
func (c *canceller) Validate() error { return nil }
func (c *canceller) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	c.cancel()
	return fixedResult{}, nil
}
