package workload

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"epiphany/internal/core"
	"epiphany/internal/system"
)

// probe is a minimal workload that records the geometry of the board it
// was handed and the seed it was rebased onto.
type probe struct {
	name  string
	seed  uint64
	rows  *int
	cols  *int
	chips *int
}

func (p *probe) Name() string    { return p.name }
func (p *probe) Validate() error { return nil }
func (p *probe) Reseed(seed uint64) Workload {
	c := *p
	c.seed = seed
	return &c
}
func (p *probe) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	m := sys.Chip().Map()
	if p.rows != nil {
		*p.rows, *p.cols, *p.chips = m.Rows, m.Cols, m.NumChips()
	}
	return fixedResult{}, nil
}

type fixedResult struct{}

func (fixedResult) Metrics() Metrics { return Metrics{} }

func TestRegisterRejectsNilUnnamedAndDuplicates(t *testing.T) {
	mustPanic := func(what string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", what)
			}
		}()
		fn()
	}
	mustPanic("nil", func() { Register(nil) })
	mustPanic("unnamed", func() { Register(&probe{}) })
	Register(&probe{name: "test-dup-probe"})
	mustPanic("duplicate", func() { Register(&probe{name: "test-dup-probe"}) })
}

func TestRegistryLookupAndOrdering(t *testing.T) {
	if _, ok := ByName("stencil-tuned"); !ok {
		t.Fatal("built-in stencil-tuned not registered")
	}
	if _, ok := ByName("no-such-workload"); ok {
		t.Fatal("lookup of unknown name succeeded")
	}
	all := All()
	if len(all) < len(builtins) {
		t.Fatalf("All returned %d workloads, want >= %d built-ins", len(all), len(builtins))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Fatalf("All not sorted: %q before %q", all[i-1].Name(), all[i].Name())
		}
	}
}

func TestRunValidateFailures(t *testing.T) {
	cases := []struct {
		label string
		w     Workload
	}{
		{"negative stencil rows", &Stencil{Config: core.StencilConfig{
			Rows: -1, Cols: 20, Iters: 1, GroupRows: 1, GroupCols: 1}}},
		{"untiled tuned cols", &Stencil{Config: core.StencilConfig{
			Rows: 20, Cols: 19, Iters: 1, GroupRows: 1, GroupCols: 1, Tuned: true}}},
		{"bad matmul group edge", &Matmul{Config: core.MatmulConfig{
			M: 64, N: 64, K: 64, G: 3}}},
		{"off-chip SUMMA", &Matmul{Config: core.MatmulConfig{
			M: 64, N: 64, K: 64, G: 4, OffChip: true, Algorithm: "summa"}}},
		{"untileable stream grid", &StreamStencil{Config: core.StreamStencilConfig{
			GlobalRows: 100, GlobalCols: 100, BlockRows: 16, BlockCols: 16,
			Iters: 1, TBlock: 1, GroupRows: 1, GroupCols: 1}}},
	}
	for _, c := range cases {
		if _, err := Run(context.Background(), c.w); err == nil {
			t.Errorf("%s: Run succeeded, want validation error", c.label)
		}
	}
	if _, err := Run(context.Background(), nil); err == nil {
		t.Error("Run of nil workload succeeded")
	}
}

func TestRunOptionPlumbing(t *testing.T) {
	var rows, cols, chips int
	p := &probe{name: "opt-probe", rows: &rows, cols: &cols, chips: &chips}

	if _, err := Run(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if rows != 8 || cols != 8 || chips != 1 {
		t.Fatalf("default board %dx%d/%d chips, want 8x8/1", rows, cols, chips)
	}

	if _, err := Run(context.Background(), p, WithMeshSize(2, 3)); err != nil {
		t.Fatal(err)
	}
	if rows != 2 || cols != 3 || chips != 1 {
		t.Fatalf("WithMeshSize board %dx%d/%d chips, want 2x3/1", rows, cols, chips)
	}

	if _, err := Run(context.Background(), p, WithTopology(system.Cluster2x2)); err != nil {
		t.Fatal(err)
	}
	if rows != 8 || cols != 8 || chips != 4 {
		t.Fatalf("cluster board %dx%d/%d chips, want 8x8/4", rows, cols, chips)
	}

	if _, err := Run(context.Background(), p, WithTopology(system.Topology{})); err == nil {
		t.Fatal("invalid topology accepted")
	}

	// WithSeed rebases via Reseeder without mutating the original.
	got := make(chan uint64, 1)
	seeded := &seedProbe{probe: probe{name: "seed-probe"}, got: got}
	if _, err := Run(context.Background(), seeded, WithSeed(42)); err != nil {
		t.Fatal(err)
	}
	if s := <-got; s != 42 {
		t.Fatalf("workload ran with seed %d, want 42", s)
	}
	if seeded.seed != 0 {
		t.Fatal("WithSeed mutated the registered workload")
	}

	// WithSeed on a non-Reseeder is refused.
	if _, err := Run(context.Background(), nonReseeder{}, WithSeed(1)); err == nil {
		t.Fatal("WithSeed on a non-Reseeder succeeded")
	}

	// WithTrace emits the heatmaps after a real run.
	var buf bytes.Buffer
	w := &Stencil{Config: core.StencilConfig{
		Rows: 4, Cols: 4, Iters: 1, GroupRows: 1, GroupCols: 1, Seed: 1}}
	if _, err := Run(context.Background(), w, WithTrace(&buf)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("WithTrace wrote nothing")
	}
}

type seedProbe struct {
	probe
	got chan uint64
}

func (s *seedProbe) Reseed(seed uint64) Workload {
	c := *s
	c.seed = seed
	return &c
}

func (s *seedProbe) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	s.got <- s.seed
	return fixedResult{}, nil
}

type nonReseeder struct{}

func (nonReseeder) Name() string    { return "non-reseeder" }
func (nonReseeder) Validate() error { return nil }
func (nonReseeder) Run(ctx context.Context, sys *system.System) (Result, error) {
	return fixedResult{}, nil
}

func TestFitTopologyClampsBuiltins(t *testing.T) {
	st := &Stencil{Config: core.StencilConfig{
		Rows: 40, Cols: 20, Iters: 1, GroupRows: 8, GroupCols: 8}}
	if got := st.FitTopology(8, 8); got != Workload(st) {
		t.Fatal("stencil fit of an already-fitting group must return the receiver")
	}
	fit := st.FitTopology(4, 4).(*Stencil)
	if fit.Config.GroupRows != 4 || fit.Config.GroupCols != 4 {
		t.Fatalf("stencil fit to 4x4 got %dx%d group", fit.Config.GroupRows, fit.Config.GroupCols)
	}
	if st.Config.GroupRows != 8 {
		t.Fatal("fit mutated the original stencil workload")
	}

	mm := &Matmul{Config: core.MatmulConfig{M: 128, N: 128, K: 128, G: 8, OffChip: true}}
	mfit := mm.FitTopology(4, 4).(*Matmul)
	if mfit.Config.G != 4 {
		t.Fatalf("matmul fit to 4x4 got G=%d, want 4", mfit.Config.G)
	}
	if mm.FitTopology(8, 8) != Workload(mm) {
		t.Fatal("matmul fit of a fitting group must return the receiver")
	}

	ss := &StreamStencil{Config: core.StreamStencilConfig{
		GlobalRows: 128, GlobalCols: 128, BlockRows: 16, BlockCols: 16,
		Iters: 1, TBlock: 1, GroupRows: 8, GroupCols: 8}}
	sfit := ss.FitTopology(4, 4).(*StreamStencil)
	if sfit.Config.GroupRows != 4 || sfit.Config.GroupCols != 4 {
		t.Fatalf("stream fit to 4x4 got %dx%d group", sfit.Config.GroupRows, sfit.Config.GroupCols)
	}
	if err := sfit.Validate(); err != nil {
		t.Fatalf("fitted stream stencil invalid: %v", err)
	}
}

// Every registered workload must run on every preset topology - the
// contract the conformance harness pins numerically at the repo root.
func TestBuiltinsRunOnEveryTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry x topology sweep")
	}
	for _, topo := range system.Topologies() {
		for _, w := range builtins {
			res, err := Run(context.Background(), w, WithTopology(topo))
			if err != nil {
				t.Errorf("%s on %s: %v", w.Name(), topo.Name, err)
				continue
			}
			if m := res.Metrics(); m.GFLOPS <= 0 {
				t.Errorf("%s on %s: GFLOPS = %v", w.Name(), topo.Name, m.GFLOPS)
			}
			if !topo.MultiChip() && res.Metrics().ELinkCrossings != 0 {
				t.Errorf("%s on %s: crossings on a single chip", w.Name(), topo.Name)
			}
		}
	}
}

func TestRunnerCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 8
	jobs := make([]Job, n)
	jobs[0] = Job{Workload: &canceller{cancel: cancel}}
	for i := 1; i < n; i++ {
		jobs[i] = Job{Workload: &probe{name: fmt.Sprintf("late-%d", i)}}
	}
	r := &Runner{Workers: 1}
	batch, err := r.RunBatch(ctx, jobs)
	if err != context.Canceled {
		t.Fatalf("RunBatch error = %v, want context.Canceled", err)
	}
	if batch.Results[0].Err != nil {
		t.Fatalf("in-flight job aborted: %v", batch.Results[0].Err)
	}
	for i := 1; i < n; i++ {
		jr := batch.Results[i]
		if jr.Err == nil {
			t.Fatalf("job %d ran to completion after cancellation", i)
		}
		if jr.Name == "" {
			t.Fatalf("job %d lost its workload name", i)
		}
		if !strings.Contains(jr.Err.Error(), context.Canceled.Error()) {
			t.Fatalf("job %d error = %v, want context.Canceled", i, jr.Err)
		}
	}
	if batch.Err() == nil {
		t.Fatal("batch with cancelled jobs reports no error")
	}
}

// canceller cancels the batch context from inside its own run, then
// completes normally - the in-flight simulation is never aborted.
type canceller struct {
	cancel context.CancelFunc
}

func (c *canceller) Name() string    { return "canceller" }
func (c *canceller) Validate() error { return nil }
func (c *canceller) Run(ctx context.Context, sys *system.System) (Result, error) {
	if err := sys.Acquire(); err != nil {
		return nil, err
	}
	c.cancel()
	return fixedResult{}, nil
}
