package workload

import (
	"epiphany/internal/system"
)

// statsResult decorates a workload's Result with the engine's scheduler
// counters, the same shape as energyResult: the underlying result stays
// reachable through Unwrap.
type statsResult struct {
	Result
	metrics Metrics
}

// Metrics reports the inner result's metrics with Engine filled in.
func (r *statsResult) Metrics() Metrics { return r.metrics }

// Unwrap returns the undecorated result.
func (r *statsResult) Unwrap() Result { return r.Result }

// attachEngineStats snapshots the engine's scheduler counters into the
// result's Metrics.Engine. It must run before the System is reset or
// recycled (the counters are engine state).
func attachEngineStats(res Result, sys *system.System) Result {
	st := sys.Engine().Stats()
	m := res.Metrics()
	m.Engine = &st
	return &statsResult{Result: res, metrics: m}
}
