package mem

import (
	"fmt"
	"sort"
)

// Region is a named reservation in a core's 32 KB scratchpad.
type Region struct {
	Name string
	Off  Addr
	Size int
}

// End returns the first offset past the region.
func (r Region) End() Addr { return r.Off + Addr(r.Size) }

// Banks returns the inclusive range of banks the region touches.
func (r Region) Banks() (first, last int) {
	return BankOf(r.Off), BankOf(r.End() - 1)
}

// Layout is a static allocation plan for one core's scratchpad. It is how
// the simulator enforces the constraint at the heart of the paper: 32 KB
// must hold code, data and stack, and performance-critical placement is
// explicit (e.g. §VII puts matrix A at 0x4000, B at 0x5800, C at 0x7000
// with 2 KB rotation buffers beside A and B).
//
// Layouts fail loudly: reserving overlapping or out-of-range regions
// returns an error, which is exactly the feedback a programmer gets from
// the real linker scripts (or from a crash).
type Layout struct {
	regions []Region
}

// NewLayout returns an empty plan.
func NewLayout() *Layout { return &Layout{} }

// Reset discards every reservation, returning the plan to empty.
func (l *Layout) Reset() { l.regions = l.regions[:0] }

// PlaceAt reserves [off, off+size) under name. It fails if the range
// leaves the 32 KB scratchpad or collides with an earlier reservation.
func (l *Layout) PlaceAt(name string, off Addr, size int) (Region, error) {
	if size <= 0 {
		return Region{}, fmt.Errorf("mem: region %q has non-positive size %d", name, size)
	}
	if int(off)+size > SRAMSize {
		return Region{}, fmt.Errorf("mem: region %q [%#x,%#x) exceeds 32 KB scratchpad",
			name, off, int(off)+size)
	}
	r := Region{Name: name, Off: off, Size: size}
	for _, o := range l.regions {
		if r.Off < o.End() && o.Off < r.End() {
			return Region{}, fmt.Errorf("mem: region %q [%#x,%#x) overlaps %q [%#x,%#x)",
				name, r.Off, r.End(), o.Name, o.Off, o.End())
		}
	}
	l.regions = append(l.regions, r)
	sort.Slice(l.regions, func(i, j int) bool { return l.regions[i].Off < l.regions[j].Off })
	return r, nil
}

// MustPlaceAt is PlaceAt that panics on error, for layouts that are
// statically known to fit (kernel construction).
func (l *Layout) MustPlaceAt(name string, off Addr, size int) Region {
	r, err := l.PlaceAt(name, off, size)
	if err != nil {
		panic(err)
	}
	return r
}

// Alloc reserves size bytes in the lowest free gap that starts in bank
// bank (or any bank if bank < 0), aligned to align (a power of two; 0 or 1
// means byte-aligned).
func (l *Layout) Alloc(name string, size int, bank int, align Addr) (Region, error) {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		return Region{}, fmt.Errorf("mem: alignment %d not a power of two", align)
	}
	lo, hi := Addr(0), Addr(SRAMSize)
	if bank >= 0 {
		if bank >= NumBanks {
			return Region{}, fmt.Errorf("mem: bank %d out of range", bank)
		}
		lo, hi = Addr(bank)*BankSize, Addr(bank+1)*BankSize
	}
	cursor := (lo + align - 1) &^ (align - 1)
	for _, o := range l.regions {
		if o.End() <= cursor {
			continue
		}
		if o.Off >= cursor+Addr(size) {
			break // gap before o fits
		}
		cursor = (o.End() + align - 1) &^ (align - 1)
	}
	if cursor+Addr(size) > hi || cursor < lo {
		where := "scratchpad"
		if bank >= 0 {
			where = fmt.Sprintf("bank %d", bank)
		}
		return Region{}, fmt.Errorf("mem: no room for %q (%d bytes) in %s: %s",
			name, size, where, l.describeUse())
	}
	return l.PlaceAt(name, cursor, size)
}

// Region returns the reservation under name, if present.
func (l *Layout) Region(name string) (Region, bool) {
	for _, r := range l.regions {
		if r.Name == name {
			return r, true
		}
	}
	return Region{}, false
}

// Regions returns all reservations in address order.
func (l *Layout) Regions() []Region {
	out := make([]Region, len(l.regions))
	copy(out, l.regions)
	return out
}

// Used returns the total reserved bytes.
func (l *Layout) Used() int {
	n := 0
	for _, r := range l.regions {
		n += r.Size
	}
	return n
}

// Free returns the unreserved bytes in the scratchpad.
func (l *Layout) Free() int { return SRAMSize - l.Used() }

// BankUse returns the reserved byte count per bank.
func (l *Layout) BankUse() [NumBanks]int {
	var use [NumBanks]int
	for _, r := range l.regions {
		for off := r.Off; off < r.End(); {
			b := BankOf(off)
			end := Addr(b+1) * BankSize
			if end > r.End() {
				end = r.End()
			}
			use[b] += int(end - off)
			off = end
		}
	}
	return use
}

func (l *Layout) describeUse() string {
	use := l.BankUse()
	return fmt.Sprintf("bank use %v of %d each", use, BankSize)
}

// String renders the plan, one region per line, for diagnostics and docs.
func (l *Layout) String() string {
	s := ""
	for _, r := range l.regions {
		s += fmt.Sprintf("%-12s [%#06x,%#06x) %5d B  banks %d-%d\n",
			r.Name, r.Off, r.End(), r.Size, func() int { f, _ := r.Banks(); return f }(),
			func() int { _, la := r.Banks(); return la }())
	}
	return s
}
