package mem

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCoreIDRoundTrip(t *testing.T) {
	for r := 0; r < 64; r++ {
		for c := 0; c < 64; c++ {
			id := MakeCoreID(r, c)
			if id.Row() != r || id.Col() != c {
				t.Fatalf("MakeCoreID(%d,%d) round-trip gave (%d,%d)", r, c, id.Row(), id.Col())
			}
		}
	}
}

func TestGlobalAddressMatchesHardwareLayout(t *testing.T) {
	// Core (0,0) of the E64G401 sits at mesh (32,8) -> ID 0x808 ->
	// global base 0x80800000, as documented in the datasheet.
	m := NewMap(8, 8)
	if got := m.CoreIDOf(0); got != 0x808 {
		t.Fatalf("core 0 ID = %#x, want 0x808", got)
	}
	if got := m.GlobalOf(0, 0); got != 0x80800000 {
		t.Fatalf("core 0 base = %#x, want 0x80800000", got)
	}
	// Core (7,7) -> mesh (39,15) -> ID (39<<6)|15 = 0x9CF.
	if got := m.GlobalOf(m.CoreIndex(7, 7), 0x100); got != 0x9CF00100 {
		t.Fatalf("core (7,7)+0x100 = %#x, want 0x9CF00100", got)
	}
}

func TestDecodeLocalAlias(t *testing.T) {
	m := NewMap(8, 8)
	tgt := m.Decode(42, 0x1234)
	if tgt.Kind != KindLocal || tgt.Core != 42 || tgt.Off != 0x1234 {
		t.Fatalf("Decode local = %+v", tgt)
	}
	// Beyond SRAM but under the 1MB window: unmapped.
	if tgt := m.Decode(0, 0x8000); tgt.Kind != KindInvalid {
		t.Fatalf("0x8000 decoded as %v, want invalid", tgt.Kind)
	}
}

func TestDecodeRemoteCore(t *testing.T) {
	m := NewMap(8, 8)
	a := m.GlobalOf(m.CoreIndex(3, 5), 0x2000)
	tgt := m.Decode(0, a)
	if tgt.Kind != KindCore || tgt.Core != m.CoreIndex(3, 5) || tgt.Off != 0x2000 {
		t.Fatalf("Decode remote = %+v", tgt)
	}
	// A core's own global window decodes as KindCore (self-reference).
	self := m.GlobalOf(7, 0x10)
	tgt = m.Decode(7, self)
	if tgt.Kind != KindCore || tgt.Core != 7 {
		t.Fatalf("self-global decode = %+v", tgt)
	}
}

func TestDecodeDRAM(t *testing.T) {
	m := NewMap(8, 8)
	tgt := m.Decode(0, DRAMBase+0x100)
	if tgt.Kind != KindDRAM || tgt.Off != 0x100 {
		t.Fatalf("Decode DRAM = %+v", tgt)
	}
	if tgt := m.Decode(0, DRAMBase+DRAMSize); tgt.Kind != KindInvalid {
		t.Fatalf("past-end DRAM decoded as %v", tgt.Kind)
	}
}

func TestDecodeOffChipCoreInvalid(t *testing.T) {
	m := NewMap(8, 8)
	// Mesh node (1,1) exists in the 64x64 global space but not on this chip.
	a := MakeCoreID(1, 1).Global(0)
	if tgt := m.Decode(0, a); tgt.Kind != KindInvalid {
		t.Fatalf("off-chip core decoded as %v", tgt.Kind)
	}
	// SRAM hole in an on-chip core's window.
	a = m.CoreIDOf(5).Global(0) + SRAMSize
	if tgt := m.Decode(0, a); tgt.Kind != KindInvalid {
		t.Fatalf("SRAM hole decoded as %v", tgt.Kind)
	}
}

func TestDecodeRoundTripProperty(t *testing.T) {
	m := NewMap(8, 8)
	f := func(core uint8, off uint16) bool {
		idx := int(core) % m.NumCores()
		o := Addr(off) % SRAMSize
		tgt := m.Decode(0, m.GlobalOf(idx, o))
		return tgt.Kind == KindCore && tgt.Core == idx && tgt.Off == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoreIndexCoordsRoundTrip(t *testing.T) {
	m := NewMap(8, 8)
	for i := 0; i < m.NumCores(); i++ {
		r, c := m.CoreCoords(i)
		if m.CoreIndex(r, c) != i {
			t.Fatalf("coords round-trip broke at %d", i)
		}
	}
}

func TestBankOf(t *testing.T) {
	cases := []struct {
		off  Addr
		bank int
	}{{0, 0}, {0x1FFF, 0}, {0x2000, 1}, {0x3FFF, 1}, {0x4000, 2}, {0x6000, 3}, {0x7FFF, 3}}
	for _, c := range cases {
		if got := BankOf(c.off); got != c.bank {
			t.Errorf("BankOf(%#x) = %d, want %d", c.off, got, c.bank)
		}
	}
}

func TestSRAMAccessors(t *testing.T) {
	s := NewSRAM()
	s.Store32(0x100, 0xDEADBEEF)
	if got := s.Load32(0x100); got != 0xDEADBEEF {
		t.Fatalf("Load32 = %#x", got)
	}
	// Little-endian byte order.
	if got := s.Load8(0x100); got != 0xEF {
		t.Fatalf("byte 0 = %#x, want 0xEF (little-endian)", got)
	}
	s.Store64(0x200, 0x0102030405060708)
	if got := s.Load64(0x200); got != 0x0102030405060708 {
		t.Fatalf("Load64 = %#x", got)
	}
	s.StoreF32(0x300, 3.5)
	if got := s.LoadF32(0x300); got != 3.5 {
		t.Fatalf("LoadF32 = %v", got)
	}
}

func TestSRAMBoundsPanic(t *testing.T) {
	s := NewSRAM()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range store should panic")
		}
	}()
	s.Store32(SRAMSize-2, 1)
}

func TestCopyBetweenSRAMs(t *testing.T) {
	a, b := NewSRAM(), NewSRAM()
	for i := 0; i < 16; i++ {
		a.Store8(Addr(i), uint8(i+1))
	}
	Copy(b, 0x40, a, 0, 16)
	for i := 0; i < 16; i++ {
		if b.Load8(Addr(0x40+i)) != uint8(i+1) {
			t.Fatalf("byte %d not copied", i)
		}
	}
}

func TestDRAMAccessors(t *testing.T) {
	d := NewDRAM()
	if d.Size() != DRAMSize {
		t.Fatalf("DRAM size = %d", d.Size())
	}
	d.StoreF32(0x1000, -2.25)
	if got := d.LoadF32(0x1000); got != -2.25 {
		t.Fatalf("DRAM float = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range DRAM access should panic")
		}
	}()
	d.Load32(DRAMSize - 1)
}

func TestLayoutPlaceAtAndOverlap(t *testing.T) {
	l := NewLayout()
	if _, err := l.PlaceAt("code", 0, 0x2000); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PlaceAt("clash", 0x1FFF, 16); err == nil {
		t.Fatal("overlap not detected")
	}
	if _, err := l.PlaceAt("huge", 0x7000, 0x2000); err == nil {
		t.Fatal("out-of-SRAM placement not detected")
	}
	if _, err := l.PlaceAt("empty", 0x3000, 0); err == nil {
		t.Fatal("zero-size region not rejected")
	}
}

func TestLayoutPaperMatmulPlan(t *testing.T) {
	// The exact §VII layout: code in banks 0-1, stack in bank 1, A at
	// 0x4000, its rotation buffer at 0x5000, B at 0x5800, its buffer at
	// 0x6800, C at 0x7000. It must all fit; a double-buffered plan must not.
	l := NewLayout()
	mustPlace := func(name string, off Addr, size int) {
		t.Helper()
		if _, err := l.PlaceAt(name, off, size); err != nil {
			t.Fatal(err)
		}
	}
	mustPlace("code", 0x0000, 13*1024/1024*1024) // 13 KB of code+macros
	mustPlace("stack", 0x3400, 0x0C00)
	mustPlace("A", 0x4000, 0x1000)
	mustPlace("Abuf", 0x5000, 0x0800)
	mustPlace("B", 0x5800, 0x1000)
	mustPlace("Bbuf", 0x6800, 0x0800)
	mustPlace("C", 0x7000, 0x1000)
	if l.Free() < 0 {
		t.Fatal("plan should fit")
	}

	// Full double buffering of 32x32 operands (3x4 KB + 2x4 KB extra)
	// alongside 13 KB of code cannot fit - the reason the paper invents
	// the half-buffer rotation scheme.
	l2 := NewLayout()
	if _, err := l2.PlaceAt("code", 0, 13*1024); err != nil {
		t.Fatal(err)
	}
	need := []int{4096, 4096, 4096, 4096, 4096} // A, A', B, B', C
	var err error
	for i, sz := range need {
		if _, err = l2.Alloc("buf", sz, -1, 8); err != nil {
			if i < 4 {
				t.Fatalf("only %d of 5 buffers placed before overflow; paper implies 4 fit (code 13KB + 16KB + stack impossible)", i)
			}
			break
		}
	}
	if err == nil {
		t.Fatal("double-buffered 32x32 plan should NOT fit in 32 KB with 13 KB code")
	}
}

func TestLayoutAllocBankAffinity(t *testing.T) {
	l := NewLayout()
	r, err := l.Alloc("d1", 1024, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b := BankOf(r.Off); b != 2 {
		t.Fatalf("allocated in bank %d, want 2", b)
	}
	// Fill bank 2 and confirm refusal.
	if _, err := l.Alloc("d2", BankSize-1024, 2, 1); err != nil {
		t.Fatal(err)
	}
	_, err = l.Alloc("d3", 64, 2, 1)
	if err == nil || !strings.Contains(err.Error(), "bank 2") {
		t.Fatalf("err = %v, want bank-2 overflow", err)
	}
}

func TestLayoutAllocSkipsReservations(t *testing.T) {
	l := NewLayout()
	l.MustPlaceAt("hole", 0x100, 0x100)
	r, err := l.Alloc("a", 0x100, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Off != 0 {
		t.Fatalf("first gap at %#x, want 0", r.Off)
	}
	r2, err := l.Alloc("b", 0x200, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Off != 0x200 {
		t.Fatalf("second alloc at %#x, want 0x200 (after hole)", r2.Off)
	}
}

func TestLayoutAccounting(t *testing.T) {
	l := NewLayout()
	l.MustPlaceAt("x", 0x1F00, 0x200) // straddles banks 0 and 1
	use := l.BankUse()
	if use[0] != 0x100 || use[1] != 0x100 {
		t.Fatalf("bank use = %v, want 256 in banks 0 and 1", use)
	}
	if l.Used() != 0x200 || l.Free() != SRAMSize-0x200 {
		t.Fatalf("used/free = %d/%d", l.Used(), l.Free())
	}
	if _, ok := l.Region("x"); !ok {
		t.Fatal("Region lookup failed")
	}
	if _, ok := l.Region("y"); ok {
		t.Fatal("phantom region")
	}
	if s := l.String(); !strings.Contains(s, "x") {
		t.Fatalf("String() = %q", s)
	}
}

func TestLayoutAlignment(t *testing.T) {
	l := NewLayout()
	l.MustPlaceAt("pad", 0, 3)
	r, err := l.Alloc("aligned", 16, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Off != 8 {
		t.Fatalf("aligned alloc at %#x, want 8", r.Off)
	}
	if _, err := l.Alloc("bad", 8, 0, 3); err == nil {
		t.Fatal("non-power-of-two alignment accepted")
	}
}

func TestSRAMResetZeroes(t *testing.T) {
	s := NewSRAM()
	s.Store32(0, 0xDEADBEEF)
	s.Store64(SRAMSize-8, ^uint64(0))
	s.Reset()
	if s.Load32(0) != 0 || s.Load64(SRAMSize-8) != 0 {
		t.Fatal("Reset left bytes behind")
	}
}

func TestNewSRAMsAreIndependent(t *testing.T) {
	srams := NewSRAMs(4)
	if len(srams) != 4 {
		t.Fatalf("NewSRAMs(4) returned %d scratchpads", len(srams))
	}
	srams[1].Store32(0x100, 42)
	for i, s := range srams {
		want := uint32(0)
		if i == 1 {
			want = 42
		}
		if got := s.Load32(0x100); got != want {
			t.Fatalf("sram %d reads %d, want %d", i, got, want)
		}
	}
}

func TestDRAMResetUsesWatermark(t *testing.T) {
	d := NewDRAM()
	d.Store32(0, 1)
	d.StoreF32(1<<20, 2.5)
	d.Reset()
	if d.Load32(0) != 0 || d.LoadF32(1<<20) != 0 {
		t.Fatal("Reset left dirty bytes")
	}
	// Repeated cycles still clear.
	d.Store32(64, 7)
	d.Reset()
	if d.Load32(64) != 0 {
		t.Fatal("second Reset left dirty bytes")
	}
	// Reads advance the watermark too (Bytes aliases are writable), so
	// a write through an aliased slice is still cleared.
	b := d.Bytes(4096, 8)
	b[0] = 0xFF
	d.Reset()
	if d.Load32(4096) != 0 {
		t.Fatal("write through aliased Bytes slice survived Reset")
	}
	// The watermark never retreats: a write through a stale alias
	// after a Reset (a retained slice from an earlier run) is still
	// inside the prefix the next Reset clears.
	b[4] = 0xAA
	d.Reset()
	if d.Load32(4100) != 0 {
		t.Fatal("post-Reset write through stale alias survived the next Reset")
	}
}

func TestLayoutReset(t *testing.T) {
	l := NewLayout()
	l.MustPlaceAt("a", 0x4000, 128)
	l.Reset()
	if l.Used() != 0 || len(l.Regions()) != 0 {
		t.Fatal("Reset left reservations")
	}
	if _, err := l.PlaceAt("a", 0x4000, 128); err != nil {
		t.Fatalf("re-placing after Reset: %v", err)
	}
}
