// Package mem models the Epiphany's flat, unprotected 32-bit address space:
// per-eCore 32 KB scratchpad SRAM organized as four 8 KB banks, globally
// addressable core memory windows (core row/column encoded in the top 12
// address bits, as on the real chip), and the off-chip shared DRAM window
// that the ARM host and the eCores both map.
//
// The package is purely functional (no timing): the NoC and core models
// charge time for accesses; this package says where bytes live and keeps
// the accounting that makes the paper's memory-pressure arguments (code vs
// data vs stack in 4 banks) checkable.
package mem

import "fmt"

// Addr is a 32-bit Epiphany global address.
type Addr uint32

// Architectural constants of the E64G401 as described in the paper and the
// Epiphany architecture reference.
const (
	// SRAMSize is the per-core local memory: 32 KB.
	SRAMSize = 32 * 1024
	// BankSize is the size of one of the four local memory banks: 8 KB.
	BankSize = 8 * 1024
	// NumBanks is the number of local memory banks per core.
	NumBanks = SRAMSize / BankSize
	// coreShift positions the 12-bit core ID in the top address bits.
	coreShift = 20
	// coreColBits is the width of the column field within the core ID.
	coreColBits = 6
	// FirstRow and FirstCol are the mesh coordinates of core (0,0) on the
	// E64G401 (the chip occupies rows 32-39, columns 8-15 of the global
	// 64x64 mesh address space).
	FirstRow = 32
	FirstCol = 8
	// DRAMBase is where the shared-memory window begins on the Parallella/
	// ZedBoard memory map.
	DRAMBase Addr = 0x8E000000
	// DRAMSize is the shared window size: 32 MB on the ZedBoard setup.
	DRAMSize = 32 * 1024 * 1024
)

// CoreID is the 12-bit mesh node ID ((row<<6)|col) used in global addresses.
type CoreID uint16

// MakeCoreID builds a CoreID from absolute mesh coordinates.
func MakeCoreID(row, col int) CoreID {
	return CoreID(row<<coreColBits | col)
}

// Row returns the absolute mesh row of the core.
func (id CoreID) Row() int { return int(id) >> coreColBits }

// Col returns the absolute mesh column of the core.
func (id CoreID) Col() int { return int(id) & (1<<coreColBits - 1) }

// String formats the ID as (row,col) in chip-relative coordinates when
// possible, falling back to absolute coordinates.
func (id CoreID) String() string {
	return fmt.Sprintf("core(%d,%d)", id.Row()-FirstRow, id.Col()-FirstCol)
}

// GlobalBase returns the base global address of the core's 1 MB window.
func (id CoreID) GlobalBase() Addr { return Addr(id) << coreShift }

// Global returns the global address of local offset off in this core's SRAM.
func (id CoreID) Global(off Addr) Addr { return id.GlobalBase() | (off & (1<<coreShift - 1)) }

// Kind classifies what an address refers to.
type Kind uint8

// Address kinds returned by Map.Decode.
const (
	KindInvalid Kind = iota // outside every mapped window
	KindLocal               // 0x0000-0x7FFF alias for the issuing core's SRAM
	KindCore                // another (or the same) core's SRAM via global window
	KindDRAM                // shared off-chip memory window
)

func (k Kind) String() string {
	switch k {
	case KindLocal:
		return "local"
	case KindCore:
		return "core"
	case KindDRAM:
		return "dram"
	default:
		return "invalid"
	}
}

// Target is a decoded address.
type Target struct {
	Kind Kind
	// Core identifies the owning core for KindCore targets (chip-relative
	// linear index row*cols+col).
	Core int
	// Off is the byte offset within the target's memory (SRAM or DRAM).
	Off Addr
}

// Map describes the board's address geometry: how many rows and columns
// of cores in total, anchored at (FirstRow, FirstCol), how those cores
// are partitioned into chips, plus the DRAM window.
//
// A single-chip map has ChipRows == Rows and ChipCols == Cols. On a
// multi-chip board the chips tile the mesh coordinate space contiguously
// (each chip's eCoreID origin register is programmed so that neighbouring
// chips are address-adjacent, exactly as real Parallella clusters glue
// their eMeshes together through the chip-to-chip eLinks), so the global
// address scheme stays a single flat (row<<6|col)<<20 space spanning
// every chip on the board.
type Map struct {
	Rows, Cols int
	// ChipRows, ChipCols are the per-chip core dimensions. Zero values
	// (a Map literal from before boards existed) mean single-chip.
	ChipRows, ChipCols int
}

// NewMap returns the address map for a rows x cols chip. The 64-core
// Epiphany-IV is NewMap(8, 8).
func NewMap(rows, cols int) *Map {
	return NewBoardMap(1, 1, rows, cols)
}

// NewBoardMap returns the address map for a board of chipRows x chipCols
// chips, each coreRows x coreCols cores. The 2x2 Parallella cluster of
// E16 chips is NewBoardMap(2, 2, 4, 4).
func NewBoardMap(chipRows, chipCols, coreRows, coreCols int) *Map {
	if chipRows <= 0 || chipCols <= 0 || coreRows <= 0 || coreCols <= 0 {
		panic(fmt.Sprintf("mem: invalid board geometry %dx%d chips of %dx%d",
			chipRows, chipCols, coreRows, coreCols))
	}
	rows, cols := chipRows*coreRows, chipCols*coreCols
	if FirstRow+rows > 64 || FirstCol+cols > 64 {
		panic(fmt.Sprintf("mem: %dx%d board does not fit the 64x64 mesh address space", rows, cols))
	}
	return &Map{Rows: rows, Cols: cols, ChipRows: coreRows, ChipCols: coreCols}
}

// NumCores returns the number of cores in the map.
func (m *Map) NumCores() int { return m.Rows * m.Cols }

// ChipDims returns the per-chip core dimensions, treating legacy
// zero-valued fields as single-chip.
func (m *Map) ChipDims() (rows, cols int) {
	if m.ChipRows <= 0 || m.ChipCols <= 0 {
		return m.Rows, m.Cols
	}
	return m.ChipRows, m.ChipCols
}

// ChipGrid returns how many chips the board has in each dimension.
func (m *Map) ChipGrid() (rows, cols int) {
	cr, cc := m.ChipDims()
	return m.Rows / cr, m.Cols / cc
}

// NumChips returns the number of chips on the board.
func (m *Map) NumChips() int {
	r, c := m.ChipGrid()
	return r * c
}

// ChipCoords returns which chip (chip-grid row and column) owns the core
// with the given linear index.
func (m *Map) ChipCoords(idx int) (chipRow, chipCol int) {
	cr, cc := m.ChipDims()
	r, c := m.CoreCoords(idx)
	return r / cr, c / cc
}

// ChipOf returns the linear chip index owning the core.
func (m *Map) ChipOf(idx int) int {
	_, gc := m.ChipGrid()
	r, c := m.ChipCoords(idx)
	return r*gc + c
}

// SameChip reports whether two cores sit on the same physical chip (their
// traffic never crosses a chip-to-chip eLink).
func (m *Map) SameChip(a, b int) bool {
	ar, ac := m.ChipCoords(a)
	br, bc := m.ChipCoords(b)
	return ar == br && ac == bc
}

// ChipCrossings returns how many chip boundaries the XY route from src to
// dst crosses (column boundaries on the X leg plus row boundaries on the
// Y leg).
func (m *Map) ChipCrossings(src, dst int) int {
	sr, sc := m.ChipCoords(src)
	dr, dc := m.ChipCoords(dst)
	dx, dy := sc-dc, sr-dr
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// ChipOriginID returns the architectural CoreID of chip (chipRow,
// chipCol)'s core (0,0) - the value programmed into that chip's mesh
// origin register so the board shares one flat address space.
func (m *Map) ChipOriginID(chipRow, chipCol int) CoreID {
	cr, cc := m.ChipDims()
	return MakeCoreID(FirstRow+chipRow*cr, FirstCol+chipCol*cc)
}

// CoreIndex converts chip-relative (row, col) to the linear core index.
func (m *Map) CoreIndex(row, col int) int {
	if row < 0 || row >= m.Rows || col < 0 || col >= m.Cols {
		panic(fmt.Sprintf("mem: core (%d,%d) outside %dx%d chip", row, col, m.Rows, m.Cols))
	}
	return row*m.Cols + col
}

// CoreCoords converts a linear core index to chip-relative (row, col).
func (m *Map) CoreCoords(idx int) (row, col int) {
	return idx / m.Cols, idx % m.Cols
}

// CoreIDOf returns the architectural CoreID of the chip-relative core index.
func (m *Map) CoreIDOf(idx int) CoreID {
	r, c := m.CoreCoords(idx)
	return MakeCoreID(FirstRow+r, FirstCol+c)
}

// GlobalOf returns the global address of offset off in core idx's SRAM.
func (m *Map) GlobalOf(idx int, off Addr) Addr {
	if off >= SRAMSize {
		panic(fmt.Sprintf("mem: local offset %#x beyond 32 KB SRAM", off))
	}
	return m.CoreIDOf(idx).Global(off)
}

// Decode classifies a global address as seen from core self (chip-relative
// linear index). Local aliases (addresses below 1 MB) resolve to self.
func (m *Map) Decode(self int, a Addr) Target {
	if a < 1<<coreShift {
		if a < SRAMSize {
			return Target{Kind: KindLocal, Core: self, Off: a}
		}
		return Target{Kind: KindInvalid}
	}
	if a >= DRAMBase && a < DRAMBase+DRAMSize {
		return Target{Kind: KindDRAM, Off: a - DRAMBase}
	}
	id := CoreID(a >> coreShift)
	r, c := id.Row()-FirstRow, id.Col()-FirstCol
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		return Target{Kind: KindInvalid}
	}
	off := a & (1<<coreShift - 1)
	if off >= SRAMSize {
		return Target{Kind: KindInvalid}
	}
	return Target{Kind: KindCore, Core: m.CoreIndex(r, c), Off: off}
}

// BankOf returns which of the four banks a local offset falls in.
func BankOf(off Addr) int {
	if off >= SRAMSize {
		panic(fmt.Sprintf("mem: offset %#x beyond SRAM", off))
	}
	return int(off / BankSize)
}
