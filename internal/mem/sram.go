package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SRAM is one core's 32 KB scratchpad. Accessors take local byte offsets.
// All multi-byte accesses are little-endian, as on the real chip.
type SRAM struct {
	data [SRAMSize]byte
}

// NewSRAM returns a zeroed scratchpad.
func NewSRAM() *SRAM { return &SRAM{} }

// NewSRAMs returns n zeroed scratchpads carved out of one backing
// allocation - how a chip builds its per-core memories without paying
// one heap object per core.
func NewSRAMs(n int) []*SRAM {
	backing := make([]SRAM, n)
	out := make([]*SRAM, n)
	for i := range backing {
		out[i] = &backing[i]
	}
	return out
}

// Reset zeroes the scratchpad.
func (s *SRAM) Reset() { clear(s.data[:]) }

func (s *SRAM) check(off Addr, n int) {
	if int(off)+n > SRAMSize {
		panic(fmt.Sprintf("mem: SRAM access [%#x,%#x) beyond 32 KB", off, int(off)+n))
	}
}

// Bytes returns a slice aliasing n bytes of SRAM at off. The caller must
// not grow it; writes through it are visible to subsequent reads.
func (s *SRAM) Bytes(off Addr, n int) []byte {
	s.check(off, n)
	return s.data[off : int(off)+n]
}

// Load8 reads one byte.
func (s *SRAM) Load8(off Addr) uint8 { s.check(off, 1); return s.data[off] }

// Store8 writes one byte.
func (s *SRAM) Store8(off Addr, v uint8) { s.check(off, 1); s.data[off] = v }

// Load32 reads a 32-bit little-endian word.
func (s *SRAM) Load32(off Addr) uint32 {
	s.check(off, 4)
	return binary.LittleEndian.Uint32(s.data[off:])
}

// Store32 writes a 32-bit little-endian word.
func (s *SRAM) Store32(off Addr, v uint32) {
	s.check(off, 4)
	binary.LittleEndian.PutUint32(s.data[off:], v)
}

// Load64 reads a 64-bit little-endian doubleword.
func (s *SRAM) Load64(off Addr) uint64 {
	s.check(off, 8)
	return binary.LittleEndian.Uint64(s.data[off:])
}

// Store64 writes a 64-bit little-endian doubleword.
func (s *SRAM) Store64(off Addr, v uint64) {
	s.check(off, 8)
	binary.LittleEndian.PutUint64(s.data[off:], v)
}

// LoadF32 reads a single-precision float.
func (s *SRAM) LoadF32(off Addr) float32 { return math.Float32frombits(s.Load32(off)) }

// StoreF32 writes a single-precision float.
func (s *SRAM) StoreF32(off Addr, v float32) { s.Store32(off, math.Float32bits(v)) }

// Copy copies n bytes within or between scratchpads (dst and src may be
// the same SRAM; overlapping ranges copy as Go's copy does).
func Copy(dst *SRAM, dstOff Addr, src *SRAM, srcOff Addr, n int) {
	copy(dst.Bytes(dstOff, n), src.Bytes(srcOff, n))
}

// DRAM is the shared off-chip memory window.
type DRAM struct {
	data []byte
	// hi is the dirty high-water mark: one past the highest byte any
	// accessor has ever exposed, so Reset zeroes only that prefix
	// instead of the whole 32 MB window. It never retreats - even
	// across Resets - so a write through a Bytes alias retained from an
	// earlier run still lands inside the cleared prefix.
	hi int
}

// NewDRAM allocates the 32 MB shared window.
func NewDRAM() *DRAM { return &DRAM{data: make([]byte, DRAMSize)} }

func (d *DRAM) check(off Addr, n int) {
	if int(off)+n > len(d.data) {
		panic(fmt.Sprintf("mem: DRAM access [%#x,%#x) beyond %d MB window",
			off, int(off)+n, len(d.data)>>20))
	}
	if int(off)+n > d.hi {
		d.hi = int(off) + n
	}
}

// Reset zeroes every byte that may ever have been written (the dirty
// watermark is conservative: reads advance it too, and it survives
// Reset so stale aliases cannot smuggle bytes past it).
func (d *DRAM) Reset() {
	clear(d.data[:d.hi])
}

// Bytes returns a slice aliasing n bytes of DRAM at off.
func (d *DRAM) Bytes(off Addr, n int) []byte {
	d.check(off, n)
	return d.data[off : int(off)+n]
}

// Load32 reads a 32-bit little-endian word.
func (d *DRAM) Load32(off Addr) uint32 {
	d.check(off, 4)
	return binary.LittleEndian.Uint32(d.data[off:])
}

// Store32 writes a 32-bit little-endian word.
func (d *DRAM) Store32(off Addr, v uint32) {
	d.check(off, 4)
	binary.LittleEndian.PutUint32(d.data[off:], v)
}

// LoadF32 reads a single-precision float.
func (d *DRAM) LoadF32(off Addr) float32 { return math.Float32frombits(d.Load32(off)) }

// StoreF32 writes a single-precision float.
func (d *DRAM) StoreF32(off Addr, v float32) { d.Store32(off, math.Float32bits(v)) }

// Size returns the window size in bytes.
func (d *DRAM) Size() int { return len(d.data) }
