package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SRAM is one core's 32 KB scratchpad. Accessors take local byte offsets.
// All multi-byte accesses are little-endian, as on the real chip.
type SRAM struct {
	data [SRAMSize]byte
	// accessed counts the bytes moved through the access interface
	// (loads, stores and Bytes windows), feeding the energy model's
	// SRAM term. A Bytes window is charged once, at its size, when it is
	// taken - the cheapest deterministic accounting that stays off the
	// bulk-arithmetic hot paths.
	accessed uint64
	// Pad the struct to a 4 KB multiple so the per-core scratchpads
	// carved out of one backing array (NewSRAMs) keep page-aligned data:
	// without it, adding the 8-byte counter shifts every later core's
	// 32 KB window off alignment and costs a measurable few percent on
	// the load/store hot path.
	_ [4096 - 8]byte
}

// NewSRAM returns a zeroed scratchpad.
func NewSRAM() *SRAM { return &SRAM{} }

// NewSRAMs returns n zeroed scratchpads carved out of one backing
// allocation - how a chip builds its per-core memories without paying
// one heap object per core.
func NewSRAMs(n int) []*SRAM {
	backing := make([]SRAM, n)
	out := make([]*SRAM, n)
	for i := range backing {
		out[i] = &backing[i]
	}
	return out
}

// Reset zeroes the scratchpad and its access statistics.
func (s *SRAM) Reset() {
	clear(s.data[:])
	s.accessed = 0
}

// AccessedBytes returns the bytes moved through the scratchpad's access
// interface since construction or Reset (the energy model's SRAM term).
func (s *SRAM) AccessedBytes() uint64 { return s.accessed }

// Bounds are enforced by the compiler's intrinsic slice checks inside
// each accessor: an out-of-range access panics with the runtime's
// index-out-of-range error, which carries the offending index. The
// bespoke pre-check with a formatted message was retired when the
// accessors took on the energy counter - without the extra call they
// fit the inlining budget, so the per-element load/store hot path
// (3 loads + 1 store per multiply-add in the matmul kernels) compiles
// to straight-line code; BENCH_5.json pins the result.

// count charges an access to the energy model's byte counter.
func (s *SRAM) count(n int) { s.accessed += uint64(n) }

// Bytes returns a slice aliasing n bytes of SRAM at off. The caller must
// not grow it; writes through it are visible to subsequent reads.
func (s *SRAM) Bytes(off Addr, n int) []byte {
	s.count(n)
	return s.data[off : int(off)+n]
}

// Load8 reads one byte.
func (s *SRAM) Load8(off Addr) uint8 { s.count(1); return s.data[off] }

// Store8 writes one byte.
func (s *SRAM) Store8(off Addr, v uint8) { s.count(1); s.data[off] = v }

// Load32 reads a 32-bit little-endian word.
func (s *SRAM) Load32(off Addr) uint32 {
	s.count(4)
	return binary.LittleEndian.Uint32(s.data[off : int(off)+4])
}

// Store32 writes a 32-bit little-endian word.
func (s *SRAM) Store32(off Addr, v uint32) {
	s.count(4)
	binary.LittleEndian.PutUint32(s.data[off:int(off)+4], v)
}

// Load64 reads a 64-bit little-endian doubleword.
func (s *SRAM) Load64(off Addr) uint64 {
	s.count(8)
	return binary.LittleEndian.Uint64(s.data[off : int(off)+8])
}

// Store64 writes a 64-bit little-endian doubleword.
func (s *SRAM) Store64(off Addr, v uint64) {
	s.count(8)
	binary.LittleEndian.PutUint64(s.data[off:int(off)+8], v)
}

// LoadF32 reads a single-precision float.
func (s *SRAM) LoadF32(off Addr) float32 { return math.Float32frombits(s.Load32(off)) }

// StoreF32 writes a single-precision float.
func (s *SRAM) StoreF32(off Addr, v float32) { s.Store32(off, math.Float32bits(v)) }

// Copy copies n bytes within or between scratchpads (dst and src may be
// the same SRAM; overlapping ranges copy as Go's copy does).
func Copy(dst *SRAM, dstOff Addr, src *SRAM, srcOff Addr, n int) {
	copy(dst.Bytes(dstOff, n), src.Bytes(srcOff, n))
}

// DRAM is the shared off-chip memory window.
type DRAM struct {
	data []byte
	// hi is the dirty high-water mark: one past the highest byte any
	// accessor has ever exposed, so Reset zeroes only that prefix
	// instead of the whole 32 MB window. It never retreats - even
	// across Resets - so a write through a Bytes alias retained from an
	// earlier run still lands inside the cleared prefix.
	hi int
	// accessed counts bytes moved through the access interface, as
	// SRAM.accessed does; it feeds the energy model's DRAM term and is
	// cleared by Reset.
	accessed uint64
}

// NewDRAM allocates the 32 MB shared window.
func NewDRAM() *DRAM { return &DRAM{data: make([]byte, DRAMSize)} }

// check bounds-checks an access with a formatted panic, advances the
// dirty watermark and charges the access counter. Unlike the SRAM
// accessors, the DRAM path keeps a bespoke pre-check: it needs the
// watermark bookkeeping anyway and sits behind the eLink/DMA models,
// never on a per-element kernel hot path.
func (d *DRAM) check(off Addr, n int) {
	if int(off)+n > len(d.data) {
		panic(fmt.Sprintf("mem: DRAM access [%#x,%#x) beyond %d MB window",
			off, int(off)+n, len(d.data)>>20))
	}
	if int(off)+n > d.hi {
		d.hi = int(off) + n
	}
	d.accessed += uint64(n)
}

// AccessedBytes returns the bytes moved through the window's access
// interface since construction or Reset (the energy model's DRAM term).
func (d *DRAM) AccessedBytes() uint64 { return d.accessed }

// Reset zeroes every byte that may ever have been written (the dirty
// watermark is conservative: reads advance it too, and it survives
// Reset so stale aliases cannot smuggle bytes past it) and clears the
// access statistics.
func (d *DRAM) Reset() {
	clear(d.data[:d.hi])
	d.accessed = 0
}

// Bytes returns a slice aliasing n bytes of DRAM at off.
func (d *DRAM) Bytes(off Addr, n int) []byte {
	d.check(off, n)
	return d.data[off : int(off)+n]
}

// Load32 reads a 32-bit little-endian word.
func (d *DRAM) Load32(off Addr) uint32 {
	d.check(off, 4)
	return binary.LittleEndian.Uint32(d.data[off:])
}

// Store32 writes a 32-bit little-endian word.
func (d *DRAM) Store32(off Addr, v uint32) {
	d.check(off, 4)
	binary.LittleEndian.PutUint32(d.data[off:], v)
}

// LoadF32 reads a single-precision float.
func (d *DRAM) LoadF32(off Addr) float32 { return math.Float32frombits(d.Load32(off)) }

// StoreF32 writes a single-precision float.
func (d *DRAM) StoreF32(off Addr, v float32) { d.Store32(off, math.Float32bits(v)) }

// Size returns the window size in bytes.
func (d *DRAM) Size() int { return len(d.data) }
