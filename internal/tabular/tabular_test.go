package tabular

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestTextAlignment(t *testing.T) {
	for _, tc := range []struct {
		name string
		tab  Table
		want string
	}{
		{
			name: "columns align to widest cell",
			tab: Table{
				Header: []string{"a", "bb"},
				Rows:   [][]string{{"hello", "7"}, {"x", "12345"}},
			},
			want: "a      bb\n" +
				"-----  -----\n" +
				"hello  7\n" +
				"x      12345\n",
		},
		{
			name: "zero rows renders header and separator only",
			tab:  Table{Header: []string{"col", "c2"}},
			want: "col  c2\n---  --\n",
		},
		{
			name: "empty table renders nothing",
			tab:  Table{},
			want: "",
		},
		{
			name: "ragged rows: short rows end early, long rows spill",
			tab: Table{
				Header: []string{"a", "b"},
				Rows:   [][]string{{"1"}, {"1", "2", "3"}},
			},
			want: "a  b\n-  -\n1\n1  2  3\n",
		},
		{
			name: "headerless rows align without separator",
			tab: Table{
				Rows: [][]string{{"aggregate", "150.0"}, {"starved", "31"}},
			},
			want: "aggregate  150.0\nstarved    31\n",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.tab.Text(); got != tc.want {
				t.Errorf("Text:\n got %q\nwant %q", got, tc.want)
			}
		})
	}
}

func TestTextNoTrailingPadding(t *testing.T) {
	tab := Table{Header: []string{"wide-header", "x"}, Rows: [][]string{{"a", "b"}}}
	for _, line := range strings.Split(tab.Text(), "\n") {
		if strings.HasSuffix(line, " ") {
			t.Errorf("line %q has trailing padding", line)
		}
	}
}

func TestMarkdown(t *testing.T) {
	tab := Table{
		Header: []string{"name", "v"},
		Rows:   [][]string{{"pipe|here", "1"}, {"plain", "22"}},
	}
	want := "| name       | v   |\n" +
		"| ---------- | --- |\n" +
		"| pipe\\|here | 1   |\n" +
		"| plain      | 22  |\n"
	if got := tab.Markdown(); got != want {
		t.Errorf("Markdown:\n got %q\nwant %q", got, want)
	}
	// Short columns still get the minimum three-dash separator GitHub
	// requires.
	if md := (&Table{Header: []string{"a"}}).Markdown(); !strings.Contains(md, "| --- |") {
		t.Errorf("single-char column separator: %q", md)
	}
}

func TestCSVRoundTrips(t *testing.T) {
	tab := Table{
		Header: []string{"name", "note"},
		Rows: [][]string{
			{"plain", "ok"},
			{"comma,cell", `quote "q" and
newline`},
		},
	}
	got := tab.CSV()
	if strings.Contains(got, "\r") {
		t.Fatalf("CSV uses CR line endings; goldens must survive git newline normalization:\n%q", got)
	}
	rec, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatalf("rendered CSV does not parse: %v\n%s", err, got)
	}
	want := append([][]string{tab.Header}, tab.Rows...)
	if len(rec) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(rec), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if rec[i][j] != want[i][j] {
				t.Errorf("record %d cell %d = %q, want %q", i, j, rec[i][j], want[i][j])
			}
		}
	}
	if (&Table{}).CSV() != "" {
		t.Error("empty table CSV not empty")
	}
}

func TestRenderingIsRepeatable(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"3", "4"}}}
	for i := 0; i < 3; i++ {
		if tab.Text() != tab.Text() || tab.Markdown() != tab.Markdown() || tab.CSV() != tab.CSV() {
			t.Fatal("rendering not bit-identical across calls")
		}
	}
}
