// Package tabular renders small result tables - a header plus string
// rows - as aligned monospace text, GitHub-flavoured markdown, and CSV.
// It is the one formatter behind every table the module emits: the
// bench package's regenerated paper tables and the sweep package's
// scaling tables both delegate here, so alignment rules are written
// (and tested) once. All three renderings are pure functions of the
// cell strings; a table renders byte-identically on every call, which
// is what lets sweep outputs double as golden files.
package tabular

import (
	"encoding/csv"
	"strings"
)

// Table is a header and rows of pre-formatted cells. Rows may be ragged:
// a row shorter than the header leaves trailing columns empty, a longer
// one spills extra cells (aligned to the last column's width in Text).
type Table struct {
	Header []string
	Rows   [][]string
}

// widths returns the per-column display widths: each column is as wide
// as its widest cell, header included. Columns beyond the header exist
// only when some row is longer; they are sized from the rows alone.
func (t *Table) widths() []int {
	n := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	w := make([]int, n)
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Text renders the table as aligned monospace text: the header, a dashed
// separator, then the rows, columns left-aligned and separated by two
// spaces. A table with no rows renders header and separator only; a
// completely empty table renders nothing.
func (t *Table) Text() string {
	if len(t.Header) == 0 && len(t.Rows) == 0 {
		return ""
	}
	widths := t.widths()
	var b strings.Builder
	line := func(cells []string) {
		var l strings.Builder
		for i, c := range cells {
			if i > 0 {
				l.WriteString("  ")
			}
			l.WriteString(c)
			if i < len(cells)-1 {
				l.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		// Empty trailing cells would otherwise leave padding before them.
		b.WriteString(strings.TrimRight(l.String(), " "))
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		line(t.Header)
		sep := make([]string, len(t.Header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		line(sep)
	}
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table. Pipe
// characters inside cells are escaped; cells are padded to column width
// so the source stays readable as plain text too.
func (t *Table) Markdown() string {
	if len(t.Header) == 0 && len(t.Rows) == 0 {
		return ""
	}
	// Escape first: column widths must account for the escapes, or a
	// cell could need negative padding.
	esc := Table{Header: mdEscapeRow(t.Header)}
	for _, r := range t.Rows {
		esc.Rows = append(esc.Rows, mdEscapeRow(r))
	}
	widths := esc.widths()
	for i, w := range widths {
		// GitHub requires at least three dashes in the separator; pad
		// every column to that so rows and separator stay aligned.
		widths[i] = max(w, 3)
	}
	var b strings.Builder
	line := func(cells []string) {
		b.WriteByte('|')
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteByte(' ')
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	line(esc.Header)
	b.WriteByte('|')
	for _, w := range widths {
		b.WriteByte(' ')
		b.WriteString(strings.Repeat("-", w))
		b.WriteString(" |")
	}
	b.WriteByte('\n')
	for _, r := range esc.Rows {
		line(r)
	}
	return b.String()
}

// mdEscapeRow escapes the characters that would break a markdown table
// cell, across one row.
func mdEscapeRow(cells []string) []string {
	out := make([]string, len(cells))
	for i, s := range cells {
		s = strings.ReplaceAll(s, "|", `\|`)
		out[i] = strings.ReplaceAll(s, "\n", " ")
	}
	return out
}

// CSV renders the table as CSV, header row first, with LF line endings
// (so checked-in golden files survive git line-ending normalization).
// Quoting is encoding/csv's RFC-4180 behaviour.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	if len(t.Header) > 0 {
		if err := w.Write(t.Header); err != nil {
			panic(err) // strings.Builder cannot fail
		}
	}
	if err := w.WriteAll(t.Rows); err != nil {
		panic(err)
	}
	return b.String()
}
