package noc

import (
	"sort"
	"testing"

	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

func newTestMesh() (*sim.Engine, *Mesh) {
	eng := sim.NewEngine()
	return eng, NewMesh(eng, mem.NewMap(8, 8))
}

func TestDistance(t *testing.T) {
	_, m := newTestMesh()
	idx := m.Map().CoreIndex
	cases := []struct {
		a, b, d int
	}{
		{idx(0, 0), idx(0, 1), 1},
		{idx(0, 0), idx(1, 1), 2},
		{idx(0, 0), idx(7, 7), 14},
		{idx(3, 4), idx(3, 4), 0},
		{idx(7, 0), idx(0, 7), 14},
	}
	for _, c := range cases {
		if got := m.Distance(c.a, c.b); got != c.d {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestDeliverLatencyScalesWithHops(t *testing.T) {
	_, m := newTestMesh()
	idx := m.Map().CoreIndex
	n := 80
	ser := LinkSerialization(n)
	a1 := m.Deliver(0, idx(0, 0), idx(0, 1), n)
	if want := HopLatency + ser; a1 != want {
		t.Fatalf("1-hop arrival = %v, want %v", a1, want)
	}
	a14 := m.Deliver(1000, idx(0, 0), idx(7, 7), n)
	if want := sim.Time(1000) + 14*HopLatency + ser; a14 != want {
		t.Fatalf("14-hop arrival = %v, want %v", a14, want)
	}
}

func TestDeliverTableIShape(t *testing.T) {
	// Reproduce Table I's model: an 80-byte message as 20 direct word
	// writes; per-word time = (20*DirectWriteWordPeriod + hops*HopLatency)
	// / 20. Check the two calibration anchors: 11.12 ns at distance 1 and
	// ~12.6 ns at distance 14.
	perWord := func(hops int) float64 {
		total := 20*DirectWriteWordPeriod + sim.Time(hops)*HopLatency
		return total.Nanoseconds() / 20
	}
	if got := perWord(1); got < 11.0 || got > 11.25 {
		t.Errorf("distance 1: %.2f ns/word, want ~11.12", got)
	}
	if got := perWord(14); got < 12.3 || got > 12.9 {
		t.Errorf("distance 14: %.2f ns/word, want ~12.57", got)
	}
	// Monotone in distance.
	prev := 0.0
	for h := 1; h <= 14; h++ {
		cur := perWord(h)
		if cur <= prev {
			t.Fatalf("per-word time not increasing at %d hops", h)
		}
		prev = cur
	}
}

func TestDeliverContentionSerializes(t *testing.T) {
	_, m := newTestMesh()
	idx := m.Map().CoreIndex
	n := 1024
	ser := LinkSerialization(n)
	// Two messages crossing the same eastbound link at the same instant.
	a := m.Deliver(0, idx(0, 0), idx(0, 2), n)
	b := m.Deliver(0, idx(0, 1), idx(0, 2), n)
	// First message unqueued.
	if want := 2*HopLatency + ser; a != want {
		t.Fatalf("first arrival %v, want %v", a, want)
	}
	// Second must queue behind the first on link (0,1)->(0,2).
	if b <= a {
		t.Fatalf("contended message arrived at %v, not after %v", b, a)
	}
	// Disjoint paths: no interference.
	c := m.Deliver(0, idx(5, 0), idx(5, 1), n)
	if want := HopLatency + ser; c != want {
		t.Fatalf("disjoint arrival %v, want %v", c, want)
	}
}

func TestDeliverSelfAndEmpty(t *testing.T) {
	_, m := newTestMesh()
	if got := m.Deliver(42, 3, 3, 100); got != 42 {
		t.Fatalf("self-delivery time %v, want 42", got)
	}
	if got := m.Deliver(42, 0, 1, 0); got != 42 {
		t.Fatalf("empty delivery time %v, want 42", got)
	}
}

func TestDeliverWestAndNorthRoutes(t *testing.T) {
	_, m := newTestMesh()
	idx := m.Map().CoreIndex
	n := 64
	ser := LinkSerialization(n)
	// Westward then northward: (3,5) -> (1,2): 3 west hops + 2 north hops.
	a := m.Deliver(0, idx(3, 5), idx(1, 2), n)
	if want := 5*HopLatency + ser; a != want {
		t.Fatalf("west/north arrival %v, want %v", a, want)
	}
	if m.Writes() != 1 || m.Bytes() != 64 {
		t.Fatalf("stats writes=%d bytes=%d", m.Writes(), m.Bytes())
	}
}

func TestReadWordRoundTrip(t *testing.T) {
	_, m := newTestMesh()
	idx := m.Map().CoreIndex
	near := m.ReadWord(0, idx(0, 0), idx(0, 1))
	far := m.ReadWord(0, idx(0, 0), idx(7, 7))
	if near >= far {
		t.Fatalf("read near=%v far=%v, want near < far", near, far)
	}
	if near != ReadWordRoundTrip+2*HopLatency {
		t.Fatalf("near read = %v", near)
	}
	// Both reads charge the energy counters: 4 bytes each way per hop
	// (1 hop + 14 hops here), and nothing to the chip-to-chip read
	// counter on a single chip.
	if got, want := m.HopBytes(), uint64(4*2*(1+14)); got != want {
		t.Fatalf("read hop bytes = %d, want %d", got, want)
	}
	if m.CrossReadBytes() != 0 {
		t.Fatalf("single-chip read crossed a chip boundary: %d bytes", m.CrossReadBytes())
	}
}

// TestReadWordEnergyCountersCrossChip pins the read network's energy
// accounting on a multi-chip board: boundary legs accrue to the
// chip-to-chip read counter (kept apart from the frozen CrossBytes
// metric), on-chip legs to HopBytes, and Reset clears both.
func TestReadWordEnergyCountersCrossChip(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, mem.NewBoardMap(1, 2, 4, 4)) // two 4x4 chips side by side
	idx := m.Map().CoreIndex
	m.ReadWord(0, idx(0, 0), idx(0, 7)) // 7 hops, 1 of them a boundary crossing
	if got, want := m.HopBytes(), uint64(4*2*6); got != want {
		t.Fatalf("on-chip read hop bytes = %d, want %d", got, want)
	}
	if got, want := m.CrossReadBytes(), uint64(4*2*1); got != want {
		t.Fatalf("cross read bytes = %d, want %d", got, want)
	}
	if m.CrossBytes() != 0 {
		t.Fatalf("read traffic leaked into the time-domain CrossBytes metric: %d", m.CrossBytes())
	}
	m.Reset()
	if m.HopBytes() != 0 || m.CrossReadBytes() != 0 {
		t.Fatalf("Reset kept read counters: hop=%d cross=%d", m.HopBytes(), m.CrossReadBytes())
	}
}

func TestDMASerialization(t *testing.T) {
	if got := DMASerialization(2048, 8); got != 256*DMABeatPeriod {
		t.Fatalf("2KB dword = %v", got)
	}
	if got := DMASerialization(2048, 4); got != 512*DMAWordPeriod {
		t.Fatalf("2KB word = %v", got)
	}
	// Doubleword mode is twice the bandwidth of word mode.
	if DMASerialization(4096, 8)*2 != DMASerialization(4096, 4)*2*2/2*2/2*2 {
		// (guard against accidental equal rates)
	}
	if !(DMASerialization(4096, 8) < DMASerialization(4096, 4)) {
		t.Fatal("dword DMA should be faster than word DMA")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad beat size should panic")
		}
	}()
	DMASerialization(10, 3)
}

func TestDMABandwidthPlateau(t *testing.T) {
	// Figure 2 anchor: large reused-descriptor DMA transfers approach 2 GB/s.
	n := 8192
	dur := DMAStartCost + DMASerialization(n, 8)
	gbps := float64(n) / dur.Nanoseconds()
	if gbps < 1.85 || gbps > 2.05 {
		t.Fatalf("8KB DMA bandwidth %.2f GB/s, want ~1.9", gbps)
	}
}

func TestDMADirectCrossover(t *testing.T) {
	// Figure 3 anchor: with a fresh descriptor each time (as a latency
	// benchmark does), DMA beats direct writes only beyond ~500 bytes.
	directT := func(n int) sim.Time { return sim.Time(n/4) * DirectWriteWordPeriod }
	dmaT := func(n int) sim.Time {
		return DMADescriptorBuildCost + DMAStartCost + DMASerialization(n, 8)
	}
	if !(directT(256) < dmaT(256)) {
		t.Errorf("at 256 B direct should beat DMA (direct %v, dma %v)", directT(256), dmaT(256))
	}
	if !(dmaT(1024) < directT(1024)) {
		t.Errorf("at 1 KB DMA should beat direct (direct %v, dma %v)", directT(1024), dmaT(1024))
	}
	// Crossover in (256, 1024), near 500.
	cross := 0
	for n := 4; n <= 4096; n += 4 {
		if dmaT(n) <= directT(n) {
			cross = n
			break
		}
	}
	if cross < 300 || cross > 800 {
		t.Fatalf("crossover at %d bytes, want ~500", cross)
	}
}

func elinkSaturate(t *testing.T, writers []int, window sim.Time) *ELink {
	t.Helper()
	eng := sim.NewEngine()
	el := NewELink(eng, 8, 8)
	for _, core := range writers {
		core := core
		eng.Spawn("writer", func(p *sim.Proc) {
			for {
				el.Write(p, core, 2048)
				if p.Now() >= window {
					return
				}
			}
		})
	}
	eng.At(window, func() { eng.Stop() })
	if err := eng.RunUntil(window); err != nil {
		t.Fatal(err)
	}
	return el
}

func TestELinkThroughputCap(t *testing.T) {
	// All 64 cores saturating the link must move ~150 MB/s aggregate.
	writers := make([]int, 64)
	for i := range writers {
		writers[i] = i
	}
	window := 20 * sim.Millisecond
	el := elinkSaturate(t, writers, window)
	var total uint64
	for i := 0; i < 64; i++ {
		total += el.ServedBytes(i)
	}
	mbps := float64(total) / window.Seconds() / 1e6
	if mbps < 140 || mbps > 155 {
		t.Fatalf("aggregate eLink write throughput %.1f MB/s, want ~150", mbps)
	}
}

func TestELinkTable2Gradient(t *testing.T) {
	// Table II scenario: a 2x2 workgroup at (0,0) writing 2 KB blocks.
	// The paper reports a strict gradient of shares summing to ~1.0
	// (0.41/0.33/0.17/0.08). We reproduce a strict 4-level gradient with
	// row position dominating; see EXPERIMENTS.md for the in-row ordering
	// caveat.
	cores := []int{0, 1, 8, 9} // (0,0) (0,1) (1,0) (1,1)
	el := elinkSaturate(t, cores, 20*sim.Millisecond)
	shares := make([]float64, 4)
	var sum float64
	for i, c := range cores {
		shares[i] = el.Utilization(c)
		sum += shares[i]
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum %v, want 1.0 (saturated link)", sum)
	}
	// Row 0 cores together dominate row 1 cores ~3:1 as in the paper.
	row0, row1 := shares[0]+shares[1], shares[2]+shares[3]
	if row0/row1 < 2 || row0/row1 > 4.5 {
		t.Fatalf("row0/row1 share ratio %.2f, want ~3", row0/row1)
	}
	// All four shares distinct and nonzero (graded, not RR-equal).
	s := append([]float64(nil), shares...)
	sort.Float64s(s)
	for i := 0; i < 3; i++ {
		if s[i+1]-s[i] < 0.01 {
			t.Fatalf("shares %v not a clear gradient", shares)
		}
	}
	if s[0] < 0.03 {
		t.Fatalf("weakest of 4 writers starved (%v); Table II has 0.08", s[0])
	}
}

func TestELinkTable3Starvation(t *testing.T) {
	// Table III scenario: all 64 cores write. Expect: the top of column 7
	// takes the lion's share almost equally; a middle tier gets ~2%; a
	// long tail gets a handful of blocks; many cores get exactly zero.
	writers := make([]int, 64)
	for i := range writers {
		writers[i] = i
	}
	el := elinkSaturate(t, writers, 100*sim.Millisecond)

	top := []int{7, 15, 23, 31} // (0..3, 7)
	var topShare float64
	for _, c := range top {
		u := el.Utilization(c)
		topShare += u
		if u < 0.15 || u > 0.25 {
			t.Errorf("top core %d share %.3f, want ~0.19", c, u)
		}
	}
	if topShare < 0.6 || topShare > 0.9 {
		t.Fatalf("top-4 share %.2f, want ~0.75", topShare)
	}
	// (0,6) should be in the ~2% tier.
	if u := el.Utilization(6); u < 0.005 || u > 0.05 {
		t.Errorf("core (0,6) share %.4f, want ~0.02", u)
	}
	// Count fully starved cores: the paper reports 24 with zero
	// iterations; require a substantial starved population.
	starved := 0
	for i := 0; i < 64; i++ {
		if el.Served(i) == 0 {
			starved++
		}
	}
	if starved < 10 {
		t.Fatalf("only %d cores starved; Table III shows ~24", starved)
	}
	// And the far corner must be among them.
	if el.Served(56) != 0 { // (7,0)
		t.Errorf("core (7,0) served %d blocks, want 0", el.Served(56))
	}
}

func TestELinkDeterminism(t *testing.T) {
	run := func() []uint64 {
		writers := []int{0, 7, 9, 35, 63}
		el := elinkSaturate(t, writers, 5*sim.Millisecond)
		out := make([]uint64, 64)
		for i := range out {
			out[i] = el.ServedBytes(i)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic eLink service at core %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestELinkSingleWriterGetsFullRate(t *testing.T) {
	el := elinkSaturate(t, []int{56}, 10*sim.Millisecond) // the weakest core
	// Alone, even the most penalized core gets the whole link.
	mbps := float64(el.ServedBytes(56)) / (10 * sim.Millisecond).Seconds() / 1e6
	if mbps < 140 {
		t.Fatalf("solo writer got %.1f MB/s, want ~150", mbps)
	}
	if el.Utilization(56) != 1.0 {
		t.Fatalf("solo utilization %v", el.Utilization(56))
	}
}

func TestELinkWriteAsync(t *testing.T) {
	eng := sim.NewEngine()
	el := NewELink(eng, 8, 8)
	var doneAt sim.Time
	eng.Spawn("p", func(p *sim.Proc) {
		c := el.WriteAsync(0, 1500)
		p.WaitCond(c)
		doneAt = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(1500) * ELinkBytePeriod; doneAt != want {
		t.Fatalf("async write done at %v, want %v", doneAt, want)
	}
}

func TestMeshDirString(t *testing.T) {
	if East.String() != "east" || North.String() != "north" {
		t.Fatal("Dir strings wrong")
	}
}

func TestLinkUtilizationAccounting(t *testing.T) {
	eng, m := newTestMesh()
	idx := m.Map().CoreIndex
	m.Deliver(0, idx(2, 2), idx(2, 3), 8*100) // 100 cycles on link (2,2)e
	now := sim.Cycles(200)
	_ = eng
	if u := m.LinkUtilization(2, 2, East, now); u != 0.5 {
		t.Fatalf("east link utilization %v, want 0.5", u)
	}
	m.Deliver(0, idx(2, 3), idx(2, 2), 8*50)
	if u := m.LinkUtilization(2, 3, West, now); u != 0.25 {
		t.Fatalf("west link utilization %v, want 0.25", u)
	}
}

// TestLinkUtilizationEdgeRouters sweeps every direction at all four mesh
// corners: directions that point off the mesh edge (West at column 0,
// North at row 0, East at the last column, South at the last row) must
// report 0 instead of panicking, and out-of-range coordinates likewise.
func TestLinkUtilizationEdgeRouters(t *testing.T) {
	_, m := newTestMesh()
	now := sim.Cycles(100)
	last := m.Rows() - 1
	corners := [][2]int{{0, 0}, {0, last}, {last, 0}, {last, last}}
	for _, rc := range corners {
		for _, d := range []Dir{East, West, North, South} {
			if u := m.LinkUtilization(rc[0], rc[1], d, now); u != 0 {
				t.Errorf("idle corner (%d,%d) %v utilization = %v, want 0", rc[0], rc[1], d, u)
			}
		}
	}
	for _, rc := range [][2]int{{-1, 0}, {0, -1}, {last + 1, 0}, {0, last + 1}} {
		if u := m.LinkUtilization(rc[0], rc[1], East, now); u != 0 {
			t.Errorf("off-mesh router (%d,%d) utilization = %v, want 0", rc[0], rc[1], u)
		}
	}
	// An in-range link at a corner still reports real utilization.
	idx := m.Map().CoreIndex
	m.Deliver(0, idx(0, 0), idx(0, 1), 8*50) // 50 cycles on link (0,0)e
	if u := m.LinkUtilization(0, 0, East, now); u != 0.5 {
		t.Errorf("corner east link utilization = %v, want 0.5", u)
	}
}

func TestLinkNamesAreLazy(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, mem.NewBoardMap(2, 2, 4, 4))
	if got := m.LinkName(0, 0, East); got != "link(0,0)east" {
		t.Errorf("on-chip link name %q", got)
	}
	// Column 3 -> 4 crosses the vertical chip boundary: the name reports
	// the shared chip-to-chip eLink.
	if got := m.LinkName(1, 3, East); got != "c2c(0,0)east" {
		t.Errorf("boundary link name %q", got)
	}
	if got := m.LinkName(0, 0, West); got != "off-mesh(0,0)west" {
		t.Errorf("edge link name %q", got)
	}
}

func TestMeshResetRestoresPristineState(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMesh(eng, mem.NewBoardMap(2, 2, 4, 4))
	idx := m.Map().CoreIndex
	first := m.Deliver(0, idx(0, 0), idx(3, 7), 512)
	m.SetErrata0(true)
	m.Reset()
	if m.Writes() != 0 || m.Bytes() != 0 || m.Crossings() != 0 || m.CrossBytes() != 0 || m.CrossTime() != 0 {
		t.Fatalf("stats survived Reset: writes=%d bytes=%d crossings=%d", m.Writes(), m.Bytes(), m.Crossings())
	}
	if m.Errata0() {
		t.Fatal("errata model survived Reset")
	}
	if again := m.Deliver(0, idx(0, 0), idx(3, 7), 512); again != first {
		t.Fatalf("post-Reset delivery arrives at %v, fresh mesh gave %v", again, first)
	}
	if u := m.LinkUtilization(0, 0, East, sim.Cycles(100)); u == 0 {
		t.Fatal("post-Reset delivery booked no link time")
	}
}

func TestErrata0DoublesAffectedReads(t *testing.T) {
	_, m := newTestMesh()
	idx := m.Map().CoreIndex
	if m.Errata0() {
		t.Fatal("erratum should default off")
	}
	clean := m.ReadWord(0, idx(2, 5), idx(2, 6))
	m.SetErrata0(true)
	hit := m.ReadWord(0, idx(2, 5), idx(2, 6))        // row 2: affected
	hitCol := m.ReadWord(0, idx(5, 2), idx(5, 3))     // column 2: affected
	unaffected := m.ReadWord(0, idx(3, 5), idx(3, 6)) // neither
	if hit != 2*clean || hitCol != 2*clean {
		t.Fatalf("errata read = %v/%v, want %v (2x %v)", hit, hitCol, 2*clean, clean)
	}
	if unaffected != clean {
		t.Fatalf("unaffected read changed: %v != %v", unaffected, clean)
	}
}
