// Package noc models the Epiphany eMesh network-on-chip and the eLink
// interface to off-chip shared memory.
//
// The model is transaction-level, not flit-level: transfers book occupancy
// on per-hop link resources (capturing serialization and queueing) and pay
// a per-hop head latency. The constants below are calibrated so that the
// micro-benchmarks of the paper's Section V reproduce: Table I's distance
// experiment, Figure 2/3's DMA-vs-direct-write crossover, and the eLink's
// 150 MB/s effective write throughput with its unfair arbitration
// (Tables II and III).
package noc

import "epiphany/internal/sim"

// Calibrated network constants. Sources: paper §V plus the Epiphany
// architecture reference. One core cycle = sim.Cycle = 5 units of 1/3 ns.
const (
	// HopLatency is the head latency added per router hop on the on-chip
	// networks: 1.4 cycles. Fitted to Table I (11.12 ns/word at Manhattan
	// distance 1 rising to ~12.6 ns/word at distance 14 for 20-word
	// messages: (20*33 + hops*7)/60 ns reproduces the table).
	HopLatency sim.Time = 7
	// LinkBytePeriod is the on-chip write-network serialization time per
	// byte: the mesh moves 8 bytes/cycle/link, i.e. 5 units per 8 bytes.
	// Expressed as a rational via LinkBytesPerCycle to stay exact.
	LinkBytesPerCycle = 8
	// DirectWriteWordPeriod is the sustained cost of one 32-bit remote
	// store issued by the benchmark's load/store copy loop: 6.6 cycles =
	// 33 units, fitted to Table I's 11.12 ns/word. (A bare store issues in
	// 1 cycle; the measured loop also loads the source word, advances
	// pointers and suffers pipeline effects, which is what this constant
	// captures - the paper's own code is an unrolled sequence of
	// "*dst_i = *src_i" statements.)
	DirectWriteWordPeriod sim.Time = 33
	// DMABeatBytes is the DMA doubleword beat size.
	DMABeatBytes = 8
	// DMABeatPeriod is the sustained DMA service time per 8-byte beat:
	// 2.4 cycles = 12 units, i.e. 2.0 GB/s, matching Figure 2's large-
	// message plateau ("around 2GB/s"; the 2.4 GB/s single-word and
	// 4.8 GB/s doubleword theoretical rates are not achieved in practice).
	DMABeatPeriod sim.Time = 12
	// DMAWordPeriod is the service time per 4-byte beat when a descriptor
	// uses word (not doubleword) mode, as the stencil's column transfers do.
	DMAWordPeriod sim.Time = 12
	// DMADescriptorBuildCost is the one-time CPU cost of e_dma_set_desc:
	// building the descriptor in memory. Together with DMAStartCost it is
	// fitted to Figure 3's ~500-byte DMA/direct-write latency crossover.
	DMADescriptorBuildCost sim.Time = 575 * sim.Cycle
	// DMAStartCost is the per-transfer cost of e_dma_start plus the
	// e_dma_wait completion poll, paid even when a descriptor is reused
	// (as the bandwidth benchmark of Figure 2 does).
	DMAStartCost sim.Time = 100 * sim.Cycle
	// ReadWordRoundTrip is the extra cost of one remote 32-bit read: the
	// read-request network is not pipelined from the CPU's point of view,
	// so each load pays a full round trip. The paper avoids remote reads;
	// this constant only matters for completeness tests.
	ReadWordRoundTrip sim.Time = 16 * sim.Cycle
	// ELinkBytePeriod is the effective per-byte service time of the
	// off-chip write path: 150 MB/s = one byte per 20 units (§V-B: "the
	// maximum write throughput to external shared memory achieved was
	// 150MB/sec, exactly one quarter of the theoretical maximum of the
	// 600MB/sec eLink").
	ELinkBytePeriod sim.Time = 20
	// ELinkRawBytePeriod is the theoretical 600 MB/s rate: 1 byte per
	// 5 units (one per core cycle). Used by the host-side model for the
	// read direction and reported in docs.
	ELinkRawBytePeriod sim.Time = 5
	// HostBytePeriod is the effective host<->device staging rate through
	// the eLink/AXI path, matched to the paper's off-chip matmul analysis
	// (512 KB block in ~3.4 ms => 150 MB/s).
	HostBytePeriod sim.Time = 20

	// Chip-to-chip eLink constants, for multi-chip boards whose eMeshes
	// are glued together through the off-chip links (the Epiphany
	// architecture's intended scaling path; each chip edge exposes one
	// 8-bit 600 MHz eLink). A mesh hop that crosses a chip boundary
	// leaves the 8-byte-per-cycle on-chip fabric for this far narrower
	// serial link, and every row (or column) of the chip edge shares the
	// one link through its merge arbiter.

	// C2CBytePeriod is the chip-to-chip eLink serialization time per
	// byte: the raw 600 MB/s link rate, one byte per core cycle (the
	// write direction of a dedicated point-to-point link does not suffer
	// the 4x DRAM-path derating of ELinkBytePeriod). 8x slower than an
	// on-chip mesh link.
	C2CBytePeriod sim.Time = sim.Cycle
	// C2CHopLatency is the head latency of one chip-boundary crossing:
	// off-chip drivers, resynchronization into the destination chip's
	// clock domain and the boundary router, modelled at 12 core cycles.
	C2CHopLatency sim.Time = 12 * sim.Cycle
)

// C2CSerialization returns the chip-to-chip eLink occupancy for n bytes.
func C2CSerialization(n int) sim.Time {
	return sim.Time(n) * C2CBytePeriod
}

// LinkSerialization returns the on-chip link occupancy for n bytes.
func LinkSerialization(n int) sim.Time {
	beats := (n + LinkBytesPerCycle - 1) / LinkBytesPerCycle
	return sim.Cycles(uint64(beats))
}

// DMASerialization returns the DMA engine pacing time for n bytes moved
// with the given beat size (4 or 8 bytes).
func DMASerialization(n, beatBytes int) sim.Time {
	if beatBytes != 4 && beatBytes != 8 {
		panic("noc: DMA beat must be 4 or 8 bytes")
	}
	beats := (n + beatBytes - 1) / beatBytes
	per := DMABeatPeriod
	if beatBytes == 4 {
		per = DMAWordPeriod
	}
	return sim.Time(beats) * per
}
