package noc

import "epiphany/internal/sim"

// ActivityKind classifies what a core spent a span of virtual time on,
// for timeline recording.
type ActivityKind uint8

const (
	// ActCompute is a core executing its modeled compute kernel.
	ActCompute ActivityKind = iota
	// ActDMAWait is a core blocked on a DMA channel completion.
	ActDMAWait
	// ActFlagSpin is a core polling a local flag word.
	ActFlagSpin
)

// String returns the timeline track label for the activity.
func (k ActivityKind) String() string {
	switch k {
	case ActCompute:
		return "compute"
	case ActDMAWait:
		return "dma-wait"
	case ActFlagSpin:
		return "flag-spin"
	}
	return "activity"
}

// Recorder observes the fabric for timeline export. A recorder is
// attached per run (dma.Fabric.Rec, Mesh.SetRecorder) and every hook
// sits behind a nil check, so the unmetered hot path costs one
// predictable branch. Spans carry virtual times in engine units.
//
// Implementations must be safe for concurrent use: under the parallel
// scheduler the hooks fire from several shard goroutines at once.
type Recorder interface {
	// CoreSpan records one core's activity over [start, end).
	CoreSpan(core int, k ActivityKind, start, end sim.Time)
	// DMATransfer records a DMA leg ("mesh", "mesh-x", "dram-read",
	// "dram-write") issued for core over [start, end).
	DMATransfer(core int, kind string, start, end sim.Time, bytes int)
	// ELinkCross records a message crossing chip-to-chip eLink slot over
	// [start, end): from the head's arrival at the boundary router to
	// the tail's arrival on the far chip.
	ELinkCross(slot int, start, end sim.Time, bytes int)
}
