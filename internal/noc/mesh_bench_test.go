package noc

import (
	"testing"

	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

// sinkTime keeps the compiler from eliding the Deliver calls.
var sinkTime sim.Time

// benchDeliver drives a pseudo-random all-to-all delivery pattern so the
// route walk, the link booking, and (on multi-chip maps) the boundary
// crossings are all exercised. Since the energy subsystem landed the
// measured path includes the unconditional activity counters (byte-hop
// and crossing accumulation) - the before/after for this benchmark in
// BENCH_5.json is the Deliver counter-overhead proof, and the allocs/op
// reported here must stay zero.
func benchDeliver(b *testing.B, amap *mem.Map) {
	eng := sim.NewEngine()
	m := NewMesh(eng, amap)
	cores := amap.NumCores()
	b.ReportAllocs()
	b.ResetTimer()
	var t sim.Time
	for i := 0; i < b.N; i++ {
		src := i % cores
		dst := (i*7 + 13) % cores
		t = m.Deliver(t, src, dst, 64)
	}
	sinkTime = t
}

func BenchmarkDeliverE64(b *testing.B) { benchDeliver(b, mem.NewMap(8, 8)) }

func BenchmarkDeliverCluster2x2(b *testing.B) {
	benchDeliver(b, mem.NewBoardMap(2, 2, 4, 4))
}

// sinkMesh keeps construction live.
var sinkMesh *Mesh

func benchNewMesh(b *testing.B, amap *mem.Map) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkMesh = NewMesh(eng, amap)
	}
}

func BenchmarkNewMeshE64(b *testing.B) { benchNewMesh(b, mem.NewMap(8, 8)) }

func BenchmarkNewMeshCluster2x2(b *testing.B) {
	benchNewMesh(b, mem.NewBoardMap(2, 2, 4, 4))
}
