package noc

import (
	"container/heap"
	"math"

	"epiphany/internal/sim"
)

// ELink models the single 8-bit, 600 MHz off-chip link through which all
// eCore traffic to shared DRAM flows. Two properties from the paper's §V-B
// matter and are reproduced here:
//
//  1. Effective write throughput saturates at 150 MB/s (a quarter of the
//     600 MB/s raw link rate) regardless of how many cores write.
//  2. Arbitration is grossly unfair: cores near the link's exit corner
//     (row 0, column cols-1) monopolize it, and distant cores starve
//     ("with sufficient contention, many (all) eCores in rows 5-7 simply
//     miss out on write slots").
//
// The unfairness is an undocumented artifact of the silicon's merge
// arbitration; we reproduce the *observed distribution* with a weighted
// fair queueing (WFQ) server whose per-core weights decay with distance
// from the exit corner. Column cols-1 cores inject directly into the
// off-chip column channel and share it round-robin (equal weights for the
// upper half of the column), matching Table III's four equal winners;
// everyone else pays an exponential penalty per row/column of distance,
// which yields Table III's ~0.02 middle tier, its 1-10-iteration fringe,
// and its 24 hard-starved cores. See EXPERIMENTS.md for the calibration
// discussion, including the respect in which the paper's own Tables II
// and III disagree with each other.
type ELink struct {
	// sh is the shard the arbiter lives on (the engine's sys shard):
	// every tag computation, queue operation, and completion callback
	// executes there. Cores on other shards reach the arbiter through
	// SubmitFrom, which posts the submission as a cross-shard event.
	sh     *sim.Shard
	rows   int
	cols   int
	weight []float64
	// WFQ state.
	pending  reqHeap
	lastTag  []float64 // per-core last finish tag
	virtual  float64   // virtual time of the server
	busy     bool
	served   []uint64 // completed requests per core
	svcBytes []uint64 // bytes served per core
	total    uint64
}

type elinkReq struct {
	core  int
	bytes int
	start float64 // virtual start tag
	tag   float64 // virtual finish tag
	seq   uint64
	done  *sim.Cond
	fn    func() // optional completion callback (runs before done broadcast)
}

type reqHeap []*elinkReq

func (h reqHeap) Len() int { return len(h) }

// Less orders by virtual finish tag (WFQ). Finish-tag ordering is what
// produces Table III's hard starvation: a heavily penalized flow's very
// first request already carries a finish tag beyond the virtual horizon
// the experiment window reaches, so it is never granted a slot at all -
// matching the 24 cores the paper observed with zero iterations.
func (h reqHeap) Less(i, j int) bool {
	if h[i].tag != h[j].tag {
		return h[i].tag < h[j].tag
	}
	return h[i].seq < h[j].seq
}
func (h reqHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *reqHeap) Push(x interface{}) { *h = append(*h, x.(*elinkReq)) }
func (h *reqHeap) Pop() interface{} {
	old := *h
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return r
}

// NewELink creates the off-chip link server for a rows x cols chip.
func NewELink(eng *sim.Engine, rows, cols int) *ELink {
	n := rows * cols
	e := &ELink{
		sh:       eng.Sys(),
		rows:     rows,
		cols:     cols,
		weight:   make([]float64, n),
		lastTag:  make([]float64, n),
		served:   make([]uint64, n),
		svcBytes: make([]uint64, n),
	}
	e.calibrate()
	return e
}

// calibrate installs the fitted arbitration weights - the single source
// both construction and Reset use, so a recycled arbiter can never
// drift from a fresh one.
func (e *ELink) calibrate() {
	for r := 0; r < e.rows; r++ {
		for c := 0; c < e.cols; c++ {
			e.weight[r*e.cols+c] = elinkWeight(e.rows, e.cols, r, c)
		}
	}
}

// elinkWeight is the calibrated arbitration weight of core (r,c).
func elinkWeight(rows, cols, r, c int) float64 {
	if c == cols-1 {
		// Direct injectors on the off-chip column: the upper half of the
		// column shares the channel nearly fairly; the lower half only
		// gets leftover slots.
		if r < rows/2 {
			return 1.0
		}
		return 0.09
	}
	// Everyone else must win a row merge and then the column merge; the
	// success rate decays exponentially with hops of each kind (rows
	// hurt more than columns, per the paper's observation that row
	// position dominates).
	colDist := float64(cols - 2 - c)
	return 0.10 * math.Pow(2, -(colDist+1.2*float64(r)))
}

// Weight exposes the arbitration weight for core, for tests and docs.
func (e *ELink) Weight(core int) float64 { return e.weight[core] }

// Reset drops all queued requests, clears the WFQ state and statistics,
// and restores the calibrated arbitration weights (undoing
// SetUniformWeights), returning the arbiter to its just-built state.
func (e *ELink) Reset() {
	clear(e.pending)
	e.pending = e.pending[:0]
	clear(e.lastTag)
	e.virtual = 0
	e.busy = false
	clear(e.served)
	clear(e.svcBytes)
	e.total = 0
	e.calibrate()
}

// SetUniformWeights replaces the calibrated arbitration with an ideal
// fair arbiter - the counterfactual used by the fairness ablation to show
// what Table III would have looked like on a chip without the erratic
// merge arbitration.
func (e *ELink) SetUniformWeights() {
	for i := range e.weight {
		e.weight[i] = 1
	}
}

// Write blocks p until the eLink has carried n bytes on behalf of core.
// Concurrent writers are served WFQ-fashion at the 150 MB/s effective rate.
// When p runs on another shard (a core of a multi-chip board), the
// submission travels to the arbiter's shard as an event and the
// completion comes back the same way; the tags and the service order are
// identical either way.
func (e *ELink) Write(p *sim.Proc, core, n int) {
	if p.Shard() == e.sh {
		p.WaitCond(e.submit(core, n).done)
		return
	}
	from := p.Shard()
	reply := sim.NewCondIdxOn(from, "elink:reply:core", core)
	e.SubmitFrom(from, p.Now(), core, n, func() {
		e.sh.Send(from, e.sh.Now(), func() { reply.Broadcast() })
	})
	p.WaitCond(reply)
}

// SubmitFrom books n bytes for core from shard from's execution context
// at time t. The submission is posted into the arbiter's shard (where
// the WFQ tags, queue, and completions live); fn, if non-nil, runs
// there when the transfer completes, before any waiters wake. A
// same-shard call degenerates to WriteFunc.
func (e *ELink) SubmitFrom(from *sim.Shard, t sim.Time, core, n int, fn func()) {
	if from == e.sh {
		e.submit(core, n).fn = fn
		return
	}
	from.SendTagged(e.sh, t, core, func() { e.submit(core, n).fn = fn })
}

// WriteAsync books the transfer and returns a Cond broadcast at completion,
// letting DMA engines overlap. The returned Cond is single-use.
func (e *ELink) WriteAsync(core, n int) *sim.Cond {
	return e.submit(core, n).done
}

// WriteFunc books the transfer and runs fn inline in the engine when it
// completes (before any waiters on the completion Cond are woken).
func (e *ELink) WriteFunc(core, n int, fn func()) {
	e.submit(core, n).fn = fn
}

func (e *ELink) submit(core, n int) *elinkReq {
	w := e.weight[core]
	// Start-time fair queueing: a flow's next request starts at its own
	// previous finish tag, except that a flow that was idle while the
	// system advanced rejoins at the server's virtual time rather than
	// accumulating unbounded catch-up credit.
	start := math.Max(e.lastTag[core], e.virtual)
	req := &elinkReq{
		core:  core,
		bytes: n,
		start: start,
		tag:   start + float64(n)/w,
		seq:   e.total,
		done:  sim.NewCondIdxOn(e.sh, "elink:core", core),
	}
	e.total++
	e.lastTag[core] = req.tag
	heap.Push(&e.pending, req)
	if !e.busy {
		e.serveNext()
	}
	return req
}

func (e *ELink) serveNext() {
	if e.pending.Len() == 0 {
		e.busy = false
		return
	}
	e.busy = true
	req := heap.Pop(&e.pending).(*elinkReq)
	e.virtual = req.start
	dur := sim.Time(req.bytes) * ELinkBytePeriod
	e.sh.After(dur, func() {
		e.served[req.core]++
		e.svcBytes[req.core] += uint64(req.bytes)
		if req.fn != nil {
			req.fn()
		}
		req.done.Broadcast()
		e.serveNext()
	})
}

// Served returns how many write requests completed for core.
func (e *ELink) Served(core int) uint64 { return e.served[core] }

// TotalServedBytes returns the bytes the link has carried for all cores
// together (the energy model's off-chip write term).
func (e *ELink) TotalServedBytes() uint64 {
	var sum uint64
	for _, b := range e.svcBytes {
		sum += b
	}
	return sum
}

// ServedBytes returns how many bytes were written by core.
func (e *ELink) ServedBytes(core int) uint64 { return e.svcBytes[core] }

// Utilization returns core's share of the bytes carried so far, which is
// directly comparable to the paper's Table II/III "Utilization" column
// (their denominator is the saturated link's capacity; ours is total
// carried bytes, identical under saturation).
func (e *ELink) Utilization(core int) float64 {
	var sum uint64
	for _, b := range e.svcBytes {
		sum += b
	}
	if sum == 0 {
		return 0
	}
	return float64(e.svcBytes[core]) / float64(sum)
}
