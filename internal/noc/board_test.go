package noc

import (
	"testing"

	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

// newBoardMesh builds the 2x2-cluster fabric: four 4x4 chips in an 8x8
// mesh with chip boundaries after row 3 and column 3.
func newBoardMesh() (*sim.Engine, *Mesh) {
	eng := sim.NewEngine()
	return eng, NewMesh(eng, mem.NewBoardMap(2, 2, 4, 4))
}

func TestBoardMapChipGeometry(t *testing.T) {
	m := mem.NewBoardMap(2, 2, 4, 4)
	if m.Rows != 8 || m.Cols != 8 || m.NumChips() != 4 {
		t.Fatalf("board %dx%d/%d chips", m.Rows, m.Cols, m.NumChips())
	}
	idx := m.CoreIndex
	if !m.SameChip(idx(0, 0), idx(3, 3)) {
		t.Error("(0,0) and (3,3) are on the same chip")
	}
	if m.SameChip(idx(0, 3), idx(0, 4)) {
		t.Error("(0,3) and (0,4) straddle the column boundary")
	}
	if got := m.ChipOf(idx(5, 6)); got != 3 {
		t.Errorf("ChipOf(5,6) = %d, want 3", got)
	}
	if got := m.ChipCrossings(idx(0, 0), idx(7, 7)); got != 2 {
		t.Errorf("corner-to-corner crossings = %d, want 2", got)
	}
	if got := m.ChipCrossings(idx(1, 1), idx(2, 2)); got != 0 {
		t.Errorf("intra-chip crossings = %d, want 0", got)
	}
	// The chips' address origins tile the global mesh space contiguously.
	if got := m.ChipOriginID(1, 1); got != mem.MakeCoreID(mem.FirstRow+4, mem.FirstCol+4) {
		t.Errorf("chip (1,1) origin = %v", got)
	}
	// Addressing is unchanged: core (5,6)'s global window decodes back.
	a := m.GlobalOf(idx(5, 6), 0x100)
	tgt := m.Decode(0, a)
	if tgt.Kind != mem.KindCore || tgt.Core != idx(5, 6) || tgt.Off != 0x100 {
		t.Errorf("decode of cross-chip global address = %+v", tgt)
	}
}

func TestBoardDeliverChargesCrossing(t *testing.T) {
	_, m := newBoardMesh()
	idx := m.Map().CoreIndex
	n := 64
	ser := LinkSerialization(n)
	serX := C2CSerialization(n)

	// Intra-chip delivery is priced exactly like a single-chip mesh.
	if got := m.Deliver(0, idx(0, 0), idx(0, 3), n); got != 3*HopLatency+ser {
		t.Fatalf("intra-chip arrival %v, want %v", got, 3*HopLatency+ser)
	}
	if m.Crossings() != 0 {
		t.Fatalf("intra-chip delivery counted %d crossings", m.Crossings())
	}

	// One boundary hop: the message store-and-forwards over the
	// chip-to-chip eLink at its slower rate plus the crossing latency.
	// The eLink delivers the tail itself - serX covers every byte - so
	// no on-chip serialization is charged on top (that double charge was
	// the multi-chip delivery overcharge bug).
	got := m.Deliver(1000, idx(0, 3), idx(0, 4), n)
	want := sim.Time(1000) + serX + C2CHopLatency
	if got != want {
		t.Fatalf("boundary arrival %v, want %v", got, want)
	}
	if m.Crossings() != 1 || m.CrossBytes() != uint64(n) {
		t.Fatalf("crossings=%d bytes=%d after one boundary hop", m.Crossings(), m.CrossBytes())
	}
	if m.CrossTime() != serX+C2CHopLatency {
		t.Fatalf("CrossTime %v, want %v", m.CrossTime(), serX+C2CHopLatency)
	}

	// The crossing must dominate an equal-distance on-chip hop.
	if onChip := HopLatency + ser; got-1000 <= onChip {
		t.Fatalf("boundary hop (%v) not slower than on-chip hop (%v)", got-1000, onChip)
	}
}

// TestBoardFinalHopChargedOnce pins the expected-value arithmetic of the
// final delivery hop: an on-chip final hop is cut-through (head latency
// plus one message serialization), a chip-boundary final hop is store-
// and-forward (eLink serialization plus crossing latency, nothing more).
// Before the overcharge fix the boundary case was additionally billed
// the on-chip serialization it never performed.
func TestBoardFinalHopChargedOnce(t *testing.T) {
	_, m := newBoardMesh()
	idx := m.Map().CoreIndex
	n := 128
	ser := LinkSerialization(n)
	serX := C2CSerialization(n)

	// One on-chip hop: cut-through. Head arrives after HopLatency, tail
	// ser later.
	if got, want := m.Deliver(0, idx(0, 0), idx(0, 1), n), HopLatency+ser; got != want {
		t.Errorf("one on-chip hop arrives at %v, want HopLatency+ser = %v", got, want)
	}

	// One boundary hop: store-and-forward. The eLink carries every byte
	// at C2CBytePeriod and the tail is on the far chip once that (plus
	// the crossing latency) is paid; no on-chip serialization remains.
	if got, want := m.Deliver(0, idx(1, 3), idx(1, 4), n), serX+C2CHopLatency; got != want {
		t.Errorf("one boundary hop arrives at %v, want serX+C2CHopLatency = %v", got, want)
	}

	// Boundary hop followed by an on-chip hop: the message re-enters the
	// cut-through regime after the crossing, so the on-chip serialization
	// is charged exactly once, by the trailing on-chip leg. (Row 4 sits
	// in the other chip row, whose boundary eLink is independent of the
	// one the previous delivery occupied.)
	if got, want := m.Deliver(0, idx(4, 3), idx(4, 5), n), serX+C2CHopLatency+HopLatency+ser; got != want {
		t.Errorf("boundary-then-on-chip arrives at %v, want serX+C2CHopLatency+HopLatency+ser = %v", got, want)
	}
}

func TestBoardBoundaryLinkIsSharedPerChipEdge(t *testing.T) {
	_, m := newBoardMesh()
	idx := m.Map().CoreIndex
	n := 1024

	// Rows 0 and 1 cross the same west-chip/east-chip boundary within
	// chip row 0: they share one eLink and must serialize.
	a := m.Deliver(0, idx(0, 3), idx(0, 4), n)
	b := m.Deliver(0, idx(1, 3), idx(1, 4), n)
	if b <= a {
		t.Fatalf("same-edge crossings did not contend: %v then %v", a, b)
	}
	if b-a < C2CSerialization(n) {
		t.Fatalf("second crossing queued only %v, want >= one serialization %v", b-a, C2CSerialization(n))
	}

	// A crossing on the other chip row uses that boundary's own eLink.
	c := m.Deliver(0, idx(4, 3), idx(4, 4), n)
	if c != a {
		t.Fatalf("independent chip edge contended: %v, want %v", c, a)
	}
}

func TestBoardReadWordPaysCrossings(t *testing.T) {
	_, m := newBoardMesh()
	idx := m.Map().CoreIndex
	intra := m.ReadWord(0, idx(0, 2), idx(0, 3))
	cross := m.ReadWord(0, idx(0, 3), idx(0, 4))
	if cross-intra != 2*C2CHopLatency {
		t.Fatalf("boundary read adds %v, want a %v round trip", cross-intra, 2*C2CHopLatency)
	}
}

func TestSingleChipMeshHasNoCrossings(t *testing.T) {
	_, m := newTestMesh()
	idx := m.Map().CoreIndex
	m.Deliver(0, idx(0, 0), idx(7, 7), 512)
	if m.Crossings() != 0 || m.CrossTime() != 0 {
		t.Fatalf("single-chip mesh reported crossings=%d time=%v", m.Crossings(), m.CrossTime())
	}
}

// deliverTrace drives a pseudo-random schedule of concurrent deliveries
// over the board mesh (many spanning chip boundaries) and returns every
// arrival time in completion order.
func deliverTrace(seed uint64) []sim.Time {
	eng, m := newBoardMesh()
	rng := sim.NewRand(seed)
	cores := m.Map().NumCores()
	var arrivals []sim.Time
	for p := 0; p < 16; p++ {
		start := sim.Time(rng.Intn(100))
		moves := 4 + rng.Intn(8)
		src := rng.Intn(cores)
		dsts := make([]int, moves)
		sizes := make([]int, moves)
		for i := range dsts {
			dsts[i] = rng.Intn(cores)
			sizes[i] = 8 * (1 + rng.Intn(64))
		}
		eng.SpawnAt(start, "router-proc", func(pr *sim.Proc) {
			for i := 0; i < moves; i++ {
				arrive := m.Deliver(pr.Now(), src, dsts[i], sizes[i])
				pr.WaitUntil(arrive)
				arrivals = append(arrivals, arrive)
			}
		})
	}
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return arrivals
}

// FuzzBoardDeliverDeterminism: same seed + same spawn order => the
// multi-chip router produces an identical event trace. The seed corpus
// runs under plain `go test`; `go test -fuzz` explores further.
func FuzzBoardDeliverDeterminism(f *testing.F) {
	for _, s := range []uint64{1, 7, 42, 0xDEADBEEF, 1 << 40} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		a, b := deliverTrace(seed), deliverTrace(seed)
		if len(a) != len(b) {
			t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	})
}

// TestBoardC2COverrides prices deliveries under overridden chip-to-chip
// timing with the same expected-value arithmetic as the tests above,
// and checks the override's contract: zero arguments are no-ops, and
// Reset keeps the override (it is a property of the board, not a run).
func TestBoardC2COverrides(t *testing.T) {
	_, m := newBoardMesh()
	idx := m.Map().CoreIndex
	n := 64

	byteP, hopL := 2*C2CBytePeriod, 3*C2CHopLatency
	m.SetC2C(byteP, hopL)
	if bp, hl := m.C2C(); bp != byteP || hl != hopL {
		t.Fatalf("C2C() = (%v, %v), want (%v, %v)", bp, hl, byteP, hopL)
	}
	serX := sim.Time(n) * byteP

	// One boundary hop under the slower link: store-and-forward at the
	// overridden rate plus the overridden crossing latency.
	got := m.Deliver(0, idx(0, 3), idx(0, 4), n)
	if want := serX + hopL; got != want {
		t.Fatalf("overridden boundary arrival %v, want %v", got, want)
	}
	if m.CrossTime() != serX+hopL {
		t.Fatalf("CrossTime %v, want %v", m.CrossTime(), serX+hopL)
	}

	// Intra-chip routes never see the override.
	ser := LinkSerialization(n)
	if got := m.Deliver(0, idx(0, 0), idx(0, 3), n); got != 3*HopLatency+ser {
		t.Fatalf("intra-chip arrival %v under override, want %v", got, 3*HopLatency+ser)
	}

	// The read network pays the overridden crossing latency per boundary.
	base := ReadWordRoundTrip + 2*HopLatency
	if got := m.ReadWord(0, idx(0, 3), idx(0, 4)); got != base+2*hopL {
		t.Fatalf("cross-chip ReadWord %v, want %v", got, base+2*hopL)
	}

	// Reset clears occupancy and stats but keeps the board's link timing.
	m.Reset()
	if bp, hl := m.C2C(); bp != byteP || hl != hopL {
		t.Fatalf("Reset dropped the C2C override: (%v, %v)", bp, hl)
	}
	if got := m.Deliver(0, idx(0, 3), idx(0, 4), n); got != serX+hopL {
		t.Fatalf("post-Reset boundary arrival %v, want %v", got, serX+hopL)
	}

	// Zero arguments keep the current values.
	m.SetC2C(0, 0)
	if bp, hl := m.C2C(); bp != byteP || hl != hopL {
		t.Fatalf("SetC2C(0,0) changed timing to (%v, %v)", bp, hl)
	}

	// A fresh mesh defaults to the calibrated constants.
	_, fresh := newBoardMesh()
	if bp, hl := fresh.C2C(); bp != C2CBytePeriod || hl != C2CHopLatency {
		t.Fatalf("fresh mesh C2C = (%v, %v), want calibrated defaults", bp, hl)
	}
}
