package noc

import (
	"fmt"

	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

// Dir is a mesh link direction.
type Dir uint8

// Link directions out of a router.
const (
	East Dir = iota
	West
	North
	South
)

func (d Dir) String() string {
	return [...]string{"east", "west", "north", "south"}[d]
}

// link is one directed mesh edge: an on-chip wire, or - when it spans a
// chip boundary on a multi-chip board - a share of the chip-to-chip
// eLink crossing that boundary.
type link struct {
	res   *sim.Resource
	cross bool
}

// Mesh is the eMesh fabric of one board: a rows x cols grid of routers
// with separate physical links per direction. The Epiphany has three
// mesh networks (on-chip write, off-chip write, read request); we model
// the on-chip write network with per-link contention, the read network
// analytically (the paper's codes avoid remote reads), and the off-chip
// write network via the ELink arbiter.
//
// On a multi-chip board (mem.NewBoardMap) the grid spans every chip and
// the router is chip-boundary aware: a hop between routers on different
// chips leaves the wide on-chip fabric for the narrow chip-to-chip
// eLink. All rows crossing the same vertical chip boundary within one
// chip share a single eLink per direction (likewise columns across a
// horizontal boundary), so boundary hops contend in the eLink's merge
// arbiter, pay C2CHopLatency, and re-serialize the whole message at
// C2CBytePeriod (the store-and-forward packetization of the off-chip
// protocol, 8x slower than an on-chip link).
type Mesh struct {
	eng        *sim.Engine
	amap       *mem.Map
	rows, cols int
	// h[r][c] is the link between router (r,c) and (r,c+1); h[r][c][0]
	// carries eastbound traffic, [1] westbound. Similarly v for vertical.
	h [][][2]link
	v [][][2]link
	// errata0 enables the E64G401 Errata #0 model: "Duplicate IO
	// Transaction" makes instruction fetches and data reads from cores in
	// (chip-relative) row 2 and column 2 issue twice, halving their read
	// throughput. DMA and writes are unaffected, per the datasheet.
	errata0 bool
	// stats
	writes uint64
	bytes  uint64
	// chip-boundary crossing stats (all zero on a single-chip board)
	crossings  uint64
	crossBytes uint64
	crossTime  sim.Time
}

// NewMesh builds the eMesh for the given address map.
func NewMesh(eng *sim.Engine, amap *mem.Map) *Mesh {
	m := &Mesh{eng: eng, amap: amap, rows: amap.Rows, cols: amap.Cols}
	chipRows, chipCols := amap.ChipDims()
	// Chip-to-chip eLinks are shared per chip edge: key by the boundary
	// position and the chip-grid row (or column) on which the crossing
	// happens, one resource pair per direction.
	xlinks := make(map[string]*sim.Resource)
	xlink := func(key string) *sim.Resource {
		r, ok := xlinks[key]
		if !ok {
			r = sim.NewResource("c2c" + key)
			xlinks[key] = r
		}
		return r
	}
	m.h = make([][][2]link, m.rows)
	for r := 0; r < m.rows; r++ {
		m.h[r] = make([][2]link, m.cols-1)
		for c := 0; c < m.cols-1; c++ {
			if (c+1)%chipCols == 0 {
				// Vertical chip boundary after column c: every row of
				// this chip row shares the boundary's eLink pair.
				key := fmt.Sprintf("(%d,%d)", r/chipRows, c)
				m.h[r][c][0] = link{xlink(key + "e"), true}
				m.h[r][c][1] = link{xlink(key + "w"), true}
			} else {
				m.h[r][c][0] = link{sim.NewResource(fmt.Sprintf("link(%d,%d)e", r, c)), false}
				m.h[r][c][1] = link{sim.NewResource(fmt.Sprintf("link(%d,%d)w", r, c)), false}
			}
		}
	}
	m.v = make([][][2]link, m.rows-1)
	for r := 0; r < m.rows-1; r++ {
		m.v[r] = make([][2]link, m.cols)
		for c := 0; c < m.cols; c++ {
			if (r+1)%chipRows == 0 {
				key := fmt.Sprintf("(%d,%d)", r, c/chipCols)
				m.v[r][c][0] = link{xlink(key + "s"), true}
				m.v[r][c][1] = link{xlink(key + "n"), true}
			} else {
				m.v[r][c][0] = link{sim.NewResource(fmt.Sprintf("link(%d,%d)s", r, c)), false}
				m.v[r][c][1] = link{sim.NewResource(fmt.Sprintf("link(%d,%d)n", r, c)), false}
			}
		}
	}
	return m
}

// Rows returns the mesh height.
func (m *Mesh) Rows() int { return m.rows }

// Cols returns the mesh width.
func (m *Mesh) Cols() int { return m.cols }

// Map returns the address map the mesh serves.
func (m *Mesh) Map() *mem.Map { return m.amap }

// Distance returns the Manhattan distance (= XY hop count) between cores.
func (m *Mesh) Distance(src, dst int) int {
	sr, sc := m.amap.CoreCoords(src)
	dr, dc := m.amap.CoreCoords(dst)
	return abs(sr-dr) + abs(sc-dc)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// path invokes fn for every directed link on the X-then-Y route from src
// to dst, in traversal order.
func (m *Mesh) path(src, dst int, fn func(link)) {
	sr, sc := m.amap.CoreCoords(src)
	dr, dc := m.amap.CoreCoords(dst)
	for c := sc; c < dc; c++ {
		fn(m.h[sr][c][0])
	}
	for c := sc; c > dc; c-- {
		fn(m.h[sr][c-1][1])
	}
	for r := sr; r < dr; r++ {
		fn(m.v[r][dc][0])
	}
	for r := sr; r > dr; r-- {
		fn(m.v[r-1][dc][1])
	}
}

// Deliver books an n-byte write transfer from src to dst onto the on-chip
// write network, requested at time t, and returns the time the last byte
// arrives at dst. It models wormhole cut-through: the head pays HopLatency
// per hop (plus queueing wherever a link is already busy) and every link
// on the path is occupied for the message's serialization time.
//
// Deliver does not charge the sender's CPU or DMA pacing; callers add
// their own issue costs (DirectWriteWordPeriod, DMASerialization, ...) and
// pass the max of the two serialization models as arrival when needed.
//
// Hops that cross a chip boundary leave the cut-through regime: the
// chip-to-chip eLink store-and-forwards the message at its own (much
// slower) serialization rate, after waiting for the shared link and
// paying the off-chip C2CHopLatency. The extra time spent on boundary
// crossings is accumulated in CrossTime.
func (m *Mesh) Deliver(t sim.Time, src, dst, n int) (arrive sim.Time) {
	m.writes++
	m.bytes += uint64(n)
	if src == dst || n == 0 {
		return t
	}
	ser := LinkSerialization(n)
	serX := C2CSerialization(n)
	cur := t
	m.path(src, dst, func(lk link) {
		if lk.cross {
			begin, _ := lk.res.Use(cur, serX)
			next := begin + serX + C2CHopLatency
			m.crossings++
			m.crossBytes += uint64(n)
			m.crossTime += next - cur
			cur = next
			return
		}
		begin, _ := lk.res.Use(cur, ser)
		cur = begin + HopLatency
	})
	return cur + ser
}

// Crossings returns how many chip-boundary eLink hops Deliver has routed
// (zero on a single-chip board).
func (m *Mesh) Crossings() uint64 { return m.crossings }

// CrossBytes returns the total bytes carried over chip-to-chip eLinks.
func (m *Mesh) CrossBytes() uint64 { return m.crossBytes }

// CrossTime returns the accumulated time messages spent traversing chip
// boundaries (arbitration waits, off-chip serialization and crossing
// latency), summed over deliveries.
func (m *Mesh) CrossTime() sim.Time { return m.crossTime }

// SetErrata0 toggles the Errata #0 duplicate-read model (off by default;
// the paper's benchmarks avoid the affected paths, as do ours).
func (m *Mesh) SetErrata0(on bool) { m.errata0 = on }

// Errata0 reports whether the duplicate-read erratum is being modelled.
func (m *Mesh) Errata0() bool { return m.errata0 }

// errata0Hits reports whether a read issued by core src duplicates under
// Errata #0 (the issuing core sits in chip-relative row 2 or column 2;
// on a multi-chip board the erratum is per chip).
func (m *Mesh) errata0Hits(src int) bool {
	if !m.errata0 {
		return false
	}
	chipRows, chipCols := m.amap.ChipDims()
	r, c := m.amap.CoreCoords(src)
	return r%chipRows == 2 || c%chipCols == 2
}

// ReadWord models a single remote 32-bit load from src's CPU to dst's
// memory: a full request/response round trip on the read network. Each
// chip boundary on the route adds a round trip over the chip-to-chip
// eLink's crossing latency.
func (m *Mesh) ReadWord(t sim.Time, src, dst int) (done sim.Time) {
	hops := sim.Time(m.Distance(src, dst))
	cost := ReadWordRoundTrip + 2*hops*HopLatency
	if x := m.amap.ChipCrossings(src, dst); x > 0 {
		cost += 2 * sim.Time(x) * C2CHopLatency
	}
	if m.errata0Hits(src) {
		cost *= 2 // the transaction issues twice
	}
	return t + cost
}

// Writes returns the number of Deliver calls.
func (m *Mesh) Writes() uint64 { return m.writes }

// Bytes returns the total bytes delivered.
func (m *Mesh) Bytes() uint64 { return m.bytes }

// LinkUtilization returns the utilization of the eastbound link out of
// router (r,c) at time now, for diagnostics.
func (m *Mesh) LinkUtilization(r, c int, d Dir, now sim.Time) float64 {
	switch d {
	case East:
		return m.h[r][c][0].res.Utilization(now)
	case West:
		return m.h[r][c-1][1].res.Utilization(now)
	case South:
		return m.v[r][c][0].res.Utilization(now)
	default:
		return m.v[r-1][c][1].res.Utilization(now)
	}
}
