package noc

import (
	"fmt"

	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

// Dir is a mesh link direction.
type Dir uint8

// Link directions out of a router.
const (
	East Dir = iota
	West
	North
	South
)

func (d Dir) String() string {
	return [...]string{"east", "west", "north", "south"}[d]
}

// Mesh is the on-chip eMesh: a rows x cols grid of routers with separate
// physical links per direction. The Epiphany has three mesh networks
// (on-chip write, off-chip write, read request); we model the on-chip
// write network with per-link contention, the read network analytically
// (the paper's codes avoid remote reads), and the off-chip write network
// via the ELink arbiter.
type Mesh struct {
	eng        *sim.Engine
	amap       *mem.Map
	rows, cols int
	// h[r][c] is the link between router (r,c) and (r,c+1); h[r][c][0]
	// carries eastbound traffic, [1] westbound. Similarly v for vertical.
	h [][][2]*sim.Resource
	v [][][2]*sim.Resource
	// errata0 enables the E64G401 Errata #0 model: "Duplicate IO
	// Transaction" makes instruction fetches and data reads from cores in
	// (chip-relative) row 2 and column 2 issue twice, halving their read
	// throughput. DMA and writes are unaffected, per the datasheet.
	errata0 bool
	// stats
	writes uint64
	bytes  uint64
}

// NewMesh builds the eMesh for the given address map.
func NewMesh(eng *sim.Engine, amap *mem.Map) *Mesh {
	m := &Mesh{eng: eng, amap: amap, rows: amap.Rows, cols: amap.Cols}
	m.h = make([][][2]*sim.Resource, m.rows)
	for r := 0; r < m.rows; r++ {
		m.h[r] = make([][2]*sim.Resource, m.cols-1)
		for c := 0; c < m.cols-1; c++ {
			m.h[r][c][0] = sim.NewResource(fmt.Sprintf("link(%d,%d)e", r, c))
			m.h[r][c][1] = sim.NewResource(fmt.Sprintf("link(%d,%d)w", r, c))
		}
	}
	m.v = make([][][2]*sim.Resource, m.rows-1)
	for r := 0; r < m.rows-1; r++ {
		m.v[r] = make([][2]*sim.Resource, m.cols)
		for c := 0; c < m.cols; c++ {
			m.v[r][c][0] = sim.NewResource(fmt.Sprintf("link(%d,%d)s", r, c))
			m.v[r][c][1] = sim.NewResource(fmt.Sprintf("link(%d,%d)n", r, c))
		}
	}
	return m
}

// Rows returns the mesh height.
func (m *Mesh) Rows() int { return m.rows }

// Cols returns the mesh width.
func (m *Mesh) Cols() int { return m.cols }

// Map returns the address map the mesh serves.
func (m *Mesh) Map() *mem.Map { return m.amap }

// Distance returns the Manhattan distance (= XY hop count) between cores.
func (m *Mesh) Distance(src, dst int) int {
	sr, sc := m.amap.CoreCoords(src)
	dr, dc := m.amap.CoreCoords(dst)
	return abs(sr-dr) + abs(sc-dc)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// path invokes fn for every directed link on the X-then-Y route from src
// to dst, in traversal order.
func (m *Mesh) path(src, dst int, fn func(*sim.Resource)) {
	sr, sc := m.amap.CoreCoords(src)
	dr, dc := m.amap.CoreCoords(dst)
	for c := sc; c < dc; c++ {
		fn(m.h[sr][c][0])
	}
	for c := sc; c > dc; c-- {
		fn(m.h[sr][c-1][1])
	}
	for r := sr; r < dr; r++ {
		fn(m.v[r][dc][0])
	}
	for r := sr; r > dr; r-- {
		fn(m.v[r-1][dc][1])
	}
}

// Deliver books an n-byte write transfer from src to dst onto the on-chip
// write network, requested at time t, and returns the time the last byte
// arrives at dst. It models wormhole cut-through: the head pays HopLatency
// per hop (plus queueing wherever a link is already busy) and every link
// on the path is occupied for the message's serialization time.
//
// Deliver does not charge the sender's CPU or DMA pacing; callers add
// their own issue costs (DirectWriteWordPeriod, DMASerialization, ...) and
// pass the max of the two serialization models as arrival when needed.
func (m *Mesh) Deliver(t sim.Time, src, dst, n int) (arrive sim.Time) {
	m.writes++
	m.bytes += uint64(n)
	if src == dst || n == 0 {
		return t
	}
	ser := LinkSerialization(n)
	cur := t
	m.path(src, dst, func(link *sim.Resource) {
		begin, _ := link.Use(cur, ser)
		cur = begin + HopLatency
	})
	return cur + ser
}

// SetErrata0 toggles the Errata #0 duplicate-read model (off by default;
// the paper's benchmarks avoid the affected paths, as do ours).
func (m *Mesh) SetErrata0(on bool) { m.errata0 = on }

// Errata0 reports whether the duplicate-read erratum is being modelled.
func (m *Mesh) Errata0() bool { return m.errata0 }

// errata0Hits reports whether a read issued by core src duplicates under
// Errata #0 (the issuing core sits in row 2 or column 2).
func (m *Mesh) errata0Hits(src int) bool {
	if !m.errata0 {
		return false
	}
	r, c := m.amap.CoreCoords(src)
	return r == 2 || c == 2
}

// ReadWord models a single remote 32-bit load from src's CPU to dst's
// memory: a full request/response round trip on the read network.
func (m *Mesh) ReadWord(t sim.Time, src, dst int) (done sim.Time) {
	hops := sim.Time(m.Distance(src, dst))
	cost := ReadWordRoundTrip + 2*hops*HopLatency
	if m.errata0Hits(src) {
		cost *= 2 // the transaction issues twice
	}
	return t + cost
}

// Writes returns the number of Deliver calls.
func (m *Mesh) Writes() uint64 { return m.writes }

// Bytes returns the total bytes delivered.
func (m *Mesh) Bytes() uint64 { return m.bytes }

// LinkUtilization returns the utilization of the eastbound link out of
// router (r,c) at time now, for diagnostics.
func (m *Mesh) LinkUtilization(r, c int, d Dir, now sim.Time) float64 {
	switch d {
	case East:
		return m.h[r][c][0].Utilization(now)
	case West:
		return m.h[r][c-1][1].Utilization(now)
	case South:
		return m.v[r][c][0].Utilization(now)
	default:
		return m.v[r-1][c][1].Utilization(now)
	}
}
