package noc

import (
	"fmt"

	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

// Dir is a mesh link direction.
type Dir uint8

// Link directions out of a router.
const (
	East Dir = iota
	West
	North
	South
)

func (d Dir) String() string {
	return [...]string{"east", "west", "north", "south"}[d]
}

// linkState is the occupancy record of one physical link slot: the same
// bandwidth-accounting model as sim.Resource (begin = max(t, freeAt),
// busy until begin+d), held as a plain value in the mesh's flat slot
// array so building and resetting a fabric allocates nothing per link.
// Diagnostic names are derived lazily from grid position (LinkName);
// the state itself carries none.
type linkState struct {
	freeAt sim.Time
	busy   sim.Time // cumulative occupancy, for utilization stats
	uses   uint64
}

// Mesh is the eMesh fabric of one board: a rows x cols grid of routers
// with separate physical links per direction. The Epiphany has three
// mesh networks (on-chip write, off-chip write, read request); we model
// the on-chip write network with per-link contention, the read network
// analytically (the paper's codes avoid remote reads), and the off-chip
// write network via the ELink arbiter.
//
// On a multi-chip board (mem.NewBoardMap) the grid spans every chip and
// the router is chip-boundary aware: a hop between routers on different
// chips leaves the wide on-chip fabric for the narrow chip-to-chip
// eLink. All rows crossing the same vertical chip boundary within one
// chip share a single eLink per direction (likewise columns across a
// horizontal boundary), so boundary hops contend in the eLink's merge
// arbiter, pay C2CHopLatency, and re-serialize the whole message at
// C2CBytePeriod (the store-and-forward packetization of the off-chip
// protocol, 8x slower than an on-chip link).
type Mesh struct {
	eng                *sim.Engine
	amap               *mem.Map
	rows, cols         int
	chipRows, chipCols int
	// links holds every distinct physical link slot: private on-chip
	// directed links in [0, crossBase), then the shared chip-to-chip
	// eLink slots in [crossBase, len). A slot index >= crossBase is what
	// marks a hop as a chip-boundary crossing.
	links     []linkState
	crossBase int32
	// hIdx[(r*(cols-1)+c)*2+d] is the slot of the horizontal link between
	// routers (r,c) and (r,c+1): d=0 eastbound, d=1 westbound. Boundary
	// columns alias the shared c2c slots (every row of a chip edge maps
	// to the same slot). vIdx is the same for vertical links between
	// (r,c) and (r+1,c): d=0 southbound, d=1 northbound.
	hIdx []int32
	vIdx []int32
	// errata0 enables the E64G401 Errata #0 model: "Duplicate IO
	// Transaction" makes instruction fetches and data reads from cores in
	// (chip-relative) row 2 and column 2 issue twice, halving their read
	// throughput. DMA and writes are unaffected, per the datasheet.
	errata0 bool
	// c2cByte and c2cHop are this board's chip-to-chip eLink timing
	// parameters, defaulting to the calibrated C2CBytePeriod and
	// C2CHopLatency. They are construction-time properties of the fabric
	// (SetC2C models a faster or slower off-chip link), so Reset keeps
	// them: a recycled board stays the same board.
	c2cByte sim.Time
	c2cHop  sim.Time
	// gridRows x gridCols is the chip grid.
	gridRows, gridCols int
	// cnt holds the delivery statistics, one padded row per chip so
	// concurrently running chip shards never write the same cache line;
	// the exported accessors sum the rows. Each walk books into the row
	// of the chip the message is currently on (its shard's own row when
	// the engine is sharded).
	cnt []meshCnt
	// shards maps chip index -> owning shard once AttachShards wires a
	// multi-chip board to a sharded engine; nil on single-chip boards
	// and unsharded engines, where Deliver handles every route inline.
	shards []*sim.Shard
	// rec, when non-nil, observes eLink crossings for timeline export;
	// attached per run via SetRecorder and cleared by Reset.
	rec Recorder
}

// meshCnt is one chip's slice of the mesh statistics. See the Mesh
// field docs for what each counter means; the split per chip exists so
// parallel shards can account without sharing cache lines (the trailing
// pad keeps rows 128 bytes apart).
type meshCnt struct {
	writes         uint64
	bytes          uint64
	hopBytes       uint64
	crossReadBytes uint64
	crossings      uint64
	crossBytes     uint64
	crossTime      sim.Time
	_              [9]uint64
}

// NewMesh builds the eMesh for the given address map.
func NewMesh(eng *sim.Engine, amap *mem.Map) *Mesh {
	m := &Mesh{
		eng: eng, amap: amap, rows: amap.Rows, cols: amap.Cols,
		c2cByte: C2CBytePeriod, c2cHop: C2CHopLatency,
	}
	m.chipRows, m.chipCols = amap.ChipDims()
	gridRows, gridCols := amap.ChipGrid()
	m.gridRows, m.gridCols = gridRows, gridCols
	m.cnt = make([]meshCnt, gridRows*gridCols)
	// Shared chip-to-chip eLink slots, resolved by index: one pair per
	// (vertical boundary, chip-grid row) and per (horizontal boundary,
	// chip-grid column).
	nVCross := (gridCols - 1) * gridRows * 2
	nHCross := (gridRows - 1) * gridCols * 2
	nH := m.rows * (m.cols - 1)
	nV := (m.rows - 1) * m.cols
	onChip := (nH+nV)*2 - m.rows*(gridCols-1)*2 - m.cols*(gridRows-1)*2
	m.crossBase = int32(onChip)
	m.links = make([]linkState, onChip+nVCross+nHCross)
	m.hIdx = make([]int32, nH*2)
	m.vIdx = make([]int32, nV*2)
	next := int32(0)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols-1; c++ {
			p := (r*(m.cols-1) + c) * 2
			if (c+1)%m.chipCols == 0 {
				// Vertical chip boundary after column c: every row of
				// this chip row shares the boundary's eLink pair.
				b := (c+1)/m.chipCols - 1
				slot := m.crossBase + int32((b*gridRows+r/m.chipRows)*2)
				m.hIdx[p], m.hIdx[p+1] = slot, slot+1
			} else {
				m.hIdx[p], m.hIdx[p+1] = next, next+1
				next += 2
			}
		}
	}
	for r := 0; r < m.rows-1; r++ {
		for c := 0; c < m.cols; c++ {
			p := (r*m.cols + c) * 2
			if (r+1)%m.chipRows == 0 {
				b := (r+1)/m.chipRows - 1
				slot := m.crossBase + int32(nVCross) + int32((b*gridCols+c/m.chipCols)*2)
				m.vIdx[p], m.vIdx[p+1] = slot, slot+1
			} else {
				m.vIdx[p], m.vIdx[p+1] = next, next+1
				next += 2
			}
		}
	}
	if next != m.crossBase {
		panic(fmt.Sprintf("noc: on-chip slot count mismatch: assigned %d, sized %d", next, m.crossBase))
	}
	return m
}

// Reset clears every link's occupancy and all delivery statistics,
// returning the fabric to its just-constructed state (including the
// errata model, which defaults off) so a recycled board is
// bit-deterministic with a fresh one.
func (m *Mesh) Reset() {
	clear(m.links)
	m.errata0 = false
	clear(m.cnt)
	m.rec = nil
}

// SetRecorder attaches (or with nil, detaches) a timeline recorder for
// chip-to-chip crossings. Attach before a run; recycled boards drop the
// recorder on Reset.
func (m *Mesh) SetRecorder(r Recorder) { m.rec = r }

// Rows returns the mesh height.
func (m *Mesh) Rows() int { return m.rows }

// Cols returns the mesh width.
func (m *Mesh) Cols() int { return m.cols }

// Map returns the address map the mesh serves.
func (m *Mesh) Map() *mem.Map { return m.amap }

// Distance returns the Manhattan distance (= XY hop count) between cores.
func (m *Mesh) Distance(src, dst int) int {
	sr, sc := m.amap.CoreCoords(src)
	dr, dc := m.amap.CoreCoords(dst)
	return abs(sr-dr) + abs(sc-dc)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// hop books one directed link slot for a message whose head reaches the
// router at cur, and returns the time the message is past the hop plus
// whether the hop crossed a chip boundary. On-chip hops are cut-through:
// the head moves on after HopLatency while the link stays occupied for
// the serialization time. Boundary hops store-and-forward: the returned
// time is the tail's arrival on the far chip.
func (m *Mesh) hop(row *meshCnt, slot int32, cur, ser, serX sim.Time, n int) (sim.Time, bool) {
	ls := &m.links[slot]
	begin := cur
	if ls.freeAt > begin {
		begin = ls.freeAt
	}
	if slot >= m.crossBase {
		ls.freeAt = begin + serX
		ls.busy += serX
		ls.uses++
		next := begin + serX + m.c2cHop
		row.crossings++
		row.crossBytes += uint64(n)
		row.crossTime += next - cur
		if m.rec != nil {
			m.rec.ELinkCross(int(slot-m.crossBase), cur, next, n)
		}
		return next, true
	}
	ls.freeAt = begin + ser
	ls.busy += ser
	ls.uses++
	row.hopBytes += uint64(n)
	return begin + HopLatency, false
}

// chipAt returns the chip index of router (r,c) in row-major chip-grid
// order.
func (m *Mesh) chipAt(r, c int) int {
	return (r/m.chipRows)*m.gridCols + c/m.chipCols
}

// ChipOf returns the chip index of a core.
func (m *Mesh) ChipOf(core int) int {
	r, c := m.amap.CoreCoords(core)
	return m.chipAt(r, c)
}

// AttachShards wires a multi-chip mesh to a sharded engine: shards[i]
// is the shard owning chip i. Once attached, routes that cross a chip
// boundary must go through DeliverCross or DeliverSys (Deliver panics
// on them): chip shards book only their own chip's links inline - gated
// by sim.Shard.AwaitBookingWindow, so a chip running ahead inside the
// lookahead window can never book a slot before a lower-keyed cross
// walk still in flight - and cross-chip walks run on the sys shard,
// whose rounds are mutually exclusive with every chip round, so it may
// book any chip's links race-free, at the same virtual times and in the
// same canonical order as the unsharded engine.
func (m *Mesh) AttachShards(shards []*sim.Shard) {
	if len(shards) != len(m.cnt) {
		panic(fmt.Sprintf("noc: AttachShards with %d shards for %d chips", len(shards), len(m.cnt)))
	}
	m.shards = shards
}

// CrossShard reports whether a src->dst route crosses chip boundaries
// on a shard-attached mesh (and so must use DeliverCross).
func (m *Mesh) CrossShard(src, dst int) bool {
	return m.shards != nil && m.ChipOf(src) != m.ChipOf(dst)
}

// Deliver books an n-byte write transfer from src to dst onto the on-chip
// write network, requested at time t, and returns the time the last byte
// arrives at dst. It models wormhole cut-through: the head pays HopLatency
// per hop (plus queueing wherever a link is already busy) and every link
// on the path is occupied for the message's serialization time.
//
// Deliver does not charge the sender's CPU or DMA pacing; callers add
// their own issue costs (DirectWriteWordPeriod, DMASerialization, ...) and
// pass the max of the two serialization models as arrival when needed.
//
// Hops that cross a chip boundary leave the cut-through regime: the
// chip-to-chip eLink store-and-forwards the message at its own (much
// slower) serialization rate, after waiting for the shared link and
// paying the off-chip C2CHopLatency. The extra time spent on boundary
// crossings is accumulated in CrossTime. When the final hop is such a
// crossing, the store-and-forward time already covers the tail's
// arrival, so the on-chip serialization is not charged again.
//
// The XY route (X leg first, then Y) is walked inline over the flat
// slot arrays; a call performs no allocations.
func (m *Mesh) Deliver(t sim.Time, src, dst, n int) (arrive sim.Time) {
	if m.shards != nil && m.ChipOf(src) != m.ChipOf(dst) {
		panic("noc: Deliver across chips on a shard-attached mesh (use DeliverCross/DeliverSys)")
	}
	return m.deliver(t, src, dst, n)
}

// deliver is the walk shared by Deliver (same-chip routes, any context)
// and DeliverSys/DeliverCross (cross-chip routes, sys context only).
func (m *Mesh) deliver(t sim.Time, src, dst, n int) (arrive sim.Time) {
	sr, sc := m.amap.CoreCoords(src)
	srcChip := m.chipAt(sr, sc)
	row := &m.cnt[srcChip]
	row.writes++
	row.bytes += uint64(n)
	if src == dst || n == 0 {
		return t
	}
	if m.shards != nil {
		// Link slots are FIFO high-water marks, so bookings must land
		// in canonical key order. A walk from a chip shard's own
		// context must therefore wait until no other chip can still
		// issue a lower-keyed cross-chip walk that routes over this
		// chip's links; walks executed on sys (and sequential runs)
		// are ordered already and pass straight through.
		m.shards[srcChip].AwaitBookingWindow()
	}
	dr, dc := m.amap.CoreCoords(dst)
	ser := LinkSerialization(n)
	serX := sim.Time(n) * m.c2cByte
	cur := t
	lastCross := false
	hw := m.cols - 1
	for c := sc; c < dc; c++ {
		cur, lastCross = m.hop(row, m.hIdx[(sr*hw+c)*2], cur, ser, serX, n)
	}
	for c := sc; c > dc; c-- {
		cur, lastCross = m.hop(row, m.hIdx[(sr*hw+c-1)*2+1], cur, ser, serX, n)
	}
	for r := sr; r < dr; r++ {
		cur, lastCross = m.hop(row, m.vIdx[(r*m.cols+dc)*2], cur, ser, serX, n)
	}
	for r := sr; r > dr; r-- {
		cur, lastCross = m.hop(row, m.vIdx[((r-1)*m.cols+dc)*2+1], cur, ser, serX, n)
	}
	if lastCross {
		// The boundary eLink already delivered the tail (store-and-
		// forward); adding the on-chip serialization would charge the
		// final hop twice.
		return cur
	}
	return cur + ser
}

// DeliverSys is the cross-chip form of Deliver on a shard-attached
// mesh: the same walk, booking, statistics, and arrival time, callable
// only from the sys shard's execution context. Sys rounds are mutually
// exclusive with every chip shard's rounds under the conservative
// scheduler, so booking other chips' links from here is race-free and
// lands in canonical event order.
func (m *Mesh) DeliverSys(t sim.Time, src, dst, n int) (arrive sim.Time) {
	return m.deliver(t, src, dst, n)
}

// DeliverCross books an n-byte write transfer whose XY route crosses
// chip boundaries on a shard-attached mesh, and schedules cb(arrive) in
// the destination core's shard, where arrive is what Deliver would have
// returned (clamped up to minT, the caller's pacing floor). It must be
// called from the source core's shard.
//
// The walk itself runs on the sys shard: the issuing shard posts the
// route there, sys performs the whole walk synchronously at the issue
// time (its rounds are mutually exclusive with every chip round, so it
// may book any chip's links race-free), and the arrival callback is
// posted on to the destination shard. Routing through sys keeps every
// link booking at the same virtual time and in the same canonical order
// as the unsharded engine - which is what makes sharded metrics
// bit-identical to the classic ones. A segmented chip-by-chip walk
// would book contended slots at later virtual times and redistribute
// queueing delays.
func (m *Mesh) DeliverCross(t sim.Time, src, dst, n int, minT sim.Time, cb func(arrive sim.Time)) {
	if m.shards == nil {
		panic("noc: DeliverCross without AttachShards")
	}
	srcChip, dstChip := m.ChipOf(src), m.ChipOf(dst)
	if srcChip == dstChip {
		panic("noc: DeliverCross on a same-chip route (use Deliver)")
	}
	sys := m.eng.Sys()
	to := m.shards[dstChip]
	m.shards[srcChip].SendTagged(sys, t, src, func() {
		arrive := m.deliver(t, src, dst, n)
		if arrive < minT {
			arrive = minT
		}
		sys.Send(to, arrive, func() { cb(arrive) })
	})
}

// Crossings returns how many chip-boundary eLink hops Deliver has routed
// (zero on a single-chip board).
func (m *Mesh) Crossings() uint64 {
	var n uint64
	for i := range m.cnt {
		n += m.cnt[i].crossings
	}
	return n
}

// CrossBytes returns the total bytes carried over chip-to-chip eLinks.
func (m *Mesh) CrossBytes() uint64 {
	var n uint64
	for i := range m.cnt {
		n += m.cnt[i].crossBytes
	}
	return n
}

// CrossTime returns the accumulated time messages spent traversing chip
// boundaries (arbitration waits, off-chip serialization and crossing
// latency), summed over deliveries.
func (m *Mesh) CrossTime() sim.Time {
	var t sim.Time
	for i := range m.cnt {
		t += m.cnt[i].crossTime
	}
	return t
}

// SetC2C overrides the chip-to-chip eLink timing: the per-byte
// serialization period and the per-crossing head latency, in sim.Time
// units. A zero argument keeps the corresponding calibrated default
// (C2CBytePeriod, C2CHopLatency), so SetC2C(0, 0) is a no-op. The
// override is a property of the board, not of a run: Reset preserves
// it, and it has no effect on a single-chip mesh (which has no
// boundary links to apply it to).
func (m *Mesh) SetC2C(bytePeriod, hopLatency sim.Time) {
	if bytePeriod > 0 {
		m.c2cByte = bytePeriod
	}
	if hopLatency > 0 {
		m.c2cHop = hopLatency
	}
}

// C2C reports the board's chip-to-chip eLink timing parameters.
func (m *Mesh) C2C() (bytePeriod, hopLatency sim.Time) {
	return m.c2cByte, m.c2cHop
}

// SetErrata0 toggles the Errata #0 duplicate-read model (off by default;
// the paper's benchmarks avoid the affected paths, as do ours).
func (m *Mesh) SetErrata0(on bool) { m.errata0 = on }

// Errata0 reports whether the duplicate-read erratum is being modelled.
func (m *Mesh) Errata0() bool { return m.errata0 }

// errata0Hits reports whether a read issued by core src duplicates under
// Errata #0 (the issuing core sits in chip-relative row 2 or column 2;
// on a multi-chip board the erratum is per chip).
func (m *Mesh) errata0Hits(src int) bool {
	if !m.errata0 {
		return false
	}
	r, c := m.amap.CoreCoords(src)
	return r%m.chipRows == 2 || c%m.chipCols == 2
}

// ReadWord models a single remote 32-bit load from src's CPU to dst's
// memory: a full request/response round trip on the read network. Each
// chip boundary on the route adds a round trip over the chip-to-chip
// eLink's crossing latency. The word's traversals are charged to the
// energy counters (4 bytes each way per hop; boundary legs to the
// chip-to-chip read counter), doubled when the errata makes the
// transaction issue twice.
func (m *Mesh) ReadWord(t sim.Time, src, dst int) (done sim.Time) {
	hops := m.Distance(src, dst)
	crossings := m.amap.ChipCrossings(src, dst)
	cost := ReadWordRoundTrip + 2*sim.Time(hops)*HopLatency
	trips := uint64(2)
	if crossings > 0 {
		cost += 2 * sim.Time(crossings) * m.c2cHop
	}
	if m.errata0Hits(src) {
		cost *= 2 // the transaction issues twice
		trips = 4
	}
	// Distance counts boundary hops too; keep the split Deliver uses
	// (on-chip byte-hops vs chip-to-chip bytes). Charged to the issuing
	// core's chip (reads execute in the issuer's shard).
	row := &m.cnt[m.ChipOf(src)]
	row.hopBytes += 4 * trips * uint64(hops-crossings)
	row.crossReadBytes += 4 * trips * uint64(crossings)
	return t + cost
}

// Writes returns the number of delivery bookings (Deliver and
// DeliverCross calls).
func (m *Mesh) Writes() uint64 {
	var n uint64
	for i := range m.cnt {
		n += m.cnt[i].writes
	}
	return n
}

// Bytes returns the total bytes delivered.
func (m *Mesh) Bytes() uint64 {
	var n uint64
	for i := range m.cnt {
		n += m.cnt[i].bytes
	}
	return n
}

// HopBytes returns the accumulated payload bytes x on-chip hops routed
// by Deliver plus the read network's round trips - the quantity the
// energy model prices per byte-hop. Chip-boundary traffic accrues to
// CrossBytes (writes) and CrossReadBytes (read trips) instead.
func (m *Mesh) HopBytes() uint64 {
	var n uint64
	for i := range m.cnt {
		n += m.cnt[i].hopBytes
	}
	return n
}

// CrossReadBytes returns the bytes read-network round trips carried
// over chip-to-chip boundaries. It is kept apart from CrossBytes (a
// frozen time-domain metric); the energy capture prices their sum.
func (m *Mesh) CrossReadBytes() uint64 {
	var n uint64
	for i := range m.cnt {
		n += m.cnt[i].crossReadBytes
	}
	return n
}

// linkSlot resolves the directed link leaving router (r,c) towards d to
// its slot index. ok is false when no such link exists: coordinates off
// the mesh, or a direction pointing off the board's edge (West at column
// 0, North at row 0, East at the last column, South at the last row).
func (m *Mesh) linkSlot(r, c int, d Dir) (slot int32, ok bool) {
	if r < 0 || r >= m.rows || c < 0 || c >= m.cols {
		return 0, false
	}
	switch d {
	case East:
		if c == m.cols-1 {
			return 0, false
		}
		return m.hIdx[(r*(m.cols-1)+c)*2], true
	case West:
		if c == 0 {
			return 0, false
		}
		return m.hIdx[(r*(m.cols-1)+c-1)*2+1], true
	case South:
		if r == m.rows-1 {
			return 0, false
		}
		return m.vIdx[(r*m.cols+c)*2], true
	case North:
		if r == 0 {
			return 0, false
		}
		return m.vIdx[((r-1)*m.cols+c)*2+1], true
	}
	return 0, false
}

// LinkUtilization returns the utilization of the link leaving router
// (r,c) towards d at time now, for diagnostics. Links that point off the
// mesh edge (or coordinates outside the mesh) report 0.
func (m *Mesh) LinkUtilization(r, c int, d Dir, now sim.Time) float64 {
	slot, ok := m.linkSlot(r, c, d)
	if !ok || now == 0 {
		return 0
	}
	return float64(m.links[slot].busy) / float64(now)
}

// LinkName builds the diagnostic name of the link leaving router (r,c)
// towards d. Names are derived on demand from grid position (the link
// state itself is name-free); chip-boundary links report the shared
// chip-to-chip eLink they alias.
func (m *Mesh) LinkName(r, c int, d Dir) string {
	slot, ok := m.linkSlot(r, c, d)
	switch {
	case !ok:
		return fmt.Sprintf("off-mesh(%d,%d)%s", r, c, d)
	case slot >= m.crossBase:
		return fmt.Sprintf("c2c(%d,%d)%s", r/m.chipRows, c/m.chipCols, d)
	default:
		return fmt.Sprintf("link(%d,%d)%s", r, c, d)
	}
}
