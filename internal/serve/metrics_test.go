package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

// promLine matches one non-comment exposition line: metric name, an
// optional label set, and a number. The greedy \{.*\} tolerates braces
// and quotes inside label values.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// TestMetricsExposition drives a little traffic and checks GET /metrics
// renders well-formed Prometheus text carrying the expected counters.
func TestMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := JobSpec{Workload: "stencil-tuned", Topo: "e16"}
	wantStatus(t, do(t, s, "POST", "/v1/jobs", spec), http.StatusOK) // miss
	wantStatus(t, do(t, s, "POST", "/v1/jobs", spec), http.StatusOK) // hit
	wantStatus(t, do(t, s, "GET", "/no/such/route", nil), http.StatusNotFound)

	w := do(t, s, "GET", "/metrics", nil)
	wantStatus(t, w, http.StatusOK)
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q, want text/plain", ct)
	}
	body := w.Body.String()

	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	for _, want := range []string{
		"epiphany_cache_hits_total 1\n",
		"epiphany_cache_misses_total 1\n",
		"epiphany_cache_entries 1\n",
		"epiphany_draining 0\n",
		`epiphany_http_requests_total{endpoint="POST /v1/jobs",code="200"} 2` + "\n",
		`epiphany_http_requests_total{endpoint="unmatched",code="404"} 1` + "\n",
		`epiphany_request_stage_seconds_bucket{stage="simulate",le="+Inf"} 3` + "\n",
		`epiphany_request_stage_seconds_count{stage="queue"} 3` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}

	// The miss simulated for real, so the simulate-stage histogram sum
	// must be positive.
	sumLine := regexp.MustCompile(`epiphany_request_stage_seconds_sum\{stage="simulate"\} ([0-9.]+)`)
	mm := sumLine.FindStringSubmatch(body)
	if mm == nil {
		t.Fatalf("no simulate-stage sum in exposition\n%s", body)
	}
	if mm[1] == "0" {
		t.Errorf("simulate-stage sum is zero after a cache miss")
	}
}

// TestStatsUptimeAndRequests checks /v1/stats carries the uptime and the
// per-endpoint request counts, sourced from the same counters /metrics
// exposes.
func TestStatsUptimeAndRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	wantStatus(t, do(t, s, "GET", "/v1/healthz", nil), http.StatusOK)
	wantStatus(t, do(t, s, "GET", "/v1/workloads", nil), http.StatusOK)
	wantStatus(t, do(t, s, "GET", "/v1/workloads", nil), http.StatusOK)

	w := do(t, s, "GET", "/v1/stats", nil)
	wantStatus(t, w, http.StatusOK)
	var st Stats
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeS <= 0 {
		t.Errorf("uptime_s = %v, want > 0", st.UptimeS)
	}
	if got := st.Requests["GET /v1/workloads"]["200"]; got != 2 {
		t.Errorf("requests[GET /v1/workloads][200] = %d, want 2 (have %v)", got, st.Requests)
	}
	if got := st.Requests["GET /v1/healthz"]["200"]; got != 1 {
		t.Errorf("requests[GET /v1/healthz][200] = %d, want 1", got)
	}
}

// TestAccessLog checks the configured slog logger receives one line per
// request carrying the matched route and the job's content address.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, Config{Logger: slog.New(slog.NewTextHandler(&buf, nil))})

	first := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16"})
	wantStatus(t, first, http.StatusOK)
	var resp JobResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	log := buf.String()
	if !strings.Contains(log, `route="POST /v1/jobs"`) {
		t.Errorf("access log missing route: %s", log)
	}
	if !strings.Contains(log, "status=200") {
		t.Errorf("access log missing status: %s", log)
	}
	if !strings.Contains(log, "id="+resp.ID) {
		t.Errorf("access log missing job fingerprint %s: %s", resp.ID, log)
	}
}
