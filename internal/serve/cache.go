package serve

import (
	"container/list"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"epiphany/internal/sweep"
)

// EngineVersion names the generation of the simulation engine's frozen
// golden surface. It participates in cache identity - the in-memory key
// is namespaced by it and every persisted entry records the version it
// was simulated under - so a corpus written by an older engine degrades
// to misses (and is re-simulated and overwritten) instead of being
// served as current. Bump it whenever a change shifts any golden:
// schedule, timing model, or energy metering.
//
//	"" (absent): through the sharded-engine release, before the
//	    schemeDouble rotation handshake fix
//	"2": rotation forward-done handshake + engine booking floor
const EngineVersion = "2"

// entry is one cached simulation: the cell spec it answers, the power
// model it was metered under, the deterministic result, the host wall
// time the original simulation cost (what a cache hit saves; it feeds
// the /v1/stats simulated-vs-served accounting, never a response body -
// response bytes must be identical between the miss that filled the
// entry and every hit that serves it), and the engine version that
// produced it.
type entry struct {
	Cell   sweep.Cell       `json:"cell"`
	Power  string           `json:"power,omitempty"`
	Result sweep.CellResult `json:"result"`
	SimNS  int64            `json:"sim_ns"`
	Engine string           `json:"engine"`
}

// resultCache is the content-addressed result store: cell fingerprint
// (sweep.Plan.CellFingerprint) -> entry. Because every simulation is a
// pure function of its canonical spec, the cache is exact - a hit is
// byte-for-byte the result the simulation would produce - so the only
// policy it needs is capacity: an LRU bound on the in-memory entries,
// plus optional write-through persistence to a directory (one JSON
// file per fingerprint) so a restarted daemon keeps its corpus warm.
// Only successful cells are stored; failures stay uncached so a
// transient error is retried rather than replayed.
type resultCache struct {
	mu    sync.Mutex
	max   int
	dir   string     // "" = memory only
	order *list.List // front = most recently used; values are *cacheNode
	items map[string]*list.Element

	// verMiss counts persisted entries rejected because they were
	// simulated under a different EngineVersion (for /v1/stats).
	verMiss atomic.Int64
}

// cacheNode is what order's elements hold.
type cacheNode struct {
	id string
	e  entry
}

func newResultCache(maxEntries int, dir string) (*resultCache, error) {
	c := &resultCache{
		max:   maxEntries,
		dir:   dir,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// key namespaces a fingerprint with the engine version for the
// in-memory map, making the version part of the cache identity proper
// (a future in-process engine upgrade would orphan, not serve, the old
// generation's entries).
func (c *resultCache) key(id string) string { return EngineVersion + ":" + id }

// get returns the entry stored under id. A memory miss falls through
// to the persistence directory; a disk entry found there is promoted
// into the in-memory LRU - unless it was simulated under a different
// EngineVersion, in which case it is a counted miss: the cell is
// re-simulated on the current engine and put overwrites the stale
// file. The returned entry is a copy - callers derive scaling columns
// on their copies without disturbing the store.
func (c *resultCache) get(id string) (entry, bool) {
	c.mu.Lock()
	if el, ok := c.items[c.key(id)]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheNode).e
		c.mu.Unlock()
		return e, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return entry{}, false
	}
	b, err := os.ReadFile(c.file(id))
	if err != nil {
		return entry{}, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		// A torn or foreign file is a miss, not a failure: the
		// simulation re-derives the truth and put rewrites the file.
		return entry{}, false
	}
	if e.Engine != EngineVersion {
		// Count the stale generation once and drop the file: later
		// lookups are plain misses, and the re-simulation's put writes
		// the current-version entry in its place.
		c.verMiss.Add(1)
		os.Remove(c.file(id))
		return entry{}, false
	}
	c.install(id, e)
	return e, true
}

// put stores a successful simulation under its fingerprint, stamping
// it with the running engine's version, evicting least-recently-used
// entries past the memory bound and writing through to the persistence
// directory when one is configured.
func (c *resultCache) put(id string, e entry) {
	e.Engine = EngineVersion
	c.install(id, e)
	if c.dir != "" {
		c.persist(id, e)
	}
}

// install inserts (or refreshes) the in-memory entry and applies the
// LRU bound.
func (c *resultCache) install(id string, e entry) {
	k := c.key(id)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheNode).e = e
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&cacheNode{id: k, e: e})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheNode).id)
	}
}

// persist writes the entry's JSON under its fingerprint, via a
// same-directory temp file + rename so a crash mid-write leaves either
// the old file or the new one, never a torn read for a concurrent get.
// Persistence is best-effort: a full disk degrades the daemon to a
// memory-only cache instead of failing requests.
func (c *resultCache) persist(id string, e entry) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "."+id+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.file(id)); err != nil {
		os.Remove(tmp.Name())
	}
}

// file maps a fingerprint to its persistence path. Fingerprints are
// lowercase hex, but guard against path metacharacters anyway: a
// malformed id becomes a harmless flat name.
func (c *resultCache) file(id string) string {
	id = strings.Map(func(r rune) rune {
		switch {
		case r >= '0' && r <= '9', r >= 'a' && r <= 'f':
			return r
		}
		return '_'
	}, id)
	return filepath.Join(c.dir, id+".json")
}

// len reports the in-memory entry count (for /v1/stats).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// versionMisses reports how many persisted entries were rejected for
// carrying a different EngineVersion (for /v1/stats).
func (c *resultCache) versionMisses() int64 { return c.verMiss.Load() }

// planCache remembers normalized sweep plans by their plan fingerprint
// so GET /v1/sweeps/{id} can re-render a previously submitted sweep
// (cheaply: its cells are in the result cache). Same LRU shape as
// resultCache, memory only - a plan is a few hundred bytes of spec,
// not a result.
type planCache struct {
	mu    sync.Mutex
	max   int
	order *list.List
	items map[string]*list.Element
}

type planNode struct {
	id   string
	plan sweep.Plan
}

func newPlanCache(maxEntries int) *planCache {
	return &planCache{max: maxEntries, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *planCache) get(id string) (sweep.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[id]
	if !ok {
		return sweep.Plan{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*planNode).plan, true
}

func (c *planCache) put(id string, p sweep.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		el.Value.(*planNode).plan = p
		c.order.MoveToFront(el)
		return
	}
	c.items[id] = c.order.PushFront(&planNode{id: id, plan: p})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*planNode).id)
	}
}
