package serve

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the service's Prometheus surface: per-request stage
// accounting threaded through the request context, an endpoint x status
// request counter, fixed-bucket stage histograms, and the text
// exposition renderer behind GET /metrics. Everything is stdlib - the
// exposition format is simple enough that a client library would be
// mostly ceremony - and everything is observational: no handler
// behaviour depends on a metric.

// reqStats accumulates one request's stage decomposition as it flows
// through the handlers: time spent waiting for a simulation slot
// (queue), time spent simulating (simulate), and - derived by the
// middleware as the remainder - rendering/transfer time. A sweep fans
// cells out to goroutines sharing one reqStats, hence the atomics; the
// summed queue/simulate time of parallel cells can legitimately exceed
// the request's wall time (the render remainder clamps at zero).
type reqStats struct {
	queueNS atomic.Int64
	simNS   atomic.Int64

	mu          sync.Mutex
	fingerprint string // content address of the job/sweep, for the access log
}

func (rs *reqStats) addQueue(d time.Duration) {
	if rs != nil {
		rs.queueNS.Add(d.Nanoseconds())
	}
}

func (rs *reqStats) addSim(ns int64) {
	if rs != nil {
		rs.simNS.Add(ns)
	}
}

func (rs *reqStats) setFingerprint(id string) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.fingerprint = id
	rs.mu.Unlock()
}

func (rs *reqStats) getFingerprint() string {
	if rs == nil {
		return ""
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.fingerprint
}

// reqStatsKey carries the reqStats through the request context, so the
// simulation path (cellResult) can attribute stage time without every
// call site threading an extra parameter.
type reqStatsKey struct{}

func withReqStats(ctx context.Context, rs *reqStats) context.Context {
	return context.WithValue(ctx, reqStatsKey{}, rs)
}

// reqStatsFrom returns the request's reqStats, or nil when the context
// does not carry one (direct Server method calls in tests); the
// reqStats methods are nil-safe for exactly that case.
func reqStatsFrom(ctx context.Context) *reqStats {
	rs, _ := ctx.Value(reqStatsKey{}).(*reqStats)
	return rs
}

// reqKey labels one requests-counter cell.
type reqKey struct {
	endpoint string // the matched mux pattern, e.g. "POST /v1/jobs"
	code     string // HTTP status, e.g. "200"
}

// stageBuckets are the histogram upper bounds in seconds, spanning a
// cache hit (sub-millisecond) to a request-budget-sized simulation.
var stageBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// numStageBuckets sizes the histogram's count array: one cell per
// finite bucket plus +Inf.
const numStageBuckets = 7

// histogram is a fixed-bucket Prometheus histogram: cumulative bucket
// counts plus sum and count. Callers hold httpMetrics.mu.
type histogram struct {
	counts [numStageBuckets + 1]int64 // one per bucket, last is +Inf
	sum    float64
	count  int64
}

func (h *histogram) observe(v float64) {
	for i, ub := range stageBuckets {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.counts[len(h.counts)-1]++ // +Inf
	h.sum += v
	h.count++
}

// httpMetrics aggregates the per-request observations: request counts
// by (endpoint, status) and stage-latency histograms. One per Server.
type httpMetrics struct {
	start time.Time

	mu       sync.Mutex
	requests map[reqKey]int64
	stages   map[string]*histogram // stage name -> histogram
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{
		start:    time.Now(),
		requests: make(map[reqKey]int64),
		stages:   make(map[string]*histogram),
	}
}

// observe records one finished request: its counter cell and the three
// stage durations.
func (m *httpMetrics) observe(endpoint, code string, queue, simulate, render time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	for _, s := range []struct {
		name string
		d    time.Duration
	}{{"queue", queue}, {"simulate", simulate}, {"render", render}} {
		h := m.stages[s.name]
		if h == nil {
			h = &histogram{}
			m.stages[s.name] = h
		}
		h.observe(s.d.Seconds())
	}
}

// uptime is the service's age.
func (m *httpMetrics) uptime() time.Duration { return time.Since(m.start) }

// requestCounts snapshots the counter as endpoint -> code -> count, the
// shape /v1/stats reports (the same numbers /metrics exposes as
// epiphany_http_requests_total).
func (m *httpMetrics) requestCounts() map[string]map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.requests) == 0 {
		return nil
	}
	out := make(map[string]map[string]int64)
	for k, n := range m.requests {
		byCode := out[k.endpoint]
		if byCode == nil {
			byCode = make(map[string]int64)
			out[k.endpoint] = byCode
		}
		byCode[k.code] = n
	}
	return out
}

// ---- Prometheus text exposition ----

// promFloat renders a float the way Prometheus clients do: shortest
// exact decimal, no exponent for the magnitudes these metrics take.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// writeMetric emits one # HELP / # TYPE header pair.
func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// render writes the full exposition: the Server's counters (from the
// same Stats snapshot /v1/stats serves), the request counter, and the
// stage histograms. Label sets are emitted in sorted order so the
// output is deterministic for a given state.
func (m *httpMetrics) render(w io.Writer, st Stats) {
	writeHeader(w, "epiphany_uptime_seconds", "Seconds since the service started.", "gauge")
	fmt.Fprintf(w, "epiphany_uptime_seconds %s\n", promFloat(m.uptime().Seconds()))

	writeHeader(w, "epiphany_cache_entries", "Result-cache entries in memory.", "gauge")
	fmt.Fprintf(w, "epiphany_cache_entries %d\n", st.CacheEntries)
	writeHeader(w, "epiphany_cache_hits_total", "Result-cache hits (job and sweep-cell lookups).", "counter")
	fmt.Fprintf(w, "epiphany_cache_hits_total %d\n", st.CacheHits)
	writeHeader(w, "epiphany_cache_misses_total", "Result-cache misses (each cost a simulation).", "counter")
	fmt.Fprintf(w, "epiphany_cache_misses_total %d\n", st.CacheMisses)
	writeHeader(w, "epiphany_cache_version_misses_total", "Persisted cache entries rejected for a stale engine version.", "counter")
	fmt.Fprintf(w, "epiphany_cache_version_misses_total %d\n", st.CacheVersionMisses)

	writeHeader(w, "epiphany_queue_depth", "Simulation-bearing requests admitted right now (queued plus running).", "gauge")
	fmt.Fprintf(w, "epiphany_queue_depth %d\n", st.QueueDepth)
	writeHeader(w, "epiphany_queue_capacity", "Admission-queue capacity (503 threshold).", "gauge")
	fmt.Fprintf(w, "epiphany_queue_capacity %d\n", st.QueueCapacity)
	writeHeader(w, "epiphany_in_flight", "Simulations executing right now.", "gauge")
	fmt.Fprintf(w, "epiphany_in_flight %d\n", st.InFlight)

	writeHeader(w, "epiphany_simulated_wall_seconds_total", "Cumulative host wall time spent simulating.", "counter")
	fmt.Fprintf(w, "epiphany_simulated_wall_seconds_total %s\n", promFloat(float64(st.SimulatedWallNS)/1e9))
	writeHeader(w, "epiphany_served_wall_seconds_total", "Cumulative wall time cache hits saved re-simulating.", "counter")
	fmt.Fprintf(w, "epiphany_served_wall_seconds_total %s\n", promFloat(float64(st.ServedWallNS)/1e9))

	writeHeader(w, "epiphany_draining", "1 once Drain has been called, else 0.", "gauge")
	draining := 0
	if st.Draining {
		draining = 1
	}
	fmt.Fprintf(w, "epiphany_draining %d\n", draining)

	m.mu.Lock()
	defer m.mu.Unlock()

	writeHeader(w, "epiphany_http_requests_total", "Requests served, by matched route and status code.", "counter")
	reqKeys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	for _, k := range reqKeys {
		fmt.Fprintf(w, "epiphany_http_requests_total{endpoint=%q,code=%q} %d\n",
			promEscape(k.endpoint), promEscape(k.code), m.requests[k])
	}

	writeHeader(w, "epiphany_request_stage_seconds",
		"Request time by stage: queue (waiting for a simulation slot), simulate (running cells), render (everything else).",
		"histogram")
	stageNames := make([]string, 0, len(m.stages))
	for name := range m.stages {
		stageNames = append(stageNames, name)
	}
	sort.Strings(stageNames)
	for _, name := range stageNames {
		h := m.stages[name]
		for i, ub := range stageBuckets {
			fmt.Fprintf(w, "epiphany_request_stage_seconds_bucket{stage=%q,le=%q} %d\n",
				name, promFloat(ub), h.counts[i])
		}
		fmt.Fprintf(w, "epiphany_request_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n",
			name, h.counts[len(h.counts)-1])
		fmt.Fprintf(w, "epiphany_request_stage_seconds_sum{stage=%q} %s\n", name, promFloat(h.sum))
		fmt.Fprintf(w, "epiphany_request_stage_seconds_count{stage=%q} %d\n", name, h.count)
	}
}
