// Package serve implements simulation-as-a-service: a long-running
// HTTP/JSON daemon over the simulator's deterministic core. Every
// simulation is a pure function of its canonical spec (workload x
// topology x c2c timing x power model x DVFS point x seed - pinned by
// the conformance and sweep goldens), so the service fronts the pooled
// workload.Runner with a content-addressed result cache keyed by
// sweep's canonical fingerprints: a repeated cell - the common case
// under shared multi-user traffic - costs a map lookup instead of a
// ~35 ms simulation, and the cached bytes are exactly the bytes the
// simulation would produce.
//
// The API (all under /v1):
//
//	POST /v1/jobs          submit one job      {"workload":..,"topo":..,"power":..,"dvfs":..,"seed":..}
//	GET  /v1/jobs/{id}     re-fetch a cached job result by fingerprint
//	POST /v1/sweeps        submit a sweep.Plan; ?format=json|csv|text|markdown|ndjson
//	GET  /v1/sweeps/{id}   re-render a submitted sweep by plan fingerprint
//	GET  /v1/workloads     registered workload names
//	GET  /v1/topologies    preset topologies + the chip-grid grammar
//	GET  /v1/plans         registered sweep plans (POST one to /v1/sweeps)
//	GET  /v1/powermodels   power-model presets and their DVFS ladders
//	GET  /v1/stats         cache hit/miss counts, queue depth, in-flight jobs,
//	                       cumulative simulated-vs-served wall time, uptime,
//	                       per-endpoint request counts
//	GET  /v1/healthz       liveness (503 once draining)
//	GET  /metrics          the same counters in Prometheus text exposition
//	                       format, plus request-stage latency histograms
//
// ?format=ndjson streams sweep rows as cells complete (one JSON object
// per line, grid order, derived columns included); the other formats
// render exactly the bytes epiphany.Sweep would. Submissions are
// admission-controlled by a bounded queue (full -> 503) and bounded
// worker concurrency; Drain flips the service into shutdown mode where
// new work is refused with 503 while everything in flight completes.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"epiphany/internal/power"
	"epiphany/internal/sweep"
	"epiphany/internal/system"
	"epiphany/internal/workload"
)

// Config tunes the service. The zero value is usable: GOMAXPROCS
// simulation workers, a 64-request queue, 4096 cached results in
// memory, no disk persistence, two-minute request budget.
type Config struct {
	// Workers caps concurrent simulations; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth caps simulation-bearing requests admitted at once
	// (queued plus running); submissions past it get 503. Requests
	// answered entirely from cache bypass the queue. <= 0 means 64.
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (LRU past it);
	// <= 0 means 4096.
	CacheEntries int
	// CacheDir, when non-empty, persists every cached result as a JSON
	// file named by its fingerprint, and consults the directory on
	// memory misses - a restarted daemon keeps its corpus warm. The
	// directory is unbounded (results are small and content-addressed;
	// prune it externally if needed).
	CacheDir string
	// RequestTimeout bounds each request's simulation work; <= 0 means
	// two minutes. A request that exceeds it gets 504 (simulations
	// already in flight run to their next cancellation point).
	RequestTimeout time.Duration
	// Shards is the default event-engine partition for every board the
	// daemon builds: 0 (auto) gives each chip of a multi-chip board its
	// own shard, 1 runs boards on the classic single event heap. A job
	// whose topology spec pins its own "/shards=N" keeps it. Metrics -
	// and therefore cached results - are bit-identical for every value;
	// the knob only shapes the execution layout (and, with SimWorkers,
	// intra-board parallelism). Boards are pooled per partition, so a
	// long-lived daemon keeps stable shard layouts across recycles.
	Shards int
	// SimWorkers runs each board's shards on that many goroutines
	// (<= 1 means sequential). Composes with Workers: up to
	// Workers x SimWorkers simulation goroutines.
	SimWorkers int
	// Logger, when non-nil, receives one structured access-log line per
	// request: method, matched route, status, stage durations, and the
	// content address (job or sweep fingerprint) the request resolved
	// to. Nil disables access logging; metrics are collected either way.
	Logger *slog.Logger
}

// withDefaults resolves the zero knobs.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 4096
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Minute
	}
	return c
}

// sweepIDCacheEntries bounds the remembered plans behind
// GET /v1/sweeps/{id}; a plan is a few hundred bytes of spec.
const sweepIDCacheEntries = 256

// Server is the simulation service: an http.Handler wiring the REST
// surface to the pooled Runner through the content-addressed cache.
// Create with NewServer; safe for concurrent use.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	runner *workload.Runner
	cache  *resultCache
	sweeps *planCache
	queue  chan struct{} // admission slots for simulation-bearing requests
	work   chan struct{} // concurrency slots for individual simulations

	metrics *httpMetrics
	logger  *slog.Logger

	draining atomic.Bool
	hits     atomic.Int64
	misses   atomic.Int64
	inFlight atomic.Int64
	simNS    atomic.Int64 // wall time spent simulating (cache misses)
	servedNS atomic.Int64 // wall time cache hits would have re-simulated
}

// Stats is the /v1/stats payload.
type Stats struct {
	// CacheEntries / CacheHits / CacheMisses describe the result cache:
	// in-memory entries right now, and the cumulative hit/miss counts of
	// job and sweep-cell lookups.
	CacheEntries int   `json:"cache_entries"`
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	// EngineVersion is the golden-surface generation this daemon
	// simulates (serve.EngineVersion); CacheVersionMisses counts
	// persisted entries rejected for carrying a different one.
	EngineVersion      string `json:"engine_version"`
	CacheVersionMisses int64  `json:"cache_version_misses"`
	// QueueDepth is the simulation-bearing requests currently admitted
	// (queued or running), QueueCapacity the 503 threshold.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// InFlight is the simulations executing right now.
	InFlight int64 `json:"in_flight"`
	// SimulatedWallNS is cumulative host wall time spent simulating;
	// ServedWallNS is the wall time cache hits saved (the sum of the
	// original simulation cost of every entry served). Their ratio is
	// the cache's leverage under the current traffic.
	SimulatedWallNS int64 `json:"simulated_wall_ns"`
	ServedWallNS    int64 `json:"served_wall_ns"`
	Draining        bool  `json:"draining"`
	// Shards is the daemon's default event-engine partition (0 = auto,
	// one shard per chip); SimWorkers the goroutines driving each
	// board's shards. Neither affects results, only execution layout.
	Shards     int `json:"shards"`
	SimWorkers int `json:"sim_workers"`
	// UptimeS is seconds since the daemon started.
	UptimeS float64 `json:"uptime_s"`
	// Requests counts served requests by matched route and status code
	// (endpoint -> code -> count), the same numbers GET /metrics exposes
	// as epiphany_http_requests_total. Omitted until the first request
	// completes.
	Requests map[string]map[string]int64 `json:"requests,omitempty"`
}

// JobSpec is the POST /v1/jobs request body: one cell of the
// experiment space, spelled the way the CLIs spell it.
type JobSpec struct {
	// Workload is a registered workload name (required; see
	// /v1/workloads).
	Workload string `json:"workload"`
	// Topo is the topology spelling sweep.ParseTopo accepts: a preset
	// ("e64"), an ad-hoc mesh ("4x8"), a parameterized chip grid
	// ("grid=4x4/chip=8x8", "cluster-4x4", "e64x16"), any with an
	// optional "/c2c=BYTE:HOP" override. Empty means e64, the library
	// default.
	Topo string `json:"topo,omitempty"`
	// Power and DVFS select the energy axis (power-model preset and
	// operating point); empty runs time-domain only.
	Power string `json:"power,omitempty"`
	DVFS  string `json:"dvfs,omitempty"`
	// Seed rebases the workload's deterministic inputs; nil keeps the
	// registered default seed.
	Seed *uint64 `json:"seed,omitempty"`
}

// JobResponse is the POST /v1/jobs and GET /v1/jobs/{id} body. It is
// deterministic: a cache hit returns byte-identical JSON to the miss
// that populated it (cache status travels in the X-Epiphany-Cache
// header, never the body).
type JobResponse struct {
	// ID is the job's content address (the canonical-spec SHA-256);
	// GET /v1/jobs/{ID} re-fetches this result while it stays cached.
	ID string `json:"id"`
	// Cell is the canonicalized spec the job resolved to.
	Cell sweep.Cell `json:"cell"`
	// Power is the power model the cell was metered under, if any.
	Power string `json:"power,omitempty"`
	// Result is the cell's result; Speedup/Efficiency stay zero (they
	// are grid-relative columns and a single job has no baseline).
	Result sweep.CellResult `json:"result"`
}

// NewServer builds the service. The error is the persistence
// directory's, when one is configured and cannot be created.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cache, err := newResultCache(cfg.CacheEntries, cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	var base []workload.Option
	if cfg.Shards != 0 {
		base = append(base, workload.WithShards(cfg.Shards))
	}
	if cfg.SimWorkers > 1 {
		base = append(base, workload.WithWorkers(cfg.SimWorkers))
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		runner:  &workload.Runner{Workers: cfg.Workers, Options: base},
		cache:   cache,
		sweeps:  newPlanCache(sweepIDCacheEntries),
		queue:   make(chan struct{}, cfg.QueueDepth),
		work:    make(chan struct{}, cfg.Workers),
		metrics: newHTTPMetrics(),
		logger:  cfg.Logger,
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	s.mux.HandleFunc("GET /v1/plans", s.handlePlans)
	s.mux.HandleFunc("GET /v1/powermodels", s.handlePowerModels)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// statusWriter captures the response status for the request metrics and
// access log. It always satisfies http.Flusher - streamSweep's ndjson
// path asserts for it - delegating when the underlying writer can
// flush and no-opping otherwise.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP implements http.Handler: every request runs through the
// observability middleware - a reqStats in the context collects the
// queue and simulate stage times as the handlers run, the remainder is
// attributed to render - then lands in the matched route's counter and
// the stage histograms, and emits one access-log line when the server
// has a logger.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rs := &reqStats{}
	r = r.WithContext(withReqStats(r.Context(), rs))
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)

	// The mux sets r.Pattern on match (it mutates the request we passed,
	// so the middleware sees it); an unmatched request keeps its own
	// label rather than exploding counter cardinality with raw paths.
	endpoint := r.Pattern
	if endpoint == "" {
		endpoint = "unmatched"
	}
	code := sw.code
	if code == 0 {
		code = http.StatusOK // handler never wrote; Go sends 200
	}
	total := time.Since(start)
	queue := time.Duration(rs.queueNS.Load())
	simulate := time.Duration(rs.simNS.Load())
	// Render is the remainder. Parallel sweep cells can accumulate more
	// queue+simulate time than the request's wall clock, so clamp.
	render := max(total-queue-simulate, 0)
	s.metrics.observe(endpoint, strconv.Itoa(code), queue, simulate, render)
	if s.logger != nil {
		attrs := []any{
			"method", r.Method,
			"route", endpoint,
			"path", r.URL.Path,
			"status", code,
			"total", total,
			"queue", queue,
			"simulate", simulate,
		}
		if id := rs.getFingerprint(); id != "" {
			attrs = append(attrs, "id", id)
		}
		s.logger.Info("request", attrs...)
	}
}

// Drain flips the service into shutdown mode: job and sweep
// submissions are refused with 503 (read endpoints keep answering, so
// load balancers see /v1/healthz fail while clients can still collect
// results), while admitted work runs to completion. Call it before
// http.Server.Shutdown, which then waits out the in-flight requests.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	return Stats{
		CacheEntries:       s.cache.len(),
		CacheHits:          s.hits.Load(),
		CacheMisses:        s.misses.Load(),
		EngineVersion:      EngineVersion,
		CacheVersionMisses: s.cache.versionMisses(),
		QueueDepth:         len(s.queue),
		QueueCapacity:      s.cfg.QueueDepth,
		InFlight:           s.inFlight.Load(),
		SimulatedWallNS:    s.simNS.Load(),
		ServedWallNS:       s.servedNS.Load(),
		Draining:           s.draining.Load(),
		Shards:             s.cfg.Shards,
		SimWorkers:         max(s.cfg.SimWorkers, 1),
		UptimeS:            s.metrics.uptime().Seconds(),
		Requests:           s.metrics.requestCounts(),
	}
}

// admit takes a queue slot for one simulation-bearing request,
// reporting false when the service is draining or the queue is full.
func (s *Server) admit() bool {
	if s.draining.Load() {
		return false
	}
	select {
	case s.queue <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns an admit slot.
func (s *Server) release() { <-s.queue }

// ---- jobs ----

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeUnavailable(w, "server is draining")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("epiphany: bad job spec: %w", err))
		return
	}
	plan, cell, err := spec.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := plan.CellFingerprint(cell)
	reqStatsFrom(r.Context()).setFingerprint(id)

	if e, ok := s.cache.get(id); ok {
		s.hits.Add(1)
		s.servedNS.Add(e.SimNS)
		writeJob(w, id, e, "hit")
		return
	}
	if !s.admit() {
		writeUnavailable(w, "job queue is full")
		return
	}
	defer s.release()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	res, hit := s.cellResult(ctx, plan, cell, id)
	if res.Err != "" {
		if err := ctx.Err(); err != nil {
			writeTimeout(w, err)
			return
		}
		// A deterministic per-job failure (validation, run error): the
		// spec is the problem, so the client gets it back as an
		// unprocessable entity, uncached.
		writeError(w, http.StatusUnprocessableEntity, errors.New(res.Err))
		return
	}
	status := "miss"
	if hit {
		status = "hit" // a concurrent request filled the cache first
	}
	writeJob(w, id, entry{Cell: cell, Power: plan.Power, Result: res}, status)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	reqStatsFrom(r.Context()).setFingerprint(id)
	e, ok := s.cache.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("epiphany: no cached result under id %q", id))
		return
	}
	writeJob(w, id, e, "hit")
}

// resolve canonicalizes the spec into a normalized 1-cell plan.
func (spec JobSpec) resolve() (sweep.Plan, sweep.Cell, error) {
	if spec.Workload == "" {
		return sweep.Plan{}, sweep.Cell{}, errors.New(`epiphany: job spec needs a "workload" (see /v1/workloads)`)
	}
	p := sweep.Plan{Workloads: []string{spec.Workload}, Power: spec.Power}
	if spec.Topo != "" {
		t, err := sweep.ParseTopo(spec.Topo)
		if err != nil {
			return p, sweep.Cell{}, err
		}
		p.Topos = []sweep.Topo{t}
	} else {
		p.Topos = []sweep.Topo{{Preset: "e64"}}
	}
	if spec.DVFS != "" {
		p.DVFS = []string{spec.DVFS}
	}
	if spec.Seed != nil {
		p.Seeds = []uint64{*spec.Seed}
	}
	p, err := p.Normalize()
	if err != nil {
		return p, sweep.Cell{}, err
	}
	return p, p.Expand()[0], nil
}

// cellResult produces the cell's result through the cache: a re-check
// (another request may have filled the entry since the caller's probe),
// then a simulation on the pooled runner under the worker bound, with
// the successful result stored under its fingerprint. The bool reports
// whether the result came from the cache.
func (s *Server) cellResult(ctx context.Context, p sweep.Plan, c sweep.Cell, id string) (sweep.CellResult, bool) {
	if e, ok := s.cache.get(id); ok {
		s.hits.Add(1)
		s.servedNS.Add(e.SimNS)
		return e.Result, true
	}
	s.misses.Add(1)
	rs := reqStatsFrom(ctx)
	qstart := time.Now()
	select {
	case s.work <- struct{}{}:
		rs.addQueue(time.Since(qstart))
	case <-ctx.Done():
		rs.addQueue(time.Since(qstart))
		return failedCell(c, ctx.Err()), false
	}
	defer func() { <-s.work }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	job, cores, err := p.CellJob(c)
	if err != nil {
		return failedCell(c, err), false
	}
	start := time.Now()
	jr := s.runner.RunJob(ctx, job)
	simNS := time.Since(start).Nanoseconds()
	s.simNS.Add(simNS)
	rs.addSim(simNS)
	res := sweep.NewCellResult(c, cores, jr)
	if res.Err == "" {
		s.cache.put(id, entry{Cell: c, Power: p.Power, Result: res, SimNS: simNS})
	}
	return res, false
}

// failedCell is the result row of a cell that never ran.
func failedCell(c sweep.Cell, err error) sweep.CellResult {
	return sweep.NewCellResult(c, 0, workload.JobResult{Err: err})
}

// ---- sweeps ----

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeUnavailable(w, "server is draining")
		return
	}
	var plan sweep.Plan
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&plan); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("epiphany: bad sweep plan: %w", err))
		return
	}
	n, err := plan.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := n.Fingerprint()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.sweeps.put(id, n)
	s.runSweep(w, r, n, id)
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	n, ok := s.sweeps.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("epiphany: no sweep under id %q (sweeps are remembered per daemon; POST the plan again)", id))
		return
	}
	if s.draining.Load() {
		// Re-rendering may need to re-simulate evicted cells; refuse
		// like any other work submission while draining.
		writeUnavailable(w, "server is draining")
		return
	}
	s.runSweep(w, r, n, id)
}

// runSweep executes the normalized plan's grid through the cache and
// renders it in the requested format. Every non-streaming format
// produces exactly the bytes epiphany.Sweep would for the same plan;
// ndjson streams one derived row per cell in grid order as cells
// complete.
func (s *Server) runSweep(w http.ResponseWriter, r *http.Request, n sweep.Plan, id string) {
	reqStatsFrom(r.Context()).setFingerprint(id)
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "csv", "text", "markdown", "md", "ndjson":
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("epiphany: unknown format %q (json, csv, text, markdown, ndjson)", format))
		return
	}

	cells := n.Expand()
	ids := make([]string, len(cells))
	results := make([]sweep.CellResult, len(cells))
	ready := make([]chan struct{}, len(cells))
	var missIdx []int
	for i, c := range cells {
		ids[i] = n.CellFingerprint(c)
		ready[i] = make(chan struct{})
		if e, ok := s.cache.get(ids[i]); ok {
			s.hits.Add(1)
			s.servedNS.Add(e.SimNS)
			results[i] = e.Result
			close(ready[i])
		} else {
			missIdx = append(missIdx, i)
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if len(missIdx) > 0 {
		if !s.admit() {
			writeUnavailable(w, "job queue is full")
			return
		}
		defer s.release()
		for _, i := range missIdx {
			go func(i int) {
				defer close(ready[i])
				// cellResult re-probes, so a cell another request
				// finished since our probe is served, not re-simulated.
				results[i], _ = s.cellResult(ctx, n, cells[i], ids[i])
			}(i)
		}
	}

	w.Header().Set("X-Epiphany-Sweep-Id", id)
	if format == "ndjson" {
		s.streamSweep(ctx, w, n, cells, ids, results, ready)
		return
	}
	for i := range ready {
		select {
		case <-ready[i]:
		case <-ctx.Done():
			writeTimeout(w, ctx.Err())
			return
		}
	}
	res := &sweep.Result{Plan: n, Cells: results}
	res.Derive()
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		fmt.Fprint(w, res.CSV())
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Text())
	case "markdown", "md":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		fmt.Fprint(w, res.Markdown())
	default: // json
		b, err := res.JSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(b)
	}
}

// sweepRow is one NDJSON line of a streamed sweep.
type sweepRow struct {
	// Index is the row's position in the plan's canonical expansion.
	Index int `json:"index"`
	// ID is the cell's content address (GET /v1/jobs/{id} re-fetches
	// it while cached).
	ID string `json:"id"`
	// Result carries the cell's metrics and derived columns, exactly
	// the values a whole-grid render would show.
	Result sweep.CellResult `json:"result"`
}

// sweepTrailer is the final NDJSON line: confirmation the stream is
// complete (or the error that cut it short).
type sweepTrailer struct {
	Done  bool   `json:"done"`
	Cells int    `json:"cells"`
	Error string `json:"error,omitempty"`
}

// streamSweep emits one row per cell in grid order, each as soon as
// the cell and its baseline cell are done. Rows carry the derived
// scaling columns, computed per cell against the same baseline a
// whole-grid Derive would use, so the streamed values match a csv/json
// render byte for byte (field for field); emission order is the
// canonical expansion order, so the stream as a whole is deterministic
// even though completion order is not.
func (s *Server) streamSweep(ctx context.Context, w http.ResponseWriter, n sweep.Plan,
	cells []sweep.Cell, ids []string, results []sweep.CellResult, ready []chan struct{}) {

	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// The baseline row index for each cell: same workload, DVFS point
	// and seed on the plan's baseline topology. Normalize guarantees
	// the baseline topology is on the axis, so every cell has one.
	type baseKey struct{ workload, dvfs, seed string }
	baseOf := make(map[baseKey]int)
	for i, c := range cells {
		if c.Topo.Key() == n.Baseline {
			baseOf[baseKey{c.Workload, c.DVFS, seedKey(c.Seed)}] = i
		}
	}

	for i, c := range cells {
		wait := func(j int) bool {
			select {
			case <-ready[j]:
				return true
			case <-ctx.Done():
				return false
			}
		}
		b, hasBase := baseOf[baseKey{c.Workload, c.DVFS, seedKey(c.Seed)}]
		if !wait(i) || (hasBase && !wait(b)) {
			enc.Encode(sweepTrailer{Cells: i, Error: ctx.Err().Error()})
			return
		}
		row := sweepRow{Index: i, ID: ids[i], Result: results[i]}
		if hasBase {
			sweep.DeriveCell(&row.Result, &results[b])
		}
		if err := enc.Encode(row); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc.Encode(sweepTrailer{Done: true, Cells: len(cells)})
}

// seedKey matches sweep's seed labelling for baseline lookup.
func seedKey(s *uint64) string {
	if s == nil {
		return "-"
	}
	return strconv.FormatUint(*s, 10)
}

// ---- listings, stats, health ----

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	ws := workload.All()
	names := make([]string, len(ws))
	for i, wl := range ws {
		names[i] = wl.Name()
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": names})
}

func (s *Server) handleTopologies(w http.ResponseWriter, _ *http.Request) {
	type topoInfo struct {
		Name  string `json:"name"`
		Chips int    `json:"chips"`
		Rows  int    `json:"rows"`
		Cols  int    `json:"cols"`
		Cores int    `json:"cores"`
		Desc  string `json:"desc"`
	}
	var infos []topoInfo
	for _, t := range system.Topologies() {
		infos = append(infos, topoInfo{
			Name: t.Name, Chips: t.NumChips(),
			Rows: t.Rows(), Cols: t.Cols(), Cores: t.NumCores(),
			Desc: t.String(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"topologies": infos,
		"note":       `the full topology grammar is accepted wherever a preset is: ad-hoc meshes ("4x8"), chip grids ("grid=4x4/chip=8x8", "cluster-4x4", "e64x16") and c2c overrides ("cluster-2x2/c2c=40:600")`,
	})
}

// handlePlans lists the registered named sweep plans; POST a listed
// plan's "plan" object to /v1/sweeps to run it.
func (s *Server) handlePlans(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"plans": sweep.Plans()})
}

func (s *Server) handlePowerModels(w http.ResponseWriter, _ *http.Request) {
	type modelInfo struct {
		Name    string   `json:"name"`
		Nominal string   `json:"nominal"`
		Points  []string `json:"points"`
	}
	var infos []modelInfo
	for _, name := range power.Models() {
		m, _ := power.ModelByName(name)
		points := make([]string, len(m.Points))
		for i, op := range m.Points {
			points[i] = op.String()
		}
		infos = append(infos, modelInfo{Name: name, Nominal: m.Nominal.String(), Points: points})
	}
	writeJSON(w, http.StatusOK, map[string]any{"models": infos})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the Prometheus text exposition: the Stats
// counters plus the request counter and stage histograms.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeUnavailable(w, "server is draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ---- response helpers ----

// writeJob renders a job body. The bytes are a pure function of the
// cached entry, so hit and miss responses are identical; only the
// X-Epiphany-Cache header tells them apart.
func writeJob(w http.ResponseWriter, id string, e entry, cacheStatus string) {
	w.Header().Set("X-Epiphany-Cache", cacheStatus)
	writeJSON(w, http.StatusOK, JobResponse{ID: id, Cell: e.Cell, Power: e.Power, Result: e.Result})
}

// writeJSON writes v indented (the API is curl-first) with a trailing
// newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(append(b, '\n'))
}

// writeError renders an error body: {"error": "..."}.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeUnavailable is the 503 every refused submission gets, with a
// Retry-After so well-behaved clients back off.
func writeUnavailable(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, errors.New("epiphany: "+reason))
}

// writeTimeout maps a context error to its HTTP status: deadline
// exceeded is the server's per-request budget (504), cancellation is
// the client hanging up (no one is listening, but write 499-adjacent
// 503 for the log's sake).
func writeTimeout(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, errors.New("epiphany: request timed out"))
		return
	}
	writeError(w, http.StatusServiceUnavailable, err)
}
