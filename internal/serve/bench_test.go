package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchSubmit drives one POST /v1/jobs through the in-process handler -
// no sockets, so the numbers isolate the service layer (decode,
// normalize, fingerprint, cache, encode) from the network.
func benchSubmit(b *testing.B, s *Server, body []byte, wantCache string) {
	b.Helper()
	req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Epiphany-Cache"); got != wantCache {
		b.Fatalf("cache status %q, want %q", got, wantCache)
	}
}

func marshalSpec(b *testing.B, spec JobSpec) []byte {
	b.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// BenchmarkServeCacheHit measures a fully warm request: every
// iteration re-submits the same job and must be served from the cache.
// This is the daemon's raison d'etre - compare with
// BenchmarkServeCacheMiss to see the leverage.
func BenchmarkServeCacheHit(b *testing.B) {
	s, err := NewServer(Config{})
	if err != nil {
		b.Fatal(err)
	}
	body := marshalSpec(b, JobSpec{Workload: "stencil-tuned", Topo: "e16"})
	benchSubmit(b, s, body, "miss") // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSubmit(b, s, body, "hit")
	}
}

// BenchmarkServeCacheMiss measures a cold request: every iteration
// submits a job the cache has never seen (the seed axis makes each
// spec a distinct content address), so each one pays for a full e16
// stencil simulation.
func BenchmarkServeCacheMiss(b *testing.B) {
	s, err := NewServer(Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		benchSubmit(b, s, marshalSpec(b, JobSpec{Workload: "stencil-tuned", Topo: "e16", Seed: &seed}), "miss")
	}
}
