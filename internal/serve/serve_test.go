package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"epiphany/internal/sweep"
)

// testPlan is the small grid the service tests sweep: 2 workloads x 2
// topologies, 4 cells, a couple hundred milliseconds of simulation.
var testPlan = sweep.Plan{
	Workloads: []string{"stencil-tuned", "matmul-cannon"},
	Topos:     []sweep.Topo{{Preset: "e16"}, {Preset: "e64"}},
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do drives the handler in process: no sockets, no goroutines.
func do(t *testing.T, s *Server, method, target string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req := httptest.NewRequest(method, target, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func wantStatus(t *testing.T, w *httptest.ResponseRecorder, status int) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status %d, want %d; body: %s", w.Code, status, w.Body.String())
	}
}

// TestJobHitMissByteIdentity is the cache's core contract: the second
// submission of an identical job is served from the cache (header flips
// miss -> hit, stats count one of each) with a byte-identical body.
func TestJobHitMissByteIdentity(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := JobSpec{Workload: "stencil-tuned", Topo: "e16"}

	first := do(t, s, "POST", "/v1/jobs", spec)
	wantStatus(t, first, http.StatusOK)
	if got := first.Header().Get("X-Epiphany-Cache"); got != "miss" {
		t.Errorf("first submission cache status %q, want miss", got)
	}

	second := do(t, s, "POST", "/v1/jobs", spec)
	wantStatus(t, second, http.StatusOK)
	if got := second.Header().Get("X-Epiphany-Cache"); got != "hit" {
		t.Errorf("second submission cache status %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("hit body differs from miss body:\n%s\nvs\n%s", first.Body, second.Body)
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Errorf("stats hits=%d misses=%d entries=%d, want 1/1/1", st.CacheHits, st.CacheMisses, st.CacheEntries)
	}
	if st.SimulatedWallNS <= 0 || st.ServedWallNS <= 0 {
		t.Errorf("wall accounting sim=%d served=%d, want both positive", st.SimulatedWallNS, st.ServedWallNS)
	}

	// The job is re-fetchable by its content address, same bytes again.
	var resp JobResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	got := do(t, s, "GET", "/v1/jobs/"+resp.ID, nil)
	wantStatus(t, got, http.StatusOK)
	if !bytes.Equal(got.Body.Bytes(), first.Body.Bytes()) {
		t.Error("GET /v1/jobs/{id} body differs from the submission body")
	}

	// Unknown id is a 404, not an empty 200.
	wantStatus(t, do(t, s, "GET", "/v1/jobs/"+strings.Repeat("0", 64), nil), http.StatusNotFound)
}

// TestJobSeedAndDVFSAddress: the seed and the DVFS point are part of
// the content address - distinct specs must not collide.
func TestJobSeedAndDVFSAddress(t *testing.T) {
	s := newTestServer(t, Config{})
	seed := uint64(7)
	a := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16"})
	b := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16", Seed: &seed})
	c := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16",
		Power: "epiphany-iv-28nm", DVFS: "300@0.85"})
	for _, w := range []*httptest.ResponseRecorder{a, b, c} {
		wantStatus(t, w, http.StatusOK)
		if got := w.Header().Get("X-Epiphany-Cache"); got != "miss" {
			t.Fatalf("distinct spec served from cache (%q)", got)
		}
	}
	if st := s.Stats(); st.CacheMisses != 3 || st.CacheHits != 0 {
		t.Errorf("stats misses=%d hits=%d, want 3/0", st.CacheMisses, st.CacheHits)
	}
}

// TestJobBadRequests: malformed and unknown specs get 400s with the
// library's suggestion-bearing messages, never a simulation.
func TestJobBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
		want string
	}{
		{"bad json", "{", "bad job spec"},
		{"unknown field", `{"wrkload":"x"}`, "unknown field"},
		{"missing workload", JobSpec{}, `needs a`},
		{"unknown workload", JobSpec{Workload: "stencil-tunned"}, `did you mean \"stencil-tuned\"`},
		{"unknown topology", JobSpec{Workload: "stencil-tuned", Topo: "e63"}, "unknown topology"},
		{"unknown power model", JobSpec{Workload: "stencil-tuned", Power: "epiphany-iv-28mn"}, "did you mean"},
		{"dvfs without power", JobSpec{Workload: "stencil-tuned", DVFS: "600@1.0"}, "power model"},
	}
	for _, tc := range cases {
		w := do(t, s, "POST", "/v1/jobs", tc.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
			continue
		}
		if !strings.Contains(w.Body.String(), tc.want) {
			t.Errorf("%s: body %q missing %q", tc.name, w.Body.String(), tc.want)
		}
	}
	if st := s.Stats(); st.CacheMisses != 0 {
		t.Errorf("bad requests reached the simulator: %d misses", st.CacheMisses)
	}
}

// TestSweepMatchesLibrary: every non-streaming service format renders
// exactly the bytes the in-process sweep API produces for the same
// plan - cold (all misses) and warm (all hits).
func TestSweepMatchesLibrary(t *testing.T) {
	lib, err := sweep.Run(context.Background(), testPlan, 0)
	if err != nil {
		t.Fatal(err)
	}
	libJSON, err := lib.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"csv":      lib.CSV(),
		"text":     lib.Text(),
		"markdown": lib.Markdown(),
		"json":     string(libJSON),
	}

	s := newTestServer(t, Config{})
	for pass, label := range map[int]string{0: "cold", 1: "warm"} {
		for format, wantBody := range want {
			w := do(t, s, "POST", "/v1/sweeps?format="+format, testPlan)
			wantStatus(t, w, http.StatusOK)
			if got := w.Body.String(); got != wantBody {
				t.Errorf("%s %s render differs from library:\n got: %q\nwant: %q", label, format, got, wantBody)
			}
			if w.Header().Get("X-Epiphany-Sweep-Id") == "" {
				t.Errorf("%s %s: no sweep id header", label, format)
			}
		}
		_ = pass
	}

	// The warm passes hit every cell: only the first pass simulated.
	cells := int64(len(lib.Cells))
	if st := s.Stats(); st.CacheMisses != cells {
		t.Errorf("cache misses %d, want %d (one cold pass)", st.CacheMisses, cells)
	}

	// GET /v1/sweeps/{id} re-renders the same bytes.
	first := do(t, s, "POST", "/v1/sweeps?format=csv", testPlan)
	id := first.Header().Get("X-Epiphany-Sweep-Id")
	again := do(t, s, "GET", "/v1/sweeps/"+id+"?format=csv", nil)
	wantStatus(t, again, http.StatusOK)
	if again.Body.String() != want["csv"] {
		t.Error("GET /v1/sweeps/{id} render differs from POST render")
	}
	wantStatus(t, do(t, s, "GET", "/v1/sweeps/"+strings.Repeat("f", 64), nil), http.StatusNotFound)
}

// TestSweepNDJSON: the stream yields one row per cell in canonical grid
// order with derived columns equal to a whole-grid render, then a done
// trailer.
func TestSweepNDJSON(t *testing.T) {
	lib, err := sweep.Run(context.Background(), testPlan, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/sweeps?format=ndjson", testPlan)
	wantStatus(t, w, http.StatusOK)
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type %q", ct)
	}

	sc := bufio.NewScanner(bytes.NewReader(w.Body.Bytes()))
	sc.Buffer(nil, 1<<20)
	var rows []sweepRow
	var trailer sweepTrailer
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var row sweepRow
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("bad row %s: %v", line, err)
		}
		rows = append(rows, row)
	}
	if len(rows) != len(lib.Cells) {
		t.Fatalf("%d rows, want %d", len(rows), len(lib.Cells))
	}
	if !trailer.Done || trailer.Cells != len(lib.Cells) || trailer.Error != "" {
		t.Errorf("trailer %+v", trailer)
	}
	for i, row := range rows {
		if row.Index != i {
			t.Fatalf("row %d carries index %d - stream out of grid order", i, row.Index)
		}
		if len(row.ID) != 64 {
			t.Errorf("row %d id %q", i, row.ID)
		}
		got, err := json.Marshal(row.Result)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(lib.Cells[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("row %d differs from library cell:\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestSweepJobCacheSharing: a sweep's cells and individually submitted
// jobs share one content-addressed store.
func TestSweepJobCacheSharing(t *testing.T) {
	s := newTestServer(t, Config{})
	wantStatus(t, do(t, s, "POST", "/v1/sweeps?format=csv", testPlan), http.StatusOK)
	before := s.Stats()

	w := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16"})
	wantStatus(t, w, http.StatusOK)
	if got := w.Header().Get("X-Epiphany-Cache"); got != "hit" {
		t.Errorf("job inside a swept grid was a cache %s", got)
	}
	after := s.Stats()
	if after.CacheMisses != before.CacheMisses {
		t.Error("job re-simulated a swept cell")
	}
}

// TestSweepBadRequests: plan and format validation.
func TestSweepBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/sweeps", `{"workloads":["no-such"]}`)
	wantStatus(t, w, http.StatusBadRequest)
	w = do(t, s, "POST", "/v1/sweeps?format=yaml", testPlan)
	wantStatus(t, w, http.StatusBadRequest)
	if !strings.Contains(w.Body.String(), "unknown format") {
		t.Errorf("body %q", w.Body.String())
	}
	wantStatus(t, do(t, s, "POST", "/v1/sweeps", "{"), http.StatusBadRequest)
}

// TestPersistence: a second daemon pointed at the first one's cache
// directory serves its corpus without re-simulating, byte-identically.
func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Workload: "stencil-tuned", Topo: "e16"}

	a := newTestServer(t, Config{CacheDir: dir})
	first := do(t, a, "POST", "/v1/jobs", spec)
	wantStatus(t, first, http.StatusOK)
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted files %v (err %v), want exactly one", files, err)
	}

	b := newTestServer(t, Config{CacheDir: dir})
	second := do(t, b, "POST", "/v1/jobs", spec)
	wantStatus(t, second, http.StatusOK)
	if got := second.Header().Get("X-Epiphany-Cache"); got != "hit" {
		t.Fatalf("restarted daemon missed its persisted corpus (%s)", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("disk-served body differs from the original")
	}
	if st := b.Stats(); st.CacheMisses != 0 {
		t.Errorf("restarted daemon simulated %d times", st.CacheMisses)
	}

	// A torn file is a miss, not an error.
	if err := os.WriteFile(files[0], []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := newTestServer(t, Config{CacheDir: dir})
	third := do(t, c, "POST", "/v1/jobs", spec)
	wantStatus(t, third, http.StatusOK)
	if got := third.Header().Get("X-Epiphany-Cache"); got != "miss" {
		t.Errorf("torn persisted file served as a %s", got)
	}
	if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Error("re-simulated body differs - determinism broken")
	}
}

// TestPersistenceVersionMismatch: a persisted corpus written under an
// older EngineVersion - e.g. before the schemeDouble rotation-handshake
// fix shifted the off-chip matmul goldens - must degrade to counted
// misses, be re-simulated on the current engine, and be overwritten in
// place, never served.
func TestPersistenceVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Workload: "stencil-tuned", Topo: "e16"}

	a := newTestServer(t, Config{CacheDir: dir})
	first := do(t, a, "POST", "/v1/jobs", spec)
	wantStatus(t, first, http.StatusOK)
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted files %v (err %v), want exactly one", files, err)
	}

	// Rewrite the entry as a pre-versioning daemon would have written
	// it: same result, no (empty) engine field.
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var stale map[string]json.RawMessage
	if err := json.Unmarshal(b, &stale); err != nil {
		t.Fatal(err)
	}
	delete(stale, "engine")
	b, err = json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	c := newTestServer(t, Config{CacheDir: dir})
	second := do(t, c, "POST", "/v1/jobs", spec)
	wantStatus(t, second, http.StatusOK)
	if got := second.Header().Get("X-Epiphany-Cache"); got != "miss" {
		t.Fatalf("stale-version entry served as a %s", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("re-simulated body differs - determinism broken")
	}
	st := c.Stats()
	if st.CacheVersionMisses != 1 {
		t.Errorf("cache_version_misses = %d, want 1", st.CacheVersionMisses)
	}
	if st.EngineVersion != EngineVersion {
		t.Errorf("stats engine_version %q, want %q", st.EngineVersion, EngineVersion)
	}

	// The miss rewrote the file at the current version: a third daemon
	// serves it from disk again.
	d := newTestServer(t, Config{CacheDir: dir})
	third := do(t, d, "POST", "/v1/jobs", spec)
	wantStatus(t, third, http.StatusOK)
	if got := third.Header().Get("X-Epiphany-Cache"); got != "hit" {
		t.Errorf("rewritten entry missed (%s)", got)
	}
	if st := d.Stats(); st.CacheVersionMisses != 0 {
		t.Errorf("rewritten entry counted as version miss (%d)", st.CacheVersionMisses)
	}
}

// TestLRUBound: the in-memory cache never exceeds its entry bound.
func TestLRUBound(t *testing.T) {
	s := newTestServer(t, Config{CacheEntries: 2})
	for i := uint64(1); i <= 4; i++ {
		seed := i
		wantStatus(t, do(t, s, "POST", "/v1/jobs",
			JobSpec{Workload: "stencil-tuned", Topo: "e16", Seed: &seed}), http.StatusOK)
	}
	st := s.Stats()
	if st.CacheEntries != 2 {
		t.Errorf("cache holds %d entries, bound is 2", st.CacheEntries)
	}
	if st.CacheMisses != 4 {
		t.Errorf("misses %d, want 4", st.CacheMisses)
	}
}

// TestDrain: a draining server refuses submissions with 503 and fails
// health checks, but keeps answering reads.
func TestDrain(t *testing.T) {
	s := newTestServer(t, Config{})
	first := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16"})
	wantStatus(t, first, http.StatusOK)
	var resp JobResponse
	if err := json.Unmarshal(first.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}

	wantStatus(t, do(t, s, "GET", "/v1/healthz", nil), http.StatusOK)
	s.Drain()
	if !s.Draining() {
		t.Fatal("Draining() false after Drain()")
	}
	wantStatus(t, do(t, s, "GET", "/v1/healthz", nil), http.StatusServiceUnavailable)
	w := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16"})
	wantStatus(t, w, http.StatusServiceUnavailable)
	if got := w.Header().Get("Retry-After"); got == "" {
		t.Error("503 without Retry-After")
	}
	wantStatus(t, do(t, s, "POST", "/v1/sweeps", testPlan), http.StatusServiceUnavailable)
	// Reads still work: collected results remain fetchable.
	wantStatus(t, do(t, s, "GET", "/v1/jobs/"+resp.ID, nil), http.StatusOK)
	wantStatus(t, do(t, s, "GET", "/v1/stats", nil), http.StatusOK)
}

// TestQueueFull: with every admission slot taken, a simulation-bearing
// request gets 503 while a cache hit still flows.
func TestQueueFull(t *testing.T) {
	s := newTestServer(t, Config{QueueDepth: 1})
	spec := JobSpec{Workload: "stencil-tuned", Topo: "e16"}
	wantStatus(t, do(t, s, "POST", "/v1/jobs", spec), http.StatusOK)

	s.queue <- struct{}{} // occupy the only slot
	seed := uint64(99)
	w := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16", Seed: &seed})
	wantStatus(t, w, http.StatusServiceUnavailable)
	if !strings.Contains(w.Body.String(), "queue is full") {
		t.Errorf("body %q", w.Body.String())
	}
	if st := s.Stats(); st.QueueDepth != 1 || st.QueueCapacity != 1 {
		t.Errorf("queue stats %d/%d, want 1/1", st.QueueDepth, st.QueueCapacity)
	}
	// The cached cell bypasses the queue entirely.
	hit := do(t, s, "POST", "/v1/jobs", spec)
	wantStatus(t, hit, http.StatusOK)
	if got := hit.Header().Get("X-Epiphany-Cache"); got != "hit" {
		t.Errorf("cache status %q", got)
	}
	<-s.queue
}

// TestRequestTimeout: a request whose budget is already spent gets 504
// and caches nothing.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	w := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16"})
	wantStatus(t, w, http.StatusGatewayTimeout)
	if st := s.Stats(); st.CacheEntries != 0 {
		t.Errorf("timed-out request cached %d entries", st.CacheEntries)
	}
}

// TestListings: the discovery endpoints enumerate the registries.
func TestListings(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, tc := range []struct{ path, want string }{
		{"/v1/workloads", `"stencil-tuned"`},
		{"/v1/topologies", `"cluster-2x2"`},
		{"/v1/powermodels", `"epiphany-iv-28nm"`},
		{"/v1/powermodels", `"600MHz@1.00V"`},
	} {
		w := do(t, s, "GET", tc.path, nil)
		wantStatus(t, w, http.StatusOK)
		if !strings.Contains(w.Body.String(), tc.want) {
			t.Errorf("%s missing %s; body: %s", tc.path, tc.want, w.Body.String())
		}
	}
	// Method enforcement comes from the Go 1.22+ mux patterns.
	wantStatus(t, do(t, s, "GET", "/v1/jobs", nil), http.StatusMethodNotAllowed)
	wantStatus(t, do(t, s, "DELETE", "/v1/stats", nil), http.StatusMethodNotAllowed)
}

// TestStatsShape: the stats body is stable, grep-able JSON (the CI
// smoke test greps it), with every documented field present.
func TestStatsShape(t *testing.T) {
	s := newTestServer(t, Config{})
	wantStatus(t, do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16"}), http.StatusOK)
	wantStatus(t, do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "e16"}), http.StatusOK)
	w := do(t, s, "GET", "/v1/stats", nil)
	wantStatus(t, w, http.StatusOK)
	body := w.Body.String()
	for _, field := range []string{
		`"cache_entries": 1`, `"cache_hits": 1`, `"cache_misses": 1`,
		`"engine_version": "` + EngineVersion + `"`, `"cache_version_misses": 0`,
		`"queue_depth"`, `"queue_capacity"`, `"in_flight"`,
		`"simulated_wall_ns"`, `"served_wall_ns"`, `"draining": false`,
	} {
		if !strings.Contains(body, field) {
			t.Errorf("stats body missing %s:\n%s", field, body)
		}
	}
}

// TestJobGridTopoSpecs: the parameterized topology grammar flows into
// JobSpec.Topo - grid specs run, canonicalize inside the response
// cell, and near-miss spellings 400 with the library's "did you mean"
// suggestion rather than reaching the simulator.
func TestJobGridTopoSpecs(t *testing.T) {
	s := newTestServer(t, Config{})

	w := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "grid=2x2/chip=4x4"})
	wantStatus(t, w, http.StatusOK)
	var resp JobResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cell.Topo.Spec != "grid=2x2/chip=4x4" {
		t.Errorf("cell topo %+v, want the canonical grid spec", resp.Cell.Topo)
	}
	// The grammar keeps alias boards distinct, but canonical spelling
	// means alternate spellings of the same spec share one cache entry.
	again := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: "grid=+2x2/chip=4x4"})
	wantStatus(t, again, http.StatusOK)
	if got, want := again.Header().Get("X-Epiphany-Cache"), "hit"; got != want {
		t.Errorf("alternate spelling of the same grid: cache %q, want %q", got, want)
	}

	for _, tc := range []struct {
		name string
		topo string
		want string
	}{
		{"near-miss alias", "cluster4x4", `did you mean \"cluster-4x4\"`},
		{"near-miss preset", "e65", `did you mean \"e64\"`},
		{"address-space overflow", "grid=8x8/chip=8x8", "does not fit the 64x64 mesh"},
		{"zero dims", "grid=0x4/chip=4x4", "invalid topology"},
		{"malformed chip", "grid=4x4/chip=ax8", "ROWSxCOLS"},
	} {
		w := do(t, s, "POST", "/v1/jobs", JobSpec{Workload: "stencil-tuned", Topo: tc.topo})
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
			continue
		}
		if !strings.Contains(w.Body.String(), tc.want) {
			t.Errorf("%s: body %q missing %q", tc.name, w.Body.String(), tc.want)
		}
	}
}

// TestSweepSpecAxis: sweep plans spell grid topologies through the
// "spec" axis field, and a near-miss spec 400s with a suggestion.
func TestSweepSpecAxis(t *testing.T) {
	s := newTestServer(t, Config{})
	plan := sweep.Plan{
		Workloads: []string{"stencil-tuned"},
		Topos:     []sweep.Topo{{Preset: "e16"}, {Spec: "grid=2x2/chip=4x4"}},
	}
	w := do(t, s, "POST", "/v1/sweeps", plan)
	wantStatus(t, w, http.StatusOK)
	if body := w.Body.String(); !strings.Contains(body, `"spec": "grid=2x2/chip=4x4"`) {
		t.Errorf("sweep response lacks the canonical spec axis value:\n%s", body)
	}

	bad := sweep.Plan{
		Workloads: []string{"stencil-tuned"},
		Topos:     []sweep.Topo{{Spec: "cluster4x4"}},
	}
	w = do(t, s, "POST", "/v1/sweeps", bad)
	wantStatus(t, w, http.StatusBadRequest)
	if !strings.Contains(w.Body.String(), `did you mean \"cluster-4x4\"`) {
		t.Errorf("near-miss spec 400 lacks suggestion: %s", w.Body.String())
	}
}

// TestPlansListing: /v1/plans lists the registered named plans with
// their grids, ready to POST to /v1/sweeps.
func TestPlansListing(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "GET", "/v1/plans", nil)
	wantStatus(t, w, http.StatusOK)
	body := w.Body.String()
	for _, want := range []string{`"scaling-1024"`, `"grid=4x4/chip=8x8"`, `"baseline": "e16"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/v1/plans missing %s:\n%s", want, body)
		}
	}
}
