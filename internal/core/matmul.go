package core

import (
	"fmt"
	"math"

	"epiphany/internal/host"
	"epiphany/internal/isa"
	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

// Per-core scratchpad plan for the matmul kernels (§VII: "the entire code
// takes around 11 KBytes ... occupies the first data bank and portions of
// the second ... with the stack being allocated in the bottom half of
// bank 1").
const (
	matmulCodeOff   mem.Addr = 0x0000
	matmulCodeSize           = 13 * 1024
	matmulStackOff  mem.Addr = 0x3400
	matmulStackSize          = 0x0B00
	matmulFlagsOff  mem.Addr = 0x3F00
	matmulFlagsSize          = 0x100
	matmulDataOff   mem.Addr = 0x4000
	// The paper's exact 32x32 placement (§VII "Memory Considerations").
	matmulA32    mem.Addr = 0x4000 // A: 0x4000-0x4FFF, buffer 0x5000-0x57FF
	matmulB32    mem.Addr = 0x5800 // B: 0x5800-0x67FF, buffer 0x6800-0x6FFF
	matmulC32    mem.Addr = 0x7000 // C: 0x7000-0x7FFF
	matmulHalfSz          = 0x0800 // 2 KB half-block rotation unit
)

// Flag slots (4-byte words at matmulFlagsOff), named by who posts them.
const (
	flagCDFromLeft    = 0 // left neighbour finished compute round N (schemeHalf)
	flagCDFromUp      = 1
	flagArrAFromRight = 2 // A block for round N landed (posted by right)
	flagArrBFromBelow = 3
	flagP1AFromLeft   = 4 // left finished sending its phase-1 A half
	flagP1BFromUp     = 5
	// Slots 6-13 belong to SUMMA (matmul_summa.go).
	//
	// The schemeDouble send credit: the poster has fully retired round
	// N - its compute read the round's buffers AND its rotation
	// forwarded out of them - so the neighbours that DMA into it
	// (right for A, below for B) may overwrite those buffers. Posted
	// after a rotation's sends complete, or right after compute on a
	// pass's rotation-less final round. Gating overwrites on the
	// compute-done flag instead opened a race window under skewed
	// start times (the old off-chip schemeDouble corruption).
	flagFwdFromLeft = 14 // left neighbour retired round N (sends included)
	flagFwdFromUp   = 15
)

// MatmulConfig describes a multiplication C(MxK) = A(MxN) * B(NxK).
type MatmulConfig struct {
	M, N, K int
	// G is the square workgroup edge (1, 2, 4 or 8): Cannon's algorithm
	// rotates blocks around a GxG torus.
	G int
	// Tuned selects the hand-scheduled inner kernel model.
	Tuned bool
	// OffChip pages 256x256-class blocks through shared DRAM (§VII's top
	// level); otherwise operands must fit in on-chip memory.
	OffChip bool
	// OffChipEdge overrides the per-core tile edge for off-chip runs
	// (0 = choose the largest of 32/24/16/8 that divides the per-group
	// share). The paper used 24 for its 1536x1536 measurement, which is
	// why that row is slower.
	OffChipEdge int
	// Verify keeps operand values as small integers so float32 sums are
	// exact regardless of accumulation order.
	Verify bool
	// Algorithm selects the on-chip distribution algorithm: "" or
	// "cannon" for the paper's Cannon rotation, "summa" for the SUMMA
	// broadcast algorithm §VIII discusses as the alternative.
	Algorithm string
	Seed      uint64
}

func (cfg *MatmulConfig) blockDims() (m, n, k int, err error) {
	g := cfg.G
	if g != 1 && g != 2 && g != 4 && g != 8 {
		return 0, 0, 0, fmt.Errorf("core: workgroup edge %d not in {1,2,4,8}", g)
	}
	if cfg.M%g != 0 || cfg.N%g != 0 || cfg.K%g != 0 {
		return 0, 0, 0, fmt.Errorf("core: %dx%dx%d not divisible by group edge %d",
			cfg.M, cfg.N, cfg.K, g)
	}
	m, n, k = cfg.M/g, cfg.N/g, cfg.K/g
	if cfg.OffChip {
		// The paged level reuses the on-chip kernel per 32- or 24-wide
		// sub-block; the per-core working set is chosen by the driver.
		return m, n, k, nil
	}
	if k > 32 {
		// k is the C-row accumulator width: r32-r63 is the hard limit.
		return 0, 0, 0, fmt.Errorf("core: per-core block %dx%dx%d exceeds the 32-register accumulator file", m, n, k)
	}
	return m, n, k, nil
}

// Validate checks the configuration without running it.
func (cfg *MatmulConfig) Validate() error {
	if _, _, _, err := cfg.blockDims(); err != nil {
		return err
	}
	switch cfg.Algorithm {
	case "", "cannon":
	case "summa":
		if cfg.OffChip {
			return fmt.Errorf("core: the off-chip pager is built on Cannon; SUMMA is on-chip only")
		}
	default:
		return fmt.Errorf("core: unknown algorithm %q (want cannon or summa)", cfg.Algorithm)
	}
	return nil
}

// matmulScheme picks the buffering scheme for a per-core block size.
type matmulScheme int

const (
	schemeDouble matmulScheme = iota // full double buffers for A and B
	schemeHalf                       // the paper's 2 KB half-buffer rotation
)

// matmulRegions computes the scratchpad placement for a block size,
// returning the scheme and the A/B/C base offsets (A and B are the
// current-buffer bases; for schemeDouble, the second buffers sit
// abBufStride above).
type matmulPlan struct {
	scheme            matmulScheme
	a0, a1, b0, b1, c mem.Addr
	layout            *mem.Layout
}

// planMatmul computes the scratchpad placement for an m x n x k per-core
// block distributed over a g x g group. Single cores (g = 1) do not
// rotate and need no second buffers; small multi-core blocks double
// buffer both operands; and the paper's 32^3 blocks - whose double
// buffers cannot fit beside the 13 KB of macro-expanded code - use the
// exact half-buffer placement of §VII.
func planMatmul(m, n, k, g int) (*matmulPlan, error) {
	aSz, bSz, cSz := 4*m*n, 4*n*k, 4*m*k
	l := mem.NewLayout()
	if g > 1 && m == 32 && n == 32 && k == 32 {
		// The paper's fixed plan: 13 KB code, stack in bank 1, operands
		// with 2 KB rotation buffers at the documented addresses.
		for _, r := range []struct {
			name string
			off  mem.Addr
			sz   int
		}{
			{"code", matmulCodeOff, matmulCodeSize},
			{"stack", matmulStackOff, matmulStackSize},
			{"flags", matmulFlagsOff, matmulFlagsSize},
			{"A+buf", matmulA32, 0x1800},
			{"B+buf", matmulB32, 0x1800},
			{"C", matmulC32, 0x1000},
		} {
			if _, err := l.PlaceAt(r.name, r.off, r.sz); err != nil {
				return nil, err
			}
		}
		return &matmulPlan{
			scheme: schemeHalf, layout: l,
			a0: matmulA32, b0: matmulB32, c: matmulC32,
		}, nil
	}
	// Adaptive plan: the macro-expanded code size tracks the block shape.
	codeSz := isa.CodeBytes(isa.MatmulRowBodyNK(n, k)) + 3*1024
	if codeSz < 6*1024 {
		codeSz = 6 * 1024
	}
	if _, err := l.PlaceAt("code", matmulCodeOff, codeSz); err != nil {
		return nil, err
	}
	var err error
	place := func(name string, sz int) mem.Addr {
		if err != nil {
			return 0
		}
		r, e := l.Alloc(name, sz, -1, 8)
		if e != nil {
			err = fmt.Errorf("core: %dx%dx%d per-core block does not fit the 32 KB scratchpad: %w", m, n, k, e)
		}
		return r.Off
	}
	place("stack", 1024)
	// Flags live at a fixed, globally known offset: neighbours post to it.
	if _, e := l.PlaceAt("flags", matmulFlagsOff, matmulFlagsSize); e != nil && err == nil {
		err = e
	}
	p := &matmulPlan{scheme: schemeDouble, layout: l}
	p.a0 = place("A0", aSz)
	p.b0 = place("B0", bSz)
	if g > 1 {
		p.a1 = place("A1", aSz)
		p.b1 = place("B1", bSz)
	}
	p.c = place("C", cSz)
	if err != nil {
		return nil, err
	}
	return p, nil
}

// MatmulResult reports one run.
type MatmulResult struct {
	Elapsed    sim.Time
	TotalFlops uint64
	GFLOPS     float64
	PctPeak    float64
	// ComputeTime and TransferTime decompose off-chip runs as Table VI
	// does (summed over cores; percentages are of their sum).
	ComputeTime  sim.Time
	TransferTime sim.Time
	// C is the gathered result, row-major M x K.
	C []float32
	// NoC reports chip-boundary eLink traffic on multi-chip boards.
	NoC NoCStats
}

// PctCompute returns the Table VI "% Computation" column.
func (r *MatmulResult) PctCompute() float64 { return r.Metrics().PctCompute() }

// PctTransfer returns the Table VI "% Shared Mem Transfers" column.
func (r *MatmulResult) PctTransfer() float64 { return r.Metrics().PctTransfer() }

// makeMatmulInput builds deterministic operands. With Verify, entries are
// small integers so that float32 accumulation is exact in any order.
func makeMatmulInput(cfg *MatmulConfig) (a, b []float32) {
	rng := sim.NewRand(cfg.Seed + 7)
	a = make([]float32, cfg.M*cfg.N)
	b = make([]float32, cfg.N*cfg.K)
	fill := func(s []float32) {
		for i := range s {
			if cfg.Verify {
				s[i] = float32(rng.Intn(9) - 4)
			} else {
				s[i] = rng.Float32() - 0.5
			}
		}
	}
	fill(a)
	fill(b)
	return a, b
}

// MatmulReference computes the product on the host in float64 for
// verification.
func MatmulReference(cfg MatmulConfig) []float32 {
	a, b := makeMatmulInput(&cfg)
	c := make([]float32, cfg.M*cfg.K)
	for i := 0; i < cfg.M; i++ {
		for l := 0; l < cfg.N; l++ {
			av := float64(a[i*cfg.N+l])
			for j := 0; j < cfg.K; j++ {
				c[i*cfg.K+j] = float32(float64(c[i*cfg.K+j]) + av*float64(b[l*cfg.K+j]))
			}
		}
	}
	return c
}

// MaxAbsDiff returns the largest elementwise |x-y|; helper for tests and
// examples comparing device output to the reference.
func MaxAbsDiff(x, y []float32) float64 {
	if len(x) != len(y) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range x {
		if d := math.Abs(float64(x[i]) - float64(y[i])); d > worst {
			worst = d
		}
	}
	return worst
}

// RunMatmul dispatches to the configured driver.
func RunMatmul(h *host.Host, cfg MatmulConfig) (*MatmulResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Algorithm == "summa" {
		return runMatmulSumma(h, cfg)
	}
	if cfg.OffChip {
		return runMatmulOffChip(h, cfg)
	}
	return runMatmulOnChip(h, cfg)
}
