package core

import "epiphany/internal/sim"

// Metrics is the common performance summary every workload result
// reports, mirroring how the paper presents performance: achieved
// GFLOPS, percentage of the 2-flop/cycle/core peak, and - for runs that
// page operands through shared DRAM - the compute/transfer
// decomposition of Table VI.
type Metrics struct {
	// Elapsed is the simulated device time of the run.
	Elapsed sim.Time
	// TotalFlops counts the useful floating-point operations the run is
	// credited with (redundant halo recomputation is excluded).
	TotalFlops uint64
	GFLOPS     float64
	PctPeak    float64
	// ComputeTime and TransferTime decompose off-chip runs as Table VI
	// does (summed over cores); both are zero when not measured.
	ComputeTime  sim.Time
	TransferTime sim.Time
}

// PctCompute returns the Table VI "% Computation" column.
func (m Metrics) PctCompute() float64 {
	total := m.ComputeTime + m.TransferTime
	if total == 0 {
		return 0
	}
	return 100 * float64(m.ComputeTime) / float64(total)
}

// PctTransfer returns the Table VI "% Shared Mem Transfers" column.
func (m Metrics) PctTransfer() float64 {
	total := m.ComputeTime + m.TransferTime
	if total == 0 {
		return 0
	}
	return 100 * float64(m.TransferTime) / float64(total)
}

// Metrics summarises a stencil run.
func (r *StencilResult) Metrics() Metrics {
	return Metrics{
		Elapsed:    r.Elapsed,
		TotalFlops: r.TotalFlops,
		GFLOPS:     r.GFLOPS,
		PctPeak:    r.PctPeak,
	}
}

// Metrics summarises a matmul run, including the off-chip
// compute/transfer split when it was measured.
func (r *MatmulResult) Metrics() Metrics {
	return Metrics{
		Elapsed:      r.Elapsed,
		TotalFlops:   r.TotalFlops,
		GFLOPS:       r.GFLOPS,
		PctPeak:      r.PctPeak,
		ComputeTime:  r.ComputeTime,
		TransferTime: r.TransferTime,
	}
}

// Metrics summarises a streamed stencil run. TotalFlops counts only the
// useful interior updates (GFLOPS is useful flops over elapsed time);
// the redundant overlapped-halo work stays in RedundantFlops.
func (r *StreamStencilResult) Metrics() Metrics {
	return Metrics{
		Elapsed:    r.Elapsed,
		TotalFlops: r.UsefulFlops,
		GFLOPS:     r.GFLOPS,
		PctPeak:    r.PctPeak,
	}
}
