package core

import (
	"epiphany/internal/host"
	"epiphany/internal/power"
	"epiphany/internal/sim"
)

// Metrics is the common performance summary every workload result
// reports, mirroring how the paper presents performance: achieved
// GFLOPS, percentage of the 2-flop/cycle/core peak, and - for runs that
// page operands through shared DRAM - the compute/transfer
// decomposition of Table VI.
type Metrics struct {
	// Elapsed is the simulated device time of the run.
	Elapsed sim.Time
	// TotalFlops counts the useful floating-point operations the run is
	// credited with (redundant halo recomputation is excluded).
	TotalFlops uint64
	GFLOPS     float64
	PctPeak    float64
	// ComputeTime and TransferTime decompose off-chip runs as Table VI
	// does (summed over cores); both are zero when not measured.
	ComputeTime  sim.Time
	TransferTime sim.Time
	// ELinkCrossings, ELinkCrossBytes and ELinkCrossTime report the
	// traffic routed over chip-to-chip eLinks on multi-chip boards: how
	// many boundary hops were taken, the bytes they carried, and the
	// accumulated time spent crossing (arbitration, off-chip
	// serialization, crossing latency). All zero on a single chip.
	ELinkCrossings  uint64
	ELinkCrossBytes uint64
	ELinkCrossTime  sim.Time

	// The energy domain, filled only when the run carried a power model
	// (WithPowerModel / Topology.Power) and zero otherwise. Energy is
	// derived from the run's activity counters after the fact, so these
	// fields are purely additive: every time-domain field above is
	// bit-identical with or without them.

	// PowerModel and DVFS identify the model preset and canonical
	// operating-point label the energy figures were derived under.
	PowerModel string
	DVFS       string
	// WallTimeS is the run's wall-clock seconds at the operating
	// point's frequency (Elapsed counts nominal-clock units; a DVFS
	// point stretches or shrinks the wall clock without changing the
	// cycle-domain simulation).
	WallTimeS float64
	// EnergyJ is the run's total energy, AvgPowerW its mean draw over
	// WallTimeS, GFLOPSPerWatt the useful-flops efficiency
	// (TotalFlops/EnergyJ, in GFLOPS/W), and EDPJs the energy-delay
	// product in joule-seconds.
	EnergyJ       float64
	AvgPowerW     float64
	GFLOPSPerWatt float64
	EDPJs         float64
	// Energy is the per-component breakdown of EnergyJ.
	Energy power.Breakdown

	// Engine holds the event engine's scheduler counters when the run
	// requested them (WithEngineStats) and is nil otherwise. A pointer,
	// and omitted from JSON when nil, so the default Metrics - and every
	// golden, cached response and struct-equality comparison built on it
	// - is unchanged by the field's existence.
	Engine *sim.EngineStats `json:"Engine,omitempty"`
}

// NoCStats is the interconnect summary captured from the mesh after a
// run; results embed it so Metrics can report chip-boundary costs.
type NoCStats struct {
	ELinkCrossings  uint64
	ELinkCrossBytes uint64
	ELinkCrossTime  sim.Time
}

// captureNoC snapshots the board's chip-boundary counters.
func captureNoC(h *host.Host) NoCStats {
	m := h.Chip().Fabric().Mesh
	return NoCStats{
		ELinkCrossings:  m.Crossings(),
		ELinkCrossBytes: m.CrossBytes(),
		ELinkCrossTime:  m.CrossTime(),
	}
}

// PctCompute returns the Table VI "% Computation" column.
func (m Metrics) PctCompute() float64 {
	total := m.ComputeTime + m.TransferTime
	if total == 0 {
		return 0
	}
	return 100 * float64(m.ComputeTime) / float64(total)
}

// PctTransfer returns the Table VI "% Shared Mem Transfers" column.
func (m Metrics) PctTransfer() float64 {
	total := m.ComputeTime + m.TransferTime
	if total == 0 {
		return 0
	}
	return 100 * float64(m.TransferTime) / float64(total)
}

// AttachEnergy fills the energy-domain fields from a computed usage
// report. GFLOPS/Watt uses the run's useful flops (TotalFlops), the
// same numerator as the GFLOPS column, so efficiency and throughput
// stay comparable.
func (m *Metrics) AttachEnergy(u power.Usage) {
	m.PowerModel = u.Model
	m.DVFS = u.Point.String()
	m.WallTimeS = u.TimeS
	m.EnergyJ = u.EnergyJ
	m.AvgPowerW = u.AvgPowerW
	if u.EnergyJ > 0 {
		m.GFLOPSPerWatt = float64(m.TotalFlops) / 1e9 / u.EnergyJ
	}
	m.EDPJs = u.EDPJs
	m.Energy = u.Breakdown
}

// cross copies the chip-boundary counters into a Metrics.
func (m *Metrics) cross(n NoCStats) {
	m.ELinkCrossings = n.ELinkCrossings
	m.ELinkCrossBytes = n.ELinkCrossBytes
	m.ELinkCrossTime = n.ELinkCrossTime
}

// Metrics summarises a stencil run.
func (r *StencilResult) Metrics() Metrics {
	m := Metrics{
		Elapsed:    r.Elapsed,
		TotalFlops: r.TotalFlops,
		GFLOPS:     r.GFLOPS,
		PctPeak:    r.PctPeak,
	}
	m.cross(r.NoC)
	return m
}

// Metrics summarises a matmul run, including the off-chip
// compute/transfer split when it was measured.
func (r *MatmulResult) Metrics() Metrics {
	m := Metrics{
		Elapsed:      r.Elapsed,
		TotalFlops:   r.TotalFlops,
		GFLOPS:       r.GFLOPS,
		PctPeak:      r.PctPeak,
		ComputeTime:  r.ComputeTime,
		TransferTime: r.TransferTime,
	}
	m.cross(r.NoC)
	return m
}

// Metrics summarises a streamed stencil run. TotalFlops counts only the
// useful interior updates (GFLOPS is useful flops over elapsed time);
// the redundant overlapped-halo work stays in RedundantFlops.
func (r *StreamStencilResult) Metrics() Metrics {
	m := Metrics{
		Elapsed:    r.Elapsed,
		TotalFlops: r.UsefulFlops,
		GFLOPS:     r.GFLOPS,
		PctPeak:    r.PctPeak,
	}
	m.cross(r.NoC)
	return m
}
