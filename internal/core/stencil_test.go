package core

import (
	"math"
	"testing"

	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/sim"
)

func newHost() *host.Host {
	eng := sim.NewEngine()
	return host.New(ecore.NewChip(eng, 8, 8))
}

func almostEqualGrid(t *testing.T, got, want [][]float32, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("grid rows %d vs %d", len(got), len(want))
	}
	worst := 0.0
	for r := range got {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("row %d length %d vs %d", r, len(got[r]), len(want[r]))
		}
		for c := range got[r] {
			if d := math.Abs(float64(got[r][c] - want[r][c])); d > worst {
				worst = d
			}
		}
	}
	if worst > tol {
		t.Fatalf("grids differ by %g (tol %g)", worst, tol)
	}
}

func TestStencilSingleCoreCorrectness(t *testing.T) {
	cfg := StencilConfig{
		Rows: 12, Cols: 20, Iters: 5,
		GroupRows: 1, GroupCols: 1,
		Comm: true, Tuned: true, Seed: 3,
	}
	res, err := RunStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StencilReference(cfg), 1e-3)
}

func TestStencilMultiCoreMatchesGlobalJacobi(t *testing.T) {
	// The headline correctness property: the distributed kernel with DMA
	// halo exchange computes exactly global Jacobi iteration.
	cfg := StencilConfig{
		Rows: 8, Cols: 20, Iters: 6,
		GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, Seed: 11,
	}
	res, err := RunStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StencilReference(cfg), 1e-3)
}

func TestStencil4x4Correctness(t *testing.T) {
	cfg := StencilConfig{
		Rows: 6, Cols: 20, Iters: 4,
		GroupRows: 4, GroupCols: 4,
		Comm: true, Tuned: true, Seed: 5,
	}
	res, err := RunStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StencilReference(cfg), 1e-3)
}

func TestStencilNoCommReplicated(t *testing.T) {
	cfg := StencilConfig{
		Rows: 10, Cols: 20, Iters: 5,
		GroupRows: 2, GroupCols: 2,
		Comm: false, Tuned: true, Seed: 9,
	}
	res, err := RunStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StencilReference(cfg), 1e-3)
}

func TestStencilNaiveSameAnswerSlower(t *testing.T) {
	base := StencilConfig{
		Rows: 8, Cols: 20, Iters: 3,
		GroupRows: 1, GroupCols: 1, Comm: true, Seed: 2,
	}
	tuned := base
	tuned.Tuned = true
	naive := base
	naive.Tuned = false
	rt, err := RunStencil(newHost(), tuned)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := RunStencil(newHost(), naive)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, rt.Global, rn.Global, 0)
	if rn.Elapsed <= rt.Elapsed*3 {
		t.Fatalf("naive (%v) should be several times slower than tuned (%v)", rn.Elapsed, rt.Elapsed)
	}
}

func TestStencilSingleCorePerformanceFig5(t *testing.T) {
	// Figure 5 anchors: single-core performance between 0.97 and 1.14
	// GFLOPS (81-95% of the 1.2 GFLOPS peak) across grid shapes, with
	// taller-than-wide grids doing better.
	shapes := []struct{ rows, cols int }{
		{20, 20}, {40, 20}, {80, 20}, {20, 40}, {20, 80}, {40, 40},
	}
	perf := map[[2]int]float64{}
	for _, s := range shapes {
		cfg := StencilConfig{
			Rows: s.rows, Cols: s.cols, Iters: 50,
			GroupRows: 1, GroupCols: 1, Comm: false, Tuned: true,
		}
		res, err := RunStencil(newHost(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		perf[[2]int{s.rows, s.cols}] = res.GFLOPS
		if res.PctPeak < 78 || res.PctPeak > 97 {
			t.Errorf("%dx%d: %.1f%% of peak, want 81-95%%", s.rows, s.cols, res.PctPeak)
		}
	}
	if perf[[2]int{80, 20}] <= perf[[2]int{20, 80}] {
		t.Errorf("80x20 (%.3f) should outperform 20x80 (%.3f): more rows than columns is better",
			perf[[2]int{80, 20}], perf[[2]int{20, 80}])
	}
	if perf[[2]int{80, 20}] < 1.05 {
		t.Errorf("best single-core config %.3f GFLOPS, paper reaches 1.14", perf[[2]int{80, 20}])
	}
}

func TestStencil64CorePerformanceFig6(t *testing.T) {
	// Figure 6 anchors: 64 cores, 80x20 per-core grid: ~72.8 GFLOPS
	// replicated, dropping to ~63.6 GFLOPS (82.8% of peak) with
	// communication.
	noComm := StencilConfig{
		Rows: 80, Cols: 20, Iters: 50,
		GroupRows: 8, GroupCols: 8, Comm: false, Tuned: true,
	}
	rn, err := RunStencil(newHost(), noComm)
	if err != nil {
		t.Fatal(err)
	}
	if rn.GFLOPS < 68 || rn.GFLOPS > 76.8 {
		t.Errorf("replicated 64-core: %.1f GFLOPS, paper: 72.8", rn.GFLOPS)
	}
	comm := noComm
	comm.Comm = true
	rc, err := RunStencil(newHost(), comm)
	if err != nil {
		t.Fatal(err)
	}
	if rc.GFLOPS >= rn.GFLOPS {
		t.Fatalf("communication (%.1f) must cost performance vs replicated (%.1f)", rc.GFLOPS, rn.GFLOPS)
	}
	drop := 100 * (rn.GFLOPS - rc.GFLOPS) / rn.GFLOPS
	if drop < 3 || drop > 20 {
		t.Errorf("comm drop %.1f%%, paper: ~12.7%%", drop)
	}
}

func TestStencilCommDirectionAsymmetry(t *testing.T) {
	// Paper: "grids with more columns than rows show less performance
	// drop than equivalent grids with more rows than columns" (column
	// edges move as slow word-mode 2D DMA).
	drop := func(rows, cols int) float64 {
		base := StencilConfig{Rows: rows, Cols: cols, Iters: 30,
			GroupRows: 4, GroupCols: 4, Tuned: true}
		nc := base
		nc.Comm = false
		rn, err := RunStencil(newHost(), nc)
		if err != nil {
			t.Fatal(err)
		}
		wc := base
		wc.Comm = true
		rc, err := RunStencil(newHost(), wc)
		if err != nil {
			t.Fatal(err)
		}
		return (rn.GFLOPS - rc.GFLOPS) / rn.GFLOPS
	}
	tall := drop(80, 20)
	wide := drop(20, 80)
	if wide >= tall {
		t.Fatalf("wide-grid comm drop (%.3f) should be below tall-grid drop (%.3f)", wide, tall)
	}
}

func TestStencilConfigValidation(t *testing.T) {
	bad := []StencilConfig{
		{Rows: 0, Cols: 20, Iters: 1, GroupRows: 1, GroupCols: 1},
		{Rows: 20, Cols: 21, Iters: 1, GroupRows: 1, GroupCols: 1, Tuned: true},
		{Rows: 200, Cols: 40, Iters: 1, GroupRows: 1, GroupCols: 1}, // grid too big
		{Rows: 20, Cols: 20, Iters: 1, GroupRows: 9, GroupCols: 1},  // no such group
	}
	for i, cfg := range bad {
		if _, err := RunStencil(newHost(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestStencilComputeModelAnchors(t *testing.T) {
	// 80x20 tuned: ~95% of the 2 flops/cycle peak.
	cyc, flops := StencilComputeModel(80, 20, true)
	eff := float64(flops) / float64(cyc) / 2
	if eff < 0.92 || eff > 0.99 {
		t.Errorf("80x20 model efficiency %.3f, want ~0.95", eff)
	}
	// Naive is a small fraction of peak.
	cyc, flops = StencilComputeModel(80, 20, false)
	eff = float64(flops) / float64(cyc) / 2
	if eff > 0.3 {
		t.Errorf("naive model efficiency %.3f, want < 0.3", eff)
	}
}

func TestStencilCrossShapeSingleCore(t *testing.T) {
	cfg := StencilConfig{
		Rows: 12, Cols: 20, Iters: 5,
		GroupRows: 1, GroupCols: 1,
		Comm: true, Tuned: true, Shape: Cross, Seed: 13,
	}
	res, err := RunStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StencilReference(cfg), 0)
}

func TestStencilCrossShapeDistributed(t *testing.T) {
	// The headline property for the diagonal variant: corner halo values
	// propagate correctly through the two-phase exchange, so the
	// distributed run equals global diagonal Jacobi exactly.
	cfg := StencilConfig{
		Rows: 8, Cols: 20, Iters: 6,
		GroupRows: 2, GroupCols: 4,
		Comm: true, Tuned: true, Shape: Cross, Seed: 14,
	}
	res, err := RunStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StencilReference(cfg), 0)
}

func TestStencilCrossRejectsDirectComm(t *testing.T) {
	cfg := StencilConfig{
		Rows: 8, Cols: 20, Iters: 1,
		GroupRows: 2, GroupCols: 2,
		Comm: true, Tuned: true, Shape: Cross, DirectComm: true,
	}
	if _, err := RunStencil(newHost(), cfg); err == nil {
		t.Fatal("Cross with DirectComm should be rejected (no corner values)")
	}
}

func TestStencilCrossCostsMoreComm(t *testing.T) {
	// The two-phase exchange serializes column and row DMA: the cross
	// variant must be somewhat slower than plus at the same size.
	base := StencilConfig{
		Rows: 40, Cols: 20, Iters: 20,
		GroupRows: 4, GroupCols: 4, Comm: true, Tuned: true,
	}
	plus, err := RunStencil(newHost(), base)
	if err != nil {
		t.Fatal(err)
	}
	cross := base
	cross.Shape = Cross
	xres, err := RunStencil(newHost(), cross)
	if err != nil {
		t.Fatal(err)
	}
	if xres.Elapsed <= plus.Elapsed {
		t.Fatalf("cross (%v) should cost more than plus (%v)", xres.Elapsed, plus.Elapsed)
	}
	if xres.Elapsed > plus.Elapsed*3/2 {
		t.Fatalf("cross (%v) over 1.5x plus (%v): exchange model off", xres.Elapsed, plus.Elapsed)
	}
}
