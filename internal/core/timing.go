// Package core implements the paper's application kernels on the
// simulated Epiphany: the hand-scheduled 5-point heat stencil (§VI) and
// the three-level matrix multiplication (§VII: tuned single-core kernel,
// on-chip Cannon rotation, off-chip paged blocks). Each kernel moves real
// data through the simulated memories and interconnect, and charges
// compute time from the isa package's pipeline model of the paper's
// assembly schedules.
package core

import (
	"fmt"
	"sync"

	"epiphany/internal/isa"
)

// Fixed software overheads of the kernels' outer control flow, in cycles.
// These cover the per-iteration loop control, pointer re-initialization
// and stripe bookkeeping that surround the hand-scheduled inner loops.
const (
	// stencilIterOverhead: per grid pass (outer iteration loop, flag
	// bookkeeping, pointer resets).
	stencilIterOverhead = 200
	// stencilStripeOverhead: per 20-column stripe within a pass (stripe
	// pointer setup beyond the register preload).
	stencilStripeOverhead = 60
	// matmulBlockOverhead: per block multiply (outer loop setup, operand
	// base pointers).
	matmulBlockOverhead = 100
)

// timingCache memoizes pipeline simulations keyed by a small config.
var timingCache sync.Map

func cached(key string, f func() [2]uint64) [2]uint64 {
	if v, ok := timingCache.Load(key); ok {
		return v.([2]uint64)
	}
	v := f()
	timingCache.Store(key, v)
	return v
}

// StencilComputeModel returns the compute cycles and flops for one full
// in-place pass over a rows x cols interior grid.
//
// The tuned kernel processes the grid in 20-wide stripes, two rows per
// unrolled loop iteration (the 200-FMADD body), with a register preload
// per stripe; cols must be a multiple of 20 (the paper's constraint).
// The naive variant models the e-gcc compiled code and takes any shape.
func StencilComputeModel(rows, cols int, tuned bool) (cycles, flops uint64) {
	flops = uint64(rows) * uint64(cols) * 10 // 5 FMADDs per point
	if !tuned {
		v := cached("stencil-naive", func() [2]uint64 {
			body := isa.StencilNaiveBody()
			const probe = 64
			return [2]uint64{isa.LoopCycles(body, probe) / probe, 0}
		})
		return v[0]*uint64(rows)*uint64(cols) + stencilIterOverhead, flops
	}
	if cols%isa.StencilStripeWidth != 0 {
		panic(fmt.Sprintf("core: tuned stencil needs cols %% %d == 0, got %d",
			isa.StencilStripeWidth, cols))
	}
	stripes := cols / isa.StencilStripeWidth
	bodies := uint64(rows+1) / 2
	v := cached("stencil-tuned", func() [2]uint64 {
		pro := isa.NewPipeline()
		proCycles := pro.Run(isa.StencilPrologue())
		body := isa.StencilLoopBody()
		// First iteration and steady-state iteration costs.
		c1 := isa.LoopCycles(body, 1)
		c8, c9 := isa.LoopCycles(body, 8), isa.LoopCycles(body, 9)
		_ = c1
		return [2]uint64{proCycles, c9 - c8}
	})
	proCycles, steady := v[0], v[1]
	perStripe := proCycles + steady*bodies + stencilStripeOverhead
	return uint64(stripes)*perStripe + stencilIterOverhead, flops
}

// MatmulBlockModel returns the compute cycles and flops of one per-core
// block multiply-accumulate C(m x k) += A(m x n) * B(n x k) using the
// tuned (or naive) schedule. k is the accumulator width and must not
// exceed the register file's 32 accumulators.
func MatmulBlockModel(m, n, k int, tuned bool) (cycles, flops uint64) {
	flops = 2 * uint64(m) * uint64(n) * uint64(k)
	key := fmt.Sprintf("matmul-%d-%d-%v", n, k, tuned)
	v := cached(key, func() [2]uint64 {
		var body []isa.Op
		if tuned {
			body = isa.MatmulRowBodyNK(n, k)
		} else {
			body = isa.MatmulNaiveRowBodyNK(n, k)
		}
		pro := isa.NewPipeline()
		proCycles := pro.Run(isa.MatmulPrologue(k))
		c8, c9 := isa.LoopCycles(body, 8), isa.LoopCycles(body, 9)
		return [2]uint64{proCycles, c9 - c8}
	})
	proCycles, steady := v[0], v[1]
	return proCycles + steady*uint64(m) + matmulBlockOverhead, flops
}
