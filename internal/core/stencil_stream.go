package core

import (
	"fmt"

	"epiphany/internal/dma"
	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/mem"
	"epiphany/internal/sdk"
	"epiphany/internal/sim"
)

// Streaming stencil with temporal blocking - the paper's §IX future work
// ("a pipelined algorithm for stencil computation using both spatial and
// temporal blocking in order to process much higher grid sizes ... that
// computation is performed for a number of iterations before the data is
// moved out of the local memory and new data is brought in").
//
// The grid lives in shared DRAM (it is far too large for the chip's
// aggregate 2 MB). Each time-chunk applies TBlock Jacobi iterations: every
// core pages in its block plus a TBlock-deep halo (overlapped tiling),
// iterates locally with no inter-core communication - the valid region
// shrinks by one ring per iteration, which the halo absorbs - and writes
// its interior back to the destination array. Arrays ping-pong between
// time-chunks, separated by a chip-wide SDK barrier. DRAM traffic per
// iteration falls by roughly a factor of TBlock at the cost of redundant
// halo computation.

// StreamStencilConfig describes a streamed large-grid stencil run.
type StreamStencilConfig struct {
	// GlobalRows, GlobalCols: the interior grid size (the fixed boundary
	// ring is added around it).
	GlobalRows, GlobalCols int
	// BlockRows, BlockCols: per-core interior block size.
	BlockRows, BlockCols int
	// Iters: total iterations.
	Iters int
	// TBlock: iterations per residency (1 disables temporal blocking).
	TBlock int
	// GroupRows, GroupCols: workgroup shape.
	GroupRows, GroupCols int
	Coefs                [5]float32
	Seed                 uint64
	// Initial optionally supplies the field as in StencilConfig.
	Initial [][]float32
}

// Validate checks the configuration without running it (Coefs are not
// inspected; RunStreamStencil substitutes DefaultCoefs for a zero
// value).
func (cfg *StreamStencilConfig) Validate() error {
	return cfg.validate()
}

func (cfg *StreamStencilConfig) validate() error {
	if cfg.GlobalRows <= 0 || cfg.GlobalCols <= 0 || cfg.Iters <= 0 {
		return fmt.Errorf("core: non-positive stream stencil dimensions")
	}
	if cfg.TBlock < 1 {
		return fmt.Errorf("core: TBlock must be >= 1")
	}
	if cfg.GroupRows <= 0 || cfg.GroupCols <= 0 || cfg.BlockRows <= 0 || cfg.BlockCols <= 0 {
		return fmt.Errorf("core: bad group/block shape")
	}
	sr := cfg.GroupRows * cfg.BlockRows
	sc := cfg.GroupCols * cfg.BlockCols
	if cfg.GlobalRows%sr != 0 || cfg.GlobalCols%sc != 0 {
		return fmt.Errorf("core: %dx%d grid not tileable by %dx%d super-blocks",
			cfg.GlobalRows, cfg.GlobalCols, sr, sc)
	}
	ext := 4 * (cfg.BlockRows + 2*cfg.TBlock) * (cfg.BlockCols + 2*cfg.TBlock)
	if stencilGridOff+mem.Addr(ext) > stencilFlagsOff {
		return fmt.Errorf("core: %dx%d block with T=%d halo needs %d B and does not fit the scratchpad",
			cfg.BlockRows, cfg.BlockCols, cfg.TBlock, ext)
	}
	gridBytes := 4 * (cfg.GlobalRows + 2) * (cfg.GlobalCols + 2)
	if 2*gridBytes > mem.DRAMSize {
		return fmt.Errorf("core: grid ping-pong needs %d B, beyond the 32 MB window", 2*gridBytes)
	}
	return nil
}

// StreamStencilResult reports a streamed run.
type StreamStencilResult struct {
	Elapsed sim.Time
	// UsefulFlops counts interior-point updates only; RedundantFlops the
	// overlapped-halo recomputation.
	UsefulFlops    uint64
	RedundantFlops uint64
	GFLOPS         float64 // useful flops over elapsed time
	PctPeak        float64
	// DRAMBytes is the total traffic paged over the eLink.
	DRAMBytes uint64
	Global    [][]float32
	// NoC reports chip-boundary eLink traffic on multi-chip boards.
	NoC NoCStats
}

// streamComputeRate is the modelled compute cost for the generic-shape
// streamed kernel: the tuned discipline cannot assume 20-wide stripes for
// arbitrary halo widths, so the schedule achieves a bit less - 5.6
// cycles per point (10 flops) plus a fixed per-block-pass overhead.
const (
	streamCyclesPerPoint10x = 56 // tenths of a cycle per grid point
	streamPassOverhead      = 250
)

func streamComputeCycles(points int) uint64 {
	return uint64(points)*streamCyclesPerPoint10x/10 + streamPassOverhead
}

// RunStreamStencil executes the streamed temporal-blocking stencil.
func RunStreamStencil(h *host.Host, cfg StreamStencilConfig) (*StreamStencilResult, error) {
	if cfg.Coefs == ([5]float32{}) {
		cfg.Coefs = DefaultCoefs
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w, err := sdk.NewWorkgroup(h.Chip(), 0, 0, cfg.GroupRows, cfg.GroupCols)
	if err != nil {
		return nil, err
	}
	gR, gC := cfg.GlobalRows+2, cfg.GlobalCols+2 // with boundary ring
	pitch := gC
	arrBytes := mem.Addr(4 * gR * gC)
	srcOff, dstOff := mem.Addr(0), arrBytes

	field := makeStreamInput(&cfg)
	res := &StreamStencilResult{}

	h.Spawn("stream-host", func(hp *host.Proc) {
		flat := make([]float32, gR*gC)
		for r := 0; r < gR; r++ {
			copy(flat[r*gC:], field[r])
		}
		// Stage the field into both ping-pong arrays (the ring must be
		// present in each; interiors get overwritten).
		hp.WriteDRAMF32(srcOff, flat)
		hp.WriteDRAMF32(dstOff, flat)

		start := hp.Now()
		// Per-core traffic counters: the kernels run concurrently when
		// the board's chips are on different engine shards, so each core
		// accumulates into its own slot and the host sums after Join
		// (integer sums, so the total is order-independent).
		stats := make([]streamStats, cfg.GroupRows*cfg.GroupCols)
		procs := w.Launch("stream-stencil", func(c *ecore.Core, gr, gc int) {
			streamKernel(c, w, gr, gc, &cfg, pitch, srcOff, dstOff, &stats[gr*cfg.GroupCols+gc])
		})
		hp.Join(procs)
		res.Elapsed = hp.Now() - start
		for _, st := range stats {
			res.DRAMBytes += st.dramBytes
			res.RedundantFlops += st.redundantFlops
		}

		// The final array depends on how many time-chunks ran.
		chunks := (cfg.Iters + cfg.TBlock - 1) / cfg.TBlock
		final := srcOff
		if chunks%2 == 1 {
			final = dstOff
		}
		out := hp.ReadDRAMF32(final, gR*gC)
		res.Global = make([][]float32, cfg.GlobalRows)
		for r := 1; r <= cfg.GlobalRows; r++ {
			res.Global[r-1] = append([]float32(nil), out[r*gC+1:r*gC+1+cfg.GlobalCols]...)
		}
	})
	if err := h.Chip().Engine().Run(); err != nil {
		return nil, err
	}
	res.UsefulFlops = uint64(cfg.GlobalRows) * uint64(cfg.GlobalCols) * 10 * uint64(cfg.Iters)
	res.GFLOPS = float64(res.UsefulFlops) / res.Elapsed.Nanoseconds()
	res.PctPeak = 100 * res.GFLOPS / peakGFLOPS(w.Size())
	res.NoC = captureNoC(h)
	return res, nil
}

// streamStats are one core's private traffic counters; the host sums
// them after Join. Kernels must not write shared result fields - cores
// on different engine shards execute concurrently.
type streamStats struct {
	dramBytes      uint64
	redundantFlops uint64
}

// streamKernel is the per-core device program.
func streamKernel(c *ecore.Core, w *sdk.Workgroup, gr, gc int,
	cfg *StreamStencilConfig, pitch int, srcOff, dstOff mem.Addr, stats *streamStats) {

	b := sdk.NewBarrier(w, gr, gc)
	superR := cfg.GlobalRows / (cfg.GroupRows * cfg.BlockRows)
	superC := cfg.GlobalCols / (cfg.GroupCols * cfg.BlockCols)
	sram := c.Local()
	maxExt := cfg.BlockCols + 2*cfg.TBlock
	prev := make([]float32, maxExt)
	cur := make([]float32, maxExt)

	for done := 0; done < cfg.Iters; done += cfg.TBlock {
		T := cfg.TBlock
		if done+T > cfg.Iters {
			T = cfg.Iters - done
		}
		if done > 0 {
			srcOff, dstOff = dstOff, srcOff
		}
		for sb := 0; sb < superR*superC; sb++ {
			si, sj := sb/superC, sb%superC
			// Interior block origin in ring coordinates.
			br0 := 1 + (si*cfg.GroupRows+gr)*cfg.BlockRows
			bc0 := 1 + (sj*cfg.GroupCols+gc)*cfg.BlockCols
			// Halo window clamped to the array (ring included).
			wr0 := maxInt(br0-T, 0)
			wc0 := maxInt(bc0-T, 0)
			wr1 := minInt(br0+cfg.BlockRows+T, cfg.GlobalRows+2)
			wc1 := minInt(bc0+cfg.BlockCols+T, cfg.GlobalCols+2)
			rows, cols := wr1-wr0, wc1-wc0

			// Page the window in (2D doubleword DMA over the eLink).
			c.DMAStart(dma.DMA0, c.DMASetDesc(tileDesc(
				mem.DRAMBase+srcOff+mem.Addr(4*(wr0*pitch+wc0)), c.Global(stencilGridOff),
				rows, cols, pitch, cols, true)))
			c.DMAWait(dma.DMA0)
			stats.dramBytes += uint64(4 * rows * cols)

			// T local Jacobi iterations; the updatable window shrinks by
			// one ring per iteration, except along edges clamped at the
			// physical boundary ring, whose values are constant in time.
			at := func(r, col int) mem.Addr { return stencilGridOff + mem.Addr(4*(r*cols+col)) }
			edge := func(w, ring, k int) int {
				if w == ring {
					return 0 // physical boundary: no shrink
				}
				return k
			}
			points := 0
			for k := 1; k <= T; k++ {
				r0 := wr0 + maxInt(edge(wr0, 0, k), 1)
				r1 := wr1 - maxInt(edge(wr1, cfg.GlobalRows+2, k), 1)
				c0 := wc0 + maxInt(edge(wc0, 0, k), 1)
				c1 := wc1 - maxInt(edge(wc1, cfg.GlobalCols+2, k), 1)
				r0, r1, c0, c1 = r0-wr0, r1-wr0, c0-wc0, c1-wc0
				for col := c0 - 1; col <= c1; col++ {
					prev[col] = sram.LoadF32(at(r0-1, col))
				}
				for r := r0; r < r1; r++ {
					for col := c0 - 1; col <= c1; col++ {
						cur[col] = sram.LoadF32(at(r, col))
					}
					for col := c0; col < c1; col++ {
						v := cfg.Coefs[0]*prev[col] +
							cfg.Coefs[1]*cur[col-1] +
							cfg.Coefs[2]*cur[col] +
							cfg.Coefs[3]*cur[col+1] +
							cfg.Coefs[4]*sram.LoadF32(at(r+1, col))
						sram.StoreF32(at(r, col), v)
					}
					prev, cur = cur, prev
					points += c1 - c0
				}
			}
			c.Compute(streamComputeCycles(points), uint64(points)*10)
			stats.redundantFlops += uint64(points)*10 - uint64(cfg.BlockRows*cfg.BlockCols*T*10)

			// Write the interior block back to the destination array.
			ir, ic := br0-wr0, bc0-wc0
			c.DMAStart(dma.DMA0, c.DMASetDesc(tileDesc(
				c.Global(at(ir, ic)), mem.DRAMBase+dstOff+mem.Addr(4*(br0*pitch+bc0)),
				cfg.BlockRows, cfg.BlockCols, cols, pitch, false)))
			c.DMAWait(dma.DMA0)
			stats.dramBytes += uint64(4 * cfg.BlockRows * cfg.BlockCols)
		}
		// Chip-wide barrier before the ping-pong arrays swap roles.
		b.Wait(c)
	}
}

// tileDesc builds a 2D descriptor moving rows x cols float32 between a
// strided source and destination. srcIn selects whether src (true) or dst
// carries the DRAM-side pitch.
func tileDesc(src, dst mem.Addr, rows, cols, srcPitch, dstPitch int, srcIn bool) *dma.Desc {
	beat := 8
	inner := cols * 4 / beat
	if cols*4%beat != 0 {
		beat, inner = 4, cols
	}
	_ = srcIn
	return &dma.Desc{
		Beat:           beat,
		InnerCount:     inner,
		OuterCount:     rows,
		SrcInnerStride: beat,
		DstInnerStride: beat,
		SrcOuterStride: 4*srcPitch - (inner-1)*beat,
		DstOuterStride: 4*dstPitch - (inner-1)*beat,
		Src:            src,
		Dst:            dst,
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// makeStreamInput builds the global field with boundary ring.
func makeStreamInput(cfg *StreamStencilConfig) [][]float32 {
	if cfg.Initial != nil {
		if len(cfg.Initial) != cfg.GlobalRows+2 || len(cfg.Initial[0]) != cfg.GlobalCols+2 {
			panic("core: Initial field has wrong shape")
		}
		g := make([][]float32, len(cfg.Initial))
		for r := range g {
			g[r] = append([]float32(nil), cfg.Initial[r]...)
		}
		return g
	}
	rng := sim.NewRand(cfg.Seed + 1)
	g := make([][]float32, cfg.GlobalRows+2)
	for r := range g {
		g[r] = make([]float32, cfg.GlobalCols+2)
		for c := range g[r] {
			g[r][c] = rng.Float32() * 100
		}
	}
	return g
}

// StreamStencilReference computes the exact expected output: plain global
// Jacobi iteration (the overlapped-tiling kernel reproduces it exactly,
// redundant halo work and all).
func StreamStencilReference(cfg StreamStencilConfig) [][]float32 {
	if cfg.Coefs == ([5]float32{}) {
		cfg.Coefs = DefaultCoefs
	}
	g := makeStreamInput(&cfg)
	rows, cols := cfg.GlobalRows, cfg.GlobalCols
	curr := g
	next := make([][]float32, len(g))
	for r := range next {
		next[r] = append([]float32(nil), g[r]...)
	}
	for it := 0; it < cfg.Iters; it++ {
		for r := 1; r <= rows; r++ {
			for c := 1; c <= cols; c++ {
				next[r][c] = cfg.Coefs[0]*curr[r-1][c] +
					cfg.Coefs[1]*curr[r][c-1] +
					cfg.Coefs[2]*curr[r][c] +
					cfg.Coefs[3]*curr[r][c+1] +
					cfg.Coefs[4]*curr[r+1][c]
			}
		}
		curr, next = next, curr
	}
	out := make([][]float32, rows)
	for r := 1; r <= rows; r++ {
		out[r-1] = append([]float32(nil), curr[r][1:cols+1]...)
	}
	return out
}
