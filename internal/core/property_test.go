package core

import (
	"testing"
	"testing/quick"

	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/sdk"
	"epiphany/internal/sim"
)

// Property: the distributed stencil equals the global Jacobi reference
// for random small configurations.
func TestStencilDistributedEqualsReferenceProperty(t *testing.T) {
	f := func(rowsSel, groupSel, iterSel, seed uint8) bool {
		rows := 4 + int(rowsSel%3)*4 // 4, 8, 12
		groups := []struct{ r, c int }{{1, 1}, {1, 2}, {2, 2}, {2, 4}}
		g := groups[int(groupSel)%len(groups)]
		cfg := StencilConfig{
			Rows: rows, Cols: 20, Iters: 1 + int(iterSel%5),
			GroupRows: g.r, GroupCols: g.c,
			Comm: true, Tuned: true, Seed: uint64(seed),
		}
		res, err := RunStencil(newHost(), cfg)
		if err != nil {
			return false
		}
		ref := StencilReference(cfg)
		for r := range ref {
			for c := range ref[r] {
				if ref[r][c] != res.Global[r][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: both matmul algorithms produce identical, reference-exact
// results for random shapes with integer-valued inputs.
func TestMatmulAlgorithmsAgreeProperty(t *testing.T) {
	f := func(mSel, nSel, kSel, gSel, seed uint8) bool {
		gs := []int{1, 2, 4}
		g := gs[int(gSel)%len(gs)]
		m := (1 + int(mSel%3)) * 8 * g // 8g, 16g, 24g
		n := (1 + int(nSel%2)) * 8 * g
		k := (1 + int(kSel%3)) * 8 * g
		if k/g > 32 {
			return true
		}
		cfg := MatmulConfig{M: m, N: n, K: k, G: g, Tuned: true, Verify: true, Seed: uint64(seed)}
		ca, err := RunMatmul(newHost(), cfg)
		if err != nil {
			return false
		}
		scfg := cfg
		scfg.Algorithm = "summa"
		su, err := RunMatmul(newHost(), scfg)
		if err != nil {
			return false
		}
		ref := MatmulReference(cfg)
		return MaxAbsDiff(ca.C, ref) == 0 && MaxAbsDiff(su.C, ref) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: more iterations never make the stencil run faster, and time
// scales linearly in iterations (fixed per-iteration cost).
func TestStencilTimeLinearInIterations(t *testing.T) {
	cfg := StencilConfig{Rows: 20, Cols: 20, GroupRows: 2, GroupCols: 2, Comm: true, Tuned: true}
	times := map[int]sim.Time{}
	for _, it := range []int{10, 20, 40} {
		c := cfg
		c.Iters = it
		res, err := RunStencil(newHost(), c)
		if err != nil {
			t.Fatal(err)
		}
		times[it] = res.Elapsed
	}
	d1 := times[20] - times[10]
	d2 := times[40] - times[20]
	if d2 < 2*d1-sim.Time(200*sim.Cycle) || d2 > 2*d1+sim.Time(200*sim.Cycle) {
		t.Fatalf("iteration cost not linear: +10 iters = %v, +20 iters = %v", d1, d2)
	}
}

// Failure injection: a kernel that panics surfaces as a simulation error
// naming the core, not a hang or a silent success.
func TestKernelPanicSurfaces(t *testing.T) {
	h := newHost()
	h.Chip().Launch(3, "bad-kernel", func(c *ecore.Core) {
		c.Compute(10, 0)
		panic("kernel bug")
	})
	err := h.Chip().Engine().Run()
	if err == nil {
		t.Fatal("panicking kernel should fail the run")
	}
}

// Failure injection: a kernel waiting on a flag nobody writes is reported
// as a deadlock with the core named.
func TestLostFlagIsDeadlock(t *testing.T) {
	h := newHost()
	h.Chip().Launch(0, "waiter", func(c *ecore.Core) {
		c.WaitLocal32GE(0x700, 1) // never written
	})
	err := h.Chip().Engine().Run()
	if err == nil {
		t.Fatal("lost flag should deadlock")
	}
}

// Failure injection: mismatched barrier participation deadlocks rather
// than silently desynchronizing.
func TestPartialBarrierDeadlocks(t *testing.T) {
	h := newHost()
	wg, err := newWorkgroup(h)
	if err != nil {
		t.Fatal(err)
	}
	// Launch only 3 of the 4 members.
	for _, pos := range [][2]int{{0, 0}, {0, 1}, {1, 0}} {
		gr, gc := pos[0], pos[1]
		h.Chip().Launch(wg.CoreIndex(gr, gc), "member", func(c *ecore.Core) {
			barrierFor(wg, gr, gc).Wait(c)
		})
	}
	if err := h.Chip().Engine().Run(); err == nil {
		t.Fatal("barrier with a missing member should deadlock")
	}
}

// Helpers for the barrier failure-injection test.

func newWorkgroup(h *host.Host) (*sdk.Workgroup, error) {
	return sdk.NewWorkgroup(h.Chip(), 0, 0, 2, 2)
}

func barrierFor(w *sdk.Workgroup, gr, gc int) *sdk.Barrier {
	return sdk.NewBarrier(w, gr, gc)
}
