package core

import (
	"testing"
)

func runMM(t *testing.T, cfg MatmulConfig) *MatmulResult {
	t.Helper()
	res, err := RunMatmul(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func verifyMM(t *testing.T, cfg MatmulConfig) *MatmulResult {
	t.Helper()
	cfg.Verify = true
	res := runMM(t, cfg)
	ref := MatmulReference(cfg)
	if d := MaxAbsDiff(res.C, ref); d != 0 {
		t.Fatalf("%dx%dx%d on %dx%d (offchip=%v): result differs from reference by %g",
			cfg.M, cfg.N, cfg.K, cfg.G, cfg.G, cfg.OffChip, d)
	}
	return res
}

func TestMatmulSingleCoreCorrectness(t *testing.T) {
	for _, n := range []int{8, 16, 20, 24, 32} {
		verifyMM(t, MatmulConfig{M: n, N: n, K: n, G: 1, Tuned: true, Seed: uint64(n)})
	}
}

func TestMatmulSingleCoreRectangular(t *testing.T) {
	verifyMM(t, MatmulConfig{M: 16, N: 16, K: 32, G: 1, Tuned: true, Seed: 1})
	verifyMM(t, MatmulConfig{M: 64, N: 32, K: 32, G: 1, Tuned: true, Seed: 2})
}

func TestMatmulOnChip2x2DoubleBuffer(t *testing.T) {
	// 2x2 grid, 16x16 per-core blocks: the double-buffered scheme.
	verifyMM(t, MatmulConfig{M: 32, N: 32, K: 32, G: 2, Tuned: true, Seed: 3})
}

func TestMatmulOnChip4x4(t *testing.T) {
	verifyMM(t, MatmulConfig{M: 64, N: 64, K: 64, G: 4, Tuned: true, Seed: 4})
}

func TestMatmulOnChip8x8HalfBuffer(t *testing.T) {
	// The paper's flagship on-chip case: 256x256 over 64 cores with
	// 32x32 per-core blocks and the half-buffer rotation scheme.
	cfg := MatmulConfig{M: 256, N: 256, K: 256, G: 8, Tuned: true, Seed: 5}
	m, n, k, err := cfg.blockDims()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planMatmul(m, n, k, cfg.G)
	if err != nil {
		t.Fatal(err)
	}
	if plan.scheme != schemeHalf {
		t.Fatalf("256x256 on 8x8 must use the half-buffer scheme")
	}
	res := verifyMM(t, cfg)
	// Table V anchor: ~65 GFLOPS, ~85% of peak.
	if res.PctPeak < 80 || res.PctPeak > 93 {
		t.Errorf("on-chip 256^3: %.1f%% of peak (%.1f GFLOPS), paper: 85.1%% (65.3)", res.PctPeak, res.GFLOPS)
	}
}

func TestMatmulOnChip2x2HalfBuffer(t *testing.T) {
	// 64x64 over 2x2 also lands on 32x32 blocks -> half-buffer scheme.
	verifyMM(t, MatmulConfig{M: 64, N: 64, K: 64, G: 2, Tuned: true, Seed: 6})
}

func TestMatmulRectangularMultiCore(t *testing.T) {
	// Weak-scaling shapes (Fig 14): M, N, K all different.
	verifyMM(t, MatmulConfig{M: 32, N: 64, K: 32, G: 2, Tuned: true, Seed: 7})
	verifyMM(t, MatmulConfig{M: 64, N: 128, K: 64, G: 8, Tuned: true, Seed: 8})
}

func TestMatmulSchemeSelection(t *testing.T) {
	if p, err := planMatmul(16, 16, 16, 4); err != nil || p.scheme != schemeDouble {
		t.Fatalf("16^3 plan = %+v, %v; want double-buffered", p, err)
	}
	if p, err := planMatmul(24, 24, 24, 4); err != nil || p.scheme != schemeDouble {
		t.Fatalf("24^3 plan = %+v, %v; want double-buffered (5 x 2.25KB fits)", p, err)
	}
	if p, err := planMatmul(32, 32, 32, 8); err != nil || p.scheme != schemeHalf {
		t.Fatalf("32^3 plan = %+v, %v; want half-buffer", p, err)
	}
	// The paper's 32x32 addresses.
	if p, _ := planMatmul(32, 32, 32, 8); p.a0 != 0x4000 || p.b0 != 0x5800 || p.c != 0x7000 {
		t.Fatalf("32^3 placement %+v does not match the paper's", p)
	}
}

func TestMatmulConfigValidation(t *testing.T) {
	bad := []MatmulConfig{
		{M: 32, N: 32, K: 32, G: 3},                   // not a power-of-two grid
		{M: 30, N: 32, K: 32, G: 4},                   // not divisible
		{M: 256, N: 256, K: 256, G: 4},                // 64x64 per core: too big on-chip
		{M: 512, N: 512, K: 512, G: 8},                // too big without OffChip
		{M: 512, N: 256, K: 512, G: 8, OffChip: true}, // off-chip must be square
	}
	for i, cfg := range bad {
		if _, err := RunMatmul(newHost(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestMatmulSingleCoreTableIV(t *testing.T) {
	// Table IV: single-core GFLOPS from 0.85 (8^3, 70.5%) to 1.15
	// (32^3, 95.9%), monotonically increasing.
	want := map[int][2]float64{ // n -> [lo%, hi%]
		8:  {60, 78},
		16: {82, 93},
		20: {86, 95},
		24: {88, 96},
		32: {91, 98},
	}
	prev := 0.0
	for _, n := range []int{8, 16, 20, 24, 32} {
		res := runMM(t, MatmulConfig{M: n, N: n, K: n, G: 1, Tuned: true})
		w := want[n]
		if res.PctPeak < w[0] || res.PctPeak > w[1] {
			t.Errorf("n=%d: %.1f%% of peak (%.3f GFLOPS), want [%v,%v]", n, res.PctPeak, res.GFLOPS, w[0], w[1])
		}
		if res.PctPeak <= prev {
			t.Errorf("n=%d: efficiency not increasing", n)
		}
		prev = res.PctPeak
	}
}

func TestMatmulNaive60PercentOfTuned(t *testing.T) {
	tuned := runMM(t, MatmulConfig{M: 32, N: 32, K: 32, G: 1, Tuned: true})
	naive := runMM(t, MatmulConfig{M: 32, N: 32, K: 32, G: 1, Tuned: false})
	ratio := naive.GFLOPS / tuned.GFLOPS
	if ratio < 0.5 || ratio > 0.75 {
		t.Fatalf("naive/tuned = %.2f, paper: ~0.6", ratio)
	}
}

func TestMatmulTableVScalingShape(t *testing.T) {
	// Table V: for fixed per-core block size, efficiency is nearly flat
	// across 2x2 / 4x4 / 8x8 (Cannon's comm is nearest-neighbour), and
	// rises steeply with block size.
	effAt := func(g, blk int) float64 {
		res := runMM(t, MatmulConfig{M: g * blk, N: g * blk, K: g * blk, G: g, Tuned: true})
		return res.PctPeak
	}
	e2 := effAt(2, 16)
	e4 := effAt(4, 16)
	e8 := effAt(8, 16)
	if diff := e8 - e2; diff > 6 || diff < -12 {
		t.Errorf("16-block efficiency across grids: 2x2=%.1f 4x4=%.1f 8x8=%.1f; paper is nearly flat", e2, e4, e8)
	}
	small := effAt(4, 8)
	big := effAt(4, 32)
	if big-small < 25 {
		t.Errorf("block-size effect too weak: 8->%.1f%%, 32->%.1f%%; paper: 26%% -> 85%%", small, big)
	}
	if small > 45 {
		t.Errorf("8x8-block efficiency %.1f%%, paper: ~26%%", small)
	}
}

func TestMatmulOffChipCorrectness(t *testing.T) {
	// Small paged case: 64x64 over a 2x2 group pages 32-wide per-core
	// tiles (Q=1 would fit on chip; use Q=2 by halving the tile edge).
	verifyMM(t, MatmulConfig{M: 128, N: 128, K: 128, G: 2, OffChip: true, Tuned: true, Seed: 9})
}

func TestMatmulOffChipDominatedByTransfers(t *testing.T) {
	// Table VI shape: shared-memory transfers take ~87% of core time.
	res := runMM(t, MatmulConfig{M: 512, N: 512, K: 512, G: 8, OffChip: true, Tuned: true})
	if res.PctTransfer() < 75 || res.PctTransfer() > 95 {
		t.Errorf("transfer share %.1f%%, paper: 87.2%%", res.PctTransfer())
	}
	// Paper: 8.32 GFLOPS (10.8% of peak).
	if res.GFLOPS < 6.5 || res.GFLOPS > 11 {
		t.Errorf("off-chip 512^3: %.2f GFLOPS, paper: 8.32", res.GFLOPS)
	}
}

func TestMatmulDeterministic(t *testing.T) {
	cfg := MatmulConfig{M: 64, N: 64, K: 64, G: 4, Tuned: true, Seed: 42}
	a := runMM(t, cfg)
	b := runMM(t, cfg)
	if a.Elapsed != b.Elapsed || a.GFLOPS != b.GFLOPS {
		t.Fatalf("non-deterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if d := MaxAbsDiff(a.C, b.C); d != 0 {
		t.Fatalf("results differ across runs: %g", d)
	}
}

// TestOffChipMatmulSchemeDoubleRaceKnown documents a latent protocol
// bug the example smoke tests surfaced: off-chip runs whose per-core
// tile is smaller than 32 on an 8x8 group (edge 8/16/24, schemeDouble)
// produce a wrong product. The double-buffer rotation posts its
// compute-done flag *before* forwarding its current buffers, so a
// neighbour - gated only on that flag - may overwrite a buffer that is
// still being forwarded. On-chip runs start in lockstep and never open
// the window; the off-chip driver's eLink-serialized tile loads skew
// core start times by enough to hit it (the registered matmul-offchip
// preset, M=128 G=8 edge=16, is affected - its conformance goldens pin
// the timing of a run whose data is corrupt).
//
// The fix is a protocol change (gate buffer overwrites on the target's
// sends completing, not its compute completing) and will shift every
// schemeDouble timing, so it must regenerate the matmul goldens in a
// PR of its own. Until then this test pins the symptom: if the product
// comes out right, the race was fixed - remove the skip and regenerate
// the matmul-offchip conformance and sweep goldens in the same change.
func TestOffChipMatmulSchemeDoubleRaceKnown(t *testing.T) {
	cfg := MatmulConfig{M: 128, N: 128, K: 128, G: 8, OffChip: true, Tuned: true, Verify: true, Seed: 3}
	res := runMM(t, cfg)
	if d := MaxAbsDiff(res.C, MatmulReference(cfg)); d != 0 {
		t.Skipf("known issue: off-chip schemeDouble race corrupts g=8 sub-32 tiles (max |diff| %g); see comment above", d)
	}
	t.Error("off-chip schemeDouble race appears fixed: remove this skip and regenerate the matmul-offchip conformance and sweep goldens")
}
