package core

import (
	"testing"
)

func runMM(t *testing.T, cfg MatmulConfig) *MatmulResult {
	t.Helper()
	res, err := RunMatmul(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func verifyMM(t *testing.T, cfg MatmulConfig) *MatmulResult {
	t.Helper()
	cfg.Verify = true
	res := runMM(t, cfg)
	ref := MatmulReference(cfg)
	if d := MaxAbsDiff(res.C, ref); d != 0 {
		t.Fatalf("%dx%dx%d on %dx%d (offchip=%v): result differs from reference by %g",
			cfg.M, cfg.N, cfg.K, cfg.G, cfg.G, cfg.OffChip, d)
	}
	return res
}

func TestMatmulSingleCoreCorrectness(t *testing.T) {
	for _, n := range []int{8, 16, 20, 24, 32} {
		verifyMM(t, MatmulConfig{M: n, N: n, K: n, G: 1, Tuned: true, Seed: uint64(n)})
	}
}

func TestMatmulSingleCoreRectangular(t *testing.T) {
	verifyMM(t, MatmulConfig{M: 16, N: 16, K: 32, G: 1, Tuned: true, Seed: 1})
	verifyMM(t, MatmulConfig{M: 64, N: 32, K: 32, G: 1, Tuned: true, Seed: 2})
}

func TestMatmulOnChip2x2DoubleBuffer(t *testing.T) {
	// 2x2 grid, 16x16 per-core blocks: the double-buffered scheme.
	verifyMM(t, MatmulConfig{M: 32, N: 32, K: 32, G: 2, Tuned: true, Seed: 3})
}

func TestMatmulOnChip4x4(t *testing.T) {
	verifyMM(t, MatmulConfig{M: 64, N: 64, K: 64, G: 4, Tuned: true, Seed: 4})
}

func TestMatmulOnChip8x8HalfBuffer(t *testing.T) {
	// The paper's flagship on-chip case: 256x256 over 64 cores with
	// 32x32 per-core blocks and the half-buffer rotation scheme.
	cfg := MatmulConfig{M: 256, N: 256, K: 256, G: 8, Tuned: true, Seed: 5}
	m, n, k, err := cfg.blockDims()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := planMatmul(m, n, k, cfg.G)
	if err != nil {
		t.Fatal(err)
	}
	if plan.scheme != schemeHalf {
		t.Fatalf("256x256 on 8x8 must use the half-buffer scheme")
	}
	res := verifyMM(t, cfg)
	// Table V anchor: ~65 GFLOPS, ~85% of peak.
	if res.PctPeak < 80 || res.PctPeak > 93 {
		t.Errorf("on-chip 256^3: %.1f%% of peak (%.1f GFLOPS), paper: 85.1%% (65.3)", res.PctPeak, res.GFLOPS)
	}
}

func TestMatmulOnChip2x2HalfBuffer(t *testing.T) {
	// 64x64 over 2x2 also lands on 32x32 blocks -> half-buffer scheme.
	verifyMM(t, MatmulConfig{M: 64, N: 64, K: 64, G: 2, Tuned: true, Seed: 6})
}

func TestMatmulRectangularMultiCore(t *testing.T) {
	// Weak-scaling shapes (Fig 14): M, N, K all different.
	verifyMM(t, MatmulConfig{M: 32, N: 64, K: 32, G: 2, Tuned: true, Seed: 7})
	verifyMM(t, MatmulConfig{M: 64, N: 128, K: 64, G: 8, Tuned: true, Seed: 8})
}

func TestMatmulSchemeSelection(t *testing.T) {
	if p, err := planMatmul(16, 16, 16, 4); err != nil || p.scheme != schemeDouble {
		t.Fatalf("16^3 plan = %+v, %v; want double-buffered", p, err)
	}
	if p, err := planMatmul(24, 24, 24, 4); err != nil || p.scheme != schemeDouble {
		t.Fatalf("24^3 plan = %+v, %v; want double-buffered (5 x 2.25KB fits)", p, err)
	}
	if p, err := planMatmul(32, 32, 32, 8); err != nil || p.scheme != schemeHalf {
		t.Fatalf("32^3 plan = %+v, %v; want half-buffer", p, err)
	}
	// The paper's 32x32 addresses.
	if p, _ := planMatmul(32, 32, 32, 8); p.a0 != 0x4000 || p.b0 != 0x5800 || p.c != 0x7000 {
		t.Fatalf("32^3 placement %+v does not match the paper's", p)
	}
}

func TestMatmulConfigValidation(t *testing.T) {
	bad := []MatmulConfig{
		{M: 32, N: 32, K: 32, G: 3},                   // not a power-of-two grid
		{M: 30, N: 32, K: 32, G: 4},                   // not divisible
		{M: 256, N: 256, K: 256, G: 4},                // 64x64 per core: too big on-chip
		{M: 512, N: 512, K: 512, G: 8},                // too big without OffChip
		{M: 512, N: 256, K: 512, G: 8, OffChip: true}, // off-chip must be square
	}
	for i, cfg := range bad {
		if _, err := RunMatmul(newHost(), cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestMatmulSingleCoreTableIV(t *testing.T) {
	// Table IV: single-core GFLOPS from 0.85 (8^3, 70.5%) to 1.15
	// (32^3, 95.9%), monotonically increasing.
	want := map[int][2]float64{ // n -> [lo%, hi%]
		8:  {60, 78},
		16: {82, 93},
		20: {86, 95},
		24: {88, 96},
		32: {91, 98},
	}
	prev := 0.0
	for _, n := range []int{8, 16, 20, 24, 32} {
		res := runMM(t, MatmulConfig{M: n, N: n, K: n, G: 1, Tuned: true})
		w := want[n]
		if res.PctPeak < w[0] || res.PctPeak > w[1] {
			t.Errorf("n=%d: %.1f%% of peak (%.3f GFLOPS), want [%v,%v]", n, res.PctPeak, res.GFLOPS, w[0], w[1])
		}
		if res.PctPeak <= prev {
			t.Errorf("n=%d: efficiency not increasing", n)
		}
		prev = res.PctPeak
	}
}

func TestMatmulNaive60PercentOfTuned(t *testing.T) {
	tuned := runMM(t, MatmulConfig{M: 32, N: 32, K: 32, G: 1, Tuned: true})
	naive := runMM(t, MatmulConfig{M: 32, N: 32, K: 32, G: 1, Tuned: false})
	ratio := naive.GFLOPS / tuned.GFLOPS
	if ratio < 0.5 || ratio > 0.75 {
		t.Fatalf("naive/tuned = %.2f, paper: ~0.6", ratio)
	}
}

func TestMatmulTableVScalingShape(t *testing.T) {
	// Table V: for fixed per-core block size, efficiency is nearly flat
	// across 2x2 / 4x4 / 8x8 (Cannon's comm is nearest-neighbour), and
	// rises steeply with block size.
	effAt := func(g, blk int) float64 {
		res := runMM(t, MatmulConfig{M: g * blk, N: g * blk, K: g * blk, G: g, Tuned: true})
		return res.PctPeak
	}
	e2 := effAt(2, 16)
	e4 := effAt(4, 16)
	e8 := effAt(8, 16)
	if diff := e8 - e2; diff > 6 || diff < -12 {
		t.Errorf("16-block efficiency across grids: 2x2=%.1f 4x4=%.1f 8x8=%.1f; paper is nearly flat", e2, e4, e8)
	}
	small := effAt(4, 8)
	big := effAt(4, 32)
	if big-small < 25 {
		t.Errorf("block-size effect too weak: 8->%.1f%%, 32->%.1f%%; paper: 26%% -> 85%%", small, big)
	}
	if small > 45 {
		t.Errorf("8x8-block efficiency %.1f%%, paper: ~26%%", small)
	}
}

func TestMatmulOffChipCorrectness(t *testing.T) {
	// Small paged case: 64x64 over a 2x2 group pages 32-wide per-core
	// tiles (Q=1 would fit on chip; use Q=2 by halving the tile edge).
	verifyMM(t, MatmulConfig{M: 128, N: 128, K: 128, G: 2, OffChip: true, Tuned: true, Seed: 9})
}

func TestMatmulOffChipDominatedByTransfers(t *testing.T) {
	// Table VI shape: shared-memory transfers take ~87% of core time.
	res := runMM(t, MatmulConfig{M: 512, N: 512, K: 512, G: 8, OffChip: true, Tuned: true})
	if res.PctTransfer() < 75 || res.PctTransfer() > 95 {
		t.Errorf("transfer share %.1f%%, paper: 87.2%%", res.PctTransfer())
	}
	// Paper: 8.32 GFLOPS (10.8% of peak).
	if res.GFLOPS < 6.5 || res.GFLOPS > 11 {
		t.Errorf("off-chip 512^3: %.2f GFLOPS, paper: 8.32", res.GFLOPS)
	}
}

func TestMatmulDeterministic(t *testing.T) {
	cfg := MatmulConfig{M: 64, N: 64, K: 64, G: 4, Tuned: true, Seed: 42}
	a := runMM(t, cfg)
	b := runMM(t, cfg)
	if a.Elapsed != b.Elapsed || a.GFLOPS != b.GFLOPS {
		t.Fatalf("non-deterministic: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if d := MaxAbsDiff(a.C, b.C); d != 0 {
		t.Fatalf("results differ across runs: %g", d)
	}
}

// TestOffChipMatmulSchemeDoubleRegression is the hard pin on the fixed
// schemeDouble rotation race (formerly the skip-on-bug reproducer
// TestOffChipMatmulSchemeDoubleRaceKnown). The old protocol posted its
// compute-done flag *before* forwarding its current buffers, so a
// neighbour - gated only on that flag - could overwrite a buffer still
// being forwarded. On-chip runs start in lockstep and never opened the
// window; the off-chip driver's eLink-serialized tile loads skew core
// start times by whole DMA lengths and corrupted every g=8 sub-32 tile
// (including the registered matmul-offchip preset, M=128 G=8 edge=16).
// The rotation now gates overwrites on the target's flagFwd send
// credit, which is granted only after the forwards complete. Every
// schemeDouble shape on an 8x8 group - per-core tile edges 8, 16 and
// 24, on-chip and off-chip - must now be exact to the host reference.
func TestOffChipMatmulSchemeDoubleRegression(t *testing.T) {
	cases := []struct {
		name string
		cfg  MatmulConfig
	}{
		// On-chip: M = 8*edge puts edge^3 blocks on every core.
		{"onchip-edge8", MatmulConfig{M: 64, N: 64, K: 64, G: 8}},
		{"onchip-edge16", MatmulConfig{M: 128, N: 128, K: 128, G: 8}},
		{"onchip-edge24", MatmulConfig{M: 192, N: 192, K: 192, G: 8}},
		// Off-chip: the pinned edge selects the schemeDouble pager.
		// edge8 at M=128 runs Q=2 tile passes, so the cross-pass send
		// credit (granted on a pass's rotation-less final round) is
		// exercised too; edge16 at M=128 is the matmul-offchip preset's
		// exact shape, the one the old race corrupted.
		{"offchip-edge8", MatmulConfig{M: 128, N: 128, K: 128, G: 8, OffChip: true, OffChipEdge: 8}},
		{"offchip-edge16", MatmulConfig{M: 128, N: 128, K: 128, G: 8, OffChip: true, OffChipEdge: 16}},
		{"offchip-edge24", MatmulConfig{M: 192, N: 192, K: 192, G: 8, OffChip: true, OffChipEdge: 24}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Tuned = true
			cfg.Verify = true
			cfg.Seed = 3
			m, n, k, err := cfg.blockDims()
			if err != nil {
				t.Fatal(err)
			}
			if cfg.OffChip {
				m, n, k = cfg.OffChipEdge, cfg.OffChipEdge, cfg.OffChipEdge
			}
			plan, err := planMatmul(m, n, k, cfg.G)
			if err != nil {
				t.Fatal(err)
			}
			if plan.scheme != schemeDouble {
				t.Fatalf("%dx%dx%d per-core block plans %v, want schemeDouble", m, n, k, plan.scheme)
			}
			res := runMM(t, cfg)
			if d := MaxAbsDiff(res.C, MatmulReference(cfg)); d != 0 {
				t.Errorf("schemeDouble race regressed: max |diff| vs host reference %g, want 0", d)
			}
		})
	}
}

// TestSchemeDoubleSeededDifferential holds the repaired rotation
// protocol to the host reference across a seeded spread of shapes that
// vary the eLink start-time skew (tile edge and group size change the
// serialized DMA lengths that stagger core start times). Timing is
// data-independent, so the seeds' job is to move the operand values:
// any reopened overwrite window corrupts different elements under
// different seeds and cannot hide behind one lucky input.
func TestSchemeDoubleSeededDifferential(t *testing.T) {
	shapes := []MatmulConfig{
		{M: 128, N: 128, K: 128, G: 8, OffChip: true, OffChipEdge: 16}, // the preset's shape
		{M: 128, N: 128, K: 128, G: 8, OffChip: true, OffChipEdge: 8},  // multi-pass paging
		{M: 192, N: 192, K: 192, G: 8, OffChip: true, OffChipEdge: 24}, // the paper's 24-wide tiles
		{M: 64, N: 64, K: 64, G: 4, OffChip: true, OffChipEdge: 8},     // smaller torus, different skew
		{M: 64, N: 64, K: 64, G: 4},                                    // on-chip lockstep control
	}
	for _, base := range shapes {
		for _, seed := range []uint64{1, 0x9e3779b97f4a7c15, 0xdeadbeef, 424242} {
			cfg := base
			cfg.Tuned = true
			cfg.Verify = true
			cfg.Seed = seed
			res := runMM(t, cfg)
			if d := MaxAbsDiff(res.C, MatmulReference(cfg)); d != 0 {
				t.Errorf("M=%d G=%d offchip=%v edge=%d seed=%#x: max |diff| vs host reference %g, want 0",
					cfg.M, cfg.G, cfg.OffChip, cfg.OffChipEdge, seed, d)
			}
		}
	}
}
