package core

import "testing"

func verifySumma(t *testing.T, cfg MatmulConfig) *MatmulResult {
	t.Helper()
	cfg.Algorithm = "summa"
	return verifyMM(t, cfg)
}

func TestSummaSingleCore(t *testing.T) {
	verifySumma(t, MatmulConfig{M: 16, N: 16, K: 16, G: 1, Tuned: true, Seed: 1})
}

func TestSumma2x2(t *testing.T) {
	verifySumma(t, MatmulConfig{M: 32, N: 32, K: 32, G: 2, Tuned: true, Seed: 2})
}

func TestSumma4x4(t *testing.T) {
	verifySumma(t, MatmulConfig{M: 64, N: 64, K: 64, G: 4, Tuned: true, Seed: 3})
}

func TestSumma8x8(t *testing.T) {
	verifySumma(t, MatmulConfig{M: 128, N: 128, K: 128, G: 8, Tuned: true, Seed: 4})
}

func TestSummaRectangular(t *testing.T) {
	verifySumma(t, MatmulConfig{M: 32, N: 64, K: 32, G: 2, Tuned: true, Seed: 5})
	verifySumma(t, MatmulConfig{M: 64, N: 128, K: 64, G: 4, Tuned: true, Seed: 6})
}

func TestSummaRejectsOffChipAnd32Blocks(t *testing.T) {
	if _, err := RunMatmul(newHost(), MatmulConfig{
		M: 512, N: 512, K: 512, G: 8, OffChip: true, Algorithm: "summa",
	}); err == nil {
		t.Fatal("off-chip SUMMA should be rejected")
	}
	// 32^3 per-core blocks leave no room for panel workspace.
	if _, err := RunMatmul(newHost(), MatmulConfig{
		M: 256, N: 256, K: 256, G: 8, Algorithm: "summa",
	}); err == nil {
		t.Fatal("32-wide SUMMA blocks should be rejected for lack of workspace")
	}
	if _, err := RunMatmul(newHost(), MatmulConfig{
		M: 64, N: 64, K: 64, G: 4, Algorithm: "pumma",
	}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSummaVsCannonPerformance(t *testing.T) {
	// Same product both ways: results identical (integer inputs), Cannon
	// somewhat faster on the torus (nearest-neighbour only), SUMMA within
	// ~2x (pipelined broadcasts cost hops).
	cfg := MatmulConfig{M: 128, N: 128, K: 128, G: 8, Tuned: true, Verify: true, Seed: 7}
	cannon := runMM(t, cfg)
	scfg := cfg
	scfg.Algorithm = "summa"
	sum := runMM(t, scfg)
	if d := MaxAbsDiff(cannon.C, sum.C); d != 0 {
		t.Fatalf("cannon and summa disagree by %g", d)
	}
	if sum.Elapsed <= cannon.Elapsed/2 {
		t.Fatalf("summa (%v) suspiciously faster than cannon (%v)", sum.Elapsed, cannon.Elapsed)
	}
	if sum.Elapsed > cannon.Elapsed*3 {
		t.Fatalf("summa (%v) more than 3x slower than cannon (%v)", sum.Elapsed, cannon.Elapsed)
	}
}
