package core

import (
	"testing"
)

func TestStreamStencilMatchesGlobalJacobi(t *testing.T) {
	cfg := StreamStencilConfig{
		GlobalRows: 64, GlobalCols: 64,
		BlockRows: 16, BlockCols: 16,
		Iters: 6, TBlock: 3,
		GroupRows: 2, GroupCols: 2,
		Seed: 4,
	}
	res, err := RunStreamStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StreamStencilReference(cfg), 0)
}

func TestStreamStencilTailChunk(t *testing.T) {
	// Iters not a multiple of TBlock: the last chunk is short.
	cfg := StreamStencilConfig{
		GlobalRows: 32, GlobalCols: 32,
		BlockRows: 16, BlockCols: 16,
		Iters: 7, TBlock: 3,
		GroupRows: 2, GroupCols: 2,
		Seed: 5,
	}
	res, err := RunStreamStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StreamStencilReference(cfg), 0)
}

func TestStreamStencilNoTemporalBlocking(t *testing.T) {
	cfg := StreamStencilConfig{
		GlobalRows: 32, GlobalCols: 64,
		BlockRows: 16, BlockCols: 16,
		Iters: 4, TBlock: 1,
		GroupRows: 2, GroupCols: 4,
		Seed: 6,
	}
	res, err := RunStreamStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StreamStencilReference(cfg), 0)
	if res.RedundantFlops != 0 {
		t.Fatalf("T=1 should do no redundant work, got %d flops", res.RedundantFlops)
	}
}

func TestStreamStencilMultipleSuperBlocks(t *testing.T) {
	// The grid is 4x the chip's footprint: blocks stream through.
	cfg := StreamStencilConfig{
		GlobalRows: 128, GlobalCols: 64,
		BlockRows: 16, BlockCols: 16,
		Iters: 4, TBlock: 2,
		GroupRows: 4, GroupCols: 2,
		Seed: 7,
	}
	res, err := RunStreamStencil(newHost(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	almostEqualGrid(t, res.Global, StreamStencilReference(cfg), 0)
}

func TestStreamStencilTemporalBlockingSavesTraffic(t *testing.T) {
	base := StreamStencilConfig{
		GlobalRows: 256, GlobalCols: 256,
		BlockRows: 32, BlockCols: 32,
		Iters:     8,
		GroupRows: 8, GroupCols: 8,
		Seed: 8,
	}
	t1 := base
	t1.TBlock = 1
	r1, err := RunStreamStencil(newHost(), t1)
	if err != nil {
		t.Fatal(err)
	}
	t4 := base
	t4.TBlock = 4
	r4, err := RunStreamStencil(newHost(), t4)
	if err != nil {
		t.Fatal(err)
	}
	// Same answer.
	almostEqualGrid(t, r1.Global, r4.Global, 0)
	// Much less DRAM traffic and a faster wall clock: the whole point.
	if float64(r4.DRAMBytes) > 0.45*float64(r1.DRAMBytes) {
		t.Fatalf("T=4 moved %d bytes vs %d at T=1; want < 45%%", r4.DRAMBytes, r1.DRAMBytes)
	}
	if r4.Elapsed >= r1.Elapsed {
		t.Fatalf("T=4 (%v) not faster than T=1 (%v)", r4.Elapsed, r1.Elapsed)
	}
	if r4.RedundantFlops == 0 {
		t.Fatal("T=4 must do redundant halo work")
	}
}

func TestStreamStencilValidation(t *testing.T) {
	bad := []StreamStencilConfig{
		{GlobalRows: 0, GlobalCols: 64, BlockRows: 16, BlockCols: 16, Iters: 1, TBlock: 1, GroupRows: 2, GroupCols: 2},
		{GlobalRows: 60, GlobalCols: 64, BlockRows: 16, BlockCols: 16, Iters: 1, TBlock: 1, GroupRows: 2, GroupCols: 2}, // not tileable
		{GlobalRows: 64, GlobalCols: 64, BlockRows: 16, BlockCols: 16, Iters: 1, TBlock: 0, GroupRows: 2, GroupCols: 2},
		{GlobalRows: 4096, GlobalCols: 4096, BlockRows: 64, BlockCols: 64, Iters: 1, TBlock: 4, GroupRows: 8, GroupCols: 8}, // block too big
	}
	for i, cfg := range bad {
		if _, err := RunStreamStencil(newHost(), cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
