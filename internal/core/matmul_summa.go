package core

import (
	"fmt"

	"epiphany/internal/dma"
	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/mem"
	"epiphany/internal/sdk"
	"epiphany/internal/sim"
)

// SUMMA (van de Geijn & Watts), the algorithm the paper's §VIII contrasts
// with its Cannon implementation: instead of rotating blocks around a
// torus, each step broadcasts one column panel of A along the rows and
// one row panel of B along the columns, then performs a local
// rank-n update. No initial skew is needed and the grid need not be a
// torus; the cost is that broadcasts travel up to g-1 hops (pipelined
// store-and-forward here) where Cannon only ever talks to neighbours.

// SUMMA flag slots, continuing the table in matmul.go.
const (
	flagSummaAFromWest = 6 // A panel arrived from the west neighbour
	flagSummaAFromEast = 7
	flagSummaBFromN    = 8 // B panel arrived from the north neighbour
	flagSummaBFromS    = 9
	flagSummaCDN       = 10 // north neighbour's computed-steps counter
	flagSummaCDS       = 11
	flagSummaCDW       = 12
	flagSummaCDE       = 13
)

// summa is the per-core state of a SUMMA multiplication. The double-
// buffer scratchpad plan is reused: a0/b0 hold the core's own blocks,
// a1/b1 the panel workspace.
type summa struct {
	c        *ecore.Core
	w        *sdk.Workgroup
	gr, gc   int
	m, n, k  int
	plan     *matmulPlan
	tuned    bool
	step     uint32
	compute  sim.Time
	transfer sim.Time
}

func newSumma(c *ecore.Core, w *sdk.Workgroup, gr, gc, m, n, k int, plan *matmulPlan, tuned bool) *summa {
	return &summa{c: c, w: w, gr: gr, gc: gc, m: m, n: n, k: k, plan: plan, tuned: tuned}
}

func (s *summa) post(row, col, slot int, v uint32) {
	s.c.StoreGlobal32(s.c.GlobalOn(s.w.OriginRow+row, s.w.OriginCol+col,
		matmulFlagsOff+mem.Addr(4*slot)), v)
}

func (s *summa) await(slot int, v uint32) {
	s.c.WaitLocal32GE(matmulFlagsOff+mem.Addr(4*slot), v)
}

// send DMA-copies sz bytes to workgroup position (row, col).
func (s *summa) send(ch dma.Chan, row, col int, src, dst mem.Addr, sz int) {
	s.c.DMAStart(ch, s.c.DMASetDesc(dma.Desc1D(src,
		s.c.GlobalOn(s.w.OriginRow+row, s.w.OriginCol+col, dst), sz, 8)))
	s.c.DMAWait(ch)
}

// awaitCD waits until the neighbour at (row, col) has computed at least
// `need` steps, so its panel workspace is free for overwriting. Unlike
// the old Cannon schemeDouble gate (which raced: its counter was
// posted before the round's forwards), this compute-done gate is
// send-safe as-is: postCD runs after panelCompute, and a SUMMA step's
// forwards out of the panel workspace all happen *before* that step's
// compute, so a step-N counter proves the workspace's sends drained.
func (s *summa) awaitCD(row, col int, need uint32) {
	if need == 0 {
		return
	}
	var slot int
	switch {
	case row < s.gr:
		slot = flagSummaCDN
	case row > s.gr:
		slot = flagSummaCDS
	case col < s.gc:
		slot = flagSummaCDW
	default:
		slot = flagSummaCDE
	}
	s.await(slot, need)
}

// broadcastA distributes step l's A panel along this core's row via a
// store-and-forward pipeline away from the owner column l. It returns
// the base of the panel for this core's compute.
func (s *summa) broadcastA(l int) mem.Addr {
	g := s.w.Cols
	sz := 4 * s.m * s.n
	t0 := s.c.Now()
	defer func() { s.transfer += s.c.Now() - t0 }()
	switch {
	case s.gc == l: // owner: seed both directions
		if l > 0 {
			s.awaitCD(s.gr, s.gc-1, s.step-1)
			s.send(dma.DMA0, s.gr, s.gc-1, s.plan.a0, s.plan.a1, sz)
			s.post(s.gr, s.gc-1, flagSummaAFromEast, s.step)
		}
		if l < g-1 {
			s.awaitCD(s.gr, s.gc+1, s.step-1)
			s.send(dma.DMA0, s.gr, s.gc+1, s.plan.a0, s.plan.a1, sz)
			s.post(s.gr, s.gc+1, flagSummaAFromWest, s.step)
		}
		return s.plan.a0
	case s.gc > l: // receive from the west, forward east
		s.await(flagSummaAFromWest, s.step)
		if s.gc+1 < g {
			s.awaitCD(s.gr, s.gc+1, s.step-1)
			s.send(dma.DMA0, s.gr, s.gc+1, s.plan.a1, s.plan.a1, sz)
			s.post(s.gr, s.gc+1, flagSummaAFromWest, s.step)
		}
		return s.plan.a1
	default: // receive from the east, forward west
		s.await(flagSummaAFromEast, s.step)
		if s.gc-1 >= 0 {
			s.awaitCD(s.gr, s.gc-1, s.step-1)
			s.send(dma.DMA0, s.gr, s.gc-1, s.plan.a1, s.plan.a1, sz)
			s.post(s.gr, s.gc-1, flagSummaAFromEast, s.step)
		}
		return s.plan.a1
	}
}

// broadcastB distributes step l's B panel along this core's column.
func (s *summa) broadcastB(l int) mem.Addr {
	g := s.w.Rows
	sz := 4 * s.n * s.k
	t0 := s.c.Now()
	defer func() { s.transfer += s.c.Now() - t0 }()
	switch {
	case s.gr == l:
		if l > 0 {
			s.awaitCD(s.gr-1, s.gc, s.step-1)
			s.send(dma.DMA1, s.gr-1, s.gc, s.plan.b0, s.plan.b1, sz)
			s.post(s.gr-1, s.gc, flagSummaBFromS, s.step)
		}
		if l < g-1 {
			s.awaitCD(s.gr+1, s.gc, s.step-1)
			s.send(dma.DMA1, s.gr+1, s.gc, s.plan.b0, s.plan.b1, sz)
			s.post(s.gr+1, s.gc, flagSummaBFromN, s.step)
		}
		return s.plan.b0
	case s.gr > l:
		s.await(flagSummaBFromN, s.step)
		if s.gr+1 < g {
			s.awaitCD(s.gr+1, s.gc, s.step-1)
			s.send(dma.DMA1, s.gr+1, s.gc, s.plan.b1, s.plan.b1, sz)
			s.post(s.gr+1, s.gc, flagSummaBFromN, s.step)
		}
		return s.plan.b1
	default:
		s.await(flagSummaBFromS, s.step)
		if s.gr-1 >= 0 {
			s.awaitCD(s.gr-1, s.gc, s.step-1)
			s.send(dma.DMA1, s.gr-1, s.gc, s.plan.b1, s.plan.b1, sz)
			s.post(s.gr-1, s.gc, flagSummaBFromS, s.step)
		}
		return s.plan.b1
	}
}

// panelCompute performs C += Apanel * Bpanel with the modelled schedule.
func (s *summa) panelCompute(aBase, bBase mem.Addr) {
	start := s.c.Now()
	sram := s.c.Local()
	for i := 0; i < s.m; i++ {
		for l := 0; l < s.n; l++ {
			av := sram.LoadF32(aBase + mem.Addr(4*(i*s.n+l)))
			for j := 0; j < s.k; j++ {
				off := s.plan.c + mem.Addr(4*(i*s.k+j))
				sram.StoreF32(off, sram.LoadF32(off)+av*sram.LoadF32(bBase+mem.Addr(4*(l*s.k+j))))
			}
		}
	}
	cycles, flops := MatmulBlockModel(s.m, s.n, s.k, s.tuned)
	s.c.Compute(cycles, flops)
	s.compute += s.c.Now() - start
}

// postCD tells every neighbour this core finished another step.
func (s *summa) postCD() {
	g := s.w.Rows
	if s.gr > 0 {
		s.post(s.gr-1, s.gc, flagSummaCDS, s.step)
	}
	if s.gr < g-1 {
		s.post(s.gr+1, s.gc, flagSummaCDN, s.step)
	}
	if s.gc > 0 {
		s.post(s.gr, s.gc-1, flagSummaCDE, s.step)
	}
	if s.gc < s.w.Cols-1 {
		s.post(s.gr, s.gc+1, flagSummaCDW, s.step)
	}
}

// multiply runs the g SUMMA steps.
func (s *summa) multiply() {
	g := s.w.Rows
	for l := 0; l < g; l++ {
		s.step++
		var aBase, bBase mem.Addr
		if g == 1 {
			aBase, bBase = s.plan.a0, s.plan.b0
		} else {
			aBase = s.broadcastA(l)
			bBase = s.broadcastB(l)
		}
		s.panelCompute(aBase, bBase)
		if g > 1 {
			s.postCD()
		}
	}
}

// zeroC clears the product block.
func (s *summa) zeroC() {
	sram := s.c.Local()
	for i := 0; i < s.m*s.k; i++ {
		sram.StoreF32(s.plan.c+mem.Addr(4*i), 0)
	}
	s.c.Compute(uint64(s.m*s.k/2+10), 0)
}

// runMatmulSumma is the on-chip driver for Algorithm == "summa".
func runMatmulSumma(h *host.Host, cfg MatmulConfig) (*MatmulResult, error) {
	m, n, k, err := cfg.blockDims()
	if err != nil {
		return nil, err
	}
	// SUMMA always needs the panel workspace, even on one core... except
	// that a single core broadcasts nothing; but keep the plan uniform.
	plan, err := planMatmul(m, n, k, maxIntMM(cfg.G, 2))
	if err != nil {
		return nil, err
	}
	if plan.scheme != schemeDouble {
		return nil, fmt.Errorf("core: SUMMA needs panel workspace; %dx%dx%d per-core blocks leave no room (Cannon's half-buffer trick does not apply)", m, n, k)
	}
	g := cfg.G
	w, err := sdk.NewWorkgroup(h.Chip(), 0, 0, g, g)
	if err != nil {
		return nil, err
	}
	a, b := makeMatmulInput(&cfg)
	res := &MatmulResult{}

	h.Spawn("summa-host", func(hp *host.Proc) {
		cores := make([]int, 0, g*g)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				cores = append(cores, w.CoreIndex(i, j))
			}
		}
		hp.LoadImage(cores, matmulCodeSize)
		// SUMMA's distribution is unskewed: core (i,j) simply gets A block
		// (i,j) (rows i*m, cols j*n) and B block (i,j) (rows i*n, cols j*k).
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				hp.WriteCoreF32(w.CoreIndex(i, j), plan.a0, subBlock(a, cfg.N, i*m, j*n, m, n))
				hp.WriteCoreF32(w.CoreIndex(i, j), plan.b0, subBlock(b, cfg.K, i*n, j*k, n, k))
			}
		}

		start := hp.Now()
		// Per-core slots, not a shared append: the closures run
		// concurrently across engine shards.
		summas := make([]*summa, g*g)
		procs := w.Launch("summa", func(c *ecore.Core, gr, gc int) {
			su := newSumma(c, w, gr, gc, m, n, k, plan, cfg.Tuned)
			summas[gr*g+gc] = su
			su.zeroC()
			su.multiply()
		})
		hp.Join(procs)
		res.Elapsed = hp.Now() - start
		for _, su := range summas {
			res.ComputeTime += su.compute
			res.TransferTime += su.transfer
		}
		res.C = make([]float32, cfg.M*cfg.K)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				blk := hp.ReadCoreF32(w.CoreIndex(i, j), plan.c, m*k)
				pasteBlock(res.C, cfg.K, i*m, j*k, m, k, blk)
			}
		}
	})
	if err := h.Chip().Engine().Run(); err != nil {
		return nil, err
	}
	finishMatmulResult(h, res, &cfg, g*g)
	return res, nil
}

func maxIntMM(a, b int) int {
	if a > b {
		return a
	}
	return b
}
