package core

import (
	"fmt"

	"epiphany/internal/dma"
	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/mem"
	"epiphany/internal/sdk"
	"epiphany/internal/sim"
)

// Per-core scratchpad plan for the stencil kernel (paper §VI: code in its
// own bank, stack separate, grid in the remaining banks).
const (
	stencilCodeOff  mem.Addr = 0x0000
	stencilCodeSize          = 6 * 1024
	stencilStackOff mem.Addr = 0x1800
	stencilStackSz           = 2 * 1024
	stencilGridOff  mem.Addr = 0x2000
	stencilFlagsOff mem.Addr = 0x7D00
	// Flag words: 4 incoming iteration counters (compute done) and 4
	// incoming transfer counters, indexed by direction.
	stencilFlagsSize = 64
)

// Directions index the four stencil neighbours.
const (
	dirTop = iota
	dirBottom
	dirLeft
	dirRight
	numDirs
)

var opposite = [numDirs]int{dirBottom, dirTop, dirRight, dirLeft}

// dirOffsets in (drow, dcol) form.
var dirOffsets = [numDirs][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}

// Shape selects the 5-point stencil's geometry within the 3x3
// neighbourhood, per §VI's observation that the kernel "can be trivially
// modified to perform any 5-point stencil within a 3x3 area containing a
// grid point, such as an 'X' shaped stencil".
type Shape int

// Stencil shapes.
const (
	// Plus is the paper's star stencil: T, L, C, R, B.
	Plus Shape = iota
	// Cross uses the diagonals: NW, NE, C, SW, SE. Its halo exchange
	// needs corner values, so columns move before (widened) rows.
	Cross
)

// StencilConfig describes one stencil run.
type StencilConfig struct {
	// Rows, Cols: per-core interior grid size. For the tuned kernel Cols
	// must be a multiple of 20 (the stripe width).
	Rows, Cols int
	// Iters: grid passes (the paper evaluates 50).
	Iters int
	// GroupRows, GroupCols: workgroup shape (1x1 up to 8x8).
	GroupRows, GroupCols int
	// Comm: exchange boundary regions each iteration (Figure 6's darker
	// bars). Without it each core computes an independent replicated
	// problem (the lighter bars).
	Comm bool
	// Tuned selects the hand-scheduled assembly model; false models the
	// e-gcc compiled kernel.
	Tuned bool
	// DirectComm exchanges boundaries with CPU-issued word writes instead
	// of DMA chains (an ablation of the paper's design choice; §V shows
	// direct writes win only for small transfers).
	DirectComm bool
	// Shape selects the plus (default) or diagonal-cross stencil.
	Shape Shape
	// Coefs are the five stencil weights (T, L, C, R, B for Plus;
	// NW, NE, C, SW, SE for Cross).
	Coefs [5]float32
	// Seed for the synthetic initial temperature field.
	Seed uint64
	// Initial, when non-nil, supplies the global temperature field
	// including its fixed boundary ring: (GroupRows*Rows + 2) rows by
	// (GroupCols*Cols + 2) columns. When nil a deterministic random
	// field derived from Seed is used.
	Initial [][]float32
}

// DefaultCoefs are plausible heat-diffusion weights (sum 1).
var DefaultCoefs = [5]float32{0.125, 0.125, 0.5, 0.125, 0.125}

// Validate checks the configuration without running it (Coefs are not
// inspected; RunStencil substitutes DefaultCoefs for a zero value).
func (cfg *StencilConfig) Validate() error {
	return cfg.validate()
}

func (cfg *StencilConfig) validate() error {
	if cfg.Rows <= 0 || cfg.Cols <= 0 || cfg.Iters <= 0 {
		return fmt.Errorf("core: non-positive stencil dimensions %+v", cfg)
	}
	if cfg.GroupRows <= 0 || cfg.GroupCols <= 0 {
		return fmt.Errorf("core: bad workgroup %dx%d", cfg.GroupRows, cfg.GroupCols)
	}
	gridBytes := 4 * (cfg.Rows + 2) * (cfg.Cols + 2)
	if stencilGridOff+mem.Addr(gridBytes) > stencilFlagsOff {
		return fmt.Errorf("core: %dx%d grid (%d B + halo) does not fit the scratchpad plan",
			cfg.Rows, cfg.Cols, gridBytes)
	}
	if cfg.Tuned && cfg.Cols%20 != 0 {
		return fmt.Errorf("core: tuned stencil requires cols %% 20 == 0, got %d", cfg.Cols)
	}
	if cfg.Shape == Cross && cfg.DirectComm {
		return fmt.Errorf("core: the direct-write exchange does not carry corner halo values; Cross requires the DMA path")
	}
	return nil
}

// stencilLayout builds and checks the scratchpad plan for a config.
func stencilLayout(cfg *StencilConfig) (*mem.Layout, error) {
	l := mem.NewLayout()
	gridBytes := 4 * (cfg.Rows + 2) * (cfg.Cols + 2)
	steps := []struct {
		name string
		off  mem.Addr
		size int
	}{
		{"code", stencilCodeOff, stencilCodeSize},
		{"stack", stencilStackOff, stencilStackSz},
		{"grid", stencilGridOff, gridBytes},
		{"flags", stencilFlagsOff, stencilFlagsSize},
	}
	for _, s := range steps {
		if _, err := l.PlaceAt(s.name, s.off, s.size); err != nil {
			return nil, err
		}
	}
	if err := sdk.ReserveSDK(l); err != nil {
		return nil, err
	}
	return l, nil
}

// StencilResult reports a run.
type StencilResult struct {
	Elapsed    sim.Time
	TotalFlops uint64
	GFLOPS     float64
	PctPeak    float64
	// Global holds the gathered interior grid (GroupRows*Rows rows by
	// GroupCols*Cols cols) when cfg.Comm is set; for replicated runs it
	// holds core (0,0)'s interior.
	Global [][]float32
	// NoC reports chip-boundary eLink traffic on multi-chip boards.
	NoC NoCStats
}

// peakGFLOPS is 2 flops/cycle/core at the 600 MHz modelled clock.
func peakGFLOPS(cores int) float64 {
	return 2 * float64(cores) / sim.Cycle.Nanoseconds()
}

// stencilKernel is the device-side program for one core.
func stencilKernel(c *ecore.Core, w *sdk.Workgroup, gr, gc int, cfg *StencilConfig) {
	pitch := cfg.Cols + 2
	rows := cfg.Rows
	gridAt := func(r, col int) mem.Addr {
		return stencilGridOff + mem.Addr(4*(r*pitch+col))
	}
	cycles, flops := StencilComputeModel(rows, cfg.Cols, cfg.Tuned)

	// Neighbour discovery (SDK e_neighbor_id, Clamp mode: grid edges have
	// no neighbour).
	var nbr [numDirs]int
	var has [numDirs]bool
	for d := 0; d < numDirs; d++ {
		nbr[d], has[d] = w.Neighbour(gr, gc, dirOffsets[d][0], dirOffsets[d][1], sdk.Clamp)
		if !cfg.Comm {
			has[d] = false
		}
	}

	// Build the boundary-exchange descriptor chains once, exactly as
	// Listing 2 does: DMA0 chains bottom+top edge rows as doubleword
	// transfers; DMA1 chains right+left edge columns as 2D word
	// transfers.
	var chain0, chain1 *dma.Desc
	if cfg.Comm && !cfg.DirectComm {
		mkRow := func(srcRow, dstRow, dstCore int) *dma.Desc {
			d := dma.Desc1D(gridAt(srcRow, 1),
				c.Chip().Map().GlobalOf(dstCore, gridAt(dstRow, 1)), 4*cfg.Cols, 8)
			return c.DMASetDesc(d)
		}
		mkCol := func(srcCol, dstCol, dstCore int) *dma.Desc {
			d := &dma.Desc{
				Beat: 4, InnerCount: 1, OuterCount: rows,
				SrcOuterStride: 4 * pitch, DstOuterStride: 4 * pitch,
				Src: gridAt(1, srcCol),
				Dst: c.Chip().Map().GlobalOf(dstCore, gridAt(1, dstCol)),
			}
			return c.DMASetDesc(d)
		}
		if has[dirBottom] {
			chain0 = mkRow(rows, 0, nbr[dirBottom]) // my last row -> their halo row 0
		}
		if has[dirTop] {
			d := mkRow(1, rows+1, nbr[dirTop]) // my first row -> their halo row R+1
			d.Chain, chain0 = chain0, d
		}
		if has[dirRight] {
			chain1 = mkCol(cfg.Cols, 0, nbr[dirRight])
		}
		if has[dirLeft] {
			d := mkCol(1, cfg.Cols+1, nbr[dirLeft])
			d.Chain, chain1 = chain1, d
		}
		if cfg.Shape == Cross {
			// Diagonal stencils need corner halo values: widen the row
			// transfers to span the halo columns (filled by the column
			// exchange, which therefore must run first).
			mkWideRow := func(srcRow, dstRow, dstCore int) *dma.Desc {
				return c.DMASetDesc(dma.Desc1D(gridAt(srcRow, 0),
					c.Chip().Map().GlobalOf(dstCore, gridAt(dstRow, 0)), 4*pitch, 8))
			}
			chain0 = nil
			if has[dirBottom] {
				chain0 = mkWideRow(rows, 0, nbr[dirBottom])
			}
			if has[dirTop] {
				d := mkWideRow(1, rows+1, nbr[dirTop])
				d.Chain, chain0 = chain0, d
			}
		}
	}

	sram := c.Local()
	prev := make([]float32, pitch) // rolling copy of the pre-update row above
	cur := make([]float32, pitch)
	signal := func(base mem.Addr, iter uint32) {
		for d := 0; d < numDirs; d++ {
			if has[d] {
				nr, nc := c.Chip().Map().CoreCoords(nbr[d])
				c.StoreGlobal32(c.GlobalOn(nr, nc, base+mem.Addr(4*opposite[d])), iter)
			}
		}
	}
	await := func(base mem.Addr, iter uint32) {
		for d := 0; d < numDirs; d++ {
			if has[d] {
				c.WaitLocal32GE(base+mem.Addr(4*d), iter)
			}
		}
	}

	for iter := 1; iter <= cfg.Iters; iter++ {
		// Functional sweep: the register-buffered in-place kernel has
		// Jacobi semantics (all five inputs are pre-update values; the
		// already-updated row above survives in registers), so the sweep
		// keeps a one-row rolling buffer of pre-update values.
		for col := 0; col < pitch; col++ {
			prev[col] = sram.LoadF32(gridAt(0, col))
		}
		for r := 1; r <= rows; r++ {
			for col := 0; col < pitch; col++ {
				cur[col] = sram.LoadF32(gridAt(r, col))
			}
			for col := 1; col <= cfg.Cols; col++ {
				var v float32
				if cfg.Shape == Cross {
					v = cfg.Coefs[0]*prev[col-1] +
						cfg.Coefs[1]*prev[col+1] +
						cfg.Coefs[2]*cur[col] +
						cfg.Coefs[3]*sram.LoadF32(gridAt(r+1, col-1)) +
						cfg.Coefs[4]*sram.LoadF32(gridAt(r+1, col+1))
				} else {
					v = cfg.Coefs[0]*prev[col] +
						cfg.Coefs[1]*cur[col-1] +
						cfg.Coefs[2]*cur[col] +
						cfg.Coefs[3]*cur[col+1] +
						cfg.Coefs[4]*sram.LoadF32(gridAt(r+1, col))
				}
				sram.StoreF32(gridAt(r, col), v)
			}
			prev, cur = cur, prev
		}
		c.Compute(cycles, flops)

		if !cfg.Comm {
			continue
		}
		// Listing 2: synchronize with the four neighbours, move the edge
		// data, then synchronize on transfer completion.
		signal(stencilFlagsOff, uint32(iter))
		await(stencilFlagsOff, uint32(iter))
		if cfg.DirectComm {
			// Ablation path: the CPU copies every edge word itself.
			remote := func(d int, off mem.Addr) mem.Addr {
				nr, nc := c.Chip().Map().CoreCoords(nbr[d])
				return c.GlobalOn(nr, nc, off)
			}
			if has[dirBottom] {
				c.CopyWordsTo(remote(dirBottom, gridAt(0, 1)), gridAt(rows, 1), cfg.Cols)
			}
			if has[dirTop] {
				c.CopyWordsTo(remote(dirTop, gridAt(rows+1, 1)), gridAt(1, 1), cfg.Cols)
			}
			if has[dirRight] {
				for r := 1; r <= rows; r++ {
					c.CopyWordsTo(remote(dirRight, gridAt(r, 0)), gridAt(r, cfg.Cols), 1)
				}
			}
			if has[dirLeft] {
				for r := 1; r <= rows; r++ {
					c.CopyWordsTo(remote(dirLeft, gridAt(r, cfg.Cols+1)), gridAt(r, 1), 1)
				}
			}
		} else if cfg.Shape == Cross {
			// Columns first; once the left/right exchanges are complete
			// on both sides, the widened rows carry valid corner values.
			if chain1 != nil {
				c.DMAStart(dma.DMA1, chain1)
				c.DMAWait(dma.DMA1)
			}
			for _, d := range []int{dirLeft, dirRight} {
				if has[d] {
					nr, nc := c.Chip().Map().CoreCoords(nbr[d])
					c.StoreGlobal32(c.GlobalOn(nr, nc, stencilFlagsOff+32+mem.Addr(4*opposite[d])), uint32(iter))
				}
			}
			for _, d := range []int{dirLeft, dirRight} {
				if has[d] {
					c.WaitLocal32GE(stencilFlagsOff+32+mem.Addr(4*d), uint32(iter))
				}
			}
			if chain0 != nil {
				c.DMAStart(dma.DMA0, chain0)
				c.DMAWait(dma.DMA0)
			}
		} else {
			if chain0 != nil {
				c.DMAStart(dma.DMA0, chain0)
			}
			if chain1 != nil {
				c.DMAStart(dma.DMA1, chain1)
			}
			if chain0 != nil {
				c.DMAWait(dma.DMA0)
			}
			if chain1 != nil {
				c.DMAWait(dma.DMA1)
			}
		}
		signal(stencilFlagsOff+16, uint32(iter))
		await(stencilFlagsOff+16, uint32(iter))
	}
}

// RunStencil performs a full host-orchestrated stencil experiment.
func RunStencil(h *host.Host, cfg StencilConfig) (*StencilResult, error) {
	if cfg.Coefs == ([5]float32{}) {
		cfg.Coefs = DefaultCoefs
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if _, err := stencilLayout(&cfg); err != nil {
		return nil, err
	}
	w, err := sdk.NewWorkgroup(h.Chip(), 0, 0, cfg.GroupRows, cfg.GroupCols)
	if err != nil {
		return nil, err
	}

	global := makeStencilInput(&cfg)
	res := &StencilResult{}
	hostErr := error(nil)
	h.Spawn("stencil-host", func(hp *host.Proc) {
		pitch := cfg.Cols + 2
		// Step 2-4 of §III: load the image, then each core's grid block
		// (interior plus halo) directly into its local memory.
		cores := make([]int, 0, w.Size())
		for gr := 0; gr < cfg.GroupRows; gr++ {
			for gc := 0; gc < cfg.GroupCols; gc++ {
				cores = append(cores, w.CoreIndex(gr, gc))
			}
		}
		hp.LoadImage(cores, stencilCodeSize)
		for gr := 0; gr < cfg.GroupRows; gr++ {
			for gc := 0; gc < cfg.GroupCols; gc++ {
				block := make([]float32, (cfg.Rows+2)*pitch)
				for r := 0; r < cfg.Rows+2; r++ {
					gRow := gr*cfg.Rows + r
					for col := 0; col < pitch; col++ {
						gCol := gc*cfg.Cols + col
						block[r*pitch+col] = global[gRow][gCol]
					}
				}
				hp.WriteCoreF32(w.CoreIndex(gr, gc), stencilGridOff, block)
			}
		}

		start := hp.Now()
		procs := w.Launch("stencil", func(c *ecore.Core, gr, gc int) {
			stencilKernel(c, w, gr, gc, &cfg)
		})
		hp.Join(procs)
		res.Elapsed = hp.Now() - start

		// Gather (step 5).
		if cfg.Comm {
			res.Global = make([][]float32, cfg.GroupRows*cfg.Rows)
			for gr := 0; gr < cfg.GroupRows; gr++ {
				for gc := 0; gc < cfg.GroupCols; gc++ {
					blk := hp.ReadCoreF32(w.CoreIndex(gr, gc), stencilGridOff, (cfg.Rows+2)*pitch)
					for r := 1; r <= cfg.Rows; r++ {
						gRow := gr*cfg.Rows + r - 1
						if res.Global[gRow] == nil {
							res.Global[gRow] = make([]float32, cfg.GroupCols*cfg.Cols)
						}
						for col := 1; col <= cfg.Cols; col++ {
							res.Global[gRow][gc*cfg.Cols+col-1] = blk[r*pitch+col]
						}
					}
				}
			}
		} else {
			blk := hp.ReadCoreF32(w.CoreIndex(0, 0), stencilGridOff, (cfg.Rows+2)*pitch)
			res.Global = make([][]float32, cfg.Rows)
			for r := 1; r <= cfg.Rows; r++ {
				res.Global[r-1] = make([]float32, cfg.Cols)
				for col := 1; col <= cfg.Cols; col++ {
					res.Global[r-1][col-1] = blk[r*pitch+col]
				}
			}
		}
	})
	if err := h.Chip().Engine().Run(); err != nil {
		return nil, err
	}
	if hostErr != nil {
		return nil, hostErr
	}
	res.TotalFlops = uint64(w.Size()) * uint64(cfg.Rows) * uint64(cfg.Cols) * 10 * uint64(cfg.Iters)
	res.GFLOPS = float64(res.TotalFlops) / res.Elapsed.Nanoseconds()
	res.PctPeak = 100 * res.GFLOPS / peakGFLOPS(w.Size())
	res.NoC = captureNoC(h)
	return res, nil
}

// makeStencilInput builds the deterministic global temperature field,
// including the fixed boundary ring (and inter-block halo seams, which
// are simply interior values of the neighbouring block).
func makeStencilInput(cfg *StencilConfig) [][]float32 {
	gRows := cfg.GroupRows*cfg.Rows + 2
	gCols := cfg.GroupCols*cfg.Cols + 2
	if cfg.Initial != nil {
		if len(cfg.Initial) != gRows || len(cfg.Initial[0]) != gCols {
			panic(fmt.Sprintf("core: Initial field is %dx%d, want %dx%d (interior plus boundary ring)",
				len(cfg.Initial), len(cfg.Initial[0]), gRows, gCols))
		}
		g := make([][]float32, gRows)
		for r := range g {
			g[r] = append([]float32(nil), cfg.Initial[r]...)
		}
		return g
	}
	rng := sim.NewRand(cfg.Seed + 1)
	g := make([][]float32, gRows)
	for r := range g {
		g[r] = make([]float32, gCols)
		for c := range g[r] {
			g[r][c] = rng.Float32() * 100
		}
	}
	return g
}

// StencilReference runs the same Jacobi iteration on the host for
// verification: the distributed kernel's semantics are exactly global
// Jacobi with a fixed boundary ring (see stencilKernel). For replicated
// (Comm=false) runs each core's block iterates with frozen halos, which
// is what a single-block reference with frozen edges computes.
func StencilReference(cfg StencilConfig) [][]float32 {
	if cfg.Coefs == ([5]float32{}) {
		cfg.Coefs = DefaultCoefs
	}
	g := makeStencilInput(&cfg)
	rows := cfg.GroupRows * cfg.Rows
	cols := cfg.GroupCols * cfg.Cols
	if !cfg.Comm {
		rows, cols = cfg.Rows, cfg.Cols
	}
	cur := g
	next := make([][]float32, len(g))
	for r := range next {
		next[r] = append([]float32(nil), g[r]...)
	}
	for it := 0; it < cfg.Iters; it++ {
		for r := 1; r <= rows; r++ {
			for c := 1; c <= cols; c++ {
				if cfg.Shape == Cross {
					next[r][c] = cfg.Coefs[0]*cur[r-1][c-1] +
						cfg.Coefs[1]*cur[r-1][c+1] +
						cfg.Coefs[2]*cur[r][c] +
						cfg.Coefs[3]*cur[r+1][c-1] +
						cfg.Coefs[4]*cur[r+1][c+1]
				} else {
					next[r][c] = cfg.Coefs[0]*cur[r-1][c] +
						cfg.Coefs[1]*cur[r][c-1] +
						cfg.Coefs[2]*cur[r][c] +
						cfg.Coefs[3]*cur[r][c+1] +
						cfg.Coefs[4]*cur[r+1][c]
				}
			}
		}
		cur, next = next, cur
	}
	out := make([][]float32, rows)
	for r := 1; r <= rows; r++ {
		out[r-1] = append([]float32(nil), cur[r][1:cols+1]...)
	}
	return out
}
