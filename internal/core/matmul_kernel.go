package core

import (
	"fmt"

	"epiphany/internal/dma"
	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/mem"
	"epiphany/internal/sdk"
	"epiphany/internal/sim"
)

// cannon is the per-core state of the on-chip Cannon multiplication.
type cannon struct {
	c          *ecore.Core
	w          *sdk.Workgroup
	gr, gc     int
	m, n, k    int
	plan       *matmulPlan
	tuned      bool
	left, up   int    // rotation targets (torus)
	right, dwn int    // rotation sources
	round      uint32 // completed compute rounds, monotone over the run
	parity     int    // half-buffer scheme base parity
	cur        int    // double-buffer scheme current buffer
	compute    sim.Time
	transfer   sim.Time
}

func newCannon(c *ecore.Core, w *sdk.Workgroup, gr, gc int, m, n, k int, plan *matmulPlan, tuned bool) *cannon {
	ca := &cannon{c: c, w: w, gr: gr, gc: gc, m: m, n: n, k: k, plan: plan, tuned: tuned}
	ca.left, _ = w.Neighbour(gr, gc, 0, -1, sdk.Wrap)
	ca.right, _ = w.Neighbour(gr, gc, 0, 1, sdk.Wrap)
	ca.up, _ = w.Neighbour(gr, gc, -1, 0, sdk.Wrap)
	ca.dwn, _ = w.Neighbour(gr, gc, 1, 0, sdk.Wrap)
	return ca
}

// aBase and bBase return the current operand bases.
func (ca *cannon) aBase() mem.Addr {
	if ca.plan.scheme == schemeHalf {
		return ca.plan.a0 + mem.Addr(ca.parity)*matmulHalfSz
	}
	if ca.cur == 0 {
		return ca.plan.a0
	}
	return ca.plan.a1
}

func (ca *cannon) bBase() mem.Addr {
	if ca.plan.scheme == schemeHalf {
		return ca.plan.b0 + mem.Addr(ca.parity)*matmulHalfSz
	}
	if ca.cur == 0 {
		return ca.plan.b0
	}
	return ca.plan.b1
}

// post stores a flag value into a neighbour's flag slot.
func (ca *cannon) post(target int, slot int, v uint32) {
	r, c := ca.c.Chip().Map().CoreCoords(target)
	ca.c.StoreGlobal32(ca.c.GlobalOn(r, c, matmulFlagsOff+mem.Addr(4*slot)), v)
}

// await blocks until the local flag slot reaches v.
func (ca *cannon) await(slot int, v uint32) {
	ca.c.WaitLocal32GE(matmulFlagsOff+mem.Addr(4*slot), v)
}

// blockCompute performs C += A*B functionally and charges the pipeline
// model's cycles.
func (ca *cannon) blockCompute() {
	start := ca.c.Now()
	sram := ca.c.Local()
	a, b, c := ca.aBase(), ca.bBase(), ca.plan.c
	for i := 0; i < ca.m; i++ {
		for l := 0; l < ca.n; l++ {
			av := sram.LoadF32(a + mem.Addr(4*(i*ca.n+l)))
			for j := 0; j < ca.k; j++ {
				off := c + mem.Addr(4*(i*ca.k+j))
				sram.StoreF32(off, sram.LoadF32(off)+av*sram.LoadF32(b+mem.Addr(4*(l*ca.k+j))))
			}
		}
	}
	cycles, flops := MatmulBlockModel(ca.m, ca.n, ca.k, ca.tuned)
	ca.c.Compute(cycles, flops)
	ca.compute += ca.c.Now() - start
}

// zeroC clears the product block (doubleword stores: 2 floats/cycle).
func (ca *cannon) zeroC() {
	sram := ca.c.Local()
	for i := 0; i < ca.m*ca.k; i++ {
		sram.StoreF32(ca.plan.c+mem.Addr(4*i), 0)
	}
	ca.c.Compute(uint64(ca.m*ca.k/2+10), 0)
}

// sendBlock DMA-transfers sz bytes from a local offset to a neighbour's
// offset, building the descriptor each round as the alternating buffer
// addresses require.
func (ca *cannon) sendBlock(ch dma.Chan, target int, src, dst mem.Addr, sz int) {
	r, c := ca.c.Chip().Map().CoreCoords(target)
	d := ca.c.DMASetDesc(dma.Desc1D(src, ca.c.GlobalOn(r, c, dst), sz, 8))
	ca.c.DMAStart(ch, d)
	ca.c.DMAWait(ch)
}

// rotate performs one Cannon rotation (A one step left, B one step up)
// after compute round r, using the plan's buffering scheme.
func (ca *cannon) rotate() {
	start := ca.c.Now()
	r := ca.round
	aSz, bSz := 4*ca.m*ca.n, 4*ca.n*ca.k
	switch ca.plan.scheme {
	case schemeDouble:
		// A neighbour's spare buffer may only be overwritten once the
		// neighbour has retired the round that last touched it: round
		// r-1's compute read it and round r-1's rotation forwarded out
		// of it. The flagFwd credit is granted only after a round's
		// sends complete, so a core arriving here early - off-chip
		// tile loads serialize over the eLink and skew start times by
		// whole DMA lengths - blocks until the target's forwards have
		// drained instead of racing them.
		if r >= 2 {
			ca.await(flagFwdFromLeft, r-1)
			ca.await(flagFwdFromUp, r-1)
		}
		spareA, spareB := ca.plan.a1, ca.plan.b1
		if ca.cur == 1 {
			spareA, spareB = ca.plan.a0, ca.plan.b0
		}
		ca.sendBlock(dma.DMA0, ca.left, ca.aBase(), spareA, aSz)
		ca.sendBlock(dma.DMA1, ca.up, ca.bBase(), spareB, bSz)
		// Send credit: both forwards out of our current buffers are
		// complete, so the cores that DMA into us may overwrite them.
		ca.post(ca.right, flagFwdFromLeft, r)
		ca.post(ca.dwn, flagFwdFromUp, r)
		ca.post(ca.left, flagArrAFromRight, r)
		ca.post(ca.up, flagArrBFromBelow, r)
		ca.await(flagArrAFromRight, r)
		ca.await(flagArrBFromBelow, r)
		ca.cur ^= 1
	case schemeHalf:
		// The paper's §VII alternate buffering scheme (Figures 10-13):
		// 2 KB halves leapfrog through the adjacent rotation buffer, with
		// the base pointer sliding by 2 KB each round. Phase 1 may begin
		// only once the target has finished this round's compute (its
		// buffer geometry must agree with ours).
		ca.await(flagCDFromLeft, r)
		ca.await(flagCDFromUp, r)
		a := ca.aBase()
		var a1src, a1dst, a2src, a2dst mem.Addr
		if ca.parity == 0 {
			a1src, a1dst = a+matmulHalfSz, a+2*matmulHalfSz // lower half -> buffer
			a2src, a2dst = a, a+matmulHalfSz                // upper half -> vacated lower home
		} else {
			a1src, a1dst = a, a-matmulHalfSz
			a2src, a2dst = a+matmulHalfSz, a
		}
		off := ca.plan.b0 - ca.plan.a0 // B region uses the same geometry
		// Phase 1: halves into the neighbours' free 2 KB regions.
		ca.sendBlock(dma.DMA0, ca.left, a1src, a1dst, matmulHalfSz)
		ca.sendBlock(dma.DMA1, ca.up, a1src+off, a1dst+off, matmulHalfSz)
		ca.post(ca.right, flagP1AFromLeft, r)
		ca.post(ca.dwn, flagP1BFromUp, r)
		// Phase 2 may only overwrite the halves our targets have vacated.
		ca.await(flagP1AFromLeft, r)
		ca.await(flagP1BFromUp, r)
		ca.sendBlock(dma.DMA0, ca.left, a2src, a2dst, matmulHalfSz)
		ca.sendBlock(dma.DMA1, ca.up, a2src+off, a2dst+off, matmulHalfSz)
		ca.post(ca.left, flagArrAFromRight, r)
		ca.post(ca.up, flagArrBFromBelow, r)
		ca.await(flagArrAFromRight, r)
		ca.await(flagArrBFromBelow, r)
		ca.parity ^= 1
	}
	ca.transfer += ca.c.Now() - start
}

// multiply runs g compute rounds with g-1 rotations: one on-chip block
// product C += A*B distributed over the torus. Every round posts a
// retirement counter to the neighbours that write into this core:
// schemeHalf posts compute-done right after compute (its phase-1 gate
// needs the current round's buffer geometry), while schemeDouble grants
// the flagFwd send credit only once the round's forwards are also done
// (inside rotate; on a pass's final, rotation-less round there is
// nothing in flight, so the credit follows compute directly - the next
// off-chip tile pass's first rotation gates on it).
func (ca *cannon) multiply() {
	g := ca.w.Rows
	for step := 0; step < g; step++ {
		ca.round++
		ca.blockCompute()
		if g > 1 && ca.plan.scheme == schemeHalf {
			ca.post(ca.right, flagCDFromLeft, ca.round)
			ca.post(ca.dwn, flagCDFromUp, ca.round)
		}
		if step < g-1 {
			ca.rotate()
		} else if g > 1 && ca.plan.scheme == schemeDouble {
			ca.post(ca.right, flagFwdFromLeft, ca.round)
			ca.post(ca.dwn, flagFwdFromUp, ca.round)
		}
	}
}

// --- On-chip driver (§VII level 2, Table V) ---

func runMatmulOnChip(h *host.Host, cfg MatmulConfig) (*MatmulResult, error) {
	m, n, k, err := cfg.blockDims()
	if err != nil {
		return nil, err
	}
	plan, err := planMatmul(m, n, k, cfg.G)
	if err != nil {
		return nil, err
	}
	g := cfg.G
	w, err := sdk.NewWorkgroup(h.Chip(), 0, 0, g, g)
	if err != nil {
		return nil, err
	}
	a, b := makeMatmulInput(&cfg)
	res := &MatmulResult{}

	h.Spawn("matmul-host", func(hp *host.Proc) {
		cores := make([]int, 0, g*g)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				cores = append(cores, w.CoreIndex(i, j))
			}
		}
		hp.LoadImage(cores, matmulCodeSize)
		// Distribute with Cannon's initial skew: core (i,j) gets A block
		// (i, (i+j) mod g) and B block ((i+j) mod g, j).
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				s := (i + j) % g
				hp.WriteCoreF32(w.CoreIndex(i, j), plan.a0, subBlock(a, cfg.N, i*m, s*n, m, n))
				hp.WriteCoreF32(w.CoreIndex(i, j), plan.b0, subBlock(b, cfg.K, s*n, j*k, n, k))
			}
		}

		start := hp.Now()
		// One slot per core: the kernel closures run concurrently when
		// the board's chips are on different engine shards, so each
		// writes its own index rather than appending to a shared slice.
		cannons := make([]*cannon, g*g)
		procs := w.Launch("matmul", func(c *ecore.Core, gr, gc int) {
			ca := newCannon(c, w, gr, gc, m, n, k, plan, cfg.Tuned)
			cannons[gr*g+gc] = ca
			ca.zeroC()
			ca.multiply()
		})
		hp.Join(procs)
		res.Elapsed = hp.Now() - start
		for _, ca := range cannons {
			res.ComputeTime += ca.compute
			res.TransferTime += ca.transfer
		}

		res.C = make([]float32, cfg.M*cfg.K)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				blk := hp.ReadCoreF32(w.CoreIndex(i, j), plan.c, m*k)
				pasteBlock(res.C, cfg.K, i*m, j*k, m, k, blk)
			}
		}
	})
	if err := h.Chip().Engine().Run(); err != nil {
		return nil, err
	}
	finishMatmulResult(h, res, &cfg, g*g)
	return res, nil
}

// --- Off-chip driver (§VII level 3, Table VI) ---

// DRAM staging offsets.
func matmulDRAMOffsets(cfg *MatmulConfig) (aOff, bOff, cOff mem.Addr) {
	aOff = 0
	bOff = aOff + mem.Addr(4*cfg.M*cfg.N)
	cOff = bOff + mem.Addr(4*cfg.N*cfg.K)
	return
}

func runMatmulOffChip(h *host.Host, cfg MatmulConfig) (*MatmulResult, error) {
	if cfg.M != cfg.N || cfg.N != cfg.K {
		return nil, fmt.Errorf("core: off-chip matmul supports square matrices, got %dx%dx%d",
			cfg.M, cfg.N, cfg.K)
	}
	g := cfg.G
	G := cfg.M
	// Per-core edge: the largest of {32, 24, 16, 8} that divides G/g,
	// unless the configuration pins one (as the paper did with 24 for
	// 1536x1536).
	edge := 0
	if cfg.OffChipEdge != 0 {
		edge = cfg.OffChipEdge
		if edge < 1 || edge > 32 || (G/g)%edge != 0 {
			return nil, fmt.Errorf("core: off-chip tile edge %d does not divide per-group share %d", edge, G/g)
		}
	} else {
		for _, e := range []int{32, 24, 16, 8} {
			if (G/g)%e == 0 {
				edge = e
				break
			}
		}
	}
	if edge == 0 {
		return nil, fmt.Errorf("core: matrix edge %d not tileable over a %dx%d group", G, g, g)
	}
	n := edge
	S := g * n // on-chip tile edge
	Q := G / S // tiles per matrix dimension
	plan, err := planMatmul(n, n, n, g)
	if err != nil {
		return nil, err
	}
	w, err := sdk.NewWorkgroup(h.Chip(), 0, 0, g, g)
	if err != nil {
		return nil, err
	}
	aOff, bOff, cOff := matmulDRAMOffsets(&cfg)
	if int(cOff)+4*cfg.M*cfg.K > mem.DRAMSize {
		return nil, fmt.Errorf("core: %d^2 operands exceed the 32 MB shared window", G)
	}
	a, b := makeMatmulInput(&cfg)
	res := &MatmulResult{}

	h.Spawn("matmul-host", func(hp *host.Proc) {
		cores := make([]int, 0, g*g)
		for i := 0; i < g; i++ {
			for j := 0; j < g; j++ {
				cores = append(cores, w.CoreIndex(i, j))
			}
		}
		hp.LoadImage(cores, matmulCodeSize)
		hp.WriteDRAMF32(aOff, a)
		hp.WriteDRAMF32(bOff, b)

		start := hp.Now()
		// Per-core slots, not a shared append: the closures run
		// concurrently across engine shards.
		cannons := make([]*cannon, g*g)
		procs := w.Launch("matmul", func(c *ecore.Core, gr, gc int) {
			ca := newCannon(c, w, gr, gc, n, n, n, plan, cfg.Tuned)
			cannons[gr*g+gc] = ca
			offChipKernel(ca, &cfg, Q, S, aOff, bOff, cOff)
		})
		hp.Join(procs)
		res.Elapsed = hp.Now() - start
		for _, ca := range cannons {
			res.ComputeTime += ca.compute
			res.TransferTime += ca.transfer
		}
		res.C = hp.ReadDRAMF32(cOff, cfg.M*cfg.K)
	})
	if err := h.Chip().Engine().Run(); err != nil {
		return nil, err
	}
	finishMatmulResult(h, res, &cfg, g*g)
	return res, nil
}

// offChipKernel is the device-side top level: page tile operands in from
// shared memory, run the on-chip product, page the C tile back out.
func offChipKernel(ca *cannon, cfg *MatmulConfig, Q, S int, aOff, bOff, cOff mem.Addr) {
	g := ca.w.Rows
	n := ca.n
	G := cfg.M
	readTile := func(ch dma.Chan, dramBase mem.Addr, row, col int, local mem.Addr) {
		t0 := ca.c.Now()
		src := dramBase + mem.Addr(4*(row*G+col))
		d := &dma.Desc{
			Beat:           8,
			InnerCount:     n / 2,
			OuterCount:     n,
			SrcInnerStride: 8,
			DstInnerStride: 8,
			SrcOuterStride: 4*G - (n/2-1)*8,
			DstOuterStride: 8,
			Src:            mem.DRAMBase + src,
			Dst:            ca.c.Global(local),
		}
		ca.c.DMASetDesc(d)
		ca.c.DMAStart(ch, d)
		ca.c.DMAWait(ch)
		ca.transfer += ca.c.Now() - t0
	}
	writeTile := func(dramBase mem.Addr, row, col int, local mem.Addr) {
		t0 := ca.c.Now()
		dst := dramBase + mem.Addr(4*(row*G+col))
		d := &dma.Desc{
			Beat:           8,
			InnerCount:     n / 2,
			OuterCount:     n,
			SrcInnerStride: 8,
			DstInnerStride: 8,
			SrcOuterStride: 8,
			DstOuterStride: 4*G - (n/2-1)*8,
			Src:            ca.c.Global(local),
			Dst:            mem.DRAMBase + dst,
		}
		ca.c.DMASetDesc(d)
		ca.c.DMAStart(dma.DMA0, d)
		ca.c.DMAWait(dma.DMA0)
		ca.transfer += ca.c.Now() - t0
	}

	i, j := ca.gr, ca.gc
	for bi := 0; bi < Q; bi++ {
		for bj := 0; bj < Q; bj++ {
			ca.zeroC()
			for bk := 0; bk < Q; bk++ {
				s := (i + j) % g
				readTile(dma.DMA0, aOff, bi*S+i*n, bk*S+s*n, ca.aBase())
				readTile(dma.DMA1, bOff, bk*S+s*n, bj*S+j*n, ca.bBase())
				ca.multiply()
			}
			writeTile(cOff, bi*S+i*n, bj*S+j*n, ca.plan.c)
		}
	}
}

// --- shared helpers ---

func subBlock(m []float32, pitch, r0, c0, rows, cols int) []float32 {
	out := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		copy(out[r*cols:(r+1)*cols], m[(r0+r)*pitch+c0:(r0+r)*pitch+c0+cols])
	}
	return out
}

func pasteBlock(m []float32, pitch, r0, c0, rows, cols int, blk []float32) {
	for r := 0; r < rows; r++ {
		copy(m[(r0+r)*pitch+c0:(r0+r)*pitch+c0+cols], blk[r*cols:(r+1)*cols])
	}
}

func finishMatmulResult(h *host.Host, res *MatmulResult, cfg *MatmulConfig, cores int) {
	res.TotalFlops = 2 * uint64(cfg.M) * uint64(cfg.N) * uint64(cfg.K)
	if res.Elapsed > 0 {
		res.GFLOPS = float64(res.TotalFlops) / res.Elapsed.Nanoseconds()
		res.PctPeak = 100 * res.GFLOPS / peakGFLOPS(cores)
	}
	res.NoC = captureNoC(h)
}
