// Package system owns the simulated board: the discrete-event engine,
// the Epiphany chip and the ARM host model, bundled as the single-use
// System every workload executes against. It sits below the public
// epiphany package (which aliases System) so that internal packages -
// notably workload and bench - can build and run boards without
// importing the package root.
package system

import (
	"fmt"

	"epiphany/internal/core"
	"epiphany/internal/ecore"
	"epiphany/internal/host"
	"epiphany/internal/mem"
	"epiphany/internal/sdk"
	"epiphany/internal/sim"
)

// System is one simulated board: engine, chip and host. A System runs a
// single experiment; build a fresh one per run so that virtual time,
// memories and statistics start clean. The Runner in the workload
// package does exactly that, handing every job its own board.
type System struct {
	eng  *sim.Engine
	chip *ecore.Chip
	host *host.Host
	used bool
}

// New builds the standard 8x8 Epiphany-IV system.
func New() *System { return NewSize(8, 8) }

// NewSize builds a rows x cols single-chip device (for studying smaller
// or hypothetical larger meshes; the paper's device is 8x8).
func NewSize(rows, cols int) *System {
	return NewTopology(SingleChip(rows, cols))
}

// NewTopology builds a system on the given fabric topology: a single
// chip, or a board of chips glued through chip-to-chip eLinks. When the
// topology carries chip-to-chip timing overrides (C2CBytePeriod,
// C2CHopLatency) they are applied to the board's mesh, so sweeps can
// treat the off-chip link speed as an experiment axis. Invalid
// geometries panic; call t.Validate first to get an error instead.
func NewTopology(t Topology) *System {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	eng := sim.NewEngine()
	amap := mem.NewBoardMap(t.ChipGridRows, t.ChipGridCols, t.CoreRows, t.CoreCols)
	chip := ecore.NewChipMapShards(eng, amap, t.Shards)
	if t.C2CBytePeriod > 0 || t.C2CHopLatency > 0 {
		chip.Fabric().Mesh.SetC2C(t.C2CBytePeriod, t.C2CHopLatency)
	}
	// The minimum latency of any chip-to-chip interaction - the crossing
	// latency plus the first byte's off-chip serialization - is the
	// conservative scheduler's lookahead window.
	bytePeriod, hopLatency := chip.Fabric().Mesh.C2C()
	eng.SetLookahead(hopLatency + bytePeriod)
	return &System{eng: eng, chip: chip, host: host.New(chip)}
}

// SetWorkers sets how many host goroutines execute the board's shards
// during a run: 1 (the default) is fully sequential; higher counts run
// chip shards concurrently under the engine's conservative scheduler.
// Metrics are bit-identical for every value (the schedule is the same
// canonical event order); only wall-clock time changes. The value is
// clamped to the number of shards, so it is a no-op on single-chip
// boards.
func (s *System) SetWorkers(n int) { s.eng.SetWorkers(n) }

// NumShards returns how many shards the board's event engine is
// partitioned into: 1 on single-chip (or Shards=1) boards, 1 + the
// shard-group count otherwise (shard 0 is the sys shard).
func (s *System) NumShards() int { return s.eng.NumShards() }

// Chip returns the device for kernel-level programming.
func (s *System) Chip() *ecore.Chip { return s.chip }

// Host returns the ARM host model.
func (s *System) Host() *host.Host { return s.host }

// Engine returns the simulation engine (for advanced scheduling).
func (s *System) Engine() *sim.Engine { return s.eng }

// NewWorkgroup creates a workgroup on this system's chip.
func (s *System) NewWorkgroup(originRow, originCol, rows, cols int) (*sdk.Workgroup, error) {
	return sdk.NewWorkgroup(s.chip, originRow, originCol, rows, cols)
}

// Reset restores a used System to a pristine board - virtual time zero,
// memories zeroed, every statistic and link occupancy cleared - so the
// 35 MB of board state can be recycled across experiments instead of
// reallocated. A recycled System is bit-deterministic with a fresh one:
// the same workload produces byte-identical Metrics either way (the
// conformance harness pins this). Reset refuses a board whose engine is
// not quiescent (a run that deadlocked, was stopped mid-flight, or
// panicked); such a System must be discarded. Runner.RunBatch uses
// Reset to pool one board per worker.
func (s *System) Reset() error {
	if err := s.eng.Reset(); err != nil {
		return fmt.Errorf("epiphany: System not recyclable: %w", err)
	}
	s.chip.Reset()
	s.host.Reset()
	s.used = false
	return nil
}

// Acquire reserves the System for one experiment. Workload
// implementations must call it before touching the board so that a
// stale System (whose virtual time and statistics are no longer clean)
// is refused instead of silently producing skewed numbers.
func (s *System) Acquire() error {
	if s.used {
		return fmt.Errorf("epiphany: a System runs one experiment; create a fresh one with NewSystem, or let Runner.RunBatch hand each workload its own board")
	}
	s.used = true
	return nil
}

// RunStencil executes a full host-orchestrated stencil experiment.
//
// Deprecated: wrap the config in a StencilWorkload and execute it with
// epiphany.Run or Runner.RunBatch - for example
// epiphany.Run(ctx, &epiphany.StencilWorkload{Config: cfg}). The
// workload path is where every newer capability lives: topology and
// mesh-size selection, seed rebasing, trace capture, energy accounting
// (WithPowerModel) and System pooling. This shim runs on the default
// board only and is kept so pre-workload callers compile.
func (s *System) RunStencil(cfg core.StencilConfig) (*core.StencilResult, error) {
	if err := s.Acquire(); err != nil {
		return nil, err
	}
	return core.RunStencil(s.host, cfg)
}

// RunMatmul executes a full host-orchestrated matrix multiplication.
//
// Deprecated: wrap the config in a MatmulWorkload and execute it with
// epiphany.Run or Runner.RunBatch - for example
// epiphany.Run(ctx, &epiphany.MatmulWorkload{Config: cfg}). See
// RunStencil's deprecation note: the workload path carries the
// topology, seed, trace and energy options this shim lacks.
func (s *System) RunMatmul(cfg core.MatmulConfig) (*core.MatmulResult, error) {
	if err := s.Acquire(); err != nil {
		return nil, err
	}
	return core.RunMatmul(s.host, cfg)
}

// RunStreamStencil executes the streaming stencil with temporal
// blocking: the grid lives in shared DRAM and blocks page through the
// chip, with TBlock iterations applied per residency.
//
// Deprecated: wrap the config in a StreamStencilWorkload and execute it
// with epiphany.Run or Runner.RunBatch - for example
// epiphany.Run(ctx, &epiphany.StreamStencilWorkload{Config: cfg}). See
// RunStencil's deprecation note: the workload path carries the
// topology, seed, trace and energy options this shim lacks.
func (s *System) RunStreamStencil(cfg core.StreamStencilConfig) (*core.StreamStencilResult, error) {
	if err := s.Acquire(); err != nil {
		return nil, err
	}
	return core.RunStreamStencil(s.host, cfg)
}
