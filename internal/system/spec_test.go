package system

import (
	"strings"
	"testing"
)

// TestParseTopologySpecGrammar drives every form of the grammar
// through the resolver and checks the geometry and canonical name it
// produces.
func TestParseTopologySpecGrammar(t *testing.T) {
	cases := []struct {
		spec                       string
		name                       string
		gridR, gridC, chipR, chipC int
	}{
		// Presets resolve to themselves.
		{"e16", "e16", 1, 1, 4, 4},
		{"e64", "e64", 1, 1, 8, 8},
		{"cluster-2x2", "cluster-2x2", 2, 2, 4, 4},
		// Ad-hoc single-chip meshes stay unnamed.
		{"4x8", "", 1, 1, 4, 8},
		{"2x3", "", 1, 1, 2, 3},
		// grid= boards; /chip= defaults to the 8x8 E64-class chip.
		{"grid=4x4/chip=8x8", "grid=4x4/chip=8x8", 4, 4, 8, 8},
		{"grid=2x4", "grid=2x4/chip=8x8", 2, 4, 8, 8},
		{"grid=1x1/chip=4x4", "grid=1x1/chip=4x4", 1, 1, 4, 4},
		{"grid=3x2/chip=2x4", "grid=3x2/chip=2x4", 3, 2, 2, 4},
		// cluster-RxC: boards of 4x4 E16 chips.
		{"cluster-4x4", "cluster-4x4", 4, 4, 4, 4},
		{"cluster-1x2", "cluster-1x2", 1, 2, 4, 4},
		// e16xN / e64xN: square chip arrays.
		{"e16x4", "e16x4", 2, 2, 4, 4},
		{"e64x16", "e64x16", 4, 4, 8, 8},
		{"e64x1", "e64x1", 1, 1, 8, 8},
	}
	for _, tc := range cases {
		topo, err := ParseTopologySpec(tc.spec)
		if err != nil {
			t.Errorf("ParseTopologySpec(%q): %v", tc.spec, err)
			continue
		}
		if topo.Name != tc.name ||
			topo.ChipGridRows != tc.gridR || topo.ChipGridCols != tc.gridC ||
			topo.CoreRows != tc.chipR || topo.CoreCols != tc.chipC {
			t.Errorf("ParseTopologySpec(%q) = %+v, want name %q grid %dx%d chip %dx%d",
				tc.spec, topo, tc.name, tc.gridR, tc.gridC, tc.chipR, tc.chipC)
		}
	}

	// The /c2c= suffix applies to any base form.
	topo, err := ParseTopologySpec("grid=2x2/chip=4x4/c2c=40:600")
	if err != nil {
		t.Fatal(err)
	}
	if topo.C2CBytePeriod != 40 || topo.C2CHopLatency != 600 {
		t.Errorf("c2c override not applied: %+v", topo)
	}
	if topo.Spec() != "grid=2x2/chip=4x4/c2c=40:600" {
		t.Errorf("Spec() = %q, want the canonical spelling back", topo.Spec())
	}
}

// TestParseTopologySpecErrors is the error-path table: zero and
// negative dimensions, address-space overflow past the 64x64 mesh
// ceiling, malformed dimension pairs and /c2c= payloads, non-square
// chip counts, and near-miss spellings - which must carry a "did you
// mean" suggestion.
func TestParseTopologySpecErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr string
	}{
		{"", "unknown topology spec"},
		{"nope", "unknown topology spec"},
		{"e65", `did you mean "e64" or "e16"`},
		{"cluster4x4", `did you mean "cluster-4x4"`},
		{"E64", `did you mean "e64"`}, // case-sensitive registry, case-insensitive suggestions
		{"grid=0x4", "invalid topology"},
		{"grid=4x-1/chip=8x8", "invalid topology"},
		{"grid=4x4/chip=0x0", "invalid topology"},
		{"0x0", "invalid topology"},
		{"grid=8x8/chip=8x8", "does not fit"}, // 64 core rows from mesh origin row 32
		{"grid=1x8/chip=8x8", "does not fit"}, // 64 core cols from origin col 8
		{"33x1", "does not fit"},
		{"cluster-9x9", "does not fit"},
		{"e64x25", "does not fit"},
		{"grid=axb", "ROWSxCOLS"},
		{"grid=4", "ROWSxCOLS"},
		{"grid=4x4/chip=8", "ROWSxCOLS"},
		{"cluster-a", "ROWSxCOLS"},
		{"e64x3", "square count"},
		{"e16x0", "positive chip count"},
		{"e64xfour", "positive chip count"},
		{"e64/c2c=40", "must be BYTE:HOP"},
		{"e64/c2c=a:5", "bad c2c byte period"},
		{"e64/c2c=5:b", "bad c2c hop latency"},
		{"e64/c2c=4000000000:1", "out of range"},
	}
	for _, tc := range cases {
		_, err := ParseTopologySpec(tc.spec)
		if err == nil {
			t.Errorf("ParseTopologySpec(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseTopologySpec(%q) = %v, want error containing %q", tc.spec, err, tc.wantErr)
		}
	}
}

// TestTopologySpecRoundTrip: for every valid grid geometry under the
// address-space ceiling, Spec renders a spelling that parses back to
// the identical Topology - the property that makes canonical specs
// usable as cache keys and axis labels.
func TestTopologySpecRoundTrip(t *testing.T) {
	chips := [][2]int{{4, 4}, {8, 8}, {2, 4}, {1, 8}, {3, 5}}
	for _, chip := range chips {
		for gr := 1; gr <= 8; gr++ {
			for gc := 1; gc <= 8; gc++ {
				topo := Topology{
					ChipGridRows: gr, ChipGridCols: gc,
					CoreRows: chip[0], CoreCols: chip[1],
				}
				if topo.Validate() != nil {
					continue // past the mesh ceiling; rejection is tested above
				}
				spec := topo.Spec()
				back, err := ParseTopologySpec(spec)
				if err != nil {
					t.Fatalf("ParseTopologySpec(%q) (from %+v): %v", spec, topo, err)
				}
				// An unnamed topology comes back with the spec as its
				// canonical name; geometry must survive exactly.
				if back.ChipGridRows != gr || back.ChipGridCols != gc ||
					back.CoreRows != chip[0] || back.CoreCols != chip[1] {
					t.Fatalf("round-trip of %q changed geometry: %+v", spec, back)
				}
				if again := back.Spec(); again != spec && back.Name != spec {
					t.Fatalf("Spec round-trip not canonical: %q -> %q", spec, again)
				}
			}
		}
	}

	// Canonical specs are fixpoints: parse(spec).Spec() == spec for
	// one spelling of every grammar form.
	for _, spec := range []string{
		"e16", "e64", "cluster-2x2", "4x8",
		"grid=4x4/chip=8x8", "cluster-4x4", "e16x4", "e64x16",
		"grid=2x2/chip=4x4/c2c=40:600", "e64/c2c=40:600",
	} {
		topo, err := ParseTopologySpec(spec)
		if err != nil {
			t.Fatalf("ParseTopologySpec(%q): %v", spec, err)
		}
		if topo.Spec() != spec {
			t.Errorf("canonical spec not a fixpoint: %q -> %q", spec, topo.Spec())
		}
	}
}

// FuzzParseTopoSpec fuzzes the grammar: the parser must never panic,
// and every accepted spec must re-render to a canonical spelling that
// parses back to the identical board (parse/print/parse fixpoint).
func FuzzParseTopoSpec(f *testing.F) {
	for _, seed := range []string{
		"e16", "e64", "cluster-2x2", "4x8", "grid=4x4/chip=8x8",
		"grid=2x4", "cluster-4x4", "e16x4", "e64x16",
		"cluster-2x2/c2c=40:600", "grid=8x8/chip=8x8", "e65", "",
		"grid=axb", "e64x3", "e64/c2c=a:b", "grid=-1x4/chip=0x0",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := ParseTopologySpec(spec)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails Validate: %v", spec, err)
		}
		canon := topo.Spec()
		back, err := ParseTopologySpec(canon)
		if err != nil {
			t.Fatalf("canonical spelling %q of accepted spec %q rejected: %v", canon, spec, err)
		}
		if back != topo {
			t.Fatalf("parse/print/parse not a fixpoint: %q -> %+v -> %q -> %+v", spec, topo, canon, back)
		}
		if again := back.Spec(); again != canon {
			t.Fatalf("canonical spelling unstable: %q -> %q", canon, again)
		}
	})
}

// TestNewTopologyAllocsPerCore is the construction allocation
// regression: building a board must stay near-O(cores) in allocations
// as the mesh grows, so the allocs-per-core at 16x16 (4 chips) and
// 32x32 (16 chips, the 1024-core study board) may not exceed ~2x the
// e64 single-chip baseline. A super-linear construction path (per-pair
// routing tables, quadratic link maps) trips this immediately.
func TestNewTopologyAllocsPerCore(t *testing.T) {
	perCore := func(spec string) float64 {
		topo, err := ParseTopologySpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			sinkSys = NewTopology(topo)
		})
		return allocs / float64(topo.NumCores())
	}
	base := perCore("e64") // 8x8, 64 cores
	if base <= 0 {
		t.Fatalf("e64 construction reports %v allocs per core", base)
	}
	for _, spec := range []string{"grid=2x2/chip=8x8", "grid=4x4/chip=8x8"} {
		if pc := perCore(spec); pc > 2*base {
			t.Errorf("%s allocates %.1f per core, more than 2x the e64 baseline %.1f", spec, pc, base)
		}
	}
}
