package system

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"epiphany/internal/names"
	"epiphany/internal/sim"
)

// This file is the parameterized topology grammar: one textual spelling
// for every board the simulator can build, parsed by a single resolver
// that the public API (ParseTopology), the sweep axis (sweep.ParseTopo),
// the serve daemon's JobSpec/SweepPlan and all the CLIs share. The
// grammar:
//
//	e16 | e64 | cluster-2x2          preset boards (TopologyByName)
//	RxC                              ad-hoc single-chip mesh ("4x8")
//	grid=RxC[/chip=RxC]              R x C chips of chip-RxC cores each;
//	                                 /chip= defaults to 8x8 (E64 chips)
//	cluster-RxC                      R x C grid of 4x4 chips (E16-based
//	                                 Parallella clusters, generalizing
//	                                 the cluster-2x2 preset)
//	e16xN | e64xN                    N chips of that device in a square
//	                                 chip grid; N must be a square count
//	                                 (1, 4, 9, 16, ...)
//	<any>/c2c=BYTE:HOP               chip-to-chip eLink timing override
//	<any>/shards=N                   event-engine partition: 1 = single
//	                                 heap, up to one shard per chip
//	                                 (0/absent = auto, one per chip);
//	                                 bit-identical metrics either way
//
// Parsed specs are canonical: dimensions re-render without redundant
// zeros and grid= always carries its /chip= part, so Spec is a fixpoint
// of ParseSpec (ParseSpec(t.Spec()).Spec() == t.Spec()). The canonical
// spelling doubles as the generated Topology's Name, which is what the
// sweep axis keys, the serve cache fingerprints and the Runner's board
// pool identify boards by.

// defaultChipRows/Cols are the chip dimensions a bare grid=RxC spec
// gets: E64-class 8x8 chips, so grid=4x4 reads as "a 4x4 board of the
// paper's devices" (the Epiphany-V-class 1024-core mesh).
const (
	defaultChipRows = 8
	defaultChipCols = 8
)

// clusterChipRows/Cols are the chip dimensions of the cluster-RxC
// alias: 4x4 E16 chips, matching the cluster-2x2 preset it generalizes.
const (
	clusterChipRows = 4
	clusterChipCols = 4
)

// ParseTopologySpec parses the topology grammar above into a validated
// Topology, including the optional /c2c=BYTE:HOP timing-override
// suffix. Preset names resolve to the presets themselves; every other
// spelling yields a Topology whose Name is the spec's canonical form.
// Near-miss spellings get a "did you mean" suggestion naming the
// closest preset or grammar form.
func ParseTopologySpec(spec string) (Topology, error) {
	rest, shards, hasShards := strings.Cut(spec, "/shards=")
	base, c2c, hasC2C := strings.Cut(rest, "/c2c=")
	t, err := parseBaseSpec(base)
	if err != nil {
		return Topology{}, err
	}
	if hasC2C {
		bp, hl, err := ParseC2C(c2c)
		if err != nil {
			return Topology{}, fmt.Errorf("epiphany: topology %q: %v", spec, err)
		}
		t = t.WithC2C(bp, hl)
	}
	if hasShards {
		n, err := strconv.Atoi(shards)
		if err != nil {
			return Topology{}, fmt.Errorf("epiphany: topology %q: bad shard count: %v (the /shards= suffix goes last)", spec, err)
		}
		t = t.WithShards(n)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// ParseC2C parses the BYTE:HOP payload of a /c2c= override into the
// chip-to-chip byte period and hop latency, in sim.Time units. Zero
// components are legal: they keep the calibrated defaults.
func ParseC2C(s string) (bytePeriod, hopLatency sim.Time, err error) {
	bp, hl, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("c2c override must be BYTE:HOP")
	}
	b, err := strconv.ParseUint(bp, 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad c2c byte period: %v", err)
	}
	h, err := strconv.ParseUint(hl, 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad c2c hop latency: %v", err)
	}
	return sim.Time(b), sim.Time(h), nil
}

// parseBaseSpec parses the grammar minus the /c2c= suffix. The returned
// Topology is not yet validated (ParseTopologySpec does that), so zero
// and negative dimensions surface as Validate's "invalid topology"
// error rather than a bespoke one per spelling.
func parseBaseSpec(base string) (Topology, error) {
	if t, ok := TopologyByName(base); ok {
		return t, nil
	}
	switch {
	case strings.HasPrefix(base, "grid="):
		gridPart, chipPart, hasChip := strings.Cut(base[len("grid="):], "/chip=")
		gr, gc, err := parseDims(gridPart)
		if err != nil {
			return Topology{}, fmt.Errorf("epiphany: topology %q: grid=RxC wants the chip grid as ROWSxCOLS: %v", base, err)
		}
		cr, cc := defaultChipRows, defaultChipCols
		if hasChip {
			if cr, cc, err = parseDims(chipPart); err != nil {
				return Topology{}, fmt.Errorf("epiphany: topology %q: /chip=RxC wants the per-chip cores as ROWSxCOLS: %v", base, err)
			}
		}
		return gridTopology(gr, gc, cr, cc), nil
	case strings.HasPrefix(base, "cluster-"):
		gr, gc, err := parseDims(base[len("cluster-"):])
		if err != nil {
			return Topology{}, fmt.Errorf("epiphany: topology %q: cluster-RxC wants the board grid as ROWSxCOLS: %v", base, err)
		}
		t := gridTopology(gr, gc, clusterChipRows, clusterChipCols)
		t.Name = fmt.Sprintf("cluster-%dx%d", gr, gc)
		return t, nil
	case strings.HasPrefix(base, "e16x"), strings.HasPrefix(base, "e64x"):
		side := 4
		if base[1] == '6' {
			side = 8
		}
		n, err := strconv.Atoi(base[len("e16x"):])
		if err != nil || n <= 0 {
			return Topology{}, fmt.Errorf("epiphany: topology %q: %sN wants a positive chip count", base, base[:4])
		}
		g := intSqrt(n)
		if g*g != n {
			return Topology{}, fmt.Errorf("epiphany: topology %q: %sN arranges N chips in a square grid, so N must be a square count (1, 4, 9, 16, ...); spell rectangular boards grid=RxC/chip=%dx%d",
				base, base[:4], side, side)
		}
		t := gridTopology(g, g, side, side)
		t.Name = fmt.Sprintf("%s%d", base[:4], n)
		return t, nil
	}
	if r, c, err := parseDims(base); err == nil {
		return SingleChip(r, c), nil
	}
	return Topology{}, unknownSpec(base)
}

// gridTopology builds the named parameterized board, resolving the
// canonical grid= spelling as its Name. A 1x1 grid is a genuine
// single-chip device, but keeps its grid= name: the parameterized path
// is pinned against the preset goldens by the conformance harness, not
// silently aliased onto them.
func gridTopology(gridRows, gridCols, chipRows, chipCols int) Topology {
	return Topology{
		Name:         fmt.Sprintf("grid=%dx%d/chip=%dx%d", gridRows, gridCols, chipRows, chipCols),
		ChipGridRows: gridRows, ChipGridCols: gridCols,
		CoreRows: chipRows, CoreCols: chipCols,
	}
}

// Spec renders the topology's canonical grammar spelling: its Name when
// it has one (presets and every ParseTopologySpec product), otherwise
// the geometry ("RxC" single-chip, "grid=RxC/chip=RxC" boards), plus
// the /c2c= suffix when the link timing is overridden. For topologies
// expressible in the grammar, ParseTopologySpec(t.Spec()) reproduces t
// (minus the Power/DVFS energy axes, which are spelled separately).
func (t Topology) Spec() string {
	base := t.Name
	if base == "" {
		if t.MultiChip() || t.ChipGridRows > 1 || t.ChipGridCols > 1 {
			base = fmt.Sprintf("grid=%dx%d/chip=%dx%d", t.ChipGridRows, t.ChipGridCols, t.CoreRows, t.CoreCols)
		} else {
			base = fmt.Sprintf("%dx%d", t.CoreRows, t.CoreCols)
		}
	}
	if t.C2CBytePeriod > 0 || t.C2CHopLatency > 0 {
		base += fmt.Sprintf("/c2c=%d:%d", t.C2CBytePeriod, t.C2CHopLatency)
	}
	if t.Shards > 0 {
		base += fmt.Sprintf("/shards=%d", t.Shards)
	}
	return base
}

// parseDims parses a "RxC" dimension pair. Range checks are left to
// Topology.Validate.
func parseDims(s string) (rows, cols int, err error) {
	r, c, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("want ROWSxCOLS")
	}
	rows, errR := strconv.Atoi(r)
	cols, errC := strconv.Atoi(c)
	if errR != nil || errC != nil {
		return 0, 0, fmt.Errorf("want integer ROWSxCOLS, got %q", s)
	}
	return rows, cols, nil
}

// intSqrt returns the integer square root of n (floor). The float
// seed plus division-form adjustments keep it exact and O(1) for any
// int - squaring the candidate could overflow for adversarial chip
// counts like e64x9223372036854775807.
func intSqrt(n int) int {
	if n <= 0 {
		return 0
	}
	g := int(math.Sqrt(float64(n)))
	for g > 0 && g > n/g {
		g--
	}
	for g+1 <= n/(g+1) {
		g++
	}
	return g
}

// specCandidates are the spellings "did you mean" measures typos
// against: every preset plus one representative of each grammar form.
func specCandidates() []string {
	out := make([]string, 0, len(Topologies())+4)
	for _, t := range Topologies() {
		out = append(out, t.Name)
	}
	return append(out, "cluster-4x4", "e16x4", "e64x16", "grid=4x4/chip=8x8")
}

// unknownSpec is the error an unrecognized spelling gets: a suggestion
// when something is close, and the whole grammar either way.
func unknownSpec(base string) error {
	return fmt.Errorf("epiphany: unknown topology spec %q%s; accepted: presets (e16, e64, cluster-2x2), RxC single-chip meshes, grid=RxC[/chip=RxC] boards, cluster-RxC, e16xN/e64xN chip arrays, all with an optional /c2c=BYTE:HOP suffix",
		base, names.DidYouMean(base, specCandidates()))
}
