package system

import "testing"

// sinkSys keeps the constructed System live across iterations.
var sinkSys *System

func benchConstruct(b *testing.B, t Topology) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSys = NewTopology(t)
	}
}

func BenchmarkSystemConstructionE64(b *testing.B) { benchConstruct(b, E64) }

func BenchmarkSystemConstructionCluster2x2(b *testing.B) {
	benchConstruct(b, Cluster2x2)
}

// benchConstructSpec benchmarks board construction for a grammar spec
// - the growth axis of the scaling study: construction must stay
// near-O(cores), which TestNewTopologyAllocsPerCore enforces and
// BENCH_7.json records.
func benchConstructSpec(b *testing.B, spec string) {
	topo, err := ParseTopologySpec(spec)
	if err != nil {
		b.Fatal(err)
	}
	benchConstruct(b, topo)
}

func BenchmarkSystemConstructionGrid16x16(b *testing.B) {
	benchConstructSpec(b, "grid=2x2/chip=8x8")
}

func BenchmarkSystemConstructionGrid32x32(b *testing.B) {
	benchConstructSpec(b, "grid=4x4/chip=8x8")
}
