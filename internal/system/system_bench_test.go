package system

import "testing"

// sinkSys keeps the constructed System live across iterations.
var sinkSys *System

func benchConstruct(b *testing.B, t Topology) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkSys = NewTopology(t)
	}
}

func BenchmarkSystemConstructionE64(b *testing.B) { benchConstruct(b, E64) }

func BenchmarkSystemConstructionCluster2x2(b *testing.B) {
	benchConstruct(b, Cluster2x2)
}
