package system

import (
	"epiphany/internal/power"
	"epiphany/internal/sim"
)

// EnergyCounters snapshots the board's event-sourced activity counters
// for the energy model: per-core active cycles and flops, scratchpad
// and shared-DRAM bytes, on-chip mesh byte-hops, off-chip eLink bytes
// (both directions) and chip-to-chip crossing bytes. elapsed is the
// run's simulated duration (the idle-cycle and leakage window). The
// counters accrue unconditionally on the fabric's hot paths - as bare
// integer increments, never allocations - so capturing them here is a
// pure read: a run looks exactly the same whether or not anyone asks
// for its energy.
func (s *System) EnergyCounters(elapsed sim.Time) power.Counters {
	fab := s.chip.Fabric()
	var active sim.Time
	var flops uint64
	for i := 0; i < s.chip.NumCores(); i++ {
		c := s.chip.Core(i)
		compute, _, _ := c.Activity()
		active += compute
		flops += c.Flops()
	}
	var sramBytes uint64
	for _, sram := range fab.SRAMs {
		sramBytes += sram.AccessedBytes()
	}
	return power.Counters{
		Cores:         s.chip.NumCores(),
		ElapsedCycles: elapsed.CoreCycles(),
		ActiveCycles:  active.CoreCycles(),
		Flops:         flops,
		SRAMBytes:     sramBytes,
		DRAMBytes:     fab.DRAM.AccessedBytes(),
		MeshByteHops:  fab.Mesh.HopBytes(),
		ELinkBytes:    fab.ELink.TotalServedBytes() + fab.ELinkReadBytes(),
		C2CBytes:      fab.Mesh.CrossBytes() + fab.Mesh.CrossReadBytes(),
	}
}
