package system

import (
	"strings"
	"testing"

	"epiphany/internal/core"
)

func tinyStencil() core.StencilConfig {
	return core.StencilConfig{
		Rows: 4, Cols: 4, Iters: 2, GroupRows: 2, GroupCols: 2,
		Comm: true, Seed: 9,
	}
}

func TestAcquireRefusesReuse(t *testing.T) {
	s := New()
	if err := s.Acquire(); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	err := s.Acquire()
	if err == nil {
		t.Fatal("second Acquire on the same System succeeded")
	}
	if !strings.Contains(err.Error(), "one experiment") {
		t.Fatalf("reuse error %q does not explain the single-use contract", err)
	}
}

func TestDeprecatedShimsDelegateAndAcquire(t *testing.T) {
	// Each shim must produce the exact result the workload path produces
	// on a fresh board, and must consume the System.
	direct, err := core.RunStencil(New().Host(), tinyStencil())
	if err != nil {
		t.Fatal(err)
	}
	sys := New()
	shim, err := sys.RunStencil(tinyStencil())
	if err != nil {
		t.Fatal(err)
	}
	if shim.Elapsed != direct.Elapsed || shim.GFLOPS != direct.GFLOPS {
		t.Fatalf("shim result %v/%v differs from core.RunStencil %v/%v",
			shim.Elapsed, shim.GFLOPS, direct.Elapsed, direct.GFLOPS)
	}
	if _, err := sys.RunStencil(tinyStencil()); err == nil {
		t.Fatal("second run on a used System succeeded")
	}

	mcfg := core.MatmulConfig{M: 16, N: 16, K: 16, G: 2, Verify: true, Seed: 3}
	mdirect, err := core.RunMatmul(New().Host(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	msys := New()
	mshim, err := msys.RunMatmul(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if mshim.Elapsed != mdirect.Elapsed {
		t.Fatalf("matmul shim elapsed %v, want %v", mshim.Elapsed, mdirect.Elapsed)
	}
	if _, err := msys.RunMatmul(mcfg); err == nil {
		t.Fatal("matmul shim reused a System")
	}

	scfg := core.StreamStencilConfig{
		GlobalRows: 32, GlobalCols: 32, BlockRows: 8, BlockCols: 8,
		Iters: 2, TBlock: 1, GroupRows: 2, GroupCols: 2, Seed: 5,
	}
	sdirect, err := core.RunStreamStencil(New().Host(), scfg)
	if err != nil {
		t.Fatal(err)
	}
	ssys := New()
	sshim, err := ssys.RunStreamStencil(scfg)
	if err != nil {
		t.Fatal(err)
	}
	if sshim.Elapsed != sdirect.Elapsed {
		t.Fatalf("stream shim elapsed %v, want %v", sshim.Elapsed, sdirect.Elapsed)
	}
	if _, err := ssys.RunStreamStencil(scfg); err == nil {
		t.Fatal("stream shim reused a System")
	}
}

func TestShimsRefuseInvalidConfigs(t *testing.T) {
	s := New()
	if _, err := s.RunStencil(core.StencilConfig{}); err == nil {
		t.Fatal("zero stencil config accepted")
	}
}

func TestNewTopologyGeometry(t *testing.T) {
	cases := []struct {
		topo              Topology
		rows, cols, chips int
	}{
		{E16, 4, 4, 1},
		{E64, 8, 8, 1},
		{Cluster2x2, 8, 8, 4},
		{SingleChip(2, 3), 2, 3, 1},
	}
	for _, c := range cases {
		s := NewTopology(c.topo)
		m := s.Chip().Map()
		if m.Rows != c.rows || m.Cols != c.cols || m.NumChips() != c.chips {
			t.Errorf("%v: board %dx%d/%d chips, want %dx%d/%d",
				c.topo, m.Rows, m.Cols, m.NumChips(), c.rows, c.cols, c.chips)
		}
		if s.Engine() == nil || s.Host() == nil {
			t.Errorf("%v: missing engine or host", c.topo)
		}
	}
}

func TestTopologyValidateAndLookup(t *testing.T) {
	if err := (Topology{}).Validate(); err == nil {
		t.Error("zero topology validated")
	}
	if err := (Topology{ChipGridRows: 8, ChipGridCols: 1, CoreRows: 8, CoreCols: 8}).Validate(); err == nil {
		t.Error("64-row board fits nowhere in the 64x64 space at origin 32")
	}
	for _, want := range []string{"e16", "e64", "cluster-2x2"} {
		got, ok := TopologyByName(want)
		if !ok || got.Name != want {
			t.Errorf("TopologyByName(%q) = %v, %v", want, got, ok)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", want, err)
		}
	}
	if _, ok := TopologyByName("e9000"); ok {
		t.Error("unknown topology resolved")
	}
	if !Cluster2x2.MultiChip() || E64.MultiChip() {
		t.Error("MultiChip misclassifies the presets")
	}
}

func TestNewWorkgroupSpansChips(t *testing.T) {
	s := NewTopology(Cluster2x2)
	if _, err := s.NewWorkgroup(0, 0, 8, 8); err != nil {
		t.Fatalf("board-spanning workgroup refused: %v", err)
	}
	if _, err := s.NewWorkgroup(0, 0, 9, 8); err == nil {
		t.Fatal("workgroup larger than the board accepted")
	}
}

// TestResetRecyclesBitIdentically is the System-level recycling
// contract: Reset returns a used board to a state indistinguishable
// from a fresh one, so the same experiment replays byte-identically -
// results, statistics and all.
func TestResetRecyclesBitIdentically(t *testing.T) {
	fresh, err := New().RunStencil(tinyStencil())
	if err != nil {
		t.Fatal(err)
	}

	sys := New()
	if _, err := sys.RunStencil(tinyStencil()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Reset(); err != nil {
		t.Fatalf("Reset after a clean run: %v", err)
	}
	if now := sys.Engine().Now(); now != 0 {
		t.Fatalf("recycled engine starts at t=%v", now)
	}
	again, err := sys.RunStencil(tinyStencil())
	if err != nil {
		t.Fatalf("run on recycled System: %v", err)
	}
	if again.Elapsed != fresh.Elapsed || again.GFLOPS != fresh.GFLOPS {
		t.Fatalf("recycled run %v/%v, fresh run %v/%v",
			again.Elapsed, again.GFLOPS, fresh.Elapsed, fresh.GFLOPS)
	}

	// A different experiment on the recycled board also matches fresh.
	mcfg := core.MatmulConfig{M: 16, N: 16, K: 16, G: 2, Verify: true, Seed: 3}
	mfresh, err := New().RunMatmul(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Reset(); err != nil {
		t.Fatal(err)
	}
	magain, err := sys.RunMatmul(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if magain.Elapsed != mfresh.Elapsed || magain.GFLOPS != mfresh.GFLOPS {
		t.Fatalf("recycled matmul %v/%v, fresh %v/%v",
			magain.Elapsed, magain.GFLOPS, mfresh.Elapsed, mfresh.GFLOPS)
	}
}

func TestResetClearsAcquire(t *testing.T) {
	s := New()
	if err := s.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(); err != nil {
		t.Fatalf("Acquire after Reset: %v", err)
	}
}

func TestNewTopologyAppliesC2COverrides(t *testing.T) {
	// The override reaches the mesh: a cluster board built from an
	// overridden topology reports the overridden link timing, a default
	// one the calibrated constants.
	slow := Cluster2x2.WithC2C(40, 600)
	if err := slow.Validate(); err != nil {
		t.Fatal(err)
	}
	if bp, hl := NewTopology(slow).Chip().Fabric().Mesh.C2C(); bp != 40 || hl != 600 {
		t.Fatalf("overridden board C2C = (%v, %v), want (40, 600)", bp, hl)
	}
	bp0, hl0 := NewTopology(Cluster2x2).Chip().Fabric().Mesh.C2C()
	if bp0 == 40 || hl0 == 600 {
		t.Fatalf("default board C2C = (%v, %v), matches the override", bp0, hl0)
	}

	// Overrides are board identity: distinct values compare unequal (the
	// Runner's per-worker pool keys on this), and String surfaces them.
	if slow == Cluster2x2 {
		t.Fatal("overridden topology compares equal to the preset")
	}
	if s := slow.String(); !strings.Contains(s, "c2c byte=40 hop=600") {
		t.Fatalf("String() %q does not surface the override", s)
	}
	if s := Cluster2x2.String(); strings.Contains(s, "c2c") {
		t.Fatalf("preset String() %q mentions an override", s)
	}

	// Out-of-range overrides are rejected without building a board.
	bad := Cluster2x2.WithC2C(2_000_000_000_000, 0)
	if err := bad.Validate(); err == nil {
		t.Fatal("absurd C2C override validated")
	}
}

func TestClusterC2COverrideChangesCrossingCosts(t *testing.T) {
	// The same cross-chip workload priced under a slower chip-to-chip
	// link must spend strictly more crossing time; a single-chip board
	// must ignore the override entirely.
	cfg := core.StreamStencilConfig{
		GlobalRows: 32, GlobalCols: 32, BlockRows: 8, BlockCols: 8,
		Iters: 2, TBlock: 1, GroupRows: 4, GroupCols: 4, Seed: 7,
	}
	run := func(topo Topology) core.Metrics {
		res, err := NewTopology(topo).RunStreamStencil(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics()
	}
	base := run(Cluster2x2)
	slow := run(Cluster2x2.WithC2C(50, 0))
	if base.ELinkCrossings == 0 {
		t.Fatal("cluster run crossed no chip boundaries; the workload does not exercise the override")
	}
	if slow.ELinkCrossings != base.ELinkCrossings {
		t.Fatalf("crossing count changed with link speed: %d vs %d", slow.ELinkCrossings, base.ELinkCrossings)
	}
	if slow.ELinkCrossTime <= base.ELinkCrossTime {
		t.Fatalf("10x slower link crossing time %v not above calibrated %v", slow.ELinkCrossTime, base.ELinkCrossTime)
	}
	if slow.Elapsed <= base.Elapsed {
		t.Fatalf("10x slower link elapsed %v not above calibrated %v", slow.Elapsed, base.Elapsed)
	}
	single := run(E64.WithC2C(50, 600))
	def := run(E64)
	if single != def {
		t.Fatalf("single-chip metrics changed under a C2C override:\n %+v\n %+v", single, def)
	}
}
