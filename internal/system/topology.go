package system

import (
	"fmt"

	"epiphany/internal/mem"
)

// Topology describes the simulated fabric a System is built on: a board
// of ChipGridRows x ChipGridCols Epiphany chips, each CoreRows x
// CoreCols cores, glued into one mesh through chip-to-chip eLinks. A
// 1x1 chip grid is an ordinary single-chip device; larger grids model
// multi-board setups such as Parallella clusters, where hops that cross
// a chip boundary pay the off-chip eLink's lower bandwidth and share it
// through its merge arbiter.
type Topology struct {
	// Name identifies the topology in listings and options ("e64",
	// "cluster-2x2", ...). Ad-hoc topologies may leave it empty.
	Name string
	// ChipGridRows, ChipGridCols are the chips on the board.
	ChipGridRows, ChipGridCols int
	// CoreRows, CoreCols are the cores per chip.
	CoreRows, CoreCols int
}

// Preset topologies. E64 is the paper's device and the default
// everywhere a topology is not given.
var (
	// E16 is a single Epiphany-III E16G301: one 4x4 chip.
	E16 = Topology{Name: "e16", ChipGridRows: 1, ChipGridCols: 1, CoreRows: 4, CoreCols: 4}
	// E64 is a single Epiphany-IV E64G401: one 8x8 chip (the default).
	E64 = Topology{Name: "e64", ChipGridRows: 1, ChipGridCols: 1, CoreRows: 8, CoreCols: 8}
	// Cluster2x2 is a 2x2 cluster of Parallella boards (one E16 each):
	// four 4x4 chips forming an 8x8 core mesh with chip-to-chip eLink
	// boundaries after row 3 and column 3.
	Cluster2x2 = Topology{Name: "cluster-2x2", ChipGridRows: 2, ChipGridCols: 2, CoreRows: 4, CoreCols: 4}
)

// SingleChip returns the topology of one rows x cols chip.
func SingleChip(rows, cols int) Topology {
	return Topology{ChipGridRows: 1, ChipGridCols: 1, CoreRows: rows, CoreCols: cols}
}

// Topologies lists the preset topologies in scaling order.
func Topologies() []Topology { return []Topology{E16, E64, Cluster2x2} }

// TopologyByName looks up a preset topology.
func TopologyByName(name string) (Topology, bool) {
	for _, t := range Topologies() {
		if t.Name == name {
			return t, true
		}
	}
	return Topology{}, false
}

// Rows returns the total core rows of the board mesh.
func (t Topology) Rows() int { return t.ChipGridRows * t.CoreRows }

// Cols returns the total core columns of the board mesh.
func (t Topology) Cols() int { return t.ChipGridCols * t.CoreCols }

// NumChips returns the chips on the board.
func (t Topology) NumChips() int { return t.ChipGridRows * t.ChipGridCols }

// NumCores returns the total core count.
func (t Topology) NumCores() int { return t.Rows() * t.Cols() }

// MultiChip reports whether any mesh route can cross a chip boundary.
func (t Topology) MultiChip() bool { return t.NumChips() > 1 }

// String renders the geometry for listings.
func (t Topology) String() string {
	name := t.Name
	if name == "" {
		name = "custom"
	}
	if !t.MultiChip() {
		return fmt.Sprintf("%s: 1 chip, %dx%d cores", name, t.CoreRows, t.CoreCols)
	}
	return fmt.Sprintf("%s: %dx%d chips of %dx%d cores (%dx%d mesh)",
		name, t.ChipGridRows, t.ChipGridCols, t.CoreRows, t.CoreCols, t.Rows(), t.Cols())
}

// Validate checks the geometry without building a board.
func (t Topology) Validate() error {
	if t.ChipGridRows <= 0 || t.ChipGridCols <= 0 || t.CoreRows <= 0 || t.CoreCols <= 0 {
		return fmt.Errorf("epiphany: invalid topology %dx%d chips of %dx%d cores",
			t.ChipGridRows, t.ChipGridCols, t.CoreRows, t.CoreCols)
	}
	if mem.FirstRow+t.Rows() > 64 || mem.FirstCol+t.Cols() > 64 {
		return fmt.Errorf("epiphany: %dx%d board does not fit the 64x64 mesh address space at origin (%d,%d)",
			t.Rows(), t.Cols(), mem.FirstRow, mem.FirstCol)
	}
	return nil
}
