package system

import (
	"fmt"

	"epiphany/internal/mem"
	"epiphany/internal/power"
	"epiphany/internal/sim"
)

// Topology describes the simulated fabric a System is built on: a board
// of ChipGridRows x ChipGridCols Epiphany chips, each CoreRows x
// CoreCols cores, glued into one mesh through chip-to-chip eLinks. A
// 1x1 chip grid is an ordinary single-chip device; larger grids model
// multi-board setups such as Parallella clusters, where hops that cross
// a chip boundary pay the off-chip eLink's lower bandwidth and share it
// through its merge arbiter.
type Topology struct {
	// Name identifies the topology in listings and options ("e64",
	// "cluster-2x2", ...). Ad-hoc topologies may leave it empty.
	Name string
	// ChipGridRows, ChipGridCols are the chips on the board.
	ChipGridRows, ChipGridCols int
	// CoreRows, CoreCols are the cores per chip.
	CoreRows, CoreCols int
	// C2CBytePeriod and C2CHopLatency override the chip-to-chip eLink
	// timing on multi-chip boards: the per-byte serialization period and
	// the per-crossing head latency, in sim.Time units (1/3 ns). Zero
	// keeps the calibrated defaults (noc.C2CBytePeriod = 5, one byte per
	// core cycle at the raw 600 MB/s link rate; noc.C2CHopLatency = 60,
	// 12 core cycles). Overrides are part of the topology's identity:
	// two Topology values with different overrides describe different
	// boards, are pooled separately by Runner, and may be swept as an
	// experiment axis. They have no effect on a single-chip board.
	C2CBytePeriod sim.Time
	C2CHopLatency sim.Time
	// Power names the power-model preset (power.ModelByName) used to
	// derive energy metrics from the run's activity counters; empty
	// means no energy accounting. DVFS selects the operating point the
	// derivation is evaluated at - "FREQ[MHz]@VOLT[V]" or "nominal";
	// empty means the model's nominal point; it requires Power. Like
	// the C2C overrides, both are part of the topology's identity (a
	// board metered under a different model or clocked at a different
	// point is a different experiment axis value, pooled separately by
	// Runner) - but neither perturbs the simulation itself: the
	// time-domain metrics of a run are bit-identical with any Power and
	// DVFS setting, because energy is derived from counters after the
	// fact.
	Power string
	DVFS  string
	// Shards selects the event-engine partition of a multi-chip board:
	// 0 (auto) gives every chip its own shard - the layout that lets
	// SetWorkers run chips concurrently; 1 runs the whole board on the
	// single classic event heap; 2..NumChips group the chips
	// contiguously onto that many shards. Every value executes the same
	// canonical event schedule, so Metrics are bit-identical across
	// shard counts (the determinism suite pins this); the field is still
	// part of the topology's identity because the partition is
	// structural - it must be fixed before the first event - and so a
	// pooled board keeps its shard layout across recycles. Single-chip
	// boards always run on one shard.
	Shards int
}

// Preset topologies. E64 is the paper's device and the default
// everywhere a topology is not given.
var (
	// E16 is a single Epiphany-III E16G301: one 4x4 chip.
	E16 = Topology{Name: "e16", ChipGridRows: 1, ChipGridCols: 1, CoreRows: 4, CoreCols: 4}
	// E64 is a single Epiphany-IV E64G401: one 8x8 chip (the default).
	E64 = Topology{Name: "e64", ChipGridRows: 1, ChipGridCols: 1, CoreRows: 8, CoreCols: 8}
	// Cluster2x2 is a 2x2 cluster of Parallella boards (one E16 each):
	// four 4x4 chips forming an 8x8 core mesh with chip-to-chip eLink
	// boundaries after row 3 and column 3.
	Cluster2x2 = Topology{Name: "cluster-2x2", ChipGridRows: 2, ChipGridCols: 2, CoreRows: 4, CoreCols: 4}
)

// SingleChip returns the topology of one rows x cols chip.
func SingleChip(rows, cols int) Topology {
	return Topology{ChipGridRows: 1, ChipGridCols: 1, CoreRows: rows, CoreCols: cols}
}

// Topologies lists the preset topologies in scaling order.
func Topologies() []Topology { return []Topology{E16, E64, Cluster2x2} }

// TopologyByName looks up a preset topology.
func TopologyByName(name string) (Topology, bool) {
	for _, t := range Topologies() {
		if t.Name == name {
			return t, true
		}
	}
	return Topology{}, false
}

// Rows returns the total core rows of the board mesh.
func (t Topology) Rows() int { return t.ChipGridRows * t.CoreRows }

// Cols returns the total core columns of the board mesh.
func (t Topology) Cols() int { return t.ChipGridCols * t.CoreCols }

// NumChips returns the chips on the board.
func (t Topology) NumChips() int { return t.ChipGridRows * t.ChipGridCols }

// NumCores returns the total core count.
func (t Topology) NumCores() int { return t.Rows() * t.Cols() }

// MultiChip reports whether any mesh route can cross a chip boundary.
func (t Topology) MultiChip() bool { return t.NumChips() > 1 }

// WithC2C returns a copy of t with the chip-to-chip eLink timing
// overridden (zero arguments keep the calibrated defaults). The copy is
// a distinct board identity; see the field documentation.
func (t Topology) WithC2C(bytePeriod, hopLatency sim.Time) Topology {
	t.C2CBytePeriod, t.C2CHopLatency = bytePeriod, hopLatency
	return t
}

// WithShards returns a copy of t with the event-engine partition set:
// 0 auto (one shard per chip), 1 the classic single heap, k in
// [2, NumChips] a contiguous grouping of chips onto k shards. The copy
// is a distinct board identity (the partition is structural); the
// metrics it produces are not - they are bit-identical for every value.
func (t Topology) WithShards(n int) Topology {
	t.Shards = n
	return t
}

// WithPower returns a copy of t carrying the named power-model preset
// and DVFS operating point ("" = the model's nominal). The copy is a
// distinct experiment-axis identity; see the field documentation.
func (t Topology) WithPower(model, dvfs string) Topology {
	t.Power, t.DVFS = model, dvfs
	return t
}

// String renders the geometry for listings.
func (t Topology) String() string {
	name := t.Name
	if name == "" {
		name = "custom"
	}
	if !t.MultiChip() {
		return fmt.Sprintf("%s: 1 chip, %dx%d cores", name, t.CoreRows, t.CoreCols) + t.powerSuffix()
	}
	s := fmt.Sprintf("%s: %dx%d chips of %dx%d cores (%dx%d mesh)",
		name, t.ChipGridRows, t.ChipGridCols, t.CoreRows, t.CoreCols, t.Rows(), t.Cols())
	// Only overridden fields are shown: a zero keeps the calibrated
	// default, and printing "hop=0" would read as free crossings.
	switch {
	case t.C2CBytePeriod > 0 && t.C2CHopLatency > 0:
		s += fmt.Sprintf(" [c2c byte=%d hop=%d]", t.C2CBytePeriod, t.C2CHopLatency)
	case t.C2CBytePeriod > 0:
		s += fmt.Sprintf(" [c2c byte=%d]", t.C2CBytePeriod)
	case t.C2CHopLatency > 0:
		s += fmt.Sprintf(" [c2c hop=%d]", t.C2CHopLatency)
	}
	if t.Shards > 0 {
		s += fmt.Sprintf(" [shards=%d]", t.Shards)
	}
	return s + t.powerSuffix()
}

// powerSuffix renders the energy-axis identity for String.
func (t Topology) powerSuffix() string {
	switch {
	case t.Power != "" && t.DVFS != "":
		return fmt.Sprintf(" [power=%s dvfs=%s]", t.Power, t.DVFS)
	case t.Power != "":
		return fmt.Sprintf(" [power=%s]", t.Power)
	}
	return ""
}

// Validate checks the geometry without building a board.
func (t Topology) Validate() error {
	if t.ChipGridRows <= 0 || t.ChipGridCols <= 0 || t.CoreRows <= 0 || t.CoreCols <= 0 {
		return fmt.Errorf("epiphany: invalid topology %dx%d chips of %dx%d cores",
			t.ChipGridRows, t.ChipGridCols, t.CoreRows, t.CoreCols)
	}
	// Cap each factor before multiplying: with all four at most 64 the
	// products below cannot overflow, so absurd parsed dimensions
	// (9223372036854775807x1) fail here instead of wrapping around the
	// fit check.
	if t.ChipGridRows > 64 || t.ChipGridCols > 64 || t.CoreRows > 64 || t.CoreCols > 64 ||
		mem.FirstRow+t.Rows() > 64 || mem.FirstCol+t.Cols() > 64 {
		return fmt.Errorf("epiphany: %dx%d board does not fit the 64x64 mesh address space at origin (%d,%d)",
			min(t.ChipGridRows, 64)*min(t.CoreRows, 64), min(t.ChipGridCols, 64)*min(t.CoreCols, 64),
			mem.FirstRow, mem.FirstCol)
	}
	// sim.Time is unsigned, so "negative" overrides cannot be expressed;
	// guard instead against absurd values that would overflow the
	// store-and-forward arithmetic (a full second per byte is already
	// nine orders of magnitude beyond any physical link).
	if t.C2CBytePeriod > sim.Second || t.C2CHopLatency > sim.Second {
		return fmt.Errorf("epiphany: chip-to-chip override out of range (byte=%d hop=%d units; max %d)",
			t.C2CBytePeriod, t.C2CHopLatency, sim.Second)
	}
	if t.Shards < 0 || t.Shards > t.NumChips() {
		return fmt.Errorf("epiphany: shard count %d out of range for a %d-chip board (0 = auto, 1 = single heap, up to one per chip)",
			t.Shards, t.NumChips())
	}
	if t.DVFS != "" && t.Power == "" {
		return fmt.Errorf("epiphany: DVFS point %q requires a power model", t.DVFS)
	}
	if t.Power != "" {
		m, err := power.ResolveModel(t.Power)
		if err != nil {
			return err
		}
		if _, err := m.Point(t.DVFS); err != nil {
			return err
		}
	}
	return nil
}
