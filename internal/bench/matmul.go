package bench

import (
	"context"
	"fmt"

	"epiphany/internal/core"
	"epiphany/internal/power"
	"epiphany/internal/sim"
	"epiphany/internal/workload"
)

// runMatmul executes one configuration through the workload API on a
// fresh system, panicking on configuration errors.
func runMatmul(cfg core.MatmulConfig) *core.MatmulResult {
	res, err := workload.Run(context.Background(), &workload.Matmul{Config: cfg})
	if err != nil {
		panic(err)
	}
	return res.(*core.MatmulResult)
}

// Table4 reproduces Table IV: single-core matmul performance by block
// size (0.85 GFLOPS at 8^3 rising to 1.15 at 32^3).
func Table4() *Table {
	t := &Table{
		ID:     "Table IV",
		Title:  "Matmul single-core floating-point performance",
		Header: []string{"matrix", "GFLOPS", "% of peak"},
	}
	for _, n := range []int{8, 16, 20, 24, 32} {
		res := runMatmul(core.MatmulConfig{M: n, N: n, K: n, G: 1, Tuned: true})
		t.AddRow(fmt.Sprintf("%d x %d", n, n), f2(res.GFLOPS), f1(res.PctPeak))
	}
	t.AddNote("paper: 0.85 (70.5%%) at 8x8 to 1.15 (95.9%%) at 32x32")
	return t
}

// Table5 reproduces Table V: on-chip multi-core performance for each
// per-core block size on 2x2, 4x4 and 8x8 workgroups.
func Table5() *Table {
	t := &Table{
		ID:     "Table V",
		Title:  "Matmul multi-core on-chip floating-point performance",
		Header: []string{"per-core C", "2x2 GF", "2x2 %", "4x4 GF", "4x4 %", "8x8 GF", "8x8 %"},
	}
	for _, blk := range []int{8, 16, 20, 24, 32} {
		row := []string{fmt.Sprintf("%d x %d", blk, blk)}
		for _, g := range []int{2, 4, 8} {
			res := runMatmul(core.MatmulConfig{
				M: g * blk, N: g * blk, K: g * blk, G: g, Tuned: true,
			})
			row = append(row, f2(res.GFLOPS), f1(res.PctPeak))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper at 32x32: 4.06 (84.7%%) / 16.27 (84.7%%) / 65.32 (85.1%%)")
	return t
}

// Table6 reproduces Table VI: off-chip matmul for matrices too large for
// on-chip memory, with the compute/transfer decomposition.
func Table6(includeLarge bool) *Table {
	t := &Table{
		ID:     "Table VI",
		Title:  "Off-chip matmul performance (paged through shared DRAM)",
		Header: []string{"matrix C", "GFLOPS", "% of peak", "% compute", "% transfers", "GFLOPS/W"},
	}
	type row struct{ G, edge int }
	sizes := []row{{512, 0}, {1024, 0}}
	if includeLarge {
		// The paper used 24x24 per-core tiles for 1536 ("to build the
		// result for the large matrix size 1536x1536, a per-core size of
		// 24x24 is used and hence the overall performance ... is a bit
		// worse").
		sizes = append(sizes, row{1536, 24})
	}
	for _, s := range sizes {
		res := runMatmul(core.MatmulConfig{
			M: s.G, N: s.G, K: s.G, G: 8,
			OffChip: true, OffChipEdge: s.edge, Tuned: true,
		})
		t.AddRow(fmt.Sprintf("%d x %d", s.G, s.G), f2(res.GFLOPS), f1(res.PctPeak),
			f1(res.PctCompute()), f1(res.PctTransfer()),
			f2(power.GFLOPSPerWatt(res.GFLOPS)))
	}
	t.AddNote("paper: 8.32 / 8.52 / 6.34 GFLOPS with 87.2 / 86.9 / 89.1%% in shared-memory transfers")
	if !includeLarge {
		t.AddNote("1536x1536 row skipped (enable with -large; it pages 24-wide tiles and runs longer)")
	}
	return t
}

// matmulLadder is the square-workgroup progression.
var matmulLadder = []int{1, 2, 4, 8}

// Fig14 reproduces Figure 14: matmul weak scaling for two problem
// families with constant per-core flops (see EXPERIMENTS.md for the
// interpolation between the paper's stated endpoints).
func Fig14() *Table {
	t := &Table{
		ID:     "Figure 14",
		Title:  "Matmul weak scaling (time vs cores, M x N x K shown)",
		Header: []string{"cores", "config", "problem A", "time A (us)", "problem B", "time B (us)"},
	}
	famA := map[int][3]int{1: {16, 16, 32}, 2: {32, 32, 32}, 4: {64, 64, 32}, 8: {64, 128, 64}}
	famB := map[int][3]int{1: {64, 32, 32}, 2: {64, 64, 64}, 4: {128, 128, 64}, 8: {128, 256, 128}}
	for _, g := range matmulLadder {
		a, b := famA[g], famB[g]
		ra := runMatmul(core.MatmulConfig{M: a[0], N: a[1], K: a[2], G: g, Tuned: true})
		rb := runMatmul(core.MatmulConfig{M: b[0], N: b[1], K: b[2], G: g, Tuned: true})
		t.AddRow(fmt.Sprint(g*g), fmt.Sprintf("%dx%d", g, g),
			fmt.Sprintf("%dx%dx%d", a[0], a[1], a[2]), f1(ra.Elapsed.Seconds()*1e6),
			fmt.Sprintf("%dx%dx%d", b[0], b[1], b[2]), f1(rb.Elapsed.Seconds()*1e6))
	}
	t.AddNote("paper: time rises when communication first appears, then levels out")
	return t
}

// Fig15 reproduces Figure 15: matmul strong scaling for four fixed
// problem sizes, with speedups relative to each problem's smallest
// feasible workgroup.
func Fig15() *Table {
	t := &Table{
		ID:     "Figure 15",
		Title:  "Matmul strong scaling: speedup vs smallest feasible group",
		Header: []string{"cores", "config", "32^3", "64^3", "96^3", "128^3"},
	}
	sizes := []int{32, 64, 96, 128}
	base := make(map[int]sim.Time)
	for _, g := range matmulLadder {
		row := []string{fmt.Sprint(g * g), fmt.Sprintf("%dx%d", g, g)}
		for _, G := range sizes {
			if G%g != 0 || G/g > 32 {
				row = append(row, "-")
				continue
			}
			res := runMatmul(core.MatmulConfig{M: G, N: G, K: G, G: g, Tuned: true})
			if _, ok := base[G]; !ok {
				base[G] = res.Elapsed
			}
			row = append(row, f2(float64(base[G])/float64(res.Elapsed)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: quadrupling cores gives close to 4x, better for larger problems")
	return t
}

// Table7 reproduces Table VII plus the paper's §VIII efficiency
// discussion, adding this reproduction's measured stencil and matmul
// numbers.
func Table7() *Table {
	t := &Table{
		ID:     "Table VII",
		Title:  "Comparison of Epiphany with other systems",
		Header: []string{"system", "chip W", "cores", "max GFLOPS", "clock GHz", "peak GFLOPS/W"},
	}
	for _, s := range power.Comparison {
		t.AddRow(s.Name, f1(s.ChipWatts), fmt.Sprint(s.Cores),
			f1(s.MaxGFLOPS), f2(s.ClockGHz), f1(s.PeakEfficiency()))
	}
	// The computed counterpart of the Epiphany row: chip draw derived
	// from the calibrated energy model's full-load scenario rather than
	// transcribed from the paper's assumed 2 W.
	computed := power.ComputedComparison(&power.EpiphanyIV28nm, 64)
	c := computed[len(computed)-1]
	t.AddRow(c.Name, f1(c.ChipWatts), fmt.Sprint(c.Cores),
		f1(c.MaxGFLOPS), f2(c.ClockGHz), f1(c.PeakEfficiency()))
	st := runStencil(core.StencilConfig{
		Rows: 80, Cols: 20, Iters: 50, GroupRows: 8, GroupCols: 8,
		Comm: true, Tuned: true,
	})
	mm := runMatmul(core.MatmulConfig{M: 256, N: 256, K: 256, G: 8, Tuned: true})
	t.AddNote("measured stencil: %.1f GFLOPS => %.1f GFLOPS/W (paper: ~63.6 => ~32)",
		st.GFLOPS, power.GFLOPSPerWatt(st.GFLOPS))
	t.AddNote("measured on-chip matmul: %.1f GFLOPS => %.1f GFLOPS/W (paper: ~65.3 => ~32.7)",
		mm.GFLOPS, power.GFLOPSPerWatt(mm.GFLOPS))
	return t
}
