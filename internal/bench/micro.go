package bench

import (
	"fmt"

	"epiphany/internal/dma"
	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

// newChip builds a fresh 8x8 device on a fresh engine.
func newChip() (*sim.Engine, *ecore.Chip) {
	eng := sim.NewEngine()
	return eng, ecore.NewChip(eng, 8, 8)
}

// Fig2 reproduces Figure 2: DMA vs direct-write bandwidth between
// adjacent eCores as a function of message size. The DMA series reuses
// its descriptor across transfers, as a bandwidth benchmark does.
func Fig2() *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Bandwidth - DMA vs Direct Writes (adjacent cores)",
		Header: []string{"bytes", "DMA GB/s", "Direct GB/s"},
	}
	const reps = 40
	for _, n := range []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		t.AddRow(fmt.Sprint(n), f3(dmaBandwidth(n, reps)), f3(directBandwidth(n, reps)))
	}
	t.AddNote("paper: DMA reaches ~2 GB/s for large messages and loses below ~500 B")
	return t
}

func dmaBandwidth(n, reps int) float64 {
	eng, ch := newChip()
	var elapsed sim.Time
	ch.Launch(0, "sender", func(c *ecore.Core) {
		dst := c.GlobalOn(0, 1, 0x4000)
		d := c.DMASetDesc(dma.Desc1D(0x4000, dst, n, 8))
		c.CtimerStart(0)
		for i := 0; i < reps; i++ {
			c.DMAStart(dma.DMA0, d)
			c.DMAWait(dma.DMA0)
		}
		elapsed = c.CtimerElapsed(0)
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return float64(n*reps) / elapsed.Nanoseconds()
}

func directBandwidth(n, reps int) float64 {
	eng, ch := newChip()
	var elapsed sim.Time
	ch.Launch(0, "sender", func(c *ecore.Core) {
		dst := c.GlobalOn(0, 1, 0x4000)
		c.CtimerStart(0)
		for i := 0; i < reps; i++ {
			c.CopyWordsTo(dst, 0x4000, n/4)
		}
		elapsed = c.CtimerElapsed(0)
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return float64(n*reps) / elapsed.Nanoseconds()
}

// Fig3 reproduces Figure 3: one-shot small-message latency, where the
// DMA path pays descriptor construction and completion detection, so
// direct writes win below the ~500-byte crossover.
func Fig3() *Table {
	t := &Table{
		ID:     "Figure 3",
		Title:  "Latency - DMA vs Direct Writes (one transfer, adjacent cores)",
		Header: []string{"bytes", "DMA us", "Direct us", "winner"},
	}
	cross := 0
	for _, n := range []int{8, 16, 32, 64, 128, 256, 384, 512, 768, 1024, 2048} {
		d := oneShotDMALatency(n)
		w := oneShotDirectLatency(n)
		winner := "direct"
		if d < w {
			winner = "DMA"
			if cross == 0 {
				cross = n
			}
		}
		t.AddRow(fmt.Sprint(n), f3(d.Seconds()*1e6), f3(w.Seconds()*1e6), winner)
	}
	t.AddNote("crossover at ~%d bytes (paper: ~500)", cross)
	return t
}

func oneShotDMALatency(n int) sim.Time {
	eng, ch := newChip()
	var elapsed sim.Time
	ch.Launch(0, "sender", func(c *ecore.Core) {
		c.CtimerStart(0)
		d := c.DMASetDesc(dma.Desc1D(0x4000, c.GlobalOn(0, 1, 0x4000), n, 8))
		c.DMAStart(dma.DMA0, d)
		c.DMAWait(dma.DMA0)
		elapsed = c.CtimerElapsed(0)
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return elapsed
}

func oneShotDirectLatency(n int) sim.Time {
	eng, ch := newChip()
	var elapsed sim.Time
	ch.Launch(0, "sender", func(c *ecore.Core) {
		c.CtimerStart(0)
		c.CopyWordsTo(c.GlobalOn(0, 1, 0x4000), 0x4000, n/4)
		elapsed = c.CtimerElapsed(0)
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	return elapsed
}

// Table1 reproduces Table I: the per-word time of an 80-byte direct-write
// transfer from core (0,0) to cores at increasing Manhattan distance,
// measured with the flag-handshake ping-pong the paper's Listing 1 uses.
func Table1() *Table {
	t := &Table{
		ID:     "Table I",
		Title:  "Effect of node distance on transfer latency (80-byte messages)",
		Header: []string{"node 1", "node 2", "distance", "ns/word"},
	}
	targets := []struct{ r, c int }{
		{0, 1}, {1, 0}, {0, 2}, {1, 1}, {1, 2}, {3, 0},
		{0, 4}, {1, 3}, {3, 3}, {4, 4}, {7, 7},
	}
	for _, tg := range targets {
		ns := pingPongPerWord(tg.r, tg.c)
		t.AddRow("0,0", fmt.Sprintf("%d,%d", tg.r, tg.c), fmt.Sprint(tg.r+tg.c), f2(ns))
	}
	t.AddNote("paper ranges 11.12 ns (distance 1) to 12.57 ns (distance 14)")
	return t
}

func pingPongPerWord(tr, tc int) float64 {
	eng, ch := newChip()
	const loops = 200
	const words = 20
	const flagOff mem.Addr = 0x7000
	dataOff := mem.Addr(0x4000)
	var elapsed sim.Time
	target := ch.Map().CoreIndex(tr, tc)
	ch.Launch(target, "echo", func(c *ecore.Core) {
		for i := 1; i <= loops; i++ {
			c.WaitLocal32GE(flagOff, uint32(i))
			c.CopyWordsTo(c.GlobalOn(0, 0, dataOff), dataOff, words)
			c.StoreGlobal32(c.GlobalOn(0, 0, flagOff), uint32(i))
		}
	})
	ch.Launch(0, "origin", func(c *ecore.Core) {
		c.CtimerStart(0)
		for i := 1; i <= loops; i++ {
			c.CopyWordsTo(c.GlobalOn(tr, tc, dataOff), dataOff, words)
			c.StoreGlobal32(c.GlobalOn(tr, tc, flagOff), uint32(i))
			c.WaitLocal32GE(flagOff, uint32(i))
		}
		elapsed = c.CtimerElapsed(0)
	})
	if err := eng.Run(); err != nil {
		panic(err)
	}
	// Each loop carries two transfers of `words` words.
	return elapsed.Nanoseconds() / float64(2*loops*words)
}

// elinkExperiment saturates the off-chip link from the given cores for a
// window of simulated time, returning iteration counts and utilization.
func elinkExperiment(cores []int, window sim.Time) (*ecore.Chip, error) {
	eng, ch := newChip()
	for _, idx := range cores {
		idx := idx
		ch.Launch(idx, fmt.Sprintf("writer%d", idx), func(c *ecore.Core) {
			for off := mem.Addr(0); ; off = (off + 2048) % (1 << 20) {
				c.BlockWriteDRAM(off, 0, 2048)
				if c.Now() >= window {
					return
				}
			}
		})
	}
	eng.At(window, func() { eng.Stop() })
	if err := eng.RunUntil(window); err != nil {
		return nil, err
	}
	return ch, nil
}

// Table2 reproduces Table II: four eCores (a 2x2 group at the origin)
// writing 2 KB blocks to DRAM for a sustained window.
func Table2() *Table {
	return elinkTable("Table II", "4 mesh nodes writing 2KB blocks to DRAM",
		[]struct{ r, c int }{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
		200*sim.Millisecond,
		"paper: 0.41 / 0.33 / 0.17 / 0.08 (graded shares; see EXPERIMENTS.md on the in-row ordering)")
}

// Table3 reproduces Table III: all 64 eCores writing simultaneously,
// showing the starvation structure.
func Table3() *Table {
	var nodes []struct{ r, c int }
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			nodes = append(nodes, struct{ r, c int }{r, c})
		}
	}
	return elinkTable("Table III", "64 mesh nodes writing 2KB blocks to DRAM",
		nodes, 200*sim.Millisecond,
		"paper: (0-3,7) get ~0.187 each; ~24 cores get zero iterations")
}

func elinkTable(id, title string, nodes []struct{ r, c int }, window sim.Time, note string) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"mesh node", "iterations", "utilization"},
	}
	amap := mem.NewMap(8, 8)
	cores := make([]int, 0, len(nodes))
	for _, n := range nodes {
		cores = append(cores, amap.CoreIndex(n.r, n.c))
	}
	ch2, err := elinkExperiment(cores, window)
	if err != nil {
		panic(err)
	}
	el := ch2.Fabric().ELink
	for i, n := range nodes {
		t.AddRow(fmt.Sprintf("%d,%d", n.r, n.c),
			fmt.Sprint(el.Served(cores[i])),
			f3(el.Utilization(cores[i])))
	}
	t.AddNote("%s", note)
	return t
}
