// Package bench regenerates every table and figure of the paper's
// evaluation: the §V micro-benchmarks (Figures 2-3, Tables I-III), the
// §VI stencil results (Figures 5-8), the §VII matrix-multiplication
// results (Tables IV-VI, Figures 14-15), and the §VIII system comparison
// (Table VII). Each experiment builds a fresh simulated system, runs the
// same workload the paper describes, and returns a formatted table whose
// rows parallel the paper's.
package bench

import (
	"fmt"
	"strings"
)

// Table is one regenerated table or figure data series.
type Table struct {
	ID     string // e.g. "Figure 2", "Table I"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f1, f2, f3 format floats at fixed precision.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
