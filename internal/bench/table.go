// Package bench regenerates every table and figure of the paper's
// evaluation: the §V micro-benchmarks (Figures 2-3, Tables I-III), the
// §VI stencil results (Figures 5-8), the §VII matrix-multiplication
// results (Tables IV-VI, Figures 14-15), and the §VIII system comparison
// (Table VII). Each experiment builds a fresh simulated system, runs the
// same workload the paper describes, and returns a formatted table whose
// rows parallel the paper's.
package bench

import (
	"fmt"
	"strings"

	"epiphany/internal/tabular"
)

// Table is one regenerated table or figure data series.
type Table struct {
	ID     string // e.g. "Figure 2", "Table I"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text: the "ID: Title" banner, the
// aligned cell grid (delegated to the shared tabular formatter the
// sweep tables also use), then the footnotes.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	grid := tabular.Table{Header: t.Header, Rows: t.Rows}
	b.WriteString(grid.Text())
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f1, f2, f3 format floats at fixed precision.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
