package bench

// Experiment names one regenerable table/figure and its generator.
type Experiment struct {
	Name string
	Run  func() *Table
}

// Experiments lists every table and figure of the paper's evaluation in
// presentation order. Table VI defaults to its quick form (512 and 1024);
// use Table6(true) directly for the 1536 row.
var Experiments = []Experiment{
	{"fig2", Fig2},
	{"fig3", Fig3},
	{"table1", Table1},
	{"table2", Table2},
	{"table3", Table3},
	{"fig5", Fig5},
	{"fig6", Fig6},
	{"fig7", Fig7},
	{"fig8", Fig8},
	{"table4", Table4},
	{"table5", Table5},
	{"table6", func() *Table { return Table6(false) }},
	{"fig14", Fig14},
	{"fig15", Fig15},
	{"table7", Table7},
}

// ByName returns the named experiment, searching the paper experiments
// and then the Extras (extension and ablation studies).
func ByName(name string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.Name == name {
			return e, true
		}
	}
	for _, e := range Extras {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}
