package bench

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "Table X", Title: "demo", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddNote("hello %d", 7)
	s := tab.String()
	for _, want := range []string{"Table X", "demo", "a", "bb", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering misses %q:\n%s", want, s)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tab := Fig2()
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// DMA bandwidth strictly increasing with size; direct flat.
	prev := 0.0
	for i := range tab.Rows {
		dma := cell(t, tab, i, 1)
		if dma <= prev {
			t.Fatalf("DMA bandwidth not increasing at row %d", i)
		}
		prev = dma
	}
	last := len(tab.Rows) - 1
	if dma := cell(t, tab, last, 1); dma < 1.85 {
		t.Fatalf("large-message DMA = %.2f GB/s, want ~1.9", dma)
	}
	if direct := cell(t, tab, last, 2); direct < 0.3 || direct > 0.45 {
		t.Fatalf("direct = %.2f GB/s, want ~0.36", direct)
	}
	// Small messages: direct beats DMA.
	if cell(t, tab, 0, 2) <= cell(t, tab, 0, 1) {
		t.Fatal("direct should win at 16 bytes")
	}
}

func TestFig3Crossover(t *testing.T) {
	tab := Fig3()
	// Find the winner flip; it must happen between 384 and 768 bytes.
	flip := 0
	for i, r := range tab.Rows {
		if r[3] == "DMA" {
			n, _ := strconv.Atoi(tab.Rows[i][0])
			flip = n
			break
		}
	}
	if flip < 384 || flip > 768 {
		t.Fatalf("crossover at %d bytes, want ~500", flip)
	}
}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	first := cell(t, tab, 0, 3)
	last := cell(t, tab, len(tab.Rows)-1, 3)
	if first < 11.0 || first > 11.8 {
		t.Fatalf("distance-1 latency %.2f ns/word, want ~11.1-11.4", first)
	}
	if last < 12.4 || last > 13.2 {
		t.Fatalf("distance-14 latency %.2f ns/word, want ~12.6-12.9", last)
	}
	if last <= first {
		t.Fatal("latency must grow with distance")
	}
}

func TestTable2Shape(t *testing.T) {
	tab := Table2()
	var sum float64
	for i := range tab.Rows {
		sum += cell(t, tab, i, 2)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("utilizations sum to %.3f, want 1.0 (saturated)", sum)
	}
	// Row 0 dominates row 1.
	row0 := cell(t, tab, 0, 2) + cell(t, tab, 1, 2)
	if row0 < 0.6 {
		t.Fatalf("row-0 share %.2f, want > 0.6", row0)
	}
}

func TestTable3Shape(t *testing.T) {
	tab := Table3()
	if len(tab.Rows) != 64 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	starved := 0
	var topShare float64
	for i, r := range tab.Rows {
		iters, _ := strconv.Atoi(r[1])
		if iters == 0 {
			starved++
		}
		if strings.HasSuffix(r[0], ",7") && i/8 < 4 {
			topShare += cell(t, tab, i, 2)
		}
	}
	if starved < 15 || starved > 35 {
		t.Fatalf("%d cores starved, paper: 24", starved)
	}
	if topShare < 0.6 || topShare > 0.95 {
		t.Fatalf("top-4 share %.2f, paper: 0.75", topShare)
	}
}

func TestFig5Fig6Consistency(t *testing.T) {
	if testing.Short() {
		t.Skip("stencil sweeps take a second")
	}
	f5 := Fig5()
	for i := range f5.Rows {
		pct := cell(t, f5, i, 2)
		if pct < 78 || pct > 97 {
			t.Errorf("Fig5 row %d: %.1f%% of peak outside the paper's 81-95 band", i, pct)
		}
	}
	f6 := Fig6()
	for i := range f6.Rows {
		if nc, c := cell(t, f6, i, 1), cell(t, f6, i, 2); c >= nc {
			t.Errorf("Fig6 row %d: comm (%v) not below no-comm (%v)", i, c, nc)
		}
	}
}

func TestTable4Monotone(t *testing.T) {
	tab := Table4()
	prev := 0.0
	for i := range tab.Rows {
		g := cell(t, tab, i, 1)
		if g <= prev {
			t.Fatalf("Table IV not monotone at row %d", i)
		}
		prev = g
	}
	if prev < 1.05 {
		t.Fatalf("32x32 single core = %.2f GFLOPS, paper: 1.15", prev)
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments) != 15 {
		t.Fatalf("registry has %d experiments, want 15 (every table and figure)", len(Experiments))
	}
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.Name] {
			t.Fatalf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if e.Run == nil {
			t.Fatalf("experiment %q has no runner", e.Name)
		}
	}
	for _, want := range []string{"fig2", "fig3", "table1", "table2", "table3",
		"fig5", "fig6", "fig7", "fig8", "table4", "table5", "table6",
		"fig14", "fig15", "table7"} {
		if _, ok := ByName(want); !ok {
			t.Fatalf("experiment %q missing", want)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("phantom experiment")
	}
}

func TestExtrasRegistry(t *testing.T) {
	if len(Extras) != 5 {
		t.Fatalf("extras = %d, want 5", len(Extras))
	}
	for _, name := range []string{"ext-stream", "ext-topo", "abl-summa"} {
		if _, ok := ByName(name); !ok {
			t.Fatalf("%s not resolvable", name)
		}
	}
}

func TestTopologyScalingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the registry across three topologies")
	}
	tab := ExtTopologyScaling()
	if len(tab.Rows) != 12 {
		t.Fatalf("topology table has %d rows, want 3 topologies x 4 workloads", len(tab.Rows))
	}
	// Cluster rows whose groups span chips must show x-chip costs.
	crossed := 0
	for _, r := range tab.Rows {
		if r[0] == "cluster-2x2" && r[5] != "-" {
			crossed++
		}
	}
	if crossed == 0 {
		t.Fatal("no cluster row reports chip-boundary traffic")
	}
}

func TestAblationFairnessShape(t *testing.T) {
	tab := AblationELinkFairness()
	// Row 0: aggregate MB/s identical across arbiters.
	if cell(t, tab, 0, 1) != cell(t, tab, 0, 2) {
		t.Fatalf("aggregate bandwidth differs: %v", tab.Rows[0])
	}
	// Row 1: starvation only under the calibrated arbiter.
	cal, _ := strconv.Atoi(tab.Rows[1][1])
	fair, _ := strconv.Atoi(tab.Rows[1][2])
	if cal < 15 || fair != 0 {
		t.Fatalf("starved calibrated=%d fair=%d", cal, fair)
	}
}

func TestAblationSummaShape(t *testing.T) {
	if testing.Short() {
		t.Skip("several matmuls")
	}
	tab := AblationCannonVsSumma()
	for i := range tab.Rows {
		if adv := cell(t, tab, i, 4); adv <= 0 {
			t.Errorf("row %d: Cannon should win on the mesh (adv %.1f%%)", i, adv)
		}
	}
}

func TestExtStreamStencilShape(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a 512x512 grid")
	}
	tab := ExtStreamStencil()
	// Time decreases and DRAM traffic decreases as T grows.
	for i := 1; i < len(tab.Rows); i++ {
		if cell(t, tab, i, 1) >= cell(t, tab, i-1, 1) {
			t.Errorf("time not decreasing at row %d", i)
		}
		if cell(t, tab, i, 3) >= cell(t, tab, i-1, 3) {
			t.Errorf("traffic not decreasing at row %d", i)
		}
	}
}

func TestRemainingGeneratorsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweeps take a few seconds")
	}
	for name, gen := range map[string]func() *Table{
		"fig7": Fig7, "fig8": Fig8, "table5": Table5,
		"fig14": Fig14, "fig15": Fig15, "table7": Table7,
	} {
		tab := gen()
		if len(tab.Rows) == 0 {
			t.Errorf("%s produced no rows", name)
		}
		if tab.String() == "" {
			t.Errorf("%s renders empty", name)
		}
	}
}

func TestAblationCommSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-chip stencils")
	}
	tab := AblationStencilComm()
	for i := range tab.Rows {
		if adv := cell(t, tab, i, 3); adv <= 0 {
			t.Errorf("row %d: DMA should win (adv %.1f%%)", i, adv)
		}
	}
}
