package bench

import (
	"context"
	"fmt"

	"epiphany/internal/core"
	"epiphany/internal/ecore"
	"epiphany/internal/sim"
	"epiphany/internal/system"
	"epiphany/internal/workload"
)

// Beyond the paper's own tables and figures, these experiments cover the
// paper's stated future work (the temporally blocked streaming stencil of
// §IX) and ablations of two design choices the paper makes but does not
// isolate: DMA vs direct writes for the stencil boundary exchange, and
// the effect of the eLink's unfair arbitration.

// ExtStreamStencil sweeps the temporal block depth T for a 512x512 grid
// streamed through the chip from shared DRAM: the paper's §IX proposal.
func ExtStreamStencil() *Table {
	t := &Table{
		ID:     "Extension (paper §IX)",
		Title:  "Streaming stencil with temporal blocking: 512x512 grid, 16 iterations",
		Header: []string{"T", "time (ms)", "GFLOPS", "DRAM MB", "redundant flops %"},
	}
	for _, T := range []int{1, 2, 4, 8} {
		cfg := core.StreamStencilConfig{
			GlobalRows: 512, GlobalCols: 512,
			BlockRows: 32, BlockCols: 32,
			Iters: 16, TBlock: T,
			GroupRows: 8, GroupCols: 8,
		}
		r, err := workload.Run(context.Background(), &workload.StreamStencil{Config: cfg})
		if err != nil {
			panic(err)
		}
		res := r.(*core.StreamStencilResult)
		redundant := 100 * float64(res.RedundantFlops) / float64(res.UsefulFlops)
		t.AddRow(fmt.Sprint(T), f3(res.Elapsed.Seconds()*1e3), f2(res.GFLOPS),
			f1(float64(res.DRAMBytes)/1e6), f1(redundant))
	}
	t.AddNote("deeper temporal blocking trades redundant halo compute for eLink traffic; results are bit-identical across T")
	return t
}

// AblationStencilComm compares the paper's DMA boundary exchange against
// CPU-issued direct writes, for a tall grid (long word-by-word columns)
// and a wide one (short columns).
func AblationStencilComm() *Table {
	t := &Table{
		ID:     "Ablation",
		Title:  "Stencil boundary exchange: DMA chains vs direct CPU writes (64 cores, 30 iters)",
		Header: []string{"per-core grid", "DMA GFLOPS", "direct GFLOPS", "DMA advantage %"},
	}
	for _, s := range []struct{ r, c int }{{80, 20}, {20, 80}, {20, 20}} {
		base := core.StencilConfig{
			Rows: s.r, Cols: s.c, Iters: 30,
			GroupRows: 8, GroupCols: 8, Comm: true, Tuned: true,
		}
		dmaRes := runStencil(base)
		direct := base
		direct.DirectComm = true
		dirRes := runStencil(direct)
		adv := 100 * (dmaRes.GFLOPS - dirRes.GFLOPS) / dirRes.GFLOPS
		t.AddRow(fmt.Sprintf("%dx%d", s.r, s.c), f2(dmaRes.GFLOPS), f2(dirRes.GFLOPS), f1(adv))
	}
	t.AddNote("the paper's DMA choice wins everywhere, most where the doubleword-DMA edge rows are long (wide grids); Figure 3's crossover in kernel form")
	return t
}

// AblationELinkFairness re-runs Table III's saturation experiment with an
// idealized fair arbiter, quantifying how much of the starvation is the
// silicon's arbitration rather than raw bandwidth.
func AblationELinkFairness() *Table {
	t := &Table{
		ID:     "Ablation",
		Title:  "64-core DRAM writes: calibrated arbitration vs ideal fair arbiter",
		Header: []string{"metric", "calibrated", "fair"},
	}
	window := 100 * sim.Millisecond
	calStarved, calTop, calMBps := elinkFairnessRun(false, window)
	fairStarved, fairTop, fairMBps := elinkFairnessRun(true, window)
	t.AddRow("aggregate MB/s", f1(calMBps), f1(fairMBps))
	t.AddRow("starved cores", fmt.Sprint(calStarved), fmt.Sprint(fairStarved))
	t.AddRow("top-4 share", f3(calTop), f3(fairTop))
	t.AddNote("total bandwidth is identical; the arbitration only redistributes it - the starvation is not a capacity problem")
	return t
}

// elinkFairnessRun saturates the eLink from all 64 cores under the given
// arbitration and summarizes the outcome.
func elinkFairnessRun(fair bool, window sim.Time) (starved int, top4Share, mbps float64) {
	eng, ch := newChip()
	if fair {
		ch.Fabric().ELink.SetUniformWeights()
	}
	for idx := 0; idx < 64; idx++ {
		idx := idx
		ch.Launch(idx, fmt.Sprintf("writer%d", idx), func(c *ecore.Core) {
			for {
				c.BlockWriteDRAM(0, 0, 2048)
				if c.Now() >= window {
					return
				}
			}
		})
	}
	eng.At(window, func() { eng.Stop() })
	if err := eng.RunUntil(window); err != nil {
		panic(err)
	}
	el := ch.Fabric().ELink
	var total uint64
	for i := 0; i < 64; i++ {
		total += el.ServedBytes(i)
		if el.Served(i) == 0 {
			starved++
		}
	}
	for _, c := range []int{7, 15, 23, 31} {
		top4Share += el.Utilization(c)
	}
	return starved, top4Share, float64(total) / window.Seconds() / 1e6
}

// Extras lists the beyond-the-paper experiments.
var Extras = []Experiment{
	{"ext-stream", ExtStreamStencil},
	{"ext-topo", ExtTopologyScaling},
	{"abl-comm", AblationStencilComm},
	{"abl-fair", AblationELinkFairness},
	{"abl-summa", AblationCannonVsSumma},
}

// ExtTopologyScaling runs representative workloads across the preset
// fabric topologies: the 16-core E16, the paper's 64-core E64, and the
// 2x2 Parallella cluster whose four E16 chips form an 8x8 mesh glued by
// chip-to-chip eLinks. Workgroups spanning a chip boundary pay the
// boundary's bandwidth and arbitration costs, reported in the x-chip
// columns.
func ExtTopologyScaling() *Table {
	t := &Table{
		ID:     "Extension (multi-chip)",
		Title:  "Fabric topology scaling: same workloads, E16 vs E64 vs 2x2 Parallella cluster",
		Header: []string{"topology", "workload", "cores used", "GFLOPS", "% peak", "x-chip hops", "x-chip time (ms)"},
	}
	names := []string{"stencil-tuned", "matmul-cannon", "matmul-offchip", "stream-stencil"}
	for _, topo := range system.Topologies() {
		for _, name := range names {
			w, ok := workload.ByName(name)
			if !ok {
				panic("bench: workload " + name + " not registered")
			}
			r, err := workload.Run(context.Background(), w, workload.WithTopology(topo))
			if err != nil {
				panic(err)
			}
			m := r.Metrics()
			cores := fmt.Sprint(usedCores(w, topo))
			xh, xt := "-", "-"
			if m.ELinkCrossings > 0 {
				xh = fmt.Sprint(m.ELinkCrossings)
				xt = f3(m.ELinkCrossTime.Seconds() * 1e3)
			}
			t.AddRow(topo.Name, name, cores, f2(m.GFLOPS), f1(m.PctPeak), xh, xt)
		}
	}
	t.AddNote("workgroups clamp themselves to the board (TopologyFitter); E16 results use fewer cores, not a different kernel")
	t.AddNote("the cluster's E64-sized groups span all four chips: the x-chip columns are the price of gluing E16s into an 8x8 mesh")
	return t
}

// usedCores reports how many cores the workload's (topology-fitted)
// workgroup occupies on the given board.
func usedCores(w workload.Workload, topo system.Topology) int {
	return workload.UsedCores(w, topo.Rows(), topo.Cols())
}

// AblationCannonVsSumma compares the paper's Cannon implementation with
// SUMMA (§VIII: "algorithms such as SUMMA and PUMMA are well known ...
// SUMMA also has the advantage of requiring less workspace per node").
func AblationCannonVsSumma() *Table {
	t := &Table{
		ID:     "Ablation",
		Title:  "On-chip matmul: Cannon rotation vs SUMMA broadcast",
		Header: []string{"problem", "grid", "Cannon GFLOPS", "SUMMA GFLOPS", "Cannon advantage %"},
	}
	for _, s := range []struct{ G, g int }{
		{32, 2}, {48, 2}, {64, 4}, {96, 4}, {128, 8},
	} {
		base := core.MatmulConfig{M: s.G, N: s.G, K: s.G, G: s.g, Tuned: true}
		ca := runMatmul(base)
		su := base
		su.Algorithm = "summa"
		sr := runMatmul(su)
		adv := 100 * (ca.GFLOPS - sr.GFLOPS) / sr.GFLOPS
		t.AddRow(fmt.Sprintf("%d^3", s.G), fmt.Sprintf("%dx%d", s.g, s.g),
			f2(ca.GFLOPS), f2(sr.GFLOPS), f1(adv))
	}
	t.AddNote("Cannon's nearest-neighbour rotation beats SUMMA's multi-hop broadcasts on the mesh; SUMMA needs no initial skew and supports 32-wide blocks only with extra paging")
	return t
}
