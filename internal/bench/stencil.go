package bench

import (
	"context"
	"fmt"

	"epiphany/internal/core"
	"epiphany/internal/sim"
	"epiphany/internal/workload"
)

// runStencil executes one configuration through the workload API (each
// run gets its own fresh system), panicking on configuration errors
// (the experiment definitions below are statically valid).
func runStencil(cfg core.StencilConfig) *core.StencilResult {
	res, err := workload.Run(context.Background(), &workload.Stencil{Config: cfg})
	if err != nil {
		panic(err)
	}
	return res.(*core.StencilResult)
}

// stencilIters is the paper's evaluation length.
const stencilIters = 50

// Fig5 reproduces Figure 5: single-core stencil GFLOPS across grid
// shapes (0.97-1.14 GFLOPS, 81-95% of peak; more rows than columns is
// slightly better).
func Fig5() *Table {
	t := &Table{
		ID:     "Figure 5",
		Title:  "Single-core stencil floating-point performance (50 iterations)",
		Header: []string{"grid (rows x cols)", "GFLOPS", "% of peak"},
	}
	for _, s := range []struct{ r, c int }{
		{20, 20}, {40, 20}, {60, 20}, {80, 20},
		{20, 40}, {20, 60}, {20, 80}, {40, 40}, {60, 60},
	} {
		res := runStencil(core.StencilConfig{
			Rows: s.r, Cols: s.c, Iters: stencilIters,
			GroupRows: 1, GroupCols: 1, Tuned: true,
		})
		t.AddRow(fmt.Sprintf("%dx%d", s.r, s.c), f3(res.GFLOPS), f1(res.PctPeak))
	}
	t.AddNote("paper: 0.97-1.14 GFLOPS (81-95%% of 1.2 GFLOPS peak)")
	return t
}

// Fig6 reproduces Figure 6: 64-core stencil performance with (dark bars)
// and without (light bars) boundary communication.
func Fig6() *Table {
	t := &Table{
		ID:     "Figure 6",
		Title:  "64-core stencil performance with and without communication",
		Header: []string{"per-core grid", "no-comm GFLOPS", "comm GFLOPS", "drop %"},
	}
	for _, s := range []struct{ r, c int }{
		{20, 20}, {40, 20}, {80, 20}, {20, 40}, {20, 80}, {40, 40},
	} {
		base := core.StencilConfig{
			Rows: s.r, Cols: s.c, Iters: stencilIters,
			GroupRows: 8, GroupCols: 8, Tuned: true,
		}
		nc := runStencil(base)
		wc := base
		wc.Comm = true
		cc := runStencil(wc)
		drop := 100 * (nc.GFLOPS - cc.GFLOPS) / nc.GFLOPS
		t.AddRow(fmt.Sprintf("%dx%d", s.r, s.c), f2(nc.GFLOPS), f2(cc.GFLOPS), f1(drop))
	}
	t.AddNote("paper peak: 72.83 GFLOPS no-comm, 63.6 GFLOPS (82.8%% of peak) with comm at 80x20")
	return t
}

// stencilGroupLadder is the core-count progression used by the scaling
// experiments: 1, 2, 4, 8, 16, 32, 64 cores.
var stencilGroupLadder = []struct{ gr, gc int }{
	{1, 1}, {1, 2}, {2, 2}, {2, 4}, {4, 4}, {4, 8}, {8, 8},
}

// Fig7 reproduces Figure 7: weak scaling with a constant 60x60 per-core
// grid from 1 core (60x60 total) to 64 cores (480x480 total).
func Fig7() *Table {
	t := &Table{
		ID:     "Figure 7",
		Title:  "Stencil weak scaling: 60x60 per core, 50 iterations",
		Header: []string{"cores", "config", "global grid", "time (ms)"},
	}
	for _, g := range stencilGroupLadder {
		res := runStencil(core.StencilConfig{
			Rows: 60, Cols: 60, Iters: stencilIters,
			GroupRows: g.gr, GroupCols: g.gc, Comm: true, Tuned: true,
		})
		t.AddRow(fmt.Sprint(g.gr*g.gc), fmt.Sprintf("%dx%d", g.gr, g.gc),
			fmt.Sprintf("%dx%d", g.gr*60, g.gc*60),
			f3(res.Elapsed.Seconds()*1e3))
	}
	t.AddNote("paper: time rises with the first few cores (communication appears) then levels out after 8 cores")
	return t
}

// Fig8 reproduces Figure 8: strong scaling for three fixed problem
// sizes. Sizes are chosen so that every workgroup shape keeps per-core
// columns a multiple of the 20-point stripe (see EXPERIMENTS.md).
func Fig8() *Table {
	t := &Table{
		ID:     "Figure 8",
		Title:  "Stencil strong scaling: speedup vs single core, 50 iterations",
		Header: []string{"cores", "config", "16x160", "24x160", "32x160"},
	}
	sizes := []struct{ r, c int }{{16, 160}, {24, 160}, {32, 160}}
	base := make([]sim.Time, len(sizes))
	for _, g := range stencilGroupLadder {
		row := []string{fmt.Sprint(g.gr * g.gc), fmt.Sprintf("%dx%d", g.gr, g.gc)}
		for i, s := range sizes {
			if s.r%g.gr != 0 || s.c%g.gc != 0 || (s.c/g.gc)%20 != 0 || s.r/g.gr < 2 {
				row = append(row, "-")
				continue
			}
			res := runStencil(core.StencilConfig{
				Rows: s.r / g.gr, Cols: s.c / g.gc, Iters: stencilIters,
				GroupRows: g.gr, GroupCols: g.gc, Comm: true, Tuned: true,
			})
			if g.gr == 1 && g.gc == 1 {
				base[i] = res.Elapsed
			}
			row = append(row, f2(float64(base[i])/float64(res.Elapsed)))
		}
		t.AddRow(row...)
	}
	t.AddNote("cells are speedups; paper: first doubling gives ~2x, later doublings slightly less, larger problems scale better")
	return t
}
