// Package ecore assembles the simulated Epiphany chip and provides the
// per-core programming interface that kernels are written against. The
// interface deliberately mirrors the Epiphany SDK's C primitives (direct
// remote stores, e_dma_* descriptors, e_ctimer event timers, flag
// polling), so the kernels in internal/core read like the paper's
// listings.
package ecore

import (
	"fmt"

	"epiphany/internal/dma"
	"epiphany/internal/mem"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

// Chip is one simulated Epiphany device plus its off-chip shared memory.
type Chip struct {
	eng     *sim.Engine
	fab     *dma.Fabric
	cores   []*Core
	arrival []*sim.Cond // per-core: broadcast when a remote write lands
}

// NewChip builds a rows x cols device (the Epiphany-IV is 8x8) attached
// to eng, with a fresh 32 MB shared DRAM window.
func NewChip(eng *sim.Engine, rows, cols int) *Chip {
	return NewChipMap(eng, mem.NewMap(rows, cols))
}

// NewBoard builds a chipRows x chipCols board of coreRows x coreCols
// chips whose eMeshes are glued through chip-to-chip eLinks into one
// boundary-aware fabric sharing a flat address space and one DRAM
// window. The kernel-level programming surface is identical to a single
// chip's; only the routing costs differ.
func NewBoard(eng *sim.Engine, chipRows, chipCols, coreRows, coreCols int) *Chip {
	return NewChipMap(eng, mem.NewBoardMap(chipRows, chipCols, coreRows, coreCols))
}

// NewChipMap builds the device fabric for an explicit address map with
// the auto shard partition (one shard per chip on multi-chip maps; see
// NewChipMapShards).
func NewChipMap(eng *sim.Engine, amap *mem.Map) *Chip {
	return NewChipMapShards(eng, amap, 0)
}

// NewChipMapShards builds the device fabric for an explicit address map
// on an explicit event-engine partition. shards selects how the board's
// chips are distributed over engine shards: 0 (auto) gives every chip
// its own shard, 1 keeps the whole board on shard 0 (the classic
// single-heap engine), and 2..NumChips group the chips contiguously.
// Under any partition shard 0 stays the sys shard owning the host, the
// eLink arbiter and DRAM, and every core, its SRAM-arrival condition,
// and its DMA engine are owned by their chip's shard. The partition
// never changes the simulated schedule - events execute in the same
// canonical (time, tag, shard, seq) order, so Metrics are bit-identical
// for every value - it only bounds how much of the board SetWorkers can
// run concurrently. Single-chip maps always keep everything on shard 0.
func NewChipMapShards(eng *sim.Engine, amap *mem.Map, shardCount int) *Chip {
	n := amap.NumCores()
	rows, cols := amap.Rows, amap.Cols
	fab := &dma.Fabric{
		Eng:       eng,
		Map:       amap,
		Mesh:      noc.NewMesh(eng, amap),
		ELink:     noc.NewELink(eng, rows, cols),
		ELinkRead: sim.NewResource("elink-read"),
		SRAMs:     mem.NewSRAMs(n),
		DRAM:      mem.NewDRAM(),
	}
	gridRows, gridCols := amap.ChipGrid()
	nChips := gridRows * gridCols
	if shardCount <= 0 || shardCount > nChips {
		shardCount = nChips
	}
	if nChips > 1 && shardCount > 1 {
		base := eng.NumShards()
		eng.AddShards(shardCount)
		// Chips are grouped contiguously: chip i runs on shard
		// base + i*shardCount/nChips, which is one chip per shard when
		// shardCount == nChips.
		shards := make([]*sim.Shard, nChips)
		for i := range shards {
			shards[i] = eng.Shard(base + i*shardCount/nChips)
		}
		fab.ShardOf = make([]*sim.Shard, n)
		for i := 0; i < n; i++ {
			fab.ShardOf[i] = shards[fab.Mesh.ChipOf(i)]
		}
		fab.Mesh.AttachShards(shards)
	}
	ch := &Chip{eng: eng, fab: fab}
	fab.Notify = ch.notifyWrite
	ch.arrival = make([]*sim.Cond, n)
	ch.cores = make([]*Core, n)
	for i := 0; i < n; i++ {
		ch.arrival[i] = sim.NewCondIdxOn(fab.CoreShard(i), "arrival:core", i)
		ch.cores[i] = newCore(ch, i)
	}
	return ch
}

// Reset returns the chip to its just-constructed state - fabric
// occupancy and statistics cleared, memories zeroed, per-core state
// blank - so a recycled board replays any experiment bit-identically to
// a fresh one. The engine must be reset (or quiescent) first; cores with
// kernels still running make the recycled state undefined.
func (ch *Chip) Reset() {
	ch.fab.Reset()
	for _, c := range ch.cores {
		c.reset()
	}
}

// Engine returns the simulation engine the chip runs on.
func (ch *Chip) Engine() *sim.Engine { return ch.eng }

// Fabric exposes the shared interconnect/memory bundle (host side and
// tests use it; kernels should stay within the Core API).
func (ch *Chip) Fabric() *dma.Fabric { return ch.fab }

// Map returns the chip's address map.
func (ch *Chip) Map() *mem.Map { return ch.fab.Map }

// DRAM returns the shared off-chip memory window.
func (ch *Chip) DRAM() *mem.DRAM { return ch.fab.DRAM }

// NumCores returns the core count.
func (ch *Chip) NumCores() int { return len(ch.cores) }

// Core returns the core with chip-relative linear index i.
func (ch *Chip) Core(i int) *Core { return ch.cores[i] }

// CoreAt returns the core at chip-relative (row, col).
func (ch *Chip) CoreAt(row, col int) *Core {
	return ch.cores[ch.fab.Map.CoreIndex(row, col)]
}

// notifyWrite wakes any core polling its local memory. The wake carries
// no data; pollers re-check their predicate, as on hardware.
func (ch *Chip) notifyWrite(core int) {
	ch.arrival[core].Broadcast()
}

// Launch starts kernel on core i as a simulation process. The kernel
// begins at the current virtual time (the host model adds program-load
// costs before calling Launch). It returns the process for joining.
func (ch *Chip) Launch(i int, name string, kernel func(*Core)) *sim.Proc {
	c := ch.cores[i]
	if c.proc != nil && !c.proc.Finished() {
		panic(fmt.Sprintf("ecore: core %d launched while already running", i))
	}
	sys := ch.eng.Sys()
	p := sys.SpawnOn(c.sh, sys.Now(), name, func(p *sim.Proc) {
		c.proc = p
		defer func() { c.proc = nil }()
		kernel(c)
	})
	c.proc = p
	return p
}
