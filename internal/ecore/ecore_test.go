package ecore

import (
	"testing"

	"epiphany/internal/dma"
	"epiphany/internal/mem"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

func newChip() (*sim.Engine, *Chip) {
	eng := sim.NewEngine()
	return eng, NewChip(eng, 8, 8)
}

func TestChipGeometry(t *testing.T) {
	eng, ch := newChip()
	_ = eng
	if ch.NumCores() != 64 {
		t.Fatalf("cores = %d", ch.NumCores())
	}
	c := ch.CoreAt(3, 4)
	if r, col := c.Coords(); r != 3 || col != 4 {
		t.Fatalf("coords = (%d,%d)", r, col)
	}
	if c.Index() != 3*8+4 {
		t.Fatalf("index = %d", c.Index())
	}
	if got := c.Global(0x100); got != ch.Map().GlobalOf(c.Index(), 0x100) {
		t.Fatalf("Global = %#x", got)
	}
}

func TestComputeAdvancesClockAndCountsFlops(t *testing.T) {
	eng, ch := newChip()
	var end sim.Time
	ch.Launch(0, "k", func(c *Core) {
		c.Compute(100, 200)
		end = c.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Cycles(100) {
		t.Fatalf("clock = %v, want 100 cycles", end)
	}
	if ch.Core(0).Flops() != 200 {
		t.Fatalf("flops = %d", ch.Core(0).Flops())
	}
}

func TestStoreGlobal32FlagHandshake(t *testing.T) {
	// Core 0 signals core 1 through a flag; core 1 observes it after the
	// mesh latency plus poll detection.
	eng, ch := newChip()
	const flagOff = 0x1000
	var seenAt sim.Time
	ch.Launch(1, "waiter", func(c *Core) {
		c.WaitLocal32GE(flagOff, 7)
		seenAt = c.Now()
	})
	ch.Launch(0, "signaller", func(c *Core) {
		c.Idle(sim.Cycles(100))
		c.StoreGlobal32(c.GlobalOn(0, 1, flagOff), 7)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	min := sim.Cycles(100) + noc.HopLatency + PollDetectCost
	if seenAt < min {
		t.Fatalf("flag seen at %v, before physically possible %v", seenAt, min)
	}
	if seenAt > min+sim.Cycles(10) {
		t.Fatalf("flag seen at %v, far later than expected ~%v", seenAt, min)
	}
}

func TestStoreGlobal32LocalAlias(t *testing.T) {
	eng, ch := newChip()
	ch.Launch(0, "k", func(c *Core) {
		c.StoreGlobal32(0x500, 42) // local alias address
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ch.Core(0).Local().Load32(0x500); got != 42 {
		t.Fatalf("local store = %d", got)
	}
}

func TestCopyWordsToDataAndTiming(t *testing.T) {
	eng, ch := newChip()
	src := ch.Core(0)
	for i := 0; i < 20; i++ {
		src.Local().Store32(mem.Addr(4*i), uint32(100+i))
	}
	var cpuDone sim.Time
	ch.Launch(0, "k", func(c *Core) {
		c.CopyWordsTo(c.GlobalOn(0, 1, 0x2000), 0, 20)
		cpuDone = c.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// CPU busy: 20 words at the calibrated direct-write period.
	if want := 20 * noc.DirectWriteWordPeriod; cpuDone != want {
		t.Fatalf("cpu done at %v, want %v (Table I model)", cpuDone, want)
	}
	for i := 0; i < 20; i++ {
		if got := ch.Core(1).Local().Load32(mem.Addr(0x2000 + 4*i)); got != uint32(100+i) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}

func TestCopyWordsToSelf(t *testing.T) {
	eng, ch := newChip()
	ch.Core(0).Local().Store32(0, 9)
	ch.Launch(0, "k", func(c *Core) {
		c.CopyWordsTo(0x100, 0, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if ch.Core(0).Local().Load32(0x100) != 9 {
		t.Fatal("self copy failed")
	}
}

func TestDMAThroughCoreAPI(t *testing.T) {
	eng, ch := newChip()
	c0 := ch.Core(0)
	for i := 0; i < 8; i++ {
		c0.Local().StoreF32(mem.Addr(0x1000+4*i), float32(i))
	}
	var elapsed sim.Time
	ch.Launch(0, "k", func(c *Core) {
		c.CtimerStart(0)
		d := c.DMASetDesc(dma.Desc1D(0x1000, c.GlobalOn(1, 0, 0x1000), 32, 8))
		c.DMAStart(dma.DMA0, d)
		c.DMAWait(dma.DMA0)
		elapsed = c.CtimerElapsed(0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := ch.Core(8).Local().LoadF32(mem.Addr(0x1000 + 4*i)); got != float32(i) {
			t.Fatalf("dma word %d = %v", i, got)
		}
	}
	// Includes the descriptor build cost: this is the Fig 3 latency path.
	if elapsed < noc.DMADescriptorBuildCost+noc.DMAStartCost {
		t.Fatalf("elapsed %v too fast", elapsed)
	}
	if ch.Core(0).CtimerElapsedCycles(0) != elapsed.CoreCycles() {
		t.Fatal("cycle conversion mismatch")
	}
}

func TestBlockWriteDRAM(t *testing.T) {
	eng, ch := newChip()
	c := ch.Core(7) // (0,7): best eLink position
	for i := 0; i < 512; i++ {
		c.Local().Store32(mem.Addr(4*i), uint32(i))
	}
	var done sim.Time
	ch.Launch(7, "k", func(c *Core) {
		c.BlockWriteDRAM(0x8000, 0, 2048)
		done = c.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(2048) * noc.ELinkBytePeriod; done != want {
		t.Fatalf("block write done at %v, want %v (150 MB/s)", done, want)
	}
	for i := 0; i < 512; i++ {
		if ch.DRAM().Load32(mem.Addr(0x8000+4*i)) != uint32(i) {
			t.Fatalf("dram word %d wrong", i)
		}
	}
}

func TestLaunchWhileRunningPanics(t *testing.T) {
	eng, ch := newChip()
	ch.Launch(0, "long", func(c *Core) { c.Idle(sim.Second) })
	defer func() {
		if recover() == nil {
			t.Fatal("double launch should panic")
		}
	}()
	ch.Launch(0, "again", func(c *Core) {})
	_ = eng
}

func TestProcPanicsOutsideKernel(t *testing.T) {
	_, ch := newChip()
	defer func() {
		if recover() == nil {
			t.Fatal("Proc() outside a kernel should panic")
		}
	}()
	ch.Core(0).Proc()
}

func TestDeterministicEndToEnd(t *testing.T) {
	runOnce := func() sim.Time {
		eng, ch := newChip()
		var last sim.Time
		for i := 0; i < 16; i++ {
			i := i
			ch.Launch(i, "k", func(c *Core) {
				for j := 0; j < 10; j++ {
					c.Compute(uint64(10+i), 20)
					c.StoreGlobal32(c.GlobalOn((i+1)%2, (i+j)%8, 0x700), uint32(j))
				}
				last = c.Now()
			})
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestRemoteWriteNotVisibleBeforeArrival(t *testing.T) {
	// Memory coherence semantics: a posted remote store lands only after
	// the mesh latency; a receiver polling memory directly must not see
	// it early.
	eng, ch := newChip()
	var early, late uint32
	ch.Launch(63, "writer", func(c *Core) { // (7,7): 14 hops to (0,0)
		c.StoreGlobal32(c.GlobalOn(0, 0, 0x900), 77)
	})
	ch.Launch(0, "reader", func(c *Core) {
		c.Idle(2 * sim.Cycle) // after the store issued, before arrival
		early = c.Local().Load32(0x900)
		c.Idle(sim.Cycles(200))
		late = c.Local().Load32(0x900)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if early != 0 {
		t.Fatalf("value visible %d cycles early", 2)
	}
	if late != 77 {
		t.Fatalf("value never arrived: %d", late)
	}
}

func TestDMADataNotVisibleBeforeCompletion(t *testing.T) {
	eng, ch := newChip()
	src := ch.Core(0)
	for i := 0; i < 256; i++ {
		src.Local().Store32(mem.Addr(4*i), 0xAB)
	}
	var early uint32
	ch.Launch(0, "dma", func(c *Core) {
		d := c.DMASetDesc(dma.Desc1D(0, c.GlobalOn(0, 1, 0), 1024, 8))
		c.DMAStart(dma.DMA0, d)
		c.DMAWait(dma.DMA0)
	})
	ch.Launch(1, "reader", func(c *Core) {
		c.Idle(sim.Cycles(10)) // well before the ~575-cycle descriptor build finishes
		early = c.Local().Load32(0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if early != 0 {
		t.Fatal("DMA payload visible before the transfer completed")
	}
	if got := ch.Core(1).Local().Load32(0); got != 0xAB {
		t.Fatalf("payload missing after completion: %#x", got)
	}
}

func TestRelaunchCoreAfterCompletion(t *testing.T) {
	// Hosts reuse cores across kernel phases (reset + reload in §III).
	eng, ch := newChip()
	var phase2 sim.Time
	first := ch.Launch(0, "phase1", func(c *Core) { c.Idle(sim.Cycles(100)) })
	eng.Spawn("host", func(p *sim.Proc) {
		p.Join(first)
		second := ch.Launch(0, "phase2", func(c *Core) {
			c.Idle(sim.Cycles(50))
			phase2 = c.Now()
		})
		p.Join(second)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if phase2 != sim.Cycles(150) {
		t.Fatalf("phase 2 ended at %v, want 150 cycles", phase2)
	}
}

func TestFlagOrderingFromSameSender(t *testing.T) {
	// Two stores from one core to the same destination arrive in issue
	// order: data-then-flag protocols depend on it.
	eng, ch := newChip()
	var observed uint32
	ch.Launch(0, "sender", func(c *Core) {
		c.StoreGlobal32(c.GlobalOn(3, 3, 0x100), 42) // data
		c.StoreGlobal32(c.GlobalOn(3, 3, 0x104), 1)  // flag
	})
	ch.Launch(ch.Map().CoreIndex(3, 3), "receiver", func(c *Core) {
		c.WaitLocal32GE(0x104, 1)
		observed = c.Local().Load32(0x100)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != 42 {
		t.Fatalf("flag overtook data: read %d", observed)
	}
}

func TestStoreGlobal32ToDRAM(t *testing.T) {
	eng, ch := newChip()
	ch.Launch(0, "k", func(c *Core) {
		c.StoreGlobal32(mem.DRAMBase+0x40, 99)
		c.Idle(sim.Millisecond) // let the eLink carry it
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := ch.DRAM().Load32(0x40); got != 99 {
		t.Fatalf("dram word = %d", got)
	}
}

func TestCopyWordsToDRAM(t *testing.T) {
	eng, ch := newChip()
	for i := 0; i < 8; i++ {
		ch.Core(0).Local().Store32(mem.Addr(4*i), uint32(i+1))
	}
	ch.Launch(0, "k", func(c *Core) {
		c.CopyWordsTo(mem.DRAMBase+0x100, 0, 8)
		c.Idle(sim.Millisecond)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got := ch.DRAM().Load32(mem.Addr(0x100 + 4*i)); got != uint32(i+1) {
			t.Fatalf("dram word %d = %d", i, got)
		}
	}
}

func TestStoreToUnmappedAddressPanics(t *testing.T) {
	eng, ch := newChip()
	ch.Launch(0, "k", func(c *Core) {
		c.StoreGlobal32(0x00100000, 1) // hole between SRAM and core windows
	})
	if err := eng.Run(); err == nil {
		t.Fatal("unmapped store should fail the simulation")
	}
}

func TestActivityAccounting(t *testing.T) {
	eng, ch := newChip()
	ch.Launch(0, "k", func(c *Core) {
		c.Compute(50, 100)
		d := c.DMASetDesc(dma.Desc1D(0, c.GlobalOn(0, 1, 0), 512, 8))
		c.DMAStart(dma.DMA0, d)
		c.DMAWait(dma.DMA0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	compute, dmaWait, flagWait := ch.Core(0).Activity()
	if compute != sim.Cycles(50) {
		t.Fatalf("compute = %v", compute)
	}
	if dmaWait == 0 {
		t.Fatal("dma wait not recorded")
	}
	if flagWait != 0 {
		t.Fatalf("phantom flag wait %v", flagWait)
	}
}
