package ecore

import (
	"fmt"

	"epiphany/internal/dma"
	"epiphany/internal/mem"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

// PollDetectCost is the time for a spinning core to notice a flag update
// after the write lands in its memory (a couple of loop iterations).
const PollDetectCost = 2 * sim.Cycle

// Core is the kernel-facing interface of one eCore. All timed operations
// must be called from the kernel's own simulation process (i.e. from
// inside the function passed to Chip.Launch).
type Core struct {
	chip   *Chip
	idx    int
	sh     *sim.Shard // the shard owning this core's chip
	sram   *mem.SRAM
	dma    *dma.Engine
	proc   *sim.Proc
	layout *mem.Layout
	timers [2]sim.Time
	flops  uint64
	descs  uint64 // e_dma_set_desc calls, stats
	// Time accounting by activity, for the trace package.
	computeTime  sim.Time
	dmaWaitTime  sim.Time
	flagWaitTime sim.Time
}

func newCore(ch *Chip, idx int) *Core {
	return &Core{
		chip:   ch,
		idx:    idx,
		sh:     ch.fab.CoreShard(idx),
		sram:   ch.fab.SRAMs[idx],
		dma:    dma.NewEngine(ch.fab, idx),
		layout: mem.NewLayout(),
	}
}

// reset clears all per-core run state: timers, statistics, the activity
// accounting, the scratchpad layout plan and both DMA channels.
func (c *Core) reset() {
	c.proc = nil
	c.layout.Reset()
	c.timers = [2]sim.Time{}
	c.flops, c.descs = 0, 0
	c.computeTime, c.dmaWaitTime, c.flagWaitTime = 0, 0, 0
	c.dma.Reset()
}

// Chip returns the owning chip.
func (c *Core) Chip() *Chip { return c.chip }

// Index returns the chip-relative linear core index.
func (c *Core) Index() int { return c.idx }

// Coords returns the chip-relative (row, col) of this core.
func (c *Core) Coords() (row, col int) { return c.chip.fab.Map.CoreCoords(c.idx) }

// Proc returns the simulation process currently running on the core.
func (c *Core) Proc() *sim.Proc {
	if c.proc == nil {
		panic(fmt.Sprintf("ecore: core %d has no running kernel", c.idx))
	}
	return c.proc
}

// Now returns the core's current virtual time: the running kernel's
// clock, or the engine clock when no kernel is active (e.g. the host
// reading a ctimer after completion).
func (c *Core) Now() sim.Time {
	if c.proc != nil {
		return c.proc.Now()
	}
	return c.chip.eng.Now()
}

// Local returns the core's scratchpad for functional access. Bulk
// arithmetic reads and writes it directly; the time for that work is
// charged separately through Compute with cycle counts from the isa
// package's pipeline model.
func (c *Core) Local() *mem.SRAM { return c.sram }

// Layout returns the core's scratchpad allocation plan.
func (c *Core) Layout() *mem.Layout { return c.layout }

// Global returns the global address of local offset off on this core.
func (c *Core) Global(off mem.Addr) mem.Addr { return c.chip.fab.Map.GlobalOf(c.idx, off) }

// GlobalOn returns the global address of offset off on core (row, col)
// (chip-relative), the e_get_global_address equivalent.
func (c *Core) GlobalOn(row, col int, off mem.Addr) mem.Addr {
	return c.chip.fab.Map.GlobalOf(c.chip.fab.Map.CoreIndex(row, col), off)
}

// Compute advances the core's clock by cycles of computation performing
// flops floating-point operations (tracked for GFLOPS accounting).
func (c *Core) Compute(cycles uint64, flops uint64) {
	c.flops += flops
	d := sim.Cycles(cycles)
	c.computeTime += d
	if r := c.chip.fab.Rec; r != nil && d > 0 {
		now := c.Proc().Now()
		r.CoreSpan(c.idx, noc.ActCompute, now, now+d)
	}
	c.Proc().Wait(d)
}

// Flops returns the floating-point operations the core has performed.
func (c *Core) Flops() uint64 { return c.flops }

// Idle advances the core's clock without doing work.
func (c *Core) Idle(d sim.Time) { c.Proc().Wait(d) }

// --- Direct (CPU-issued) remote writes: the "point-to-point write"
// transfer mode of §V-A. ---

// StoreGlobal32 issues one posted 32-bit store to a global address. The
// CPU moves on after one cycle; the value lands after the mesh latency.
// Used for flags and synchronization words.
func (c *Core) StoreGlobal32(a mem.Addr, v uint32) {
	p := c.Proc()
	tgt := c.chip.fab.Map.Decode(c.idx, a)
	switch tgt.Kind {
	case mem.KindLocal:
		c.sram.Store32(tgt.Off, v)
		c.chip.notifyWrite(c.idx)
	case mem.KindCore:
		dst := tgt.Core
		if c.chip.fab.Mesh.CrossShard(c.idx, dst) {
			// The word lands on another chip's shard: the sys shard walks
			// the route and the store+notify run in the owning shard.
			off := tgt.Off
			c.chip.fab.Mesh.DeliverCross(p.Now(), c.idx, dst, 4, 0, func(sim.Time) {
				c.chip.fab.SRAMs[dst].Store32(off, v)
				c.chip.notifyWrite(dst)
			})
		} else {
			arrive := c.chip.fab.Mesh.Deliver(p.Now(), c.idx, dst, 4)
			c.sh.At(arrive, func() {
				c.chip.fab.SRAMs[dst].Store32(tgt.Off, v)
				c.chip.notifyWrite(dst)
			})
		}
	case mem.KindDRAM:
		// The DRAM store runs on the sys shard at eLink completion (a
		// same-shard call on a single-chip board).
		c.chip.fab.ELink.SubmitFrom(c.sh, p.Now(), c.idx, 4, func() {
			c.chip.fab.DRAM.Store32(tgt.Off, v)
		})
	default:
		panic(fmt.Sprintf("ecore: store to unmapped address %#x", a))
	}
	p.Wait(sim.Cycle)
}

// CopyWordsTo models the unrolled direct-write copy loop of Listing 1:
// words 32-bit values are read from local memory at srcOff and stored
// into the destination global address. The CPU is busy for the loop's
// duration (the calibrated 6.6 cycles per word); the final word lands at
// the mesh arrival time.
func (c *Core) CopyWordsTo(dst mem.Addr, srcOff mem.Addr, words int) {
	p := c.Proc()
	tgt := c.chip.fab.Map.Decode(c.idx, dst)
	n := 4 * words
	cpuDone := p.Now() + sim.Time(words)*noc.DirectWriteWordPeriod
	switch tgt.Kind {
	case mem.KindLocal:
		mem.Copy(c.sram, tgt.Off, c.sram, srcOff, n)
		c.chip.notifyWrite(c.idx)
	case mem.KindCore:
		dstCore, data := tgt.Core, append([]byte(nil), c.sram.Bytes(srcOff, n)...)
		if c.chip.fab.Mesh.CrossShard(c.idx, dstCore) {
			off := tgt.Off
			c.chip.fab.Mesh.DeliverCross(p.Now(), c.idx, dstCore, n, cpuDone, func(sim.Time) {
				copy(c.chip.fab.SRAMs[dstCore].Bytes(off, n), data)
				c.chip.notifyWrite(dstCore)
			})
		} else {
			arrive := c.chip.fab.Mesh.Deliver(p.Now(), c.idx, dstCore, n)
			if arrive < cpuDone {
				arrive = cpuDone
			}
			c.sh.At(arrive, func() {
				copy(c.chip.fab.SRAMs[dstCore].Bytes(tgt.Off, n), data)
				c.chip.notifyWrite(dstCore)
			})
		}
	case mem.KindDRAM:
		data := append([]byte(nil), c.sram.Bytes(srcOff, n)...)
		off := tgt.Off
		c.chip.fab.ELink.SubmitFrom(c.sh, p.Now(), c.idx, n, func() {
			copy(c.chip.fab.DRAM.Bytes(off, n), data)
		})
	default:
		panic(fmt.Sprintf("ecore: copy to unmapped address %#x", dst))
	}
	p.WaitUntil(cpuDone)
}

// BlockWriteDRAM issues the §V-B micro-benchmark's saturation pattern:
// one block of n bytes stored to shared DRAM as a sequence of 4-byte
// stores. It blocks until the eLink has carried the block (the CPU cannot
// run ahead once the mesh back-pressures).
func (c *Core) BlockWriteDRAM(dramOff mem.Addr, srcOff mem.Addr, n int) {
	// The CPU blocks until the eLink carries the block: the write queues
	// between here and the link are tiny compared to a 2 KB block, so
	// back-pressure stalls the store loop almost immediately.
	p := c.Proc()
	if c.sh == c.chip.eng.Sys() {
		c.chip.fab.ELink.Write(p, c.idx, n)
		copy(c.chip.fab.DRAM.Bytes(dramOff, n), c.sram.Bytes(srcOff, n))
		return
	}
	// Sharded board: the copy must run on the sys shard (DRAM lives
	// there; sys may read any core's SRAM), at the same virtual time the
	// unsharded path would perform it - eLink completion.
	reply := sim.NewCondIdxOn(c.sh, "dram-block:core", c.idx)
	sys := c.chip.eng.Sys()
	c.chip.fab.ELink.SubmitFrom(c.sh, p.Now(), c.idx, n, func() {
		copy(c.chip.fab.DRAM.Bytes(dramOff, n), c.sram.Bytes(srcOff, n))
		sys.Send(c.sh, sys.Now(), func() { reply.Broadcast() })
	})
	p.WaitCond(reply)
}

// --- Flag polling (the `while (*flag < loopcount);` idiom). ---

// WaitLocal32GE spins until the local 32-bit word at off is >= v.
func (c *Core) WaitLocal32GE(off mem.Addr, v uint32) {
	p := c.Proc()
	start := p.Now()
	for c.sram.Load32(off) < v {
		p.WaitCond(c.chip.arrival[c.idx])
	}
	p.Wait(PollDetectCost)
	c.flagWaitTime += p.Now() - start
	if r := c.chip.fab.Rec; r != nil {
		r.CoreSpan(c.idx, noc.ActFlagSpin, start, p.Now())
	}
}

// WaitLocal32 spins until the local word at off equals v exactly.
func (c *Core) WaitLocal32(off mem.Addr, v uint32) {
	p := c.Proc()
	start := p.Now()
	for c.sram.Load32(off) != v {
		p.WaitCond(c.chip.arrival[c.idx])
	}
	p.Wait(PollDetectCost)
	c.flagWaitTime += p.Now() - start
	if r := c.chip.fab.Rec; r != nil {
		r.CoreSpan(c.idx, noc.ActFlagSpin, start, p.Now())
	}
}

// --- DMA (e_dma_set_desc / e_dma_start / e_dma_wait). ---

// DMASetDesc charges the CPU cost of building a descriptor in memory and
// returns it. Benchmarks that reuse descriptors call this once.
func (c *Core) DMASetDesc(d *dma.Desc) *dma.Desc {
	c.descs++
	c.Proc().Wait(noc.DMADescriptorBuildCost)
	return d
}

// DMAStart charges e_dma_start's cost and launches the descriptor chain
// on the given channel.
func (c *Core) DMAStart(ch dma.Chan, d *dma.Desc) {
	c.Proc().Wait(noc.DMAStartCost)
	c.dma.Start(ch, d)
}

// DMAWait blocks until the channel's chain completes (e_dma_wait).
func (c *Core) DMAWait(ch dma.Chan) {
	p := c.Proc()
	start := p.Now()
	c.dma.Wait(p, ch)
	c.dmaWaitTime += p.Now() - start
	if r := c.chip.fab.Rec; r != nil && p.Now() > start {
		r.CoreSpan(c.idx, noc.ActDMAWait, start, p.Now())
	}
}

// Activity returns the core's accumulated time by category: modelled
// compute, blocking on DMA completion, and spinning on flags.
func (c *Core) Activity() (compute, dmaWait, flagWait sim.Time) {
	return c.computeTime, c.dmaWaitTime, c.flagWaitTime
}

// DMABusy reports whether the channel is still transferring.
func (c *Core) DMABusy(ch dma.Chan) bool { return c.dma.Busy(ch) }

// DMAMoved returns the bytes the channel has moved (statistics).
func (c *Core) DMAMoved(ch dma.Chan) uint64 { return c.dma.Moved(ch) }

// --- Event timers (e_ctimer_*). ---

// CtimerStart starts event timer i (0 or 1) counting.
func (c *Core) CtimerStart(i int) {
	c.timers[i] = c.Now()
}

// CtimerElapsed returns the virtual time since timer i started.
func (c *Core) CtimerElapsed(i int) sim.Time {
	return c.Now() - c.timers[i]
}

// CtimerElapsedCycles returns elapsed core clock cycles, as the paper's
// benchmarks report.
func (c *Core) CtimerElapsedCycles(i int) float64 {
	return c.CtimerElapsed(i).CoreCycles()
}
