package names

import (
	"strings"
	"testing"
)

var registry = []string{
	"matmul-cannon", "matmul-offchip", "stencil-tuned", "stencil-naive",
	"stream-stencil", "e16", "e64", "cluster-2x2",
}

func TestSuggest(t *testing.T) {
	cases := []struct {
		in   string
		want []string // nil = no suggestion; checked as exact slice
	}{
		// One-letter typos.
		{"e63", []string{"e64", "e16"}},
		{"matmul-canon", []string{"matmul-cannon"}},
		{"stencil-tund", []string{"stencil-tuned"}},
		// Case-insensitive exact match collapses to the single certain
		// suggestion.
		{"E64", []string{"e64"}},
		{"Matmul-Cannon", []string{"matmul-cannon"}},
		// Prefixes of registered names (truncated spellings).
		{"matmul", []string{"matmul-cannon", "matmul-offchip"}},
		{"stencil", []string{"stencil-naive", "stencil-tuned"}},
		// Nothing plausible.
		{"zzzzzz", nil},
		{"", nil},
	}
	for _, tc := range cases {
		got := Suggest(tc.in, registry)
		if len(got) != len(tc.want) {
			t.Errorf("Suggest(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("Suggest(%q) = %v, want %v", tc.in, got, tc.want)
				break
			}
		}
	}
}

func TestSuggestBounded(t *testing.T) {
	// Even with many near candidates, at most three are suggested.
	cands := []string{"job1", "job2", "job3", "job4", "job5"}
	if got := Suggest("job", cands); len(got) > 3 {
		t.Errorf("Suggest returned %d suggestions, want <= 3: %v", len(got), got)
	}
}

func TestUnknown(t *testing.T) {
	err := Unknown("workload", "matmul-canon", registry)
	for _, want := range []string{
		`unknown workload "matmul-canon"`,
		`did you mean "matmul-cannon"?`,
		"registered: matmul-cannon",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Unknown() = %q, missing %q", err, want)
		}
	}

	// No plausible suggestion: still lists the registry, no guess.
	err = Unknown("topology preset", "qqq", registry)
	if strings.Contains(err.Error(), "did you mean") {
		t.Errorf("Unknown() = %q, suggested for an implausible name", err)
	}
	if !strings.Contains(err.Error(), `unknown topology preset "qqq" (registered:`) {
		t.Errorf("Unknown() = %q, missing the registry listing", err)
	}

	// Multiple suggestions render as a quoted or-list.
	err = Unknown("workload", "stencil", registry)
	if !strings.Contains(err.Error(), `"stencil-naive" or "stencil-tuned"`) {
		t.Errorf("Unknown() = %q, want a quoted or-list", err)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"e64", "e64", 0},
		{"e64", "e16", 2},
	}
	for _, tc := range cases {
		if got := levenshtein(tc.a, tc.b); got != tc.want {
			t.Errorf("levenshtein(%q, %q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
