// Package names turns "unknown name" failures into actionable errors.
// Every registry in the simulator (workloads, topology presets, power
// models) is looked up by exact string, and an off-by-one-letter flag
// value used to fail with a bare "unknown X" - leaving the user to go
// find the listing themselves. The CLIs (epiphany-sweep,
// epiphany-bench) and the epiphany-serve HTTP 400s all route their
// unknown-name errors through Unknown, so a typo gets the same
// "did you mean" suggestion everywhere.
package names

import (
	"fmt"
	"sort"
	"strings"
)

// maxSuggestions bounds how many near-misses Unknown lists; past three
// the suggestion reads as a listing, and the listing is already there.
const maxSuggestions = 3

// Suggest returns the candidates closest to name - nearest first, at
// most three - under a case-insensitive edit distance, filtered to
// plausible typos: a candidate qualifies when its distance is at most
// 2, or at most a third of the typed name's length, or when one string
// is a prefix of the other (catching truncated and over-completed
// spellings like "matmul" for "matmul-cannon"). An empty slice means
// nothing was close enough to guess.
func Suggest(name string, candidates []string) []string {
	name = strings.ToLower(name)
	if name == "" {
		return nil
	}
	limit := max(2, len(name)/3)
	type scored struct {
		name string
		dist int
	}
	var close []scored
	for _, cand := range candidates {
		lc := strings.ToLower(cand)
		d := levenshtein(name, lc)
		if d == 0 {
			// Exact modulo case: the one suggestion that is certainly
			// what the user meant.
			return []string{cand}
		}
		if d <= limit || strings.HasPrefix(lc, name) || strings.HasPrefix(name, lc) {
			close = append(close, scored{cand, d})
		}
	}
	sort.Slice(close, func(i, j int) bool {
		if close[i].dist != close[j].dist {
			return close[i].dist < close[j].dist
		}
		return close[i].name < close[j].name
	})
	if len(close) > maxSuggestions {
		close = close[:maxSuggestions]
	}
	out := make([]string, len(close))
	for i, s := range close {
		out[i] = s.name
	}
	return out
}

// DidYouMean returns the canonical ` (did you mean ...?)` clause for
// name against the candidates, or "" when nothing is close enough to
// guess. It exists for errors that cannot use Unknown wholesale - the
// topology-spec grammar, say, where the candidate list mixes registered
// presets with example spellings of the grammar and a "registered:"
// listing would mislead - so that the suggestion itself still reads
// identically everywhere.
func DidYouMean(name string, candidates []string) string {
	s := Suggest(name, candidates)
	if len(s) == 0 {
		return ""
	}
	return fmt.Sprintf(" (did you mean %s?)", quoteList(s))
}

// Unknown builds the canonical unknown-name error: the kind and the
// offending name, a "did you mean" clause when something registered is
// close, and the full registered list either way (it is short for every
// registry here, and saves a round trip to -list).
func Unknown(kind, name string, candidates []string) error {
	listed := strings.Join(candidates, ", ")
	if s := Suggest(name, candidates); len(s) > 0 {
		return fmt.Errorf("epiphany: unknown %s %q (did you mean %s? registered: %s)",
			kind, name, quoteList(s), listed)
	}
	return fmt.Errorf("epiphany: unknown %s %q (registered: %s)", kind, name, listed)
}

// quoteList renders suggestions as `"a", "b" or "c"`.
func quoteList(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = fmt.Sprintf("%q", n)
	}
	if len(quoted) == 1 {
		return quoted[0]
	}
	return strings.Join(quoted[:len(quoted)-1], ", ") + " or " + quoted[len(quoted)-1]
}

// levenshtein computes the edit distance between two strings with the
// classic two-row dynamic program; the inputs here are short registry
// names, so the quadratic cost is trivial.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
