package sim

import (
	"fmt"
	"strconv"
)

// Cond is a broadcast-only condition variable for Procs. A Proc calls
// WaitCond (or Proc-side helpers built on it) to park until another Proc
// or an engine callback calls Broadcast. Waits are level-triggered only in
// the sense that the waiter should re-check its predicate after waking, as
// with sync.Cond.
//
// A Cond is owned by one shard: only Procs of that shard may wait on it
// and only that shard's execution context may broadcast it. Cross-shard
// signalling posts an event to the owner with Shard.Send, which then
// broadcasts locally (the dma and noc packages do exactly this).
type Cond struct {
	sh      *Shard
	name    string
	idx     int // >= 0: the name is name+idx, formatted lazily
	waiters []*Proc
}

// NewCond creates a condition owned by eng's shard 0. The name appears
// in deadlock diagnostics.
func NewCond(eng *Engine, name string) *Cond {
	return NewCondOn(eng.shards[0], name)
}

// NewCondOn creates a condition owned by sh.
func NewCondOn(sh *Shard, name string) *Cond {
	return &Cond{sh: sh, name: name, idx: -1}
}

// NewCondIdx creates a condition named prefix+idx on eng's shard 0. The
// name is formatted only when diagnostics ask for it, so construction-
// heavy callers (one condition per core, per DMA channel, per eLink
// request) stay allocation-lean on the hot path.
func NewCondIdx(eng *Engine, prefix string, idx int) *Cond {
	return NewCondIdxOn(eng.shards[0], prefix, idx)
}

// NewCondIdxOn is NewCondIdx with an explicit owning shard.
func NewCondIdxOn(sh *Shard, prefix string, idx int) *Cond {
	if idx < 0 {
		panic("sim: NewCondIdx with negative index")
	}
	return &Cond{sh: sh, name: prefix, idx: idx}
}

// Shard returns the owning shard.
func (c *Cond) Shard() *Shard { return c.sh }

// Name returns the diagnostic name.
func (c *Cond) Name() string {
	if c.idx < 0 {
		return c.name
	}
	return c.name + strconv.Itoa(c.idx)
}

// WaitCond parks the Proc until c is broadcast. The Proc resumes at the
// virtual time of the broadcast (plus any delay the broadcaster added).
// The Cond must be owned by the Proc's shard.
func (p *Proc) WaitCond(c *Cond) {
	if c.sh != p.sh {
		panic(fmt.Sprintf("sim: proc %q (shard %d) waiting on cond %q owned by shard %d; cross-shard waits are not supported",
			p.name, p.sh.id, c.Name(), c.sh.id))
	}
	c.waiters = append(c.waiters, p)
	p.block(c)
}

// Broadcast wakes every waiter at the current virtual time.
func (c *Cond) Broadcast() { c.BroadcastAfter(0) }

// BroadcastAfter wakes every waiter d after the current virtual time,
// modelling a propagation delay between the signalling event and the
// observer noticing it. It must run in the owning shard's execution
// context.
func (c *Cond) BroadcastAfter(d Time) {
	t := c.sh.now + d
	for _, p := range c.waiters {
		p.unblock(t)
	}
	c.waiters = c.waiters[:0]
}

// Waiters reports how many Procs are currently parked on c.
func (c *Cond) Waiters() int { return len(c.waiters) }

// WaitFor repeatedly waits on c until pred() is true. It returns the
// number of wake-ups that were needed. pred is evaluated once before any
// waiting, so no wake-up happens if it already holds.
func (p *Proc) WaitFor(c *Cond, pred func() bool) int {
	n := 0
	for !pred() {
		p.WaitCond(c)
		n++
	}
	return n
}
