package sim

// Rand is a tiny deterministic PRNG (xorshift64*) used wherever the
// simulator needs pseudo-random choice (e.g. workload generators). It is
// seeded explicitly so simulations replay bit-identically; math/rand is
// avoided to keep the dependency surface and the reproducibility story
// entirely within the package.
type Rand struct{ s uint64 }

// NewRand returns a generator seeded with seed (0 is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{s: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a pseudo-random float32 in [0, 1).
func (r *Rand) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}
