package sim

import (
	"strings"
	"testing"
)

func TestTimeUnits(t *testing.T) {
	if Cycle*600_000_000 != Second {
		t.Fatalf("600M cycles = %v, want exactly one second", Cycle*600_000_000)
	}
	if Cycles(3) != 15 {
		t.Fatalf("Cycles(3) = %d, want 15 units", Cycles(3))
	}
	if got := Time(Second).Seconds(); got != 1.0 {
		t.Fatalf("Seconds() = %v, want 1", got)
	}
	if got := Cycle.Nanoseconds(); got < 1.66 || got > 1.67 {
		t.Fatalf("cycle = %v ns, want 5/3 ns", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{3, "1ns"},
		{3000, "1us"},
		{3000000, "1ms"},
		{Second, "1s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestSingleProcAdvancesTime(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Spawn("p", func(p *Proc) {
		at = append(at, p.Now())
		p.Wait(10)
		at = append(at, p.Now())
		p.WaitCycles(2)
		at = append(at, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 20}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("checkpoint %d at t=%v, want %v", i, at[i], want[i])
		}
	}
}

func TestProcsInterleaveInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	logstep := func(p *Proc, tag string) {
		order = append(order, tag)
	}
	e.Spawn("a", func(p *Proc) {
		logstep(p, "a0")
		p.Wait(5)
		logstep(p, "a5")
		p.Wait(10)
		logstep(p, "a15")
	})
	e.Spawn("b", func(p *Proc) {
		logstep(p, "b0")
		p.Wait(7)
		logstep(p, "b7")
		p.Wait(1)
		logstep(p, "b8")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a0 b0 a5 b7 b8 a15"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	// Two procs waiting to the same instant must resume in scheduling order,
	// and the order must be identical on every run.
	for trial := 0; trial < 10; trial++ {
		e := NewEngine()
		var order []string
		for _, name := range []string{"x", "y", "z"} {
			name := name
			e.Spawn(name, func(p *Proc) {
				p.Wait(100)
				order = append(order, name)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if got := strings.Join(order, ""); got != "xyz" {
			t.Fatalf("trial %d: order %q, want xyz", trial, got)
		}
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "go")
	var woke []Time
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			p.WaitCond(c)
			woke = append(woke, p.Now())
		})
	}
	e.Spawn("sig", func(p *Proc) {
		p.Wait(42)
		c.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 42 {
			t.Fatalf("waiter woke at %v, want 42", w)
		}
	}
}

func TestCondBroadcastAfterAddsDelay(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "go")
	var woke Time
	e.Spawn("w", func(p *Proc) {
		p.WaitCond(c)
		woke = p.Now()
	})
	e.Spawn("sig", func(p *Proc) {
		p.Wait(10)
		c.BroadcastAfter(5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 15 {
		t.Fatalf("woke at %v, want 15", woke)
	}
}

func TestWaitForPredicate(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "counter")
	n := 0
	var wakeups int
	e.Spawn("w", func(p *Proc) {
		wakeups = p.WaitFor(c, func() bool { return n >= 3 })
	})
	e.Spawn("inc", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Wait(10)
			n++
			c.Broadcast()
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakeups != 3 {
		t.Fatalf("wakeups = %d, want 3", wakeups)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "never")
	e.Spawn("stuck", func(p *Proc) { p.WaitCond(c) })
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "never") {
		t.Fatalf("deadlock report %q should name the proc and the cond", err)
	}
}

func TestStopSuppressesDeadlock(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "never")
	e.Spawn("stuck", func(p *Proc) { p.WaitCond(c) })
	e.Spawn("stopper", func(p *Proc) {
		p.Wait(5)
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatalf("after Stop, err = %v, want nil", err)
	}
}

func TestPanicPropagates(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Proc) {
		p.Wait(1)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v, want panic propagation", err)
	}
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	e := NewEngine()
	var last Time
	e.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Wait(10)
			last = p.Now()
		}
	})
	if err := e.RunUntil(55); err != nil {
		t.Fatal(err)
	}
	if last != 50 {
		t.Fatalf("last tick at %v, want 50", last)
	}
	if e.Now() > 55 {
		t.Fatalf("engine advanced to %v, beyond limit", e.Now())
	}
}

func TestCallbacksRunInline(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	e.At(5, func() { ticks = append(ticks, e.Now()) })
	e.At(15, func() { ticks = append(ticks, e.Now()) })
	e.Spawn("p", func(p *Proc) { p.Wait(10) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 2 || ticks[0] != 5 || ticks[1] != 15 {
		t.Fatalf("ticks = %v, want [5 15]", ticks)
	}
}

func TestJoin(t *testing.T) {
	e := NewEngine()
	var joinedAt Time
	worker := e.Spawn("worker", func(p *Proc) { p.Wait(100) })
	e.Spawn("waiter", func(p *Proc) {
		p.Join(worker)
		joinedAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joinedAt != 100 {
		t.Fatalf("joined at %v, want 100", joinedAt)
	}
	if !worker.Finished() {
		t.Fatal("worker not finished")
	}
}

func TestSpawnFromInsideProc(t *testing.T) {
	e := NewEngine()
	var childRan Time
	e.Spawn("parent", func(p *Proc) {
		p.Wait(10)
		child := e.Spawn("child", func(q *Proc) {
			q.Wait(5)
			childRan = q.Now()
		})
		p.Join(child)
		if p.Now() != 15 {
			t.Errorf("parent joined at %v, want 15", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childRan != 15 {
		t.Fatalf("child ran at %v, want 15", childRan)
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("link")
	b1, e1 := r.Use(0, 10)
	if b1 != 0 || e1 != 10 {
		t.Fatalf("first use [%v,%v), want [0,10)", b1, e1)
	}
	// Requested while busy: queued behind.
	b2, e2 := r.Use(5, 10)
	if b2 != 10 || e2 != 20 {
		t.Fatalf("second use [%v,%v), want [10,20)", b2, e2)
	}
	// Requested after idle gap: starts immediately.
	b3, e3 := r.Use(50, 10)
	if b3 != 50 || e3 != 60 {
		t.Fatalf("third use [%v,%v), want [50,60)", b3, e3)
	}
	if r.BusyTime() != 30 {
		t.Fatalf("busy = %v, want 30", r.BusyTime())
	}
	if got := r.Utilization(60); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	if r.Uses() != 3 {
		t.Fatalf("uses = %d, want 3", r.Uses())
	}
	r.Reset()
	if r.FreeAt() != 0 || r.BusyTime() != 0 {
		t.Fatal("reset did not clear state")
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatal("different seeds should differ")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(42)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestManyProcsStress(t *testing.T) {
	e := NewEngine()
	total := 0
	for i := 0; i < 64; i++ {
		i := i
		e.Spawn("core", func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.Wait(Time(1 + (i+j)%7))
			}
			total++
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 64 {
		t.Fatalf("finished %d procs, want 64", total)
	}
}

// runSchedule drives a small proc/cond/resource schedule on e and
// returns the completion times observed, for comparing a recycled
// engine against a fresh one.
func runSchedule(t *testing.T, e *Engine) []Time {
	t.Helper()
	var times []Time
	res := NewResource("shared")
	flag := NewCond(e, "flag")
	e.Spawn("waiter", func(p *Proc) {
		p.WaitCond(flag)
		times = append(times, p.Now())
	})
	e.Spawn("worker", func(p *Proc) {
		begin, end := res.Use(p.Now(), 40)
		_ = begin
		p.WaitUntil(end)
		flag.Broadcast()
		times = append(times, p.Now())
	})
	e.After(10, func() { times = append(times, e.Now()) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return times
}

func TestEngineResetReplaysIdentically(t *testing.T) {
	e := NewEngine()
	first := runSchedule(t, e)
	if err := e.Reset(); err != nil {
		t.Fatalf("Reset of drained engine: %v", err)
	}
	if e.Now() != 0 {
		t.Fatalf("Reset left Now at %v", e.Now())
	}
	second := runSchedule(t, e)
	if len(first) != len(second) {
		t.Fatalf("replay produced %d events, fresh produced %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("event %d at %v on recycled engine, %v on fresh", i, second[i], first[i])
		}
	}
}

func TestEngineResetRefusesNonQuiescent(t *testing.T) {
	// Pending event.
	e := NewEngine()
	e.At(100, func() {})
	if err := e.Reset(); err == nil {
		t.Fatal("Reset accepted an engine with pending events")
	}

	// Proc parked on a Cond after Stop (no deadlock error, but the
	// goroutine is still blocked).
	e = NewEngine()
	c := NewCond(e, "never")
	e.Spawn("parked", func(p *Proc) { p.WaitCond(c) })
	e.At(1, func() { e.Stop() })
	if err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(); err == nil {
		t.Fatal("Reset accepted an engine with a blocked proc")
	}
}

func TestCondNames(t *testing.T) {
	e := NewEngine()
	if got := NewCond(e, "plain").Name(); got != "plain" {
		t.Errorf("NewCond name %q", got)
	}
	if got := NewCondIdx(e, "arrival:core", 7).Name(); got != "arrival:core7" {
		t.Errorf("NewCondIdx name %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewCondIdx accepted a negative index")
		}
	}()
	NewCondIdx(e, "bad", -1)
}
