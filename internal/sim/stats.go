package sim

import (
	"fmt"
	"strings"
)

// ShardStats is one shard's scheduler counters for a run. The counting
// is unconditional (each counter is one increment on a path that
// already does real work), so a snapshot is always available; the
// parallel-scheduler counters (parks, holds) stay zero on sequential
// runs, where the machinery they count never arms.
//
// All counts except the two wall times in EngineStats are deterministic
// for a fixed (shards, workers>1) configuration: the barrier-round
// structure depends only on the published frontiers and bounds, never
// on how shards are mapped to host workers.
type ShardStats struct {
	// Shard is the shard index; Label its diagnostic name ("sys",
	// "chip0", ...).
	Shard int    `json:"shard"`
	Label string `json:"label"`
	// Events is how many events this shard dispatched.
	Events uint64 `json:"events"`
	// HeapPeak is the high-water mark of the shard's event heap.
	HeapPeak int `json:"heap_peak"`
	// CrossPosts counts cross-shard events this shard sent (Send,
	// SendTagged, SendBooking, cross-shard spawns); TaggedPosts the
	// subset carrying a core arbitration tag (SendTagged - contended
	// shared-resource requests).
	CrossPosts  uint64 `json:"cross_posts"`
	TaggedPosts uint64 `json:"tagged_posts"`
	// BookingParks counts AwaitBookingWindow parking a proc because its
	// booking key was not yet below the booking floor (each retry round
	// counts once).
	BookingParks uint64 `json:"booking_parks"`
	// HeldByBound and HeldByFloor count phase-B rounds this shard ended
	// with a runnable event held back: by the (lookahead-lifted)
	// execution bound, or - for AtBooking/SendBooking events - by the
	// key-precise booking floor.
	HeldByBound uint64 `json:"held_by_bound"`
	HeldByFloor uint64 `json:"held_by_floor"`
}

// EngineStats is a snapshot of the engine's scheduler counters after a
// run: the per-shard counts plus the parallel scheduler's round
// structure and phase wall-clock times. Collected by Engine.Stats.
//
// PhaseAWallNS/PhaseBWallNS are host wall-clock measurements and vary
// run to run; every other field is deterministic for a fixed (shards,
// workers>1) configuration.
type EngineStats struct {
	// Shards and Workers describe the run's execution layout; Lookahead
	// is the chip-to-chip window the parallel scheduler lifted frontiers
	// by.
	Shards    int  `json:"shards"`
	Workers   int  `json:"workers"`
	Lookahead Time `json:"lookahead"`
	// Events is the total executed events; SysEvents the sys shard's
	// (shard 0's) part and SysShare its fraction - the direct measure of
	// how much of the board serializes through the host/eLink/DRAM
	// shard.
	Events    uint64  `json:"events"`
	SysEvents uint64  `json:"sys_events"`
	SysShare  float64 `json:"sys_share"`
	// CrossPosts/TaggedPosts/BookingParks/HeldByBound/HeldByFloor are
	// the per-shard counters summed (see ShardStats).
	CrossPosts   uint64 `json:"cross_posts"`
	TaggedPosts  uint64 `json:"tagged_posts"`
	BookingParks uint64 `json:"booking_parks"`
	HeldByBound  uint64 `json:"held_by_bound"`
	HeldByFloor  uint64 `json:"held_by_floor"`
	// BarrierRounds counts the parallel scheduler's barrier-window
	// rounds; PhaseAWallNS/PhaseBWallNS the host wall time its two
	// phases cost the coordinator. All zero for sequential runs
	// (workers = 1 or a single shard).
	BarrierRounds uint64 `json:"barrier_rounds"`
	PhaseAWallNS  int64  `json:"phase_a_wall_ns"`
	PhaseBWallNS  int64  `json:"phase_b_wall_ns"`
	// PerShard is the per-shard breakdown, indexed by shard id.
	PerShard []ShardStats `json:"per_shard,omitempty"`
}

// shardLabel is the diagnostic shard name used by stats and deadlock
// reports alike.
func shardLabel(id int32) string {
	if id == 0 {
		return "sys"
	}
	return fmt.Sprintf("chip%d", id-1)
}

// Stats snapshots the engine's scheduler counters. Counters accumulate
// across RunUntil calls and clear on Reset; take the snapshot before
// recycling the board.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Shards:        len(e.shards),
		Workers:       e.workers,
		Lookahead:     e.lookahead,
		BarrierRounds: e.rounds,
		PhaseAWallNS:  e.phaseANS,
		PhaseBWallNS:  e.phaseBNS,
		PerShard:      make([]ShardStats, len(e.shards)),
	}
	for i, s := range e.shards {
		ss := ShardStats{
			Shard:        i,
			Label:        shardLabel(s.id),
			Events:       s.nEvents,
			HeapPeak:     s.heapPeak,
			CrossPosts:   s.crossPosts,
			TaggedPosts:  s.taggedPosts,
			BookingParks: s.bookingParks,
			HeldByBound:  s.heldByBound,
			HeldByFloor:  s.heldByFloor,
		}
		st.PerShard[i] = ss
		st.Events += ss.Events
		st.CrossPosts += ss.CrossPosts
		st.TaggedPosts += ss.TaggedPosts
		st.BookingParks += ss.BookingParks
		st.HeldByBound += ss.HeldByBound
		st.HeldByFloor += ss.HeldByFloor
	}
	st.SysEvents = e.shards[0].nEvents
	if st.Events > 0 {
		st.SysShare = float64(st.SysEvents) / float64(st.Events)
	}
	return st
}

// SetRoundHook installs fn to be called by the parallel scheduler after
// every barrier round, with the round index, the round's minimum
// frontier time and the maximum shard time it reached. fn runs on the
// coordinator goroutine strictly between rounds (no shard is executing)
// and must not touch engine state. nil uninstalls. Sequential runs
// never call it.
func (e *Engine) SetRoundHook(fn func(round uint64, start, end Time)) { e.roundHook = fn }

// String renders the snapshot as the epiphany-bench -engine-stats
// report.
func (st EngineStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d shard(s) x %d worker(s), %d events (sys share %.1f%%), lookahead %v\n",
		st.Shards, st.Workers, st.Events, 100*st.SysShare, st.Lookahead)
	if st.BarrierRounds > 0 {
		fmt.Fprintf(&b, "  parallel: %d barrier rounds, phaseA %.3fms, phaseB %.3fms wall\n",
			st.BarrierRounds, float64(st.PhaseAWallNS)/1e6, float64(st.PhaseBWallNS)/1e6)
	}
	fmt.Fprintf(&b, "  cross-shard posts %d (tagged %d), booking parks %d, held by bound %d / floor %d\n",
		st.CrossPosts, st.TaggedPosts, st.BookingParks, st.HeldByBound, st.HeldByFloor)
	fmt.Fprintf(&b, "  %-6s %10s %10s %12s %8s %8s %8s %8s\n",
		"shard", "events", "heap-peak", "cross-posts", "tagged", "parks", "bound", "floor")
	for _, ss := range st.PerShard {
		fmt.Fprintf(&b, "  %-6s %10d %10d %12d %8d %8d %8d %8d\n",
			ss.Label, ss.Events, ss.HeapPeak, ss.CrossPosts, ss.TaggedPosts,
			ss.BookingParks, ss.HeldByBound, ss.HeldByFloor)
	}
	return b.String()
}
