// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine executes simulated processes (Procs) one at a time in strict
// virtual-time order: goroutines are used as coroutines, with exactly one
// runnable at any instant, so shared simulation state needs no locking and
// every run of the same program produces identical results.
//
// Time is measured in integer units of 1/3 nanosecond. This unit was chosen
// so that all of the calibrated Epiphany quantities are exact integers:
// one 600 MHz core cycle is exactly 5 units, the 600 MB/s eLink moves one
// byte per 5 units, and the 2 GB/s DMA engine moves an 8-byte beat in 12
// units. See the Cycle and Nanosecond constants.
package sim

import "fmt"

// Time is a point in (or duration of) virtual time, in units of 1/3 ns.
type Time uint64

// Fundamental time units. One core clock cycle at 600 MHz is exactly
// 5/3 ns = 5 units, so all cycle-accounting is exact.
const (
	// Nanosecond is the number of Time units in one nanosecond.
	Nanosecond Time = 3
	// Microsecond is the number of Time units in one microsecond.
	Microsecond Time = 1000 * Nanosecond
	// Millisecond is the number of Time units in one millisecond.
	Millisecond Time = 1000 * Microsecond
	// Second is the number of Time units in one second.
	Second Time = 1000 * Millisecond
	// Cycle is the duration of one 600 MHz Epiphany core clock cycle.
	Cycle Time = 5
)

// Cycles converts a whole number of 600 MHz core cycles to a Time duration.
func Cycles(n uint64) Time { return Time(n) * Cycle }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds reports t as floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// CoreCycles reports t as floating-point 600 MHz core cycles.
func (t Time) CoreCycles() float64 { return float64(t) / float64(Cycle) }

// String formats the time with an adaptive unit for debugging output.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%.6gns", t.Nanoseconds())
	}
}
