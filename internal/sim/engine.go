package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// eventKind discriminates heap entries.
type eventKind uint8

const (
	evResume eventKind = iota // wake a blocked Proc
	evStart                   // start a freshly spawned Proc
	evCall                    // run a callback inline in the engine
)

// event is one scheduled occurrence, keyed by (t, tag, sid, seq) - the
// arbitration tag plus the sender shard's id and sequence number, a
// schedule-independent total order (see key).
type event struct {
	t    Time
	tag  int32
	sid  int32
	seq  uint64
	kind eventKind
	proc *Proc
	fn   func()
	// mayBook marks an event that may book mesh link occupancy when it
	// runs (a DMA chain continuation). The parallel scheduler holds such
	// an event until its key is below the shard's booking floor (see
	// Shard.AwaitBookingWindow for why bookings need one).
	mayBook bool
}

func (ev *event) key() key { return key{t: ev.t, tag: ev.tag, sid: ev.sid, seq: ev.seq} }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	return h[i].key().less(h[j].key())
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event simulator, partitioned into
// one or more shards (see Shard). A single-shard engine behaves exactly
// like the classic sequential engine; a multi-shard engine executes the
// same canonical event order - the total order over (time, shard, seq)
// keys - either sequentially (workers = 1, a plain merge of the per-
// shard heaps) or in parallel (workers > 1, a conservative barrier-
// window scheduler that lets chip shards run ahead of each other up to
// the chip-to-chip eLink lookahead). The metrics of a run are
// bit-identical for every worker count, because the executed schedule
// is the same canonical order in all modes.
//
// Procs run as goroutines but each shard executes at most one of them
// at a time, and always in key order, so simulations are fully
// reproducible. The zero value is not usable; create engines with
// NewEngine.
type Engine struct {
	shards    []*Shard
	workers   int
	lookahead Time

	// midRun is set for the duration of Run (written single-threaded
	// before workers start and after they join, so reads during the run
	// see a stable true).
	midRun   bool
	parallel bool // this Run uses the parallel scheduler (Send uses inboxes)

	err     error
	failed  atomic.Bool // mirrors err != nil, checkable without a lock
	stopped atomic.Bool

	// Parallel-scheduler counters (see EngineStats) and the optional
	// per-round observer. All touched only by the coordinator goroutine
	// strictly between round barriers.
	rounds             uint64
	phaseANS, phaseBNS int64
	roundHook          func(round uint64, start, end Time)
}

// NewEngine returns an empty single-shard engine at virtual time zero.
func NewEngine() *Engine {
	e := &Engine{workers: 1}
	e.shards = []*Shard{{eng: e, id: 0, yield: make(chan struct{})}}
	return e
}

// AddShards grows the engine by n shards (one per chip of a multi-chip
// board; shard 0 remains the sys shard). It must be called while the
// engine is empty - before any event is scheduled or proc spawned - so
// every event ever created carries a stable shard id.
func (e *Engine) AddShards(n int) {
	if e.midRun {
		panic("sim: AddShards during Run")
	}
	for _, s := range e.shards {
		if len(s.heap) != 0 || len(s.procs) != 0 || s.seq != 0 {
			panic("sim: AddShards on an engine that already scheduled events")
		}
	}
	for i := 0; i < n; i++ {
		e.shards = append(e.shards, &Shard{eng: e, id: int32(len(e.shards)), yield: make(chan struct{})})
	}
}

// NumShards returns the number of shards (1 = classic sequential
// engine).
func (e *Engine) NumShards() int { return len(e.shards) }

// Shard returns shard i. Shard 0 always exists.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Sys returns shard 0, the shard owning board-global state (host,
// eLink arbiter, DRAM) - and, on a single-chip board, everything.
func (e *Engine) Sys() *Shard { return e.shards[0] }

// SetLookahead sets the minimum virtual-time latency of any chip-to-
// chip interaction (the eLink crossing latency plus the first byte's
// serialization). The parallel scheduler lets chip shards run that far
// beyond each other's frontiers. Zero (the default) degrades to
// key-precise windows - still correct, just less concurrent.
func (e *Engine) SetLookahead(d Time) { e.lookahead = d }

// Lookahead returns the configured chip-to-chip lookahead window.
func (e *Engine) Lookahead() Time { return e.lookahead }

// SetWorkers sets how many host goroutines execute shards during Run:
// 1 (the default) is fully sequential; higher counts run shards
// concurrently under the conservative window scheduler. The executed
// event schedule - and therefore every metric - is identical for any
// value; workers only changes wall-clock time. Values are clamped to
// [1, NumShards].
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(e.shards) {
		n = len(e.shards)
	}
	e.workers = n
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// Now returns the current virtual time: the time of the event being
// processed during a sequential run, or the maximum shard time (the
// board's completion time) after a run. During a parallel run it is
// only meaningful from within shard code, which should use Shard.Now
// or Proc.Now instead.
func (e *Engine) Now() Time {
	if len(e.shards) == 1 {
		return e.shards[0].now
	}
	var t Time
	for _, s := range e.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// At schedules fn on shard 0 at absolute time t (or at the current time
// if t is in the past). Useful for timers and completions.
func (e *Engine) At(t Time, fn func()) { e.shards[0].At(t, fn) }

// After schedules fn on shard 0, d after shard 0's current time.
func (e *Engine) After(d Time, fn func()) { e.shards[0].After(d, fn) }

// Spawn creates a process named name running fn on shard 0 and
// schedules it to start at the current virtual time. It may be called
// before Run or from inside a running Proc or callback.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.shards[0].Spawn(name, fn)
}

// SpawnAt is Spawn with an explicit absolute start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	return e.shards[0].SpawnAt(t, name, fn)
}

// Run processes events until every shard's queue drains. It returns an
// error if a Proc panicked or if runnable work remains blocked forever
// (deadlock: procs waiting on conditions nobody will signal).
func (e *Engine) Run() error {
	return e.RunUntil(^Time(0))
}

// RunUntil is Run but stops (without error) once virtual time would
// exceed limit. Events at exactly limit are still processed.
func (e *Engine) RunUntil(limit Time) error {
	e.midRun = true
	defer func() { e.midRun = false }()
	if e.workers > 1 && len(e.shards) > 1 {
		return e.runParallel(limit)
	}
	if len(e.shards) == 1 {
		return e.runSingle(limit)
	}
	return e.runSequential(limit)
}

// runSingle is the classic sequential loop over the lone shard.
func (e *Engine) runSingle(limit Time) error {
	s := e.shards[0]
	for e.err == nil {
		if len(s.heap) == 0 {
			if s.blocked > 0 && !e.stopped.Load() {
				return e.deadlockError()
			}
			return e.err
		}
		if s.heap[0].t > limit {
			return e.err
		}
		s.dispatch(heap.Pop(&s.heap).(*event))
	}
	return e.err
}

// runSequential merges the shard heaps in global key order - the
// canonical schedule the parallel mode reproduces.
func (e *Engine) runSequential(limit Time) error {
	for e.err == nil {
		var next *Shard
		var best key
		for _, s := range e.shards {
			if len(s.heap) == 0 {
				continue
			}
			if k := s.heap[0].key(); next == nil || k.less(best) {
				next, best = s, k
			}
		}
		if next == nil {
			if e.totalBlocked() > 0 && !e.stopped.Load() {
				return e.deadlockError()
			}
			return e.err
		}
		if best.t > limit {
			return e.err
		}
		next.dispatch(heap.Pop(&next.heap).(*event))
	}
	return e.err
}

// runParallel executes shards on several workers in barrier-delimited
// rounds. Each round: (A) every shard drains its inbox and publishes
// its frontier key; the coordinator derives per-shard execution bounds;
// (B) every shard executes events strictly below its bound. Bounds are
// conservative: a chip shard may run up to the engine lookahead past
// other chips' frontiers but never past the sys shard's frontier (host,
// eLink and DRAM interactions carry no lookahead), and vice versa - so
// an event is executed only when no other shard can still post an
// earlier-keyed event to it, which makes the executed schedule exactly
// the canonical key order of runSequential.
func (e *Engine) runParallel(limit Time) error {
	nw := e.workers
	e.parallel = true
	defer func() { e.parallel = false }()

	// Workers 1..nw-1 each own the shards congruent to their index;
	// the coordinator (this goroutine) owns the rest and runs the
	// global decisions between phases.
	type ctl struct {
		start chan int
		done  chan struct{}
	}
	ctls := make([]ctl, nw)
	for w := 1; w < nw; w++ {
		ctls[w] = ctl{start: make(chan int, 1), done: make(chan struct{}, 1)}
		go func(w int, c ctl) {
			for ph := range c.start {
				for i := w; i < len(e.shards); i += nw {
					if ph == 0 {
						e.shards[i].phaseA()
					} else {
						e.shards[i].phaseB(limit)
					}
				}
				c.done <- struct{}{}
			}
		}(w, ctls[w])
	}
	defer func() {
		for w := 1; w < nw; w++ {
			close(ctls[w].start)
		}
	}()

	phase := func(ph int) {
		for w := 1; w < nw; w++ {
			ctls[w].start <- ph
		}
		for i := 0; i < len(e.shards); i += nw {
			if ph == 0 {
				e.shards[i].phaseA()
			} else {
				e.shards[i].phaseB(limit)
			}
		}
		for w := 1; w < nw; w++ {
			<-ctls[w].done
		}
	}

	for {
		t0 := time.Now()
		phase(0)
		e.phaseANS += time.Since(t0).Nanoseconds()
		if e.failed.Load() {
			return e.err
		}
		empty := true
		minT := ^Time(0)
		for _, s := range e.shards {
			if s.frontOK {
				empty = false
				if s.frontKey.t < minT {
					minT = s.frontKey.t
				}
			}
		}
		if empty {
			if e.totalBlocked() > 0 && !e.stopped.Load() {
				return e.deadlockError()
			}
			return e.err
		}
		if minT > limit {
			return e.err
		}
		e.computeBounds()
		t0 = time.Now()
		phase(1)
		e.phaseBNS += time.Since(t0).Nanoseconds()
		round := e.rounds
		e.rounds++
		if e.failed.Load() {
			return e.err
		}
		if e.roundHook != nil {
			// The round's span: from the minimum frontier it started at
			// to the highest shard time it reached. At least the
			// minimum-keyed event always executes (its bound derives
			// from strictly greater frontiers), so end >= start.
			end := Time(0)
			for _, s := range e.shards {
				if s.now > end {
					end = s.now
				}
			}
			e.roundHook(round, minT, end)
		}
	}
}

// computeBounds derives each shard's execution window for one round
// from the frontiers published in phase A: the bound (how far events may
// execute) and the booking floor (how far order-sensitive link bookings
// may go - always the key-precise minimum of the other chip frontiers,
// never lifted, because a cross-chip walk books links at its *issue*
// key with zero cross-shard latency; see Shard.AwaitBookingWindow).
func (e *Engine) computeBounds() {
	L := e.lookahead
	for _, a := range e.shards {
		bound := infKey
		safe := infKey
		for _, o := range e.shards {
			if o == a || !o.frontOK {
				continue
			}
			f := o.frontKey
			if a.id != 0 && o.id != 0 {
				// Another chip's unlifted frontier is also the booking
				// floor: any cross-chip walk that chip may still issue
				// will carry a key at or above it.
				if f.less(safe) {
					safe = f
				}
				if a.pendingReplies == 0 && L > 0 {
					// Chip-to-chip interactions carry at least the eLink
					// crossing lookahead; lift the frontier by L. The
					// lifted key's sid of -1 makes the window exclusive of
					// events at exactly t+L.
					if f.t > ^Time(0)-L {
						continue // effectively infinite
					}
					f = key{t: f.t + L, tag: -1 << 30, sid: -1}
				}
			}
			if f.less(bound) {
				bound = f
			}
		}
		a.bound = bound
		a.safeKey = safe
	}
}

func (e *Engine) totalBlocked() int {
	n := 0
	for _, s := range e.shards {
		n += s.blocked
	}
	return n
}

// Stop suppresses the deadlock check when the run winds down: after
// Stop, Procs still blocked on conditions when the queues drain do not
// count as a deadlock. (Used with RunUntil for fixed-window
// experiments.)
func (e *Engine) Stop() { e.stopped.Store(true) }

// Reset returns a drained engine to its initial state - virtual time
// zero, no events, no procs, fresh sequence numbers on every shard -
// so the structures built around it (and their goroutine-free event
// state) can be recycled instead of reconstructed. The shard layout,
// lookahead and worker count are board properties and survive. It
// refuses engines that are not quiescent: pending events, procs parked
// on conditions, or procs that never ran (their goroutines would leak
// and their wake-ups would corrupt the next simulation). A successful
// Run leaves the engine quiescent.
func (e *Engine) Reset() error {
	for _, s := range e.shards {
		if err := s.quiesceErr(); err != nil {
			return err
		}
	}
	for _, s := range e.shards {
		s.reset()
	}
	e.err = nil
	e.failed.Store(false)
	e.stopped.Store(false)
	e.rounds, e.phaseANS, e.phaseBNS = 0, 0, 0
	e.roundHook = nil
	return nil
}

// fail records the first error; safe to call from any shard's context.
func (e *Engine) fail(err error) {
	if e.failed.CompareAndSwap(false, true) {
		e.err = err
	}
}

// deadlockError reports every blocked proc by name and, on a sharded
// engine, each shard's low-water mark, so a stuck multi-chip run shows
// which chip stalled where.
func (e *Engine) deadlockError() error {
	var names []string
	for _, s := range e.shards {
		for _, p := range s.procs {
			if p.state == stateBlocked {
				names = append(names, fmt.Sprintf("%s@%v", p.name, p.blockedOn.Name()))
			}
		}
	}
	sort.Strings(names)
	if len(e.shards) == 1 {
		return fmt.Errorf("sim: deadlock at t=%v: %d proc(s) blocked forever: %v",
			e.Now(), e.totalBlocked(), names)
	}
	marks := make([]string, len(e.shards))
	for i, s := range e.shards {
		marks[i] = fmt.Sprintf("%s@t=%v", shardLabel(s.id), s.now)
	}
	return fmt.Errorf("sim: deadlock at t=%v: %d proc(s) blocked forever: %v (shard low-water marks: %v)",
		e.Now(), e.totalBlocked(), names, marks)
}
