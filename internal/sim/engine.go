package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// eventKind discriminates heap entries.
type eventKind uint8

const (
	evResume eventKind = iota // wake a blocked Proc
	evStart                   // start a freshly spawned Proc
	evCall                    // run a callback inline in the engine
)

// event is one scheduled occurrence.
type event struct {
	t    Time
	seq  uint64 // FIFO tie-break for determinism
	kind eventKind
	proc *Proc
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic sequential discrete-event simulator.
//
// Procs run as goroutines but the engine guarantees that at most one of
// them executes at a time, and always in virtual-time order with FIFO
// tie-breaking, so simulations are fully reproducible. The zero value is
// not usable; create engines with NewEngine.
type Engine struct {
	heap    eventHeap
	now     Time
	seq     uint64
	yield   chan struct{} // a proc (or its demise) hands control back here
	procs   []*Proc
	blocked int // procs waiting on a Cond (not in the heap)
	err     error
	stopped bool
}

// NewEngine returns an empty engine at virtual time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time. During Run it is the timestamp of
// the event being processed.
func (e *Engine) Now() Time { return e.now }

func (e *Engine) schedule(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.heap, ev)
}

// At schedules fn to run inline in the engine at absolute time t (or at the
// current time if t is in the past). Useful for timers and completions.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.schedule(&event{t: t, kind: evCall, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Spawn creates a process named name running fn and schedules it to start
// at the current virtual time. It may be called before Run or from inside
// a running Proc or callback.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnAt(e.now, name, fn)
}

// SpawnAt is Spawn with an explicit absolute start time.
func (e *Engine) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	if t < e.now {
		t = e.now
	}
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan Time),
		fn:     fn,
		state:  stateNew,
	}
	e.procs = append(e.procs, p)
	e.schedule(&event{t: t, kind: evStart, proc: p})
	return p
}

// Run processes events until the event queue drains. It returns an error
// if a Proc panicked or if runnable work remains blocked forever
// (deadlock: procs waiting on conditions nobody will signal).
func (e *Engine) Run() error {
	return e.RunUntil(^Time(0))
}

// RunUntil is Run but stops (without error) once virtual time would
// exceed limit. Events at exactly limit are still processed.
func (e *Engine) RunUntil(limit Time) error {
	for e.err == nil {
		if len(e.heap) == 0 {
			if e.blocked > 0 && !e.stopped {
				return e.deadlockError()
			}
			return e.err
		}
		if e.heap[0].t > limit {
			return e.err
		}
		ev := heap.Pop(&e.heap).(*event)
		e.now = ev.t
		switch ev.kind {
		case evCall:
			ev.fn()
		case evStart:
			ev.proc.start()
			<-e.yield
		case evResume:
			p := ev.proc
			if p.state == stateDone {
				break // stale wake-up after proc ended
			}
			p.state = stateRunning
			p.now = ev.t
			p.resume <- ev.t
			<-e.yield
		}
	}
	return e.err
}

// Stop makes Run return after the current event completes. Procs blocked
// on conditions do not count as a deadlock after Stop.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns a drained engine to its initial state - virtual time
// zero, no events, no procs, fresh sequence numbers - so the structures
// built around it (and their goroutine-free event state) can be recycled
// instead of reconstructed. It refuses engines that are not quiescent:
// pending events, procs parked on conditions, or procs that never ran
// (their goroutines would leak and their wake-ups would corrupt the next
// simulation). A successful Run leaves the engine quiescent.
func (e *Engine) Reset() error {
	if len(e.heap) != 0 || e.blocked != 0 {
		return fmt.Errorf("sim: Reset of non-quiescent engine (%d pending events, %d blocked procs)",
			len(e.heap), e.blocked)
	}
	for _, p := range e.procs {
		if p.state != stateDone {
			return fmt.Errorf("sim: Reset with proc %q not finished", p.name)
		}
	}
	clear(e.procs)
	e.procs = e.procs[:0]
	e.now, e.seq = 0, 0
	e.err = nil
	e.stopped = false
	return nil
}

func (e *Engine) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

func (e *Engine) deadlockError() error {
	var names []string
	for _, p := range e.procs {
		if p.state == stateBlocked {
			names = append(names, fmt.Sprintf("%s@%v", p.name, p.blockedOn.Name()))
		}
	}
	sort.Strings(names)
	return fmt.Errorf("sim: deadlock at t=%v: %d proc(s) blocked forever: %v",
		e.now, e.blocked, names)
}
