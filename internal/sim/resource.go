package sim

// Resource models a serially occupied facility such as a mesh link, a DMA
// channel, or the eLink: at most one transfer uses it at a time and later
// requests queue behind earlier ones in virtual time.
//
// It is a bandwidth-accounting model, not a flit-level one: a transfer of
// duration d requested at time t begins at max(t, freeAt) and the resource
// is then busy until begin+d. This captures serialization and queueing
// delay, which is what the paper's bandwidth/contention experiments
// exercise, at a tiny fraction of the cost of per-flit simulation.
type Resource struct {
	name   string
	freeAt Time
	busy   Time // cumulative busy time, for utilization stats
	uses   uint64
}

// NewResource creates a named resource that is free at time zero.
func NewResource(name string) *Resource {
	return &Resource{name: name}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Use books an occupancy of duration d requested at time t and returns the
// interval [begin, end) during which the resource is held. The caller is
// responsible for advancing its own clock to end (or to begin+latency) as
// appropriate.
func (r *Resource) Use(t, d Time) (begin, end Time) {
	begin = t
	if r.freeAt > begin {
		begin = r.freeAt
	}
	end = begin + d
	r.freeAt = end
	r.busy += d
	r.uses++
	return begin, end
}

// FreeAt returns the earliest time a new request could begin service.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns the cumulative time the resource has been occupied.
func (r *Resource) BusyTime() Time { return r.busy }

// Uses returns the number of Use calls.
func (r *Resource) Uses() uint64 { return r.uses }

// Utilization returns busy time divided by the window [0, now].
func (r *Resource) Utilization(now Time) float64 {
	if now == 0 {
		return 0
	}
	return float64(r.busy) / float64(now)
}

// Reset makes the resource free immediately and clears statistics.
func (r *Resource) Reset() { r.freeAt, r.busy, r.uses = 0, 0, 0 }
