package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// newSharded builds an engine with n chip shards beside the sys shard.
func newSharded(n, workers int, lookahead Time) *Engine {
	e := NewEngine()
	e.AddShards(n)
	e.SetLookahead(lookahead)
	e.SetWorkers(workers)
	return e
}

func TestSetWorkersClamps(t *testing.T) {
	e := newSharded(2, 1, 0)
	e.SetWorkers(0)
	if e.Workers() != 1 {
		t.Fatalf("SetWorkers(0) = %d, want clamp to 1", e.Workers())
	}
	e.SetWorkers(99)
	if e.Workers() != 3 {
		t.Fatalf("SetWorkers(99) on 3 shards = %d, want clamp to 3", e.Workers())
	}
}

func TestAddShardsRefusesLiveEngine(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AddShards after scheduling should panic")
		}
	}()
	e.AddShards(1)
}

// TestSendTaggedArbitrationOrder pins the fixed-priority-arbiter
// semantics of the tag: cross-shard posts landing on one shard at the
// same virtual time execute untagged-first, then in ascending tag
// order, regardless of which shard sent them first and of the worker
// count.
func TestSendTaggedArbitrationOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		e := newSharded(3, workers, 0)
		sys := e.Sys()
		var order []string
		arrive := func(label string) func() {
			return func() { order = append(order, label) }
		}
		// Each chip shard fires at t=5 and posts to sys for t=10. Tags
		// are deliberately anti-correlated with shard ids, and one post
		// is untagged: the untagged one must win, then tag order.
		e.Shard(1).At(5, func() { e.Shard(1).SendTagged(sys, 10, 2, arrive("tag2")) })
		e.Shard(2).At(5, func() { e.Shard(2).SendTagged(sys, 10, 0, arrive("tag0")) })
		e.Shard(3).At(5, func() { e.Shard(3).SendTagged(sys, 10, 1, arrive("tag1")) })
		e.Shard(3).At(5, func() { e.Shard(3).Send(sys, 10, arrive("untagged")) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		want := []string{"untagged", "tag0", "tag1", "tag2"}
		if !reflect.DeepEqual(order, want) {
			t.Fatalf("workers=%d: arrival order %v, want %v", workers, order, want)
		}
	}
}

// TestBookingOrderAcrossWorkers pins the booking floor: an event that
// books mesh-link occupancy on a chip shard must not run ahead of a
// lower-keyed cross-chip walk another chip has yet to hand to sys, even
// when the lookahead lift would otherwise admit it. Chip 2 issues a
// cross walk at t=50 (executed on sys); chip 1 books locally at t=100,
// well inside chip 2's lifted window (lookahead 1000). Canonical order
// is walk first, and it must hold for every worker count, on both the
// proc-context (AwaitBookingWindow) and callback-context (AtBooking)
// paths.
func TestBookingOrderAcrossWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, viaCallback := range []bool{false, true} {
			e := newSharded(2, workers, 1000)
			sys := e.Sys()
			var order []string
			e.Shard(2).At(50, func() {
				e.Shard(2).SendTagged(sys, 50, 7, func() { order = append(order, "walk@50") })
			})
			book := func() { order = append(order, "local@100") }
			if viaCallback {
				e.Shard(1).AtBooking(100, book)
			} else {
				e.Shard(1).SpawnAt(100, "booker", func(p *Proc) {
					p.Shard().AwaitBookingWindow()
					book()
				})
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			want := []string{"walk@50", "local@100"}
			if !reflect.DeepEqual(order, want) {
				t.Fatalf("workers=%d viaCallback=%v: order %v, want %v",
					workers, viaCallback, order, want)
			}
		}
	}
}

// TestSpawnOnRunsOnTargetShard checks that a proc spawned cross-shard
// executes in the target shard's context and joins its proc set.
func TestSpawnOnRunsOnTargetShard(t *testing.T) {
	e := newSharded(2, 1, 0)
	var ran int32 = -1
	e.At(0, func() {
		e.Sys().SpawnOn(e.Shard(2), 7, "kernel", func(p *Proc) {
			ran = p.Shard().id
			p.Wait(3)
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("SpawnOn proc ran on shard %d, want 2", ran)
	}
}

// TestDeadlockNamesProcsAndShardMarks pins the multi-shard deadlock
// diagnostics: the error names every blocked proc with the condition it
// waits on, and reports each shard's low-water mark.
func TestDeadlockNamesProcsAndShardMarks(t *testing.T) {
	e := newSharded(2, 1, 0)
	stuck := NewCondOn(e.Shard(1), "never-signaled")
	e.Shard(1).Spawn("victim", func(p *Proc) {
		p.Wait(42 * Nanosecond)
		p.WaitCond(stuck)
	})
	err := e.Run()
	if err == nil {
		t.Fatal("want deadlock error")
	}
	for _, frag := range []string{"victim@never-signaled", "low-water marks", "sys@t=", "chip0@t=42ns"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("deadlock error %q missing %q", err, frag)
		}
	}
}

// TestExpectReplyGuardsReset: an unbalanced ExpectReply makes the
// engine non-recyclable, and ReplyArrived without a matching
// ExpectReply panics.
func TestExpectReplyGuardsReset(t *testing.T) {
	e := newSharded(1, 1, 0)
	e.Shard(1).At(0, func() { e.Shard(1).ExpectReply() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Reset(); err == nil || !strings.Contains(err.Error(), "replies outstanding") {
		t.Fatalf("Reset with a pending reply = %v, want outstanding-replies error", err)
	}
	e.Shard(1).ReplyArrived()
	if err := e.Reset(); err != nil {
		t.Fatalf("Reset after the reply arrived: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ReplyArrived without ExpectReply should panic")
		}
	}()
	e.Shard(1).ReplyArrived()
}

// fuzzEvent builds one event of the random cross-shard workload: it
// logs its execution on its shard's private log, then derives 1-2
// children from its own seed (never from shared state, so the event
// population is independent of execution order) and posts them at
// random targets, times and tags.
func fuzzEvent(e *Engine, logs [][]string, sh *Shard, seed uint64, depth int) func() {
	return func() {
		id := sh.ID()
		logs[id] = append(logs[id], fmt.Sprintf("t=%d seed=%x", sh.Now(), seed))
		if depth == 0 {
			return
		}
		r := NewRand(seed)
		for i := 0; i < 1+r.Intn(2); i++ {
			target := e.Shard(r.Intn(e.NumShards()))
			delay := Time(r.Intn(50))
			if id != 0 && target.ID() != 0 && target != sh {
				// Chip-to-chip interactions honor the lookahead
				// contract, like the eLink they model.
				delay += e.Lookahead()
			}
			child := seed*0x9E3779B97F4A7C15 + uint64(i) + 1
			next := fuzzEvent(e, logs, target, child, depth-1)
			switch {
			case target == sh:
				sh.At(sh.Now()+delay, next)
			case r.Intn(2) == 0:
				sh.SendTagged(target, sh.Now()+delay, r.Intn(8), next)
			default:
				sh.Send(target, sh.Now()+delay, next)
			}
		}
	}
}

// runFuzz executes the seeded random workload and returns the per-shard
// execution logs.
func runFuzz(t *testing.T, chips, workers int, lookahead Time, seed uint64, depth int) [][]string {
	t.Helper()
	e := newSharded(chips, workers, lookahead)
	logs := make([][]string, e.NumShards())
	for i := 0; i < e.NumShards(); i++ {
		sh := e.Shard(i)
		sh.At(Time(i), fuzzEvent(e, logs, sh, seed+uint64(i), depth))
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return logs
}

// TestInterShardOrderFuzz is the ordering fuzz test for the inter-shard
// inbox: seeded random workloads posting cross-shard events (tagged and
// untagged, with and without lookahead) must execute in exactly the
// same per-shard order and at the same virtual times under the
// sequential merge (workers=1) and the parallel barrier-window
// scheduler at several worker counts. Run it with -race to also check
// the scheduler's memory discipline.
func TestInterShardOrderFuzz(t *testing.T) {
	for _, lookahead := range []Time{0, 40} {
		for seed := uint64(1); seed <= 5; seed++ {
			base := runFuzz(t, 4, 1, lookahead, seed, 6)
			events := 0
			for _, l := range base {
				events += len(l)
			}
			if events < 50 {
				t.Fatalf("seed %d generated only %d events; fuzz workload degenerate", seed, events)
			}
			for _, workers := range []int{2, 5} {
				got := runFuzz(t, 4, workers, lookahead, seed, 6)
				if !reflect.DeepEqual(got, base) {
					t.Errorf("lookahead=%v seed=%d: workers=%d diverged from the sequential schedule", lookahead, seed, workers)
				}
			}
		}
	}
}
