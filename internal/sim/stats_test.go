package sim

import (
	"strings"
	"testing"
)

// TestStatsSequentialCounts: the always-on counters on the classic
// single-heap engine - events dispatched, heap peak - with the parallel
// machinery quiet.
func TestStatsSequentialCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(10*(i+1)), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Shards != 1 || st.Workers != 1 {
		t.Errorf("layout %dx%d, want 1x1", st.Shards, st.Workers)
	}
	if st.Events != 5 || st.SysEvents != 5 {
		t.Errorf("events %d/%d, want 5/5", st.Events, st.SysEvents)
	}
	if st.SysShare != 1 {
		t.Errorf("SysShare = %v, want 1 (everything on the sys shard)", st.SysShare)
	}
	if st.PerShard[0].HeapPeak != 5 {
		t.Errorf("heap peak %d, want 5 (all scheduled up front)", st.PerShard[0].HeapPeak)
	}
	if st.BarrierRounds != 0 || st.CrossPosts != 0 || st.BookingParks != 0 {
		t.Errorf("sequential run armed parallel counters: %+v", st)
	}
}

// TestStatsShardedCounters: cross-shard posts (plain and tagged) land
// in the sender's counters, events land in the executing shard's, and
// the parallel scheduler's round count is visible.
func TestStatsShardedCounters(t *testing.T) {
	e := newSharded(2, 2, 0)
	sys := e.Sys()
	e.Shard(1).At(5, func() { e.Shard(1).Send(sys, 10, func() {}) })
	e.Shard(2).At(5, func() { e.Shard(2).SendTagged(sys, 10, 3, func() {}) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Shards != 3 || st.Workers != 2 {
		t.Fatalf("layout %dx%d, want 3x2", st.Shards, st.Workers)
	}
	if st.Events != 4 { // two shard-local events + two posted arrivals on sys
		t.Errorf("events = %d, want 4", st.Events)
	}
	if st.CrossPosts != 2 || st.TaggedPosts != 1 {
		t.Errorf("cross posts %d (tagged %d), want 2 (1)", st.CrossPosts, st.TaggedPosts)
	}
	if st.PerShard[1].CrossPosts != 1 || st.PerShard[2].TaggedPosts != 1 {
		t.Errorf("posts not attributed to the sending shard: %+v", st.PerShard)
	}
	if st.SysEvents != 2 {
		t.Errorf("sys executed %d events, want the 2 posted arrivals", st.SysEvents)
	}
	if st.BarrierRounds == 0 {
		t.Error("parallel run reported zero barrier rounds")
	}
	if got := []string{st.PerShard[0].Label, st.PerShard[1].Label, st.PerShard[2].Label}; got[0] != "sys" || got[1] != "chip0" || got[2] != "chip1" {
		t.Errorf("shard labels %v", got)
	}
}

// TestStatsResetClears: a recycled engine starts its counters at zero.
func TestStatsResetClears(t *testing.T) {
	e := newSharded(2, 2, 0)
	e.Shard(1).At(5, func() { e.Shard(1).Send(e.Sys(), 10, func() {}) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Events == 0 {
		t.Fatal("no events before reset; test is vacuous")
	}
	e.Reset()
	st := e.Stats()
	if st.Events != 0 || st.CrossPosts != 0 || st.BarrierRounds != 0 || st.PhaseAWallNS != 0 {
		t.Errorf("reset kept counters: %+v", st)
	}
	if st.PerShard[0].HeapPeak != 0 {
		t.Errorf("reset kept heap peak %d", st.PerShard[0].HeapPeak)
	}
}

// TestRoundHookFiresPerRound: the hook runs once per barrier round with
// coherent bounds, and matches the round counter.
func TestRoundHookFiresPerRound(t *testing.T) {
	e := newSharded(2, 2, 0)
	var calls uint64
	var lastRound uint64
	e.SetRoundHook(func(round uint64, start, end Time) {
		if round != calls {
			t.Errorf("round %d delivered out of order (call %d)", round, calls)
		}
		if end < start {
			t.Errorf("round %d: end %v before start %v", round, end, start)
		}
		calls++
		lastRound = round
	})
	e.Shard(1).At(5, func() { e.Shard(1).Send(e.Sys(), 10, func() {}) })
	e.Shard(2).At(7, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if calls == 0 {
		t.Fatal("round hook never fired on a parallel run")
	}
	if calls != st.BarrierRounds || lastRound != st.BarrierRounds-1 {
		t.Errorf("hook fired %d times, last round %d; stats report %d rounds",
			calls, lastRound, st.BarrierRounds)
	}
}

// TestStatsStringReport: the rendered report carries the layout header
// and one table row per shard.
func TestStatsStringReport(t *testing.T) {
	e := newSharded(2, 2, 0)
	e.Shard(1).At(5, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats().String()
	for _, want := range []string{
		"engine: 3 shard(s) x 2 worker(s)",
		"barrier rounds",
		"cross-shard posts",
		"sys", "chip0", "chip1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}
