package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property: events fire in nondecreasing time order regardless of the
// order they were scheduled in.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 200 {
			delays = delays[:200]
		}
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			d := Time(d)
			e.At(d, func() { fired = append(fired, e.Now()) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a proc's clock never goes backwards, whatever it waits on.
func TestProcClockMonotoneProperty(t *testing.T) {
	f := func(waits []uint8) bool {
		e := NewEngine()
		ok := true
		c := NewCond(e, "tick")
		// The ticker broadcasts well past any time the subject can reach
		// (11 waits of <= 255 plus 4 cond waits of <= 1000 each), so a
		// WaitCond below always has a future broadcast to catch.
		e.Spawn("ticker", func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.Wait(1000)
				c.Broadcast()
			}
		})
		e.Spawn("subject", func(p *Proc) {
			last := p.Now()
			for i, w := range waits {
				if i > 10 {
					break
				}
				if w%2 == 0 {
					p.Wait(Time(w))
				} else if i < 4 {
					p.WaitCond(c)
				}
				if p.Now() < last {
					ok = false
				}
				last = p.Now()
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Resource never double-books - consecutive grants on one
// resource have non-overlapping intervals, and begin >= request time.
func TestResourceNoOverlapProperty(t *testing.T) {
	f := func(reqs []struct{ At, Dur uint16 }) bool {
		r := NewResource("x")
		type iv struct{ b, e Time }
		var got []iv
		for _, q := range reqs {
			if q.Dur == 0 {
				continue
			}
			b, e := r.Use(Time(q.At), Time(q.Dur))
			if b < Time(q.At) || e != b+Time(q.Dur) {
				return false
			}
			got = append(got, iv{b, e})
		}
		sort.Slice(got, func(i, j int) bool { return got[i].b < got[j].b })
		for i := 1; i < len(got); i++ {
			if got[i].b < got[i-1].e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Broadcast before any waiter exists must not wake later waiters
// (condition variables are not latches).
func TestCondIsNotALatch(t *testing.T) {
	e := NewEngine()
	c := NewCond(e, "edge")
	e.Spawn("early", func(p *Proc) {
		c.Broadcast() // nobody is waiting
	})
	woke := false
	e.Spawn("late", func(p *Proc) {
		p.Wait(10)
		done := NewCond(e, "timeout")
		e.At(100, func() { done.Broadcast() })
		// Race the never-signalled cond against a timeout using a helper proc.
		e.Spawn("waiter", func(q *Proc) {
			q.WaitCond(c)
			woke = true
		})
		p.WaitCond(done)
		e.Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke {
		t.Fatal("waiter woke from a broadcast that happened before it waited")
	}
}

// engineTrace runs a pseudo-random mix of procs, timer callbacks and
// resource contention derived from seed and returns the full event
// trace (proc id, virtual time) in execution order.
func engineTrace(seed uint64) []Time {
	rng := NewRand(seed)
	e := NewEngine()
	res := []*Resource{NewResource("a"), NewResource("b"), NewResource("c")}
	var trace []Time
	record := func(id int) { trace = append(trace, Time(id)<<32|e.Now()) }
	nProcs := 4 + rng.Intn(12)
	for p := 0; p < nProcs; p++ {
		p := p
		steps := 1 + rng.Intn(6)
		waits := make([]Time, steps)
		uses := make([]int, steps)
		durs := make([]Time, steps)
		for i := 0; i < steps; i++ {
			waits[i] = Time(rng.Intn(50))
			uses[i] = rng.Intn(len(res))
			durs[i] = Time(1 + rng.Intn(20))
		}
		e.SpawnAt(Time(rng.Intn(30)), "p", func(pr *Proc) {
			for i := 0; i < steps; i++ {
				pr.Wait(waits[i])
				_, end := res[uses[i]].Use(pr.Now(), durs[i])
				pr.WaitUntil(end)
				record(p)
			}
		})
	}
	nTimers := rng.Intn(10)
	for i := 0; i < nTimers; i++ {
		id := 100 + i
		e.At(Time(rng.Intn(200)), func() { record(id) })
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return trace
}

// FuzzEngineOrderingDeterminism: same seed + same spawn order => an
// identical event trace, the property every multi-chip simulation rests
// on. The corpus seeds run under plain `go test`.
func FuzzEngineOrderingDeterminism(f *testing.F) {
	for _, s := range []uint64{0, 1, 3, 1234, 1 << 33} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		a, b := engineTrace(seed), engineTrace(seed)
		if len(a) != len(b) {
			t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("event %d differs: %#x vs %#x", i, a[i], b[i])
			}
		}
	})
}

func TestEngineManyProcsDeterministicTrace(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var order []int
		for i := 0; i < 32; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				p.Wait(Time(100 - i)) // reverse-sorted wake order
				order = append(order, i)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace differs between runs")
		}
		if a[i] != 31-i {
			t.Fatalf("wake order wrong at %d: %v", i, a[:i+1])
		}
	}
}
