package sim

import (
	"fmt"
	"runtime/debug"
)

type procState uint8

const (
	stateNew procState = iota
	stateRunning
	stateWaiting // in the event heap with a scheduled resume
	stateBlocked // waiting on a Cond, not in the heap
	stateDone
)

// Proc is a simulated process. Its function runs on a dedicated goroutine,
// but the engine ensures only one Proc executes at a time, so Procs may
// freely touch shared simulation state without synchronization.
type Proc struct {
	eng       *Engine
	id        int
	name      string
	now       Time
	resume    chan Time
	fn        func(*Proc)
	state     procState
	blockedOn *Cond // the Cond being waited on (deadlock diagnostics)
	done      *Cond // lazily created completion condition
}

// Engine returns the engine this Proc belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the Proc's unique spawn index.
func (p *Proc) ID() int { return p.id }

// Now returns the Proc's current virtual time.
func (p *Proc) Now() Time { return p.now }

// start launches the Proc's goroutine. Engine-side only.
func (p *Proc) start() {
	p.state = stateRunning
	p.now = p.eng.now
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.eng.fail(fmt.Errorf("sim: proc %q panicked at t=%v: %v\n%s",
					p.name, p.now, r, debug.Stack()))
			}
			p.state = stateDone
			if p.done != nil {
				p.done.Broadcast()
			}
			p.eng.yield <- struct{}{}
		}()
		p.fn(p)
	}()
}

// Wait advances the Proc's clock by d, letting other events at earlier
// times run first. Wait(0) yields the processor while keeping time fixed
// (events already queued at the same time run before the Proc resumes).
func (p *Proc) Wait(d Time) { p.WaitUntil(p.now + d) }

// WaitCycles advances the Proc's clock by n core clock cycles.
func (p *Proc) WaitCycles(n uint64) { p.Wait(Cycles(n)) }

// WaitUntil advances the Proc's clock to absolute time t (no-op if t is
// not in the future, other than yielding).
func (p *Proc) WaitUntil(t Time) {
	if t < p.now {
		t = p.now
	}
	p.state = stateWaiting
	p.eng.schedule(&event{t: t, kind: evResume, proc: p})
	p.eng.yield <- struct{}{}
	p.now = <-p.resume
}

// Block parks the Proc with no scheduled wake-up; something must later call
// unblock (via Cond signalling). c's name appears in deadlock reports.
func (p *Proc) block(c *Cond) {
	p.state = stateBlocked
	p.blockedOn = c
	p.eng.blocked++
	p.eng.yield <- struct{}{}
	p.now = <-p.resume
}

// unblock schedules the Proc to resume at time t. Engine/Cond-side only.
func (p *Proc) unblock(t Time) {
	if p.state != stateBlocked {
		return
	}
	if t < p.eng.now {
		t = p.eng.now
	}
	p.state = stateWaiting
	p.blockedOn = nil
	p.eng.blocked--
	p.eng.schedule(&event{t: t, kind: evResume, proc: p})
}

// Done returns a Cond broadcast when the Proc's function returns. Other
// Procs can WaitCond on it to join.
func (p *Proc) Done() *Cond {
	if p.done == nil {
		p.done = NewCond(p.eng, "done:"+p.name)
	}
	return p.done
}

// Finished reports whether the Proc's function has returned.
func (p *Proc) Finished() bool { return p.state == stateDone }

// Join blocks p until other has finished.
func (p *Proc) Join(other *Proc) {
	for !other.Finished() {
		p.WaitCond(other.Done())
	}
}
