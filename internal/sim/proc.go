package sim

import (
	"fmt"
	"runtime/debug"
)

type procState uint8

const (
	stateNew procState = iota
	stateRunning
	stateWaiting // in the event heap with a scheduled resume
	stateBlocked // waiting on a Cond, not in the heap
	stateDone
)

// Proc is a simulated process. Its function runs on a dedicated goroutine,
// but the owning shard ensures only one of its Procs executes at a time,
// so Procs may freely touch their shard's simulation state without
// synchronization. State owned by other shards must be reached through
// Shard.Send.
type Proc struct {
	sh        *Shard
	id        int
	name      string
	now       Time
	resume    chan Time
	fn        func(*Proc)
	state     procState
	blockedOn *Cond // the Cond being waited on (deadlock diagnostics)
	done      *Cond // completion condition, owned by shard 0
	// doneSys mirrors "the proc finished" into shard 0's timeline: it
	// is set by a shard-0 event at the completion time, so host-side
	// code (the only cross-shard reader) observes completion exactly
	// when the done Cond broadcasts. On a single-shard engine it is
	// set inline, identical to the classic engine.
	doneSys bool
}

// Engine returns the engine this Proc belongs to.
func (p *Proc) Engine() *Engine { return p.sh.eng }

// Shard returns the shard this Proc runs on.
func (p *Proc) Shard() *Shard { return p.sh }

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns the Proc's spawn index within its shard.
func (p *Proc) ID() int { return p.id }

// Now returns the Proc's current virtual time.
func (p *Proc) Now() Time { return p.now }

// start launches the Proc's goroutine. Shard-side only.
func (p *Proc) start() {
	p.state = stateRunning
	p.now = p.sh.now
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.sh.eng.fail(fmt.Errorf("sim: proc %q panicked at t=%v: %v\n%s",
					p.name, p.now, r, debug.Stack()))
			}
			p.state = stateDone
			sys := p.sh.eng.shards[0]
			if p.sh == sys {
				p.doneSys = true
				p.done.Broadcast()
			} else {
				pp := p
				p.sh.Send(sys, p.now, func() {
					pp.doneSys = true
					pp.done.Broadcast()
				})
			}
			p.sh.yield <- struct{}{}
		}()
		p.fn(p)
	}()
}

// Wait advances the Proc's clock by d, letting other events at earlier
// times run first. Wait(0) yields the processor while keeping time fixed
// (events already queued at the same time run before the Proc resumes).
func (p *Proc) Wait(d Time) { p.WaitUntil(p.now + d) }

// WaitCycles advances the Proc's clock by n core clock cycles.
func (p *Proc) WaitCycles(n uint64) { p.Wait(Cycles(n)) }

// WaitUntil advances the Proc's clock to absolute time t (no-op if t is
// not in the future, other than yielding).
func (p *Proc) WaitUntil(t Time) {
	if t < p.now {
		t = p.now
	}
	p.state = stateWaiting
	p.sh.schedule(&event{t: t, kind: evResume, proc: p})
	p.sh.yield <- struct{}{}
	p.now = <-p.resume
}

// Block parks the Proc with no scheduled wake-up; something must later call
// unblock (via Cond signalling). c's name appears in deadlock reports.
func (p *Proc) block(c *Cond) {
	p.state = stateBlocked
	p.blockedOn = c
	p.sh.blocked++
	p.sh.yield <- struct{}{}
	p.now = <-p.resume
}

// unblock schedules the Proc to resume at time t. Shard/Cond-side only.
func (p *Proc) unblock(t Time) {
	if p.state != stateBlocked {
		return
	}
	if t < p.sh.now {
		t = p.sh.now
	}
	p.state = stateWaiting
	p.blockedOn = nil
	p.sh.blocked--
	p.sh.schedule(&event{t: t, kind: evResume, proc: p})
}

// Done returns a Cond broadcast when the Proc's function returns. Other
// Procs can WaitCond on it to join. The Cond is owned by shard 0, where
// joining (host-side) code runs.
func (p *Proc) Done() *Cond { return p.done }

// Finished reports whether the Proc's function has returned, as
// observed from shard 0's timeline (the only place cross-shard code
// asks; on a single-shard engine this is simply "the function
// returned").
func (p *Proc) Finished() bool { return p.doneSys }

// Join blocks p until other has finished.
func (p *Proc) Join(other *Proc) {
	for !other.Finished() {
		p.WaitCond(other.Done())
	}
}
