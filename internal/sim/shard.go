package sim

import (
	"container/heap"
	"fmt"
	"sync"
)

// key is the deterministic total order over events: virtual time first,
// then the origin tag, then the scheduling shard's id, then that
// shard's scheduling sequence number. Because the tag/id/seq triple is
// always the *sender's* (the shard whose code created the event), a key
// is a pure function of the simulated program, never of host
// scheduling: the same board produces the same keys whether its shards
// run on one worker or sixteen. That is the whole determinism argument
// of the parallel engine - events execute in key order per shard, and
// every cross-shard interaction is an event.
//
// The tag exists for same-time arbitration of shared resources. Local
// events are untagged (-1) and order among themselves by creation
// order, exactly like the classic single-heap engine. Cross-shard
// requests that contend for a shared resource (eLink arbiter, DRAM
// read link, boundary mesh slots) are tagged with the issuing core's
// index via SendTagged, so simultaneous requests from different chips
// are served in core order - a fixed priority arbiter - rather than in
// the arbitrary order of shard ids. Core order is also what the
// single-heap engine produces for the symmetric lock-step access
// patterns of real kernels (cores are launched, woken and resumed in
// index order), which is what keeps sharded runs bit-identical to the
// classic engine.
type key struct {
	t   Time
	tag int32
	sid int32
	seq uint64
}

func (k key) less(o key) bool {
	if k.t != o.t {
		return k.t < o.t
	}
	if k.tag != o.tag {
		return k.tag < o.tag
	}
	if k.sid != o.sid {
		return k.sid < o.sid
	}
	return k.seq < o.seq
}

// untagged is the tag of every locally scheduled event; it sorts ahead
// of any core-tagged cross-shard request at the same time.
const untagged = -1

// bookingRetryTag is the tag of the resume event AwaitBookingWindow
// schedules when it parks a proc mid-booking. It sorts below untagged,
// so the parked remainder resumes ahead of every other event at the
// same instant - the exact schedule position the uninterrupted event
// occupied. No cross-shard post can ever carry it (posts are untagged
// or core-tagged), so nothing can slot in front of a parked remainder.
const bookingRetryTag = -2

// infKey compares greater than every real event key (real shard ids
// and tags are small ints).
var infKey = key{t: ^Time(0), tag: 1 << 30, sid: 1 << 30, seq: ^uint64(0)}

// Shard is one partition of an Engine: its own event heap, clock,
// sequence counter, Procs, and (via the structures built on top) the
// Conds, Resources and memories of one chip. Every piece of simulation
// state is owned by exactly one shard, and only events dispatched by
// that shard may touch it; interactions between shards travel as
// events posted with Send. An engine always has at least shard 0 (the
// "sys" shard: host, eLink arbiter, DRAM); multi-chip boards add one
// shard per chip with Engine.AddShards.
type Shard struct {
	eng *Engine
	id  int32

	heap    eventHeap
	now     Time
	seq     uint64
	yield   chan struct{} // a proc (or its demise) hands control back here
	procs   []*Proc
	blocked int // procs waiting on a Cond (not in the heap)
	rng     *Rand

	// running is true while an event of this shard is being dispatched;
	// it backs the ownership assertions (a cheap bool, flipped once per
	// event).
	running bool

	// pendingReplies counts in-flight requests whose reply will be
	// posted back to this shard by another *chip* shard with no
	// lookahead guarantee (cross-chip DMA chain continuations). While
	// it is non-zero the parallel scheduler collapses this shard's
	// bound to the key-precise minimum of all frontiers, so the shard
	// can never advance past the reply's timestamp before receiving
	// it. Owned by this shard's execution context.
	pendingReplies int

	// inbox receives cross-shard posts while a parallel Run is in
	// flight; the owner drains it into the heap at every round
	// barrier. Outside parallel runs Send pushes straight into the
	// heap.
	inboxMu sync.Mutex
	inbox   []*event

	// Scheduler scratch, written by the owning worker and read by the
	// coordinator strictly between round barriers.
	frontKey key
	frontOK  bool
	bound    key
	// safeKey is the round's booking floor: the key-precise (never
	// lifted) minimum of the other chip shards' frontiers. Below it no
	// other chip can still issue a cross-chip mesh walk, so booking
	// order-sensitive link state is sound; at or above it a booking
	// must wait (see AwaitBookingWindow). Written by the coordinator
	// alongside bound.
	safeKey key
	// execKey is the key of the event this shard is currently
	// dispatching, and curProc its proc (nil for callback events). They
	// let a booking made mid-event locate its own schedule position and
	// park its proc. Owned by this shard's execution context.
	execKey key
	curProc *Proc
	// posted is set when this shard sent a cross-shard event in the
	// current round; the shard stops its round at that point (see
	// phaseB) so no shard ever executes ahead of a post whose
	// consequences are not yet visible in any frontier. stalled is its
	// booking twin: set when a booking parked its proc this round, it
	// stops the round so the retry waits for fresh frontiers instead of
	// spinning on the stale booking floor.
	posted  bool
	stalled bool

	// Scheduler counters, snapshotted by Engine.Stats (see ShardStats).
	// Each is a single increment on a path that already does real work,
	// so they are unconditionally on. Written only from this shard's
	// execution context (or single-threaded engine code); read between
	// runs.
	nEvents      uint64
	heapPeak     int
	crossPosts   uint64
	taggedPosts  uint64
	bookingParks uint64
	heldByBound  uint64
	heldByFloor  uint64
}

// Engine returns the engine this shard belongs to.
func (s *Shard) Engine() *Engine { return s.eng }

// ID returns the shard's index: 0 is the sys shard (host, eLink, DRAM),
// 1..n are chip shards.
func (s *Shard) ID() int { return int(s.id) }

// Now returns the shard's current virtual time. During Run it is the
// timestamp of the event being processed on this shard.
func (s *Shard) Now() Time { return s.now }

// Rand returns the shard's deterministic PRNG stream, seeded from the
// shard id so streams are independent, reproducible, and survive Reset
// re-seeded identically.
func (s *Shard) Rand() *Rand {
	if s.rng == nil {
		s.rng = NewRand(rngSeedBase + uint64(s.id))
	}
	return s.rng
}

// rngSeedBase offsets shard RNG seeds away from 0 (NewRand remaps 0).
const rngSeedBase = 0x51A2D03B97F4A7C1

// assertOwner panics when code running outside this shard's execution
// context schedules local work on it - the bug class the shard
// partition exists to exclude. Scheduling from outside any running
// event (construction, between runs) is always allowed.
func (s *Shard) assertOwner(what string) {
	if s.eng.midRun && !s.running {
		panic(fmt.Sprintf("sim: %s on shard %d from outside its execution context (use Send/SpawnOn for cross-shard work)", what, s.id))
	}
}

// schedule enqueues a locally created event, stamping it with this
// shard's (id, seq) key.
func (s *Shard) schedule(ev *event) {
	ev.tag = untagged
	ev.sid = s.id
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.heap, ev)
	s.notePeak()
}

// notePeak records the heap high-water mark; call after any push.
func (s *Shard) notePeak() {
	if n := len(s.heap); n > s.heapPeak {
		s.heapPeak = n
	}
}

// At schedules fn to run inline on this shard at absolute time t (or at
// the shard's current time if t is in the past). It must be called from
// this shard's own execution context; cross-shard scheduling goes
// through Send.
func (s *Shard) At(t Time, fn func()) {
	s.assertOwner("At")
	if t < s.now {
		t = s.now
	}
	s.schedule(&event{t: t, kind: evCall, fn: fn})
}

// After schedules fn to run d after the shard's current virtual time.
func (s *Shard) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Send schedules fn to run on shard to at absolute time t. It is the
// only way to make another shard do something: fn runs in to's
// execution context, in deterministic key order - the event is keyed by
// the *sender's* (shard, seq), so the schedule is independent of how
// shards are mapped to workers. fn must touch only state owned by to
// (plus values the sender froze before sending). t is clamped to the
// sender's current time.
func (s *Shard) Send(to *Shard, t Time, fn func()) {
	s.post(to, t, untagged, &event{kind: evCall, fn: fn})
}

// SendTagged is Send for cross-shard requests that contend for a shared
// resource: the event carries the issuing core's index as its
// arbitration tag, so simultaneous requests from different chips are
// granted in core order (a fixed-priority arbiter) instead of shard-id
// order. Same determinism guarantees as Send - the tag is part of the
// schedule-independent key.
func (s *Shard) SendTagged(to *Shard, t Time, core int, fn func()) {
	s.post(to, t, int32(core), &event{kind: evCall, fn: fn})
}

// AtBooking is At for callback events that may book mesh link occupancy
// when they run (a DMA chain continuation delivering its next
// descriptor). The parallel scheduler holds such an event - and the
// shard's round - until its key drops below the booking floor, because
// a callback cannot park mid-execution the way a proc can (see
// AwaitBookingWindow). In sequential modes it is exactly At.
func (s *Shard) AtBooking(t Time, fn func()) {
	s.assertOwner("AtBooking")
	if t < s.now {
		t = s.now
	}
	s.schedule(&event{t: t, kind: evCall, fn: fn, mayBook: true})
}

// SendBooking is Send for cross-shard continuations that may book mesh
// link occupancy on the target shard. See AtBooking.
func (s *Shard) SendBooking(to *Shard, t Time, fn func()) {
	s.post(to, t, untagged, &event{kind: evCall, fn: fn, mayBook: true})
}

func (s *Shard) post(to *Shard, t Time, tag int32, ev *event) {
	if t < s.now {
		t = s.now
	}
	ev.t = t
	if to == s {
		// Self-sends keep creation order (untagged), exactly like the
		// classic engine: with a single shard there is no cross-chip
		// arbitration to model and legacy order is the golden one.
		s.assertOwner("Send")
		s.schedule(ev)
		return
	}
	s.assertRunningFor("Send")
	ev.tag = tag
	ev.sid = s.id
	ev.seq = s.seq
	s.seq++
	s.crossPosts++
	if tag != untagged {
		s.taggedPosts++
	}
	if s.eng.parallel {
		s.posted = true
		to.inboxMu.Lock()
		to.inbox = append(to.inbox, ev)
		to.inboxMu.Unlock()
		return
	}
	// Sequential modes run shards on one goroutine, so writing the
	// receiver's heap (and peak) directly is safe.
	heap.Push(&to.heap, ev)
	to.notePeak()
}

// assertRunningFor panics when cross-shard work is posted from outside
// any execution context during a run (the key would not be stamped by
// the shard that causally produced the event).
func (s *Shard) assertRunningFor(what string) {
	if s.eng.midRun && !s.running {
		panic(fmt.Sprintf("sim: cross-shard %s from outside shard %d's execution context", what, s.id))
	}
}

// Spawn creates a process named name on this shard running fn and
// schedules it to start at the shard's current virtual time.
func (s *Shard) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt is Spawn with an explicit absolute start time.
func (s *Shard) SpawnAt(t Time, name string, fn func(p *Proc)) *Proc {
	s.assertOwner("Spawn")
	if t < s.now {
		t = s.now
	}
	p := s.newProc(name, fn)
	p.id = len(s.procs)
	s.procs = append(s.procs, p)
	s.schedule(&event{t: t, kind: evStart, proc: p})
	return p
}

// SpawnOn creates a process on shard to, scheduled from this shard's
// execution context (the host launching a kernel onto a chip shard).
// The proc joins to's proc set when its start event executes.
func (s *Shard) SpawnOn(to *Shard, t Time, name string, fn func(p *Proc)) *Proc {
	if to == s {
		return s.SpawnAt(t, name, fn)
	}
	p := to.newProc(name, fn)
	p.id = -1 // assigned when the start event runs on to
	s.post(to, t, untagged, &event{kind: evStart, proc: p})
	return p
}

func (s *Shard) newProc(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		sh:     s,
		name:   name,
		resume: make(chan Time),
		fn:     fn,
		state:  stateNew,
	}
	// The done cond is created eagerly: it is owned by shard 0 (only
	// host-side code joins kernels) and lazily creating it from two
	// shards would race.
	p.done = NewCondOn(s.eng.shards[0], "done:"+name)
	return p
}

// ExpectReply marks this shard as awaiting a zero-lookahead reply from
// another chip shard (a cross-chip DMA completion). Until ReplyArrived
// is called the parallel scheduler holds this shard's bound at the
// key-precise global minimum so the reply can never arrive in the
// shard's past. Must be called from this shard's execution context.
func (s *Shard) ExpectReply() { s.pendingReplies++ }

// ReplyArrived releases one ExpectReply hold; call it from the handler
// of the reply event.
func (s *Shard) ReplyArrived() {
	if s.pendingReplies <= 0 {
		panic("sim: ReplyArrived without matching ExpectReply")
	}
	s.pendingReplies--
}

// AwaitBookingWindow delays the caller until booking order-sensitive
// shared board state at the current execution key is sound under the
// parallel scheduler; everywhere else (sequential runs, the sys shard,
// calls from outside a dispatch) it is a no-op.
//
// Mesh link occupancy is a FIFO high-water mark per slot, so bookings
// do not commute: they must happen in canonical key order. Cross-chip
// walks book on the sys shard at their issue event's key - a zero-
// latency effect the chip-to-chip lookahead lift knows nothing about.
// A chip running inside another chip's lifted window could therefore
// book its local links at a key above a cross walk still in flight to
// sys, inverting the canonical booking order (and with it arrival
// times, wake-ups, and poll counts). The cure is a key-precise booking
// floor: a chip-shard booking proceeds only when its key is below every
// other chip's unlifted frontier, so any lower-keyed walk is provably
// already in sys's heap - where the ordinary (never lifted) sys bound
// orders it ahead of this shard's events. When the floor is not yet
// met, the event's proc parks and its remainder resumes at the same
// virtual time in a later round, keyed with bookingRetryTag so nothing
// else at that instant can overtake it; the executed schedule stays
// exactly canonical. Callback events cannot park, so events that may
// book must be scheduled with AtBooking/SendBooking, which phaseB holds
// whole; a booking from an unmarked callback panics.
func (s *Shard) AwaitBookingWindow() {
	if !s.eng.parallel || s.id == 0 || !s.running {
		return
	}
	for !s.execKey.less(s.safeKey) {
		p := s.curProc
		if p == nil {
			panic(fmt.Sprintf("sim: mesh booking from a plain callback on shard %d during a parallel run (schedule it with AtBooking/SendBooking)", s.id))
		}
		s.bookingParks++
		s.stalled = true
		p.state = stateWaiting
		ev := &event{t: s.now, tag: bookingRetryTag, sid: s.id, seq: s.seq, kind: evResume, proc: p}
		s.seq++
		heap.Push(&s.heap, ev)
		s.notePeak()
		s.yield <- struct{}{}
		p.now = <-p.resume
	}
}

// drainInbox moves posted events into the heap. Owner context only.
func (s *Shard) drainInbox() {
	s.inboxMu.Lock()
	pending := s.inbox
	s.inbox = nil
	s.inboxMu.Unlock()
	for _, ev := range pending {
		if ev.t < s.now {
			panic(fmt.Sprintf("sim: shard %d received event at t=%v from shard %d in its past (now %v); lookahead violated",
				s.id, ev.t, ev.sid, s.now))
		}
		heap.Push(&s.heap, ev)
	}
	s.notePeak()
}

// dispatch runs one event in this shard's context.
func (s *Shard) dispatch(ev *event) {
	s.nEvents++
	s.now = ev.t
	s.execKey = ev.key()
	s.curProc = ev.proc
	s.running = true
	switch ev.kind {
	case evCall:
		ev.fn()
	case evStart:
		p := ev.proc
		if p.id < 0 { // cross-shard spawn joins the proc set on arrival
			p.id = len(s.procs)
			s.procs = append(s.procs, p)
		}
		p.start()
		<-s.yield
	case evResume:
		p := ev.proc
		if p.state == stateDone {
			break // stale wake-up after proc ended
		}
		p.state = stateRunning
		p.now = ev.t
		p.resume <- ev.t
		<-s.yield
	}
	s.running = false
	s.curProc = nil
}

// phaseA is the first half of a parallel round: drain cross-shard
// posts, publish the frontier.
func (s *Shard) phaseA() {
	s.drainInbox()
	s.posted = false
	s.stalled = false
	if len(s.heap) == 0 {
		s.frontOK = false
		return
	}
	s.frontOK = true
	s.frontKey = s.heap[0].key()
}

// phaseB is the second half of a parallel round: execute events in key
// order while they stay below the shard's window. The round ends early
// after any event that posted cross-shard work: an undrained post's
// consequences (a reply chain, a state change another shard's bound
// should see) are invisible to the frontiers the current bounds were
// derived from, so running further on stale bounds would be unsound.
// The post is drained at the next barrier and the frontiers then cover
// it.
func (s *Shard) phaseB(limit Time) {
	for len(s.heap) > 0 && !s.eng.failed.Load() {
		top := s.heap[0]
		if top.t > limit {
			return
		}
		if !top.key().less(s.bound) {
			s.heldByBound++
			return
		}
		if top.mayBook && !top.key().less(s.safeKey) {
			// A booking event must not run while another chip can
			// still issue a lower-keyed cross-chip walk; hold it (and
			// the round) until the frontiers pass it. See
			// AwaitBookingWindow.
			s.heldByFloor++
			return
		}
		s.dispatch(heap.Pop(&s.heap).(*event))
		if s.posted || s.stalled {
			return
		}
	}
}

// quiesceErr reports why the shard is not recyclable, or nil.
func (s *Shard) quiesceErr() error {
	if len(s.heap) != 0 || len(s.inbox) != 0 || s.blocked != 0 {
		return fmt.Errorf("sim: Reset of non-quiescent engine (%d pending events, %d blocked procs)",
			len(s.heap)+len(s.inbox), s.blocked)
	}
	if s.pendingReplies != 0 {
		return fmt.Errorf("sim: Reset with %d cross-shard replies outstanding on shard %d", s.pendingReplies, s.id)
	}
	for _, p := range s.procs {
		if p.state != stateDone {
			return fmt.Errorf("sim: Reset with proc %q not finished", p.name)
		}
	}
	return nil
}

// reset returns the shard to its initial state. Callers have verified
// quiescence.
func (s *Shard) reset() {
	clear(s.procs)
	s.procs = s.procs[:0]
	s.now, s.seq = 0, 0
	s.rng = nil
	s.posted = false
	s.stalled = false
	s.nEvents, s.crossPosts, s.taggedPosts = 0, 0, 0
	s.bookingParks, s.heldByBound, s.heldByFloor = 0, 0, 0
	s.heapPeak = 0
}
