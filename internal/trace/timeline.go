package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"epiphany/internal/ecore"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

// Timeline records a run's activity as Chrome trace-event JSON, the
// format ui.perfetto.dev (and chrome://tracing) open directly: per-core
// activity segments, DMA transfer legs, chip-to-chip eLink crossings,
// and - under the parallel scheduler - the engine's barrier rounds on a
// scheduler track. Attach before running a workload, WriteTo after.
//
// Recording is purely observational: the hooks fire on paths whose
// virtual times are already fixed, so a run with a Timeline attached
// computes bit-identical Metrics to one without. It is safe for
// concurrent use (parallel shards record through one mutex), and the
// written JSON is byte-deterministic for a deterministic run: events
// are fully sorted before encoding, so worker count and host scheduling
// cannot reorder them.
type Timeline struct {
	mu     sync.Mutex
	events []tev
	chip   *ecore.Chip
}

// tev is one recorded span. bytes < 0 means no payload argument.
type tev struct {
	name     string
	ts, dur  sim.Time
	pid, tid int
	bytes    int
}

// Track ids: one Perfetto "process" per hardware layer.
const (
	pidCores = 1 + iota
	pidDMA
	pidNoC
	pidScheduler
)

// NewTimeline returns an empty recorder.
func NewTimeline() *Timeline { return &Timeline{} }

// Attach installs the timeline's hooks on the chip's fabric, mesh and
// engine. Detach when the run completes (board recycling also clears
// the hooks, but a paired Detach keeps a pooled board from recording a
// stranger's run).
func (tl *Timeline) Attach(ch *ecore.Chip) {
	tl.chip = ch
	ch.Fabric().Rec = tl
	ch.Fabric().Mesh.SetRecorder(tl)
	ch.Engine().SetRoundHook(tl.Round)
}

// Detach removes the hooks installed by Attach.
func (tl *Timeline) Detach(ch *ecore.Chip) {
	ch.Fabric().Rec = nil
	ch.Fabric().Mesh.SetRecorder(nil)
	ch.Engine().SetRoundHook(nil)
}

func (tl *Timeline) add(ev tev) {
	tl.mu.Lock()
	tl.events = append(tl.events, ev)
	tl.mu.Unlock()
}

// CoreSpan implements noc.Recorder.
func (tl *Timeline) CoreSpan(core int, k noc.ActivityKind, start, end sim.Time) {
	tl.add(tev{name: k.String(), ts: start, dur: end - start, pid: pidCores, tid: core, bytes: -1})
}

// DMATransfer implements noc.Recorder.
func (tl *Timeline) DMATransfer(core int, kind string, start, end sim.Time, bytes int) {
	tl.add(tev{name: kind, ts: start, dur: end - start, pid: pidDMA, tid: core, bytes: bytes})
}

// ELinkCross implements noc.Recorder.
func (tl *Timeline) ELinkCross(slot int, start, end sim.Time, bytes int) {
	tl.add(tev{name: "c2c", ts: start, dur: end - start, pid: pidNoC, tid: slot, bytes: bytes})
}

// Round records one barrier round of the parallel scheduler; installed
// as the engine's round hook by Attach.
func (tl *Timeline) Round(round uint64, start, end sim.Time) {
	tl.add(tev{name: "barrier round", ts: start, dur: end - start, pid: pidScheduler, tid: 0, bytes: int(round)})
}

// jsonEvent is the trace-event wire format: "X" complete events with
// microsecond timestamps, plus "M" metadata naming the tracks.
type jsonEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func metaEvent(kind string, pid, tid int, name string) jsonEvent {
	return jsonEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}}
}

// micros converts a virtual time to the trace format's microseconds.
func micros(t sim.Time) float64 { return t.Nanoseconds() / 1000 }

// Export encodes the recorded events as a Chrome trace-event /
// Perfetto JSON document.
func (tl *Timeline) Export(w io.Writer) error {
	tl.mu.Lock()
	defer tl.mu.Unlock()

	// Full-key sort: a deterministic run records a deterministic event
	// multiset, and the total order makes the bytes identical for every
	// worker count and host schedule.
	sort.Slice(tl.events, func(i, j int) bool {
		a, b := tl.events[i], tl.events[j]
		if a.ts != b.ts {
			return a.ts < b.ts
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		if a.name != b.name {
			return a.name < b.name
		}
		if a.dur != b.dur {
			return a.dur < b.dur
		}
		return a.bytes < b.bytes
	})

	out := make([]jsonEvent, 0, len(tl.events)+16)
	out = append(out,
		metaEvent("process_name", pidCores, 0, "cores"),
		metaEvent("process_name", pidDMA, 0, "dma"),
		metaEvent("process_name", pidNoC, 0, "c2c links"),
		metaEvent("process_name", pidScheduler, 0, "engine scheduler"),
	)
	if tl.chip != nil {
		m := tl.chip.Map()
		for i := 0; i < tl.chip.NumCores(); i++ {
			r, c := m.CoreCoords(i)
			label := fmt.Sprintf("core %d,%d", r, c)
			out = append(out,
				metaEvent("thread_name", pidCores, i, label),
				metaEvent("thread_name", pidDMA, i, "dma "+label[5:]))
		}
	}
	for _, ev := range tl.events {
		je := jsonEvent{
			Name: ev.name, Ph: "X",
			Ts: micros(ev.ts), Dur: micros(ev.dur),
			Pid: ev.pid, Tid: ev.tid,
		}
		switch {
		case ev.pid == pidScheduler:
			je.Args = map[string]any{"round": ev.bytes}
		case ev.bytes >= 0:
			je.Args = map[string]any{"bytes": ev.bytes}
		}
		out = append(out, je)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		DisplayTimeUnit string      `json:"displayTimeUnit"`
		TraceEvents     []jsonEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ns", TraceEvents: out})
}

// Events returns how many spans have been recorded (diagnostics).
func (tl *Timeline) Events() int {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return len(tl.events)
}
