package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"epiphany/internal/dma"
	"epiphany/internal/ecore"
	"epiphany/internal/sim"
	"epiphany/internal/system"
)

// timelineEnvelope mirrors the exported document for assertions.
type timelineEnvelope struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func exportDoc(t *testing.T, tl *Timeline) timelineEnvelope {
	t.Helper()
	var buf bytes.Buffer
	if err := tl.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc timelineEnvelope
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported timeline does not parse: %v", err)
	}
	return doc
}

// TestTimelineRecordsAndExports drives the three core-activity kinds
// and a DMA transfer on a bare chip and checks the exported document:
// track metadata, span kinds, payload args, and the sorted encoding.
func TestTimelineRecordsAndExports(t *testing.T) {
	eng := sim.NewEngine()
	ch := ecore.NewChip(eng, 8, 8)
	tl := NewTimeline()
	tl.Attach(ch)
	ch.Launch(0, "c0", func(c *ecore.Core) {
		c.Compute(1000, 2000)
		c.StoreGlobal32(c.GlobalOn(0, 3, 0x700), 1)
	})
	ch.Launch(1, "c1", func(c *ecore.Core) {
		d := c.DMASetDesc(dma.Desc1D(0, c.GlobalOn(0, 2, 0), 4096, 8))
		c.DMAStart(dma.DMA0, d)
		c.DMAWait(dma.DMA0)
	})
	ch.Launch(3, "c3", func(c *ecore.Core) {
		c.WaitLocal32GE(0x700, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if tl.Events() == 0 {
		t.Fatal("no spans recorded")
	}
	doc := exportDoc(t, tl)
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}

	procNames := map[string]bool{}
	threadNames := map[string]bool{}
	spans := map[string]int{}
	lastTs := -1.0
	var meshBytes float64
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			name, _ := ev.Args["name"].(string)
			if ev.Name == "process_name" {
				procNames[name] = true
			} else {
				threadNames[name] = true
			}
		case "X":
			spans[ev.Name]++
			if ev.Ts < lastTs {
				t.Errorf("spans not sorted: %q at ts=%v after ts=%v", ev.Name, ev.Ts, lastTs)
			}
			lastTs = ev.Ts
			if ev.Name == "mesh" {
				meshBytes, _ = ev.Args["bytes"].(float64)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"cores", "dma", "c2c links", "engine scheduler"} {
		if !procNames[want] {
			t.Errorf("missing process_name %q (have %v)", want, procNames)
		}
	}
	for _, want := range []string{"core 0,0", "dma 0,0", "core 7,7"} {
		if !threadNames[want] {
			t.Errorf("missing thread_name %q", want)
		}
	}
	for _, want := range []string{"compute", "dma-wait", "flag-spin", "mesh"} {
		if spans[want] == 0 {
			t.Errorf("no %q spans (have %v)", want, spans)
		}
	}
	if meshBytes != 4096 {
		t.Errorf("mesh span bytes arg = %v, want 4096", meshBytes)
	}
	// A single-chip run crosses no chip boundary and runs sequentially:
	// no c2c spans, no scheduler rounds.
	if spans["c2c"] != 0 || spans["barrier round"] != 0 {
		t.Errorf("single-chip sequential run recorded c2c/rounds: %v", spans)
	}
}

// TestTimelineDetachStopsRecording: after Detach the hooks are gone, so
// a second run adds nothing.
func TestTimelineDetachStopsRecording(t *testing.T) {
	eng := sim.NewEngine()
	ch := ecore.NewChip(eng, 4, 4)
	tl := NewTimeline()
	tl.Attach(ch)
	ch.Launch(0, "c0", func(c *ecore.Core) { c.Compute(100, 10) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	n := tl.Events()
	if n == 0 {
		t.Fatal("no spans recorded while attached")
	}
	tl.Detach(ch)
	ch.Launch(1, "c1", func(c *ecore.Core) { c.Compute(100, 10) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tl.Events(); got != n {
		t.Errorf("detached timeline kept recording: %d -> %d spans", n, got)
	}
}

// TestClusterLinkHeatAndCrossings exercises the board-level views on
// the 4-chip cluster: a DMA from chip 0 into chip 1 must show up in
// LinkHeat's eastbound map (rendered at board geometry, 8 rows of 7
// links) and as c2c spans on an attached Timeline.
func TestClusterLinkHeatAndCrossings(t *testing.T) {
	s := system.NewTopology(system.Cluster2x2)
	ch := s.Chip()
	tl := NewTimeline()
	tl.Attach(ch)
	defer tl.Detach(ch)

	// Core (0,0) on chip 0 streams into core (0,4) - the first column of
	// chip 1 - so the route crosses the vertical chip boundary eastbound.
	ch.Launch(0, "xchip", func(c *ecore.Core) {
		d := c.DMASetDesc(dma.Desc1D(0, c.GlobalOn(0, 4, 0x4000), 2048, 8))
		for i := 0; i < 20; i++ {
			c.DMAStart(dma.DMA0, d)
			c.DMAWait(dma.DMA0)
		}
	})
	if err := s.Engine().Run(); err != nil {
		t.Fatal(err)
	}

	out := LinkHeat(ch)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // title + 8 board rows
		t.Fatalf("cluster heatmap has %d lines, want 9:\n%s", len(lines), out)
	}
	for i, line := range lines[1:] {
		if len(strings.TrimSpace(line)) != 7 { // 8 columns -> 7 eastbound links
			t.Fatalf("row %d has %q, want 7 link digits", i, line)
		}
	}
	// The on-chip legs of the route (row 0, cols 0..2) are used links.
	if strings.TrimSpace(lines[1]) == "0000000" {
		t.Errorf("route row shows no eastbound utilization:\n%s", out)
	}
	if mustTrim := strings.TrimSpace(lines[8]); mustTrim != "0000000" {
		t.Errorf("idle row 7 shows utilization %q:\n%s", mustTrim, out)
	}

	doc := exportDoc(t, tl)
	var c2c int
	var c2cBytes float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "c2c" {
			c2c++
			if b, _ := ev.Args["bytes"].(float64); b > 0 {
				c2cBytes += b
			}
			if ev.Pid != pidNoC {
				t.Errorf("c2c span on pid %d, want %d", ev.Pid, pidNoC)
			}
		}
	}
	if c2c == 0 {
		t.Fatal("cross-chip DMA recorded no c2c spans")
	}
	if want := float64(20 * 2048); c2cBytes != want {
		t.Errorf("c2c spans carry %v bytes, want %v", c2cBytes, want)
	}
}
