// Package trace summarizes what a simulation did: per-core activity
// breakdowns (compute vs DMA waits vs flag spins), floating-point work,
// DMA traffic, eLink shares, and mesh link utilization - rendered as
// text heatmaps for quick "where did the time go" analysis of kernels
// running on the simulated chip.
package trace

import (
	"fmt"
	"strings"

	"epiphany/internal/dma"
	"epiphany/internal/ecore"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

// CoreStats is one core's activity summary.
type CoreStats struct {
	Row, Col  int
	Flops     uint64
	Compute   sim.Time
	DMAWait   sim.Time
	FlagWait  sim.Time
	DMABytes  uint64
	ELinkByte uint64
}

// Snapshot is a chip-wide activity summary at a point in virtual time.
type Snapshot struct {
	Now   sim.Time
	Rows  int
	Cols  int
	Cores []CoreStats
	// MeshBytes is the total on-chip write-network traffic.
	MeshBytes uint64
	// ELinkBytes is the total off-chip write traffic.
	ELinkBytes uint64
}

// Take captures a snapshot of the chip's counters.
func Take(ch *ecore.Chip) *Snapshot {
	m := ch.Map()
	s := &Snapshot{
		Now:       ch.Engine().Now(),
		Rows:      m.Rows,
		Cols:      m.Cols,
		MeshBytes: ch.Fabric().Mesh.Bytes(),
	}
	for i := 0; i < ch.NumCores(); i++ {
		c := ch.Core(i)
		r, col := m.CoreCoords(i)
		compute, dmaWait, flagWait := c.Activity()
		cs := CoreStats{
			Row: r, Col: col,
			Flops:     c.Flops(),
			Compute:   compute,
			DMAWait:   dmaWait,
			FlagWait:  flagWait,
			DMABytes:  c.DMAMoved(dma.DMA0) + c.DMAMoved(dma.DMA1),
			ELinkByte: ch.Fabric().ELink.ServedBytes(i),
		}
		s.ELinkBytes += cs.ELinkByte
		s.Cores = append(s.Cores, cs)
	}
	return s
}

// TotalFlops sums floating-point work across cores.
func (s *Snapshot) TotalFlops() uint64 {
	var n uint64
	for _, c := range s.Cores {
		n += c.Flops
	}
	return n
}

// GFLOPS returns achieved chip GFLOPS over the snapshot window.
func (s *Snapshot) GFLOPS() float64 {
	if s.Now == 0 {
		return 0
	}
	return float64(s.TotalFlops()) / s.Now.Nanoseconds()
}

// heat renders an 8x8-style heatmap of per-core values scaled to 0-9.
func (s *Snapshot) heat(title string, value func(CoreStats) float64) string {
	var b strings.Builder
	maxV := 0.0
	for _, c := range s.Cores {
		if v := value(c); v > maxV {
			maxV = v
		}
	}
	fmt.Fprintf(&b, "%s (max %.4g):\n", title, maxV)
	grid := make([][]byte, s.Rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", s.Cols))
	}
	for _, c := range s.Cores {
		v := value(c)
		if maxV > 0 && v > 0 {
			d := int(v / maxV * 9)
			if d > 9 {
				d = 9
			}
			grid[c.Row][c.Col] = byte('0' + d)
		}
	}
	for _, row := range grid {
		b.WriteString("  ")
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the snapshot: totals plus heatmaps of compute share,
// communication wait share and eLink bytes.
func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace @ %v: %.2f GFLOPS achieved, %d B on-mesh, %d B off-chip\n",
		s.Now, s.GFLOPS(), s.MeshBytes, s.ELinkBytes)
	b.WriteString(s.heat("compute time", func(c CoreStats) float64 { return float64(c.Compute) }))
	b.WriteString(s.heat("dma wait", func(c CoreStats) float64 { return float64(c.DMAWait) }))
	b.WriteString(s.heat("flag wait", func(c CoreStats) float64 { return float64(c.FlagWait) }))
	b.WriteString(s.heat("eLink bytes", func(c CoreStats) float64 { return float64(c.ELinkByte) }))
	return b.String()
}

// Utilization summarizes one core's busy fraction of the window.
func (c CoreStats) Utilization(now sim.Time) float64 {
	if now == 0 {
		return 0
	}
	return float64(c.Compute+c.DMAWait+c.FlagWait) / float64(now)
}

// LinkHeat renders the eastbound mesh link utilization out of each
// router, a view onto congestion hot spots.
func LinkHeat(ch *ecore.Chip) string {
	m := ch.Map()
	now := ch.Engine().Now()
	var b strings.Builder
	b.WriteString("eastbound link utilization:\n")
	for r := 0; r < m.Rows; r++ {
		b.WriteString("  ")
		for c := 0; c < m.Cols-1; c++ {
			u := ch.Fabric().Mesh.LinkUtilization(r, c, noc.East, now)
			d := int(u * 9.999)
			if d > 9 {
				d = 9
			}
			fmt.Fprintf(&b, "%d", d)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
