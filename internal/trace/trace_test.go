package trace

import (
	"strings"
	"testing"

	"epiphany/internal/dma"
	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

func TestSnapshotCountersAndRendering(t *testing.T) {
	eng := sim.NewEngine()
	ch := ecore.NewChip(eng, 8, 8)
	// Core 0 computes; core 1 DMAs to core 2 and waits; core 3 spins on a
	// flag that core 0 eventually sets.
	ch.Launch(0, "c0", func(c *ecore.Core) {
		c.Compute(1000, 2000)
		c.StoreGlobal32(c.GlobalOn(0, 3, 0x700), 1)
	})
	ch.Launch(1, "c1", func(c *ecore.Core) {
		d := c.DMASetDesc(dma.Desc1D(0, c.GlobalOn(0, 2, 0), 4096, 8))
		c.DMAStart(dma.DMA0, d)
		c.DMAWait(dma.DMA0)
	})
	ch.Launch(3, "c3", func(c *ecore.Core) {
		c.WaitLocal32GE(0x700, 1)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := Take(ch)
	if s.TotalFlops() != 2000 {
		t.Fatalf("flops = %d", s.TotalFlops())
	}
	if s.Cores[0].Compute != sim.Cycles(1000) {
		t.Fatalf("core 0 compute = %v", s.Cores[0].Compute)
	}
	if s.Cores[1].DMAWait == 0 {
		t.Fatal("core 1 should have DMA wait time")
	}
	if s.Cores[1].DMABytes != 4096 {
		t.Fatalf("core 1 moved %d bytes", s.Cores[1].DMABytes)
	}
	if s.Cores[3].FlagWait == 0 {
		t.Fatal("core 3 should have flag wait time")
	}
	if s.GFLOPS() <= 0 {
		t.Fatal("achieved GFLOPS should be positive")
	}
	out := s.String()
	for _, want := range []string{"compute time", "dma wait", "flag wait", "eLink bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering misses %q", want)
		}
	}
	if u := s.Cores[0].Utilization(s.Now); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestLinkHeat(t *testing.T) {
	eng := sim.NewEngine()
	ch := ecore.NewChip(eng, 8, 8)
	ch.Launch(0, "sender", func(c *ecore.Core) {
		d := c.DMASetDesc(dma.Desc1D(0, c.GlobalOn(0, 1, 0x4000), 4096, 8))
		for i := 0; i < 50; i++ {
			c.DMAStart(dma.DMA0, d)
			c.DMAWait(dma.DMA0)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	out := LinkHeat(ch)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // title + 8 rows
		t.Fatalf("heatmap has %d lines", len(lines))
	}
	// The used link (row 0, col 0 east) must be hotter than an idle one.
	if lines[1][2] == '0' {
		t.Fatalf("used link shows zero utilization: %q", lines[1])
	}
	if lines[8] != "  0000000" {
		t.Fatalf("idle row should be all zeros: %q", lines[8])
	}
	_ = mem.Addr(0)
}
