package sdk

import (
	"testing"

	"epiphany/internal/ecore"
	"epiphany/internal/sim"
)

func TestAllReduceSumOfRanks(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {1, 4}, {2, 2}, {4, 2}, {8, 8}} {
		eng, ch := newChip()
		w := MustWorkgroup(ch, 0, 0, shape[0], shape[1])
		n := w.Size()
		got := make([]float32, n)
		w.Launch("reduce", func(c *ecore.Core, gr, gc int) {
			r := NewReducer(w, gr, gc)
			got[w.Rank(gr, gc)] = r.Sum(c, float32(w.Rank(gr, gc)+1))
		})
		if err := eng.Run(); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		want := float32(n * (n + 1) / 2)
		for rank, v := range got {
			if v != want {
				t.Fatalf("%v: rank %d got %v, want %v", shape, rank, v, want)
			}
		}
	}
}

func TestAllReduceRepeated(t *testing.T) {
	eng, ch := newChip()
	w := MustWorkgroup(ch, 0, 0, 2, 4)
	const rounds = 6
	sums := make([][]float32, w.Size())
	w.Launch("reduce", func(c *ecore.Core, gr, gc int) {
		r := NewReducer(w, gr, gc)
		rank := w.Rank(gr, gc)
		for k := 0; k < rounds; k++ {
			// Skewed timing between rounds.
			c.Idle(sim.Cycles(uint64(rank*13 + k*7)))
			sums[rank] = append(sums[rank], r.Sum(c, float32(rank*10+k)))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rounds; k++ {
		var want float32
		for rank := 0; rank < w.Size(); rank++ {
			want += float32(rank*10 + k)
		}
		for rank := 0; rank < w.Size(); rank++ {
			if sums[rank][k] != want {
				t.Fatalf("round %d rank %d: %v != %v", k, rank, sums[rank][k], want)
			}
		}
	}
}

func TestAllReduceAlongsideBarrier(t *testing.T) {
	// The reducer and barrier share the SDK region but distinct slots.
	eng, ch := newChip()
	w := MustWorkgroup(ch, 0, 0, 2, 2)
	total := make([]float32, w.Size())
	w.Launch("mix", func(c *ecore.Core, gr, gc int) {
		b := NewBarrier(w, gr, gc)
		r := NewReducer(w, gr, gc)
		b.Wait(c)
		s := r.Sum(c, 1)
		b.Wait(c)
		total[w.Rank(gr, gc)] = s
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for rank, v := range total {
		if v != 4 {
			t.Fatalf("rank %d: %v", rank, v)
		}
	}
}
