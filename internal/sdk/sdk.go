// Package sdk layers the Epiphany SDK's coordination primitives over the
// ecore API: workgroups with neighbour arithmetic (e_group_config /
// e_neighbor_id), barriers (e_barrier) built from real flag writes
// through the mesh, and the hardware mutex (e_mutex_*).
package sdk

import (
	"fmt"

	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

// Reserved scratchpad region at the top of bank 3 for SDK structures
// (barrier arrival flags and the release word). Kernels that use SDK
// synchronization must keep their layouts clear of it; ReserveSDK does
// this for them.
const (
	// SDKBase is the first byte of the reserved region.
	SDKBase mem.Addr = 0x7E00
	// SDKSize covers 64 per-core barrier arrival words (4 B each being
	// generous for an 8x8 chip), the release word, and spare.
	SDKSize = 0x200
	// barrierArrivalBase holds one arrival counter per group member.
	barrierArrivalBase = SDKBase
	// barrierReleaseOff is the per-core release counter.
	barrierReleaseOff = SDKBase + 0x100
)

// ReserveSDK marks the SDK region in a core's layout plan.
func ReserveSDK(l *mem.Layout) error {
	_, err := l.PlaceAt("sdk", SDKBase, SDKSize)
	return err
}

// Wrap direction constants for neighbour lookup, mirroring E_GROUP_WRAP.
type NeighbourMode int

// Neighbour lookup modes.
const (
	Clamp NeighbourMode = iota // no neighbour outside the group (ok=false)
	Wrap                       // torus wrap within the group, as Cannon needs
)

// Workgroup is a rows x cols rectangle of cores anchored at (OriginRow,
// OriginCol) in chip coordinates, the SDK's e_group_config equivalent.
type Workgroup struct {
	Chip       *ecore.Chip
	Rows, Cols int
	OriginRow  int
	OriginCol  int
}

// NewWorkgroup validates the rectangle against the chip and returns it.
func NewWorkgroup(ch *ecore.Chip, originRow, originCol, rows, cols int) (*Workgroup, error) {
	m := ch.Map()
	if rows <= 0 || cols <= 0 || originRow < 0 || originCol < 0 ||
		originRow+rows > m.Rows || originCol+cols > m.Cols {
		return nil, fmt.Errorf("sdk: workgroup %dx%d at (%d,%d) does not fit an %dx%d chip",
			rows, cols, originRow, originCol, m.Rows, m.Cols)
	}
	return &Workgroup{Chip: ch, Rows: rows, Cols: cols, OriginRow: originRow, OriginCol: originCol}, nil
}

// MustWorkgroup is NewWorkgroup for statically valid groups.
func MustWorkgroup(ch *ecore.Chip, originRow, originCol, rows, cols int) *Workgroup {
	w, err := NewWorkgroup(ch, originRow, originCol, rows, cols)
	if err != nil {
		panic(err)
	}
	return w
}

// Size returns the number of cores in the group.
func (w *Workgroup) Size() int { return w.Rows * w.Cols }

// CoreIndex maps group coordinates to the chip-relative core index.
func (w *Workgroup) CoreIndex(gr, gc int) int {
	if gr < 0 || gr >= w.Rows || gc < 0 || gc >= w.Cols {
		panic(fmt.Sprintf("sdk: group coords (%d,%d) outside %dx%d group", gr, gc, w.Rows, w.Cols))
	}
	return w.Chip.Map().CoreIndex(w.OriginRow+gr, w.OriginCol+gc)
}

// Rank maps group coordinates to a linear rank (row-major).
func (w *Workgroup) Rank(gr, gc int) int { return gr*w.Cols + gc }

// GroupCoords returns the group coordinates of a core, and whether the
// core belongs to the group.
func (w *Workgroup) GroupCoords(c *ecore.Core) (gr, gc int, ok bool) {
	r, col := c.Coords()
	gr, gc = r-w.OriginRow, col-w.OriginCol
	return gr, gc, gr >= 0 && gr < w.Rows && gc >= 0 && gc < w.Cols
}

// Neighbour returns the chip core index of the neighbour at (dr, dc)
// relative to group position (gr, gc). With Clamp, ok is false when the
// neighbour falls outside the group; with Wrap the group is a torus.
func (w *Workgroup) Neighbour(gr, gc, dr, dc int, mode NeighbourMode) (idx int, ok bool) {
	nr, nc := gr+dr, gc+dc
	switch mode {
	case Wrap:
		nr = ((nr % w.Rows) + w.Rows) % w.Rows
		nc = ((nc % w.Cols) + w.Cols) % w.Cols
	default:
		if nr < 0 || nr >= w.Rows || nc < 0 || nc >= w.Cols {
			return 0, false
		}
	}
	return w.CoreIndex(nr, nc), true
}

// Launch starts kernel on every core of the group and returns the procs
// in rank order. The kernel receives its core and group position.
func (w *Workgroup) Launch(name string, kernel func(c *ecore.Core, gr, gc int)) []*sim.Proc {
	procs := make([]*sim.Proc, 0, w.Size())
	for gr := 0; gr < w.Rows; gr++ {
		for gc := 0; gc < w.Cols; gc++ {
			gr, gc := gr, gc
			idx := w.CoreIndex(gr, gc)
			procs = append(procs, w.Chip.Launch(idx,
				fmt.Sprintf("%s(%d,%d)", name, gr, gc),
				func(c *ecore.Core) { kernel(c, gr, gc) }))
		}
	}
	return procs
}

// Barrier is a group-wide barrier, the e_barrier equivalent. Each member
// core creates its own Barrier (matching e_barrier_init's per-core
// arrays) and calls Wait each time. The implementation is the SDK's:
// members post an arrival counter into member 0's scratchpad with a
// direct remote store, member 0 spins on its arrival vector and then
// posts release counters back - so barrier cost emerges from real mesh
// traffic rather than being a magic constant.
type Barrier struct {
	w     *Workgroup
	gr    int
	gc    int
	epoch uint32
}

// NewBarrier creates the calling core's barrier handle.
func NewBarrier(w *Workgroup, gr, gc int) *Barrier {
	return &Barrier{w: w, gr: gr, gc: gc}
}

// Wait blocks until every group member has reached the same epoch.
func (b *Barrier) Wait(c *ecore.Core) {
	b.epoch++
	w := b.w
	rank := w.Rank(b.gr, b.gc)
	arrivalOff := barrierArrivalBase + mem.Addr(4*rank)
	if rank == 0 {
		// Root: note own arrival, wait for everyone, then release them.
		c.Local().Store32(arrivalOff, b.epoch)
		for r := 0; r < w.Rows; r++ {
			for col := 0; col < w.Cols; col++ {
				if r == 0 && col == 0 {
					continue
				}
				c.WaitLocal32GE(barrierArrivalBase+mem.Addr(4*w.Rank(r, col)), b.epoch)
			}
		}
		for r := 0; r < w.Rows; r++ {
			for col := 0; col < w.Cols; col++ {
				if r == 0 && col == 0 {
					continue
				}
				c.StoreGlobal32(c.GlobalOn(w.OriginRow+r, w.OriginCol+col, barrierReleaseOff), b.epoch)
			}
		}
		return
	}
	c.StoreGlobal32(c.GlobalOn(w.OriginRow, w.OriginCol, arrivalOff), b.epoch)
	c.WaitLocal32GE(barrierReleaseOff, b.epoch)
}

// Mutex is the SDK's hardware mutex: a memory word on a designated core
// that supports an atomic test-and-set. Contending cores pay a remote
// round trip per attempt; the queue is served in arrival order.
type Mutex struct {
	chip   *ecore.Chip
	home   int // core whose memory holds the mutex word
	off    mem.Addr
	locked bool
	owner  int
	queue  *sim.Cond
	// stats
	acquisitions uint64
}

// NewMutex creates a mutex resident at offset off in core home's memory.
func NewMutex(ch *ecore.Chip, home int, off mem.Addr) *Mutex {
	return &Mutex{
		chip:  ch,
		home:  home,
		off:   off,
		queue: sim.NewCond(ch.Engine(), fmt.Sprintf("mutex:core%d:%#x", home, off)),
	}
}

// Lock acquires the mutex for core c, blocking while another core holds
// it. Each attempt costs a test-and-set round trip to the mutex's home
// core on the read-request network.
func (m *Mutex) Lock(c *ecore.Core) {
	p := c.Proc()
	for {
		// TESTSET round trip.
		done := m.chip.Fabric().Mesh.ReadWord(p.Now(), c.Index(), m.home)
		p.WaitUntil(done)
		if !m.locked {
			m.locked = true
			m.owner = c.Index()
			m.acquisitions++
			m.chip.Fabric().SRAMs[m.home].Store32(m.off, uint32(c.Index())|1<<31)
			return
		}
		p.WaitCond(m.queue)
	}
}

// Unlock releases the mutex; it panics if c does not hold it.
func (m *Mutex) Unlock(c *ecore.Core) {
	if !m.locked || m.owner != c.Index() {
		panic(fmt.Sprintf("sdk: core %d unlocking mutex it does not hold", c.Index()))
	}
	// The release is a posted remote store of zero.
	hr, hc := m.chip.Map().CoreCoords(m.home)
	c.StoreGlobal32(c.GlobalOn(hr, hc, m.off), 0)
	m.locked = false
	m.queue.Broadcast()
}

// Acquisitions returns how many times the mutex has been taken.
func (m *Mutex) Acquisitions() uint64 { return m.acquisitions }

// HoldCost is exported for tests: the minimum cost of an uncontended
// lock/unlock pair (one round trip plus a posted store).
func HoldCost(ch *ecore.Chip, from, home int) sim.Time {
	hops := sim.Time(ch.Fabric().Mesh.Distance(from, home))
	return noc.ReadWordRoundTrip + 2*hops*noc.HopLatency + sim.Cycle
}
