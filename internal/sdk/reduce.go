package sdk

import (
	"math"

	"epiphany/internal/ecore"
	"epiphany/internal/mem"
)

// Reducer is a workgroup-wide sum all-reduce built from the same
// primitives as Barrier: posted remote stores and flag polling. The
// reduction follows the mesh: each row chains partial sums westward to
// column 0, column 0 chains them northward to the group root, and the
// root broadcasts the total back. Each member creates its own Reducer
// (like e_barrier_init) and calls Sum collectively.
type Reducer struct {
	w      *Workgroup
	gr, gc int
	seq    uint32
}

// Word offsets of the reducer's slots inside the reserved SDK region.
const (
	reduceBase mem.Addr = SDKBase + 0x110
	rValE               = 0 // partial arriving from the east neighbour
	rSeqE               = 1
	rValS               = 2 // partial arriving from the south neighbour
	rSeqS               = 3
	rBVal               = 4 // broadcast total
	rBSeq               = 5
)

// NewReducer creates the calling core's handle.
func NewReducer(w *Workgroup, gr, gc int) *Reducer {
	return &Reducer{w: w, gr: gr, gc: gc}
}

func (r *Reducer) slot(i int) mem.Addr { return reduceBase + mem.Addr(4*i) }

func (r *Reducer) postTo(c *ecore.Core, gr, gc, slot int, v uint32) {
	c.StoreGlobal32(c.GlobalOn(r.w.OriginRow+gr, r.w.OriginCol+gc, r.slot(slot)), v)
}

// Sum contributes v and returns the sum over all group members. Every
// member must call Sum the same number of times; the value is summed
// east-to-west within rows, then south-to-north up column 0 (a fixed,
// deterministic association order).
func (r *Reducer) Sum(c *ecore.Core, v float32) float32 {
	r.seq++
	w := r.w
	// Row phase: absorb the partial from the east, pass west.
	if r.gc < w.Cols-1 {
		c.WaitLocal32GE(r.slot(rSeqE), r.seq)
		v += math.Float32frombits(c.Local().Load32(r.slot(rValE)))
	}
	if r.gc > 0 {
		r.postTo(c, r.gr, r.gc-1, rValE, math.Float32bits(v))
		r.postTo(c, r.gr, r.gc-1, rSeqE, r.seq)
	} else {
		// Column phase on column 0.
		if r.gr < w.Rows-1 {
			c.WaitLocal32GE(r.slot(rSeqS), r.seq)
			v += math.Float32frombits(c.Local().Load32(r.slot(rValS)))
		}
		if r.gr > 0 {
			r.postTo(c, r.gr-1, 0, rValS, math.Float32bits(v))
			r.postTo(c, r.gr-1, 0, rSeqS, r.seq)
		} else {
			// Root: broadcast the total.
			for gr := 0; gr < w.Rows; gr++ {
				for gc := 0; gc < w.Cols; gc++ {
					if gr == 0 && gc == 0 {
						continue
					}
					r.postTo(c, gr, gc, rBVal, math.Float32bits(v))
					r.postTo(c, gr, gc, rBSeq, r.seq)
				}
			}
			return v
		}
	}
	c.WaitLocal32GE(r.slot(rBSeq), r.seq)
	return math.Float32frombits(c.Local().Load32(r.slot(rBVal)))
}
