package sdk

import (
	"testing"

	"epiphany/internal/ecore"
	"epiphany/internal/mem"
	"epiphany/internal/sim"
)

func newChip() (*sim.Engine, *ecore.Chip) {
	eng := sim.NewEngine()
	return eng, ecore.NewChip(eng, 8, 8)
}

func TestWorkgroupValidation(t *testing.T) {
	_, ch := newChip()
	if _, err := NewWorkgroup(ch, 0, 0, 8, 8); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][4]int{{0, 0, 9, 8}, {1, 0, 8, 8}, {0, 7, 1, 2}, {0, 0, 0, 1}, {-1, 0, 1, 1}} {
		if _, err := NewWorkgroup(ch, bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("workgroup %v accepted", bad)
		}
	}
}

func TestWorkgroupMapping(t *testing.T) {
	_, ch := newChip()
	w := MustWorkgroup(ch, 2, 3, 4, 4)
	if w.Size() != 16 {
		t.Fatalf("size = %d", w.Size())
	}
	idx := w.CoreIndex(1, 2)
	if r, c := ch.Map().CoreCoords(idx); r != 3 || c != 5 {
		t.Fatalf("CoreIndex(1,2) -> chip (%d,%d), want (3,5)", r, c)
	}
	if w.Rank(1, 2) != 6 {
		t.Fatalf("rank = %d", w.Rank(1, 2))
	}
	gr, gc, ok := w.GroupCoords(ch.CoreAt(3, 5))
	if !ok || gr != 1 || gc != 2 {
		t.Fatalf("GroupCoords = (%d,%d,%v)", gr, gc, ok)
	}
	if _, _, ok := w.GroupCoords(ch.CoreAt(0, 0)); ok {
		t.Fatal("core outside group reported as member")
	}
}

func TestNeighbourClampAndWrap(t *testing.T) {
	_, ch := newChip()
	w := MustWorkgroup(ch, 0, 0, 4, 4)
	if _, ok := w.Neighbour(0, 0, -1, 0, Clamp); ok {
		t.Fatal("clamped neighbour above top row should not exist")
	}
	idx, ok := w.Neighbour(0, 0, -1, 0, Wrap)
	if !ok {
		t.Fatal("wrapped neighbour must exist")
	}
	if r, c := ch.Map().CoreCoords(idx); r != 3 || c != 0 {
		t.Fatalf("wrap(-1,0) from (0,0) = (%d,%d), want (3,0)", r, c)
	}
	idx, _ = w.Neighbour(2, 3, 0, 1, Wrap)
	if r, c := ch.Map().CoreCoords(idx); r != 2 || c != 0 {
		t.Fatalf("wrap east from col 3 = (%d,%d), want (2,0)", r, c)
	}
}

func TestReserveSDKConflicts(t *testing.T) {
	l := mem.NewLayout()
	if err := ReserveSDK(l); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PlaceAt("data", SDKBase, 16); err == nil {
		t.Fatal("overlap with SDK region not detected")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	eng, ch := newChip()
	w := MustWorkgroup(ch, 0, 0, 2, 4)
	arrive := make([]sim.Time, w.Size())
	depart := make([]sim.Time, w.Size())
	w.Launch("k", func(c *ecore.Core, gr, gc int) {
		b := NewBarrier(w, gr, gc)
		rank := w.Rank(gr, gc)
		// Deliberately skewed arrival times.
		c.Idle(sim.Cycles(uint64(rank) * 50))
		arrive[rank] = c.Now()
		b.Wait(c)
		depart[rank] = c.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var latest sim.Time
	for _, a := range arrive {
		if a > latest {
			latest = a
		}
	}
	for rank, d := range depart {
		if d < latest {
			t.Fatalf("rank %d departed at %v, before last arrival %v", rank, d, latest)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	eng, ch := newChip()
	w := MustWorkgroup(ch, 0, 0, 2, 2)
	counts := make([]int, w.Size())
	w.Launch("k", func(c *ecore.Core, gr, gc int) {
		b := NewBarrier(w, gr, gc)
		for i := 0; i < 5; i++ {
			c.Idle(sim.Cycles(uint64((gr*2+gc)*7 + i)))
			b.Wait(c)
			counts[w.Rank(gr, gc)]++
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for rank, n := range counts {
		if n != 5 {
			t.Fatalf("rank %d passed %d barriers, want 5", rank, n)
		}
	}
}

func TestBarrierSingleCore(t *testing.T) {
	eng, ch := newChip()
	w := MustWorkgroup(ch, 0, 0, 1, 1)
	w.Launch("k", func(c *ecore.Core, gr, gc int) {
		b := NewBarrier(w, gr, gc)
		b.Wait(c)
		b.Wait(c)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	eng, ch := newChip()
	mu := NewMutex(ch, 0, 0x7F00)
	w := MustWorkgroup(ch, 0, 0, 2, 2)
	inside := 0
	maxInside := 0
	total := 0
	w.Launch("k", func(c *ecore.Core, gr, gc int) {
		for i := 0; i < 10; i++ {
			mu.Lock(c)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			c.Idle(sim.Cycles(20)) // critical section
			total++
			inside--
			mu.Unlock(c)
			c.Idle(sim.Cycles(uint64(gr*31 + gc*17)))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("mutex admitted %d cores at once", maxInside)
	}
	if total != 40 || mu.Acquisitions() != 40 {
		t.Fatalf("total = %d, acquisitions = %d, want 40", total, mu.Acquisitions())
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	eng, ch := newChip()
	mu := NewMutex(ch, 0, 0x7F00)
	ch.Launch(0, "owner", func(c *ecore.Core) {
		mu.Lock(c)
		c.Idle(sim.Second)
	})
	ch.Launch(1, "thief", func(c *ecore.Core) {
		c.Idle(sim.Cycles(100))
		mu.Unlock(c)
	})
	if err := eng.Run(); err == nil {
		t.Fatal("unlock by non-owner should fail the simulation")
	}
}

func TestMutexUncontendedCost(t *testing.T) {
	eng, ch := newChip()
	mu := NewMutex(ch, 0, 0x7F00)
	var elapsed sim.Time
	ch.Launch(63, "k", func(c *ecore.Core) { // far corner
		start := c.Now()
		mu.Lock(c)
		mu.Unlock(c)
		elapsed = c.Now() - start
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if want := HoldCost(ch, 63, 0); elapsed != want {
		t.Fatalf("uncontended lock/unlock = %v, want %v", elapsed, want)
	}
}

func TestLaunchNamesAndProcs(t *testing.T) {
	eng, ch := newChip()
	w := MustWorkgroup(ch, 4, 4, 2, 2)
	procs := w.Launch("kern", func(c *ecore.Core, gr, gc int) {})
	if len(procs) != 4 {
		t.Fatalf("procs = %d", len(procs))
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, p := range procs {
		if !p.Finished() {
			t.Fatal("proc not finished")
		}
	}
}
