// Package dma models the per-eCore DMA engines: two channels per core,
// descriptor-driven 1D/2D transfers with independent source/destination
// strides, word or doubleword beats, and descriptor chaining - the
// feature set the paper's Listing 2 exercises for the stencil boundary
// exchange and §VII uses for matrix rotation.
//
// A transfer is simulated in two aspects: functionally (bytes really move
// between the simulated SRAMs/DRAM, at completion time) and temporally
// (the engine paces at the calibrated 2 GB/s doubleword rate, books
// occupancy on the mesh links it crosses, and competes through the eLink
// arbiter for off-chip destinations).
package dma

import (
	"fmt"

	"epiphany/internal/mem"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

// Fabric bundles the chip-level facilities a DMA engine needs. The ecore
// package constructs one per chip and shares it among all engines.
type Fabric struct {
	Eng       *sim.Engine
	Map       *mem.Map
	Mesh      *noc.Mesh
	ELink     *noc.ELink
	ELinkRead *sim.Resource // read direction of the off-chip link
	SRAMs     []*mem.SRAM
	DRAM      *mem.DRAM
	// Notify, when non-nil, is invoked whenever a transfer deposits data
	// into a core's SRAM, so pollers of that memory can be re-evaluated.
	// It runs in the execution context of the shard owning that core.
	Notify func(core int)
	// ShardOf maps core index -> owning shard on a sharded multi-chip
	// board; nil when the whole board runs on the sys shard.
	ShardOf []*sim.Shard
	// Rec, when non-nil, observes core activity and DMA transfers for
	// timeline export. Attached per run (trace.Timeline.Attach), cleared
	// by Reset; every use sits behind a nil check so the unmetered path
	// is untouched. Implementations must be concurrency-safe.
	Rec noc.Recorder
	// readBytes counts the bytes booked on the read direction of the
	// off-chip link - counted here, at the single booking site, rather
	// than inferred from the resource's busy time, so the energy term
	// stays correct if the read link's timing model ever changes.
	readBytes uint64
}

// CoreShard returns the shard owning core (the sys shard when the board
// is unsharded).
func (f *Fabric) CoreShard(core int) *sim.Shard {
	if f.ShardOf == nil {
		return f.Eng.Sys()
	}
	return f.ShardOf[core]
}

// ELinkReadTime books n bytes on the read direction of the off-chip link
// starting at t and returns the completion time. On a sharded board it
// must run in the sys shard's execution context (the read link and its
// byte counter live there).
func (f *Fabric) ELinkReadTime(t sim.Time, n int) sim.Time {
	f.readBytes += uint64(n)
	_, end := f.ELinkRead.Use(t, sim.Time(n)*noc.ELinkBytePeriod)
	return end
}

// ELinkReadBytes returns the bytes carried by the read direction of the
// off-chip link (the energy model's eLink read term).
func (f *Fabric) ELinkReadBytes() uint64 { return f.readBytes }

// Reset returns the shared fabric to its just-built state: mesh links
// and arbiter queues freed, statistics zeroed, every memory zeroed. The
// caller is responsible for the engine and the per-core DMA engines.
func (f *Fabric) Reset() {
	f.Mesh.Reset()
	f.ELink.Reset()
	f.ELinkRead.Reset()
	f.readBytes = 0
	f.Rec = nil
	for _, s := range f.SRAMs {
		s.Reset()
	}
	f.DRAM.Reset()
}

// Desc is a DMA descriptor, mirroring e_dma_set_desc's fields: a 2D
// transfer of OuterCount rows of InnerCount beats each. After every beat
// the addresses advance by the inner strides; after every row they
// advance by the outer strides instead. Addresses are global (local
// aliases allowed on either side). A non-nil Chain continues with the
// next descriptor when this one completes (E_DMA_CHAIN).
type Desc struct {
	Beat           int // 4 (word) or 8 (doubleword)
	InnerCount     int // beats per row
	OuterCount     int // rows (1 for a 1D transfer)
	SrcInnerStride int // bytes added to src after each beat
	DstInnerStride int
	SrcOuterStride int // bytes added after each row, instead of the inner stride
	DstOuterStride int
	Src, Dst       mem.Addr
	Chain          *Desc
}

// Desc1D builds a contiguous transfer of n bytes with the given beat.
func Desc1D(src, dst mem.Addr, n, beat int) *Desc {
	if n%beat != 0 {
		panic(fmt.Sprintf("dma: %d bytes not a multiple of beat %d", n, beat))
	}
	return &Desc{
		Beat: beat, InnerCount: n / beat, OuterCount: 1,
		SrcInnerStride: beat, DstInnerStride: beat,
		Src: src, Dst: dst,
	}
}

// Bytes returns the payload size of the descriptor (without chains).
func (d *Desc) Bytes() int { return d.Beat * d.InnerCount * d.OuterCount }

// TotalBytes returns the payload of the descriptor and all its chains.
func (d *Desc) TotalBytes() int {
	n := 0
	for ; d != nil; d = d.Chain {
		n += d.Bytes()
	}
	return n
}

func (d *Desc) validate() {
	if d.Beat != 4 && d.Beat != 8 {
		panic(fmt.Sprintf("dma: beat %d not 4 or 8", d.Beat))
	}
	if d.InnerCount <= 0 || d.OuterCount <= 0 {
		panic(fmt.Sprintf("dma: non-positive counts %dx%d", d.OuterCount, d.InnerCount))
	}
}

// Chan identifies one of the two DMA channels (E_DMA_0, E_DMA_1).
type Chan int

// The two per-core channels.
const (
	DMA0 Chan = 0
	DMA1 Chan = 1
)

// Engine is one core's DMA controller.
type Engine struct {
	fab  *Fabric
	core int
	sh   *sim.Shard // the shard owning this core
	ch   [2]*channel
}

type channel struct {
	active bool
	done   *sim.Cond
	moved  uint64 // total bytes moved, stats
}

// NewEngine creates the DMA engine for the given core.
func NewEngine(fab *Fabric, core int) *Engine {
	e := &Engine{fab: fab, core: core, sh: fab.CoreShard(core)}
	prefixes := [2]string{"dma0:core", "dma1:core"}
	for i := range e.ch {
		e.ch[i] = &channel{done: sim.NewCondIdxOn(e.sh, prefixes[i], core)}
	}
	return e
}

// Reset clears both channels' transfer state and statistics (the shared
// fabric is reset separately, by its owner).
func (e *Engine) Reset() {
	for _, ch := range e.ch {
		ch.active = false
		ch.moved = 0
	}
}

// Busy reports whether the channel has an active transfer.
func (e *Engine) Busy(c Chan) bool { return e.ch[c].active }

// Moved returns the total bytes the channel has transferred.
func (e *Engine) Moved(c Chan) uint64 { return e.ch[c].moved }

// Start launches desc (and its chain) on channel c at the current engine
// time. The caller is responsible for charging the CPU cost of
// e_dma_set_desc/e_dma_start (noc.DMADescriptorBuildCost, DMAStartCost);
// Start itself is the hardware side. Starting a busy channel panics, as
// it is a programming error on the real device too.
func (e *Engine) Start(c Chan, desc *Desc) {
	ch := e.ch[c]
	if ch.active {
		panic(fmt.Sprintf("dma: core %d channel %d started while busy", e.core, c))
	}
	ch.active = true
	e.run(ch, desc, e.sh.Now())
}

// run processes one descriptor starting at time t, then chains. It
// always executes in e.sh's (the issuing core's shard's) context; on a
// sharded board the legs that touch other shards' state - the eLink
// arbiter and DRAM on the sys shard, a destination core's SRAM on
// another chip - are carried out there via events, and the chain
// continuation returns here the same way.
func (e *Engine) run(ch *channel, d *Desc, t sim.Time) {
	if d == nil {
		e.sh.At(t, func() {
			ch.active = false
			ch.done.Broadcast()
		})
		return
	}
	d.validate()
	n := d.Bytes()
	pace := noc.DMASerialization(n, d.Beat)
	src := e.fab.Map.Decode(e.core, d.Src)
	dst := e.fab.Map.Decode(e.core, d.Dst)
	if src.Kind == mem.KindInvalid || dst.Kind == mem.KindInvalid {
		panic(fmt.Sprintf("dma: core %d transfer with unmapped address (src %#x dst %#x)", e.core, d.Src, d.Dst))
	}
	sharded := e.fab.ShardOf != nil
	if sharded && src.Kind == mem.KindCore && e.fab.Mesh.CrossShard(src.Core, e.core) {
		panic(fmt.Sprintf("dma: core %d pull from remote chip core %d is not supported on a sharded board", e.core, src.Core))
	}

	// finish completes a leg whose copy happens on this shard. When a
	// chained descriptor follows, the completion event may book mesh
	// links for the next leg, so it is scheduled booking-gated (see
	// sim.Shard.AtBooking).
	finish := func(done sim.Time) {
		schedule := e.sh.At
		if d.Chain != nil {
			schedule = e.sh.AtBooking
		}
		schedule(done, func() {
			e.copyDesc(d, src, dst)
			ch.moved += uint64(n)
			if dst.Kind != mem.KindDRAM && e.fab.Notify != nil {
				e.fab.Notify(dst.Core)
			}
			e.run(ch, d.Chain, done)
		})
	}

	switch {
	case dst.Kind == mem.KindDRAM && src.Kind == mem.KindDRAM:
		panic("dma: DRAM-to-DRAM transfers are not supported by the hardware")
	case dst.Kind == mem.KindDRAM:
		// Off-chip write: compete for the eLink, which is the bottleneck;
		// DMA pacing overlaps with it.
		if !sharded {
			e.fab.ELink.WriteFunc(e.core, n, func() {
				end := e.fab.Eng.Now()
				if min := t + pace; end < min {
					end = min
				}
				e.record("dram-write", t, end, n)
				finish(end)
			})
			return
		}
		// Sharded: the completion runs on the sys shard, which performs
		// the copy there (sys may read any core's SRAM, and DRAM writes
		// must happen on sys) and hands the chain back to this shard.
		sys := e.fab.Eng.Sys()
		e.fab.ELink.SubmitFrom(e.sh, t, e.core, n, func() {
			end := sys.Now()
			if min := t + pace; end < min {
				end = min
			}
			e.record("dram-write", t, end, n)
			sys.At(end, func() {
				e.copyDesc(d, src, dst)
				e.sendChain(sys, d.Chain, end, func() {
					ch.moved += uint64(n)
					e.run(ch, d.Chain, end)
				})
			})
		})
	case src.Kind == mem.KindDRAM:
		// Off-chip read: the read direction of the link, then the mesh.
		if !sharded {
			end := e.fab.ELinkReadTime(t, n)
			arrive := e.fab.Mesh.Deliver(end, e.linkCorner(), dst.Core, n)
			if min := t + pace; arrive < min {
				arrive = min
			}
			e.record("dram-read", t, arrive, n)
			finish(arrive)
			return
		}
		e.runDRAMRead(ch, d, t, src, dst, n, pace)
	default:
		// On-chip: pace at the DMA rate, book the mesh path.
		if e.fab.Mesh.CrossShard(src.Core, dst.Core) {
			e.runCrossPush(ch, d, t, src, dst, n, pace)
			return
		}
		arrive := e.fab.Mesh.Deliver(t, src.Core, dst.Core, n)
		if min := t + pace; arrive < min {
			arrive = min
		}
		e.record("mesh", t, arrive, n)
		finish(arrive)
	}
}

// record reports one transfer leg to the attached timeline recorder, if
// any. Safe from any shard context (recorders are concurrency-safe).
func (e *Engine) record(kind string, start, end sim.Time, n int) {
	if r := e.fab.Rec; r != nil {
		r.DMATransfer(e.core, kind, start, end, n)
	}
}

// sendChain posts a chain continuation from the sys shard back to the
// issuing shard. When another descriptor follows, the continuation may
// book mesh link occupancy for the next leg, so it is posted
// booking-gated (see sim.Shard.SendBooking); a chain-terminating
// completion books nothing and is posted plain.
func (e *Engine) sendChain(sys *sim.Shard, chain *Desc, t sim.Time, fn func()) {
	if chain != nil {
		sys.SendBooking(e.sh, t, fn)
		return
	}
	sys.Send(e.sh, t, fn)
}

// runCrossPush handles a core-to-core transfer whose destination lives
// on another chip's shard. The mesh walk and the functional copy run on
// the sys shard - the walk synchronously at issue time, the copy at
// arrival, exactly as the unsharded engine does them (sys rounds are
// mutually exclusive with every chip round, so sys may read the source
// SRAM and write the destination SRAM race-free) - and the arrival
// notification and chain continuation are posted on to the destination
// and issuing shards at the arrival time.
func (e *Engine) runCrossPush(ch *channel, d *Desc, t sim.Time, src, dst mem.Target, n int, pace sim.Time) {
	sys := e.fab.Eng.Sys()
	dstSh := e.fab.CoreShard(dst.Core)
	e.sh.SendTagged(sys, t, e.core, func() {
		arrive := e.fab.Mesh.DeliverSys(t, src.Core, dst.Core, n)
		if min := t + pace; arrive < min {
			arrive = min
		}
		e.record("mesh-x", t, arrive, n)
		sys.At(arrive, func() {
			e.copyDesc(d, src, dst)
			sys.Send(dstSh, arrive, func() {
				if e.fab.Notify != nil {
					e.fab.Notify(dst.Core)
				}
			})
			e.sendChain(sys, d.Chain, arrive, func() {
				ch.moved += uint64(n)
				e.run(ch, d.Chain, arrive)
			})
		})
	})
}

// runDRAMRead handles an off-chip read on a sharded board. Everything
// the unsharded engine did inline - booking the read link, walking the
// mesh from the link corner, copying DRAM to the destination SRAM at
// arrival - runs on the sys shard at the same virtual times; only the
// arrival notification and the chain continuation are posted to the
// destination and issuing shards.
func (e *Engine) runDRAMRead(ch *channel, d *Desc, t sim.Time, src, dst mem.Target, n int, pace sim.Time) {
	sys := e.fab.Eng.Sys()
	corner := e.linkCorner()
	dstSh := e.fab.CoreShard(dst.Core)
	e.sh.SendTagged(sys, t, e.core, func() {
		end := e.fab.ELinkReadTime(t, n)
		arrive := e.fab.Mesh.DeliverSys(end, corner, dst.Core, n)
		if min := t + pace; arrive < min {
			arrive = min
		}
		e.record("dram-read", t, arrive, n)
		sys.At(arrive, func() {
			e.copyDesc(d, src, dst)
			sys.Send(dstSh, arrive, func() {
				if e.fab.Notify != nil {
					e.fab.Notify(dst.Core)
				}
			})
			e.sendChain(sys, d.Chain, arrive, func() {
				ch.moved += uint64(n)
				e.run(ch, d.Chain, arrive)
			})
		})
	})
}

// linkCorner returns the core index adjacent to the off-chip link (row 0,
// last column), where off-chip reads enter the mesh.
func (e *Engine) linkCorner() int { return e.fab.Map.CoreIndex(0, e.fab.Map.Cols-1) }

// Wait blocks p until channel c's transfer chain completes (e_dma_wait).
func (e *Engine) Wait(p *sim.Proc, c Chan) {
	ch := e.ch[c]
	p.WaitFor(ch.done, func() bool { return !ch.active })
}

// read/write helpers for the functional copy.

func (e *Engine) readBeat(t mem.Target, off mem.Addr, beat int) uint64 {
	switch t.Kind {
	case mem.KindDRAM:
		if beat == 8 {
			lo := uint64(e.fab.DRAM.Load32(off))
			hi := uint64(e.fab.DRAM.Load32(off + 4))
			return lo | hi<<32
		}
		return uint64(e.fab.DRAM.Load32(off))
	default:
		s := e.fab.SRAMs[t.Core]
		if beat == 8 {
			return s.Load64(off)
		}
		return uint64(s.Load32(off))
	}
}

func (e *Engine) writeBeat(t mem.Target, off mem.Addr, beat int, v uint64) {
	switch t.Kind {
	case mem.KindDRAM:
		e.fab.DRAM.Store32(off, uint32(v))
		if beat == 8 {
			e.fab.DRAM.Store32(off+4, uint32(v>>32))
		}
	default:
		s := e.fab.SRAMs[t.Core]
		if beat == 8 {
			s.Store64(off, v)
		} else {
			s.Store32(off, uint32(v))
		}
	}
}

// copyDesc performs the functional data movement for one descriptor.
// On a sharded board it runs either in the shard owning both endpoints
// or on the sys shard (which may touch any memory: its rounds are
// mutually exclusive with every chip round).
func (e *Engine) copyDesc(d *Desc, src, dst mem.Target) {
	so, do := src.Off, dst.Off
	for row := 0; row < d.OuterCount; row++ {
		rs, rd := so, do
		for i := 0; i < d.InnerCount; i++ {
			e.writeBeat(dst, rd, d.Beat, e.readBeat(src, rs, d.Beat))
			if i < d.InnerCount-1 {
				rs += mem.Addr(d.SrcInnerStride)
				rd += mem.Addr(d.DstInnerStride)
			}
		}
		so = rs + mem.Addr(d.SrcOuterStride)
		do = rd + mem.Addr(d.DstOuterStride)
	}
}
