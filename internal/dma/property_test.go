package dma

import (
	"testing"
	"testing/quick"

	"epiphany/internal/mem"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

// refCopy is an independent model of the descriptor walk, used to check
// the engine's functional copy against a second implementation.
func refCopy(srcMem, dstMem []byte, d *Desc, srcOff, dstOff int) {
	so, do := srcOff, dstOff
	for row := 0; row < d.OuterCount; row++ {
		rs, rd := so, do
		for i := 0; i < d.InnerCount; i++ {
			copy(dstMem[rd:rd+d.Beat], srcMem[rs:rs+d.Beat])
			if i < d.InnerCount-1 {
				rs += d.SrcInnerStride
				rd += d.DstInnerStride
			}
		}
		so = rs + d.SrcOuterStride
		do = rd + d.DstOuterStride
	}
}

// Property: arbitrary (bounded) 2D descriptors move exactly the bytes
// the reference walk says, between cores.
func TestDesc2DCopyProperty(t *testing.T) {
	f := func(inner, outer, strideSel, beatSel uint8) bool {
		in := int(inner%6) + 1
		out := int(outer%6) + 1
		beat := 4
		if beatSel%2 == 0 {
			beat = 8
		}
		// Strides chosen to stay within a 4 KB window with no overlap
		// hazards: inner stride >= beat, outer keeps rows apart.
		sIn := beat * (1 + int(strideSel%3))
		d := &Desc{
			Beat: beat, InnerCount: in, OuterCount: out,
			SrcInnerStride: sIn, DstInnerStride: beat,
			SrcOuterStride: sIn, DstOuterStride: beat,
			Src: 0x0400, Dst: 0,
		}
		f2 := newFabric()
		d.Dst = f2.Map.GlobalOf(1, 0x0400)
		// Fill the source with a recognizable pattern.
		srcImg := make([]byte, mem.SRAMSize)
		for i := range srcImg {
			srcImg[i] = byte(i*7 + 3)
		}
		copy(f2.SRAMs[0].Bytes(0, mem.SRAMSize), srcImg)
		e := NewEngine(f2, 0)
		f2.Eng.Spawn("t", func(p *sim.Proc) {
			e.Start(DMA0, d)
			e.Wait(p, DMA0)
		})
		if err := f2.Eng.Run(); err != nil {
			return false
		}
		want := make([]byte, mem.SRAMSize)
		refCopy(srcImg, want, d, 0x0400, 0x0400)
		got := f2.SRAMs[1].Bytes(0, mem.SRAMSize)
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion time is never earlier than either the DMA pacing
// bound or the mesh serialization bound.
func TestDMACompletionLowerBoundProperty(t *testing.T) {
	f := func(sz uint8, dstSel uint8) bool {
		n := (int(sz%64) + 1) * 8
		dst := int(dstSel) % 64
		if dst == 0 {
			dst = 1
		}
		f2 := newFabric()
		e := NewEngine(f2, 0)
		var done sim.Time
		f2.Eng.Spawn("t", func(p *sim.Proc) {
			e.Start(DMA0, Desc1D(0, f2.Map.GlobalOf(dst, 0), n, 8))
			e.Wait(p, DMA0)
			done = p.Now()
		})
		if err := f2.Eng.Run(); err != nil {
			return false
		}
		return done >= noc.DMASerialization(n, 8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
