package dma

import (
	"testing"

	"epiphany/internal/mem"
	"epiphany/internal/noc"
	"epiphany/internal/sim"
)

func newFabric() *Fabric {
	eng := sim.NewEngine()
	amap := mem.NewMap(8, 8)
	f := &Fabric{
		Eng:       eng,
		Map:       amap,
		Mesh:      noc.NewMesh(eng, amap),
		ELink:     noc.NewELink(eng, 8, 8),
		ELinkRead: sim.NewResource("elink-read"),
		SRAMs:     make([]*mem.SRAM, amap.NumCores()),
		DRAM:      mem.NewDRAM(),
	}
	for i := range f.SRAMs {
		f.SRAMs[i] = mem.NewSRAM()
	}
	return f
}

func run(t *testing.T, f *Fabric, fn func(p *sim.Proc)) {
	t.Helper()
	f.Eng.Spawn("test", fn)
	if err := f.Eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDesc1D(t *testing.T) {
	d := Desc1D(0x100, 0x200, 64, 8)
	if d.InnerCount != 8 || d.OuterCount != 1 || d.Bytes() != 64 {
		t.Fatalf("Desc1D = %+v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned Desc1D should panic")
		}
	}()
	Desc1D(0, 0, 10, 8)
}

func TestDMA1DBetweenCores(t *testing.T) {
	f := newFabric()
	src, dst := 0, 1 // adjacent
	for i := 0; i < 16; i++ {
		f.SRAMs[src].Store32(mem.Addr(0x1000+4*i), uint32(0xA0+i))
	}
	e := NewEngine(f, src)
	var doneAt sim.Time
	run(t, f, func(p *sim.Proc) {
		d := Desc1D(0x1000, f.Map.GlobalOf(dst, 0x2000), 64, 8)
		e.Start(DMA0, d)
		e.Wait(p, DMA0)
		doneAt = p.Now()
	})
	for i := 0; i < 16; i++ {
		if got := f.SRAMs[dst].Load32(mem.Addr(0x2000 + 4*i)); got != uint32(0xA0+i) {
			t.Fatalf("word %d = %#x", i, got)
		}
	}
	// Completion >= DMA pacing and >= mesh latency.
	if min := noc.DMASerialization(64, 8); doneAt < min {
		t.Fatalf("done at %v, faster than DMA pace %v", doneAt, min)
	}
}

func TestDMA2DColumnTransfer(t *testing.T) {
	// The stencil's column exchange: one 4-byte word per row, source
	// stride = row pitch, as in Listing 2's RIGHT/LEFT descriptors.
	f := newFabric()
	const rows, pitch = 8, 32 // 8-float rows
	for r := 0; r < rows; r++ {
		f.SRAMs[0].StoreF32(mem.Addr(0x1000+r*pitch), float32(r)+0.5)
	}
	e := NewEngine(f, 0)
	run(t, f, func(p *sim.Proc) {
		d := &Desc{
			Beat: 4, InnerCount: 1, OuterCount: rows,
			SrcOuterStride: pitch, DstOuterStride: pitch,
			Src: 0x1000, Dst: f.Map.GlobalOf(1, 0x3000),
		}
		e.Start(DMA1, d)
		e.Wait(p, DMA1)
	})
	for r := 0; r < rows; r++ {
		if got := f.SRAMs[1].LoadF32(mem.Addr(0x3000 + r*pitch)); got != float32(r)+0.5 {
			t.Fatalf("row %d = %v", r, got)
		}
	}
}

func TestDMA2DInnerStrides(t *testing.T) {
	// Gather every other word into a packed destination.
	f := newFabric()
	for i := 0; i < 8; i++ {
		f.SRAMs[0].Store32(mem.Addr(0x400+8*i), uint32(i))
	}
	e := NewEngine(f, 0)
	run(t, f, func(p *sim.Proc) {
		d := &Desc{
			Beat: 4, InnerCount: 8, OuterCount: 1,
			SrcInnerStride: 8, DstInnerStride: 4,
			Src: 0x400, Dst: 0x800, // local-to-local
		}
		e.Start(DMA0, d)
		e.Wait(p, DMA0)
	})
	for i := 0; i < 8; i++ {
		if got := f.SRAMs[0].Load32(mem.Addr(0x800 + 4*i)); got != uint32(i) {
			t.Fatalf("packed word %d = %d", i, got)
		}
	}
}

func TestDMAChain(t *testing.T) {
	f := newFabric()
	f.SRAMs[0].Store32(0x100, 111)
	f.SRAMs[0].Store32(0x200, 222)
	e := NewEngine(f, 0)
	second := Desc1D(0x200, f.Map.GlobalOf(2, 0x200), 4, 4)
	first := Desc1D(0x100, f.Map.GlobalOf(1, 0x100), 4, 4)
	first.Chain = second
	if first.TotalBytes() != 8 {
		t.Fatalf("TotalBytes = %d", first.TotalBytes())
	}
	run(t, f, func(p *sim.Proc) {
		e.Start(DMA0, first)
		e.Wait(p, DMA0)
	})
	if f.SRAMs[1].Load32(0x100) != 111 || f.SRAMs[2].Load32(0x200) != 222 {
		t.Fatal("chained descriptors did not both execute")
	}
}

func TestDMAToDRAMUsesELink(t *testing.T) {
	f := newFabric()
	for i := 0; i < 512; i++ {
		f.SRAMs[0].Store32(mem.Addr(4*i), uint32(i))
	}
	e := NewEngine(f, 0)
	var doneAt sim.Time
	run(t, f, func(p *sim.Proc) {
		d := Desc1D(0, mem.DRAMBase+0x1000, 2048, 8)
		e.Start(DMA0, d)
		e.Wait(p, DMA0)
		doneAt = p.Now()
	})
	for i := 0; i < 512; i++ {
		if got := f.DRAM.Load32(mem.Addr(0x1000 + 4*i)); got != uint32(i) {
			t.Fatalf("dram word %d = %d", i, got)
		}
	}
	// 2 KB at 150 MB/s: the eLink, not the 2 GB/s DMA pace, dominates.
	want := sim.Time(2048) * noc.ELinkBytePeriod
	if doneAt < want {
		t.Fatalf("DRAM write done at %v, faster than eLink allows (%v)", doneAt, want)
	}
	if f.ELink.ServedBytes(0) != 2048 {
		t.Fatalf("eLink carried %d bytes, want 2048", f.ELink.ServedBytes(0))
	}
}

func TestDMAFromDRAM(t *testing.T) {
	f := newFabric()
	for i := 0; i < 256; i++ {
		f.DRAM.Store32(mem.Addr(4*i), uint32(i*3))
	}
	e := NewEngine(f, 63) // far corner: reads cross the whole mesh
	var doneAt sim.Time
	run(t, f, func(p *sim.Proc) {
		d := Desc1D(mem.DRAMBase, f.Map.GlobalOf(63, 0x1000), 1024, 8)
		e.Start(DMA0, d)
		e.Wait(p, DMA0)
		doneAt = p.Now()
	})
	for i := 0; i < 256; i++ {
		if got := f.SRAMs[63].Load32(mem.Addr(0x1000 + 4*i)); got != uint32(i*3) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
	if want := sim.Time(1024) * noc.ELinkBytePeriod; doneAt < want {
		t.Fatalf("DRAM read done at %v, want >= %v", doneAt, want)
	}
}

func TestDMABusyPanics(t *testing.T) {
	f := newFabric()
	e := NewEngine(f, 0)
	err := func() (err error) {
		f.Eng.Spawn("test", func(p *sim.Proc) {
			e.Start(DMA0, Desc1D(0, f.Map.GlobalOf(1, 0), 1024, 8))
			e.Start(DMA0, Desc1D(0, f.Map.GlobalOf(2, 0), 1024, 8))
		})
		return f.Eng.Run()
	}()
	if err == nil {
		t.Fatal("starting a busy channel should panic the proc")
	}
}

func TestDMATwoChannelsIndependent(t *testing.T) {
	f := newFabric()
	f.SRAMs[0].Store32(0x10, 1)
	f.SRAMs[0].Store32(0x20, 2)
	e := NewEngine(f, 0)
	run(t, f, func(p *sim.Proc) {
		e.Start(DMA0, Desc1D(0x10, f.Map.GlobalOf(1, 0x10), 4, 4))
		e.Start(DMA1, Desc1D(0x20, f.Map.GlobalOf(1, 0x20), 4, 4))
		if !e.Busy(DMA0) || !e.Busy(DMA1) {
			t.Error("channels should both be busy")
		}
		e.Wait(p, DMA0)
		e.Wait(p, DMA1)
	})
	if f.SRAMs[1].Load32(0x10) != 1 || f.SRAMs[1].Load32(0x20) != 2 {
		t.Fatal("parallel channel transfers failed")
	}
	if e.Moved(DMA0) != 4 || e.Moved(DMA1) != 4 {
		t.Fatalf("moved stats %d/%d", e.Moved(DMA0), e.Moved(DMA1))
	}
}

func TestDMAWordVsDwordRate(t *testing.T) {
	f := newFabric()
	timeFor := func(beat int) sim.Time {
		e := NewEngine(f, 0)
		var done sim.Time
		eng := sim.NewEngine()
		f2 := newFabric()
		e = NewEngine(f2, 0)
		_ = eng
		f2.Eng.Spawn("t", func(p *sim.Proc) {
			e.Start(DMA0, Desc1D(0, f2.Map.GlobalOf(1, 0), 4096, beat))
			e.Wait(p, DMA0)
			done = p.Now()
		})
		if err := f2.Eng.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	w, dw := timeFor(4), timeFor(8)
	if dw >= w {
		t.Fatalf("doubleword (%v) not faster than word (%v)", dw, w)
	}
}

func TestDMANotifyHook(t *testing.T) {
	f := newFabric()
	var notified []int
	f.Notify = func(core int) { notified = append(notified, core) }
	e := NewEngine(f, 0)
	run(t, f, func(p *sim.Proc) {
		e.Start(DMA0, Desc1D(0, f.Map.GlobalOf(5, 0), 64, 8))
		e.Wait(p, DMA0)
		// DRAM writes must not notify any core.
		e.Start(DMA0, Desc1D(0, mem.DRAMBase, 64, 8))
		e.Wait(p, DMA0)
	})
	if len(notified) != 1 || notified[0] != 5 {
		t.Fatalf("notified = %v, want [5]", notified)
	}
}
