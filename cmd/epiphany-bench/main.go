// Command epiphany-bench regenerates the paper's evaluation tables and
// figures on the simulated Epiphany system, and batch-runs registered
// workloads concurrently through the Runner.
//
// Usage:
//
//	epiphany-bench -all                 # every paper experiment
//	epiphany-bench -run fig6            # one experiment
//	epiphany-bench -list                # list experiments, workloads, topologies
//	epiphany-bench -run table6 -large   # include the 1536x1536 row
//	epiphany-bench -workloads all -j 8  # batch-run the workload registry
//	epiphany-bench -workloads stencil-tuned,matmul-cannon
//	epiphany-bench -workloads all -topo cluster-2x2   # on a multi-chip board
//	epiphany-bench -workloads all -power epiphany-iv-28nm        # energy columns
//	epiphany-bench -workloads all -power epiphany-iv-28nm -dvfs 300@0.8
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"epiphany"
	"epiphany/internal/bench"
	"epiphany/internal/names"
)

func main() {
	all := flag.Bool("all", false, "run every paper experiment")
	run := flag.String("run", "", "run one experiment by name")
	list := flag.Bool("list", false, "list experiment and registered workload names")
	large := flag.Bool("large", false, "include long-running rows (Table VI 1536x1536)")
	extras := flag.Bool("extras", false, "also run the extension and ablation studies")
	workloads := flag.String("workloads", "", `batch-run registered workloads: "all" or a comma-separated name list`)
	jobs := flag.Int("j", 0, "concurrent workers for -workloads (0 = GOMAXPROCS)")
	topo := flag.String("topo", "", `fabric topology for -workloads: a preset ("e16", "e64", "cluster-2x2"), a mesh ("4x8") or a chip grid ("grid=4x4/chip=8x8", "cluster-4x4", "e64x16"), optionally with "/c2c=BYTE:HOP" and/or "/shards=N"`)
	powerModel := flag.String("power", "", `power-model preset for -workloads energy columns (e.g. "epiphany-iv-28nm"; defaults to it when -dvfs is given)`)
	dvfs := flag.String("dvfs", "", `DVFS operating point for -workloads, "FREQ[MHz]@VOLT[V]" (requires/implies -power)`)
	traceFile := flag.String("trace", "", `write each -workloads run's activity and link heatmaps to FILE (several workloads: FILE's name gains a -<workload> suffix per run)`)
	timelineFile := flag.String("timeline", "", `write each -workloads run as a Perfetto / Chrome trace-event JSON timeline to FILE (several workloads: a -<workload> suffix per run); open in ui.perfetto.dev`)
	engineStats := flag.Bool("engine-stats", false, "print the event engine's scheduler counters (per-shard events, barrier rounds, sys-shard share) after the -workloads table")
	simWorkers := flag.Int("sim-workers", 1, "goroutines driving each board's shards for -workloads (1 = sequential; metrics are identical for every value, like epiphany-serve's -sim-workers)")
	flag.Parse()

	if (*topo != "" || *powerModel != "" || *dvfs != "" || *traceFile != "" || *timelineFile != "" || *engineStats || *simWorkers != 1) && *workloads == "" {
		fmt.Fprintln(os.Stderr, "-topo/-power/-dvfs/-trace/-timeline/-engine-stats only apply to -workloads; the paper experiments are defined on the default board")
		os.Exit(2)
	}
	if *dvfs != "" && *powerModel == "" {
		*powerModel = "epiphany-iv-28nm"
	}
	// Resolve the energy flags up front so a typo is one clean error,
	// not a per-job failure wall (and the footer below can rely on the
	// model resolving).
	if *powerModel != "" {
		m, ok := epiphany.PowerModelByName(*powerModel)
		if !ok {
			// Same suggestion-bearing message the library (and the serve
			// daemon's 400s) produce for the typo.
			fmt.Fprintln(os.Stderr, names.Unknown("power model", *powerModel, epiphany.PowerModels()))
			os.Exit(1)
		}
		if _, err := m.Point(*dvfs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch {
	case *list:
		fmt.Println("experiments:")
		for _, e := range bench.Experiments {
			fmt.Printf("  %s\n", e.Name)
		}
		for _, e := range bench.Extras {
			fmt.Printf("  %s (extra)\n", e.Name)
		}
		// The workload names come from the registry, so workloads
		// registered by linked-in packages are enumerated too. Every
		// registered workload runs on every topology below (-topo).
		fmt.Println("workloads (each runnable on every topology):")
		for _, w := range epiphany.Workloads() {
			fmt.Printf("  %s\n", w.Name())
		}
		fmt.Println("topologies:")
		for _, t := range epiphany.Topologies() {
			fmt.Printf("  %s\n", t)
		}
		fmt.Println("power models (-power):")
		for _, name := range epiphany.PowerModels() {
			m, _ := epiphany.PowerModelByName(name)
			fmt.Printf("  %s: nominal %s, ladder %v\n", name, m.Nominal, m.Points)
		}
	case *workloads != "":
		runWorkloads(*workloads, *jobs, *topo, *powerModel, *dvfs, *traceFile, *timelineFile, *engineStats, *simWorkers)
	case *run != "":
		e, ok := bench.ByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		if *run == "table6" && *large {
			show(bench.Experiment{Name: "table6", Run: func() *bench.Table { return bench.Table6(true) }})
			return
		}
		show(e)
	case *all:
		for _, e := range bench.Experiments {
			if e.Name == "table6" && *large {
				e = bench.Experiment{Name: "table6", Run: func() *bench.Table { return bench.Table6(true) }}
			}
			show(e)
		}
		if *extras {
			for _, e := range bench.Extras {
				show(e)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runWorkloads resolves the selection against the registry and executes
// it as one concurrent batch, each job on its own fresh System built on
// the selected topology, with energy columns when a power model is
// attached. Heatmap traces and Perfetto timelines are captured per job
// into memory (jobs run concurrently) and written out after the batch.
func runWorkloads(sel string, workers int, topoName, powerModel, dvfs, traceFile, timelineFile string, engineStats bool, simWorkers int) {
	var ws []epiphany.Workload
	if sel == "all" {
		ws = epiphany.Workloads()
	} else {
		for _, name := range strings.Split(sel, ",") {
			name = strings.TrimSpace(name)
			w, ok := epiphany.WorkloadByName(name)
			if !ok {
				var registered []string
				for _, rw := range epiphany.Workloads() {
					registered = append(registered, rw.Name())
				}
				fmt.Fprintln(os.Stderr, names.Unknown("workload", name, registered))
				os.Exit(1)
			}
			ws = append(ws, w)
		}
	}
	runner := &epiphany.Runner{Workers: workers}
	if topoName != "" {
		topo, err := epiphany.ParseTopology(topoName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runner.Options = []epiphany.Option{epiphany.WithTopology(topo)}
		fmt.Printf("topology: %s\n", topo)
	}
	if powerModel != "" {
		runner.Options = append(runner.Options, epiphany.WithPowerModel(powerModel, dvfs))
	}
	if engineStats {
		runner.Options = append(runner.Options, epiphany.WithEngineStats())
	}
	if simWorkers > 1 {
		runner.Options = append(runner.Options, epiphany.WithWorkers(simWorkers))
	}
	jobs := make([]epiphany.Job, len(ws))
	traces := make([]*bytes.Buffer, len(ws))
	timelines := make([]*bytes.Buffer, len(ws))
	for i, w := range ws {
		jobs[i] = epiphany.Job{Workload: w}
		if traceFile != "" {
			traces[i] = &bytes.Buffer{}
			jobs[i].Options = append(jobs[i].Options, epiphany.WithTrace(traces[i]))
		}
		if timelineFile != "" {
			timelines[i] = &bytes.Buffer{}
			jobs[i].Options = append(jobs[i].Options, epiphany.WithTimeline(timelines[i]))
		}
	}
	start := time.Now()
	batch, err := runner.RunBatch(context.Background(), jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-22s %-14s %10s %8s %11s %11s %12s",
		"workload", "simulated", "GFLOPS", "% peak", "% compute", "% transfer", "x-chip time")
	if powerModel != "" {
		fmt.Printf(" %12s %8s %9s", "energy (mJ)", "avg W", "GFLOPS/W")
	}
	fmt.Println()
	for _, jr := range batch.Results {
		if jr.Err != nil {
			fmt.Printf("%-22s FAILED: %v\n", jr.Name, jr.Err)
			continue
		}
		m := jr.Result.Metrics()
		split := []string{"-", "-"}
		if m.ComputeTime+m.TransferTime > 0 {
			split[0] = fmt.Sprintf("%.1f", m.PctCompute())
			split[1] = fmt.Sprintf("%.1f", m.PctTransfer())
		}
		xchip := "-"
		if m.ELinkCrossings > 0 {
			xchip = fmt.Sprint(m.ELinkCrossTime)
		}
		fmt.Printf("%-22s %-14v %10.2f %8.1f %11s %11s %12s",
			jr.Name, m.Elapsed, m.GFLOPS, m.PctPeak, split[0], split[1], xchip)
		if powerModel != "" {
			fmt.Printf(" %12.3f %8.3f %9.2f", m.EnergyJ*1e3, m.AvgPowerW, m.GFLOPSPerWatt)
		}
		fmt.Println()
	}
	if engineStats {
		for _, jr := range batch.Results {
			if jr.Err != nil {
				continue
			}
			if st := jr.Result.Metrics().Engine; st != nil {
				fmt.Printf("\n%s %s", jr.Name, st)
			}
		}
	}
	if powerModel != "" {
		// Both resolved successfully in main before the batch ran.
		m, _ := epiphany.PowerModelByName(powerModel)
		op, _ := m.Point(dvfs)
		fmt.Printf("[power model %s at %s]\n", powerModel, op)
	}
	writeCaptures(traceFile, "trace", traces, batch)
	writeCaptures(timelineFile, "timeline", timelines, batch)
	fmt.Printf("[%d workloads in %v wall clock]\n", len(batch.Results), time.Since(start).Round(time.Millisecond))
	if err := batch.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// writeCaptures flushes per-job capture buffers to disk: to base itself
// for a single workload, or with a -<workload> name suffix each when
// the batch ran several.
func writeCaptures(base, what string, bufs []*bytes.Buffer, batch *epiphany.BatchResult) {
	if base == "" {
		return
	}
	for i, buf := range bufs {
		jr := batch.Results[i]
		if buf == nil || jr.Err != nil {
			continue
		}
		path := base
		if len(bufs) > 1 {
			ext := filepath.Ext(base)
			path = strings.TrimSuffix(base, ext) + "-" + jr.Name + ext
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("[%s written to %s]\n", what, path)
	}
}

func show(e bench.Experiment) {
	start := time.Now()
	t := e.Run()
	fmt.Println(t)
	fmt.Printf("[%s regenerated in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
}
