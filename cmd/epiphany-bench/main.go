// Command epiphany-bench regenerates the paper's evaluation tables and
// figures on the simulated Epiphany system.
//
// Usage:
//
//	epiphany-bench -all            # every experiment
//	epiphany-bench -run fig6       # one experiment
//	epiphany-bench -list           # list experiment names
//	epiphany-bench -run table6 -large   # include the 1536x1536 row
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"epiphany/internal/bench"
)

func main() {
	all := flag.Bool("all", false, "run every paper experiment")
	run := flag.String("run", "", "run one experiment by name")
	list := flag.Bool("list", false, "list experiment names")
	large := flag.Bool("large", false, "include long-running rows (Table VI 1536x1536)")
	extras := flag.Bool("extras", false, "also run the extension and ablation studies")
	flag.Parse()

	switch {
	case *list:
		for _, e := range bench.Experiments {
			fmt.Println(e.Name)
		}
		for _, e := range bench.Extras {
			fmt.Printf("%s (extra)\n", e.Name)
		}
	case *run != "":
		e, ok := bench.ByName(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		if *run == "table6" && *large {
			show(bench.Experiment{Name: "table6", Run: func() *bench.Table { return bench.Table6(true) }})
			return
		}
		show(e)
	case *all:
		for _, e := range bench.Experiments {
			if e.Name == "table6" && *large {
				e = bench.Experiment{Name: "table6", Run: func() *bench.Table { return bench.Table6(true) }}
			}
			show(e)
		}
		if *extras {
			for _, e := range bench.Extras {
				show(e)
			}
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func show(e bench.Experiment) {
	start := time.Now()
	t := e.Run()
	fmt.Println(t)
	fmt.Printf("[%s regenerated in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
}
