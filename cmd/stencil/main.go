// Command stencil runs a single heat-stencil experiment with a custom
// configuration and reports performance and (optionally) correctness.
//
// Example:
//
//	stencil -rows 80 -cols 20 -iters 50 -group 8x8 -comm -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"epiphany"
)

func main() {
	rows := flag.Int("rows", 80, "per-core interior grid rows")
	cols := flag.Int("cols", 20, "per-core interior grid cols (multiple of 20 when tuned)")
	iters := flag.Int("iters", 50, "stencil iterations")
	group := flag.String("group", "8x8", "workgroup shape RxC")
	comm := flag.Bool("comm", true, "exchange boundary regions each iteration")
	naive := flag.Bool("naive", false, "model the compiler-scheduled kernel instead of hand-tuned assembly")
	verify := flag.Bool("verify", false, "check the result against the host reference")
	showTrace := flag.Bool("trace", false, "print per-core activity heatmaps after the run")
	seed := flag.Uint64("seed", 0, "input field seed")
	flag.Parse()

	var gr, gc int
	if _, err := fmt.Sscanf(*group, "%dx%d", &gr, &gc); err != nil {
		fmt.Fprintf(os.Stderr, "bad -group %q: %v\n", *group, err)
		os.Exit(2)
	}
	cfg := epiphany.StencilConfig{
		Rows: *rows, Cols: *cols, Iters: *iters,
		GroupRows: gr, GroupCols: gc,
		Comm: *comm, Tuned: !*naive, Seed: *seed,
	}
	var opts []epiphany.Option
	if *showTrace {
		opts = append(opts, epiphany.WithTrace(os.Stdout))
	}
	r, err := epiphany.Run(context.Background(), &epiphany.StencilWorkload{Config: cfg}, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := r.(*epiphany.StencilResult)
	fmt.Printf("grid %dx%d per core on %dx%d cores, %d iterations (comm=%v, tuned=%v)\n",
		*rows, *cols, gr, gc, *iters, *comm, !*naive)
	fmt.Printf("simulated time: %v\n", res.Elapsed)
	fmt.Printf("performance:    %.3f GFLOPS (%.1f%% of peak)\n", res.GFLOPS, res.PctPeak)
	if *verify {
		ref := epiphany.StencilReference(cfg)
		worst := 0.0
		for r := range ref {
			for c := range ref[r] {
				d := float64(ref[r][c] - res.Global[r][c])
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("verification:   max |diff| vs reference = %g\n", worst)
		if worst > 1e-3 {
			os.Exit(1)
		}
	}
}
