// Command streamstencil runs the §IX streaming stencil with temporal
// blocking on grids far larger than the chip's on-chip memory.
//
// Example:
//
//	streamstencil -grid 1024x1024 -block 32x32 -iters 32 -t 4 -verify
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"epiphany"
)

func main() {
	grid := flag.String("grid", "512x512", "global grid RxC")
	block := flag.String("block", "32x32", "per-core block RxC")
	group := flag.String("group", "8x8", "workgroup shape RxC")
	iters := flag.Int("iters", 16, "total iterations")
	tblock := flag.Int("t", 4, "iterations per residency (temporal block depth)")
	verify := flag.Bool("verify", false, "check against global Jacobi on the host")
	seed := flag.Uint64("seed", 0, "input field seed")
	flag.Parse()

	var gr, gc, br, bc, wr, wc int
	parse := func(s string, a, b *int) {
		if _, err := fmt.Sscanf(s, "%dx%d", a, b); err != nil {
			fmt.Fprintf(os.Stderr, "bad shape %q: %v\n", s, err)
			os.Exit(2)
		}
	}
	parse(*grid, &gr, &gc)
	parse(*block, &br, &bc)
	parse(*group, &wr, &wc)

	cfg := epiphany.StreamStencilConfig{
		GlobalRows: gr, GlobalCols: gc,
		BlockRows: br, BlockCols: bc,
		Iters: *iters, TBlock: *tblock,
		GroupRows: wr, GroupCols: wc,
		Seed: *seed,
	}
	r, err := epiphany.Run(context.Background(), &epiphany.StreamStencilWorkload{Config: cfg})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := r.(*epiphany.StreamStencilResult)
	fmt.Printf("grid %dx%d, %d iterations in chunks of %d, blocks %dx%d on %dx%d cores\n",
		gr, gc, *iters, *tblock, br, bc, wr, wc)
	fmt.Printf("simulated time : %v\n", res.Elapsed)
	fmt.Printf("useful GFLOPS  : %.2f (%.1f%% of peak)\n", res.GFLOPS, res.PctPeak)
	fmt.Printf("DRAM traffic   : %.1f MB\n", float64(res.DRAMBytes)/1e6)
	fmt.Printf("redundant work : +%.1f%%\n", 100*float64(res.RedundantFlops)/float64(res.UsefulFlops))
	if *verify {
		ref := epiphany.StreamStencilReference(cfg)
		worst := 0.0
		for r := range ref {
			for c := range ref[r] {
				d := float64(ref[r][c] - res.Global[r][c])
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		fmt.Printf("verification   : max |diff| vs global Jacobi = %g\n", worst)
		if worst != 0 {
			os.Exit(1)
		}
	}
}
