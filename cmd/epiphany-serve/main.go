// Command epiphany-serve runs the simulator as a long-lived HTTP
// service: deterministic jobs and sweeps over the REST API, answered
// from a content-addressed result cache whenever the same canonical
// spec has been simulated before.
//
//	epiphany-serve -addr :8080 -cache-dir /var/cache/epiphany
//
//	curl -s localhost:8080/v1/workloads
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"workload":"stencil-tuned","topo":"e64"}'
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"workload":"stencil-tuned","topo":"grid=4x4/chip=8x8"}'
//	curl -s -X POST 'localhost:8080/v1/sweeps?format=ndjson' \
//	    -d '{"workloads":["stencil-tuned"],"topos":[{"preset":"e16"},{"spec":"grid=2x2/chip=8x8"}]}'
//	curl -s localhost:8080/v1/plans
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503 (and
// /v1/healthz fails, so load balancers stop routing) while in-flight
// simulations finish, bounded by -grace.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"epiphany/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "max admitted simulation-bearing requests (0 = 64)")
		entries = flag.Int("cache-entries", 0, "in-memory result cache bound (0 = 4096)")
		dir     = flag.String("cache-dir", "", "persist cached results here (empty = memory only)")
		timeout = flag.Duration("timeout", 0, "per-request simulation budget (0 = 2m)")
		grace   = flag.Duration("grace", 30*time.Second, "shutdown drain budget")
		shards  = flag.Int("shards", 0, "event-engine partition per board: 0 = one shard per chip, 1 = single heap (results are bit-identical either way)")
		simwork = flag.Int("sim-workers", 1, "goroutines driving each board's shards (composes with -workers)")
		access  = flag.Bool("access-log", true, "log one structured line per request (route, status, stage times, result fingerprint)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "epiphany-serve: unexpected arguments %q\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var logger *slog.Logger
	if *access {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	s, err := serve.NewServer(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *entries,
		CacheDir:       *dir,
		RequestTimeout: *timeout,
		Shards:         *shards,
		SimWorkers:     *simwork,
		Logger:         logger,
	})
	if err != nil {
		log.Fatalf("epiphany-serve: %v", err)
	}

	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("epiphany-serve: draining (new work gets 503, grace %s)", *grace)
		s.Drain()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpServer.Shutdown(shutdownCtx); err != nil {
			log.Printf("epiphany-serve: drain incomplete: %v", err)
			httpServer.Close()
		}
	}()

	log.Printf("epiphany-serve: listening on %s (cache-dir %q)", *addr, *dir)
	if err := httpServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("epiphany-serve: %v", err)
	}
	st := s.Stats()
	log.Printf("epiphany-serve: done; %d hits / %d misses, %s simulated, %s served from cache",
		st.CacheHits, st.CacheMisses,
		time.Duration(st.SimulatedWallNS), time.Duration(st.ServedWallNS))
}
