// Command epiphany-sweep runs declarative experiment sweeps: a
// workload x topology x seed grid executed on the concurrent batch
// Runner, aggregated into a scaling table with speedup, parallel
// efficiency and chip-boundary crossing columns derived against a
// baseline topology.
//
// Output is deterministic: the same invocation produces bit-identical
// bytes on every run and with any -workers value, so redirected sweep
// output can be checked in as a golden scaling table.
//
// Usage:
//
//	epiphany-sweep                              # all workloads x {e16, e64, cluster-2x2}
//	epiphany-sweep -list                        # list workloads, topology presets, plans
//	epiphany-sweep -workloads stencil-tuned,matmul-offchip -topos e64,cluster-2x2
//	epiphany-sweep -topos e16,4x8,e64           # ad-hoc single-chip meshes mix in
//	epiphany-sweep -topos e64,grid=4x4/chip=8x8 # parameterized chip grids (1024 cores)
//	epiphany-sweep -topos cluster-2x2,cluster-2x2/c2c=40:600   # sweep the c2c link speed
//	epiphany-sweep -seeds 1,2,3 -baseline e64   # seed axis, speedup vs the e64 cells
//	epiphany-sweep -format csv -o sweep.csv     # machine-grade golden output
//	epiphany-sweep -power epiphany-iv-28nm      # energy columns on every cell
//	epiphany-sweep -dvfs 300MHz@0.8V,600MHz@1.0V,800MHz@1.2V   # frequency-scaling axis
//	epiphany-sweep -plan scaling-1024           # registered plan: the 1024-core scaling study
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"epiphany"
)

func main() {
	workloads := flag.String("workloads", "all", `workloads to sweep: "all" or a comma-separated name list`)
	topos := flag.String("topos", "", `topology axis: comma-separated presets ("e16"), meshes ("4x8"), chip grids ("grid=4x4/chip=8x8", "cluster-4x4", "e64x16"), optional "/c2c=BYTE:HOP" overrides; empty = all presets`)
	seeds := flag.String("seeds", "", "seed axis: comma-separated uint64s; empty = each workload's default seed")
	baseline := flag.String("baseline", "", "topology key the speedup/efficiency columns compare against (default: smallest on the axis)")
	powerModel := flag.String("power", "", `power-model preset for energy columns (e.g. "epiphany-iv-28nm"); empty = no energy accounting (defaults to epiphany-iv-28nm when -dvfs is given)`)
	dvfs := flag.String("dvfs", "", `DVFS operating-point axis: comma-separated "FREQ[MHz]@VOLT[V]" points (e.g. "300@0.8,600@1.0"); empty with -power = the model's nominal point`)
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS); never affects the output bytes")
	format := flag.String("format", "text", "output format: text, markdown, csv or json")
	out := flag.String("o", "", "write output to this file instead of stdout")
	planName := flag.String("plan", "", `registered plan to run (e.g. "scaling-1024"); the axis flags override its fields`)
	list := flag.Bool("list", false, "list registered workloads, topology presets and plans")
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range epiphany.Workloads() {
			fmt.Printf("  %s\n", w.Name())
		}
		fmt.Println("topology presets (the grammar also accepts ad-hoc meshes like 4x8, chip grids like grid=4x4/chip=8x8, cluster-4x4 or e64x16, and /c2c=BYTE:HOP overrides):")
		for _, t := range epiphany.Topologies() {
			fmt.Printf("  %s\n", t)
		}
		fmt.Println("power models (-power; ad-hoc -dvfs points like 450@0.85 also accepted):")
		for _, name := range epiphany.PowerModels() {
			m, _ := epiphany.PowerModelByName(name)
			fmt.Printf("  %s: nominal %s, ladder %v\n", name, m.Nominal, m.Points)
		}
		fmt.Println("plans (-plan):")
		for _, p := range epiphany.SweepPlans() {
			fmt.Printf("  %s: %s\n", p.Name, p.Description)
		}
		return
	}

	// A DVFS axis without a model means the caller wants the frequency
	// scaling of the reference device; default to the calibrated preset.
	if *dvfs != "" && *powerModel == "" {
		*powerModel = "epiphany-iv-28nm"
	}
	flagPlan, err := buildPlan(*workloads, *topos, *seeds, *baseline)
	if err != nil {
		fail(err)
	}
	flagPlan.Power = *powerModel
	flagPlan.DVFS = splitList(*dvfs)
	plan := flagPlan
	if *planName != "" {
		named, err := epiphany.ResolveSweepPlan(*planName)
		if err != nil {
			fail(err)
		}
		plan = overlayPlan(named.Plan, flagPlan)
	}
	res, err := epiphany.Sweep(context.Background(), plan, *workers)
	if err != nil {
		fail(err)
	}

	var rendered []byte
	switch *format {
	case "text":
		rendered = []byte(res.Text())
	case "markdown", "md":
		rendered = []byte(res.Markdown())
	case "csv":
		rendered = []byte(res.CSV())
	case "json":
		rendered, err = res.JSON()
		if err == nil {
			rendered = append(rendered, '\n')
		}
	default:
		err = fmt.Errorf("unknown -format %q (text, markdown, csv, json)", *format)
	}
	if err != nil {
		fail(err)
	}
	if *out == "" {
		os.Stdout.Write(rendered)
	} else if err := os.WriteFile(*out, rendered, 0o644); err != nil {
		fail(err)
	}

	// Failed cells keep the table shape but must fail the invocation:
	// CI smoke runs rely on the exit status.
	for _, c := range res.Cells {
		if c.Err != "" {
			fmt.Fprintf(os.Stderr, "cell %s/%s failed: %s\n", c.Workload, c.Topology, c.Err)
			os.Exit(1)
		}
	}
}

// overlayPlan starts from a registered plan and overrides whichever
// axes the flags spelled explicitly, so `-plan scaling-1024 -workloads
// stencil-tuned` reruns just one workload of the study.
func overlayPlan(base, flags epiphany.SweepPlan) epiphany.SweepPlan {
	if len(flags.Workloads) > 0 {
		base.Workloads = flags.Workloads
	}
	if len(flags.Topos) > 0 {
		base.Topos = flags.Topos
	}
	if len(flags.Seeds) > 0 {
		base.Seeds = flags.Seeds
	}
	if flags.Baseline != "" {
		base.Baseline = flags.Baseline
	}
	if flags.Power != "" {
		base.Power = flags.Power
	}
	if len(flags.DVFS) > 0 {
		base.DVFS = flags.DVFS
	}
	return base
}

// buildPlan translates the comma-separated flags into a SweepPlan.
func buildPlan(workloads, topos, seeds, baseline string) (epiphany.SweepPlan, error) {
	var p epiphany.SweepPlan
	p.Baseline = baseline
	if workloads != "" && workloads != "all" {
		for _, name := range splitList(workloads) {
			p.Workloads = append(p.Workloads, name)
		}
	}
	for _, spec := range splitList(topos) {
		t, err := epiphany.ParseSweepTopo(spec)
		if err != nil {
			return p, err
		}
		p.Topos = append(p.Topos, t)
	}
	for _, s := range splitList(seeds) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return p, fmt.Errorf("bad seed %q: %v", s, err)
		}
		p.Seeds = append(p.Seeds, v)
	}
	return p, nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
