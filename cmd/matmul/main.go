// Command matmul runs a single matrix-multiplication experiment at any
// of the paper's three levels (single core, on-chip Cannon, off-chip
// paged) and reports performance, the compute/transfer split, and
// (optionally) correctness.
//
// Examples:
//
//	matmul -m 32 -n 32 -k 32 -g 1            # Table IV cell
//	matmul -m 256 -n 256 -k 256 -g 8         # Table V flagship
//	matmul -m 512 -n 512 -k 512 -g 8 -offchip # Table VI row
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"epiphany"
)

func main() {
	m := flag.Int("m", 256, "rows of A and C")
	n := flag.Int("n", 256, "cols of A / rows of B")
	k := flag.Int("k", 256, "cols of B and C")
	g := flag.Int("g", 8, "workgroup edge (1, 2, 4 or 8)")
	off := flag.Bool("offchip", false, "page blocks through shared DRAM")
	naive := flag.Bool("naive", false, "model the compiler-scheduled inner kernel")
	verify := flag.Bool("verify", false, "check against the host reference (uses integer-valued inputs)")
	algo := flag.String("algo", "cannon", "on-chip algorithm: cannon or summa")
	showTrace := flag.Bool("trace", false, "print per-core activity heatmaps after the run")
	seed := flag.Uint64("seed", 0, "operand seed")
	flag.Parse()

	cfg := epiphany.MatmulConfig{
		M: *m, N: *n, K: *k, G: *g,
		OffChip: *off, Tuned: !*naive, Verify: *verify,
		Algorithm: *algo, Seed: *seed,
	}
	var opts []epiphany.Option
	if *showTrace {
		opts = append(opts, epiphany.WithTrace(os.Stdout))
	}
	r, err := epiphany.Run(context.Background(), &epiphany.MatmulWorkload{Config: cfg}, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := r.(*epiphany.MatmulResult)
	fmt.Printf("C(%dx%d) = A(%dx%d) x B(%dx%d) on %dx%d cores (offchip=%v, tuned=%v)\n",
		*m, *k, *m, *n, *n, *k, *g, *g, *off, !*naive)
	fmt.Printf("simulated time: %v\n", res.Elapsed)
	fmt.Printf("performance:    %.2f GFLOPS (%.1f%% of peak)\n", res.GFLOPS, res.PctPeak)
	if *off {
		fmt.Printf("decomposition:  %.1f%% compute, %.1f%% shared-memory transfers\n",
			res.PctCompute(), res.PctTransfer())
	}
	if *verify {
		d := epiphany.MaxAbsDiff(res.C, epiphany.MatmulReference(cfg))
		fmt.Printf("verification:   max |diff| vs reference = %g\n", d)
		if d != 0 {
			os.Exit(1)
		}
	}
}
