// Command microbench runs the paper's §V micro-benchmarks (Figures 2-3,
// Tables I-III) individually, with tunable parameters for the eLink
// saturation window.
package main

import (
	"flag"
	"fmt"
	"os"

	"epiphany/internal/bench"
)

func main() {
	fig2 := flag.Bool("fig2", false, "DMA vs direct-write bandwidth")
	fig3 := flag.Bool("fig3", false, "DMA vs direct-write latency")
	tab1 := flag.Bool("table1", false, "transfer latency vs node distance")
	tab2 := flag.Bool("table2", false, "4-core eLink contention")
	tab3 := flag.Bool("table3", false, "64-core eLink starvation")
	all := flag.Bool("all", false, "run all micro-benchmarks")
	flag.Parse()

	ran := false
	run := func(sel bool, f func() *bench.Table) {
		if sel || *all {
			fmt.Println(f())
			ran = true
		}
	}
	run(*fig2, bench.Fig2)
	run(*fig3, bench.Fig3)
	run(*tab1, bench.Table1)
	run(*tab2, bench.Table2)
	run(*tab3, bench.Table3)
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
