package epiphany

import (
	"context"

	"epiphany/internal/sweep"
)

// The experiment-sweep API. A SweepPlan declares a grid - workload set
// x topology set x seed set - and Sweep executes every cell on the
// concurrent batch Runner, deriving the paper-style scaling columns
// (speedup against a named baseline topology, parallel efficiency,
// chip-boundary crossing share). Sweeps are deterministic end to end:
// the same plan renders bit-identical CSV/JSON/text on every run and
// with any worker count, so sweep outputs can be checked in as golden
// scaling tables. The epiphany-sweep command is a thin flag wrapper
// around this API.
type (
	// SweepPlan declares one experiment grid; the zero value sweeps
	// every registered workload over the preset topologies.
	SweepPlan = sweep.Plan
	// SweepTopo is one topology-axis value: a preset name or an ad-hoc
	// mesh, optionally with chip-to-chip eLink timing overrides.
	SweepTopo = sweep.Topo
	// SweepCell is one expanded grid point (workload, topology, seed).
	SweepCell = sweep.Cell
	// SweepResult is an executed sweep: the normalized plan plus one
	// SweepCellResult per cell, with Text, Markdown, CSV and JSON
	// renderers.
	SweepResult = sweep.Result
	// SweepCellResult is one executed cell: its Metrics plus the
	// derived speedup, efficiency and crossing-share columns.
	SweepCellResult = sweep.CellResult
	// NamedSweepPlan is a registered, reusable sweep plan: the grid
	// plus the name CLIs and the serve daemon resolve it by.
	NamedSweepPlan = sweep.NamedPlan
)

// SweepPlans lists every registered named plan sorted by name. The
// built-in "scaling-1024" study - the workload suite swept from e16 to
// a 1024-core grid=4x4/chip=8x8 mesh with the 28nm power model - is
// always present.
func SweepPlans() []NamedSweepPlan { return sweep.Plans() }

// SweepPlanByName looks up one registered plan (e.g. "scaling-1024").
func SweepPlanByName(name string) (NamedSweepPlan, bool) { return sweep.PlanByName(name) }

// ResolveSweepPlan is SweepPlanByName with the canonical unknown-name
// error ("did you mean" plus the registered listing) on a miss, for
// CLI flags and service error bodies.
func ResolveSweepPlan(name string) (NamedSweepPlan, error) { return sweep.ResolvePlan(name) }

// ScalingStudyPlan returns the 1024-core scaling study grid: every
// built-in workload except the off-chip matmul (excluded from
// 8x8-chip grids until a known DMA-ordering race is fixed), swept over
// e16 -> cluster-2x2/e64 -> grid=2x4/chip=8x8 (512 cores) ->
// grid=4x4/chip=8x8 (1024 cores) with the epiphany-iv-28nm power
// model at its nominal point, speedup and efficiency derived against
// the e16 baseline.
func ScalingStudyPlan() SweepPlan { return sweep.ScalingStudy() }

// Sweep executes the plan's workload x topology x seed grid with the
// given number of concurrent workers (<= 0 means GOMAXPROCS) and
// returns the aggregated result. Per-cell failures are recorded in the
// result's cells; the returned error is reserved for plan errors and
// context cancellation.
func Sweep(ctx context.Context, p SweepPlan, workers int) (*SweepResult, error) {
	return sweep.Run(ctx, p, workers)
}

// ParseSweepTopo parses the textual spelling of a topology axis value:
// anything the topology grammar accepts (see ParseTopology) - a preset
// name ("e64"), an ad-hoc single-chip mesh ("4x8"), a parameterized
// chip grid ("grid=4x4/chip=8x8", "cluster-4x4", "e64x16") - optionally
// followed by "/c2c=BYTE:HOP" chip-to-chip timing overrides in
// simulation time units (e.g. "cluster-2x2/c2c=40:600").
//
// The energy axes are declared separately on the plan: SweepPlan.Power
// names a power-model preset and SweepPlan.DVFS lists operating points
// (ParseDVFSPoint spells them), which Sweep crosses with every
// workload/topology/seed cell and prices into energy columns.
func ParseSweepTopo(s string) (SweepTopo, error) { return sweep.ParseTopo(s) }
