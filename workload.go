package epiphany

import (
	"context"
	"io"

	"epiphany/internal/sim"
	"epiphany/internal/system"
	"epiphany/internal/workload"
)

// The pluggable workload API. A Workload is any experiment that can
// validate its configuration and execute against a fresh System; the
// built-in implementations cover the paper's three applications, and
// external packages plug in the same way (see examples/mandelbrot and
// examples/pingpong for custom kernel-level workloads).
type (
	// Workload is one runnable experiment: Name, Validate, and Run
	// against a fresh single-use System.
	Workload = workload.Workload
	// Result is a workload's output; every result reports Metrics, and
	// concrete types (StencilResult, MatmulResult, ...) carry richer
	// data reachable by type assertion.
	Result = workload.Result
	// Metrics is the common performance summary: GFLOPS, % of peak, the
	// compute/transfer split for runs that page through shared DRAM,
	// and - when a power model is attached - the energy domain (joules,
	// watts, GFLOPS/W, EDP, per-component breakdown).
	Metrics = workload.Metrics
	// Option configures a run: WithTopology, WithMeshSize, WithSeed,
	// WithTrace, WithPowerModel.
	Option = workload.Option
	// Reseeder is implemented by workloads whose inputs derive from a
	// seed; WithSeed requires it.
	Reseeder = workload.Reseeder
	// TopologyFitter is implemented by workloads that can adapt their
	// workgroup shape to the device they run on; the built-ins do, which
	// is what lets every registered preset run on every topology.
	TopologyFitter = workload.TopologyFitter
	// Topology describes the simulated fabric: a single chip or a board
	// of chips glued through chip-to-chip eLinks.
	Topology = system.Topology
	// EngineStats is the event engine's scheduler-counter snapshot,
	// reported in Metrics.Engine when a run asks for it with
	// WithEngineStats: per-shard executed events and heap peaks, barrier
	// rounds and phase wall times under the parallel scheduler, lookahead
	// and booking-floor holds, and the sys shard's executed-event share.
	EngineStats = sim.EngineStats
	// ShardStats is one shard's slice of EngineStats.
	ShardStats = sim.ShardStats

	// StencilWorkload runs the §VI heat stencil as a Workload.
	StencilWorkload = workload.Stencil
	// MatmulWorkload runs the §VII/§VIII matrix multiplication as a
	// Workload.
	MatmulWorkload = workload.Matmul
	// StreamStencilWorkload runs the §IX streaming stencil as a
	// Workload.
	StreamStencilWorkload = workload.StreamStencil
)

// Register adds w to the process-wide workload registry. It panics if w
// is nil, unnamed, or its name is already taken (registration happens
// from init functions, where a silent error would go unread).
func Register(w Workload) { workload.Register(w) }

// Workloads returns every registered workload sorted by name. The
// built-in presets - one per scenario of the paper's evaluation - are
// always present.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks up one registered workload (e.g.
// "stencil-tuned", "matmul-offchip").
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// Run validates w and executes it on a fresh System built according to
// the options. It is the one-shot form of Runner.RunBatch.
func Run(ctx context.Context, w Workload, opts ...Option) (Result, error) {
	return workload.Run(ctx, w, opts...)
}

// Preset topologies: the 16-core Epiphany-III, the paper's 64-core
// Epiphany-IV (the default), and a 2x2 cluster of Parallella boards
// whose four E16 chips form one 8x8 mesh with chip-to-chip eLink
// boundaries.
var (
	TopologyE16        = system.E16
	TopologyE64        = system.E64
	TopologyCluster2x2 = system.Cluster2x2
)

// Topologies lists the preset topologies in scaling order.
func Topologies() []Topology { return system.Topologies() }

// TopologyByName looks up a preset topology ("e16", "e64",
// "cluster-2x2").
func TopologyByName(name string) (Topology, bool) { return system.TopologyByName(name) }

// ParseTopology parses the topology grammar into a validated Topology:
// preset names ("e64"), ad-hoc single-chip meshes ("4x8"),
// parameterized chip grids ("grid=4x4/chip=8x8", where /chip= defaults
// to 8x8), cluster boards of E16 chips ("cluster-4x4"), square chip
// arrays ("e16x4", "e64x16"), all with an optional "/c2c=BYTE:HOP"
// chip-to-chip timing-override suffix. Every consumer of a topology
// spelling - WithTopology callers, the sweep topo axis, the serve
// daemon's job and plan specs, and the three CLIs - resolves through
// this one grammar; near-miss spellings get a "did you mean"
// suggestion, and geometry is validated against the 64x64 mesh
// address-space ceiling. Topology.Spec renders the canonical spelling
// back (ParseTopology is its inverse).
func ParseTopology(spec string) (Topology, error) { return system.ParseTopologySpec(spec) }

// WithTopology runs the workload on the given fabric topology. On
// multi-chip boards, mesh traffic crossing a chip boundary pays the
// chip-to-chip eLink's bandwidth and arbitration costs, reported in
// Metrics.ELinkCrossTime/ELinkCrossings.
func WithTopology(t Topology) Option { return workload.WithTopology(t) }

// WithMeshSize runs the workload on a rows x cols single-chip device
// instead of the default 8x8 Epiphany-IV mesh.
func WithMeshSize(rows, cols int) Option { return workload.WithMeshSize(rows, cols) }

// WithSeed rebases the workload's deterministic inputs onto seed; the
// workload must implement Reseeder (the built-ins do).
func WithSeed(seed uint64) Option { return workload.WithSeed(seed) }

// WithTrace writes the per-core activity heatmaps and the mesh-link
// heatmap to w after the run.
func WithTrace(w io.Writer) Option { return workload.WithTrace(w) }

// WithTimeline records the run as a Chrome trace-event / Perfetto JSON
// timeline written to w after the run: per-core activity spans
// (compute, DMA wait, flag spin), DMA transfer legs, chip-to-chip eLink
// crossings, and the parallel scheduler's barrier rounds. Open the
// output in ui.perfetto.dev. Recording is observational - Metrics are
// bit-identical with or without it.
func WithTimeline(w io.Writer) Option { return workload.WithTimeline(w) }

// WithEngineStats snapshots the event engine's scheduler counters into
// the result's Metrics.Engine (see EngineStats). Every other Metrics
// field is bit-identical with or without it.
func WithEngineStats() Option { return workload.WithEngineStats() }

// WithShards partitions a multi-chip board's event engine into n shards
// (0 = auto, one per chip; 1 = the classic single event heap; up to one
// per chip). Metrics are bit-identical for every value; the partition
// only sets how much of the board WithWorkers can run concurrently.
func WithShards(n int) Option { return workload.WithShards(n) }

// WithWorkers executes the board's shards on n host goroutines (1 =
// sequential, the default). Metrics are bit-identical for every value -
// the engine executes the same canonical event order - so workers only
// trade wall-clock time for CPU. Distinct from Runner.Workers, which
// runs whole jobs concurrently.
func WithWorkers(n int) Option { return workload.WithWorkers(n) }
